# MPDP developer entry points. Everything is plain `go` underneath; the
# Makefile just names the common invocations.

GO ?= go

.PHONY: all build test test-short race verify cover bench bench-snapshots bench-diff suite suite-quick check lint hotpath-gates examples clean loopback fuzz-frame fuzz-wire fuzz-manifest fuzz-mesh wire-trace incident-smoke mesh-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Whole suite in quick mode with the end-to-end invariant checker armed.
verify:
	$(GO) run ./cmd/mpdp-bench -exp all -quick -verify

cover:
	$(GO) test -cover ./internal/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh the checked-in performance baselines (bench/BENCH_*.json) after
# an intentional performance change; CI diffs fresh runs against them.
bench-snapshots:
	$(GO) run ./cmd/mpdp-bench -bench-json bench/ -quick

# The CI regression gate, locally: re-measure every checked-in snapshot
# and fail on p99 regression >10% or any allocs/packet increase.
bench-diff:
	$(GO) run ./cmd/mpdp-bench -bench-diff bench/

# Regenerate every table and figure of the evaluation (EXPERIMENTS.md data).
suite:
	$(GO) run ./cmd/mpdp-bench -exp all -seeds 3 -csv results.csv

suite-quick:
	$(GO) run ./cmd/mpdp-bench -exp all -quick

# Fast qualitative regression: do the headline shapes still hold?
check:
	$(GO) run ./cmd/mpdp-bench -check

# Hermetic wire-path self-benchmark: sender + receiver over loopback UDP,
# hedged across 2 paths, invariant-checked (see cmd/mpdp-gateway).
loopback:
	$(GO) run ./cmd/mpdp-gateway -loopback -duration 10s -sched hedge -paths 2

# Fuzz the MPDP1 frame decoder (corpus seeded from testdata golden frames).
fuzz-frame:
	$(GO) test -run '^$$' -fuzz FuzzFrameDecode -fuzztime 30s ./internal/transport/

# Fuzz the MPDPWIR1 wire-event codec (decoder never panics; accepted
# streams round-trip byte-identically and merge cleanly).
fuzz-wire:
	$(GO) test -run '^$$' -fuzz FuzzWireReader -fuzztime 30s ./internal/obs/

# Fuzz the incident-bundle manifest decoder (strict, versioned; anything
# it accepts must survive an encode/decode round trip unchanged).
fuzz-manifest:
	$(GO) test -run '^$$' -fuzz FuzzManifestDecode -fuzztime 30s ./internal/sentinel/

# Hermetic tail-sentinel smoke: loopback gateway under episodic burst
# impairment with the sentinel armed. The run must detect the episode,
# write an incident bundle under incidents/, and mpdp-inspect -incident
# must parse and integrity-check it.
incident-smoke:
	rm -rf incidents
	$(GO) run ./cmd/mpdp-gateway -loopback -packets 4000 -rate 5000 -paths 2 \
		-payload 64 -sched rr -wire-sample 4 \
		-burst-period 2000 -burst-len 250 -burst-delay 3ms -impair-path 0 \
		-sentinel incidents -sentinel-p99 1500us -sentinel-tick 30ms \
		-sentinel-suspect 1 -sentinel-clear 4 -sentinel-cooldown 3
	$(GO) run ./cmd/mpdp-inspect -incident incidents/incident-0001

# Fuzz the mesh control-plane codecs: gossip (MPDPGSP1), handoff record/
# ack/forward (MPDPHND1/MPDPHAK1/MPDPFWD1), and the per-frame mesh
# envelope. Decoders never panic; accepted inputs re-encode byte-identically.
fuzz-mesh:
	$(GO) test -run '^$$' -fuzz FuzzGossipDecode -fuzztime 30s ./internal/mesh/
	$(GO) test -run '^$$' -fuzz FuzzHandoffDecode -fuzztime 30s ./internal/mesh/
	$(GO) test -run '^$$' -fuzz FuzzEnvelopeDecode -fuzztime 30s ./internal/mesh/

# Hermetic multi-gateway mesh smoke (experiment E25): 4 nodes behind one
# steering client, burst impairment on one path, graceful drain of node
# index 1 mid-run with live flow-state handoff. Exits non-zero on any
# at-most-once/in-order violation across the ownership change.
mesh-smoke:
	$(GO) run ./cmd/mpdp-gateway -mesh -mesh-nodes 4 -mesh-drain 1 -duration 4s -flows 32 \
		-burst-period 512 -burst-len 96 -burst-delay 3ms -impair-path 1 \
		-slo "p99<20ms,avail>99" -mesh-handoff-timeout 10s \
		-mesh-sentinel -sentinel-p99 8ms -sentinel-tick 50ms -sentinel-suspect 1

# Hermetic loopback run with wire flight recorders on both endpoints:
# writes run.wir (mpdp-inspect -wire) and wire-trace.json (Chrome tracing)
# and prints the cross-endpoint tail attribution.
wire-trace:
	$(GO) run ./cmd/mpdp-gateway -loopback -packets 20000 -sched hedge -paths 2 \
		-wire-trace run.wir -wire-chrome wire-trace.json -wire-sample 8

# One local command matching the CI gate: vet (all standard analyzers),
# gofmt, and the project's own contract linter (see internal/lint and
# DESIGN.md "Static contracts"). -werror fails on any non-allowed finding.
lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) run ./cmd/mpdp-lint -werror ./...

# Regenerate the hot-path runtime alloc-gate list from //mpdp:hotpath
# annotations and fail if it differs from the checked-in file. CI runs
# every listed benchmark with -benchmem and holds it at 0 allocs/op.
hotpath-gates:
	$(GO) run ./cmd/mpdp-lint -hotpath-gates bench/hotpath_gates.txt ./...
	@git diff --exit-code -- bench/hotpath_gates.txt || \
		{ echo "bench/hotpath_gates.txt was stale; commit the regenerated file"; exit 1; }

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/noisyneighbor
	$(GO) run ./examples/incast
	$(GO) run ./examples/tenantgateway

clean:
	rm -f results.csv suite_output.txt run.wir wire-trace.json
	rm -rf incidents
