# MPDP developer entry points. Everything is plain `go` underneath; the
# Makefile just names the common invocations.

GO ?= go

.PHONY: all build test test-short race verify cover bench suite suite-quick check lint examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Whole suite in quick mode with the end-to-end invariant checker armed.
verify:
	$(GO) run ./cmd/mpdp-bench -exp all -quick -verify

cover:
	$(GO) test -cover ./internal/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the evaluation (EXPERIMENTS.md data).
suite:
	$(GO) run ./cmd/mpdp-bench -exp all -seeds 3 -csv results.csv

suite-quick:
	$(GO) run ./cmd/mpdp-bench -exp all -quick

# Fast qualitative regression: do the headline shapes still hold?
check:
	$(GO) run ./cmd/mpdp-bench -check

lint:
	$(GO) vet ./...
	gofmt -l .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/noisyneighbor
	$(GO) run ./examples/incast
	$(GO) run ./examples/tenantgateway

clean:
	rm -f results.csv test_output.txt bench_output.txt
