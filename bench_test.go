// Benchmarks regenerating the evaluation suite: one benchmark per
// experiment (table/figure) plus micro-benchmarks of the data plane's hot
// paths. Experiment benchmarks run in quick mode per iteration and report
// the headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// both exercises the full pipeline and surfaces the reproduced numbers.
package mpdp_test

import (
	"strconv"
	"testing"

	"mpdp/internal/core"
	"mpdp/internal/experiment"
	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/vnet"
	"mpdp/internal/workload"
	"mpdp/internal/xrand"
)

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	fn, ok := experiment.Registry[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		if _, err := fn(experiment.SuiteOpts{Seed: uint64(i + 1), Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1Motivation(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkE2LoadSweep(b *testing.B)   { benchExperiment(b, "E2") }
func BenchmarkE3CDF(b *testing.B)         { benchExperiment(b, "E3") }
func BenchmarkE4PathSweep(b *testing.B)   { benchExperiment(b, "E4") }
func BenchmarkE5Burstiness(b *testing.B)  { benchExperiment(b, "E5") }
func BenchmarkE6Incast(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7Overhead(b *testing.B)    { benchExperiment(b, "E7") }
func BenchmarkE8Reorder(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9ChainLen(b *testing.B)    { benchExperiment(b, "E9") }
func BenchmarkE10Breakdown(b *testing.B)  { benchExperiment(b, "E10") }
func BenchmarkE11Timeline(b *testing.B)   { benchExperiment(b, "E11") }
func BenchmarkE12Ablation(b *testing.B)   { benchExperiment(b, "E12") }
func BenchmarkE13FlowFCT(b *testing.B)    { benchExperiment(b, "E13") }
func BenchmarkE14QueueCap(b *testing.B)   { benchExperiment(b, "E14") }
func BenchmarkE15ClassIso(b *testing.B)   { benchExperiment(b, "E15") }
func BenchmarkE16Compose(b *testing.B)    { benchExperiment(b, "E16") }
func BenchmarkE17HashAttack(b *testing.B) { benchExperiment(b, "E17") }
func BenchmarkE18ClosedLoop(b *testing.B) { benchExperiment(b, "E18") }
func BenchmarkE19Hetero(b *testing.B)     { benchExperiment(b, "E19") }
func BenchmarkE20FaultRecov(b *testing.B) { benchExperiment(b, "E20") }

// BenchmarkPolicyP99 runs one standard configuration per policy and reports
// the measured p99 (µs) as a custom metric — the E2/E3 numbers, one row per
// sub-benchmark.
func BenchmarkPolicyP99(b *testing.B) {
	for _, pol := range []string{"single", "rss", "rr", "jsq", "flowlet", "dup-all", "mpdp"} {
		pol := pol
		b.Run(pol, func(b *testing.B) {
			var p99 float64
			for i := 0; i < b.N; i++ {
				r, err := experiment.Run(experiment.RunConfig{
					Seed: uint64(i + 1), Policy: pol, Util: 0.7,
					Interference: "moderate",
					Duration:     10 * sim.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				p99 = float64(r.Latency.P99) / 1000
			}
			b.ReportMetric(p99, "p99_us")
		})
	}
}

// BenchmarkDataPlaneThroughput measures simulated packets per wall-clock
// second through the full 4-path MPDP pipeline — the simulator's own speed.
func BenchmarkDataPlaneThroughput(b *testing.B) {
	s := sim.New()
	dp := core.New(s, core.Config{
		NumPaths:     4,
		ChainFactory: func(i int) *nf.Chain { return nf.PresetChain(3) },
		Policy:       core.NewMPDP(core.DefaultMPDPConfig()),
		JitterSigma:  0.15,
		Seed:         1,
	}, nil)
	rng := xrand.New(2)
	traffic := workload.NewTraffic(workload.TrafficConfig{
		Arrival: workload.CBR{Gap: 400},
		Size:    workload.IMIX{Rng: rng.Split()},
		Flows:   64,
		Rng:     rng.Split(),
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dp.Ingress(traffic.NextPacket())
		if i%1024 == 1023 {
			s.Run()
		}
	}
	s.Run()
}

// BenchmarkChainLengths measures raw chain processing cost per preset length.
func BenchmarkChainLengths(b *testing.B) {
	key := packet.FlowKey{
		SrcIP: packet.IP4(10, 0, 0, 1), DstIP: packet.IP4(10, 1, 0, 5),
		SrcPort: 10000, DstPort: 80, Proto: packet.ProtoUDP,
	}
	payload := make([]byte, 512)
	for n := 1; n <= 6; n++ {
		n := n
		b.Run("len"+strconv.Itoa(n), func(b *testing.B) {
			c := nf.PresetChain(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				frame := packet.BuildUDP(key, payload, packet.BuildOpts{})
				p := &packet.Packet{Data: frame, Flow: key}
				c.Process(sim.Time(i), p)
			}
		})
	}
}

// BenchmarkReorderBuffer measures the in-order stage under 25% reordering.
func BenchmarkReorderBuffer(b *testing.B) {
	s := sim.New()
	r := core.NewReorder(s, sim.Millisecond, func(p *packet.Packet) {})
	rng := xrand.New(3)
	b.ReportAllocs()
	b.ResetTimer()
	var seq uint64
	pendingSwap := make([]*packet.Packet, 0, 4)
	for i := 0; i < b.N; i++ {
		p := &packet.Packet{ID: uint64(i), FlowID: uint64(i % 16), Seq: seq / 16}
		seq++
		if rng.Bool(0.25) && len(pendingSwap) < 4 {
			pendingSwap = append(pendingSwap, p)
			continue
		}
		r.Submit(p)
		for _, q := range pendingSwap {
			r.Submit(q)
		}
		pendingSwap = pendingSwap[:0]
	}
}

// BenchmarkLaneServiceLoop measures the lane event loop without policy or
// reorder overhead.
func BenchmarkLaneServiceLoop(b *testing.B) {
	s := sim.New()
	lane := vnet.NewLane(0, s, vnet.DefaultLaneConfig(nf.PresetChain(1)), xrand.New(1), nil)
	key := packet.FlowKey{
		SrcIP: packet.IP4(10, 0, 0, 1), DstIP: packet.IP4(10, 1, 0, 5),
		SrcPort: 10000, DstPort: 80, Proto: packet.ProtoUDP,
	}
	frame := packet.BuildUDP(key, make([]byte, 128), packet.BuildOpts{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := make([]byte, len(frame))
		copy(data, frame)
		lane.Enqueue(&packet.Packet{ID: uint64(i), Data: data, Flow: key, FlowID: 1})
		if i%512 == 511 {
			s.Run()
		}
	}
	s.Run()
}
