package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// benchTolerance is the regression gate for -bench-diff: a fresh run may not
// exceed the checked-in baseline's p99 latency or allocations-per-packet by
// more than this factor. Virtual-time latency is deterministic per seed, so
// any p99 drift at all is a code-behavior change; the 10% headroom exists
// for the alloc counter, which wobbles with runtime scheduling.
const benchTolerance = 1.10

// wireBenchTolerance gates the wall-clock wire scenarios (E21 and the
// E25 mesh): loopback UDP latency moves with host load and kernel
// scheduling, so their gate is a coarse guard against order-of-magnitude
// regressions, not a 10% tripwire.
const wireBenchTolerance = 3.0

// runBenchDiff re-runs every scenario found as BENCH_*.json in dir — with
// the seed and quick setting each baseline recorded — and fails if the fresh
// p99 or allocs/packet regress past benchTolerance. This is the CI gate that
// keeps the checked-in snapshots honest.
func runBenchDiff(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no BENCH_*.json baselines in %s", dir)
	}
	sort.Strings(paths)

	var failures []string
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var base benchDoc
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		sc, ok := findScenario(base.Scenario, base.Seed, base.Quick)
		if !ok {
			return fmt.Errorf("%s names unknown scenario %q", path, base.Scenario)
		}
		fresh, err := measureScenario(sc, base.Seed, base.Quick)
		if err != nil {
			return err
		}

		tol := benchTolerance
		if sc.wire != nil || sc.mesh != nil {
			tol = wireBenchTolerance
		}
		p99Ratio := ratio(float64(fresh.LatencyNS.P99), float64(base.LatencyNS.P99))
		allocRatio := ratio(fresh.Allocs.PerPacket, base.Allocs.PerPacket)
		verdict := "ok"
		if p99Ratio > tol {
			verdict = "P99 REGRESSION"
			failures = append(failures, fmt.Sprintf(
				"%s: p99 %.1fus vs baseline %.1fus (%.2fx > %.2fx)",
				base.Scenario, float64(fresh.LatencyNS.P99)/1000,
				float64(base.LatencyNS.P99)/1000, p99Ratio, tol))
		}
		if allocRatio > tol {
			verdict = "ALLOC REGRESSION"
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/pkt %.2f vs baseline %.2f (%.2fx > %.2fx)",
				base.Scenario, fresh.Allocs.PerPacket, base.Allocs.PerPacket,
				allocRatio, tol))
		}
		fmt.Printf("%-18s p99 %8.1fus vs %8.1fus (%.3fx)  allocs/pkt %6.2f vs %6.2f (%.3fx)  %s\n",
			base.Scenario,
			float64(fresh.LatencyNS.P99)/1000, float64(base.LatencyNS.P99)/1000, p99Ratio,
			fresh.Allocs.PerPacket, base.Allocs.PerPacket, allocRatio, verdict)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "BENCH REGRESSION: %s\n", f)
		}
		return fmt.Errorf("%d benchmark regression(s) past the %.0f%% gate",
			len(failures), (benchTolerance-1)*100)
	}
	fmt.Printf("all %d scenarios within the %.0f%% gate\n", len(paths), (benchTolerance-1)*100)
	return nil
}

func findScenario(name string, seed uint64, quick bool) (benchScenario, bool) {
	for _, sc := range benchScenarios(seed, quick) {
		if sc.name == name {
			return sc, true
		}
	}
	return benchScenario{}, false
}

// ratio returns fresh/base, treating a zero baseline as "no gate" (1.0)
// unless the fresh value is nonzero, in which case any growth from zero is
// an unbounded regression (past every tolerance, including the wire gate).
func ratio(fresh, base float64) float64 {
	if base <= 0 {
		if fresh <= 0 {
			return 1
		}
		return 1e9
	}
	return fresh / base
}
