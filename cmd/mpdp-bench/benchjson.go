package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"mpdp/internal/core"
	"mpdp/internal/experiment"
	"mpdp/internal/mesh"
	"mpdp/internal/sim"
	"mpdp/internal/transport"
)

// benchScenario is one canonical configuration for the machine-readable
// benchmark mode (-bench-json). The set spans the headline comparison:
// single-path vs multipath, quiet vs interfered host — plus the wire
// transport over real loopback sockets (wire non-nil).
type benchScenario struct {
	name string
	cfg  experiment.RunConfig
	wire *transport.LoopbackConfig
	mesh *mesh.MeshConfig
}

func benchScenarios(seed uint64, quick bool) []benchScenario {
	dur := 50 * sim.Millisecond
	if quick {
		dur = 10 * sim.Millisecond
	}
	base := func(policy, intf string) experiment.RunConfig {
		return experiment.RunConfig{
			Seed: seed, Policy: policy, Interference: intf,
			Util: 0.7, Duration: dur,
		}
	}
	// The E22 scenario exercises the deadline-aware policy end to end:
	// every packet carries a 2 ms deadline and duplication is paid for out
	// of the policy's default budget.
	e22 := base("deadline", "moderate")
	e22.Deadline = 2 * sim.Millisecond
	// E21: the wire transport end to end — real loopback UDP sockets,
	// hedged across two paths, e2e latency from the span histograms. Unlike
	// the simulator scenarios this one runs on the wall clock, so
	// -bench-diff holds it to the wider wire gate instead of the 10%
	// tripwire.
	e21 := &transport.LoopbackConfig{
		Paths:     2,
		Scheduler: transport.SchedHedge,
		Packets:   5000,
		Payload:   256,
		Health: core.HealthConfig{
			// Mirror mpdp-gateway's wire tuning: scheduler stalls and GC
			// pauses must not quarantine a healthy loopback path mid-bench.
			SuspectTimeout:    200 * sim.Millisecond,
			QuarantineBackoff: 50 * sim.Millisecond,
			ProbeSuccesses:    8,
			DropWindowMin:     64,
		},
	}
	if quick {
		e21.Packets = 1500
	}
	wireHealth := e21.Health
	// E25: the multi-gateway mesh end to end — four gateways behind one
	// steering client over loopback UDP, with a graceful drain of node
	// index 1 mid-run so the baseline prices the full ownership handoff,
	// not just steady-state steering. Wall clock, like E21, so the wire
	// gate applies. No impairer: the fault-injected variant lives in the
	// E25 experiment and the CI mesh-smoke job; the checked-in baseline
	// wants the repeatable cost of the mechanism itself.
	e25 := &mesh.MeshConfig{
		Nodes:        4,
		PathsPerNode: 2,
		Scheduler:    transport.SchedHedge,
		Flows:        32,
		Payload:      256,
		Duration:     2 * time.Second,
		DrainNode:    1,
		DrainAfter:   0.5,
		// Graceful drain: a promotion timeout the drain cannot trip, so
		// a loaded CI host measures the handoff, not the escape hatch.
		HandoffTimeout: 10 * time.Second,
		Health:         wireHealth,
		NodeHealth:     wireHealth,
	}
	if quick {
		e25.Duration = time.Second
	}
	return []benchScenario{
		{name: "single_none", cfg: base("single", "none")},
		{name: "single_moderate", cfg: base("single", "moderate")},
		{name: "mpdp_none", cfg: base("mpdp", "none")},
		{name: "mpdp_moderate", cfg: base("mpdp", "moderate")},
		{name: "E22", cfg: e22},
		{name: "E21_loopback", wire: e21},
		{name: "E25_mesh", mesh: e25},
	}
}

// benchDoc is the JSON document one scenario emits: enough for a CI
// artifact to diff runs (throughput, tail latency, allocation pressure).
type benchDoc struct {
	Scenario     string  `json:"scenario"`
	Policy       string  `json:"policy"`
	Interference string  `json:"interference"`
	Seed         uint64  `json:"seed"`
	Quick        bool    `json:"quick"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Offered      uint64  `json:"offered"`
	Delivered    uint64  `json:"delivered"`
	DeliveryRate float64 `json:"delivery_rate"`
	GoodputGbps  float64 `json:"goodput_gbps"`
	ThroughputPS float64 `json:"throughput_pkts_per_sec"` // wall-clock simulation speed

	LatencyNS struct {
		Mean float64 `json:"mean"`
		P50  int64   `json:"p50"`
		P90  int64   `json:"p90"`
		P99  int64   `json:"p99"`
		P999 int64   `json:"p999"`
		Max  int64   `json:"max"`
	} `json:"latency_ns"`

	// Deadline-aware scenarios also record the cost side of the frontier.
	DeadlineHitRate float64 `json:"deadline_hit_rate,omitempty"`
	DupBytes        uint64  `json:"dup_bytes,omitempty"`

	WallMS float64 `json:"wall_ms"`
	Allocs struct {
		Mallocs         uint64  `json:"mallocs"`
		TotalAllocBytes uint64  `json:"total_alloc_bytes"`
		PerPacket       float64 `json:"mallocs_per_offered_packet"`
	} `json:"allocs"`
}

// measureScenario runs one scenario with allocation accounting and condenses
// it into the benchmark document. Shared by -bench-json and -bench-diff so a
// diff compares like with like.
func measureScenario(sc benchScenario, seed uint64, quick bool) (benchDoc, error) {
	if sc.wire != nil {
		return measureWireScenario(sc, seed, quick)
	}
	if sc.mesh != nil {
		return measureMeshScenario(sc, seed, quick)
	}
	var doc benchDoc
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := experiment.Run(sc.cfg)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return doc, fmt.Errorf("scenario %s: %w", sc.name, err)
	}

	doc.Scenario = sc.name
	doc.Policy = res.Config.Policy
	doc.Interference = res.Config.Interference
	doc.Seed = seed
	doc.Quick = quick
	doc.GOMAXPROCS = runtime.GOMAXPROCS(0)
	doc.Offered = res.Offered
	doc.Delivered = res.Delivered
	doc.DeliveryRate = res.DeliveryRate
	doc.GoodputGbps = res.GoodputGbps
	if s := wall.Seconds(); s > 0 {
		doc.ThroughputPS = float64(res.Offered) / s
	}
	doc.LatencyNS.Mean = res.Latency.Mean
	doc.LatencyNS.P50 = res.Latency.P50
	doc.LatencyNS.P90 = res.Latency.P90
	doc.LatencyNS.P99 = res.Latency.P99
	doc.LatencyNS.P999 = res.Latency.P999
	doc.LatencyNS.Max = res.Latency.Max
	if res.Config.Deadline > 0 {
		doc.DeadlineHitRate = res.DeadlineHitRate
		doc.DupBytes = res.DupBytes
	}
	doc.WallMS = float64(wall.Microseconds()) / 1000
	doc.Allocs.Mallocs = after.Mallocs - before.Mallocs
	doc.Allocs.TotalAllocBytes = after.TotalAlloc - before.TotalAlloc
	if res.Offered > 0 {
		doc.Allocs.PerPacket = float64(doc.Allocs.Mallocs) / float64(res.Offered)
	}
	return doc, nil
}

// measureWireScenario runs a loopback wire scenario: latency comes from
// the e2e span histogram (real wall-clock wire latency, not virtual time),
// allocation pressure from the same MemStats delta the simulator scenarios
// use. The invariant verifier is armed; a violating run fails the bench.
func measureWireScenario(sc benchScenario, seed uint64, quick bool) (benchDoc, error) {
	var doc benchDoc
	cfg := *sc.wire // copy: reruns must not share Spans
	spans := transport.NewSpans(nil)
	cfg.Spans = spans
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	rep, err := transport.RunLoopback(cfg)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return doc, fmt.Errorf("scenario %s: %w", sc.name, err)
	}
	if err := rep.Verify(); err != nil {
		return doc, fmt.Errorf("scenario %s: %w", sc.name, err)
	}

	doc.Scenario = sc.name
	doc.Policy = string(cfg.Scheduler)
	doc.Interference = "loopback"
	doc.Seed = seed
	doc.Quick = quick
	doc.GOMAXPROCS = runtime.GOMAXPROCS(0)
	doc.Offered = rep.Packets
	doc.Delivered = rep.Delivered
	if rep.Packets > 0 {
		doc.DeliveryRate = float64(rep.Delivered) / float64(rep.Packets)
	}
	if s := rep.Elapsed.Seconds(); s > 0 {
		doc.GoodputGbps = float64(rep.Delivered) * float64(cfg.Payload) * 8 / s / 1e9
		doc.ThroughputPS = float64(rep.Packets) / s
	}
	for _, sp := range rep.Spans {
		if sp.Stage != "e2e" {
			continue
		}
		doc.LatencyNS.Mean = sp.Latency.Mean
		doc.LatencyNS.P50 = sp.Latency.P50
		doc.LatencyNS.P90 = sp.Latency.P90
		doc.LatencyNS.P99 = sp.Latency.P99
		doc.LatencyNS.P999 = sp.Latency.P999
		doc.LatencyNS.Max = sp.Latency.Max
	}
	doc.WallMS = float64(wall.Microseconds()) / 1000
	doc.Allocs.Mallocs = after.Mallocs - before.Mallocs
	doc.Allocs.TotalAllocBytes = after.TotalAlloc - before.TotalAlloc
	if rep.Packets > 0 {
		doc.Allocs.PerPacket = float64(doc.Allocs.Mallocs) / float64(rep.Packets)
	}
	return doc, nil
}

// measureMeshScenario runs the multi-gateway mesh scenario: N in-process
// gateways plus a steering client over loopback UDP, with the mid-run
// drain included in the measured window. Latency is the mesh-wide e2e
// p99 (wall clock); the stream invariant is armed across the ownership
// change and a violating run fails the bench.
func measureMeshScenario(sc benchScenario, seed uint64, quick bool) (benchDoc, error) {
	var doc benchDoc
	cfg := *sc.mesh // copy: reruns must not share state
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	rep, err := mesh.RunMesh(cfg)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return doc, fmt.Errorf("scenario %s: %w", sc.name, err)
	}
	if err := rep.Verify(); err != nil {
		return doc, fmt.Errorf("scenario %s: %w", sc.name, err)
	}
	if rep.HandoffFlows == 0 {
		return doc, fmt.Errorf("scenario %s: the drain moved no flow state; the baseline would not price the handoff", sc.name)
	}

	doc.Scenario = sc.name
	doc.Policy = string(cfg.Scheduler)
	doc.Interference = "mesh-drain"
	doc.Seed = seed
	doc.Quick = quick
	doc.GOMAXPROCS = runtime.GOMAXPROCS(0)
	doc.Offered = rep.Packets
	doc.Delivered = rep.Delivered
	if rep.Packets > 0 {
		doc.DeliveryRate = float64(rep.Delivered) / float64(rep.Packets)
	}
	if s := rep.Elapsed.Seconds(); s > 0 {
		doc.GoodputGbps = float64(rep.Delivered) * float64(cfg.Payload) * 8 / s / 1e9
		doc.ThroughputPS = float64(rep.Packets) / s
	}
	doc.LatencyNS.P99 = rep.P99OverallNanos
	doc.WallMS = float64(wall.Microseconds()) / 1000
	doc.Allocs.Mallocs = after.Mallocs - before.Mallocs
	doc.Allocs.TotalAllocBytes = after.TotalAlloc - before.TotalAlloc
	if rep.Packets > 0 {
		doc.Allocs.PerPacket = float64(doc.Allocs.Mallocs) / float64(rep.Packets)
	}
	return doc, nil
}

// runBenchJSON runs the canonical scenarios and writes one
// BENCH_<scenario>.json per scenario into dir.
func runBenchJSON(dir string, seed uint64, quick bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, sc := range benchScenarios(seed, quick) {
		doc, err := measureScenario(sc, seed, quick)
		if err != nil {
			return err
		}

		path := filepath.Join(dir, "BENCH_"+sc.name+".json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%-18s p99=%8.1fus delivered=%5.1f%% wall=%7.1fms allocs/pkt=%5.1f -> %s\n",
			sc.name, float64(doc.LatencyNS.P99)/1000, doc.DeliveryRate*100,
			doc.WallMS, doc.Allocs.PerPacket, path)
	}
	return nil
}
