// mpdp-bench regenerates the experiment suite: every table and figure of
// the MPDP evaluation (see DESIGN.md §4 for the index).
//
// Usage:
//
//	mpdp-bench -exp E2              # one experiment, ASCII to stdout
//	mpdp-bench -exp all -quick      # whole suite, reduced horizons
//	mpdp-bench -exp E7 -csv out.csv # also write CSV
//	mpdp-bench -list                # list experiment IDs
//
// Diagnostic profile mode (-exemplars K) runs one instrumented simulation
// with the flight recorder on and reports where the K slowest packets'
// latency went, instead of running the E-series registry:
//
//	mpdp-bench -exemplars 8                    # attribution report
//	mpdp-bench -exemplars 8 -chrome tail.json  # + Perfetto-viewable trace
//	mpdp-bench -exemplars 8 -events run.obs    # + raw event stream (mpdp-inspect)
//
// Machine-readable benchmark mode (-bench-json DIR) runs the canonical
// single-path/multipath × quiet/interfered scenarios and writes one
// BENCH_<scenario>.json per scenario (throughput, latency quantiles,
// allocation counts) — the artifact CI archives per commit:
//
//	mpdp-bench -bench-json out/ -quick
//
// The companion gate mode (-bench-diff DIR) re-runs every scenario a
// BENCH_*.json in DIR recorded (same seed, same horizon) and fails when the
// fresh p99 latency or allocs/packet exceed the baseline by more than 10%:
//
//	mpdp-bench -bench-diff bench/
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mpdp/internal/experiment"
	"mpdp/internal/obs"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment ID (E1..E20) or 'all'")
		seed   = flag.Uint64("seed", 1, "base random seed")
		seeds  = flag.Int("seeds", 2, "independent repetitions per data point")
		quick  = flag.Bool("quick", false, "shrink horizons for a fast smoke run")
		csv    = flag.String("csv", "", "also write results as CSV to this file")
		list   = flag.Bool("list", false, "list experiment IDs and exit")
		plot   = flag.Bool("plot", false, "also render figures as ASCII charts")
		check  = flag.Bool("check", false, "run the headline shape checks and exit (nonzero on violation)")
		verify = flag.Bool("verify", false, "attach the end-to-end invariant checker to every run (fails on any violation)")

		exemplars   = flag.Int("exemplars", 0, "profile mode: keep the K slowest packets and report tail attribution")
		events      = flag.String("events", "", "profile mode: write the recorded event stream (MPDPOBS1) to this file")
		chrome      = flag.String("chrome", "", "profile mode: write exemplar timelines as Chrome trace-event JSON")
		exemplarCSV = flag.String("exemplar-csv", "", "profile mode: write the exemplar latency decomposition as CSV")
		policy      = flag.String("policy", "mpdp", "profile mode: steering policy")
		intf        = flag.String("interference", "moderate", "profile mode: interference level (none/light/moderate/heavy)")

		benchJSON = flag.String("bench-json", "", "run the canonical benchmark scenarios and write BENCH_<scenario>.json files into this directory")
		benchDiff = flag.String("bench-diff", "", "re-run the scenarios recorded as BENCH_*.json in this directory and fail on >10% p99 or allocs/pkt regression")
	)
	flag.Parse()
	experiment.SetVerify(*verify)

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *seed, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "mpdp-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *benchDiff != "" {
		if err := runBenchDiff(*benchDiff); err != nil {
			fmt.Fprintf(os.Stderr, "mpdp-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *exemplars > 0 {
		if err := runProfile(*exemplars, *seed, *quick, *plot, *csv, *events, *chrome, *exemplarCSV, *policy, *intf); err != nil {
			fmt.Fprintf(os.Stderr, "mpdp-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *check {
		bad, err := experiment.CheckShapes(experiment.SuiteOpts{Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpdp-bench: %v\n", err)
			os.Exit(1)
		}
		if len(bad) == 0 {
			fmt.Println("all headline shapes hold")
			return
		}
		for _, b := range bad {
			fmt.Fprintf(os.Stderr, "SHAPE VIOLATION: %s\n", b)
		}
		os.Exit(2)
	}

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := experiment.SuiteOpts{Seed: *seed, Seeds: *seeds, Quick: *quick}

	var ids []string
	if strings.EqualFold(*exp, "all") {
		ids = experiment.IDs()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	var csvOut *os.File
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpdp-bench: %v\n", err)
			os.Exit(1)
		}
		csvOut = f
	}

	for _, id := range ids {
		fn, ok := experiment.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "mpdp-bench: unknown experiment %q (try -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		res, err := fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpdp-bench: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		if err := res.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mpdp-bench: rendering %s: %v\n", id, err)
			os.Exit(1)
		}
		if *plot {
			for i := range res.Figures {
				fmt.Println()
				if err := res.Figures[i].Plot(os.Stdout, 72, 20); err != nil {
					fmt.Fprintf(os.Stderr, "mpdp-bench: plotting %s: %v\n", id, err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s wall time: %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if csvOut != nil {
			if err := res.CSV(csvOut); err != nil {
				fmt.Fprintf(os.Stderr, "mpdp-bench: writing %s: %v\n", *csv, err)
				os.Exit(1)
			}
		}
	}
	if csvOut != nil {
		if err := csvOut.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "mpdp-bench: closing %s: %v\n", *csv, err)
			os.Exit(1)
		}
	}
}

// runProfile executes the diagnostic profile run and writes the requested
// artifacts.
func runProfile(k int, seed uint64, quick, plot bool, csvPath, eventsPath, chromePath, exemplarCSVPath, policy, interference string) error {
	start := time.Now()
	out, err := experiment.Profile(experiment.ProfileOpts{
		Seed: seed, Exemplars: k,
		Policy: policy, Interference: interference,
		Quick: quick,
	})
	if err != nil {
		return err
	}
	if err := out.Result.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := out.Report.Render(os.Stdout); err != nil {
		return err
	}
	if plot {
		for i := range out.Result.Figures {
			fmt.Println()
			if err := out.Result.Figures[i].Plot(os.Stdout, 72, 20); err != nil {
				return err
			}
		}
	}
	fmt.Printf("(profile wall time: %v)\n", time.Since(start).Round(time.Millisecond))

	writeFile := func(path string, write func(f *os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", path, err)
		}
		return f.Close()
	}
	if err := writeFile(eventsPath, func(f *os.File) error {
		return obs.WriteAll(f, out.Events)
	}); err != nil {
		return err
	}
	if err := writeFile(chromePath, func(f *os.File) error {
		return obs.WriteChromeTrace(f, out.Exemplars)
	}); err != nil {
		return err
	}
	if err := writeFile(exemplarCSVPath, func(f *os.File) error {
		return obs.WriteExemplarCSV(f, out.Exemplars)
	}); err != nil {
		return err
	}
	return writeFile(csvPath, func(f *os.File) error {
		return out.Result.CSV(f)
	})
}
