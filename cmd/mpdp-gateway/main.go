// mpdp-gateway runs the UDP multipath wire transport (internal/transport):
// real frames over real sockets across N concurrent paths, with sender-side
// path scheduling (round-robin, least-inflight, hedged duplication),
// per-path loss detection feeding the path-health state machine, and
// receiver-side first-copy-wins dedup plus in-order release through the
// reorder buffer. It is the paper's multipath data plane taken off the
// simulator and onto a wire.
//
// Usage:
//
//	mpdp-gateway -loopback -duration 10s            # hermetic self-benchmark
//	mpdp-gateway -loopback -packets 200000 -sched hedge -paths 2
//	mpdp-gateway -loopback -drop 0.2 -impair-path 1 # fault-injected run
//	mpdp-gateway -loopback -wire-trace run.wir -wire-chrome wire.json -wire-sample 1
//	mpdp-gateway -loopback -burst-period 512 -burst-len 64 -impair-path 0
//	mpdp-gateway -mesh -mesh-nodes 4 -mesh-drain 1 -duration 2s \
//	    -burst-period 512 -burst-len 96 -burst-delay 3ms -impair-path 1
//	mpdp-gateway -mode recv -addrs 0.0.0.0:7401,0.0.0.0:7402
//	mpdp-gateway -mode echo -addrs 0.0.0.0:7401,0.0.0.0:7402
//	mpdp-gateway -mode send -remotes host:7401,host:7402 -duration 10s
//	mpdp-gateway -loopback -listen :9090 -slo "p99<2ms,avail>99.9"
//	mpdp-gateway -loopback -burst-period 2000 -burst-len 250 -burst-delay 3ms \
//	    -impair-path 0 -sentinel incidents/ -sentinel-p99 1500us
//
// With -listen, the wire-path stage histograms (encode, socket_write,
// socket_read, reorder, deliver, e2e) are served live at /metrics and
// /metrics.json; with -slo, every delivery and loss feeds a burn-rate
// tracker served at /slo.json. SIGINT/SIGTERM stops the run and prints the
// normal exit report.
//
// With -wire-trace (loopback only), a wire flight recorder is attached to
// both endpoints: sampled per-frame lifecycle events are merged by
// (flow, seq) at exit into exact cross-endpoint tail attribution (sender
// queue + propagation + reorder wait + deliver = end to end), the raw
// MPDPWIR1 stream is written for mpdp-inspect -wire, and -wire-chrome
// exports the slowest packets as a Chrome trace with one lane per path.
// Tracing also enables the sender_queue and flight span stages.
//
// With -mesh, the gateway runs a hermetic in-process multi-gateway mesh:
// -mesh-nodes gateways behind one steering client, flows pinned to owners
// by rendezvous hashing, membership and path health gossiped between
// nodes, and (with -mesh-drain N) a graceful mid-run drain of one node
// whose live flow state is handed off to the new owners — the run fails
// loudly if any packet is double-delivered or reordered across the
// ownership change. Mesh metric families appear on -listen; the
// -mesh-sentinel detector flags tail episodes from the mesh-aggregate p99.
//
// With -sentinel <dir> (loopback only), the tail sentinel watches the
// windowed e2e p99, the SLO burn state, and path health on every
// -sentinel-tick; when a tail episode triggers it ramps both flight
// recorders to -sentinel-ramp, and when the episode clears it writes a
// self-contained incident bundle (pre/during MPDPWIR1 streams, stage
// attribution, SLO status, path-health timeline, optional pprof via
// -sentinel-pprof + -debug-listen) under <dir>/incident-NNNN for
// mpdp-inspect -incident.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"mpdp/internal/core"
	"mpdp/internal/experiment"
	"mpdp/internal/live"
	"mpdp/internal/obs"
	"mpdp/internal/packet"
	"mpdp/internal/sentinel"
	"mpdp/internal/shutdown"
	"mpdp/internal/sim"
	"mpdp/internal/transport"
)

func main() {
	var (
		mode     = flag.String("mode", "loopback", "loopback|mesh|send|recv|echo")
		loopback = flag.Bool("loopback", false, "shorthand for -mode loopback")
		paths    = flag.Int("paths", 2, "number of UDP paths (loopback mode)")
		addrs    = flag.String("addrs", "", "recv/echo: comma-separated listen addresses, one per path")
		remotes  = flag.String("remotes", "", "send: comma-separated receiver addresses, one per path")
		sched    = flag.String("sched", "hedge", "path scheduler: rr|least-inflight|hedge|deadline")
		hedgeK   = flag.Int("hedge", 2, "copies per packet for -sched hedge")
		deadline = flag.Duration("deadline", 0, "-sched deadline: per-packet deadline (0 = default 2ms)")
		dupBud   = flag.String("dup-budget", "", "-sched deadline: duplication budget, bytes/sec (e.g. 1MBps; 0 or empty disables duplication)")
		dupMarg  = flag.Float64("deadline-margin", 0, "-sched deadline: jitter multiplier in the risk estimate (0 = default 3)")
		packets  = flag.Uint64("packets", 0, "stop after this many packets (0 = run for -duration)")
		duration = flag.Duration("duration", 0, "send/loopback run length (default 3s when -packets is 0)")
		rate     = flag.Float64("rate", 0, "offered packets/sec (0 = as fast as the wire accepts)")
		payload  = flag.Int("payload", 256, "payload bytes per packet")
		flows    = flag.Int("flows", 8, "distinct flow IDs")
		reorderT = flag.Duration("reorder-timeout", 5*time.Millisecond, "receiver gap timeout")

		drop    = flag.Float64("drop", 0, "impairer: drop fraction")
		dup     = flag.Float64("dup", 0, "impairer: wire-duplication fraction")
		delayF  = flag.Float64("delay-frac", 0, "impairer: fraction of frames delayed by -delay")
		delay   = flag.Duration("delay", time.Millisecond, "impairer: injected delay")
		impPath = flag.Int("impair-path", -1, "impairer: target path (-1 = all)")
		seed    = flag.Uint64("seed", 1, "impairer seed")

		burstPeriod = flag.Uint64("burst-period", 0, "burst impairer: cycle length in frames (0 = off)")
		burstLen    = flag.Uint64("burst-len", 0, "burst impairer: frames delayed at the head of each cycle")
		burstDelay  = flag.Duration("burst-delay", 2*time.Millisecond, "burst impairer: injected delay inside a burst (on -impair-path)")

		wireTrace  = flag.String("wire-trace", "", "loopback: write the merged wire flight-recorder stream (MPDPWIR1) here and print the attribution summary")
		wireChrome = flag.String("wire-chrome", "", "loopback: export the slowest traced packets as Chrome trace-event JSON, one lane per path")
		wireSample = flag.Int("wire-sample", 64, "wire trace: sample every Nth (flow,seq), rounded up to a power of two (1 = every packet)")
		wireTop    = flag.Int("wire-top", 8, "wire trace: slowest timelines to print and export")

		listen      = flag.String("listen", "", "serve live metrics over HTTP on this address (e.g. :9090)")
		debugListen = flag.String("debug-listen", "", "serve /debug/pprof and /debug/vars on this address (keep it loopback or firewalled)")
		sloSpec     = flag.String("slo", "", `SLO objectives, e.g. "p99<2ms,avail>99.9"`)
		jsonOut     = flag.Bool("json", false, "print the final report as JSON")

		sentinelDir     = flag.String("sentinel", "", "loopback: run the tail sentinel, writing incident bundles under this directory")
		sentinelP99     = flag.Duration("sentinel-p99", 2*time.Millisecond, "sentinel: windowed e2e p99 threshold that arms the detector")
		sentinelTick    = flag.Duration("sentinel-tick", 100*time.Millisecond, "sentinel: signal sampling period")
		sentinelRamp    = flag.Int("sentinel-ramp", 1, "sentinel: wire-trace sample-every rate during an episode (1 = every packet)")
		sentinelSuspect = flag.Int("sentinel-suspect", 2, "sentinel: consecutive breach ticks before an episode triggers")
		sentinelClear   = flag.Int("sentinel-clear", 3, "sentinel: consecutive clean ticks before an episode ends")
		sentinelCool    = flag.Int("sentinel-cooldown", 5, "sentinel: post-episode ticks during which new triggers are ignored")
		sentinelPprof   = flag.Bool("sentinel-pprof", false, "sentinel: grab pprof CPU/heap from -debug-listen at episode start")

		meshMode       = flag.Bool("mesh", false, "run a hermetic in-process multi-gateway mesh (HRW steering + gossip + handoff)")
		meshNodes      = flag.Int("mesh-nodes", 4, "mesh: gateway node count")
		meshDrain      = flag.Int("mesh-drain", -1, "mesh: gracefully drain the node at this index mid-run (-1 = none)")
		meshDrainAfter = flag.Float64("mesh-drain-after", 0.5, "mesh: run fraction at which the drain starts")
		meshGossip     = flag.Duration("mesh-gossip", 25*time.Millisecond, "mesh: gossip interval")
		meshHandoffT   = flag.Duration("mesh-handoff-timeout", 0, "mesh: pending-flow promotion timeout (0 = default)")
		meshSettle     = flag.Duration("mesh-drain-settle", 0, "mesh: drain settle window before flow export (0 = default)")
		meshSentinel   = flag.Bool("mesh-sentinel", false, "mesh: attach the tail-episode detector (tuned by the -sentinel-* flags)")
	)
	flag.Parse()
	if *loopback {
		*mode = "loopback"
	}
	if *meshMode {
		*mode = "mesh"
	}

	// Flag hygiene: an impossible value is an operator mistake, and a
	// silently-clamped mistake produces a run that measures something
	// other than what was asked for. Reject loudly instead.
	if *wireSample < 1 {
		fatalf("-wire-sample %d: sampling rate must be >= 1 (1 = every packet)", *wireSample)
	}
	if *burstLen > 0 && *burstPeriod == 0 {
		fatalf("-burst-len %d needs -burst-period > 0", *burstLen)
	}
	if *burstPeriod > 0 {
		if *burstLen == 0 {
			fatalf("-burst-period %d with -burst-len 0 would delay nothing; set -burst-len", *burstPeriod)
		}
		if *burstLen > *burstPeriod {
			fatalf("-burst-len %d exceeds -burst-period %d: the burst would never end", *burstLen, *burstPeriod)
		}
	}
	if *sentinelDir != "" && *mode != "loopback" {
		fatalf("-sentinel needs both endpoints in one process: loopback mode only")
	}
	if *sentinelP99 <= 0 {
		fatalf("-sentinel-p99 %v: threshold must be > 0", *sentinelP99)
	}
	if *sentinelTick <= 0 {
		fatalf("-sentinel-tick %v: sampling period must be > 0", *sentinelTick)
	}
	if *sentinelRamp < 1 {
		fatalf("-sentinel-ramp %d: episode sampling rate must be >= 1 (1 = every packet)", *sentinelRamp)
	}
	if *sentinelSuspect < 1 || *sentinelClear < 1 || *sentinelCool < 1 {
		fatalf("-sentinel-suspect/-sentinel-clear/-sentinel-cooldown must all be >= 1 (got %d/%d/%d)",
			*sentinelSuspect, *sentinelClear, *sentinelCool)
	}
	if *sentinelPprof && *debugListen == "" {
		fatalf("-sentinel-pprof grabs profiles from the debug listener; set -debug-listen")
	}
	if *mode == "mesh" {
		if *meshNodes < 1 {
			fatalf("-mesh-nodes %d: a mesh needs at least one gateway", *meshNodes)
		}
		if *meshDrain >= *meshNodes {
			fatalf("-mesh-drain %d: index out of range for %d nodes", *meshDrain, *meshNodes)
		}
		if *meshDrainAfter <= 0 || *meshDrainAfter >= 1 {
			fatalf("-mesh-drain-after %v: must be in (0,1), a fraction of the run", *meshDrainAfter)
		}
		if *meshGossip <= 0 {
			fatalf("-mesh-gossip %v: interval must be > 0", *meshGossip)
		}
		// -sentinel (incident capture) and -wire-trace/-wire-chrome need a
		// single sender/receiver pair; the generic loopback-only checks
		// above and below reject them for mesh mode too. -mesh-sentinel is
		// the mesh's episode detector.
	}

	// On the wire, "no budget configured" means duplication stays off: the
	// deadline scheduler then always takes its best single path.
	budgetBps := 0.0
	if *dupBud != "" {
		v, err := experiment.ParseByteRate(*dupBud)
		if err != nil {
			fatalf("%v", err)
		}
		budgetBps = v
	}

	var tracker *live.SLOTracker
	if *sloSpec != "" {
		obj, err := live.ParseSLO(*sloSpec)
		if err != nil {
			fatalf("%v", err)
		}
		tracker = live.NewSLOTracker(obj, nil)
	}

	reg := live.NewRegistry()
	spans := transport.NewSpans(reg)
	stop := shutdown.Notify()

	if *listen != "" {
		sampler := live.NewMetricsSampler(reg, time.Second, 300)
		defer sampler.Stop()
		mux := http.NewServeMux()
		mh := live.MetricsHandler(reg, sampler)
		mux.Handle("/metrics", mh)
		mux.Handle("/metrics.json", mh)
		endpoints := "/metrics, /metrics.json"
		if tracker != nil {
			mux.Handle("/slo.json", live.SLOHandler(tracker))
			endpoints += ", /slo.json"
		}
		srv := &http.Server{Addr: *listen, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "mpdp-gateway: metrics server: %v\n", err)
			}
		}()
		fmt.Printf("serving metrics on %s (%s)\n", *listen, endpoints)
	}
	if *debugListen != "" {
		srv := &http.Server{Addr: *debugListen, Handler: live.DebugHandler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "mpdp-gateway: debug server: %v\n", err)
			}
		}()
		fmt.Printf("serving debug endpoints on %s (/debug/pprof, /debug/vars)\n", *debugListen)
	}
	if tracker != nil {
		stopTick := make(chan struct{})
		defer close(stopTick)
		go func() {
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for {
				select {
				case <-stopTick:
					return
				case <-t.C:
					tracker.Tick()
				}
			}
		}()
	}

	var impairer transport.Impairer
	if *drop > 0 || *dup > 0 || *delayF > 0 {
		impairer = transport.NewRandomImpairer(transport.ImpairConfig{
			Path:      *impPath,
			DropFrac:  *drop,
			DupFrac:   *dup,
			DelayFrac: *delayF,
			Delay:     *delay,
			Seed:      *seed,
		})
	}
	if *burstPeriod > 0 {
		if impairer != nil {
			fatalf("-burst-period combines with -impair-path but not with the random impairer flags (-drop/-dup/-delay-frac)")
		}
		impairer = transport.NewBurstImpairer(transport.BurstImpairConfig{
			Path:   *impPath,
			Period: *burstPeriod,
			Length: *burstLen,
			Delay:  *burstDelay,
		})
	}
	if (*wireTrace != "" || *wireChrome != "") && *mode != "loopback" {
		fatalf("-wire-trace/-wire-chrome need both endpoints in one process: loopback mode only")
	}

	switch *mode {
	case "loopback":
		runLoopback(loopCfg{
			paths: *paths, sched: transport.SchedulerName(*sched), hedgeK: *hedgeK,
			deadline: *deadline, deadlineMargin: *dupMarg, dupBudgetBps: budgetBps,
			packets: *packets, duration: *duration, rate: *rate,
			payload: *payload, flows: *flows, reorderT: *reorderT,
			impairer: impairer, spans: spans, reg: reg, tracker: tracker,
			stop: stop, jsonOut: *jsonOut,
			wireTrace: *wireTrace, wireChrome: *wireChrome,
			wireSample: *wireSample, wireTop: *wireTop,
			sentinel: sentinelCfg{
				dir: *sentinelDir, p99: *sentinelP99, tick: *sentinelTick,
				ramp: *sentinelRamp, suspect: *sentinelSuspect,
				clear: *sentinelClear, cooldown: *sentinelCool,
				pprof: *sentinelPprof, debugAddr: *debugListen,
			},
		})
	case "mesh":
		runMesh(meshCfg{
			nodes: *meshNodes, pathsPerNode: *paths,
			sched: transport.SchedulerName(*sched), hedgeK: *hedgeK,
			deadline: *deadline, deadlineMarg: *dupMarg, dupBudgetBps: budgetBps,
			packets: *packets, duration: *duration,
			payload: *payload, flows: *flows, reorderT: *reorderT,
			gossip: *meshGossip, handoffT: *meshHandoffT, drainSettle: *meshSettle,
			drainNode: *meshDrain, drainAfter: *meshDrainAfter,
			sloSpec: *sloSpec, impairer: impairer, reg: reg, jsonOut: *jsonOut,
			sentinelOn: *meshSentinel, sentinelP99: *sentinelP99,
			sentinelCfg: sentinelCfg{
				tick: *sentinelTick, suspect: *sentinelSuspect,
				clear: *sentinelClear, cooldown: *sentinelCool,
			},
		})
	case "recv", "echo":
		runReceiver(strings.Split(nonEmpty(*addrs, "-addrs"), ","), *mode == "echo",
			*reorderT, spans, tracker, stop, *jsonOut)
	case "send":
		runSender(strings.Split(nonEmpty(*remotes, "-remotes"), ","),
			transport.SchedulerName(*sched), *hedgeK, *deadline, *dupMarg, budgetBps,
			*packets, *duration, *rate,
			*payload, *flows, impairer, spans, reg, stop, *jsonOut)
	default:
		fatalf("unknown -mode %q (want loopback|mesh|send|recv|echo)", *mode)
	}
}

type loopCfg struct {
	paths          int
	sched          transport.SchedulerName
	hedgeK         int
	deadline       time.Duration
	deadlineMargin float64
	dupBudgetBps   float64
	packets        uint64
	duration       time.Duration
	rate           float64
	payload        int
	flows          int
	reorderT       time.Duration
	impairer       transport.Impairer
	spans          *transport.Spans
	reg            *live.Registry
	tracker        *live.SLOTracker
	stop           <-chan struct{}
	jsonOut        bool
	wireTrace      string
	wireChrome     string
	wireSample     int
	wireTop        int
	sentinel       sentinelCfg
}

// sentinelCfg is the -sentinel flag family, resolved.
type sentinelCfg struct {
	dir       string
	p99       time.Duration
	tick      time.Duration
	ramp      int
	suspect   int
	clear     int
	cooldown  int
	pprof     bool
	debugAddr string
}

func runLoopback(c loopCfg) {
	// Wire tracing attaches a flight recorder to each endpoint and turns on
	// the trace-only span stages (sender_queue, flight). The sentinel needs
	// the recorders too: its pre-trigger history IS the steady-state ring,
	// and an episode ramps its sampling rate. With neither trace nor
	// sentinel requested, no recorder exists and the run's output is
	// byte-identical to a pre-trace gateway (test-pinned).
	var senderTr, recvTr *obs.WireRecorder
	if c.wireTrace != "" || c.wireChrome != "" || c.sentinel.dir != "" {
		senderTr = obs.NewWireRecorder(obs.WireSender, 0, c.wireSample)
		recvTr = obs.NewWireRecorder(obs.WireReceiver, 0, c.wireSample)
		c.spans.EnableWireStages(c.reg)
	}
	cfg := transport.LoopbackConfig{
		Paths:                c.paths,
		Scheduler:            c.sched,
		HedgeK:               c.hedgeK,
		Deadline:             c.deadline,
		DeadlineMargin:       c.deadlineMargin,
		DupBudgetBytesPerSec: c.dupBudgetBps,
		Flows:                c.flows,
		Payload:              c.payload,
		Packets:              c.packets,
		Duration:             c.duration,
		Rate:                 c.rate,
		Health:               wireHealth(),
		Impairer:             c.impairer,
		ReorderTimeout:       c.reorderT,
		Spans:                c.spans,
		Metrics:              c.reg,
		SLO:                  c.tracker,
		Stop:                 c.stop,
		SenderTrace:          senderTr,
		ReceiverTrace:        recvTr,
	}
	var (
		capture      *sentinel.Capture
		sentinelStop chan struct{}
		sentinelDone chan struct{}
	)
	if c.sentinel.dir != "" {
		sentinelStop = make(chan struct{})
		sentinelDone = make(chan struct{})
		cfg.OnStart = func(send *transport.Sender, recv *transport.Receiver) {
			var prof *sentinel.ProfileGrabber
			if c.sentinel.pprof {
				prof = &sentinel.ProfileGrabber{BaseURL: debugBaseURL(c.sentinel.debugAddr)}
			}
			cp, err := sentinel.NewCapture(sentinel.CaptureConfig{
				Detector: sentinel.Config{
					P99ThresholdNanos: c.sentinel.p99.Nanoseconds(),
					SuspectTicks:      c.sentinel.suspect,
					ClearTicks:        c.sentinel.clear,
					CooldownTicks:     c.sentinel.cooldown,
				},
				Dir:           c.sentinel.dir,
				RampTo:        c.sentinel.ramp,
				SenderTrace:   senderTr,
				ReceiverTrace: recvTr,
				E2E:           c.spans.E2E,
				SLO:           c.tracker,
				PathHealth:    send.HealthSnapshot,
				Profile:       prof,
			})
			if err != nil {
				fatalf("sentinel: %v", err)
			}
			capture = cp
			go func() {
				defer close(sentinelDone)
				cp.Run(c.sentinel.tick, sentinelStop)
			}()
		}
	}
	rep, err := transport.RunLoopback(cfg)
	if capture != nil {
		close(sentinelStop)
		<-sentinelDone
	}
	if err != nil {
		fatalf("loopback: %v", err)
	}
	if c.jsonOut {
		printJSON(rep)
	} else {
		printReport(rep, c.tracker)
	}
	if c.wireTrace != "" || c.wireChrome != "" {
		writeWireOutputs(c, senderTr, recvTr)
	}
	if capture != nil {
		printSentinel(capture, c.jsonOut)
	}
	if err := rep.Verify(); err != nil {
		fatalf("%v", err)
	}
}

// printSentinel closes the capture (force-ending an episode the run tore
// down mid-flight) and reports every bundle written. In -json mode the
// report document owns stdout, so bundle paths go to stderr.
func printSentinel(capture *sentinel.Capture, jsonOut bool) {
	out := os.Stdout
	if jsonOut {
		out = os.Stderr
	}
	bundles, err := capture.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpdp-gateway: sentinel: %v\n", err)
	}
	if len(bundles) == 0 {
		fmt.Fprintf(out, "sentinel: no tail episodes detected (state %s)\n", capture.State())
		return
	}
	fmt.Fprintf(out, "sentinel: %d incident bundle(s):\n", len(bundles))
	for _, dir := range bundles {
		line := dir
		if m, merr := sentinel.ReadManifest(dir); merr == nil {
			line = fmt.Sprintf("%s  %s", dir, m.Summary.Headline)
		}
		fmt.Fprintf(out, "  %s\n", line)
	}
	fmt.Fprintf(out, "inspect with: mpdp-inspect -incident %s\n", bundles[0])
}

// debugBaseURL turns a listen address into the URL the profile grabber
// dials: a bare ":port" listens on every interface but is reachable on
// loopback.
func debugBaseURL(addr string) string {
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	return "http://" + addr
}

// writeWireOutputs merges the two endpoints' recorded streams and emits
// the requested artifacts: the raw MPDPWIR1 stream, the human attribution
// summary, and the Chrome trace.
func writeWireOutputs(c loopCfg, senderTr, recvTr *obs.WireRecorder) {
	if over := senderTr.Overwritten() + recvTr.Overwritten(); over > 0 {
		fmt.Fprintf(os.Stderr,
			"mpdp-gateway: wire trace ring overwrote %d events (oldest first); raise -wire-sample or shorten the run for full coverage\n", over)
	}
	events := append(senderTr.Events(), recvTr.Events()...)
	m := obs.MergeWire(events)
	if c.wireTrace != "" {
		f, err := os.Create(c.wireTrace)
		if err != nil {
			fatalf("%v", err)
		}
		if err := obs.WriteAllWire(f, events); err != nil {
			f.Close()
			fatalf("writing %s: %v", c.wireTrace, err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing %s: %v", c.wireTrace, err)
		}
		fmt.Printf("wrote %d wire events to %s\n", len(events), c.wireTrace)
	}
	if !c.jsonOut {
		fmt.Println()
		if err := m.Render(os.Stdout, c.wireTop); err != nil {
			fatalf("%v", err)
		}
	}
	if c.wireChrome != "" {
		f, err := os.Create(c.wireChrome)
		if err != nil {
			fatalf("%v", err)
		}
		if err := obs.WriteWireChromeTrace(f, m, c.wireTop); err != nil {
			f.Close()
			fatalf("writing %s: %v", c.wireChrome, err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing %s: %v", c.wireChrome, err)
		}
		fmt.Printf("wrote the %d slowest wire timelines to %s\n", c.wireTop, c.wireChrome)
	}
}

// wireHealth scales the health machine to wire RTTs: loopback acks land in
// tens of microseconds, but scheduler stalls and GC pauses must not
// quarantine a healthy path, so the watchdogs sit well above both.
func wireHealth() core.HealthConfig {
	return core.HealthConfig{
		SuspectTimeout:    sim.Duration(200 * time.Millisecond),
		QuarantineBackoff: sim.Duration(50 * time.Millisecond),
		ProbeSuccesses:    8,
		DropWindowMin:     64,
	}
}

func runReceiver(addrs []string, echo bool, reorderT time.Duration,
	spans *transport.Spans, tracker *live.SLOTracker, stop <-chan struct{}, jsonOut bool) {
	recv, err := transport.Listen(transport.ReceiverConfig{
		Addrs:          addrs,
		ReorderTimeout: reorderT,
		EchoBack:       echo,
		Spans:          spans,
		Deliver: func(p *packet.Packet) {
			if tracker != nil {
				tracker.ObserveDelivery(int64(p.Delivered - p.Ingress))
			}
		},
		OnLost: func(p *packet.Packet) {
			if tracker != nil {
				tracker.ObserveLoss()
			}
		},
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("receiving on %s (echo=%v); interrupt for exit report\n",
		strings.Join(recv.Addrs(), ", "), echo)
	<-stop
	if err := recv.Close(); err != nil {
		fatalf("close: %v", err)
	}
	st := recv.Stats()
	if jsonOut {
		printJSON(st)
		return
	}
	fmt.Printf("delivered %d in order (%d late-lost, %d hedged dups absorbed)\n",
		st.Delivered, st.Lost, st.DupDrops)
	for _, p := range st.Paths {
		fmt.Printf("  path %d %s: %d frames, %d received, %d wire dups, %d bad\n",
			p.Path, p.Addr, p.Frames, p.Received, p.WireDups, p.BadFrames)
	}
	printSpans(spans)
}

func runSender(remotes []string, sched transport.SchedulerName, hedgeK int,
	deadline time.Duration, deadlineMargin, dupBudgetBps float64,
	packets uint64, duration time.Duration, rate float64, payload, flows int,
	impairer transport.Impairer, spans *transport.Spans, reg *live.Registry,
	stop <-chan struct{}, jsonOut bool) {
	var paths []transport.PathConfig
	for _, r := range remotes {
		paths = append(paths, transport.PathConfig{RemoteAddr: strings.TrimSpace(r)})
	}
	send, err := transport.Dial(transport.SenderConfig{
		Paths:                paths,
		Scheduler:            sched,
		HedgeK:               hedgeK,
		Deadline:             deadline,
		DeadlineMargin:       deadlineMargin,
		DupBudgetBytesPerSec: dupBudgetBps,
		Health:               wireHealth(),
		Impairer:             impairer,
		Spans:                spans,
	})
	if err != nil {
		fatalf("%v", err)
	}
	send.RegisterMetrics(reg)
	if packets == 0 && duration == 0 {
		duration = 3 * time.Second
	}
	data := make([]byte, payload)
	for i := range data {
		data[i] = byte(i)
	}
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}
	start := time.Now()
	var sent uint64
	for {
		if packets > 0 && sent >= packets {
			break
		}
		if duration > 0 && time.Since(start) >= duration {
			break
		}
		if shutdown.Requested() {
			break
		}
		flow := uint64(1 + sent%uint64(flows))
		if _, err := send.Send(flow, data); err != nil {
			// Keep sending: the health machine routes around refused paths.
			_ = err
		}
		sent++
		if interval > 0 {
			time.Sleep(interval)
		}
	}
	// Let the tail of the burst get acked before reading final stats.
	time.Sleep(100 * time.Millisecond)
	if err := send.Close(); err != nil {
		fatalf("close: %v", err)
	}
	elapsed := time.Since(start)
	st := send.Stats()
	if jsonOut {
		printJSON(st)
		return
	}
	fmt.Printf("sent %d packets (%d frames) in %v (%.0f pps)\n",
		st.Packets, st.Frames, elapsed.Round(time.Millisecond),
		float64(st.Packets)/elapsed.Seconds())
	printSenderPaths(st)
	printSpans(spans)
}

func printReport(rep *transport.LoopbackReport, tracker *live.SLOTracker) {
	fmt.Printf("loopback wire path: %d packets -> %d frames in %v (%.0f pps)\n",
		rep.Packets, rep.Frames, rep.Elapsed.Round(time.Millisecond),
		float64(rep.Packets)/rep.Elapsed.Seconds())
	fmt.Printf("delivered %d in order; %d hedged dups absorbed, %d wire dups, %d late-lost\n",
		rep.Delivered, rep.DupDrops, rep.WireDups, rep.Lost)
	rs := rep.Receiver.Reorder
	fmt.Printf("reorder: %d in-order, %d out-of-order, %d timeout releases, peak held %d\n",
		rs.InOrder, rs.OutOfOrder, rs.TimeoutFires, rs.MaxOccupancy)
	if total := rep.DeadlineHits + rep.DeadlineMisses; total > 0 {
		fmt.Printf("deadline: hit=%d miss=%d hit_rate=%.2f%%\n",
			rep.DeadlineHits, rep.DeadlineMisses,
			100*float64(rep.DeadlineHits)/float64(total))
	}
	if ds := rep.Sender.Deadline; ds != nil {
		fmt.Printf("deadline sched: safe=%d at_risk=%d dup=%d denied=%d budget_spent=%dB budget_denied=%d dup_bytes=%d\n",
			ds.Safe, ds.AtRisk, ds.Duplicated, ds.Denied,
			ds.BudgetSpent, ds.BudgetDenied, rep.Sender.DupBytes)
	}
	printSenderPaths(rep.Sender)
	for _, sp := range rep.Spans {
		if sp.Stage != "e2e" || sp.Latency.Count == 0 {
			continue
		}
		fmt.Printf("e2e wire latency p50=%.1fus p99=%.1fus p99.9=%.1fus max=%.1fus\n",
			float64(sp.Latency.P50)/1000, float64(sp.Latency.P99)/1000,
			float64(sp.Latency.P999)/1000, float64(sp.Latency.Max)/1000)
	}
	printStageTable(rep.Spans)
	if tracker != nil {
		tracker.Tick()
		status := tracker.Status()
		fmt.Printf("slo %q: state=%s", status.Objective, status.State)
		for _, k := range []string{"latency_good_ratio", "avail_good_ratio"} {
			if v, ok := status.Ratios[k]; ok {
				fmt.Printf(" %s=%.5f", k, v)
			}
		}
		fmt.Println()
	}
	if rep.NViolations != 0 {
		fmt.Printf("INVARIANT VIOLATIONS: %d\n", rep.NViolations)
		for _, v := range rep.Violations {
			fmt.Printf("  - %s\n", v)
		}
	} else {
		fmt.Println("invariants: ok (in-order, no duplicates surfaced, nothing invented)")
	}
}

func printSenderPaths(st transport.SenderStats) {
	for _, p := range st.Paths {
		fmt.Printf("  path %d -> %s: sent %d, acked %d, lost %d, rtt %v, health %s (%d quarantines)\n",
			p.Path, p.Remote, p.Sent, p.Acked, p.Lost, p.RTT.Round(time.Microsecond),
			p.Health, p.Quarantines)
	}
}

func printSpans(spans *transport.Spans) {
	printStageTable(spans.StageSnapshot())
}

func printStageTable(stages []live.StageSpan) {
	printed := false
	for _, sp := range stages {
		if sp.Latency.Count == 0 {
			continue
		}
		if !printed {
			fmt.Println("per-stage wire latency:")
			fmt.Printf("  %-14s %10s %10s %10s %10s\n", "stage", "count", "p50(us)", "p99(us)", "max(us)")
			printed = true
		}
		fmt.Printf("  %-14s %10d %10.1f %10.1f %10.1f\n", sp.Stage, sp.Latency.Count,
			float64(sp.Latency.P50)/1000, float64(sp.Latency.P99)/1000, float64(sp.Latency.Max)/1000)
	}
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatalf("encoding report: %v", err)
	}
}

func nonEmpty(v, flagName string) string {
	if v == "" {
		fatalf("%s is required for this mode", flagName)
	}
	return v
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpdp-gateway: "+format+"\n", args...)
	os.Exit(1)
}
