package main

import (
	"fmt"
	"strings"
	"time"

	"mpdp/internal/live"
	"mpdp/internal/mesh"
	"mpdp/internal/sentinel"
	"mpdp/internal/shutdown"
	"mpdp/internal/transport"
)

// meshCfg is the -mesh flag family, resolved against the shared transport
// flags (paths, scheduler, payload, flows, impairer, ...).
type meshCfg struct {
	nodes        int
	pathsPerNode int
	sched        transport.SchedulerName
	hedgeK       int
	deadline     time.Duration
	deadlineMarg float64
	dupBudgetBps float64
	packets      uint64
	duration     time.Duration
	payload      int
	flows        int
	reorderT     time.Duration
	gossip       time.Duration
	handoffT     time.Duration
	drainSettle  time.Duration
	drainNode    int
	drainAfter   float64
	sloSpec      string
	impairer     transport.Impairer
	reg          *live.Registry
	jsonOut      bool

	sentinelOn  bool
	sentinelP99 time.Duration
	sentinelCfg sentinelCfg
}

// runMesh drives the hermetic in-process multi-gateway mesh: N nodes plus
// one steering client over loopback UDP, an optional mid-run graceful
// drain, and one shared stream invariant across the ownership change. The
// first SIGINT stops the send loop through the shutdown coordinator's
// ordered drain callbacks; the run then settles and prints its report —
// an interrupted mesh run is still a measurement.
func runMesh(c meshCfg) {
	stopSend := make(chan struct{})
	shutdown.OnStop("stop-mesh-send", func() { close(stopSend) })

	var sentCfg *sentinel.Config
	if c.sentinelOn {
		sentCfg = &sentinel.Config{
			P99ThresholdNanos: c.sentinelP99.Nanoseconds(),
			SuspectTicks:      c.sentinelCfg.suspect,
			ClearTicks:        c.sentinelCfg.clear,
			CooldownTicks:     c.sentinelCfg.cooldown,
		}
	}

	rep, err := mesh.RunMesh(mesh.MeshConfig{
		Nodes:                c.nodes,
		PathsPerNode:         c.pathsPerNode,
		Scheduler:            c.sched,
		HedgeK:               c.hedgeK,
		Deadline:             c.deadline,
		DeadlineMargin:       c.deadlineMarg,
		DupBudgetBytesPerSec: c.dupBudgetBps,
		Flows:                c.flows,
		Payload:              c.payload,
		Packets:              c.packets,
		Duration:             c.duration,
		Health:               wireHealth(),
		NodeHealth:           wireHealth(),
		Impairer:             c.impairer,
		ReorderTimeout:       c.reorderT,
		GossipInterval:       c.gossip,
		HandoffTimeout:       c.handoffT,
		DrainSettle:          c.drainSettle,
		DrainNode:            c.drainNode,
		DrainAfter:           c.drainAfter,
		SLO:                  c.sloSpec,
		Metrics:              c.reg,
		Sentinel:             sentCfg,
		SentinelEvery:        c.sentinelCfg.tick,
		Stop:                 stopSend,
	})
	if err != nil {
		fatalf("mesh: %v", err)
	}
	if c.jsonOut {
		printJSON(rep)
	} else {
		printMeshReport(rep)
	}
	if err := rep.Verify(); err != nil {
		fatalf("%v", err)
	}
}

// printMeshReport renders the mesh run in the gateway's usual text form:
// throughput, steering and handoff accounting, tail inflation across the
// drain, per-node rows, and the invariant verdict last.
func printMeshReport(rep *mesh.MeshReport) {
	fmt.Printf("mesh: %d nodes, %d packets in %v (%.0f pps), %d send errors\n",
		rep.Nodes, rep.Packets, rep.Elapsed.Round(time.Millisecond),
		float64(rep.Packets)/rep.Elapsed.Seconds(), rep.SendErrs)
	fmt.Printf("delivered %d in order; %d gaps, %d duplicate drops, epoch %d at exit\n",
		rep.Delivered, rep.Gaps, rep.DupDrops, rep.EpochEnd)
	fmt.Printf("steering: %d flows re-steered, %d stale steers, %d frames forwarded\n",
		rep.Resteers, rep.StaleSteers, rep.Forwarded)
	if rep.HandoffRecords > 0 || rep.HandoffFlows > 0 {
		fmt.Printf("handoff: %d flow records in %d transfers, %d timeouts, %d unacked, %d overflow drops; %d deliveries on migrated flows\n",
			rep.HandoffFlows, rep.HandoffRecords, rep.HandoffTimeouts,
			rep.HandoffUnacked, rep.OverflowDrops, rep.MovedSeqs)
	}
	if total := rep.DeadlineHits + rep.DeadlineMisses; total > 0 {
		fmt.Printf("deadline: hit=%d miss=%d hit_rate=%.2f%%\n",
			rep.DeadlineHits, rep.DeadlineMisses,
			100*float64(rep.DeadlineHits)/float64(total))
	}
	if rep.P99PreDrainNanos > 0 {
		fmt.Printf("e2e p99: %.1fus pre-drain -> %.1fus overall\n",
			float64(rep.P99PreDrainNanos)/1000, float64(rep.P99OverallNanos)/1000)
	} else {
		fmt.Printf("e2e p99: %.1fus\n", float64(rep.P99OverallNanos)/1000)
	}
	for _, ep := range rep.Episodes {
		fmt.Printf("sentinel episode: %d ticks, peak p99 %.1fus (%s)\n",
			ep.Ticks, float64(ep.PeakP99)/1000,
			strings.Join(sentinel.ReasonNames(ep.Reason), "+"))
	}
	for _, n := range rep.PerNode {
		fmt.Printf("  node %d: delivered %d, gaps %d, dups %d, handed off %d flows (out) / %d (in), %d forwards\n",
			n.ID, n.Delivered, n.Gaps, n.DupSuppressed,
			n.HandoffFlowsOut, n.HandoffFlowsIn, n.ForwardedOut)
	}
	if rep.NViolations != 0 {
		fmt.Printf("INVARIANT VIOLATIONS: %d\n", rep.NViolations)
		for _, v := range rep.Violations {
			fmt.Printf("  - %s\n", v)
		}
	} else {
		fmt.Println("invariants: ok (at-most-once, in-order across the ownership change)")
	}
}
