package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"mpdp/internal/obs"
	"mpdp/internal/sentinel"
)

// inspectIncident opens one incident bundle (a directory written by the
// gateway's tail sentinel) and renders the operator's first read: the
// headline (which stage, what share), the episode's geometry on the
// producing host's clock, the before/during stage contrast, the verdict
// mix and per-path table, the path-health timeline, and a file-integrity
// check of every member the manifest names.
func inspectIncident(dir string) error {
	m, err := sentinel.ReadManifest(dir)
	if err != nil {
		return err
	}

	fmt.Printf("incident bundle %s (%s, seq %d):\n", dir, m.Version, m.Seq)
	fmt.Printf("  headline  %s\n", m.Summary.Headline)
	fmt.Printf("  dominant  %s (%.0f%% of the merged tail)\n",
		m.Summary.DominantStage, 100*m.Summary.DominantFrac)
	fmt.Printf("  reasons   %s\n", joinOr(m.Reasons, "(none)"))
	ep := m.Episode
	fmt.Printf("  episode   %v over %d ticks (onset %s, confirmed +%v, cleared +%v)%s\n",
		time.Duration(ep.EndNanos-ep.StartNanos), ep.Ticks,
		time.Unix(0, ep.StartNanos).UTC().Format(time.RFC3339Nano),
		time.Duration(ep.TriggerNanos-ep.StartNanos),
		time.Duration(ep.EndNanos-ep.StartNanos),
		truncNote(ep.Truncated))
	fmt.Printf("  peak p99  %v\n", time.Duration(ep.PeakP99))
	fmt.Printf("  capture   %d pre-trigger + %d episode events (ramp %d -> every %s)\n",
		m.Capture.PreEvents, m.Capture.DuringEvents,
		rampFrom(m.Ramp), nth(m.Ramp.To))
	if m.Capture.PreOldestNanos > 0 {
		fmt.Printf("  reach     pre-trigger history back to %v before onset\n",
			time.Duration(ep.StartNanos-m.Capture.PreOldestNanos))
	}
	fmt.Printf("  merged    %d delivered, %d lost\n", m.Summary.Delivered, m.Summary.Lost)

	attr, err := readAttribution(dir)
	if err != nil {
		return err
	}
	fmt.Println()
	printStageContrast(attr.Before, attr.During)
	if len(attr.VerdictMix) > 0 {
		fmt.Println()
		printVerdictMix(attr.VerdictMix)
	}
	if len(attr.Paths) > 0 {
		fmt.Println()
		printIncidentPaths(attr.Paths)
	}
	if tl, err := readHealthTimeline(dir); err == nil && len(tl) > 0 {
		fmt.Println()
		fmt.Println("path-health timeline:")
		for _, h := range tl {
			from := h.From
			if from == "" {
				from = "(start)"
			}
			fmt.Printf("  %s  path %d  %s -> %s (%d quarantines)\n",
				time.Unix(0, h.Nanos).UTC().Format(time.RFC3339Nano),
				h.Path, from, h.To, h.Quarantines)
		}
	}

	fmt.Println()
	return verifyBundleFiles(dir, m)
}

// readAttribution parses the bundle's attribution document.
func readAttribution(dir string) (*sentinel.Attribution, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "attribution.json"))
	if err != nil {
		return nil, err
	}
	var attr sentinel.Attribution
	if err := json.Unmarshal(raw, &attr); err != nil {
		return nil, fmt.Errorf("attribution.json: %w", err)
	}
	return &attr, nil
}

// readHealthTimeline parses the bundle's path-health transitions.
func readHealthTimeline(dir string) ([]sentinel.HealthChange, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "pathhealth.json"))
	if err != nil {
		return nil, err
	}
	var doc struct {
		Timeline []sentinel.HealthChange `json:"timeline"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("pathhealth.json: %w", err)
	}
	return doc.Timeline, nil
}

// printStageContrast renders the before/during stage tables side by side:
// the episode's signature is the stage whose p99 moved.
func printStageContrast(before, during []obs.WireStage) {
	idx := map[string]obs.WireStage{}
	order := []string{}
	for _, st := range before {
		idx["b:"+st.Stage] = st
		order = append(order, st.Stage)
	}
	for _, st := range during {
		idx["d:"+st.Stage] = st
		if _, seen := idx["b:"+st.Stage]; !seen {
			order = append(order, st.Stage)
		}
	}
	fmt.Println("per-stage p99, before vs during the episode:")
	fmt.Printf("  %-14s %12s %12s %12s %12s\n",
		"stage", "pre n", "pre p99(us)", "epi n", "epi p99(us)")
	for _, name := range order {
		b, hasB := idx["b:"+name]
		d, hasD := idx["d:"+name]
		fmt.Printf("  %-14s %12s %12s %12s %12s\n", name,
			countCell(b.Latency.Count, hasB), usCell(b.Latency.P99, hasB),
			countCell(d.Latency.Count, hasD), usCell(d.Latency.P99, hasD))
	}
}

func printVerdictMix(mix map[string]int) {
	keys := make([]string, 0, len(mix))
	for k := range mix {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("scheduler verdict mix (delivered timelines):")
	for _, k := range keys {
		fmt.Printf("  %-28s %d\n", k, mix[k])
	}
}

func printIncidentPaths(paths []obs.WirePathStats) {
	fmt.Println("per-path (full capture):")
	fmt.Printf("  %4s %8s %8s %8s %8s %14s %14s\n",
		"path", "tx", "rx", "wins", "deduped", "prop mean(us)", "prop max(us)")
	for _, p := range paths {
		fmt.Printf("  %4d %8d %8d %8d %8d %14.1f %14.1f\n",
			p.Path, p.Tx, p.Rx, p.Wins, p.Deduped,
			float64(p.PropMean)/1000, float64(p.PropMax)/1000)
	}
}

// verifyBundleFiles checks that every file the manifest names exists and
// that each wir stream decodes to its declared event count — so a
// truncated copy of a bundle fails loudly here, not in an analysis tool
// downstream.
func verifyBundleFiles(dir string, m *sentinel.Manifest) error {
	for _, f := range m.Files {
		path := filepath.Join(dir, f.Name)
		if _, err := os.Stat(path); err != nil {
			return fmt.Errorf("manifest names %s: %w", f.Name, err)
		}
		if f.Kind != "wir" {
			continue
		}
		fh, err := os.Open(path)
		if err != nil {
			return err
		}
		evs, err := obs.ReadAllWire(fh)
		fh.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", f.Name, err)
		}
		if len(evs) != f.Events {
			return fmt.Errorf("%s decodes to %d events, manifest says %d", f.Name, len(evs), f.Events)
		}
	}
	fmt.Printf("bundle intact: %d files verified\n", len(m.Files))
	return nil
}

func joinOr(parts []string, empty string) string {
	if len(parts) == 0 {
		return empty
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += ", " + p
	}
	return out
}

func truncNote(truncated bool) string {
	if truncated {
		return " [truncated: closed by teardown or max-ticks, not by the signal clearing]"
	}
	return ""
}

// rampFrom reports the steady-state rate the ramp left (sender's, or the
// receiver's when only that endpoint had a recorder).
func rampFrom(r sentinel.RampInfo) int {
	if r.SenderFrom > 0 {
		return r.SenderFrom
	}
	return r.ReceiverFrom
}

// nth renders a sample-every rate as prose ("packet" / "4th packet").
func nth(n int) string {
	if n <= 1 {
		return "packet"
	}
	return fmt.Sprintf("%dth packet", n)
}

func countCell(n uint64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%d", n)
}

func usCell(ns int64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(ns)/1000)
}
