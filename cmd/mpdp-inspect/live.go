package main

import (
	"bufio"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// inspectLive fetches a running engine's Prometheus exposition and renders
// the latency histograms as ASCII distributions plus derived quantiles —
// the live counterpart of replaying an .obs file.
func inspectLive(baseURL string) error {
	url := strings.TrimSuffix(baseURL, "/") + "/metrics"
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}

	hists, scalars, err := parsePromHistograms(resp.Body)
	if err != nil {
		return err
	}

	fmt.Printf("live metrics from %s:\n\n", url)

	// Scalars first: the engine's counters and gauges, sorted. The mesh
	// families get their own section — a multi-gateway run is read as one
	// data plane (epoch, membership, steering, handoff, burn), not as a
	// pile of interleaved series.
	names := make([]string, 0, len(scalars))
	var meshNames []string
	for n := range scalars {
		if strings.HasPrefix(n, "mpdp_mesh_") {
			meshNames = append(meshNames, n)
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-48s %s\n", n, trimFloat(scalars[n]))
	}
	renderMeshSection(meshNames, scalars)

	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println()
		renderHistogram(k, hists[k])
	}
	if len(hists) == 0 {
		fmt.Println("\n(no histogram families exposed)")
	}
	return nil
}

// renderMeshSection groups the mpdp_mesh_* scalar families: mesh-wide
// aggregates (epoch, eligible members, delivery/steering/handoff counters,
// SLO burn) first, then one row per node with its path-health states and
// burn rate pulled from the {node="N"} labelled gauges.
func renderMeshSection(names []string, scalars map[string]float64) {
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	perNode := make(map[string]map[string]float64) // node label -> family -> value
	fmt.Println("\nmesh:")
	for _, n := range names {
		if i := strings.Index(n, `{node="`); i >= 0 {
			fam := n[:i]
			node := strings.TrimSuffix(n[i+len(`{node="`):], `"}`)
			m, ok := perNode[node]
			if !ok {
				m = map[string]float64{}
				perNode[node] = m
			}
			m[fam] = scalars[n]
			continue
		}
		fmt.Printf("  %-48s %s\n", n, trimFloat(scalars[n]))
	}
	nodes := make([]string, 0, len(perNode))
	for node := range perNode {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool {
		a, _ := strconv.Atoi(nodes[i])
		b, _ := strconv.Atoi(nodes[j])
		return a < b
	})
	for _, node := range nodes {
		m := perNode[node]
		fmt.Printf("  node %-3s paths up=%s degraded=%s quarantined=%s probing=%s burn=%s\n",
			node,
			trimFloat(m["mpdp_mesh_node_paths_up"]),
			trimFloat(m["mpdp_mesh_node_paths_degraded"]),
			trimFloat(m["mpdp_mesh_node_paths_quarantined"]),
			trimFloat(m["mpdp_mesh_node_paths_probing"]),
			trimFloat(m["mpdp_mesh_node_burn"]))
	}
}

// promHist is one histogram series reassembled from _bucket/_sum/_count
// lines: cumulative buckets in exposition order.
type promHist struct {
	les    []float64 // upper bounds, +Inf last
	cum    []uint64
	sum    float64
	count  uint64
	quants map[string]float64 // derived _p50.. gauges, if present
}

// parsePromHistograms splits a text exposition into histogram families
// (keyed by family+labels, le stripped) and the remaining scalar series.
func parsePromHistograms(r interface{ Read([]byte) (int, error) }) (map[string]*promHist, map[string]float64, error) {
	hists := make(map[string]*promHist)
	scalars := make(map[string]float64)
	histFamilies := make(map[string]bool)

	get := func(key string) *promHist {
		h, ok := hists[key]
		if !ok {
			h = &promHist{quants: map[string]float64{}}
			hists[key] = h
		}
		return h
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			if f := strings.Fields(line); len(f) == 4 && f[1] == "TYPE" && f[3] == "histogram" {
				histFamilies[f[2]] = true
			}
			continue
		}
		name, labels, val, ok := parsePromLine(line)
		if !ok {
			continue
		}
		base, suffix := histBase(name, histFamilies)
		switch suffix {
		case "_bucket":
			le := labels["le"]
			delete(labels, "le")
			key := base + labelKey(labels)
			h := get(key)
			lef := math.Inf(1)
			if le != "+Inf" {
				lef, _ = strconv.ParseFloat(le, 64)
			}
			h.les = append(h.les, lef)
			h.cum = append(h.cum, uint64(val))
		case "_sum":
			get(base + labelKey(labels)).sum = val
		case "_count":
			get(base + labelKey(labels)).count = uint64(val)
		case "_p50", "_p90", "_p99", "_p999":
			get(base + labelKey(labels)).quants[suffix[1:]] = val
		default:
			scalars[name+labelKey(labels)] = val
		}
	}
	return hists, scalars, sc.Err()
}

// histBase splits "fam_bucket" into ("fam", "_bucket") when fam is a known
// histogram family; otherwise returns (name, "").
func histBase(name string, families map[string]bool) (string, string) {
	for _, suffix := range []string{"_bucket", "_sum", "_count", "_p50", "_p90", "_p99", "_p999"} {
		if base, ok := strings.CutSuffix(name, suffix); ok && families[base] {
			return base, suffix
		}
	}
	return name, ""
}

// parsePromLine parses `name{k="v",...} value`.
func parsePromLine(line string) (name string, labels map[string]string, val float64, ok bool) {
	line = strings.TrimSpace(line)
	if line == "" {
		return "", nil, 0, false
	}
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", nil, 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64)
	if err != nil {
		return "", nil, 0, false
	}
	series := strings.TrimSpace(line[:sp])
	labels = map[string]string{}
	if i := strings.IndexByte(series, '{'); i >= 0 {
		name = series[:i]
		block := strings.TrimSuffix(series[i+1:], "}")
		for _, pair := range splitLabelPairs(block) {
			if eq := strings.IndexByte(pair, '='); eq > 0 {
				labels[pair[:eq]] = strings.Trim(pair[eq+1:], `"`)
			}
		}
	} else {
		name = series
	}
	return name, labels, v, true
}

// splitLabelPairs splits `a="x",b="y,z"` on commas outside quotes.
func splitLabelPairs(block string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(block); i++ {
		switch block[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, block[start:i])
				start = i + 1
			}
		}
	}
	if start < len(block) {
		out = append(out, block[start:])
	}
	return out
}

// labelKey renders labels back to a stable `{k="v",...}` block.
func labelKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("{")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteString("}")
	return b.String()
}

// renderHistogram prints one family as per-bucket bars (from cumulative
// diffs) with the derived quantiles alongside.
func renderHistogram(key string, h *promHist) {
	fmt.Printf("%s: count=%d", key, h.count)
	if h.count > 0 {
		fmt.Printf(" mean=%s", trimFloat(h.sum/float64(h.count)))
	}
	for _, q := range []string{"p50", "p90", "p99", "p999"} {
		if v, ok := h.quants[q]; ok {
			fmt.Printf(" %s=%s", q, trimFloat(v))
		}
	}
	fmt.Println()
	if len(h.les) == 0 || h.count == 0 {
		return
	}
	var maxN uint64
	var prev uint64
	counts := make([]uint64, len(h.cum))
	for i, c := range h.cum {
		counts[i] = c - prev
		prev = c
		if counts[i] > maxN {
			maxN = counts[i]
		}
	}
	const width = 48
	for i, n := range counts {
		if n == 0 {
			continue
		}
		bar := int(float64(n) / float64(maxN) * width)
		if bar == 0 {
			bar = 1
		}
		le := "+Inf"
		if !math.IsInf(h.les[i], 1) {
			le = trimFloat(h.les[i])
		}
		fmt.Printf("  le %-14s %8d %s\n", le, n, strings.Repeat("#", bar))
	}
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// failIf exits on error with the inspect prefix.
func failIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpdp-inspect: %v\n", err)
		os.Exit(1)
	}
}
