// mpdp-inspect reads a recorded flight-recorder event stream (MPDPOBS1,
// written by mpdp-bench -events or obs.Recorder.WriteTo) and prints what
// happened: stream summary, per-lane utilization, tail attribution, and
// per-packet timelines.
//
// Usage:
//
//	mpdp-inspect run.obs                 # summary + lane table + attribution
//	mpdp-inspect -top 16 run.obs         # widen the attribution report
//	mpdp-inspect -timelines 3 run.obs    # also print the 3 slowest timelines
//	mpdp-inspect -pkt 2552 run.obs       # full timeline of one packet
//	mpdp-inspect -chrome tail.json run.obs  # export exemplars for Perfetto
//
// Wire mode (-wire) reads a wire flight-recorder stream (MPDPWIR1, written
// by mpdp-gateway -wire-trace), merges the sender and receiver event
// streams by (flow, seq), and prints exact cross-endpoint tail
// attribution: clock offset, per-stage latency (sender queue, propagation,
// reorder wait, deliver), per-path tables, and the slowest timelines:
//
//	mpdp-inspect -wire run.wir
//	mpdp-inspect -wire -timelines 5 run.wir
//	mpdp-inspect -wire -chrome wire.json run.wir  # one lane per UDP path
//
// Live mode (-live URL) skips the event stream entirely and renders a
// running engine's metrics instead: scalars, then every histogram family
// (per-stage latency spans) as an ASCII distribution with quantiles:
//
//	mpdp-inspect -live http://localhost:9090
//
// Incident mode (-incident DIR) opens an incident bundle written by the
// gateway's tail sentinel (mpdp-gateway -sentinel) and renders the
// episode: headline stage, duration and trigger geometry, before/during
// stage tables, scheduler verdict mix, per-path propagation, the
// path-health timeline, and a file-integrity check:
//
//	mpdp-inspect -incident incidents/incident-0001
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mpdp/internal/obs"
	"mpdp/internal/sim"
)

func main() {
	var (
		top       = flag.Int("top", 8, "exemplars to keep for the attribution report")
		timelines = flag.Int("timelines", 0, "print full event timelines for the N slowest packets")
		pkt       = flag.Uint64("pkt", 0, "print the full timeline of this packet (orig ID) and exit")
		chrome    = flag.String("chrome", "", "export exemplar timelines as Chrome trace-event JSON")
		liveURL   = flag.String("live", "", "inspect a running engine's metrics at this base URL instead of an .obs file")
		wire      = flag.Bool("wire", false, "treat the input as a wire flight-recorder stream (MPDPWIR1, from mpdp-gateway -wire-trace)")
		incident  = flag.String("incident", "", "render an incident bundle directory (written by mpdp-gateway -sentinel)")
	)
	flag.Usage = usage
	flag.Parse()
	if *liveURL != "" {
		failIf(inspectLive(*liveURL))
		return
	}
	if *incident != "" {
		failIf(inspectIncident(*incident))
		return
	}
	// Invoked bare — no mode flag, no stream to read. Doing nothing and
	// exiting 0 would let a typo'd invocation pass silently in scripts;
	// print the full usage and fail instead.
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	if *wire {
		failIf(inspectWire(path, *timelines, *chrome))
		return
	}

	f, err := os.Open(path)
	if err != nil {
		fail("%v", err)
	}
	events, err := obs.ReadAll(f)
	f.Close()
	if err != nil {
		fail("reading %s: %v", path, err)
	}
	if len(events) == 0 {
		fail("%s holds no events", path)
	}

	if *pkt != 0 {
		printPacketTimeline(events, *pkt)
		return
	}

	printSummary(path, events)
	fmt.Println()
	printLanes(events)
	fmt.Println()

	// Rebuild exemplars by replaying the stream through the same collector
	// the live engine uses.
	coll := obs.NewCollector(*top)
	for _, ev := range events {
		coll.Emit(ev)
	}
	exemplars := coll.Exemplars()
	if err := obs.BuildReport(exemplars).Render(os.Stdout); err != nil {
		fail("%v", err)
	}

	for i := 0; i < *timelines && i < len(exemplars); i++ {
		fmt.Println()
		fmt.Printf("timeline of #%d (orig %d):\n", i+1, exemplars[i].OrigID)
		printEvents(exemplars[i].Events)
	}

	if *chrome != "" {
		cf, err := os.Create(*chrome)
		if err != nil {
			fail("%v", err)
		}
		if err := obs.WriteChromeTrace(cf, exemplars); err != nil {
			cf.Close()
			fail("writing %s: %v", *chrome, err)
		}
		if err := cf.Close(); err != nil {
			fail("closing %s: %v", *chrome, err)
		}
		fmt.Printf("\nwrote %d exemplar timelines to %s\n", len(exemplars), *chrome)
	}
}

// printSummary reports the stream's span and per-kind event counts.
func printSummary(path string, events []obs.Event) {
	span := events[len(events)-1].Time - events[0].Time
	packets := make(map[uint64]bool)
	flows := make(map[uint64]bool)
	counts := make([]int, obs.NumKinds)
	for _, ev := range events {
		counts[ev.Kind]++
		if ev.Kind != obs.KindHealth {
			packets[ev.OrigID] = true
			flows[ev.FlowID] = true
		}
	}
	fmt.Printf("stream %s:\n", path)
	fmt.Printf("  events   %d spanning %v (t=%v..%v)\n",
		len(events), sim.Duration(span), events[0].Time, events[len(events)-1].Time)
	fmt.Printf("  packets  %d across %d flows\n", len(packets), len(flows))
	for k := 0; k < obs.NumKinds; k++ {
		if counts[k] > 0 {
			fmt.Printf("  %-16s %d\n", obs.Kind(k).String(), counts[k])
		}
	}
}

// printLanes reports per-lane activity: copies enqueued/served/dropped and
// the lane's busy fraction over the stream's span (sum of service times).
func printLanes(events []obs.Event) {
	type laneStat struct {
		enq, served, drops int
		busy               sim.Duration
	}
	lanes := make(map[int32]*laneStat)
	get := func(i int32) *laneStat {
		ls, ok := lanes[i]
		if !ok {
			ls = &laneStat{}
			lanes[i] = ls
		}
		return ls
	}
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindEnqueue:
			get(ev.Path).enq++
		case obs.KindService:
			ls := get(ev.Path)
			ls.served++
			ls.busy += sim.Duration(int64(ev.Time) - ev.A)
		case obs.KindDrop:
			if ev.Path >= 0 {
				get(ev.Path).drops++
			}
		}
	}
	span := sim.Duration(events[len(events)-1].Time - events[0].Time)
	ids := make([]int32, 0, len(lanes))
	for i := range lanes {
		ids = append(ids, i)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	fmt.Println("lane  enqueued  served  drops  busy%")
	for _, i := range ids {
		ls := lanes[i]
		busyPct := 0.0
		if span > 0 {
			busyPct = 100 * float64(ls.busy) / float64(span)
		}
		fmt.Printf("%4d  %8d  %6d  %5d  %5.1f\n", i, ls.enq, ls.served, ls.drops, busyPct)
	}
}

// printPacketTimeline prints every event of one original packet.
func printPacketTimeline(events []obs.Event, orig uint64) {
	var evs []obs.Event
	for _, ev := range events {
		if ev.Kind != obs.KindHealth && ev.OrigID == orig {
			evs = append(evs, ev)
		}
	}
	if len(evs) == 0 {
		fail("packet %d does not appear in the stream", orig)
	}
	fmt.Printf("packet %d (flow %x, seq %d): %d events\n",
		orig, evs[0].FlowID, evs[0].Seq, len(evs))
	printEvents(evs)
}

// printEvents renders a timeline, one event per line, with deltas from the
// first event.
func printEvents(evs []obs.Event) {
	if len(evs) == 0 {
		return
	}
	t0 := evs[0].Time
	for _, ev := range evs {
		detail := ""
		switch ev.Kind {
		case obs.KindIngress:
			detail = fmt.Sprintf("size=%dB", ev.A)
		case obs.KindSteer:
			detail = fmt.Sprintf("copies=%d canary=%d", ev.A, ev.B)
		case obs.KindService:
			detail = fmt.Sprintf("started=+%v verdict=%d", sim.Duration(sim.Time(ev.A)-t0), ev.B)
		case obs.KindReorderRelease:
			detail = fmt.Sprintf("entered=+%v timeout=%d", sim.Duration(sim.Time(ev.A)-t0), ev.B)
		case obs.KindDrop:
			detail = fmt.Sprintf("reason=%d conclusive=%d", ev.A, ev.B)
		}
		fmt.Printf("  +%-12v %-16s lane=%-3d copy=%-6d %s\n",
			sim.Duration(ev.Time-t0), ev.Kind.String(), ev.Path, ev.PktID, detail)
	}
}

// usage prints the mode synopsis plus every flag. Installed as
// flag.Usage and invoked directly when no mode was selected.
func usage() {
	fmt.Fprint(os.Stderr, `usage:
  mpdp-inspect [flags] <events.obs>       simulator flight-recorder stream
  mpdp-inspect -wire <trace.wir>          wire stream (mpdp-gateway -wire-trace)
  mpdp-inspect -live <url>                running engine's metrics
  mpdp-inspect -incident <dir>            incident bundle (mpdp-gateway -sentinel)

flags:
`)
	flag.PrintDefaults()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpdp-inspect: "+format+"\n", args...)
	os.Exit(1)
}
