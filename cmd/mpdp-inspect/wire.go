package main

import (
	"fmt"
	"os"

	"mpdp/internal/obs"
)

// inspectWire renders a wire flight-recorder stream (MPDPWIR1, written by
// mpdp-gateway -wire-trace): the cross-endpoint merge with its clock-offset
// estimate, per-stage attribution and per-path tables, the slowest-K
// per-packet timelines, and an optional Chrome trace export with one lane
// per UDP path.
func inspectWire(path string, timelines int, chrome string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	events, err := obs.ReadAllWire(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("reading %s: %w", path, err)
	}
	if len(events) == 0 {
		return fmt.Errorf("%s holds no wire events", path)
	}
	m := obs.MergeWire(events)
	fmt.Printf("wire stream %s:\n", path)
	if err := m.Render(os.Stdout, timelines); err != nil {
		return err
	}
	if chrome != "" {
		k := timelines
		if k <= 0 {
			k = 8
		}
		cf, err := os.Create(chrome)
		if err != nil {
			return err
		}
		if err := obs.WriteWireChromeTrace(cf, m, k); err != nil {
			cf.Close()
			return fmt.Errorf("writing %s: %w", chrome, err)
		}
		if err := cf.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote the %d slowest wire timelines to %s\n", k, chrome)
	}
	return nil
}
