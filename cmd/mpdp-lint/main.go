// Command mpdp-lint enforces the simulator's determinism and concurrency
// contracts with project-specific static analysis (see internal/lint).
//
// Usage:
//
//	mpdp-lint [-json] [-werror] [-list] [packages...]
//
// Packages are directories or `dir/...` patterns; the default is `./...`.
// Findings print as `file:line: [analyzer] message`. With -werror any
// finding exits 1 (the CI gate); without it the exit status only reflects
// driver errors. -list prints the analyzer catalog and exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mpdp/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		werror  = flag.Bool("werror", false, "exit 1 if any finding is reported")
		list    = flag.Bool("list", false, "print the analyzer catalog and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := run(patterns, *jsonOut, *werror); err != nil {
		fmt.Fprintln(os.Stderr, "mpdp-lint:", err)
		os.Exit(2)
	}
}

func run(patterns []string, jsonOut, werror bool) error {
	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		return err
	}
	findings, err := lint.LintDirs(loader, lint.Config{}, dirs)
	if err != nil {
		return err
	}
	cwd, err := os.Getwd()
	if err == nil {
		lint.RelativizeFindings(findings, cwd)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			return err
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if werror && len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mpdp-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	return nil
}
