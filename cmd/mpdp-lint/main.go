// Command mpdp-lint enforces the simulator's determinism, concurrency and
// hot-path contracts with project-specific static analysis (see
// internal/lint).
//
// Usage:
//
//	mpdp-lint [-json] [-werror] [-list] [-hotpath-gates FILE] [packages...]
//
// Packages are directories or `dir/...` patterns; the default is `./...`.
// Findings print as `file:line: [analyzer] message`. With -werror any
// finding exits 1 (the CI gate); without it the exit status only reflects
// driver errors. -list prints the analyzer catalog and exits.
//
// -hotpath-gates regenerates the runtime allocation-gate list from the
// //mpdp:hotpath annotations in the tree and writes it to FILE ("-" for
// stdout), then exits: one "<package dir>\t<benchmark>" line per gate.
// CI runs every listed benchmark with -benchmem and fails on a non-zero
// allocs/op, so the static zero-alloc contract and the runtime gate are
// generated from the same annotations and cannot drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mpdp/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		werror  = flag.Bool("werror", false, "exit 1 if any finding is reported")
		list    = flag.Bool("list", false, "print the analyzer catalog and exit")
		gates   = flag.String("hotpath-gates", "", "regenerate the hot-path alloc-gate list from //mpdp:hotpath annotations into `FILE` (- for stdout) and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *gates != "" {
		if err := writeGates(patterns, *gates); err != nil {
			fmt.Fprintln(os.Stderr, "mpdp-lint:", err)
			os.Exit(2)
		}
		return
	}
	if err := run(patterns, *jsonOut, *werror); err != nil {
		fmt.Fprintln(os.Stderr, "mpdp-lint:", err)
		os.Exit(2)
	}
}

func writeGates(patterns []string, out string) error {
	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		return err
	}
	gates, err := lint.CollectHotpathGates(loader.ModRoot, dirs)
	if err != nil {
		return err
	}
	text := lint.FormatHotpathGates(gates)
	if out == "-" {
		_, err = os.Stdout.WriteString(text)
		return err
	}
	return os.WriteFile(out, []byte(text), 0o644)
}

func run(patterns []string, jsonOut, werror bool) error {
	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		return err
	}
	findings, err := lint.LintDirs(loader, lint.Config{CheckPragmas: true}, dirs)
	if err != nil {
		return err
	}
	cwd, err := os.Getwd()
	if err == nil {
		lint.RelativizeFindings(findings, cwd)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			return err
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if werror && len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mpdp-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	return nil
}
