// mpdp-live runs the wall-clock concurrent data plane (internal/live): real
// goroutine lanes processing real frames as fast as the host allows, and
// reports achieved throughput and wall-clock latency percentiles. This is
// the repo's analogue of benchmarking the paper's prototype process model,
// as opposed to the virtual-time experiments of mpdp-bench.
//
// Usage:
//
//	mpdp-live -paths 4 -policy flowlet -packets 2000000
//	mpdp-live -paths 8 -chain 5 -payload 1400
//	mpdp-live -listen :9090 -rate 200000   # watch at /metrics, /metrics.json
//	mpdp-live -listen :9090 -slo "p99<2ms,avail>99.9"   # + /slo.json
//	mpdp-live -debug-listen 127.0.0.1:6060 # pprof + /debug/vars
//
// With -listen, the engine's counter registry is served over HTTP while
// the run is in flight: /metrics is Prometheus text exposition (per-stage
// latency histograms included), /metrics.json an expvar-style JSON
// snapshot with per-second rates. With -slo, deliveries and losses feed a
// multi-window burn-rate tracker served at /slo.json and as mpdp_slo_*
// series. -debug-listen binds net/http/pprof and expvar on a separate
// address (keep it loopback).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"mpdp/internal/live"
	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/shutdown"
	"mpdp/internal/workload"
	"mpdp/internal/xrand"
)

func main() {
	var (
		paths   = flag.Int("paths", runtime.GOMAXPROCS(0), "worker lanes (default: #CPUs)")
		chain   = flag.Int("chain", 3, "preset SFC length (1..6)")
		policy  = flag.String("policy", "flowlet", "steering: rss|rr|jsq|flowlet")
		packets = flag.Int("packets", 1_000_000, "packets to push")
		payload = flag.Int("payload", 0, "fixed payload bytes (0 = IMIX)")
		flows   = flag.Int("flows", 64, "distinct flows")
		rate    = flag.Int("rate", 0, "offered packets/sec (0 = as fast as possible)")
		seed    = flag.Uint64("seed", 1, "random seed")
		listen  = flag.String("listen", "", "serve live metrics over HTTP on this address (e.g. :9090)")
		hold    = flag.Duration("hold", 0, "with -listen: keep serving this long after the run completes")
		sloSpec = flag.String("slo", "", `SLO objectives, e.g. "p99<2ms,avail>99.9" (enables /slo.json and mpdp_slo_* metrics)`)
		debug   = flag.String("debug-listen", "", "serve pprof and /debug/vars on this address (e.g. 127.0.0.1:6060)")
	)
	flag.Parse()

	var tracker *live.SLOTracker
	if *sloSpec != "" {
		obj, err := live.ParseSLO(*sloSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpdp-live: %v\n", err)
			os.Exit(1)
		}
		tracker = live.NewSLOTracker(obj, nil)
	}

	rng := xrand.New(*seed)
	var sizes workload.SizeDist = workload.IMIX{Rng: rng.Split()}
	if *payload > 0 {
		sizes = workload.Fixed{Bytes: *payload + 42}
	}
	gen := workload.NewTraffic(workload.TrafficConfig{
		Arrival: workload.CBR{Gap: 1}, // unused: we push as fast as possible
		Size:    sizes,
		Flows:   *flows,
		Rng:     rng.Split(),
	})

	// Pre-build frames so generation cost stays out of the measurement.
	pkts := make([]*packet.Packet, *packets)
	for i := range pkts {
		pkts[i] = gen.NextPacket()
	}

	e, err := live.Start(live.Config{
		Paths:        *paths,
		ChainFactory: func(i int) *nf.Chain { return nf.PresetChain(*chain) },
		Policy:       live.PolicyName(*policy),
		SLO:          tracker,
	}, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpdp-live: %v\n", err)
		os.Exit(1)
	}

	if tracker != nil {
		// Drive the tracker's snapshot rings and state machine.
		stopTick := make(chan struct{})
		defer close(stopTick)
		go func() {
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for {
				select {
				case <-stopTick:
					return
				case <-t.C:
					tracker.Tick()
				}
			}
		}()
	}

	var sampler *live.MetricsSampler
	if *listen != "" {
		sampler = live.NewMetricsSampler(e.Metrics(), time.Second, 300)
		defer sampler.Stop()
		mux := http.NewServeMux()
		mh := live.MetricsHandler(e.Metrics(), sampler)
		mux.Handle("/metrics", mh)
		mux.Handle("/metrics.json", mh)
		endpoints := "/metrics, /metrics.json"
		if tracker != nil {
			mux.Handle("/slo.json", live.SLOHandler(tracker))
			endpoints += ", /slo.json"
		}
		srv := &http.Server{Addr: *listen, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "mpdp-live: metrics server: %v\n", err)
			}
		}()
		fmt.Printf("serving metrics on %s (%s)\n", *listen, endpoints)
	}
	if *debug != "" {
		srv := &http.Server{Addr: *debug, Handler: live.DebugHandler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "mpdp-live: debug server: %v\n", err)
			}
		}()
		fmt.Printf("serving pprof and expvar on %s (/debug/pprof/, /debug/vars)\n", *debug)
	}

	// SIGINT/SIGTERM stops the push loop at a batch boundary and falls
	// through to the normal exit report: an interrupted run still reports.
	stop := shutdown.Notify()
	interrupted := false
	pushed := 0
	start := time.Now()
	if *rate > 0 {
		// Batch pacing: sleep between 256-packet bursts to hold the
		// offered rate without a per-packet timer syscall.
		const batch = 256
		perBatch := time.Duration(batch) * time.Second / time.Duration(*rate)
		next := start
		for i, p := range pkts {
			if i%batch == 0 {
				if shutdown.Requested() {
					interrupted = true
					break
				}
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				next = next.Add(perBatch)
			}
			e.Ingress(p)
			pushed++
		}
	} else {
		for i, p := range pkts {
			if i%1024 == 0 && shutdown.Requested() {
				interrupted = true
				break
			}
			e.Ingress(p)
			pushed++
		}
	}
	e.Close()
	elapsed := time.Since(start)
	if interrupted {
		fmt.Printf("interrupted after %d of %d packets; reporting on what ran\n", pushed, len(pkts))
	}

	st := e.Snapshot()
	mpps := float64(st.Delivered) / elapsed.Seconds() / 1e6
	fmt.Printf("live data plane: %d lanes, chain=%d, policy=%s, GOMAXPROCS=%d\n",
		*paths, *chain, *policy, runtime.GOMAXPROCS(0))
	fmt.Printf("pushed    %d packets in %v\n", st.Offered, elapsed.Round(time.Millisecond))
	fmt.Printf("delivered %d (%.2f%%), tail drops %d\n",
		st.Delivered, float64(st.Delivered)/float64(st.Offered)*100, st.TailDrops)
	fmt.Printf("throughput %.3f Mpps\n", mpps)
	fmt.Printf("wall latency p50=%.1fus p99=%.1fus p99.9=%.1fus\n",
		float64(st.Latency.P50)/1000, float64(st.Latency.P99)/1000, float64(st.Latency.P999)/1000)
	for i, served := range st.PerLane {
		fmt.Printf("  lane %d served %d\n", i, served)
	}

	if spans := e.StageSnapshot(); spans != nil {
		fmt.Println("per-stage wall latency:")
		fmt.Printf("  %-18s %10s %10s %10s %10s\n", "stage", "count", "p50(us)", "p99(us)", "max(us)")
		for _, sp := range spans {
			fmt.Printf("  %-18s %10d %10.1f %10.1f %10.1f\n", sp.Stage, sp.Latency.Count,
				float64(sp.Latency.P50)/1000, float64(sp.Latency.P99)/1000, float64(sp.Latency.Max)/1000)
		}
	}

	if tracker != nil {
		tracker.Tick() // final evaluation over the whole run
		status := tracker.Status()
		fmt.Printf("slo %q: state=%s", status.Objective, status.State)
		for _, k := range []string{"latency_good_ratio", "avail_good_ratio"} {
			if v, ok := status.Ratios[k]; ok {
				fmt.Printf(" %s=%.5f", k, v)
			}
		}
		fmt.Println()
	}

	if *listen != "" && *hold > 0 && !interrupted {
		fmt.Printf("holding metrics endpoint open for %v (interrupt to stop)\n", *hold)
		select {
		case <-stop:
		case <-time.After(*hold):
		}
	}
}
