// mpdp-sim runs a single ad-hoc data-plane simulation from flags and prints
// the measured latency summary — the quickest way to poke at a
// configuration without writing an experiment.
//
// Usage:
//
//	mpdp-sim -policy mpdp -paths 4 -util 0.7 -interference moderate
//	mpdp-sim -policy rss -chain 6 -arrival onoff -duration 100ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mpdp/internal/experiment"
	"mpdp/internal/sim"
)

func main() {
	var (
		policy   = flag.String("policy", "mpdp", fmt.Sprintf("scheduling policy %v", experiment.PolicyNames()))
		paths    = flag.Int("paths", 4, "number of parallel paths")
		chain    = flag.Int("chain", 3, "preset SFC length (1..6)")
		util     = flag.Float64("util", 0.7, "offered load fraction of aggregate capacity")
		arrival  = flag.String("arrival", "poisson", "arrival process: poisson|cbr|onoff|mmpp")
		size     = flag.String("size", "imix", "frame sizes: imix|pareto|fixed:<bytes>")
		intf     = flag.String("interference", "moderate", "noisy neighbor: none|light|moderate|heavy")
		flows    = flag.Int("flows", 64, "distinct flows in the pool")
		seed     = flag.Uint64("seed", 1, "random seed")
		duration = flag.Duration("duration", 50*time.Millisecond, "virtual traffic horizon")
		cdf      = flag.Bool("cdf", false, "print the latency CDF")
		qdisc    = flag.String("qdisc", "fifo", "queue discipline: fifo|prio|drr")
		traceIn  = flag.String("trace", "", "replay this trace file instead of synthetic traffic")
		confFile = flag.String("config", "", "load the run configuration from a JSON file (flags ignored)")

		deadline  = flag.Duration("deadline", 0, "per-packet deadline stamped at ingress (0 = none; e.g. 2ms)")
		dupBudget = flag.String("dup-budget", "", "deadline policy duplication budget, bytes/sec (e.g. 1MBps; 0 disables duplication; empty = policy default)")
		dupMargin = flag.Float64("deadline-margin", 0, "deadline policy jitter multiplier (0 = default 3)")
	)
	flag.Parse()

	budgetBps := 0.0
	if *dupBudget != "" {
		v, err := experiment.ParseByteRate(*dupBudget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpdp-sim: %v\n", err)
			os.Exit(1)
		}
		if v == 0 {
			budgetBps = -1 // explicit zero: duplication off
		} else {
			budgetBps = v
		}
	}

	cfg := experiment.RunConfig{
		Seed: *seed, NumPaths: *paths, ChainLen: *chain,
		Policy: *policy, Util: *util,
		Arrival: *arrival, SizeDist: *size,
		Interference: *intf, Flows: *flows,
		Qdisc: *qdisc, TraceFile: *traceIn,
		Duration:       sim.Duration(duration.Nanoseconds()),
		Deadline:       sim.Duration(deadline.Nanoseconds()),
		DeadlineMargin: *dupMargin,
		DupBudgetBps:   budgetBps,
	}
	if *confFile != "" {
		loaded, err := experiment.LoadConfig(*confFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpdp-sim: %v\n", err)
			os.Exit(1)
		}
		cfg = loaded
	}

	r, err := experiment.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpdp-sim: %v\n", err)
		os.Exit(1)
	}

	s := r.Latency
	// Report the *effective* configuration (Run fills defaults).
	ec := r.Config
	fmt.Printf("policy=%s paths=%d chain=%d util=%.2f interference=%s qdisc=%s\n",
		ec.Policy, ec.NumPaths, ec.ChainLen, ec.Util, ec.Interference, orFIFO(ec.Qdisc))
	fmt.Printf("offered   %d packets, delivered %d (%.2f%%), lost %d\n",
		r.Offered, r.Delivered, r.DeliveryRate*100, r.Lost)
	fmt.Printf("goodput   %.3f Gbps\n", r.GoodputGbps)
	fmt.Printf("latency   p50=%.1fus p90=%.1fus p99=%.1fus p99.9=%.1fus max=%.1fus\n",
		f(s.P50), f(s.P90), f(s.P99), f(s.P999), f(s.Max))
	fmt.Printf("breakdown queue(mean %.1fus, p99 %.1fus) service(mean %.1fus, p99 %.1fus) reorder(mean %.1fus, p99 %.1fus)\n",
		r.QueueWaitMean/1000, r.QueueWaitP99/1000,
		r.ServiceMean/1000, r.ServiceP99/1000,
		r.ReorderWaitMean/1000, r.ReorderWaitP99/1000)
	fmt.Printf("multipath dup_overhead=%.1f%% dup_bytes=%d dup_cancelled=%d ooo=%.2f%% reorder_max_occupancy=%d holes=%d\n",
		r.DupOverhead*100, r.DupBytes, r.DupCancelled, r.Reorder.OOOFraction()*100,
		r.Reorder.MaxOccupancy, r.Reorder.HolesPunched)
	if ec.Deadline > 0 {
		fmt.Printf("deadline  %s hit=%d miss=%d hit_rate=%.2f%%\n",
			ec.Deadline, r.DeadlineHits, r.DeadlineMisses, r.DeadlineHitRate*100)
		if st := r.DeadlineSched; st != nil {
			fmt.Printf("          sched safe=%d at_risk=%d late=%d dup=%d denied=%d budget_spent=%dB budget_denied=%d\n",
				st.Safe, st.AtRisk, st.Late, st.Duplicated, st.Denied, r.BudgetSpentBytes, r.BudgetDenied)
		}
	}
	if *cdf {
		fmt.Println("\nlatency_us cum_frac")
		for _, p := range r.CDF {
			fmt.Printf("%.3f %.6f\n", float64(p.Value)/1000, p.Frac)
		}
	}
}

func f(ns int64) float64 { return float64(ns) / 1000 }

func orFIFO(q string) string {
	if q == "" {
		return "fifo"
	}
	return q
}
