// mpdp-trace generates, records and inspects workload traces.
//
// Without -record/-inspect it runs a traffic generator in isolation and
// reports the arrival-process and size-distribution statistics (rate,
// burstiness, size CDF), so a workload can be sanity-checked before being
// pointed at the data plane.
//
// Usage:
//
//	mpdp-trace -arrival onoff -duty 0.1 -n 100000
//	mpdp-trace -sizes websearch -n 50000
//	mpdp-trace -arrival poisson -n 100000 -record burst.trc
//	mpdp-trace -inspect burst.trc
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"mpdp/internal/sim"
	"mpdp/internal/stats"
	"mpdp/internal/trace"
	"mpdp/internal/workload"
	"mpdp/internal/xrand"
)

func main() {
	var (
		arrival  = flag.String("arrival", "poisson", "arrival process: poisson|cbr|onoff|mmpp")
		meanGap  = flag.Int64("mean-gap", 1000, "mean inter-arrival (ns)")
		duty     = flag.Float64("duty", 0.1, "onoff: fraction of time in bursts")
		sizes    = flag.String("sizes", "imix", "size distribution: imix|pareto|websearch|datamining|fixed:<bytes>")
		n        = flag.Int("n", 100000, "samples to draw / packets to record")
		seed     = flag.Uint64("seed", 1, "random seed")
		record   = flag.String("record", "", "write generated packets to this trace file")
		inspect  = flag.String("inspect", "", "summarize an existing trace file and exit")
		toPcap   = flag.String("to-pcap", "", "convert -inspect'd trace to this pcap file (Wireshark-readable)")
		fromPcap = flag.String("from-pcap", "", "convert this pcap capture to the trace file named by -record")
	)
	flag.Parse()

	if *fromPcap != "" {
		if *record == "" {
			fail("-from-pcap requires -record <out.trc>")
		}
		convertFromPcap(*fromPcap, *record)
		return
	}
	if *inspect != "" {
		if *toPcap != "" {
			convertToPcap(*inspect, *toPcap)
		}
		inspectTrace(*inspect)
		return
	}

	rng := xrand.New(*seed)

	var arr workload.Arrival
	gap := sim.Duration(*meanGap)
	switch *arrival {
	case "poisson":
		arr = workload.NewPoisson(rng.Split(), gap)
	case "cbr":
		arr = workload.CBR{Gap: gap}
	case "onoff":
		burstGap := sim.Duration(float64(gap) * *duty)
		if burstGap < 1 {
			burstGap = 1
		}
		meanOn := 20 * burstGap
		meanOff := sim.Duration(float64(meanOn) * (1 - *duty) / *duty)
		arr = workload.NewOnOff(rng.Split(), burstGap, meanOn, meanOff)
	case "mmpp":
		arr = workload.NewMMPP2(rng.Split(), gap/2, gap*4, 2*sim.Millisecond, 2*sim.Millisecond)
	default:
		fail("unknown arrival %q", *arrival)
	}

	var sd workload.SizeDist
	switch *sizes {
	case "imix":
		sd = workload.IMIX{Rng: rng.Split()}
	case "pareto":
		sd = workload.BoundedPareto{Alpha: 1.3, Lo: 64, Hi: 1500, Rng: rng.Split()}
	case "websearch":
		sd = workload.WebSearch(rng.Split())
	case "datamining":
		sd = workload.DataMining(rng.Split())
	default:
		var b int
		if _, err := fmt.Sscanf(*sizes, "fixed:%d", &b); err != nil || b <= 0 {
			fail("unknown size distribution %q", *sizes)
		}
		sd = workload.Fixed{Bytes: b}
	}

	if *record != "" {
		recordTrace(*record, arr, sd, rng.Split(), *n)
		return
	}

	// Arrival statistics.
	gapHist := stats.NewHist()
	var sum, sumSq float64
	for i := 0; i < *n; i++ {
		g := float64(arr.Next())
		gapHist.Record(int64(g))
		sum += g
		sumSq += g * g
	}
	mean := sum / float64(*n)
	cv2 := (sumSq/float64(*n) - mean*mean) / (mean * mean)
	fmt.Printf("arrival %s: mean_gap=%.0fns rate=%.3f Mpps cv2=%.2f (poisson=1)\n",
		*arrival, mean, 1e3/mean, cv2)
	gs := gapHist.Summarize()
	fmt.Printf("  gap p50=%dns p99=%dns max=%dns\n", gs.P50, gs.P99, gs.Max)

	// Size statistics.
	sizeHist := stats.NewHist()
	for i := 0; i < *n; i++ {
		sizeHist.Record(int64(sd.Next()))
	}
	ss := sizeHist.Summarize()
	fmt.Printf("sizes %s: mean=%.0fB (analytic %.0fB) p50=%dB p99=%dB max=%dB\n",
		*sizes, ss.Mean, sd.Mean(), ss.P50, ss.P99, ss.Max)
	if math.Abs(ss.Mean-sd.Mean())/sd.Mean() > 0.05 {
		fmt.Println("  warning: sampled mean deviates >5% from analytic mean")
	}
}

// recordTrace writes n generated packets to a trace file.
func recordTrace(path string, arr workload.Arrival, sd workload.SizeDist, rng *xrand.Rand, n int) {
	f, err := os.Create(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		fail("%v", err)
	}
	gen := workload.NewTraffic(workload.TrafficConfig{
		Arrival: arr, Size: sd, Flows: 64, Rng: rng,
	})
	var now sim.Time
	for i := 0; i < n; i++ {
		now += arr.Next()
		p := gen.NextPacket()
		if err := w.Write(now, p.Data); err != nil {
			fail("%v", err)
		}
	}
	if err := w.Flush(); err != nil {
		fail("%v", err)
	}
	fmt.Printf("wrote %d packets spanning %v to %s\n", w.Count(), now, path)
}

// inspectTrace summarizes an existing trace file.
func inspectTrace(path string) {
	f, err := os.Open(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	st, err := trace.Summarize(f)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("trace %s:\n", path)
	fmt.Printf("  packets  %d\n", st.Packets)
	fmt.Printf("  bytes    %d (mean frame %.0fB)\n", st.Bytes, float64(st.Bytes)/float64(st.Packets))
	fmt.Printf("  flows    %d\n", st.Flows)
	fmt.Printf("  span     %v (%.3f Mpps mean)\n", st.Duration(), st.MeanPps()/1e6)
}

// convertToPcap exports a trace as a Wireshark-readable pcap.
func convertToPcap(tracePath, pcapPath string) {
	in, err := os.Open(tracePath)
	if err != nil {
		fail("%v", err)
	}
	defer in.Close()
	out, err := os.Create(pcapPath)
	if err != nil {
		fail("%v", err)
	}
	defer out.Close()
	n, err := trace.WritePcap(out, in)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("exported %d packets to %s\n", n, pcapPath)
}

// convertFromPcap imports a pcap capture as an MPDP trace.
func convertFromPcap(pcapPath, tracePath string) {
	in, err := os.Open(pcapPath)
	if err != nil {
		fail("%v", err)
	}
	defer in.Close()
	out, err := os.Create(tracePath)
	if err != nil {
		fail("%v", err)
	}
	defer out.Close()
	n, err := trace.ReadPcap(out, in)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("imported %d packets from %s to %s\n", n, pcapPath, tracePath)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpdp-trace: "+format+"\n", args...)
	os.Exit(1)
}
