// Package mpdp is the root of the MPDP repository: a from-scratch
// reproduction of "Last-mile Matters: Mitigating the Tail Latency of
// Virtualized Networks with Multipath Data Plane" (CLUSTER 2022) as a Go
// library.
//
// The system itself lives under internal/ (see DESIGN.md for the full
// inventory):
//
//	internal/sim        discrete-event simulation kernel (virtual time)
//	internal/xrand      deterministic RNG + distributions
//	internal/packet     wire-format codecs, flow keys, RSS/Toeplitz hashing
//	internal/nf         Click-style NF elements and SFC composition
//	internal/vnet       lanes (queue x core x chain) + noisy-neighbor model
//	internal/core       the multipath data plane: policies, reorder buffer
//	internal/stats      histograms, P2 quantiles, summaries
//	internal/workload   arrival processes, size distributions, incast
//	internal/experiment the E1-E18 evaluation suite
//
// Entry points: cmd/mpdp-bench (regenerate every table/figure),
// cmd/mpdp-sim (one ad-hoc run), cmd/mpdp-trace (workload inspection),
// and the runnable examples under examples/.
package mpdp
