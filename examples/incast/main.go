// Incast: a partition/aggregate frontend fans a query out to 32 backends;
// all 32 respond at once, and every response crosses the host's virtualized
// data plane. This example measures the p99 response completion time under
// static RSS hashing versus MPDP.
//
//	go run ./examples/incast
package main

import (
	"fmt"

	"mpdp/internal/core"
	"mpdp/internal/nf"
	"mpdp/internal/sim"
	"mpdp/internal/vnet"
	"mpdp/internal/workload"
	"mpdp/internal/xrand"
)

func run(name string, policy core.Policy, seed uint64) {
	s := sim.New()
	ic := workload.NewIncast(workload.IncastConfig{
		Fanin:     32,
		Response:  20_000, // 20 KB per backend response
		Epoch:     500 * sim.Microsecond,
		Epochs:    100,
		PacketGap: 300 * sim.Nanosecond,
		Rng:       xrand.New(seed),
	})
	dp := core.New(s, core.Config{
		NumPaths:     4,
		ChainFactory: func(i int) *nf.Chain { return nf.PresetChain(3) },
		Policy:       policy,
		JitterSigma:  0.15,
		Interference: vnet.DefaultInterferenceConfig(),
		Seed:         seed,
	}, ic.Tracker.OnDeliver)

	ic.Run(s, dp.Ingress)
	horizon := 150 * 500 * sim.Microsecond
	s.RunUntil(horizon)
	dp.Flush()
	s.RunUntil(horizon + 5*sim.Millisecond)

	fct := ic.Tracker.ShortFCT
	fmt.Printf("%-12s responses=%4d/%4d  FCT p50=%7.1fus  p99=%8.1fus  max=%8.1fus\n",
		name, ic.Tracker.Completed(), ic.Tracker.Started(),
		float64(fct.Percentile(0.50))/1000,
		float64(fct.Percentile(0.99))/1000,
		float64(fct.Max())/1000)
}

func main() {
	fmt.Println("32-way incast, 20KB responses, 4-path data plane, noisy neighbors:")
	fmt.Println()
	run("rss", core.RSSHash{}, 5)
	run("jsq", core.JSQ{}, 5)
	run("mpdp", core.NewMPDP(core.DefaultMPDPConfig()), 5)
	fmt.Println()
	fmt.Println("a query is as slow as its slowest response: cutting the per-response")
	fmt.Println("tail directly cuts the query tail.")
}
