// Noisy neighbor: the paper's motivation, runnable. The same workload is
// pushed through a conventional single-path data plane and through MPDP
// with four paths, while noisy neighbors randomly slow the cores 8x. The
// median barely differs; the tail tells the story.
//
//	go run ./examples/noisyneighbor
package main

import (
	"fmt"

	"mpdp/internal/core"
	"mpdp/internal/nf"
	"mpdp/internal/sim"
	"mpdp/internal/vnet"
	"mpdp/internal/workload"
	"mpdp/internal/xrand"
)

func run(name string, numPaths int, policy core.Policy) {
	s := sim.New()
	dp := core.New(s, core.Config{
		NumPaths:     numPaths,
		ChainFactory: func(i int) *nf.Chain { return nf.PresetChain(3) },
		Policy:       policy,
		JitterSigma:  0.15,
		Interference: vnet.InterferenceConfig{
			SlowFactor: 8,
			MeanOn:     200 * sim.Microsecond,
			MeanOff:    1800 * sim.Microsecond,
		},
		Seed: 11,
	}, nil)

	// Identical offered rate for both systems: 50% of ONE core, so the
	// single-path baseline is not overloaded on average — its tail pain
	// comes purely from interference episodes.
	rng := xrand.New(23)
	meanCost := workload.MeanServiceCost(nf.PresetChain(3), workload.IMIX{Rng: rng.Split()}, rng.Split(), 200)
	gap := sim.Duration(float64(meanCost+150) / 0.5)
	traffic := workload.NewTraffic(workload.TrafficConfig{
		Arrival: workload.NewPoisson(rng.Split(), gap),
		Size:    workload.IMIX{Rng: rng.Split()},
		Flows:   48,
		Rng:     rng.Split(),
	})

	const horizon = 150 * sim.Millisecond
	traffic.Run(s, dp.Ingress, horizon)
	s.RunUntil(horizon + 20*sim.Millisecond)
	dp.Flush()
	s.RunUntil(horizon + 25*sim.Millisecond)

	sum := dp.Metrics().Latency.Summarize()
	fmt.Printf("%-22s p50=%7.1fus  p90=%7.1fus  p99=%7.1fus  p99.9=%7.1fus  delivery=%.2f%%\n",
		name,
		float64(sum.P50)/1000, float64(sum.P90)/1000,
		float64(sum.P99)/1000, float64(sum.P999)/1000,
		dp.Metrics().DeliveryRate()*100)
}

func main() {
	fmt.Println("identical workload, 8x noisy neighbors on every core:")
	fmt.Println()
	run("single-path (classic)", 1, core.SinglePath{})
	run("4-path RSS (static)", 4, core.RSSHash{})
	run("4-path MPDP", 4, core.NewMPDP(core.DefaultMPDPConfig()))
	fmt.Println()
	fmt.Println("the last mile matters: the median is fine everywhere; only the")
	fmt.Println("multipath data plane keeps the tail close to the median.")
}
