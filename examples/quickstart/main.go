// Quickstart: build a 4-path multipath data plane running a realistic NF
// chain, push one million Poisson-arriving packets through it, and print
// the last-mile latency distribution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"mpdp/internal/core"
	"mpdp/internal/nf"
	"mpdp/internal/sim"
	"mpdp/internal/vnet"
	"mpdp/internal/workload"
	"mpdp/internal/xrand"
)

func main() {
	s := sim.New()

	// The data plane: 4 lanes, each running its own replica of the
	// standard 5-element chain (classifier, firewall, router, monitor,
	// DPI), with a noisy neighbor on every core, scheduled by the full
	// MPDP policy.
	dp := core.New(s, core.Config{
		NumPaths:     4,
		ChainFactory: func(i int) *nf.Chain { return nf.PresetChain(5) },
		Policy:       core.NewMPDP(core.DefaultMPDPConfig()),
		JitterSigma:  0.15,
		Interference: vnet.DefaultInterferenceConfig(),
		Seed:         42,
	}, nil)

	// The workload: Poisson arrivals of IMIX-sized frames from 64 flows,
	// targeting ~70% of aggregate capacity.
	rng := xrand.New(7)
	meanCost := workload.MeanServiceCost(nf.PresetChain(5), workload.IMIX{Rng: rng.Split()}, rng.Split(), 200)
	gap := sim.Duration(float64(meanCost+150) / (0.7 * 4))
	traffic := workload.NewTraffic(workload.TrafficConfig{
		Arrival: workload.NewPoisson(rng.Split(), gap),
		Size:    workload.IMIX{Rng: rng.Split()},
		Flows:   64,
		Rng:     rng.Split(),
	})

	const horizon = 200 * sim.Millisecond
	traffic.Run(s, dp.Ingress, horizon)
	s.RunUntil(horizon + 10*sim.Millisecond)
	dp.Flush()
	s.RunUntil(horizon + 15*sim.Millisecond)

	m := dp.Metrics()
	sum := m.Latency.Summarize()
	fmt.Printf("delivered %d/%d packets in order (%.2f%% delivery, %.2f Gbps goodput)\n",
		m.Delivered(), m.Offered(), m.DeliveryRate()*100, m.GoodputBps(horizon)/1e9)
	fmt.Printf("last-mile latency: p50=%.1fus p90=%.1fus p99=%.1fus p99.9=%.1fus\n",
		us(sum.P50), us(sum.P90), us(sum.P99), us(sum.P999))
	fmt.Printf("duplication overhead %.1f%%, out-of-order arrivals %.2f%%\n",
		m.DupOverhead()*100, dp.ReorderStats().OOOFraction()*100)

	for _, ps := range dp.Paths() {
		st := ps.Lane.Stats()
		fmt.Printf("  path %d: served %d packets, utilization %.1f%%\n",
			st.ID, st.Served, ps.Lane.Utilization()*100)
	}
}

func us(ns int64) float64 { return float64(ns) / 1000 }
