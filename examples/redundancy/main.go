// Redundancy: what packet duplication buys and what it costs. The same
// workload runs under no duplication, MPDP's budgeted spare-capacity
// duplication, and duplicate-everything, at a low and a high load.
//
//	go run ./examples/redundancy
package main

import (
	"fmt"

	"mpdp/internal/core"
	"mpdp/internal/nf"
	"mpdp/internal/sim"
	"mpdp/internal/vnet"
	"mpdp/internal/workload"
	"mpdp/internal/xrand"
)

func run(policy core.Policy, util float64, seed uint64) (p99, p999 float64, dup float64, delivery float64) {
	s := sim.New()
	dp := core.New(s, core.Config{
		NumPaths:     4,
		ChainFactory: func(i int) *nf.Chain { return nf.PresetChain(3) },
		Policy:       policy,
		JitterSigma:  0.15,
		Interference: vnet.InterferenceConfig{
			SlowFactor: 8, MeanOn: 400 * sim.Microsecond, MeanOff: 1600 * sim.Microsecond,
		},
		Seed: seed,
	}, nil)

	rng := xrand.New(seed * 31)
	meanCost := workload.MeanServiceCost(nf.PresetChain(3), workload.IMIX{Rng: rng.Split()}, rng.Split(), 200)
	gap := sim.Duration(float64(meanCost+150) / (util * 4))
	traffic := workload.NewTraffic(workload.TrafficConfig{
		Arrival: workload.NewPoisson(rng.Split(), gap),
		Size:    workload.IMIX{Rng: rng.Split()},
		Flows:   64,
		Rng:     rng.Split(),
	})

	const horizon = 100 * sim.Millisecond
	traffic.Run(s, dp.Ingress, horizon)
	s.RunUntil(horizon + 20*sim.Millisecond)
	dp.Flush()
	s.RunUntil(horizon + 25*sim.Millisecond)

	m := dp.Metrics()
	return float64(m.Latency.Percentile(0.99)) / 1000,
		float64(m.Latency.Percentile(0.999)) / 1000,
		m.DupOverhead() * 100,
		m.DeliveryRate() * 100
}

func main() {
	nodup := func() core.Policy {
		cfg := core.DefaultMPDPConfig()
		cfg.DupBudget = 0
		return core.NewMPDP(cfg)
	}
	budgeted := func() core.Policy { return core.NewMPDP(core.DefaultMPDPConfig()) }
	dupAll := func() core.Policy { return core.Redundant{K: 2} }

	for _, util := range []float64{0.3, 0.8} {
		fmt.Printf("offered load %.0f%% of aggregate capacity, heavy interference:\n", util*100)
		fmt.Printf("  %-28s %10s %10s %8s %10s\n", "policy", "p99_us", "p99.9_us", "dup_%", "delivery_%")
		for _, row := range []struct {
			name string
			mk   func() core.Policy
		}{
			{"steering only (no dup)", nodup},
			{"mpdp (budgeted, spare-only)", budgeted},
			{"duplicate everything", dupAll},
		} {
			var p99, p999, dup, del float64
			const seeds = 3
			for s := uint64(1); s <= seeds; s++ {
				a, b, c, d := run(row.mk(), util, s)
				p99 += a
				p999 += b
				dup += c
				del += d
			}
			fmt.Printf("  %-28s %10.1f %10.1f %8.1f %10.2f\n",
				row.name, p99/seeds, p999/seeds, dup/seeds, del/seeds)
		}
		fmt.Println()
	}
	fmt.Println("duplication is cheap insurance at low load and poison at high load;")
	fmt.Println("MPDP's budget + spare-capacity gate keeps it on the right side.")
}
