// Tenant gateway: a realistic stateful edge chain assembled from the NF
// library — connection tracking, ACL, source NAT, L4 load balancing, VXLAN
// encapsulation — with the packet rewrites verified end to end on real
// wire-format frames, then run under multipath to show the chain still
// behaves behind the scheduler.
//
//	go run ./examples/tenantgateway
package main

import (
	"fmt"
	"os"

	"mpdp/internal/core"
	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/vnet"
	"mpdp/internal/xrand"
)

// buildGateway assembles the tenant-edge chain.
func buildGateway() (*nf.Chain, *nf.ConnTracker, *nf.NAT, *nf.LoadBalancer, *nf.VXLANEncap) {
	ct := nf.NewConnTracker("conntrack", false) // loose: UDP workload
	fw := nf.PresetFirewall(25)
	nat := nf.NewNAT("snat", packet.IP4(10, 0, 0, 0), 16, nf.NATExternalIP)
	backends := []uint32{
		packet.IP4(10, 1, 0, 1), packet.IP4(10, 1, 0, 2),
		packet.IP4(10, 1, 0, 3), packet.IP4(10, 1, 0, 4),
	}
	lb := nf.NewLoadBalancer("vip-lb", nf.LBVirtualIP, backends)
	vtep := nf.NewVXLANEncap("vtep", 4096, packet.IP4(172, 16, 0, 1), packet.IP4(172, 16, 0, 2))
	chain := nf.NewChain("tenant-gw", ct, fw, nat, lb, vtep)
	return chain, ct, nat, lb, vtep
}

func main() {
	// Part 1: verify the chain's rewrites packet by packet.
	chain, ct, nat, lb, vtep := buildGateway()
	fmt.Println("chain:", chain)

	key := packet.FlowKey{
		SrcIP: packet.IP4(10, 0, 0, 7), DstIP: nf.LBVirtualIP,
		SrcPort: 43210, DstPort: 80, Proto: packet.ProtoUDP,
	}
	p := &packet.Packet{
		ID: 1, OrigID: 1,
		Data: packet.BuildUDP(key, []byte("GET /index"), packet.BuildOpts{}),
		Flow: key, FlowID: key.Hash64(),
	}
	r := chain.Process(0, p)
	if r.Verdict != packet.Pass {
		fmt.Println("unexpected verdict:", r.Verdict)
		os.Exit(1)
	}

	// The frame is now VXLAN-encapsulated; unwrap and check each rewrite.
	outer, err := packet.ParseFrame(p.Data)
	if err != nil || !outer.HasUDP || outer.UDP.DstPort != packet.VXLANPort {
		fmt.Println("outer frame is not VXLAN:", err)
		os.Exit(1)
	}
	inner := outer.Payload(p.Data)[packet.VXLANHdrLen:]
	ipr, err := packet.ParseFrame(inner)
	if err != nil {
		fmt.Println("inner frame invalid:", err)
		os.Exit(1)
	}
	fmt.Printf("inner after chain: %s:%d -> %s:%d\n",
		ip(ipr.IP.Src), ipr.UDP.SrcPort, ip(ipr.IP.Dst), ipr.UDP.DstPort)
	fmt.Printf("  conntrack: %d connection(s) tracked\n", ct.Connections())
	fmt.Printf("  snat:      %d mapping(s), source rewritten to %s\n", nat.Mappings(), ip(ipr.IP.Src))
	fmt.Printf("  lb:        %d dispatch(es), VIP -> backend %s\n", lb.Balanced(), ip(ipr.IP.Dst))
	fmt.Printf("  vtep:      %d packet(s) encapsulated, VNI 4096, outer %s -> %s\n",
		vtep.Encapped(), ip(outer.IP.Src), ip(outer.IP.Dst))
	if ipr.IP.Src != nf.NATExternalIP {
		fmt.Println("FAIL: source NAT did not rewrite")
		os.Exit(1)
	}
	if ipr.IP.Dst == nf.LBVirtualIP {
		fmt.Println("FAIL: LB did not dispatch the VIP")
		os.Exit(1)
	}

	// Part 2: the same chain (fresh replica per path) under 4-path MPDP.
	fmt.Println("\nrunning 60k packets through 4 gateway replicas under MPDP:")
	s := sim.New()
	dp := core.New(s, core.Config{
		NumPaths: 4,
		ChainFactory: func(i int) *nf.Chain {
			c, _, _, _, _ := buildGateway()
			return c
		},
		Policy:       core.NewMPDP(core.DefaultMPDPConfig()),
		JitterSigma:  0.15,
		Interference: vnet.DefaultInterferenceConfig(),
		Seed:         3,
	}, nil)

	rng := xrand.New(9)
	var sent int
	var last sim.Time
	for t := sim.Time(0); sent < 60000; t += sim.Duration(rng.ExpFloat64(1.0 / 800)) {
		sent++
		last = t
		host := byte(rng.Intn(200) + 1)
		k := packet.FlowKey{
			SrcIP: packet.IP4(10, 0, 1, host), DstIP: nf.LBVirtualIP,
			SrcPort: uint16(20000 + rng.Intn(20000)), DstPort: 80, Proto: packet.ProtoUDP,
		}
		pkt := &packet.Packet{
			Data: packet.BuildUDP(k, []byte("req"), packet.BuildOpts{}),
			Flow: k, FlowID: k.Hash64(),
		}
		s.At(t, func() { dp.Ingress(pkt) })
	}
	// The interference processes tick forever, so bound the run by time
	// rather than draining the event queue.
	s.RunUntil(last + 10*sim.Millisecond)
	dp.Flush()
	s.RunUntil(last + 15*sim.Millisecond)

	m := dp.Metrics()
	sum := m.Latency.Summarize()
	fmt.Printf("  delivered %d/%d, p50=%.1fus p99=%.1fus p99.9=%.1fus\n",
		m.Delivered(), m.Offered(),
		float64(sum.P50)/1000, float64(sum.P99)/1000, float64(sum.P999)/1000)
}

func ip(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
