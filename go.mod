module mpdp

go 1.22
