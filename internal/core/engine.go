package core

import (
	"fmt"

	"mpdp/internal/nf"
	"mpdp/internal/obs"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/vnet"
	"mpdp/internal/xrand"
)

// Config assembles a data plane.
type Config struct {
	// NumPaths is the number of parallel lanes (queue × core × chain
	// replica). 1 reproduces the conventional single-path data plane.
	NumPaths int
	// ChainFactory builds lane i's chain replica. Each lane needs its own
	// instance because chains hold per-replica state (NAT tables, buckets).
	ChainFactory func(i int) *nf.Chain
	// Policy is the multipath scheduling policy. Required.
	Policy Policy

	// QueueCap, DispatchOverhead, JitterSigma configure each lane
	// (zero values take vnet defaults).
	QueueCap         int
	DispatchOverhead sim.Duration
	JitterSigma      float64

	// Interference, when SlowFactor > 1, attaches an independent
	// noisy-neighbor process to each of the first InterferedPaths lanes
	// (InterferedPaths <= 0 means all lanes).
	Interference    vnet.InterferenceConfig
	InterferedPaths int

	// SlowdownFor, when non-nil, overrides Interference entirely: it
	// supplies lane i's slowdown directly (return nil for a clean lane).
	// Used for scripted, deterministic episodes.
	SlowdownFor func(i int) vnet.Slowdown

	// QdiscFor, when non-nil, supplies lane i's queueing discipline
	// (return nil for the default FIFO). Each lane needs its own instance.
	QdiscFor func(i int) vnet.Qdisc

	// ReorderTimeout bounds how long the in-order stage waits for a gap
	// (default 1 ms). DisableReorder bypasses the stage entirely,
	// delivering packets as service completes (an ablation mode —
	// duplicates are still deduplicated).
	ReorderTimeout sim.Duration
	DisableReorder bool

	// EWMAAlpha is the telemetry smoothing factor (default 0.2).
	EWMAAlpha float64

	// Deadline, when > 0, stamps every ingress packet that does not already
	// carry one with an absolute deadline of now+Deadline. Deadline-aware
	// policies schedule against it; delivery accounting scores hit/miss for
	// every policy, so deadline-hit-rate is comparable across the whole menu.
	Deadline sim.Duration

	// TelemetryWindow is the rotation period of each path's windowed p99
	// estimate (default 5 ms): long enough to converge, short enough that
	// a past interference episode ages out within two windows. Rotation
	// is lazy (driven by that path's completions), so an idle path keeps
	// its last estimate. Negative disables windowing (cumulative p99).
	TelemetryWindow sim.Duration

	// Seed drives all of the data plane's randomness.
	Seed uint64

	// TimelineWindow, if > 0, records per-window latency histograms for
	// the adaptivity-timeline experiment.
	TimelineWindow sim.Duration

	// StageTiming, when set, records every chain element's virtual service
	// cost into per-stage histograms (Metrics.StageService) — the
	// simulated analogue of the live engine's per-NF span timing. Off by
	// default: the hook adds one closure call per element per packet.
	StageTiming bool

	// Health tunes the path-health state machine (zero values take
	// defaults; Health.Disable turns it off).
	Health HealthConfig

	// Trace, when non-nil, receives the engine's flight-recorder event
	// stream (see internal/obs): per-packet lifecycle events plus path
	// health transitions. Sinks observe only — attaching one changes no
	// run outcome — and every event field is virtual-time-derived, so the
	// stream is byte-identical across runs of the same seed.
	Trace obs.Sink
}

// Observer receives the engine's per-packet lifecycle events: exactly one
// of Delivered/Lost/Consumed fires per distinct ingress packet once its
// fate is decided (duplicate copies are folded into their original). The
// invariant checker attaches here; observers must not mutate packets.
type Observer interface {
	PacketIngress(p *packet.Packet)
	PacketDelivered(p *packet.Packet)
	PacketLost(p *packet.Packet, reason packet.DropReason)
	PacketConsumed(p *packet.Packet)
}

// DataPlane is the running multipath data plane: the object under test in
// every experiment.
type DataPlane struct {
	sim     *sim.Simulator
	cfg     Config
	paths   []*PathState
	policy  Policy
	reorder *Reorder
	sink    DeliverFunc

	idGen  uint64
	seqGen map[uint64]uint64 // FlowID -> next ingress sequence
	dups   map[uint64]*dupGroup

	observer Observer
	trace    obs.Sink

	// Health machinery (see health.go). Progression is packet-clocked: the
	// sweep runs every MaintainEvery ingress packets, so a healthy run
	// schedules no extra events and an idle plane does no work.
	healthCfg     HealthConfig
	maintainCount uint64
	canaryCount   uint64
	numProbing    int
	fracBuf       []float64

	metrics *Metrics
}

// dupGroup tracks the outstanding copies of one duplicated packet.
type dupGroup struct {
	remaining int
	won       bool
	copies    []*packet.Packet
}

// New builds a data plane on simulator s delivering in-order packets to
// sink (which may be nil; metrics are recorded regardless).
func New(s *sim.Simulator, cfg Config, sink DeliverFunc) *DataPlane {
	if s == nil {
		panic("core: New with nil simulator")
	}
	if cfg.NumPaths <= 0 {
		panic("core: Config.NumPaths must be positive")
	}
	if cfg.ChainFactory == nil {
		panic("core: Config.ChainFactory is required")
	}
	if cfg.Policy == nil {
		panic("core: Config.Policy is required")
	}
	if cfg.ReorderTimeout == 0 {
		cfg.ReorderTimeout = 1 * sim.Millisecond
	}
	if cfg.EWMAAlpha == 0 {
		cfg.EWMAAlpha = 0.2
	}
	if cfg.TelemetryWindow == 0 {
		cfg.TelemetryWindow = 5 * sim.Millisecond
	}

	health := cfg.Health
	health.fillDefaults()

	dp := &DataPlane{
		sim:       s,
		cfg:       cfg,
		policy:    cfg.Policy,
		sink:      sink,
		trace:     cfg.Trace,
		seqGen:    make(map[uint64]uint64),
		dups:      make(map[uint64]*dupGroup),
		healthCfg: health,
		metrics:   newMetrics(cfg.TimelineWindow),
	}
	dp.reorder = NewReorder(s, cfg.ReorderTimeout, dp.deliver)
	dp.reorder.trace = cfg.Trace
	dp.reorder.OnLost(func(p *packet.Packet) {
		// A straggler the buffer gave up on: conclusively lost.
		dp.metrics.drops[packet.DropReorder]++
		dp.emit(obs.KindDrop, p, int32(p.PathID), int64(packet.DropReorder), 1)
		if dp.observer != nil {
			dp.observer.PacketLost(p, packet.DropReorder)
		}
	})

	rng := xrand.New(cfg.Seed)
	for i := 0; i < cfg.NumPaths; i++ {
		laneCfg := vnet.LaneConfig{
			QueueCap:         cfg.QueueCap,
			Chain:            cfg.ChainFactory(i),
			DispatchOverhead: cfg.DispatchOverhead,
			JitterSigma:      cfg.JitterSigma,
			StageHook:        dp.metrics.stageHook(cfg.StageTiming),
		}
		if laneCfg.QueueCap == 0 {
			laneCfg.QueueCap = 512
		}
		if cfg.QdiscFor != nil {
			laneCfg.Qdisc = cfg.QdiscFor(i)
		}
		if laneCfg.DispatchOverhead == 0 {
			laneCfg.DispatchOverhead = 150 * sim.Nanosecond
		}
		switch {
		case cfg.SlowdownFor != nil:
			if sd := cfg.SlowdownFor(i); sd != nil {
				laneCfg.Interference = sd
			}
		default:
			interfered := cfg.InterferedPaths <= 0 || i < cfg.InterferedPaths
			if cfg.Interference.SlowFactor > 1 && interfered {
				// NewInterference returns a typed nil for no-op configs;
				// guard so the interface stays truly nil.
				if intf := vnet.NewInterference(s, rng.Split(), cfg.Interference); intf != nil {
					laneCfg.Interference = intf
				}
			}
		}
		lane := vnet.NewLane(i, s, laneCfg, rng.Split(), dp.onLaneDone)
		dp.paths = append(dp.paths, newPathState(lane, cfg.EWMAAlpha, cfg.TelemetryWindow))
	}
	return dp
}

// Sim returns the simulator the data plane runs on.
func (dp *DataPlane) Sim() *sim.Simulator { return dp.sim }

// Paths returns the path states (shared; read-only for callers).
func (dp *DataPlane) Paths() []*PathState { return dp.paths }

// Metrics returns the accumulated measurements.
func (dp *DataPlane) Metrics() *Metrics { return dp.metrics }

// ReorderStats returns the in-order stage's counters.
func (dp *DataPlane) ReorderStats() ReorderStats { return dp.reorder.Stats() }

// PolicyName returns the active policy's name.
func (dp *DataPlane) PolicyName() string { return dp.policy.Name() }

// LaneSample reads lane i's instantaneous gauges for the obs sampler.
// Strictly read-only: sampling never perturbs the run.
func (dp *DataPlane) LaneSample(i int) obs.LaneSample {
	ps := dp.paths[i]
	return obs.LaneSample{
		Depth:    ps.Depth(),
		InFlight: ps.health.inflight,
		Health:   int(ps.health.state),
		Served:   ps.completed,
	}
}

// SetObserver attaches a lifecycle observer (nil detaches). Attach before
// the first Ingress; events for packets already in flight are not replayed.
func (dp *DataPlane) SetObserver(o Observer) { dp.observer = o }

// SetTrace attaches a flight-recorder sink (nil detaches). Attach before
// the first Ingress; events are not replayed.
func (dp *DataPlane) SetTrace(t obs.Sink) {
	dp.trace = t
	dp.reorder.trace = t
}

// emit is the flight-recorder hook: one nil check when recording is off.
// Packet identity and the virtual clock supply every field, so the stream
// is a pure function of the seed.
func (dp *DataPlane) emit(kind obs.Kind, p *packet.Packet, path int32, a, b int64) {
	if dp.trace == nil {
		return
	}
	dp.trace.Emit(obs.Event{
		Time: dp.sim.Now(), Kind: kind,
		PktID: p.ID, OrigID: p.OrigID, FlowID: p.FlowID, Seq: p.Seq,
		Path: path, A: a, B: b,
	})
}

// setHealth moves path i to state s, emitting the transition.
func (dp *DataPlane) setHealth(i int, h *pathHealth, s HealthState, now sim.Time) {
	old := h.state
	h.setState(s, now)
	if dp.trace != nil {
		dp.trace.Emit(obs.Event{
			Time: now, Kind: obs.KindHealth, Path: int32(i),
			A: int64(old), B: int64(s),
		})
	}
}

// Ingress admits one packet to the data plane at the current virtual time.
// The engine assigns identity (ID, FlowID, Seq) and consults the policy.
func (dp *DataPlane) Ingress(p *packet.Packet) {
	now := dp.sim.Now()
	p.Ingress = now
	if p.ID == 0 {
		dp.idGen++
		p.ID = dp.idGen
	}
	p.OrigID = p.ID
	if p.FlowID == 0 {
		p.FlowID = p.Flow.Hash64()
	}
	p.Seq = dp.seqGen[p.FlowID]
	dp.seqGen[p.FlowID]++
	p.PathID = -1
	if dp.cfg.Deadline > 0 && p.Deadline == 0 {
		p.Deadline = now + dp.cfg.Deadline
	}

	dp.metrics.offered++
	dp.metrics.offeredBytes += uint64(p.Size())
	dp.emit(obs.KindIngress, p, -1, int64(p.Size()), int64(p.Deadline))
	if dp.observer != nil {
		dp.observer.PacketIngress(p)
	}

	if !dp.healthCfg.Disable {
		dp.maintainCount++
		if dp.maintainCount%uint64(dp.healthCfg.MaintainEvery) == 0 {
			dp.maintainHealth(now)
		}
	}

	idxs := dp.policy.Pick(now, p, dp.paths)
	if len(idxs) == 0 {
		panic(fmt.Sprintf("core: policy %s picked no paths", dp.policy.Name()))
	}
	for _, i := range idxs {
		if i < 0 || i >= len(dp.paths) {
			panic(fmt.Sprintf("core: policy %s picked invalid path %d of %d", dp.policy.Name(), i, len(dp.paths)))
		}
	}

	// Canary trickle: while any path is probing, every CanaryEvery-th
	// single-copy packet is *mirrored* onto it — the probe is a duplicate
	// copy, so a canary the sick path swallows or drops costs nothing (the
	// primary copy still delivers) while a canary it serves is evidence of
	// recovery. Real traffic, zero sacrifice.
	canary := int64(0)
	if dp.numProbing > 0 && len(idxs) == 1 {
		dp.canaryCount++
		if dp.canaryCount%uint64(dp.healthCfg.CanaryEvery) == 0 {
			if pi := dp.nextProbing(); pi >= 0 && pi != idxs[0] {
				idxs = []int{idxs[0], pi}
				dp.metrics.canaries++
				canary = 1
			}
		}
	}
	dp.emit(obs.KindSteer, p, int32(idxs[0]), int64(len(idxs)), canary)

	if len(idxs) == 1 {
		dp.send(p, idxs[0], nil)
		return
	}

	// Duplication: the original plus clones, grouped for first-wins.
	group := &dupGroup{remaining: len(idxs)}
	dp.dups[p.OrigID] = group
	copies := make([]*packet.Packet, len(idxs))
	copies[0] = p
	p.IsDup = true
	for j := 1; j < len(idxs); j++ {
		dp.idGen++
		copies[j] = p.Clone(dp.idGen)
	}
	group.copies = copies
	for j := 1; j < len(copies); j++ {
		// Every extra copy — hedged, selective, or canary mirror — bills its
		// bytes to the shared duplication-cost axis.
		dp.metrics.dupBytes += uint64(copies[j].Size())
		dp.emit(obs.KindDupSent, copies[j], int32(idxs[j]), 0, 0)
	}
	for j, i := range idxs {
		dp.metrics.dupCopies++
		dp.send(copies[j], i, group)
	}
	// The first copy counts as the packet itself, not overhead.
	dp.metrics.dupCopies--
}

// send enqueues one copy on path i, handling refusals (queue tail drop or a
// failed lane turning the copy away).
func (dp *DataPlane) send(p *packet.Packet, i int, group *dupGroup) {
	ps := dp.paths[i]
	ps.sent++
	dp.metrics.copiesSent++
	if ps.Lane.Enqueue(p) {
		dp.emit(obs.KindEnqueue, p, int32(i), 0, 0)
		h := &ps.health
		if h.inflight == 0 {
			h.pendingSince = dp.sim.Now()
		}
		h.inflight++
		return
	}
	// Refused. The engine knows this sequence copy is gone, so punch the
	// hole (or finish the dup group) immediately.
	dp.metrics.drops[p.Dropped]++
	dp.emit(obs.KindDrop, p, int32(i), int64(p.Dropped), 0)
	if p.Dropped == packet.DropPathFailed && !dp.healthCfg.Disable {
		// A fail-stop refusal is near-definitive evidence; quarantine as
		// soon as the threshold allows.
		h := &ps.health
		h.consecFail++
		if h.state == HealthProbing || h.consecFail >= dp.healthCfg.FailThreshold {
			dp.quarantinePath(i)
		}
	}
	dp.copyGone(p, group)
}

// copyGone accounts for a copy that will never reach delivery. When it was
// the packet's last chance, the packet is conclusively lost.
func (dp *DataPlane) copyGone(p *packet.Packet, group *dupGroup) {
	if group == nil {
		dp.lost(p)
		return
	}
	group.remaining--
	if group.remaining <= 0 {
		if !group.won {
			dp.lost(p)
		}
		delete(dp.dups, p.OrigID)
	}
}

// lost finalizes a packet whose every copy is gone: the reorder stage is
// told not to wait for it and the observer sees its fate. The B=1 drop
// event marks the loss as conclusive (copy-level drops carry B=0).
func (dp *DataPlane) lost(p *packet.Packet) {
	dp.punch(p)
	dp.emit(obs.KindDrop, p, int32(p.PathID), int64(p.Dropped), 1)
	if dp.observer != nil {
		dp.observer.PacketLost(p, p.Dropped)
	}
}

// punch tells the in-order stage that p's sequence is lost.
func (dp *DataPlane) punch(p *packet.Packet) {
	if !dp.cfg.DisableReorder {
		dp.reorder.Skip(p.FlowID, p.Seq)
	}
}

// onLaneDone receives every service completion from every lane.
func (dp *DataPlane) onLaneDone(p *packet.Packet, verdict packet.Verdict) {
	ps := dp.paths[p.PathID]
	ps.observe(p.Done, p.ServiceTime(), p.Done-p.Enqueued)
	dp.emit(obs.KindService, p, int32(p.PathID), int64(p.ServiceAt), int64(verdict))
	h := &ps.health
	h.inflight--
	h.lastDone = p.Done

	group := dp.dups[p.OrigID]

	if p.Cancelled {
		// Raced with a cancel after service started; treat as loser.
		dp.metrics.drops[packet.DropCancelled]++
		dp.emit(obs.KindDrop, p, int32(p.PathID), int64(packet.DropCancelled), 0)
		dp.copyGone(p, group)
		return
	}

	if !dp.healthCfg.Disable {
		if verdict == packet.Drop {
			h.winDropped++
			if h.state == HealthProbing {
				// A canary eaten by the chain: the path still misbehaves.
				h.consecFail++
				if h.consecFail >= 2 {
					dp.quarantinePath(p.PathID)
				}
			}
		} else {
			h.winServed++
			h.consecFail = 0
			if h.state == HealthProbing {
				h.probeOK++
				if h.probeOK >= dp.healthCfg.ProbeSuccesses {
					dp.numProbing--
					dp.setHealth(p.PathID, h, HealthUp, dp.sim.Now())
				}
			}
		}
	}

	switch verdict {
	case packet.Pass:
		if group != nil {
			if group.won {
				// A sibling already delivered; this copy loses.
				p.Dropped = packet.DropCancelled
				dp.metrics.drops[packet.DropCancelled]++
				dp.emit(obs.KindDrop, p, int32(p.PathID), int64(packet.DropCancelled), 0)
				group.remaining--
				if group.remaining <= 0 {
					delete(dp.dups, p.OrigID)
				}
				return
			}
			group.won = true
			group.remaining--
			dp.cancelSiblings(p, group)
			if group.remaining <= 0 {
				delete(dp.dups, p.OrigID)
			}
		}
		if dp.cfg.DisableReorder {
			p.Delivered = dp.sim.Now()
			dp.deliver(p)
		} else {
			dp.reorder.Submit(p)
		}
	case packet.Drop:
		dp.metrics.drops[p.Dropped]++
		dp.emit(obs.KindDrop, p, int32(p.PathID), int64(p.Dropped), 0)
		dp.copyGone(p, group)
	case packet.Consume:
		// Terminated locally (e.g. tunnel endpoint); counts as completed
		// work but exits the pipeline here — successors must not wait.
		// First consume wins its dup group so the packet counts once.
		if group != nil {
			if group.won {
				p.Dropped = packet.DropCancelled
				dp.metrics.drops[packet.DropCancelled]++
				dp.emit(obs.KindDrop, p, int32(p.PathID), int64(packet.DropCancelled), 0)
				group.remaining--
				if group.remaining <= 0 {
					delete(dp.dups, p.OrigID)
				}
				return
			}
			group.won = true
			group.remaining--
			dp.cancelSiblings(p, group)
			if group.remaining <= 0 {
				delete(dp.dups, p.OrigID)
			}
		}
		dp.metrics.consumed++
		dp.punch(p)
		dp.emit(obs.KindConsume, p, int32(p.PathID), 0, 0)
		if dp.observer != nil {
			dp.observer.PacketConsumed(p)
		}
	}
}

// cancelSiblings cancels the still-queued twins of a winning copy. A copy
// cancelled while queued is discarded by its lane without a completion
// callback, so its group slot is released here.
func (dp *DataPlane) cancelSiblings(winner *packet.Packet, group *dupGroup) {
	for _, c := range group.copies {
		if c == winner || c.Cancelled {
			continue
		}
		if c.PathID >= 0 && c.PathID < len(dp.paths) {
			// A copy on a probing path is a canary: let it run to completion
			// so the probe gathers its evidence (it costs nothing — the
			// group is already won).
			if dp.paths[c.PathID].health.state == HealthProbing {
				continue
			}
			if dp.paths[c.PathID].Lane.CancelQueued(c.ID) {
				// Discarded in-queue without a completion callback, so its
				// in-flight slot is released here too.
				dp.paths[c.PathID].health.inflight--
				dp.metrics.dupCancelled++
				dp.emit(obs.KindDupCancel, c, int32(c.PathID), 0, 0)
				group.remaining--
			}
		}
	}
}

// deliver is the terminal stage: record metrics and hand to the sink.
func (dp *DataPlane) deliver(p *packet.Packet) {
	dp.metrics.recordDelivery(p)
	dp.emit(obs.KindDeliver, p, int32(p.PathID), 0, 0)
	if dp.observer != nil {
		dp.observer.PacketDelivered(p)
	}
	if dp.sink != nil {
		dp.sink(p)
	}
}

// Flush ends a measurement run: anything still held by a failed lane is
// declared lost (so accounting converges even when a blackhole was never
// detected), then the reorder buffer is force-released.
func (dp *DataPlane) Flush() {
	for _, ps := range dp.paths {
		if ps.Lane.FailState() != vnet.LaneHealthy {
			ps.Lane.DrainFailed(dp.pathDrop)
		}
	}
	if !dp.cfg.DisableReorder {
		dp.reorder.Flush()
	}
}

// FailPath injects a lane failure. LaneFailStop is announced — the lane
// refuses traffic, so the very next send quarantines it and everything it
// held is hole-punched now. LaneBlackhole is silent: the lane keeps
// accepting and swallowing packets; detection is the watchdog's job.
func (dp *DataPlane) FailPath(i int, mode vnet.FailMode) {
	if i < 0 || i >= len(dp.paths) {
		panic(fmt.Sprintf("core: FailPath(%d) of %d paths", i, len(dp.paths)))
	}
	ps := dp.paths[i]
	switch mode {
	case vnet.LaneFailStop:
		ps.Lane.Fail(mode, dp.pathDrop)
		if !dp.healthCfg.Disable {
			dp.quarantinePath(i)
		}
	case vnet.LaneBlackhole:
		ps.Lane.Fail(mode, nil)
	}
}

// RestorePath repairs a previously failed lane. Health is deliberately NOT
// reset: a quarantined path must still earn its way back through the
// probing canaries — the injector saying "fixed" is not proof.
func (dp *DataPlane) RestorePath(i int) {
	if i < 0 || i >= len(dp.paths) {
		panic(fmt.Sprintf("core: RestorePath(%d) of %d paths", i, len(dp.paths)))
	}
	dp.paths[i].Lane.Recover()
}

// pathDrop receives packets drained off a failed or quarantined lane: each
// is a copy that will never complete.
func (dp *DataPlane) pathDrop(p *packet.Packet) {
	dp.metrics.drops[packet.DropPathFailed]++
	dp.emit(obs.KindDrop, p, int32(p.PathID), int64(packet.DropPathFailed), 0)
	if p.PathID >= 0 && p.PathID < len(dp.paths) {
		dp.paths[p.PathID].health.inflight--
	}
	dp.copyGone(p, dp.dups[p.OrigID])
}

// quarantinePath moves path i to Quarantined and synchronously hole-punches
// everything its lane still holds, so no successor waits on a dead path.
func (dp *DataPlane) quarantinePath(i int) {
	ps := dp.paths[i]
	if ps.health.state == HealthQuarantined {
		return
	}
	if ps.health.state == HealthProbing {
		dp.numProbing--
	}
	dp.setHealth(i, &ps.health, HealthQuarantined, dp.sim.Now())
	dp.metrics.quarantines++
	ps.Lane.DrainFailed(dp.pathDrop)
}

// nextProbing returns a probing path for the next canary, rotating so
// concurrent probes share the trickle. -1 when none is probing.
func (dp *DataPlane) nextProbing() int {
	n := len(dp.paths)
	start := int(dp.canaryCount) % n
	for off := 0; off < n; off++ {
		i := (start + off) % n
		if dp.paths[i].health.state == HealthProbing {
			return i
		}
	}
	return -1
}

// maintainHealth is the lazy sweep, run every MaintainEvery ingress packets:
// the blackhole watchdog, quarantine-backoff expiry, and error-rate window
// accounting live here. Packet-clocked on purpose — no self-rescheduling
// timer, so a drained simulator stays drained.
func (dp *DataPlane) maintainHealth(now sim.Time) {
	cfg := &dp.healthCfg

	// Rotate every active path's window first, so the median below compares
	// drop fractions from the same epoch. Collecting before rotating would
	// leave the first completed window with no peers to compare against.
	for _, ps := range dp.paths {
		if st := ps.health.state; st == HealthUp || st == HealthDegraded {
			ps.health.rotateWindow(cfg.DropWindowMin)
		}
	}

	// Median policy-drop fraction across paths with a completed window, so
	// a path is only punished for dropping anomalously more than its peers
	// (a uniform ACL drop rate must not quarantine anyone).
	dp.fracBuf = dp.fracBuf[:0]
	for _, ps := range dp.paths {
		if ps.health.dropFrac >= 0 {
			dp.fracBuf = append(dp.fracBuf, ps.health.dropFrac)
		}
	}
	median := medianOf(dp.fracBuf)

	for i, ps := range dp.paths {
		h := &ps.health
		switch h.state {
		case HealthUp, HealthDegraded:
			// Blackhole watchdog: work outstanding, nothing coming back.
			if h.inflight > 0 && now-h.pendingSince > cfg.SuspectTimeout && (h.lastDone == 0 || now-h.lastDone > cfg.SuspectTimeout) {
				dp.quarantinePath(i)
				continue
			}
			if h.dropFrac < 0 {
				continue
			}
			anomalous := h.dropFrac >= 4*median || median == 0
			switch {
			case h.dropFrac >= cfg.DropQuarantineFrac && anomalous:
				dp.quarantinePath(i)
			case h.dropFrac >= cfg.DropDegradeFrac && anomalous && h.state == HealthUp:
				dp.setHealth(i, h, HealthDegraded, now)
			case h.state == HealthDegraded && h.dropFrac < cfg.DropDegradeFrac/2:
				dp.setHealth(i, h, HealthUp, now)
			}
		case HealthQuarantined:
			if now-h.since >= cfg.QuarantineBackoff {
				dp.setHealth(i, h, HealthProbing, now)
				dp.numProbing++
			}
		case HealthProbing:
			// A canary swallowed silently means the blackhole persists.
			if h.inflight > 0 && now-h.pendingSince > cfg.SuspectTimeout {
				dp.quarantinePath(i)
			}
		}
	}
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Insertion sort: the slice is at most NumPaths long.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs[len(xs)/2]
}
