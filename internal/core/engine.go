package core

import (
	"fmt"

	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/vnet"
	"mpdp/internal/xrand"
)

// Config assembles a data plane.
type Config struct {
	// NumPaths is the number of parallel lanes (queue × core × chain
	// replica). 1 reproduces the conventional single-path data plane.
	NumPaths int
	// ChainFactory builds lane i's chain replica. Each lane needs its own
	// instance because chains hold per-replica state (NAT tables, buckets).
	ChainFactory func(i int) *nf.Chain
	// Policy is the multipath scheduling policy. Required.
	Policy Policy

	// QueueCap, DispatchOverhead, JitterSigma configure each lane
	// (zero values take vnet defaults).
	QueueCap         int
	DispatchOverhead sim.Duration
	JitterSigma      float64

	// Interference, when SlowFactor > 1, attaches an independent
	// noisy-neighbor process to each of the first InterferedPaths lanes
	// (InterferedPaths <= 0 means all lanes).
	Interference    vnet.InterferenceConfig
	InterferedPaths int

	// SlowdownFor, when non-nil, overrides Interference entirely: it
	// supplies lane i's slowdown directly (return nil for a clean lane).
	// Used for scripted, deterministic episodes.
	SlowdownFor func(i int) vnet.Slowdown

	// QdiscFor, when non-nil, supplies lane i's queueing discipline
	// (return nil for the default FIFO). Each lane needs its own instance.
	QdiscFor func(i int) vnet.Qdisc

	// ReorderTimeout bounds how long the in-order stage waits for a gap
	// (default 1 ms). DisableReorder bypasses the stage entirely,
	// delivering packets as service completes (an ablation mode —
	// duplicates are still deduplicated).
	ReorderTimeout sim.Duration
	DisableReorder bool

	// EWMAAlpha is the telemetry smoothing factor (default 0.2).
	EWMAAlpha float64

	// TelemetryWindow is the rotation period of each path's windowed p99
	// estimate (default 5 ms): long enough to converge, short enough that
	// a past interference episode ages out within two windows. Rotation
	// is lazy (driven by that path's completions), so an idle path keeps
	// its last estimate. Negative disables windowing (cumulative p99).
	TelemetryWindow sim.Duration

	// Seed drives all of the data plane's randomness.
	Seed uint64

	// TimelineWindow, if > 0, records per-window latency histograms for
	// the adaptivity-timeline experiment.
	TimelineWindow sim.Duration
}

// DataPlane is the running multipath data plane: the object under test in
// every experiment.
type DataPlane struct {
	sim     *sim.Simulator
	cfg     Config
	paths   []*PathState
	policy  Policy
	reorder *Reorder
	sink    DeliverFunc

	idGen  uint64
	seqGen map[uint64]uint64 // FlowID -> next ingress sequence
	dups   map[uint64]*dupGroup

	metrics *Metrics
}

// dupGroup tracks the outstanding copies of one duplicated packet.
type dupGroup struct {
	remaining int
	won       bool
	copies    []*packet.Packet
}

// New builds a data plane on simulator s delivering in-order packets to
// sink (which may be nil; metrics are recorded regardless).
func New(s *sim.Simulator, cfg Config, sink DeliverFunc) *DataPlane {
	if s == nil {
		panic("core: New with nil simulator")
	}
	if cfg.NumPaths <= 0 {
		panic("core: Config.NumPaths must be positive")
	}
	if cfg.ChainFactory == nil {
		panic("core: Config.ChainFactory is required")
	}
	if cfg.Policy == nil {
		panic("core: Config.Policy is required")
	}
	if cfg.ReorderTimeout == 0 {
		cfg.ReorderTimeout = 1 * sim.Millisecond
	}
	if cfg.EWMAAlpha == 0 {
		cfg.EWMAAlpha = 0.2
	}
	if cfg.TelemetryWindow == 0 {
		cfg.TelemetryWindow = 5 * sim.Millisecond
	}

	dp := &DataPlane{
		sim:     s,
		cfg:     cfg,
		policy:  cfg.Policy,
		sink:    sink,
		seqGen:  make(map[uint64]uint64),
		dups:    make(map[uint64]*dupGroup),
		metrics: newMetrics(cfg.TimelineWindow),
	}
	dp.reorder = NewReorder(s, cfg.ReorderTimeout, dp.deliver)

	rng := xrand.New(cfg.Seed)
	for i := 0; i < cfg.NumPaths; i++ {
		laneCfg := vnet.LaneConfig{
			QueueCap:         cfg.QueueCap,
			Chain:            cfg.ChainFactory(i),
			DispatchOverhead: cfg.DispatchOverhead,
			JitterSigma:      cfg.JitterSigma,
		}
		if laneCfg.QueueCap == 0 {
			laneCfg.QueueCap = 512
		}
		if cfg.QdiscFor != nil {
			laneCfg.Qdisc = cfg.QdiscFor(i)
		}
		if laneCfg.DispatchOverhead == 0 {
			laneCfg.DispatchOverhead = 150 * sim.Nanosecond
		}
		switch {
		case cfg.SlowdownFor != nil:
			if sd := cfg.SlowdownFor(i); sd != nil {
				laneCfg.Interference = sd
			}
		default:
			interfered := cfg.InterferedPaths <= 0 || i < cfg.InterferedPaths
			if cfg.Interference.SlowFactor > 1 && interfered {
				// NewInterference returns a typed nil for no-op configs;
				// guard so the interface stays truly nil.
				if intf := vnet.NewInterference(s, rng.Split(), cfg.Interference); intf != nil {
					laneCfg.Interference = intf
				}
			}
		}
		lane := vnet.NewLane(i, s, laneCfg, rng.Split(), dp.onLaneDone)
		dp.paths = append(dp.paths, newPathState(lane, cfg.EWMAAlpha, cfg.TelemetryWindow))
	}
	return dp
}

// Sim returns the simulator the data plane runs on.
func (dp *DataPlane) Sim() *sim.Simulator { return dp.sim }

// Paths returns the path states (shared; read-only for callers).
func (dp *DataPlane) Paths() []*PathState { return dp.paths }

// Metrics returns the accumulated measurements.
func (dp *DataPlane) Metrics() *Metrics { return dp.metrics }

// ReorderStats returns the in-order stage's counters.
func (dp *DataPlane) ReorderStats() ReorderStats { return dp.reorder.Stats() }

// PolicyName returns the active policy's name.
func (dp *DataPlane) PolicyName() string { return dp.policy.Name() }

// Ingress admits one packet to the data plane at the current virtual time.
// The engine assigns identity (ID, FlowID, Seq) and consults the policy.
func (dp *DataPlane) Ingress(p *packet.Packet) {
	now := dp.sim.Now()
	p.Ingress = now
	if p.ID == 0 {
		dp.idGen++
		p.ID = dp.idGen
	}
	p.OrigID = p.ID
	if p.FlowID == 0 {
		p.FlowID = p.Flow.Hash64()
	}
	p.Seq = dp.seqGen[p.FlowID]
	dp.seqGen[p.FlowID]++
	p.PathID = -1

	dp.metrics.offered++
	dp.metrics.offeredBytes += uint64(p.Size())

	idxs := dp.policy.Pick(now, p, dp.paths)
	if len(idxs) == 0 {
		panic(fmt.Sprintf("core: policy %s picked no paths", dp.policy.Name()))
	}
	for _, i := range idxs {
		if i < 0 || i >= len(dp.paths) {
			panic(fmt.Sprintf("core: policy %s picked invalid path %d of %d", dp.policy.Name(), i, len(dp.paths)))
		}
	}

	if len(idxs) == 1 {
		dp.send(p, idxs[0], nil)
		return
	}

	// Duplication: the original plus clones, grouped for first-wins.
	group := &dupGroup{remaining: len(idxs)}
	dp.dups[p.OrigID] = group
	copies := make([]*packet.Packet, len(idxs))
	copies[0] = p
	p.IsDup = true
	for j := 1; j < len(idxs); j++ {
		dp.idGen++
		copies[j] = p.Clone(dp.idGen)
	}
	group.copies = copies
	for j, i := range idxs {
		dp.metrics.dupCopies++
		dp.send(copies[j], i, group)
	}
	// The first copy counts as the packet itself, not overhead.
	dp.metrics.dupCopies--
}

// send enqueues one copy on path i, handling tail drops.
func (dp *DataPlane) send(p *packet.Packet, i int, group *dupGroup) {
	ps := dp.paths[i]
	ps.sent++
	dp.metrics.copiesSent++
	if ps.Lane.Enqueue(p) {
		return
	}
	// Tail drop at the lane queue. The engine knows this sequence copy is
	// gone, so punch the hole (or finish the dup group) immediately.
	dp.metrics.drops[packet.DropQueueFull]++
	dp.copyGone(p, group)
}

// copyGone accounts for a copy that will never reach delivery. When it was
// the packet's last chance, the reorder stage is told not to wait.
func (dp *DataPlane) copyGone(p *packet.Packet, group *dupGroup) {
	if group == nil {
		dp.punch(p)
		return
	}
	group.remaining--
	if group.remaining <= 0 {
		if !group.won {
			dp.punch(p)
		}
		delete(dp.dups, p.OrigID)
	}
}

// punch tells the in-order stage that p's sequence is lost.
func (dp *DataPlane) punch(p *packet.Packet) {
	if !dp.cfg.DisableReorder {
		dp.reorder.Skip(p.FlowID, p.Seq)
	}
}

// onLaneDone receives every service completion from every lane.
func (dp *DataPlane) onLaneDone(p *packet.Packet, verdict packet.Verdict) {
	ps := dp.paths[p.PathID]
	ps.observe(p.Done, p.ServiceTime(), p.Done-p.Enqueued)

	group := dp.dups[p.OrigID]

	if p.Cancelled {
		// Raced with a cancel after service started; treat as loser.
		dp.metrics.drops[packet.DropCancelled]++
		dp.copyGone(p, group)
		return
	}

	switch verdict {
	case packet.Pass:
		if group != nil {
			if group.won {
				// A sibling already delivered; this copy loses.
				p.Dropped = packet.DropCancelled
				dp.metrics.drops[packet.DropCancelled]++
				group.remaining--
				if group.remaining <= 0 {
					delete(dp.dups, p.OrigID)
				}
				return
			}
			group.won = true
			group.remaining--
			dp.cancelSiblings(p, group)
			if group.remaining <= 0 {
				delete(dp.dups, p.OrigID)
			}
		}
		if dp.cfg.DisableReorder {
			p.Delivered = dp.sim.Now()
			dp.deliver(p)
		} else {
			dp.reorder.Submit(p)
		}
	case packet.Drop:
		dp.metrics.drops[p.Dropped]++
		dp.copyGone(p, group)
	case packet.Consume:
		// Terminated locally (e.g. tunnel endpoint); counts as completed
		// work but exits the pipeline here — successors must not wait.
		dp.metrics.consumed++
		dp.copyGone(p, group)
	}
}

// cancelSiblings cancels the still-queued twins of a winning copy. A copy
// cancelled while queued is discarded by its lane without a completion
// callback, so its group slot is released here.
func (dp *DataPlane) cancelSiblings(winner *packet.Packet, group *dupGroup) {
	for _, c := range group.copies {
		if c == winner || c.Cancelled {
			continue
		}
		if c.PathID >= 0 && c.PathID < len(dp.paths) {
			if dp.paths[c.PathID].Lane.CancelQueued(c.ID) {
				dp.metrics.dupCancelled++
				group.remaining--
			}
		}
	}
}

// deliver is the terminal stage: record metrics and hand to the sink.
func (dp *DataPlane) deliver(p *packet.Packet) {
	dp.metrics.recordDelivery(p)
	if dp.sink != nil {
		dp.sink(p)
	}
}

// Flush force-releases the reorder buffer (end of a measurement run).
func (dp *DataPlane) Flush() {
	if !dp.cfg.DisableReorder {
		dp.reorder.Flush()
	}
}
