package core

import (
	"testing"
	"testing/quick"

	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/vnet"
	"mpdp/internal/xrand"
)

// engineConfig returns a deterministic config with n paths and the given
// policy, fixed 1µs service cost per packet.
func engineConfig(n int, pol Policy) Config {
	return Config{
		NumPaths:     n,
		ChainFactory: func(i int) *nf.Chain { return passChain(1 * sim.Microsecond) },
		Policy:       pol,
		QueueCap:     256,
		Seed:         42,
	}
}

// inject offers pkts packets from nFlows flows at fixed spacing.
func inject(dp *DataPlane, pkts, nFlows int, spacing sim.Duration) {
	s := dp.Sim()
	for i := 0; i < pkts; i++ {
		p := flowPkt(uint64(i % nFlows))
		s.At(sim.Time(i)*spacing, func() { dp.Ingress(p) })
	}
	s.Run()
	dp.Flush()
	s.Run()
}

func TestEngineDeliversAllSinglePath(t *testing.T) {
	s := sim.New()
	delivered := 0
	dp := New(s, engineConfig(1, SinglePath{}), func(p *packet.Packet) { delivered++ })
	inject(dp, 100, 4, 2*sim.Microsecond)
	if delivered != 100 {
		t.Fatalf("delivered %d/100", delivered)
	}
	m := dp.Metrics()
	if m.Offered() != 100 || m.Delivered() != 100 || m.TotalLost() != 0 {
		t.Fatalf("accounting: offered=%d delivered=%d lost=%d", m.Offered(), m.Delivered(), m.TotalLost())
	}
}

func TestEngineInOrderPerFlowForAllPolicies(t *testing.T) {
	policies := []Policy{
		SinglePath{}, RSSHash{}, &RoundRobin{}, &RandomPick{Rng: xrand.New(1)},
		JSQ{}, &PowerOfTwo{Rng: xrand.New(2)},
		NewFlowlet(500 * sim.Microsecond), Redundant{K: 2},
		NewMPDP(DefaultMPDPConfig()),
	}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			s := sim.New()
			lastSeq := make(map[uint64]uint64)
			violations := 0
			dp := New(s, engineConfig(4, pol), func(p *packet.Packet) {
				if last, ok := lastSeq[p.FlowID]; ok && p.Seq <= last {
					violations++
				}
				lastSeq[p.FlowID] = p.Seq
			})
			inject(dp, 400, 8, 300*sim.Nanosecond) // oversubscribed: forces queueing
			if violations != 0 {
				t.Fatalf("%d in-order violations under %s", violations, pol.Name())
			}
			m := dp.Metrics()
			if m.Delivered() == 0 {
				t.Fatal("nothing delivered")
			}
			if m.Delivered()+m.TotalLost() != m.Offered() {
				t.Fatalf("conservation: %d + %d != %d", m.Delivered(), m.TotalLost(), m.Offered())
			}
		})
	}
}

func TestEngineDuplicationDeliversOncePerPacket(t *testing.T) {
	s := sim.New()
	seen := make(map[uint64]int)
	dp := New(s, engineConfig(4, Redundant{K: 2}), func(p *packet.Packet) { seen[p.OrigID]++ })
	inject(dp, 200, 4, 2*sim.Microsecond)
	m := dp.Metrics()
	if m.Delivered() != 200 {
		t.Fatalf("delivered %d/200", m.Delivered())
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("packet %d delivered %d times", id, n)
		}
	}
	if m.DupCopies() != 200 {
		t.Fatalf("dup copies %d, want 200 (one extra per packet)", m.DupCopies())
	}
	if m.DupOverhead() != 1.0 {
		t.Fatalf("dup overhead %v, want 1.0", m.DupOverhead())
	}
}

func TestEngineDuplicationCancelsQueuedLosers(t *testing.T) {
	s := sim.New()
	// Asymmetric paths (lane 1 is 10× slower) + back-to-back arrivals:
	// losers pile up queued on the slow lane while winners finish on the
	// fast one, so cancellation has work to do.
	cfg := Config{
		NumPaths: 2,
		ChainFactory: func(i int) *nf.Chain {
			if i == 0 {
				return passChain(2 * sim.Microsecond)
			}
			return passChain(20 * sim.Microsecond)
		},
		Policy:   Redundant{K: 2},
		QueueCap: 512,
		Seed:     1,
	}
	dp := New(s, cfg, nil)
	inject(dp, 100, 4, 1*sim.Microsecond)
	m := dp.Metrics()
	if m.Delivered() != 100 {
		t.Fatalf("delivered %d", m.Delivered())
	}
	if m.DupCancelled() == 0 {
		t.Fatal("no queued losers were cancelled")
	}
}

func TestEngineTailDropsUnderOverload(t *testing.T) {
	s := sim.New()
	cfg := engineConfig(1, SinglePath{})
	cfg.QueueCap = 8
	dp := New(s, cfg, nil)
	// 1µs service, arrivals every 100ns: queue must overflow.
	inject(dp, 500, 4, 100*sim.Nanosecond)
	m := dp.Metrics()
	if m.Drops(packet.DropQueueFull) == 0 {
		t.Fatal("no tail drops under 10x overload")
	}
	if m.Delivered()+m.TotalLost() != m.Offered() {
		t.Fatal("conservation broken under drops")
	}
	if m.DeliveryRate() >= 1 {
		t.Fatal("delivery rate must fall under overload")
	}
}

func TestEnginePolicyDropAccounting(t *testing.T) {
	s := sim.New()
	denyAll := nf.NewChain("deny", nf.Func{
		ElemName: "deny",
		Fn: func(now sim.Time, p *packet.Packet) nf.Result {
			p.Dropped = packet.DropPolicy
			return nf.Result{Verdict: packet.Drop, Cost: 100}
		},
	})
	cfg := Config{
		NumPaths:     1,
		ChainFactory: func(i int) *nf.Chain { return denyAll },
		Policy:       SinglePath{},
		Seed:         1,
	}
	dp := New(s, cfg, nil)
	inject(dp, 50, 2, sim.Microsecond)
	m := dp.Metrics()
	if m.Delivered() != 0 {
		t.Fatal("deny-all chain delivered packets")
	}
	if m.Drops(packet.DropPolicy) != 50 {
		t.Fatalf("policy drops %d, want 50", m.Drops(packet.DropPolicy))
	}
	if m.TotalLost() != 50 {
		t.Fatalf("lost %d", m.TotalLost())
	}
}

func TestEngineDisableReorderDeliversImmediately(t *testing.T) {
	s := sim.New()
	cfg := engineConfig(4, &RoundRobin{})
	cfg.DisableReorder = true
	outOfOrder := 0
	lastSeq := make(map[uint64]uint64)
	first := make(map[uint64]bool)
	dp := New(s, cfg, func(p *packet.Packet) {
		if first[p.FlowID] && p.Seq <= lastSeq[p.FlowID] {
			outOfOrder++
		}
		lastSeq[p.FlowID] = p.Seq
		first[p.FlowID] = true
		if p.ReorderWait() != 0 {
			t.Fatal("reorder wait nonzero with reorder disabled")
		}
	})
	// Single flow sprayed round-robin with jitter: reordering expected.
	cfg2 := cfg
	_ = cfg2
	injectJittered(dp, 300, 1)
	if dp.Metrics().Delivered() != 300 {
		t.Fatalf("delivered %d", dp.Metrics().Delivered())
	}
	if outOfOrder == 0 {
		t.Log("note: no reordering observed (acceptable but unexpected)")
	}
}

// injectJittered offers packets back-to-back with jittered service to
// provoke reordering.
func injectJittered(dp *DataPlane, pkts, nFlows int) {
	s := dp.Sim()
	for i := 0; i < pkts; i++ {
		p := flowPkt(uint64(i % nFlows))
		s.At(sim.Time(i)*200*sim.Nanosecond, func() { dp.Ingress(p) })
	}
	s.Run()
	dp.Flush()
	s.Run()
}

func TestEngineReorderMasksSpraying(t *testing.T) {
	// Same spraying workload as above, WITH the reorder stage: zero
	// violations, and reorder waits become visible.
	s := sim.New()
	cfg := engineConfig(4, &RoundRobin{})
	cfg.JitterSigma = 0.3
	violations := 0
	lastSeq := make(map[uint64]uint64)
	seenFlow := make(map[uint64]bool)
	dp := New(s, cfg, func(p *packet.Packet) {
		if seenFlow[p.FlowID] && p.Seq <= lastSeq[p.FlowID] {
			violations++
		}
		lastSeq[p.FlowID] = p.Seq
		seenFlow[p.FlowID] = true
	})
	injectJittered(dp, 300, 1)
	if violations != 0 {
		t.Fatalf("%d order violations with reorder enabled", violations)
	}
	st := dp.ReorderStats()
	if st.OutOfOrder == 0 {
		t.Fatal("spraying one flow across jittered paths produced no OOO arrivals")
	}
}

func TestEngineLatencyComponentsConsistent(t *testing.T) {
	s := sim.New()
	var pkts []*packet.Packet
	dp := New(s, engineConfig(2, JSQ{}), func(p *packet.Packet) { pkts = append(pkts, p) })
	inject(dp, 100, 4, 500*sim.Nanosecond)
	for _, p := range pkts {
		sum := p.QueueWait() + p.ServiceTime() + p.ReorderWait() + (p.Enqueued - p.Ingress)
		if sum != p.Latency() {
			t.Fatalf("components %v != latency %v", sum, p.Latency())
		}
		if p.Latency() <= 0 {
			t.Fatal("non-positive latency")
		}
	}
}

func TestEngineDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, int64) {
		s := sim.New()
		cfg := engineConfig(4, NewMPDP(DefaultMPDPConfig()))
		cfg.JitterSigma = 0.2
		cfg.Interference = vnet.DefaultInterferenceConfig()
		dp := New(s, cfg, nil)
		for i := 0; i < 500; i++ {
			p := flowPkt(uint64(i % 16))
			s.At(sim.Time(i)*400*sim.Nanosecond, func() { dp.Ingress(p) })
		}
		s.RunUntil(sim.Second)
		dp.Flush()
		s.RunUntil(2 * sim.Second)
		return dp.Metrics().Delivered(), dp.Metrics().Latency.Percentile(0.99)
	}
	d1, p1 := run()
	d2, p2 := run()
	if d1 != d2 || p1 != p2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", d1, p1, d2, p2)
	}
}

func TestEngineTimelineRecording(t *testing.T) {
	s := sim.New()
	cfg := engineConfig(2, JSQ{})
	cfg.TimelineWindow = 10 * sim.Microsecond
	dp := New(s, cfg, nil)
	inject(dp, 100, 4, sim.Microsecond)
	if dp.Metrics().Timeline == nil {
		t.Fatal("timeline not created")
	}
	if pts := dp.Metrics().Timeline.Points(); len(pts) < 2 {
		t.Fatalf("timeline has %d windows", len(pts))
	}
}

func TestEngineInterferenceRaisesTail(t *testing.T) {
	run := func(interfere bool) int64 {
		s := sim.New()
		cfg := engineConfig(1, SinglePath{})
		cfg.JitterSigma = 0.1
		if interfere {
			cfg.Interference = vnet.InterferenceConfig{
				SlowFactor: 6, MeanOn: 50 * sim.Microsecond, MeanOff: 450 * sim.Microsecond,
			}
		}
		dp := New(s, cfg, nil)
		for i := 0; i < 3000; i++ {
			p := flowPkt(uint64(i % 8))
			s.At(sim.Time(i)*2*sim.Microsecond, func() { dp.Ingress(p) })
		}
		s.RunUntil(10 * sim.Millisecond)
		dp.Flush()
		s.RunUntil(11 * sim.Millisecond)
		return dp.Metrics().Latency.Percentile(0.99)
	}
	clean := run(false)
	noisy := run(true)
	if noisy < clean*2 {
		t.Fatalf("interference p99 %d not clearly above clean %d", noisy, clean)
	}
}

func TestEngineMultipathBeatsSinglePathUnderInterference(t *testing.T) {
	// The paper's headline effect, in miniature: with per-path
	// interference, 4-path MPDP must cut p99 well below single-path.
	run := func(n int, pol Policy) int64 {
		s := sim.New()
		cfg := Config{
			NumPaths:     n,
			ChainFactory: func(i int) *nf.Chain { return passChain(1 * sim.Microsecond) },
			Policy:       pol,
			QueueCap:     512,
			Seed:         7,
			JitterSigma:  0.1,
			Interference: vnet.InterferenceConfig{
				SlowFactor: 8, MeanOn: 100 * sim.Microsecond, MeanOff: 900 * sim.Microsecond,
			},
		}
		dp := New(s, cfg, nil)
		// Offered load ~50% of one core so a single path is stressed
		// during slow episodes but not permanently overloaded.
		for i := 0; i < 5000; i++ {
			p := flowPkt(uint64(i % 32))
			s.At(sim.Time(i)*2*sim.Microsecond, func() { dp.Ingress(p) })
		}
		s.RunUntil(20 * sim.Millisecond)
		dp.Flush()
		s.RunUntil(21 * sim.Millisecond)
		return dp.Metrics().Latency.Percentile(0.99)
	}
	single := run(1, SinglePath{})
	mpdp := run(4, NewMPDP(DefaultMPDPConfig()))
	if mpdp >= single {
		t.Fatalf("MPDP p99 %d not below single-path p99 %d", mpdp, single)
	}
}

func TestEngineConfigValidation(t *testing.T) {
	s := sim.New()
	base := engineConfig(1, SinglePath{})
	cases := map[string]func(){
		"nil-sim":   func() { New(nil, base, nil) },
		"zero-path": func() { c := base; c.NumPaths = 0; New(s, c, nil) },
		"nil-chain": func() { c := base; c.ChainFactory = nil; New(s, c, nil) },
		"nil-pol":   func() { c := base; c.Policy = nil; New(s, c, nil) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEngineBadPolicyPanics(t *testing.T) {
	bad := nf.Func{} // placeholder; define inline policies below
	_ = bad
	s := sim.New()
	empty := policyFunc{name: "empty", fn: func(now sim.Time, p *packet.Packet, paths []*PathState) []int { return nil }}
	dp := New(s, engineConfig(2, empty), nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty pick did not panic")
			}
		}()
		dp.Ingress(flowPkt(1))
	}()

	oob := policyFunc{name: "oob", fn: func(now sim.Time, p *packet.Packet, paths []*PathState) []int { return []int{9} }}
	dp2 := New(sim.New(), engineConfig(2, oob), nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range pick did not panic")
			}
		}()
		dp2.Ingress(flowPkt(1))
	}()
}

// policyFunc adapts a closure to Policy for tests.
type policyFunc struct {
	name string
	fn   func(now sim.Time, p *packet.Packet, paths []*PathState) []int
}

func (p policyFunc) Name() string { return p.name }
func (p policyFunc) Pick(now sim.Time, pk *packet.Packet, paths []*PathState) []int {
	return p.fn(now, pk, paths)
}

func TestEngineGoodputAccounting(t *testing.T) {
	s := sim.New()
	dp := New(s, engineConfig(2, JSQ{}), nil)
	inject(dp, 100, 4, sim.Microsecond)
	m := dp.Metrics()
	if m.DeliveredBytes() == 0 || m.OfferedBytes() == 0 {
		t.Fatal("byte accounting missing")
	}
	if m.GoodputBps(sim.Second) <= 0 {
		t.Fatal("goodput not computed")
	}
	if m.GoodputBps(0) != 0 {
		t.Fatal("zero elapsed must yield zero goodput")
	}
}

func TestEngineHolePunchOnTailDrop(t *testing.T) {
	// Queue-full drops must not stall the flow's successors for the
	// reorder timeout: the engine punches holes synchronously.
	s := sim.New()
	cfg := engineConfig(1, SinglePath{})
	cfg.QueueCap = 4
	cfg.ReorderTimeout = 10 * sim.Second // a stall would be obvious
	var worst sim.Duration
	dp := New(s, cfg, func(p *packet.Packet) {
		if w := p.ReorderWait(); w > worst {
			worst = w
		}
	})
	inject(dp, 300, 2, 200*sim.Nanosecond) // 5x overload
	m := dp.Metrics()
	if m.Drops(packet.DropQueueFull) == 0 {
		t.Fatal("expected overload drops")
	}
	if st := dp.ReorderStats(); st.HolesPunched == 0 {
		t.Fatal("no holes punched despite drops")
	}
	// Single path delivers in service order; with hole punching no packet
	// should ever sit in the reorder buffer.
	if worst != 0 {
		t.Fatalf("reorder stall of %v despite hole punching", worst)
	}
}

func TestEngineDupGroupsDrainToEmpty(t *testing.T) {
	s := sim.New()
	dp := New(s, engineConfig(4, Redundant{K: 3}), nil)
	inject(dp, 300, 8, 500*sim.Nanosecond)
	if n := len(dp.dups); n != 0 {
		t.Fatalf("%d dup groups leaked", n)
	}
}

func TestEngineTelemetryWindowAgesOutStragglers(t *testing.T) {
	// A path that was slow early must not be stigmatized forever: after
	// the slow window passes and two telemetry rotations elapse, the
	// path's p99 estimate must fall back toward its clean latency.
	s := sim.New()
	cfg := engineConfig(1, SinglePath{})
	cfg.TelemetryWindow = sim.Millisecond
	cfg.SlowdownFor = func(i int) vnet.Slowdown {
		return &vnet.ScriptedSlowdown{Windows: []vnet.SlowWindow{
			{Start: 0, End: 2 * sim.Millisecond, Factor: 50},
		}}
	}
	dp := New(s, cfg, nil)
	for i := 0; i < 5000; i++ {
		p := flowPkt(uint64(i % 4))
		s.At(sim.Time(i)*2*sim.Microsecond, func() { dp.Ingress(p) })
	}
	s.RunUntil(2 * sim.Millisecond)
	inEpisode := dp.Paths()[0].P99Latency()
	s.RunUntil(12 * sim.Millisecond)
	after := dp.Paths()[0].P99Latency()
	if inEpisode < 10*sim.Microsecond {
		t.Fatalf("episode p99 estimate %v implausibly low", inEpisode)
	}
	if after >= inEpisode/2 {
		t.Fatalf("windowed telemetry did not age out: %v -> %v", inEpisode, after)
	}
}

func TestEngineConsumeVerdictAccounting(t *testing.T) {
	s := sim.New()
	consume := nf.NewChain("vtep", nf.Func{
		ElemName: "consume",
		Fn: func(now sim.Time, p *packet.Packet) nf.Result {
			return nf.Result{Verdict: packet.Consume, Cost: 100}
		},
	})
	cfg := Config{
		NumPaths:     2,
		ChainFactory: func(i int) *nf.Chain { return consume },
		Policy:       &RoundRobin{},
		Seed:         1,
	}
	delivered := 0
	dp := New(s, cfg, func(*packet.Packet) { delivered++ })
	inject(dp, 40, 2, sim.Microsecond)
	if delivered != 0 {
		t.Fatal("consumed packets delivered")
	}
	m := dp.Metrics()
	if m.TotalLost() != 0 {
		t.Fatalf("consumed packets counted as lost: %d", m.TotalLost())
	}
	// Successors of consumed packets must not wait in the reorder buffer.
	if st := dp.ReorderStats(); st.Pending != 0 {
		t.Fatalf("reorder pending %d after consume", st.Pending)
	}
}

func TestEngineAccessors(t *testing.T) {
	s := sim.New()
	dp := New(s, engineConfig(2, JSQ{}), nil)
	if dp.Sim() != s {
		t.Fatal("Sim() accessor")
	}
	if dp.PolicyName() != "jsq" {
		t.Fatalf("PolicyName() = %q", dp.PolicyName())
	}
	if len(dp.Paths()) != 2 {
		t.Fatal("Paths() accessor")
	}
	inject(dp, 20, 2, sim.Microsecond)
	ps := dp.Paths()[0]
	if ps.ID() != 0 || ps.Sent() == 0 || ps.Completed() == 0 {
		t.Fatalf("path accessors: id=%d sent=%d done=%d", ps.ID(), ps.Sent(), ps.Completed())
	}
}

func TestMPDPDupFractionAccessor(t *testing.T) {
	m := NewMPDP(DefaultMPDPConfig())
	if m.DupFraction() != 0 || m.Rerouted() != 0 {
		t.Fatal("fresh policy counters nonzero")
	}
}

// Property: for ANY policy, path count, queue capacity and seed, the engine
// conserves packets (delivered + lost == offered) and never delivers a
// flow's packets out of order.
func TestQuickEngineInvariants(t *testing.T) {
	mkPolicies := func(rngSeed uint64) []Policy {
		return []Policy{
			SinglePath{}, RSSHash{}, &RoundRobin{}, JSQ{},
			&RandomPick{Rng: xrand.New(rngSeed)},
			&PowerOfTwo{Rng: xrand.New(rngSeed + 1)},
			NewFlowlet(100 * sim.Microsecond),
			NewLetFlow(100*sim.Microsecond, xrand.New(rngSeed+2)),
			LeastLatency{}, &WeightedRR{},
			Redundant{K: 2}, NewMPDP(DefaultMPDPConfig()),
		}
	}
	f := func(seed uint64, polRaw, pathsRaw, capRaw uint8) bool {
		pols := mkPolicies(seed)
		pol := pols[int(polRaw)%len(pols)]
		paths := int(pathsRaw%6) + 1
		qcap := int(capRaw%60) + 4

		s := sim.New()
		cfg := Config{
			NumPaths:     paths,
			ChainFactory: func(i int) *nf.Chain { return passChain(800) },
			Policy:       pol,
			QueueCap:     qcap,
			JitterSigma:  0.2,
			Seed:         seed,
		}
		lastSeq := make(map[uint64]uint64)
		seen := make(map[uint64]bool)
		ordered := true
		dp := New(s, cfg, func(p *packet.Packet) {
			if seen[p.FlowID] && p.Seq <= lastSeq[p.FlowID] {
				ordered = false
			}
			lastSeq[p.FlowID] = p.Seq
			seen[p.FlowID] = true
		})
		rng := xrand.New(seed ^ 0xabcdef)
		var at sim.Time
		for i := 0; i < 250; i++ {
			at += sim.Duration(rng.Intn(600) + 1)
			p := flowPkt(uint64(rng.Intn(6)))
			s.At(at, func() { dp.Ingress(p) })
		}
		s.Run()
		dp.Flush()
		s.Run()
		m := dp.Metrics()
		return ordered && m.Delivered()+m.TotalLost() == m.Offered()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
