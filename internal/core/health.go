package core

import (
	"fmt"

	"mpdp/internal/sim"
)

// HealthState is a path's position in the health state machine:
//
//	up → degraded → quarantined → probing → up
//	 \________________↗              ↘______↗ (probe failure re-quarantines)
//
// Up and Degraded paths are eligible for new traffic (Degraded is a warning
// tier: elevated error rate, still serving). A Quarantined path receives
// nothing. A Probing path receives only the engine's canary trickle until
// enough canaries survive to prove it healthy again.
type HealthState uint8

const (
	HealthUp HealthState = iota
	HealthDegraded
	HealthQuarantined
	HealthProbing
)

func (h HealthState) String() string {
	switch h {
	case HealthUp:
		return "up"
	case HealthDegraded:
		return "degraded"
	case HealthQuarantined:
		return "quarantined"
	case HealthProbing:
		return "probing"
	default:
		return fmt.Sprintf("health(%d)", uint8(h))
	}
}

// HealthConfig tunes the per-path health state machine. Zero values take
// the defaults below; Disable turns the machinery off entirely (paths stay
// Up forever — the pre-fault-model behaviour).
type HealthConfig struct {
	Disable bool

	// FailThreshold is the number of consecutive refused sends (fail-stop
	// enqueue rejections) that quarantines a path (default 1: a fail-stop
	// refusal is definitive).
	FailThreshold int

	// SuspectTimeout quarantines a path that holds in-flight packets but
	// has produced no completion for this long — the blackhole watchdog
	// (default 1 ms; far above any legitimate service time).
	SuspectTimeout sim.Duration

	// QuarantineBackoff is how long a quarantined path waits before it is
	// probed again (default 2 ms).
	QuarantineBackoff sim.Duration

	// CanaryEvery steers one in every CanaryEvery ingress packets to a
	// probing path (default 16). The trickle is the probe: real traffic,
	// sacrificial volume.
	CanaryEvery int

	// ProbeSuccesses is the number of canaries that must complete on a
	// probing path before it returns to Up (default 8).
	ProbeSuccesses int

	// DropWindowMin is the minimum completions+policy-drops in the current
	// accounting window before error-rate transitions are considered
	// (default 32).
	DropWindowMin int

	// DropQuarantineFrac quarantines a path whose policy-drop fraction over
	// the window exceeds this AND is at least 4x the median path's — a
	// misbehaving NF replica, not a uniform ACL (default 0.6).
	DropQuarantineFrac float64

	// DropDegradeFrac marks a path Degraded past this anomalous drop
	// fraction (default 0.25).
	DropDegradeFrac float64

	// MaintainEvery bounds how often the lazy health sweep runs: once per
	// MaintainEvery ingress packets (default 16). Health progression is
	// packet-clocked, so an idle data plane schedules no events.
	MaintainEvery int
}

func (c *HealthConfig) fillDefaults() {
	if c.FailThreshold == 0 {
		c.FailThreshold = 1
	}
	if c.SuspectTimeout == 0 {
		c.SuspectTimeout = 1 * sim.Millisecond
	}
	if c.QuarantineBackoff == 0 {
		c.QuarantineBackoff = 2 * sim.Millisecond
	}
	if c.CanaryEvery == 0 {
		c.CanaryEvery = 16
	}
	if c.ProbeSuccesses == 0 {
		c.ProbeSuccesses = 8
	}
	if c.DropWindowMin == 0 {
		c.DropWindowMin = 32
	}
	if c.DropQuarantineFrac == 0 {
		c.DropQuarantineFrac = 0.6
	}
	if c.DropDegradeFrac == 0 {
		c.DropDegradeFrac = 0.25
	}
	if c.MaintainEvery == 0 {
		c.MaintainEvery = 16
	}
}

// pathHealth is the per-path slice of the state machine, driven entirely by
// the engine (sends, completions, refusals, and the lazy ingress-clocked
// sweep) — no timers of its own, so health costs nothing when idle and
// stays deterministic.
type pathHealth struct {
	state HealthState
	since sim.Time // virtual time of the last state change

	consecFail int // consecutive refused sends
	probeOK    int // canary completions while probing

	inflight     int      // copies sent minus copies completed/dropped/drained
	pendingSince sim.Time // when inflight last rose from zero
	lastDone     sim.Time // last completion on this path

	// Current error-accounting window (rotated by the sweep).
	winServed  int
	winDropped int
	// Last completed window's drop fraction (-1 until one completes).
	dropFrac float64
}

func newPathHealth() pathHealth {
	return pathHealth{state: HealthUp, dropFrac: -1}
}

func (h *pathHealth) setState(s HealthState, now sim.Time) {
	h.state = s
	h.since = now
	h.consecFail = 0
	h.probeOK = 0
}

// rotateWindow closes the current error-accounting window if it has enough
// samples, exposing its drop fraction.
func (h *pathHealth) rotateWindow(minSamples int) {
	total := h.winServed + h.winDropped
	if total < minSamples {
		return
	}
	h.dropFrac = float64(h.winDropped) / float64(total)
	h.winServed, h.winDropped = 0, 0
}

// HealthTracker is the exported, signal-driven face of the path-health
// state machine: the same pathHealth core the simulated engine drives with
// lane completions, but fed by whatever the caller's transport can actually
// observe — cumulative ack/gap deltas, refused sends, and a periodic
// Maintain sweep. internal/transport attaches one per UDP path and feeds it
// from real acknowledgements, so a wire path flaps through the identical
// up → degraded → quarantined → probing → up machine the simulator uses.
//
// Unlike the engine's sweep, a tracker sees only its own path, so the
// drop-fraction transitions use the configured thresholds absolutely (no
// cross-path median): a caller with peer context can layer its own
// anomaly comparison on top.
//
// Times are sim.Time values from any monotone clock the caller owns; the
// transport passes wall nanoseconds. The tracker is not goroutine-safe —
// serialize calls (the transport funnels all signals through one lock).
type HealthTracker struct {
	cfg         HealthConfig
	h           pathHealth
	quarantines int
}

// NewHealthTracker builds a tracker in the Up state. Zero-valued config
// fields take the HealthConfig defaults.
func NewHealthTracker(cfg HealthConfig) *HealthTracker {
	cfg.fillDefaults()
	return &HealthTracker{cfg: cfg, h: newPathHealth()}
}

// State returns the current health state.
func (t *HealthTracker) State() HealthState { return t.h.state }

// Since returns when the tracker entered its current state.
func (t *HealthTracker) Since() sim.Time { return t.h.since }

// Eligible reports whether the path may receive ordinary new traffic (Up or
// Degraded). Probing paths take only the caller's canary trickle.
func (t *HealthTracker) Eligible() bool {
	return t.h.state == HealthUp || t.h.state == HealthDegraded
}

// InFlight returns frames sent but not yet resolved by an ack or a gap.
func (t *HealthTracker) InFlight() int { return t.h.inflight }

// Quarantines returns how many times the path has been quarantined.
func (t *HealthTracker) Quarantines() int { return t.quarantines }

// ObserveSent records n frames handed to the path's socket.
func (t *HealthTracker) ObserveSent(now sim.Time, n int) {
	if t.cfg.Disable || n <= 0 {
		return
	}
	if t.h.inflight == 0 {
		t.h.pendingSince = now
	}
	t.h.inflight += n
}

// ObserveAck folds one acknowledgement into the machine: delivered frames
// newly confirmed received and lost frames newly and conclusively gapped
// since the previous ack (both deltas, not cumulative totals). A loss while
// probing re-quarantines immediately — a dropped canary means the path has
// not earned its way back.
func (t *HealthTracker) ObserveAck(now sim.Time, delivered, lost int) {
	if t.cfg.Disable {
		return
	}
	t.h.inflight -= delivered + lost
	if t.h.inflight < 0 {
		t.h.inflight = 0
	}
	if delivered > 0 {
		t.h.lastDone = now
		t.h.consecFail = 0
		t.h.winServed += delivered
	}
	if lost > 0 {
		t.h.winDropped += lost
	}
	if t.h.state == HealthProbing {
		if lost > 0 {
			t.quarantine(now)
			return
		}
		if delivered > 0 {
			t.h.probeOK += delivered
			if t.h.probeOK >= t.cfg.ProbeSuccesses {
				t.h.setState(HealthUp, now)
			}
		}
	}
}

// ObserveSendRefused records a refused send (socket write error): the
// transport analogue of a fail-stop enqueue rejection. FailThreshold
// consecutive refusals quarantine the path.
func (t *HealthTracker) ObserveSendRefused(now sim.Time) {
	if t.cfg.Disable {
		return
	}
	t.h.consecFail++
	if t.h.consecFail >= t.cfg.FailThreshold {
		t.quarantine(now)
	}
}

// Maintain runs the lazy sweep: the blackhole watchdog, error-window
// rotation and drop-fraction transitions, and quarantine-backoff expiry.
// Call it on the caller's own cadence (the transport runs it per ack and
// every MaintainEvery sends).
func (t *HealthTracker) Maintain(now sim.Time) {
	if t.cfg.Disable {
		return
	}
	cfg := &t.cfg
	h := &t.h
	switch h.state {
	case HealthUp, HealthDegraded:
		// Blackhole watchdog: work outstanding, nothing coming back.
		if h.inflight > 0 && now-h.pendingSince > cfg.SuspectTimeout &&
			(h.lastDone == 0 || now-h.lastDone > cfg.SuspectTimeout) {
			t.quarantine(now)
			return
		}
		h.rotateWindow(cfg.DropWindowMin)
		if h.dropFrac < 0 {
			return
		}
		switch {
		case h.dropFrac >= cfg.DropQuarantineFrac:
			t.quarantine(now)
		case h.dropFrac >= cfg.DropDegradeFrac && h.state == HealthUp:
			h.setState(HealthDegraded, now)
		case h.state == HealthDegraded && h.dropFrac < cfg.DropDegradeFrac/2:
			h.setState(HealthUp, now)
		}
	case HealthQuarantined:
		if now-h.since >= cfg.QuarantineBackoff {
			h.setState(HealthProbing, now)
			// Fresh accounting epoch: the pre-quarantine drop fraction must
			// not re-condemn the path the moment the canaries earn it back.
			h.winServed, h.winDropped = 0, 0
			h.dropFrac = -1
		}
	case HealthProbing:
		// A canary swallowed silently means the blackhole persists.
		if h.inflight > 0 && now-h.pendingSince > cfg.SuspectTimeout {
			t.quarantine(now)
		}
	}
}

func (t *HealthTracker) quarantine(now sim.Time) {
	if t.h.state == HealthQuarantined {
		return
	}
	t.h.setState(HealthQuarantined, now)
	t.quarantines++
}
