package core

import (
	"fmt"

	"mpdp/internal/sim"
)

// HealthState is a path's position in the health state machine:
//
//	up → degraded → quarantined → probing → up
//	 \________________↗              ↘______↗ (probe failure re-quarantines)
//
// Up and Degraded paths are eligible for new traffic (Degraded is a warning
// tier: elevated error rate, still serving). A Quarantined path receives
// nothing. A Probing path receives only the engine's canary trickle until
// enough canaries survive to prove it healthy again.
type HealthState uint8

const (
	HealthUp HealthState = iota
	HealthDegraded
	HealthQuarantined
	HealthProbing
)

func (h HealthState) String() string {
	switch h {
	case HealthUp:
		return "up"
	case HealthDegraded:
		return "degraded"
	case HealthQuarantined:
		return "quarantined"
	case HealthProbing:
		return "probing"
	default:
		return fmt.Sprintf("health(%d)", uint8(h))
	}
}

// HealthConfig tunes the per-path health state machine. Zero values take
// the defaults below; Disable turns the machinery off entirely (paths stay
// Up forever — the pre-fault-model behaviour).
type HealthConfig struct {
	Disable bool

	// FailThreshold is the number of consecutive refused sends (fail-stop
	// enqueue rejections) that quarantines a path (default 1: a fail-stop
	// refusal is definitive).
	FailThreshold int

	// SuspectTimeout quarantines a path that holds in-flight packets but
	// has produced no completion for this long — the blackhole watchdog
	// (default 1 ms; far above any legitimate service time).
	SuspectTimeout sim.Duration

	// QuarantineBackoff is how long a quarantined path waits before it is
	// probed again (default 2 ms).
	QuarantineBackoff sim.Duration

	// CanaryEvery steers one in every CanaryEvery ingress packets to a
	// probing path (default 16). The trickle is the probe: real traffic,
	// sacrificial volume.
	CanaryEvery int

	// ProbeSuccesses is the number of canaries that must complete on a
	// probing path before it returns to Up (default 8).
	ProbeSuccesses int

	// DropWindowMin is the minimum completions+policy-drops in the current
	// accounting window before error-rate transitions are considered
	// (default 32).
	DropWindowMin int

	// DropQuarantineFrac quarantines a path whose policy-drop fraction over
	// the window exceeds this AND is at least 4x the median path's — a
	// misbehaving NF replica, not a uniform ACL (default 0.6).
	DropQuarantineFrac float64

	// DropDegradeFrac marks a path Degraded past this anomalous drop
	// fraction (default 0.25).
	DropDegradeFrac float64

	// MaintainEvery bounds how often the lazy health sweep runs: once per
	// MaintainEvery ingress packets (default 16). Health progression is
	// packet-clocked, so an idle data plane schedules no events.
	MaintainEvery int
}

func (c *HealthConfig) fillDefaults() {
	if c.FailThreshold == 0 {
		c.FailThreshold = 1
	}
	if c.SuspectTimeout == 0 {
		c.SuspectTimeout = 1 * sim.Millisecond
	}
	if c.QuarantineBackoff == 0 {
		c.QuarantineBackoff = 2 * sim.Millisecond
	}
	if c.CanaryEvery == 0 {
		c.CanaryEvery = 16
	}
	if c.ProbeSuccesses == 0 {
		c.ProbeSuccesses = 8
	}
	if c.DropWindowMin == 0 {
		c.DropWindowMin = 32
	}
	if c.DropQuarantineFrac == 0 {
		c.DropQuarantineFrac = 0.6
	}
	if c.DropDegradeFrac == 0 {
		c.DropDegradeFrac = 0.25
	}
	if c.MaintainEvery == 0 {
		c.MaintainEvery = 16
	}
}

// pathHealth is the per-path slice of the state machine, driven entirely by
// the engine (sends, completions, refusals, and the lazy ingress-clocked
// sweep) — no timers of its own, so health costs nothing when idle and
// stays deterministic.
type pathHealth struct {
	state HealthState
	since sim.Time // virtual time of the last state change

	consecFail int // consecutive refused sends
	probeOK    int // canary completions while probing

	inflight     int      // copies sent minus copies completed/dropped/drained
	pendingSince sim.Time // when inflight last rose from zero
	lastDone     sim.Time // last completion on this path

	// Current error-accounting window (rotated by the sweep).
	winServed  int
	winDropped int
	// Last completed window's drop fraction (-1 until one completes).
	dropFrac float64
}

func newPathHealth() pathHealth {
	return pathHealth{state: HealthUp, dropFrac: -1}
}

func (h *pathHealth) setState(s HealthState, now sim.Time) {
	h.state = s
	h.since = now
	h.consecFail = 0
	h.probeOK = 0
}

// rotateWindow closes the current error-accounting window if it has enough
// samples, exposing its drop fraction.
func (h *pathHealth) rotateWindow(minSamples int) {
	total := h.winServed + h.winDropped
	if total < minSamples {
		return
	}
	h.dropFrac = float64(h.winDropped) / float64(total)
	h.winServed, h.winDropped = 0, 0
}
