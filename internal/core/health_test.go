package core

import (
	"testing"

	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/vnet"
)

// fastHealth returns health parameters scaled down to µs test horizons.
func fastHealth() HealthConfig {
	return HealthConfig{
		SuspectTimeout:    20 * sim.Microsecond,
		QuarantineBackoff: 50 * sim.Microsecond,
		CanaryEvery:       4,
		ProbeSuccesses:    3,
		MaintainEvery:     8,
	}
}

// healthInject offers pkts packets from nFlows flows at fixed spacing and
// runs the simulator dry, flushing at the end.
func healthInject(dp *DataPlane, pkts, nFlows int, spacing sim.Duration) {
	s := dp.Sim()
	for i := 0; i < pkts; i++ {
		p := flowPkt(uint64(i % nFlows))
		s.At(sim.Time(i)*spacing, func() { dp.Ingress(p) })
	}
	s.Run()
	dp.Flush()
	s.Run()
}

// conservationOK asserts offered = delivered + consumed + lost.
func conservationOK(t *testing.T, dp *DataPlane, delivered int) {
	t.Helper()
	m := dp.Metrics()
	if uint64(delivered) != m.Delivered() {
		t.Fatalf("sink saw %d, metrics say %d", delivered, m.Delivered())
	}
	if m.Offered() != m.Delivered()+m.Consumed()+m.TotalLost() {
		t.Fatalf("conservation: offered=%d delivered=%d consumed=%d lost=%d",
			m.Offered(), m.Delivered(), m.Consumed(), m.TotalLost())
	}
}

func TestFailStopQuarantinesAndRecovers(t *testing.T) {
	s := sim.New()
	cfg := engineConfig(4, JSQ{})
	cfg.Health = fastHealth()
	delivered := 0
	dp := New(s, cfg, func(p *packet.Packet) { delivered++ })

	s.At(100*sim.Microsecond, func() { dp.FailPath(0, vnet.LaneFailStop) })
	s.At(300*sim.Microsecond, func() { dp.RestorePath(0) })
	healthInject(dp, 2000, 8, 500*sim.Nanosecond)

	m := dp.Metrics()
	if got := dp.Paths()[0].Health(); got != HealthUp {
		t.Fatalf("path 0 health %v after repair + probing, want up", got)
	}
	if m.Quarantines() == 0 {
		t.Fatal("fail-stop never quarantined the path")
	}
	if m.Canaries() == 0 {
		t.Fatal("probing sent no canaries")
	}
	// Only packets caught inside lane 0 at failure time may be lost; the
	// fail-stop is announced, so everything after it must be re-steered.
	if lost := m.TotalLost(); lost > 5 {
		t.Fatalf("lost %d packets across an announced fail-stop", lost)
	}
	conservationOK(t, dp, delivered)
	// The repaired path must actually carry traffic again.
	if served := dp.Paths()[0].Lane.Stats().Served; served == 0 {
		t.Fatal("repaired path never served again")
	}
}

func TestBlackholeWatchdogDetects(t *testing.T) {
	s := sim.New()
	cfg := engineConfig(4, &RoundRobin{})
	cfg.Health = fastHealth()
	delivered := 0
	dp := New(s, cfg, func(p *packet.Packet) { delivered++ })

	s.At(100*sim.Microsecond, func() { dp.FailPath(0, vnet.LaneBlackhole) })
	healthInject(dp, 2000, 8, 500*sim.Nanosecond)

	m := dp.Metrics()
	if m.Quarantines() == 0 {
		t.Fatal("watchdog never quarantined the blackholed path")
	}
	if got := dp.Paths()[0].Health(); got == HealthUp || got == HealthDegraded {
		t.Fatalf("path 0 health %v with a permanent blackhole, want quarantined/probing", got)
	}
	// Packets swallowed before detection (and mirrored canaries) are lost;
	// it must be a small, bounded prefix — not a quarter of the traffic.
	lost := m.TotalLost()
	if lost == 0 {
		t.Fatal("a blackhole cannot be loss-free: in-flight packets were swallowed")
	}
	if lost > 100 {
		t.Fatalf("lost %d packets: watchdog detection too slow", lost)
	}
	conservationOK(t, dp, delivered)
}

func TestBlackholeRepairRecoversViaCanaries(t *testing.T) {
	s := sim.New()
	cfg := engineConfig(4, JSQ{})
	cfg.Health = fastHealth()
	delivered := 0
	dp := New(s, cfg, func(p *packet.Packet) { delivered++ })

	s.At(100*sim.Microsecond, func() { dp.FailPath(0, vnet.LaneBlackhole) })
	s.At(250*sim.Microsecond, func() { dp.RestorePath(0) })
	healthInject(dp, 3000, 8, 500*sim.Nanosecond)

	if got := dp.Paths()[0].Health(); got != HealthUp {
		t.Fatalf("path 0 health %v after repair, want up (canaries should have proven it)", got)
	}
	// Canaries are mirrored copies: probing itself must not lose packets.
	// Only the pre-detection swallow window may.
	if lost := dp.Metrics().TotalLost(); lost > 100 {
		t.Fatalf("lost %d packets", lost)
	}
	conservationOK(t, dp, delivered)
}

// dropChain drops every packet (verdict Drop, like a deny-all ACL).
func dropChain(cost sim.Duration) *nf.Chain {
	return nf.NewChain("drop", nf.Func{
		ElemName: "drop",
		Fn: func(now sim.Time, p *packet.Packet) nf.Result {
			p.Dropped = packet.DropPolicy
			return nf.Result{Verdict: packet.Drop, Cost: cost}
		},
	})
}

func TestAnomalousDropFractionQuarantines(t *testing.T) {
	s := sim.New()
	cfg := engineConfig(4, &RoundRobin{})
	cfg.Health = fastHealth()
	// Path 0's NF replica went insane: it drops everything. Its peers are
	// clean, so its drop fraction is anomalous and it must be isolated.
	cfg.ChainFactory = func(i int) *nf.Chain {
		if i == 0 {
			return dropChain(1 * sim.Microsecond)
		}
		return passChain(1 * sim.Microsecond)
	}
	delivered := 0
	dp := New(s, cfg, func(p *packet.Packet) { delivered++ })
	healthInject(dp, 2000, 8, 500*sim.Nanosecond)

	if got := dp.Paths()[0].Health(); got == HealthUp || got == HealthDegraded {
		t.Fatalf("path 0 health %v with a 100%% dropping chain, want quarantined/probing", got)
	}
	for i := 1; i < 4; i++ {
		if got := dp.Paths()[i].Health(); got != HealthUp {
			t.Fatalf("clean path %d health %v, want up", i, got)
		}
	}
	conservationOK(t, dp, delivered)
}

func TestUniformDropsDoNotQuarantine(t *testing.T) {
	s := sim.New()
	cfg := engineConfig(4, &RoundRobin{})
	cfg.Health = fastHealth()
	// Every replica drops every third packet — a uniform ACL, not a sick
	// path. Nobody should be punished for it.
	cfg.ChainFactory = func(i int) *nf.Chain {
		n := 0
		return nf.NewChain("acl", nf.Func{
			ElemName: "acl",
			Fn: func(now sim.Time, p *packet.Packet) nf.Result {
				n++
				if n%3 == 0 {
					p.Dropped = packet.DropPolicy
					return nf.Result{Verdict: packet.Drop, Cost: 1 * sim.Microsecond}
				}
				return nf.Result{Verdict: packet.Pass, Cost: 1 * sim.Microsecond}
			},
		})
	}
	delivered := 0
	dp := New(s, cfg, func(p *packet.Packet) { delivered++ })
	healthInject(dp, 2000, 8, 500*sim.Nanosecond)

	for i := 0; i < 4; i++ {
		if got := dp.Paths()[i].Health(); got != HealthUp {
			t.Fatalf("path %d health %v under uniform drops, want up", i, got)
		}
	}
	if dp.Metrics().Quarantines() != 0 {
		t.Fatalf("%d quarantines under a uniform drop rate", dp.Metrics().Quarantines())
	}
	conservationOK(t, dp, delivered)
}

func TestHealthDisabledIgnoresFailures(t *testing.T) {
	s := sim.New()
	cfg := engineConfig(4, &RoundRobin{})
	cfg.Health = HealthConfig{Disable: true}
	delivered := 0
	dp := New(s, cfg, func(p *packet.Packet) { delivered++ })

	s.At(100*sim.Microsecond, func() { dp.FailPath(0, vnet.LaneFailStop) })
	healthInject(dp, 2000, 8, 500*sim.Nanosecond)

	m := dp.Metrics()
	// Without health, the scheduler keeps feeding the dead path and about a
	// quarter of post-failure traffic dies there — the ablation baseline.
	if m.Drops(packet.DropPathFailed) < 200 {
		t.Fatalf("only %d path-failed drops; disabled health should keep sending", m.Drops(packet.DropPathFailed))
	}
	if got := dp.Paths()[0].Health(); got != HealthUp {
		t.Fatalf("disabled health machinery changed state to %v", got)
	}
	if m.Quarantines() != 0 || m.Canaries() != 0 {
		t.Fatal("disabled health machinery still acted")
	}
	conservationOK(t, dp, delivered)
}

func TestHealthWithDuplicationConserves(t *testing.T) {
	// Redundant + a mid-run fail-stop: dup groups must resolve exactly once
	// per packet even when one copy dies on a failing lane.
	s := sim.New()
	cfg := engineConfig(4, Redundant{K: 2})
	cfg.Health = fastHealth()
	delivered := 0
	dp := New(s, cfg, func(p *packet.Packet) { delivered++ })

	s.At(100*sim.Microsecond, func() { dp.FailPath(1, vnet.LaneFailStop) })
	s.At(400*sim.Microsecond, func() { dp.RestorePath(1) })
	healthInject(dp, 2000, 8, 600*sim.Nanosecond)

	m := dp.Metrics()
	// Duplication makes single-copy losses nearly impossible: the sibling
	// of every drained copy survives on a healthy lane.
	if lost := m.TotalLost(); lost > 2 {
		t.Fatalf("lost %d duplicated packets across a fail-stop", lost)
	}
	conservationOK(t, dp, delivered)
}
