package core

import (
	"testing"

	"mpdp/internal/sim"
)

// The HealthTracker tests drive the state machine exactly the way the wire
// transport does: cumulative ack deltas (delivered, lost), refused sends,
// and Maintain sweeps on a wall-like clock — no simulator events involved.

func trackerCfg() HealthConfig {
	return HealthConfig{
		SuspectTimeout:    1 * sim.Millisecond,
		QuarantineBackoff: 2 * sim.Millisecond,
		ProbeSuccesses:    4,
		DropWindowMin:     16,
	}
}

// ackRound sends n frames and immediately acks them with the given loss
// split, advancing the clock by step.
func ackRound(t *HealthTracker, now *sim.Time, sent, delivered, lost int, step sim.Duration) {
	t.ObserveSent(*now, sent)
	*now += step
	t.ObserveAck(*now, delivered, lost)
	t.Maintain(*now)
}

func TestHealthTrackerStaysUpOnCleanAcks(t *testing.T) {
	ht := NewHealthTracker(trackerCfg())
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		ackRound(ht, &now, 10, 10, 0, 100*sim.Microsecond)
	}
	if got := ht.State(); got != HealthUp {
		t.Fatalf("state after clean acks = %v, want up", got)
	}
	if ht.InFlight() != 0 {
		t.Fatalf("inflight = %d, want 0", ht.InFlight())
	}
}

func TestHealthTrackerLossFlapAndRecovery(t *testing.T) {
	// The full round trip the transport exercises with an impaired path:
	// heavy real loss quarantines, backoff moves to probing, clean canary
	// acks restore Up.
	ht := NewHealthTracker(trackerCfg())
	now := sim.Time(0)

	// Healthy warm-up.
	for i := 0; i < 4; i++ {
		ackRound(ht, &now, 8, 8, 0, 100*sim.Microsecond)
	}

	// Gap-heavy acks: 75% of frames lost. The first completed window
	// (>= DropWindowMin samples) pushes dropFrac over DropQuarantineFrac.
	for i := 0; i < 8 && ht.State() != HealthQuarantined; i++ {
		ackRound(ht, &now, 8, 2, 6, 100*sim.Microsecond)
	}
	if got := ht.State(); got != HealthQuarantined {
		t.Fatalf("state after 75%% loss = %v, want quarantined", got)
	}
	if ht.Quarantines() != 1 {
		t.Fatalf("quarantines = %d, want 1", ht.Quarantines())
	}

	// Backoff expires: probing.
	now += 3 * sim.Millisecond
	ht.Maintain(now)
	if got := ht.State(); got != HealthProbing {
		t.Fatalf("state after backoff = %v, want probing", got)
	}
	if ht.Eligible() {
		t.Fatal("probing path must not be eligible for ordinary traffic")
	}

	// A lost canary re-quarantines immediately.
	ackRound(ht, &now, 1, 0, 1, 100*sim.Microsecond)
	if got := ht.State(); got != HealthQuarantined {
		t.Fatalf("state after lost canary = %v, want quarantined", got)
	}

	// Second probe round: clean canaries earn the path back.
	now += 3 * sim.Millisecond
	ht.Maintain(now)
	if got := ht.State(); got != HealthProbing {
		t.Fatalf("state after second backoff = %v, want probing", got)
	}
	for i := 0; i < 4; i++ {
		ackRound(ht, &now, 1, 1, 0, 100*sim.Microsecond)
	}
	if got := ht.State(); got != HealthUp {
		t.Fatalf("state after %d clean canaries = %v, want up", 4, got)
	}
	if !ht.Eligible() {
		t.Fatal("recovered path must be eligible")
	}
	if ht.Quarantines() != 2 {
		t.Fatalf("quarantines = %d, want 2", ht.Quarantines())
	}
}

func TestHealthTrackerModerateLossDegrades(t *testing.T) {
	ht := NewHealthTracker(trackerCfg())
	now := sim.Time(0)
	// ~31% loss: above DropDegradeFrac (0.25), below DropQuarantineFrac.
	for i := 0; i < 8; i++ {
		ackRound(ht, &now, 16, 11, 5, 100*sim.Microsecond)
	}
	if got := ht.State(); got != HealthDegraded {
		t.Fatalf("state after moderate loss = %v, want degraded", got)
	}
	if !ht.Eligible() {
		t.Fatal("degraded path must stay eligible (warning tier)")
	}
	// Loss clears well below half the degrade threshold: back to Up.
	for i := 0; i < 8; i++ {
		ackRound(ht, &now, 16, 16, 0, 100*sim.Microsecond)
	}
	if got := ht.State(); got != HealthUp {
		t.Fatalf("state after recovery = %v, want up", got)
	}
}

func TestHealthTrackerSendRefusedQuarantines(t *testing.T) {
	ht := NewHealthTracker(trackerCfg()) // FailThreshold defaults to 1
	ht.ObserveSendRefused(10)
	if got := ht.State(); got != HealthQuarantined {
		t.Fatalf("state after refused send = %v, want quarantined", got)
	}
}

func TestHealthTrackerBlackholeWatchdog(t *testing.T) {
	ht := NewHealthTracker(trackerCfg())
	now := sim.Time(0)
	ht.ObserveSent(now, 32) // frames out, then silence: no acks at all
	now += 2 * sim.Millisecond
	ht.Maintain(now)
	if got := ht.State(); got != HealthQuarantined {
		t.Fatalf("state after ack silence = %v, want quarantined", got)
	}

	// While probing, the watchdog applies too: canaries out, still silence.
	now += 3 * sim.Millisecond
	ht.Maintain(now)
	if got := ht.State(); got != HealthProbing {
		t.Fatalf("state after backoff = %v, want probing", got)
	}
	ht.ObserveSent(now, 1)
	now += 2 * sim.Millisecond
	ht.Maintain(now)
	if got := ht.State(); got != HealthQuarantined {
		t.Fatalf("state after silent canary = %v, want quarantined", got)
	}
}

func TestHealthTrackerDisabled(t *testing.T) {
	ht := NewHealthTracker(HealthConfig{Disable: true})
	now := sim.Time(0)
	ht.ObserveSendRefused(now)
	ackRound(ht, &now, 16, 0, 16, sim.Millisecond)
	ht.ObserveSent(now, 64)
	now += 10 * sim.Millisecond
	ht.Maintain(now)
	if got := ht.State(); got != HealthUp {
		t.Fatalf("disabled tracker moved to %v, want up forever", got)
	}
}
