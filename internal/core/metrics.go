package core

import (
	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/stats"
)

// Metrics accumulates everything the experiment suite reads out of a run:
// the end-to-end latency distribution, its breakdown into queueing, service
// and reorder components, delivery/drop accounting, and duplication
// overhead.
type Metrics struct {
	// Latency is ingress→in-order-delivery, the paper's headline metric.
	Latency *stats.Hist
	// Components of delivered-packet latency.
	QueueWait   *stats.Hist
	ServiceTime *stats.Hist
	ReorderWait *stats.Hist

	// Timeline, non-nil when configured, bins latency by delivery time.
	Timeline *stats.WindowSeries

	// Per-element service-cost histograms, populated only when
	// Config.StageTiming is on. Indexed by chain position; names taken from
	// the first lane to report each stage (chains are homogeneous across
	// lanes in every preset; heterogeneous chains keep the first-seen name).
	stageHists []*stats.Hist
	stageNames []string

	offered        uint64
	offeredBytes   uint64
	delivered      uint64
	deliveredBytes uint64
	consumed       uint64
	copiesSent     uint64
	dupCopies      uint64
	dupBytes       uint64
	dupCancelled   uint64
	deadlineHits   uint64
	deadlineMisses uint64
	canaries       uint64
	quarantines    uint64
	drops          map[packet.DropReason]uint64
}

func newMetrics(timelineWindow sim.Duration) *Metrics {
	m := &Metrics{
		Latency:     stats.NewHist(),
		QueueWait:   stats.NewHist(),
		ServiceTime: stats.NewHist(),
		ReorderWait: stats.NewHist(),
		drops:       make(map[packet.DropReason]uint64),
	}
	if timelineWindow > 0 {
		m.Timeline = stats.NewWindowSeries(int64(timelineWindow))
	}
	return m
}

func (m *Metrics) recordDelivery(p *packet.Packet) {
	m.delivered++
	m.deliveredBytes += uint64(p.Size())
	lat := int64(p.Latency())
	m.Latency.Record(lat)
	m.QueueWait.Record(int64(p.QueueWait()))
	m.ServiceTime.Record(int64(p.ServiceTime()))
	m.ReorderWait.Record(int64(p.ReorderWait()))
	if m.Timeline != nil {
		m.Timeline.Add(int64(p.Delivered), lat)
	}
	if p.Deadline > 0 {
		if p.MissedDeadline() {
			m.deadlineMisses++
		} else {
			m.deadlineHits++
		}
	}
}

// recordStage accumulates one element's service cost. Single-threaded like
// the rest of the engine (the simulator is sequential), so plain slices.
func (m *Metrics) recordStage(i int, name string, cost sim.Duration) {
	for len(m.stageHists) <= i {
		m.stageHists = append(m.stageHists, stats.NewHist())
		m.stageNames = append(m.stageNames, "")
	}
	if m.stageNames[i] == "" {
		m.stageNames[i] = name
	}
	m.stageHists[i].Record(int64(cost))
}

// StageStat is one chain position's virtual service-cost distribution.
type StageStat struct {
	Name    string
	Latency stats.Summary
}

// StageService returns per-element service-cost summaries in chain order.
// Empty unless the engine ran with Config.StageTiming.
func (m *Metrics) StageService() []StageStat {
	out := make([]StageStat, len(m.stageHists))
	for i, h := range m.stageHists {
		out[i] = StageStat{Name: m.stageNames[i], Latency: h.Summarize()}
	}
	return out
}

// StageHook returns the metrics sink usable as an nf.StageHook, or nil
// when stage timing is off (so lanes keep the unhooked fast path).
func (m *Metrics) stageHook(enabled bool) nf.StageHook {
	if !enabled {
		return nil
	}
	return func(i int, e nf.Element, r nf.Result) {
		m.recordStage(i, e.Name(), r.Cost)
	}
}

// Offered returns distinct packets admitted at ingress.
func (m *Metrics) Offered() uint64 { return m.offered }

// Delivered returns packets released in order to the guest.
func (m *Metrics) Delivered() uint64 { return m.delivered }

// DeliveredBytes returns goodput bytes.
func (m *Metrics) DeliveredBytes() uint64 { return m.deliveredBytes }

// OfferedBytes returns ingress bytes.
func (m *Metrics) OfferedBytes() uint64 { return m.offeredBytes }

// CopiesSent returns lane enqueues (originals + duplicates).
func (m *Metrics) CopiesSent() uint64 { return m.copiesSent }

// DupCopies returns extra copies created by duplication.
func (m *Metrics) DupCopies() uint64 { return m.dupCopies }

// DupBytes returns the bytes of extra copies created by duplication — the
// common cost axis every duplicating policy (hedge-style redundancy, MPDP
// selective duplication, deadline-aware escalation) is measured on.
func (m *Metrics) DupBytes() uint64 { return m.dupBytes }

// DeadlineHits returns delivered packets that made their deadline (packets
// without a deadline are counted in neither bucket).
func (m *Metrics) DeadlineHits() uint64 { return m.deadlineHits }

// DeadlineMisses returns delivered packets that blew their deadline.
func (m *Metrics) DeadlineMisses() uint64 { return m.deadlineMisses }

// DeadlineHitRate returns hits/(hits+misses) over delivered deadline
// packets, or 1 when no packet carried a deadline.
func (m *Metrics) DeadlineHitRate() float64 {
	total := m.deadlineHits + m.deadlineMisses
	if total == 0 {
		return 1
	}
	return float64(m.deadlineHits) / float64(total)
}

// DupCancelled returns duplicate copies cancelled while still queued
// (i.e. whose service cost was saved).
func (m *Metrics) DupCancelled() uint64 { return m.dupCancelled }

// Consumed returns packets terminated inside the chain (tunnel endpoints).
func (m *Metrics) Consumed() uint64 { return m.consumed }

// Canaries returns packets redirected at probing paths as health probes.
func (m *Metrics) Canaries() uint64 { return m.canaries }

// Quarantines returns path quarantine transitions (re-quarantines counted).
func (m *Metrics) Quarantines() uint64 { return m.quarantines }

// Drops returns the count for one drop reason.
func (m *Metrics) Drops(r packet.DropReason) uint64 { return m.drops[r] }

// TotalLost returns distinct packets that never got delivered: offered
// minus delivered minus consumed. (Per-reason counters include duplicate
// copies, so they over-count packet loss; this is the true packet number.)
func (m *Metrics) TotalLost() uint64 {
	done := m.delivered + m.consumed
	if m.offered < done {
		return 0
	}
	return m.offered - done
}

// DeliveryRate returns delivered/offered.
func (m *Metrics) DeliveryRate() float64 {
	if m.offered == 0 {
		return 0
	}
	return float64(m.delivered) / float64(m.offered)
}

// DupOverhead returns extra copies as a fraction of offered packets.
func (m *Metrics) DupOverhead() float64 {
	if m.offered == 0 {
		return 0
	}
	return float64(m.dupCopies) / float64(m.offered)
}

// GoodputBps returns delivered bits per virtual second over elapsed time.
func (m *Metrics) GoodputBps(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(m.deliveredBytes) * 8 / elapsed.Seconds()
}
