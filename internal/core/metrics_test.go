package core

import (
	"testing"

	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// TestMetricsTotalLostClamps documents the clamp in TotalLost: when the raw
// counters say more packets finished than were offered (an over-delivery
// bug), TotalLost reports 0 rather than wrapping. The invariant checker is
// responsible for flagging that state as a violation.
func TestMetricsTotalLostClamps(t *testing.T) {
	m := newMetrics(0)
	m.offered = 10
	m.delivered = 7
	m.consumed = 1
	if got := m.TotalLost(); got != 2 {
		t.Fatalf("TotalLost = %d, want 2", got)
	}
	m.delivered = 12 // over-delivery: 12+1 > 10
	if got := m.TotalLost(); got != 0 {
		t.Fatalf("TotalLost = %d, want clamp to 0 on over-delivery", got)
	}
}

func TestMetricsRatioGuards(t *testing.T) {
	m := newMetrics(0)
	if m.DeliveryRate() != 0 || m.DupOverhead() != 0 {
		t.Fatal("zero-offered ratios must be 0, not NaN")
	}
	if m.GoodputBps(0) != 0 || m.GoodputBps(-sim.Second) != 0 {
		t.Fatal("non-positive elapsed must yield 0 goodput")
	}
	m.offered = 4
	m.delivered = 3
	m.dupCopies = 2
	m.deliveredBytes = 1000
	if got := m.DeliveryRate(); got != 0.75 {
		t.Fatalf("DeliveryRate = %v", got)
	}
	if got := m.DupOverhead(); got != 0.5 {
		t.Fatalf("DupOverhead = %v", got)
	}
	if got := m.GoodputBps(sim.Second); got != 8000 {
		t.Fatalf("GoodputBps = %v, want 8000", got)
	}
}

// TestMetricsDuplicationAccounting runs the engine with duplication and
// checks the copy-level counters against the packet-level ones:
// CopiesSent = Offered + DupCopies, and every cancelled copy is also a
// DropCancelled in the per-reason table.
func TestMetricsDuplicationAccounting(t *testing.T) {
	s := sim.New()
	cfg := Config{
		NumPaths: 2,
		ChainFactory: func(i int) *nf.Chain {
			if i == 0 {
				return passChain(2 * sim.Microsecond)
			}
			return passChain(20 * sim.Microsecond)
		},
		Policy:   Redundant{K: 2},
		QueueCap: 512,
		Seed:     3,
	}
	dp := New(s, cfg, nil)
	inject(dp, 150, 4, 1*sim.Microsecond)
	m := dp.Metrics()
	if m.Delivered() != 150 {
		t.Fatalf("delivered %d/150", m.Delivered())
	}
	if m.DupCopies() != 150 {
		t.Fatalf("dup copies %d, want one extra per packet", m.DupCopies())
	}
	if got, want := m.CopiesSent(), m.Offered()+m.DupCopies(); got != want {
		t.Fatalf("copies sent %d != offered %d + dup %d", got, m.Offered(), m.DupCopies())
	}
	if m.DupCancelled() == 0 {
		t.Fatal("asymmetric lanes should cancel some queued losers")
	}
	// Copy conservation: with no congestion or policy drops, every copy that
	// did not deliver its packet lost the race — either cancelled while still
	// queued (DupCancelled, service cost saved) or after completing service
	// (DropCancelled). The two categories are disjoint and together account
	// for every losing copy.
	losers := m.CopiesSent() - m.Delivered()
	if got := m.DupCancelled() + m.Drops(packet.DropCancelled); got != losers {
		t.Fatalf("queued-cancels %d + served-losers %d != losing copies %d",
			m.DupCancelled(), m.Drops(packet.DropCancelled), losers)
	}
	if m.DupCancelled() > m.DupCopies() {
		t.Fatalf("cancelled %d copies but only %d duplicates exist",
			m.DupCancelled(), m.DupCopies())
	}
}

// TestMetricsStageTiming runs the engine with per-element stage timing on
// and checks that every chain stage reports a cost distribution consistent
// with the chain's construction, and that the hook is absent (no stage
// histograms) by default.
func TestMetricsStageTiming(t *testing.T) {
	run := func(stageTiming bool) *Metrics {
		s := sim.New()
		cfg := engineConfig(2, JSQ{})
		cfg.StageTiming = stageTiming
		cfg.ChainFactory = func(i int) *nf.Chain { return nf.PresetChain(3) }
		dp := New(s, cfg, nil)
		inject(dp, 200, 4, 1*sim.Microsecond)
		return dp.Metrics()
	}

	if got := run(false).StageService(); len(got) != 0 {
		t.Fatalf("stage timing off but %d stage hists recorded", len(got))
	}

	m := run(true)
	stages := m.StageService()
	if len(stages) != nf.PresetChain(3).Len() {
		t.Fatalf("stage count %d, want %d", len(stages), nf.PresetChain(3).Len())
	}
	var stageSum float64
	for i, st := range stages {
		if st.Name == "" {
			t.Fatalf("stage %d has no name", i)
		}
		if st.Latency.Count == 0 {
			t.Fatalf("stage %q recorded nothing", st.Name)
		}
		stageSum += st.Latency.Mean * float64(st.Latency.Count)
	}
	// Per-stage costs must sum to (roughly — histogram buckets are exact
	// for sums) the total service cost the lanes charged, before jitter and
	// interference scaling. Jitter is on in engineConfig, so compare
	// against the raw chain cost via a jitter-free reference instead:
	// every stage fired once per serviced packet, and each element's cost
	// is deterministic per packet, so the sum must be positive and the
	// stage count must equal the serviced-packet count per stage.
	if stageSum <= 0 {
		t.Fatal("stage costs sum to zero")
	}
	first := stages[0].Latency.Count
	for _, st := range stages {
		if st.Latency.Count != first {
			t.Fatalf("pass-all preset chain should process every packet at every stage: %+v", stages)
		}
	}
}

// TestMetricsDropAccountingVsTotalLost overloads a tiny queue with
// duplication on: the per-reason drop counters count copies (and so may
// exceed packet loss), while TotalLost counts distinct packets. Both views
// must stay consistent with conservation.
func TestMetricsDropAccountingVsTotalLost(t *testing.T) {
	s := sim.New()
	cfg := engineConfig(2, Redundant{K: 2})
	cfg.QueueCap = 4
	dp := New(s, cfg, nil)
	inject(dp, 400, 8, 100*sim.Nanosecond) // heavy overload: queues overflow
	m := dp.Metrics()
	if m.TotalLost() == 0 {
		t.Fatal("overload should lose packets")
	}
	if m.Delivered()+m.Consumed()+m.TotalLost() != m.Offered() {
		t.Fatalf("conservation: %d + %d + %d != %d",
			m.Delivered(), m.Consumed(), m.TotalLost(), m.Offered())
	}
	var copyDrops uint64
	for _, r := range []packet.DropReason{
		packet.DropPolicy, packet.DropQueueFull, packet.DropReorder,
		packet.DropCancelled, packet.DropPathFailed,
	} {
		copyDrops += m.Drops(r)
	}
	// Every lost packet had at least one dropped copy; with duplication the
	// copy count can only over-count, never under-count.
	if copyDrops < m.TotalLost() {
		t.Fatalf("per-reason drops %d under-count lost packets %d", copyDrops, m.TotalLost())
	}
	if m.Drops(packet.DropQueueFull) == 0 {
		t.Fatal("queue overflow produced no DropQueueFull")
	}
}
