package core

import (
	"bytes"
	"sort"
	"testing"

	"mpdp/internal/nf"
	"mpdp/internal/obs"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/vnet"
)

// obsRunConfig is a deterministic but eventful configuration: MPDP policy
// (flowlet steering + selective duplication), service jitter and bursty
// interference, so the stream exercises steer, dup, reorder and drop
// events.
func obsRunConfig(trace obs.Sink) Config {
	return Config{
		NumPaths:     4,
		ChainFactory: func(i int) *nf.Chain { return passChain(1 * sim.Microsecond) },
		Policy:       NewMPDP(DefaultMPDPConfig()),
		QueueCap:     64,
		JitterSigma:  0.3,
		Interference: vnet.InterferenceConfig{
			SlowFactor: 4, MeanOn: 50 * sim.Microsecond, MeanOff: 200 * sim.Microsecond,
		},
		Seed:  7,
		Trace: trace,
	}
}

// obsInject offers pkts packets at fixed spacing and runs the simulation
// to a bounded horizon (perpetual interference processes keep the event
// queue non-empty, so s.Run() would never return).
func obsInject(dp *DataPlane, pkts int, spacing sim.Duration) {
	s := dp.Sim()
	for i := 0; i < pkts; i++ {
		p := flowPkt(uint64(i % 8))
		s.At(sim.Time(i)*spacing, func() { dp.Ingress(p) })
	}
	horizon := sim.Time(pkts)*spacing + 5*sim.Millisecond
	s.RunUntil(horizon)
	dp.Flush()
	s.RunUntil(horizon + sim.Millisecond)
}

// recordedRun drives one run with a flight recorder attached and returns
// the encoded event stream plus the delivery order.
func recordedRun(t *testing.T, pkts int) ([]byte, []uint64) {
	t.Helper()
	s := sim.New()
	rec := obs.NewRecorder(1 << 18) // large enough that nothing is overwritten
	var order []uint64
	dp := New(s, obsRunConfig(rec), func(p *packet.Packet) { order = append(order, p.OrigID) })
	obsInject(dp, pkts, 300*sim.Nanosecond)
	if rec.Overwritten() != 0 {
		t.Fatalf("ring overwrote %d events; raise capacity", rec.Overwritten())
	}
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes(), order
}

// TestTraceStreamByteIdentical is the determinism acceptance check: two
// runs of the same seed must record byte-identical event streams.
func TestTraceStreamByteIdentical(t *testing.T) {
	a, _ := recordedRun(t, 600)
	b, _ := recordedRun(t, 600)
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed runs recorded different event streams")
	}
	evs, err := obs.ReadAll(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("recorded stream does not decode: %v", err)
	}
	if len(evs) < 600 {
		t.Fatalf("only %d events recorded for 600 packets", len(evs))
	}
}

// TestTraceStreamAccounting cross-checks the stream against the engine's
// own metrics: one ingress event per offered packet, one deliver event per
// delivered packet, one conclusive drop per lost packet.
func TestTraceStreamAccounting(t *testing.T) {
	s := sim.New()
	rec := obs.NewRecorder(1 << 18)
	dp := New(s, obsRunConfig(rec), func(p *packet.Packet) {})
	obsInject(dp, 800, 250*sim.Nanosecond)

	var ingress, deliver, conclusive, consume uint64
	for _, ev := range rec.Events() {
		switch {
		case ev.Kind == obs.KindIngress:
			ingress++
		case ev.Kind == obs.KindDeliver:
			deliver++
		case ev.Kind == obs.KindConsume:
			consume++
		case ev.Kind == obs.KindDrop && ev.B == 1:
			conclusive++
		}
	}
	m := dp.Metrics()
	if ingress != m.Offered() {
		t.Errorf("ingress events %d != offered %d", ingress, m.Offered())
	}
	if deliver != m.Delivered() {
		t.Errorf("deliver events %d != delivered %d", deliver, m.Delivered())
	}
	if conclusive+consume < m.TotalLost() {
		t.Errorf("conclusive drops %d + consumes %d < lost %d", conclusive, consume, m.TotalLost())
	}
}

// TestTraceDisabledChangesNothing: a run with the recorder attached and a
// run with recording off must produce identical results — same metrics,
// same delivery order.
func TestTraceDisabledChangesNothing(t *testing.T) {
	run := func(trace obs.Sink) (Metrics, []uint64) {
		s := sim.New()
		var order []uint64
		dp := New(s, obsRunConfig(trace), func(p *packet.Packet) { order = append(order, p.OrigID) })
		obsInject(dp, 600, 300*sim.Nanosecond)
		return *dp.Metrics(), order
	}
	mOn, orderOn := run(obs.NewRecorder(1 << 18))
	mOff, orderOff := run(nil)

	if mOn.Offered() != mOff.Offered() || mOn.Delivered() != mOff.Delivered() ||
		mOn.TotalLost() != mOff.TotalLost() || mOn.DupCopies() != mOff.DupCopies() {
		t.Fatalf("metrics differ with recorder on/off: on=%d/%d/%d off=%d/%d/%d",
			mOn.Offered(), mOn.Delivered(), mOn.TotalLost(),
			mOff.Offered(), mOff.Delivered(), mOff.TotalLost())
	}
	if len(orderOn) != len(orderOff) {
		t.Fatalf("delivery count differs: %d vs %d", len(orderOn), len(orderOff))
	}
	for i := range orderOn {
		if orderOn[i] != orderOff[i] {
			t.Fatalf("delivery order diverges at %d: %d vs %d", i, orderOn[i], orderOff[i])
		}
	}
}

// TestExemplarAttributionMatchesEngine: exemplars collected live must be
// exactly the K slowest delivered packets, with components summing to the
// engine's own recorded latency.
func TestExemplarAttributionMatchesEngine(t *testing.T) {
	const k = 16
	s := sim.New()
	coll := obs.NewCollector(k)
	lat := make(map[uint64]sim.Duration)
	dp := New(s, obsRunConfig(coll), func(p *packet.Packet) { lat[p.OrigID] = p.Latency() })
	obsInject(dp, 800, 250*sim.Nanosecond)

	exs := coll.Exemplars()
	if len(exs) != k {
		t.Fatalf("got %d exemplars, want %d", len(exs), k)
	}
	for i, ex := range exs {
		want, ok := lat[ex.OrigID]
		if !ok {
			t.Fatalf("exemplar %d (orig %d) was never delivered", i, ex.OrigID)
		}
		if ex.Latency != want {
			t.Errorf("exemplar %d latency %d != engine latency %d", i, ex.Latency, want)
		}
		if ex.Attr.Total() != ex.Latency {
			t.Errorf("exemplar %d components sum to %d, latency %d (attr %+v)",
				i, ex.Attr.Total(), ex.Latency, ex.Attr)
		}
	}
	// The kept set must be the true K slowest.
	all := make([]sim.Duration, 0, len(lat))
	for _, d := range lat {
		all = append(all, d)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] > all[j] })
	for i, ex := range exs {
		if ex.Latency != all[i] {
			t.Fatalf("rank %d: exemplar latency %d, true %d-th slowest is %d",
				i, ex.Latency, i, all[i])
		}
	}
}
