package core

import (
	"mpdp/internal/sim"
	"mpdp/internal/stats"
	"mpdp/internal/vnet"
)

// PathState couples a lane with the online telemetry the scheduler reads:
// an EWMA of per-packet service time (for wait estimation), an EWMA of
// whole-path latency, and a P² estimator of the path's p99 latency (the
// tail signal that drives selective duplication).
type PathState struct {
	Lane *vnet.Lane

	svcEWMA *stats.EWMA      // mean service time on this path
	latEWMA *stats.EWMA      // mean path latency (queue wait + service)
	latP99  *stats.RollingP2 // tail of recent path latency (windowed)

	// Lazy telemetry-window rotation, driven by this path's completions.
	window     sim.Duration // <=0: cumulative (never rotates)
	lastRotate sim.Time

	sent      uint64
	completed uint64
}

// newPathState wraps a lane with fresh telemetry. alpha is the EWMA
// smoothing factor; window is the p99 rotation period (0 takes the 5 ms
// default, negative disables).
func newPathState(lane *vnet.Lane, alpha float64, window sim.Duration) *PathState {
	if window == 0 {
		window = 5 * sim.Millisecond
	}
	return &PathState{
		Lane:    lane,
		svcEWMA: stats.NewEWMA(alpha),
		latEWMA: stats.NewEWMA(alpha),
		latP99:  stats.NewRollingP2(0.99),
		window:  window,
	}
}

// ID returns the lane identifier.
func (ps *PathState) ID() int { return ps.Lane.ID() }

// Depth returns the lane's instantaneous queue depth (incl. in-service).
func (ps *PathState) Depth() int { return ps.Lane.QueueDepth() }

// observe feeds a completed packet's lane-local numbers into telemetry and
// rotates the windowed tail estimate when its period has elapsed.
func (ps *PathState) observe(now sim.Time, svc, lat sim.Duration) {
	ps.completed++
	ps.svcEWMA.Add(float64(svc))
	ps.latEWMA.Add(float64(lat))
	if ps.window > 0 && now-ps.lastRotate >= ps.window {
		ps.latP99.Rotate()
		ps.lastRotate = now
	}
	ps.latP99.Add(float64(lat))
}

// MeanService returns the estimated per-packet service time, falling back
// to a conservative default before any observation.
func (ps *PathState) MeanService() sim.Duration {
	if !ps.svcEWMA.Set() {
		return 1 * sim.Microsecond
	}
	return sim.Duration(ps.svcEWMA.Value())
}

// MeanLatency returns the smoothed path latency estimate.
func (ps *PathState) MeanLatency() sim.Duration {
	return sim.Duration(ps.latEWMA.Value())
}

// P99Latency returns the streaming p99 latency estimate for this path.
func (ps *PathState) P99Latency() sim.Duration {
	return sim.Duration(ps.latP99.Value())
}

// EstWait estimates the queueing delay a new arrival would experience on
// this path right now.
func (ps *PathState) EstWait() sim.Duration {
	return ps.Lane.EstWait(ps.MeanService())
}

// Score is the steering metric: estimated wait plus one expected service.
// Lower is better.
func (ps *PathState) Score() sim.Duration {
	return ps.EstWait() + ps.MeanService()
}

// Sent returns packets the scheduler assigned to this path.
func (ps *PathState) Sent() uint64 { return ps.sent }

// Completed returns packets that finished service on this path.
func (ps *PathState) Completed() uint64 { return ps.completed }
