package core

import (
	"mpdp/internal/sim"
	"mpdp/internal/stats"
	"mpdp/internal/vnet"
)

// TelemetryTamper intercepts a path's telemetry feed — the fault model's
// "lying sensor". It may rewrite the observed service time and latency, or
// return ok=false to suppress the observation entirely (stale telemetry).
type TelemetryTamper func(now sim.Time, svc, lat sim.Duration) (tsvc, tlat sim.Duration, ok bool)

// PathState couples a lane with the online telemetry the scheduler reads:
// an EWMA of per-packet service time (for wait estimation), an EWMA of
// whole-path latency, and a P² estimator of the path's p99 latency (the
// tail signal that drives selective duplication). It also carries the
// path's health state (up/degraded/quarantined/probing), which every
// policy consults before steering traffic at it.
type PathState struct {
	Lane *vnet.Lane

	svcEWMA *stats.EWMA         // mean service time on this path
	latEWMA *stats.EWMA         // mean path latency (queue wait + service)
	latP99  *stats.RollingP2    // tail of recent path latency (windowed)
	fluct   *FluctuationMonitor // latency level + jitter for deadline risk

	// Lazy telemetry-window rotation, driven by this path's completions.
	window     sim.Duration // <=0: cumulative (never rotates)
	lastRotate sim.Time

	sent      uint64
	completed uint64

	health pathHealth
	tamper TelemetryTamper
}

// newPathState wraps a lane with fresh telemetry. alpha is the EWMA
// smoothing factor; window is the p99 rotation period (0 takes the 5 ms
// default, negative disables).
func newPathState(lane *vnet.Lane, alpha float64, window sim.Duration) *PathState {
	if window == 0 {
		window = 5 * sim.Millisecond
	}
	return &PathState{
		Lane:    lane,
		svcEWMA: stats.NewEWMA(alpha),
		latEWMA: stats.NewEWMA(alpha),
		latP99:  stats.NewRollingP2(0.99),
		fluct:   NewFluctuationMonitor(alpha),
		window:  window,
		health:  newPathHealth(),
	}
}

// ID returns the lane identifier.
func (ps *PathState) ID() int { return ps.Lane.ID() }

// Depth returns the lane's instantaneous queue depth (incl. in-service).
func (ps *PathState) Depth() int { return ps.Lane.QueueDepth() }

// observe feeds a completed packet's lane-local numbers into telemetry and
// rotates the windowed tail estimate when its period has elapsed. An
// installed tamper (fault injection) may rewrite or suppress the sample —
// the completion itself is still counted.
func (ps *PathState) observe(now sim.Time, svc, lat sim.Duration) {
	ps.completed++
	if ps.tamper != nil {
		var ok bool
		svc, lat, ok = ps.tamper(now, svc, lat)
		if !ok {
			return
		}
	}
	ps.svcEWMA.Add(float64(svc))
	ps.latEWMA.Add(float64(lat))
	ps.fluct.Observe(lat)
	if ps.window > 0 && now-ps.lastRotate >= ps.window {
		ps.latP99.Rotate()
		ps.lastRotate = now
	}
	ps.latP99.Add(float64(lat))
}

// SetTelemetryTamper installs (or, with nil, removes) a telemetry
// interceptor. Fault injection uses this to model lying or stale path
// telemetry without touching the packets themselves.
func (ps *PathState) SetTelemetryTamper(t TelemetryTamper) { ps.tamper = t }

// Health returns the path's current health state.
func (ps *PathState) Health() HealthState { return ps.health.state }

// Eligible reports whether the path may receive ordinary new traffic: Up or
// Degraded. Quarantined paths get nothing; Probing paths get only the
// engine's canary trickle.
func (ps *PathState) Eligible() bool {
	return ps.health.state == HealthUp || ps.health.state == HealthDegraded
}

// InFlight returns copies sent to this path and not yet completed, dropped,
// or drained.
func (ps *PathState) InFlight() int { return ps.health.inflight }

// HealthSince returns when the path entered its current health state.
func (ps *PathState) HealthSince() sim.Time { return ps.health.since }

// MeanService returns the estimated per-packet service time, falling back
// to a conservative default before any observation.
func (ps *PathState) MeanService() sim.Duration {
	if !ps.svcEWMA.Set() {
		return 1 * sim.Microsecond
	}
	return sim.Duration(ps.svcEWMA.Value())
}

// MeanLatency returns the smoothed path latency estimate.
func (ps *PathState) MeanLatency() sim.Duration {
	return sim.Duration(ps.latEWMA.Value())
}

// Fluct returns the path's fluctuation monitor (latency level + jitter),
// the dispersion signal deadline-aware scheduling judges risk against.
// The same tamper hook that rewrites EWMA/p99 telemetry feeds it, so lying
// telemetry distorts deadline estimates exactly as it distorts scores.
func (ps *PathState) Fluct() *FluctuationMonitor { return ps.fluct }

// P99Latency returns the streaming p99 latency estimate for this path.
func (ps *PathState) P99Latency() sim.Duration {
	return sim.Duration(ps.latP99.Value())
}

// EstWait estimates the queueing delay a new arrival would experience on
// this path right now.
func (ps *PathState) EstWait() sim.Duration {
	return ps.Lane.EstWait(ps.MeanService())
}

// Score is the steering metric: estimated wait plus one expected service.
// Lower is better.
func (ps *PathState) Score() sim.Duration {
	return ps.EstWait() + ps.MeanService()
}

// Sent returns packets the scheduler assigned to this path.
func (ps *PathState) Sent() uint64 { return ps.sent }

// Completed returns packets that finished service on this path.
func (ps *PathState) Completed() uint64 { return ps.completed }
