package core

import (
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/xrand"
)

// Policy decides, per ingress packet, which path(s) it is sent down.
// Returning more than one index duplicates the packet (the engine clones it
// and the reorder buffer keeps whichever copy wins).
//
// Policies are pure schedulers: the engine owns telemetry updates and
// duplication mechanics. Every policy (except SinglePath, which has nowhere
// else to go) consults path health: Quarantined and Probing paths receive no
// new picks. When NO path is eligible — a mass failure — policies fall back
// to ignoring health, so traffic keeps flowing (and keeps the watchdog fed)
// rather than panicking.
type Policy interface {
	// Name identifies the policy in tables and CLI flags.
	Name() string
	// Pick returns 1..len(paths) distinct path indices for packet p.
	Pick(now sim.Time, p *packet.Packet, paths []*PathState) []int
}

// --- Baselines -------------------------------------------------------------

// SinglePath always uses path 0: the conventional single-queue, single-core
// virtualized data plane (the paper's primary "before" case).
type SinglePath struct{}

// Name implements Policy.
func (SinglePath) Name() string { return "single" }

// Pick implements Policy.
func (SinglePath) Pick(now sim.Time, p *packet.Packet, paths []*PathState) []int {
	return []int{0}
}

// RSSHash statically hashes each flow to a path with the NIC's Toeplitz
// function: the standard multi-queue baseline. Never reorders, never
// adapts — elephant collisions and slow cores hurt whoever hashed there.
type RSSHash struct{}

// Name implements Policy.
func (RSSHash) Name() string { return "rss" }

// Pick implements Policy.
func (RSSHash) Pick(now sim.Time, p *packet.Packet, paths []*PathState) []int {
	i := packet.RSSQueue(packet.DefaultRSSKey, p.Flow, len(paths))
	if paths[i].Eligible() {
		return []int{i}
	}
	// The hashed queue is down: linear-probe to the next eligible one,
	// modelling an indirection-table repair. Static — flows from the dead
	// queue pile onto its neighbor.
	for off := 1; off < len(paths); off++ {
		if j := (i + off) % len(paths); paths[j].Eligible() {
			return []int{j}
		}
	}
	return []int{i}
}

// RoundRobin sprays packets across paths per packet: perfect balance,
// maximal reordering. The classic "why not just spray" strawman.
type RoundRobin struct{ next int }

// Name implements Policy.
func (*RoundRobin) Name() string { return "rr" }

// Pick implements Policy.
func (rr *RoundRobin) Pick(now sim.Time, p *packet.Packet, paths []*PathState) []int {
	n := len(paths)
	for try := 0; try < n; try++ {
		i := rr.next % n
		rr.next++
		if paths[i].Eligible() {
			return []int{i}
		}
	}
	i := rr.next % n
	rr.next++
	return []int{i}
}

// RandomPick sends each packet to a uniformly random eligible path.
type RandomPick struct {
	Rng *xrand.Rand

	elig []int // scratch
}

// Name implements Policy.
func (*RandomPick) Name() string { return "random" }

// Pick implements Policy.
func (rp *RandomPick) Pick(now sim.Time, p *packet.Packet, paths []*PathState) []int {
	cand := eligibleInto(&rp.elig, paths)
	if cand == nil {
		return []int{rp.Rng.Intn(len(paths))}
	}
	return []int{cand[rp.Rng.Intn(len(cand))]}
}

// JSQ joins the shortest queue (by instantaneous depth) per packet.
type JSQ struct{}

// Name implements Policy.
func (JSQ) Name() string { return "jsq" }

// Pick implements Policy.
func (JSQ) Pick(now sim.Time, p *packet.Packet, paths []*PathState) []int {
	best, bestDepth := -1, 0
	for i, ps := range paths {
		if !ps.Eligible() {
			continue
		}
		if d := ps.Depth(); best == -1 || d < bestDepth {
			best, bestDepth = i, d
		}
	}
	if best == -1 {
		best, bestDepth = 0, paths[0].Depth()
		for i := 1; i < len(paths); i++ {
			if d := paths[i].Depth(); d < bestDepth {
				best, bestDepth = i, d
			}
		}
	}
	return []int{best}
}

// PowerOfTwo samples two random eligible paths and picks the shallower:
// near-JSQ balance at O(1) state, the standard randomized load-balancing
// result.
type PowerOfTwo struct {
	Rng *xrand.Rand

	elig []int // scratch
}

// Name implements Policy.
func (*PowerOfTwo) Name() string { return "po2" }

// Pick implements Policy.
func (p2 *PowerOfTwo) Pick(now sim.Time, p *packet.Packet, paths []*PathState) []int {
	cand := eligibleInto(&p2.elig, paths)
	if cand == nil {
		p2.elig = p2.elig[:0]
		for i := range paths {
			p2.elig = append(p2.elig, i)
		}
		cand = p2.elig
	}
	if len(cand) == 1 {
		return []int{cand[0]}
	}
	ai := p2.Rng.Intn(len(cand))
	bi := p2.Rng.Intn(len(cand) - 1)
	if bi >= ai {
		bi++
	}
	a, b := cand[ai], cand[bi]
	if paths[b].Depth() < paths[a].Depth() {
		return []int{b}
	}
	return []int{a}
}

// eligibleInto fills *buf with the indices of eligible paths, returning nil
// (not an empty slice) when no path is eligible so callers can fall back.
func eligibleInto(buf *[]int, paths []*PathState) []int {
	*buf = (*buf)[:0]
	for i, ps := range paths {
		if ps.Eligible() {
			*buf = append(*buf, i)
		}
	}
	if len(*buf) == 0 {
		return nil
	}
	return *buf
}

// --- The MPDP policies ------------------------------------------------------

// Flowlet steers at flowlet granularity: packets of a flow arriving within
// Timeout of the previous one stay on the flow's current path (no
// reordering inside a burst); after an idle gap the flow is re-steered to
// the path with the lowest Score. This is the adaptive half of the
// multipath data plane.
type Flowlet struct {
	// Timeout is the idle gap that ends a flowlet. Must exceed the
	// typical path-latency skew to keep reordering negligible; 500 µs
	// is the suite default.
	Timeout sim.Duration

	table map[uint64]*flowletEntry
	out   []int // scratch for Pick's result; reused across calls
}

type flowletEntry struct {
	path     int
	lastSeen sim.Time
}

// NewFlowlet returns a flowlet-switching policy with the given idle gap.
func NewFlowlet(timeout sim.Duration) *Flowlet {
	if timeout < 0 {
		panic("core: NewFlowlet with negative timeout")
	}
	return &Flowlet{Timeout: timeout, table: make(map[uint64]*flowletEntry)}
}

// Steer overrides the flow's current path assignment (used by MPDP's
// emergency reroute when the assigned path degrades mid-flowlet).
func (f *Flowlet) Steer(flowID uint64, path int, now sim.Time) {
	e, ok := f.table[flowID]
	if !ok {
		//lint:allow hotalloc one entry per flow at first sight, amortized over the flow's packets
		e = &flowletEntry{}
		f.table[flowID] = e
	}
	e.path, e.lastSeen = path, now
}

// Name implements Policy.
func (f *Flowlet) Name() string { return "flowlet" }

// Pick implements Policy. The returned slice is the policy's reusable
// scratch buffer: it is valid until the next Pick/Steer call, matching the
// engine's consume-immediately usage. Steady state is allocation-free; the
// per-flow table entry is the only (amortized) allocation.
//
//mpdp:hotpath bench=BenchmarkFlowletPick
func (f *Flowlet) Pick(now sim.Time, p *packet.Packet, paths []*PathState) []int {
	e, ok := f.table[p.FlowID]
	if ok && now-e.lastSeen <= f.Timeout {
		e.lastSeen = now
		// A sticky path that went quarantined/probing forces an immediate
		// re-steer — the whole point of health integration.
		if e.path < len(paths) && paths[e.path].Eligible() {
			f.out = append(f.out[:0], e.path)
			return f.out
		}
	}
	best := bestScore(paths)
	if !ok {
		//lint:allow hotalloc one entry per flow at first sight, amortized over the flow's packets
		e = &flowletEntry{}
		f.table[p.FlowID] = e
	}
	e.path, e.lastSeen = best, now
	f.out = append(f.out[:0], best)
	return f.out
}

// bestScore returns the index of the lowest-Score eligible path (ties to the
// lowest index, keeping runs deterministic); when no path is eligible, the
// lowest-Score path regardless of health.
func bestScore(paths []*PathState) int {
	best := -1
	var bs sim.Duration
	for i, ps := range paths {
		if !ps.Eligible() {
			continue
		}
		if s := ps.Score(); best == -1 || s < bs {
			best, bs = i, s
		}
	}
	if best == -1 {
		best, bs = 0, paths[0].Score()
		for i := 1; i < len(paths); i++ {
			if s := paths[i].Score(); s < bs {
				best, bs = i, s
			}
		}
	}
	return best
}

// secondBest returns the index of the second-lowest-Score eligible path
// (!= first), or first itself when there is no other candidate.
func secondBest(paths []*PathState, first int) int {
	best := -1
	var bestScore sim.Duration
	for i, ps := range paths {
		if i == first || !ps.Eligible() {
			continue
		}
		if s := ps.Score(); best == -1 || s < bestScore {
			best, bestScore = i, s
		}
	}
	if best == -1 {
		return first
	}
	return best
}

// Redundant duplicates every packet to the K best paths; the first copy to
// finish wins and the engine cancels queued siblings. Maximal tail
// protection, maximal overhead — the upper bound of the duplication axis.
type Redundant struct {
	// K is the number of copies (>= 2).
	K int
}

// Name implements Policy.
func (r Redundant) Name() string { return "dup-all" }

// Pick implements Policy.
func (r Redundant) Pick(now sim.Time, p *packet.Packet, paths []*PathState) []int {
	k := r.K
	if k < 2 {
		k = 2
	}
	if k > len(paths) {
		k = len(paths)
	}
	// With health on, only eligible paths get copies: duplication degrades
	// gracefully to fewer copies as paths fail.
	haveElig := false
	for _, ps := range paths {
		if ps.Eligible() {
			haveElig = true
			break
		}
	}
	first := bestScore(paths)
	out := []int{first}
	used := map[int]bool{first: true}
	for len(out) < k {
		next, nextScore := -1, sim.Duration(0)
		for i := range paths {
			if used[i] || (haveElig && !paths[i].Eligible()) {
				continue
			}
			if s := paths[i].Score(); next == -1 || s < nextScore {
				next, nextScore = i, s
			}
		}
		if next == -1 {
			break
		}
		used[next] = true
		out = append(out, next)
	}
	return out
}

// MPDPConfig tunes the full multipath policy.
type MPDPConfig struct {
	// FlowletTimeout is the idle gap ending a flowlet (default 500 µs).
	FlowletTimeout sim.Duration
	// DupThreshold triggers duplication when the chosen path is
	// *unpredictable*: its observed p99 latency exceeds DupThreshold × its
	// mean latency (default 8). A path with a tight latency distribution
	// never duplicates no matter how loaded — queue depth is handled by
	// steering and rerouting; duplication guards against the slowdowns
	// telemetry cannot see coming (interference striking mid-service).
	DupThreshold float64
	// DupBudget caps duplicated packets as a fraction of ingress
	// (default 0.25): bounds overhead so duplication cannot collapse
	// throughput at high load.
	DupBudget float64
	// ClassAware restricts duplication to latency-sensitive packets
	// (classifier-stamped TOS), when true.
	ClassAware bool
	// RerouteThreshold triggers an emergency mid-flowlet reroute when the
	// assigned path's estimated wait exceeds RerouteThreshold × its mean
	// service time AND another path is at least 2× better. This accepts a
	// small reordering cost to escape a path that degraded under the
	// flow's feet (default 4; 0 disables).
	RerouteThreshold float64
}

// DefaultMPDPConfig returns the suite defaults.
func DefaultMPDPConfig() MPDPConfig {
	return MPDPConfig{
		FlowletTimeout:   500 * sim.Microsecond,
		DupThreshold:     8,
		DupBudget:        0.25,
		RerouteThreshold: 4,
	}
}

// MPDP is the paper's full policy: flowlet-adaptive steering, emergency
// mid-flowlet rerouting away from degraded paths, and tail-aware selective
// duplication under a budget.
type MPDP struct {
	cfg     MPDPConfig
	flowlet *Flowlet
	out     []int // scratch for Pick's result; reused across calls

	picked     uint64
	duplicated uint64
	rerouted   uint64
}

// NewMPDP builds the full policy.
func NewMPDP(cfg MPDPConfig) *MPDP {
	if cfg.FlowletTimeout <= 0 {
		cfg.FlowletTimeout = 500 * sim.Microsecond
	}
	if cfg.DupThreshold <= 0 {
		cfg.DupThreshold = 8
	}
	if cfg.DupBudget < 0 {
		cfg.DupBudget = 0
	}
	return &MPDP{cfg: cfg, flowlet: NewFlowlet(cfg.FlowletTimeout)}
}

// Name implements Policy.
func (m *MPDP) Name() string { return "mpdp" }

// Pick implements Policy. Like Flowlet.Pick, the returned slice is a
// reusable scratch buffer valid until the next call; the steady state
// allocates nothing (CI-gated by BenchmarkMPDPPick).
//
//mpdp:hotpath bench=BenchmarkMPDPPick
func (m *MPDP) Pick(now sim.Time, p *packet.Packet, paths []*PathState) []int {
	m.picked++
	choice := m.flowlet.Pick(now, p, paths)
	if len(paths) == 1 {
		return choice
	}
	first := choice[0]

	// Emergency reroute: the flowlet's path degraded under it and a much
	// better path exists. Move the whole flow (the reorder stage absorbs
	// the one-time skew).
	if m.cfg.RerouteThreshold > 0 {
		cur := paths[first]
		wait := cur.EstWait()
		if wait > sim.Duration(m.cfg.RerouteThreshold*float64(cur.MeanService())) {
			alt := bestScore(paths)
			if alt != first && 2*paths[alt].Score() < cur.Score() {
				m.rerouted++
				m.flowlet.Steer(p.FlowID, alt, now)
				first = alt
			}
		}
	}

	if !m.shouldDuplicate(p, paths[first]) {
		m.out = append(m.out[:0], first)
		return m.out
	}
	second := secondBest(paths, first)
	// Duplicate only onto spare capacity: a copy sent to a busy path adds
	// pressure exactly when the system is congested (the dup-all
	// pathology, quantified in E7/E12). A nearly idle twin path serves
	// the copy for free.
	if second == first || paths[second].Depth() > 1 {
		m.out = append(m.out[:0], first)
		return m.out
	}
	m.duplicated++
	m.out = append(m.out[:0], first, second)
	return m.out
}

// Rerouted reports how many packets triggered an emergency reroute.
func (m *MPDP) Rerouted() uint64 { return m.rerouted }

// shouldDuplicate applies the unpredictability trigger, class filter, and
// budget: duplicate when the chosen path has recently exhibited straggler
// behaviour (observed p99 latency ≫ nominal service time) — visible queue
// depth is already handled by steering/rerouting, so this fires exactly for
// the slowdowns the scheduler cannot route around preemptively.
func (m *MPDP) shouldDuplicate(p *packet.Packet, chosen *PathState) bool {
	if m.cfg.DupBudget == 0 {
		return false
	}
	// Budget check first: duplicated so far must stay under budget.
	if float64(m.duplicated) >= m.cfg.DupBudget*float64(m.picked) {
		return false
	}
	if m.cfg.ClassAware && latencyClassOf(p) != classLatencySensitive {
		return false
	}
	base := chosen.MeanLatency()
	if svc := chosen.MeanService(); base < svc {
		base = svc
	}
	trigger := sim.Duration(m.cfg.DupThreshold * float64(base))
	return chosen.P99Latency() > trigger
}

// DupFraction reports the fraction of packets the policy duplicated.
func (m *MPDP) DupFraction() float64 {
	if m.picked == 0 {
		return 0
	}
	return float64(m.duplicated) / float64(m.picked)
}

// Latency class plumbing: read the classifier's DSCP stamp without
// importing nf (core must not depend on specific elements).
const classLatencySensitive = 1 // mirrors nf.ClassLatencySensitive

func latencyClassOf(p *packet.Packet) int {
	pr, err := packet.ParseFrame(p.Data)
	if err != nil || !pr.IsIP {
		return 0
	}
	return int(pr.IP.TOS >> 2)
}
