package core

import (
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/stats"
)

// This file is the deadline-aware half of the duplication axis (DA-MPS /
// CEDA-MPS style): instead of duplicating on a path's *unpredictability*
// (MPDP's trigger), DeadlineAware duplicates only when a specific packet's
// deadline is at risk on its best path — and pays for every duplicate out
// of a global byte token bucket, so the total cost of tail protection is
// bounded and observable no matter how pessimistic the risk estimates get.

// maxFiniteDur bounds every derived duration so adversarial telemetry
// (lying tampers, fuzzed feeds) can inflate an estimate but never overflow
// int64 arithmetic or turn it into NaN downstream.
const maxFiniteDur = sim.Duration(1) << 60

// clampDur maps an arbitrary float64 onto a finite non-negative duration.
func clampDur(v float64) sim.Duration {
	if v != v || v < 0 { // NaN or negative
		return 0
	}
	if v > float64(maxFiniteDur) {
		return maxFiniteDur
	}
	return sim.Duration(v)
}

// FluctuationMonitor tracks one path's latency level and dispersion: an
// EWMA of observed latency plus an EWMA of its absolute deviation (jitter).
// The pair yields a cheap upper estimate of what the path will do to the
// *next* packet — mean + k·deviation — which is what deadline risk is
// judged against. A path with a tight distribution keeps its estimate near
// the mean; a fluctuating path inflates it long before the mean moves.
type FluctuationMonitor struct {
	mean *stats.EWMA
	dev  *stats.EWMA
}

// NewFluctuationMonitor returns a monitor with smoothing factor alpha
// (values outside (0,1] take the telemetry default 0.2).
func NewFluctuationMonitor(alpha float64) *FluctuationMonitor {
	if !(alpha > 0 && alpha <= 1) { // rejects NaN too
		alpha = 0.2
	}
	return &FluctuationMonitor{mean: stats.NewEWMA(alpha), dev: stats.NewEWMA(alpha)}
}

// Observe feeds one latency sample. Negative samples (possible only under
// lying telemetry) clamp to zero: the monitor absorbs adversarial feeds
// without poisoning its state.
func (f *FluctuationMonitor) Observe(lat sim.Duration) {
	if lat < 0 {
		lat = 0
	}
	if lat > maxFiniteDur {
		lat = maxFiniteDur
	}
	if !f.mean.Set() {
		f.mean.Add(float64(lat))
		return // first sample anchors the mean; no deviation yet
	}
	d := float64(lat) - f.mean.Value()
	if d < 0 {
		d = -d
	}
	f.mean.Add(float64(lat))
	f.dev.Add(d)
}

// Mean returns the smoothed latency level.
func (f *FluctuationMonitor) Mean() sim.Duration { return clampDur(f.mean.Value()) }

// Deviation returns the smoothed absolute deviation (jitter).
func (f *FluctuationMonitor) Deviation() sim.Duration { return clampDur(f.dev.Value()) }

// Estimate returns the monitor's pessimistic next-packet latency bound:
// mean + margin·deviation, clamped finite.
func (f *FluctuationMonitor) Estimate(margin float64) sim.Duration {
	return clampDur(f.mean.Value() + margin*f.dev.Value())
}

// DupBudget is a global duplication-bytes token bucket in virtual time:
// duplicating a packet spends its size in bytes; tokens refill at Rate
// bytes per virtual second up to Burst. Shared across all paths, so the
// total duplication cost of a run is bounded by Burst + Rate·elapsed —
// a hard, observable cap rather than a per-packet probability.
//
// The bucket is engine-owned state like the policies themselves: callers
// serialize access (the simulator is sequential; the wire sender holds its
// own lock). Tokens never go negative: a spend either fits or is denied.
type DupBudget struct {
	rate  float64 // bytes per virtual second
	burst float64 // bucket capacity in bytes

	tokens  float64
	last    sim.Time
	started bool

	spent  uint64 // bytes granted to duplicates
	grants uint64 // successful TrySpend calls
	denied uint64 // refused TrySpend calls
}

// NewDupBudget returns a bucket refilling at bytesPerSec up to burst.
// Non-finite or negative inputs clamp to zero; a zero burst with a
// positive rate defaults to 10 ms worth of rate (a bucket that can never
// hold a token would silently disable duplication). A bucket with zero
// rate AND zero burst denies everything — the budget=0 degradation case.
func NewDupBudget(bytesPerSec, burst float64) *DupBudget {
	if !(bytesPerSec > 0) {
		bytesPerSec = 0
	}
	if !(burst > 0) {
		burst = 0
	}
	const maxBytes = 1 << 50
	if bytesPerSec > maxBytes {
		bytesPerSec = maxBytes
	}
	if burst > maxBytes {
		burst = maxBytes
	}
	if burst == 0 && bytesPerSec > 0 {
		burst = bytesPerSec / 100
		if burst < 1 {
			burst = 1
		}
	}
	return &DupBudget{rate: bytesPerSec, burst: burst}
}

// refill advances the bucket to now. Time moving backwards (possible only
// in adversarial feeds) refills nothing and leaves the clock anchored.
func (b *DupBudget) refill(now sim.Time) {
	if !b.started {
		b.started = true
		b.last = now
		b.tokens = b.burst // start full: the first at-risk packet is covered
		return
	}
	if now > b.last {
		b.tokens += b.rate * (now - b.last).Seconds()
		b.last = now
	}
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// TrySpend withdraws size bytes if the bucket holds them, reporting
// whether the duplication may proceed. Non-positive sizes cost nothing but
// still require a live budget (zero-capacity buckets deny everything).
func (b *DupBudget) TrySpend(now sim.Time, size int) bool {
	if b.rate == 0 && b.burst == 0 {
		b.denied++
		return false
	}
	b.refill(now)
	if size < 0 {
		size = 0
	}
	if float64(size) > b.tokens {
		b.denied++
		return false
	}
	b.tokens -= float64(size)
	b.spent += uint64(size)
	b.grants++
	return true
}

// Tokens returns the bytes currently available.
func (b *DupBudget) Tokens() float64 { return b.tokens }

// Rate returns the refill rate in bytes per virtual second.
func (b *DupBudget) Rate() float64 { return b.rate }

// Burst returns the bucket capacity in bytes.
func (b *DupBudget) Burst() float64 { return b.burst }

// SpentBytes returns total bytes granted to duplicates.
func (b *DupBudget) SpentBytes() uint64 { return b.spent }

// Grants returns successful spends.
func (b *DupBudget) Grants() uint64 { return b.grants }

// Denied returns refused spends.
func (b *DupBudget) Denied() uint64 { return b.denied }

// Allowance returns the hard upper bound on what the bucket can have
// granted after elapsed virtual time: Burst + Rate·elapsed.
func (b *DupBudget) Allowance(elapsed sim.Duration) float64 {
	if elapsed < 0 {
		elapsed = 0
	}
	return b.burst + b.rate*elapsed.Seconds()
}

// DeadlineAwareConfig tunes the DeadlineAware policy.
type DeadlineAwareConfig struct {
	// Deadline is the per-packet latency budget assumed for packets that
	// carry no deadline of their own (default 2 ms). Packets stamped with
	// an absolute packet.Deadline are judged against that instead.
	Deadline sim.Duration
	// Margin is the jitter multiplier of the risk estimate: a path is
	// "safe" when EstWait + MeanService + Margin·jitter fits the remaining
	// budget (default 3). Clamped to [0, 64].
	Margin float64
	// Budget is the global duplication-bytes token bucket. nil (or a
	// zero-capacity bucket) disables duplication entirely: the policy is
	// then exactly its best-single-path choice.
	Budget *DupBudget
}

// DefaultDeadlineAwareConfig returns the suite defaults (1 MiB/s of
// duplication with a 64 KiB burst).
func DefaultDeadlineAwareConfig() DeadlineAwareConfig {
	return DeadlineAwareConfig{
		Deadline: 2 * sim.Millisecond,
		Margin:   3,
		Budget:   NewDupBudget(1<<20, 64<<10),
	}
}

// DeadlineAware schedules per-packet: the best single path when the
// packet's deadline looks safe there, best-plus-second-best when the
// fluctuation-adjusted estimate says the deadline is at risk — and only
// when the global DupBudget covers the extra copy's bytes. Packets whose
// deadline is already blown get a single path too: a duplicate cannot
// un-miss a deadline, so spending budget on it would be pure waste.
type DeadlineAware struct {
	cfg DeadlineAwareConfig

	picked     uint64
	safe       uint64 // deadline judged safe on the best path
	atRisk     uint64 // deadline judged at risk
	late       uint64 // deadline already blown at pick time
	duplicated uint64 // duplications performed
	denied     uint64 // duplications suppressed (budget, capacity, topology)
}

// NewDeadlineAware builds the policy, clamping degenerate tunables.
func NewDeadlineAware(cfg DeadlineAwareConfig) *DeadlineAware {
	if cfg.Deadline < 0 {
		cfg.Deadline = 0
	}
	if !(cfg.Margin >= 0) { // rejects NaN
		cfg.Margin = 3
	}
	if cfg.Margin > 64 {
		cfg.Margin = 64
	}
	return &DeadlineAware{cfg: cfg}
}

// Name implements Policy.
func (d *DeadlineAware) Name() string { return "deadline" }

// Pick implements Policy.
func (d *DeadlineAware) Pick(now sim.Time, p *packet.Packet, paths []*PathState) []int {
	d.picked++
	first := bestScore(paths)
	if len(paths) == 1 {
		return []int{first}
	}

	deadline := p.Deadline
	if deadline == 0 {
		if d.cfg.Deadline <= 0 {
			d.safe++ // no deadline to protect: pure best-single-path
			return []int{first}
		}
		deadline = now + d.cfg.Deadline
	}
	remaining := deadline - now
	if remaining <= 0 {
		d.late++
		return []int{first}
	}

	if d.estimate(paths[first]) <= remaining {
		d.safe++
		return []int{first}
	}
	d.atRisk++

	second := secondBest(paths, first)
	if second == first {
		d.denied++
		return []int{first}
	}
	// The copy is insurance, not a miracle: buy it only when the second
	// path could plausibly beat the deadline on its *optimistic* estimate
	// (queue wait plus one service, no jitter margin). A copy that cannot
	// arrive in time — or one queued behind a deep backlog — is budget
	// spent on nothing, and skipping it also keeps copies off contested
	// paths (the dup-all pathology).
	if paths[second].Score() > remaining {
		d.denied++
		return []int{first}
	}
	if d.cfg.Budget == nil || !d.cfg.Budget.TrySpend(now, p.Size()) {
		d.denied++
		return []int{first}
	}
	d.duplicated++
	return []int{first, second}
}

// estimate is the pessimistic completion bound for a new arrival on ps:
// current queue estimate plus one service, inflated by the fluctuation
// monitor's jitter term. Clamped finite under any telemetry.
func (d *DeadlineAware) estimate(ps *PathState) sim.Duration {
	base := float64(ps.EstWait()) + float64(ps.MeanService())
	return clampDur(base + d.cfg.Margin*float64(ps.Fluct().Deviation()))
}

// Budget returns the policy's token bucket (nil when duplication is off).
func (d *DeadlineAware) Budget() *DupBudget { return d.cfg.Budget }

// Stats returns the policy's decision counters.
func (d *DeadlineAware) Stats() DeadlineAwareStats {
	return DeadlineAwareStats{
		Picked: d.picked, Safe: d.safe, AtRisk: d.atRisk, Late: d.late,
		Duplicated: d.duplicated, Denied: d.denied,
	}
}

// DeadlineAwareStats is a snapshot of the policy's decisions.
type DeadlineAwareStats struct {
	Picked     uint64 `json:"picked"`
	Safe       uint64 `json:"safe"`
	AtRisk     uint64 `json:"at_risk"`
	Late       uint64 `json:"late"`
	Duplicated uint64 `json:"duplicated"`
	Denied     uint64 `json:"denied"`
}
