package core

import (
	"bytes"
	"math"
	"testing"

	"mpdp/internal/nf"
	"mpdp/internal/obs"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/xrand"
)

// ---- FluctuationMonitor ----------------------------------------------------

func TestFluctuationMonitorFirstSampleAnchorsMean(t *testing.T) {
	f := NewFluctuationMonitor(0.2)
	f.Observe(1000)
	if f.Mean() != 1000 {
		t.Fatalf("mean after first sample %v, want 1000", f.Mean())
	}
	if f.Deviation() != 0 {
		t.Fatalf("deviation after first sample %v, want 0", f.Deviation())
	}
}

func TestFluctuationMonitorTracksDispersion(t *testing.T) {
	calm := NewFluctuationMonitor(0.2)
	jumpy := NewFluctuationMonitor(0.2)
	for i := 0; i < 100; i++ {
		calm.Observe(1000)
		if i%2 == 0 {
			jumpy.Observe(100)
		} else {
			jumpy.Observe(10_000)
		}
	}
	if calm.Deviation() != 0 {
		t.Fatalf("constant feed produced deviation %v", calm.Deviation())
	}
	if jumpy.Deviation() < 1000 {
		t.Fatalf("alternating feed produced deviation only %v", jumpy.Deviation())
	}
	// The estimate must widen with the margin.
	if jumpy.Estimate(3) <= jumpy.Estimate(0) {
		t.Fatalf("estimate did not grow with margin: %v vs %v",
			jumpy.Estimate(3), jumpy.Estimate(0))
	}
	if jumpy.Estimate(0) != jumpy.Mean() {
		t.Fatalf("zero-margin estimate %v != mean %v", jumpy.Estimate(0), jumpy.Mean())
	}
}

func TestFluctuationMonitorAbsorbsAdversarialInput(t *testing.T) {
	f := NewFluctuationMonitor(math.NaN()) // bad alpha takes the default
	f.Observe(-sim.Second)                 // negative clamps to zero
	f.Observe(sim.Duration(1) << 62)       // huge clamps finite
	for _, v := range []sim.Duration{f.Mean(), f.Deviation(), f.Estimate(64)} {
		if v < 0 || v > maxFiniteDur {
			t.Fatalf("monitor state escaped [0, maxFiniteDur]: %v", v)
		}
	}
}

// ---- DupBudget -------------------------------------------------------------

func TestDupBudgetStartsFullThenDenies(t *testing.T) {
	b := NewDupBudget(1000, 100)
	if !b.TrySpend(0, 60) {
		t.Fatal("first spend within burst denied")
	}
	if b.TrySpend(0, 60) {
		t.Fatal("spend past the burst granted")
	}
	if b.SpentBytes() != 60 || b.Grants() != 1 || b.Denied() != 1 {
		t.Fatalf("accounting spent=%d grants=%d denied=%d", b.SpentBytes(), b.Grants(), b.Denied())
	}
	if b.Tokens() < 0 {
		t.Fatalf("tokens went negative: %v", b.Tokens())
	}
}

func TestDupBudgetRefillsWithVirtualTime(t *testing.T) {
	b := NewDupBudget(1000, 100) // 1000 B/s
	if !b.TrySpend(0, 100) {
		t.Fatal("burst spend denied")
	}
	if b.TrySpend(sim.Time(10*sim.Millisecond), 50) {
		t.Fatal("10ms refilled only 10 bytes; 50-byte spend should deny")
	}
	if !b.TrySpend(sim.Time(sim.Second), 100) {
		t.Fatal("a full second should refill to burst")
	}
	// Refill never exceeds burst, and backwards time refills nothing.
	if b.TrySpend(sim.Time(sim.Second)/2, 1) {
		t.Fatal("time moving backwards minted tokens")
	}
}

func TestDupBudgetZeroDeniesEverything(t *testing.T) {
	b := NewDupBudget(0, 0)
	for i := 0; i < 10; i++ {
		if b.TrySpend(sim.Time(i)*sim.Second, 0) {
			t.Fatal("zero-capacity bucket granted a spend")
		}
	}
	if b.Denied() != 10 || b.SpentBytes() != 0 {
		t.Fatalf("denied=%d spent=%d", b.Denied(), b.SpentBytes())
	}
}

func TestDupBudgetSanitizesInputs(t *testing.T) {
	if b := NewDupBudget(math.NaN(), -5); b.Rate() != 0 || b.Burst() != 0 {
		t.Fatalf("NaN/negative not sanitized: rate=%v burst=%v", b.Rate(), b.Burst())
	}
	if b := NewDupBudget(math.Inf(1), math.Inf(1)); b.Rate() > 1<<50 || b.Burst() > 1<<50 {
		t.Fatalf("infinite inputs not capped: rate=%v burst=%v", b.Rate(), b.Burst())
	}
	// Zero burst with a positive rate takes the 10ms default so the bucket
	// can actually hold tokens.
	if b := NewDupBudget(1000, 0); b.Burst() != 10 {
		t.Fatalf("default burst %v, want 10", b.Burst())
	}
	if b := NewDupBudget(50, 0); b.Burst() != 1 {
		t.Fatalf("default burst floor %v, want 1", b.Burst())
	}
}

func TestDupBudgetSpendNeverExceedsAllowance(t *testing.T) {
	rng := xrand.New(11)
	b := NewDupBudget(4096, 512)
	now := sim.Time(0)
	for i := 0; i < 5000; i++ {
		now += sim.Duration(rng.Intn(int(sim.Millisecond)))
		b.TrySpend(now, rng.Intn(2000))
		if float64(b.SpentBytes()) > b.Allowance(sim.Duration(now))+1e-6 {
			t.Fatalf("spent %d exceeds allowance %v after %v",
				b.SpentBytes(), b.Allowance(sim.Duration(now)), now)
		}
		if b.Tokens() < 0 {
			t.Fatalf("tokens negative: %v", b.Tokens())
		}
	}
}

// ---- DeadlineAware ---------------------------------------------------------

// trainedCalmPaths returns n paths taught a steady ~1.2µs latency.
func trainedCalmPaths(t *testing.T, n int) []*PathState {
	t.Helper()
	_, paths := testPaths(t, n, 1000)
	for _, ps := range paths {
		for j := 0; j < 50; j++ {
			ps.observe(0, 1000, 1200)
		}
	}
	return paths
}

// trainJittery teaches a path a 1µs service time with wildly alternating
// latency, so its fluctuation estimate far exceeds its score.
func trainJittery(ps *PathState) {
	for j := 0; j < 50; j++ {
		lat := sim.Duration(100)
		if j%2 == 0 {
			lat = 10_000
		}
		ps.observe(0, 1000, lat)
	}
}

func TestDeadlineAwareSafeStaysSingle(t *testing.T) {
	paths := trainedCalmPaths(t, 4)
	d := NewDeadlineAware(DeadlineAwareConfig{
		Deadline: sim.Millisecond, Margin: 3, Budget: NewDupBudget(1<<20, 64<<10),
	})
	for i := uint64(0); i < 50; i++ {
		if got := d.Pick(0, flowPkt(i), paths); len(got) != 1 {
			t.Fatalf("safe deadline escalated: %v", got)
		}
	}
	st := d.Stats()
	if st.Safe != 50 || st.Duplicated != 0 {
		t.Fatalf("stats %+v, want 50 safe and no dups", st)
	}
	if d.Budget().SpentBytes() != 0 {
		t.Fatal("safe picks spent budget")
	}
}

func TestDeadlineAwareEscalatesWhenAtRisk(t *testing.T) {
	// Path 0 is jittery (pessimistic estimate » score), path 1 calm: the
	// 2µs deadline is at risk on 0's fluctuation estimate but comfortably
	// fits path 1's optimistic one — the textbook escalation case.
	paths := trainedCalmPaths(t, 2)
	trainJittery(paths[0])
	d := NewDeadlineAware(DeadlineAwareConfig{
		Deadline: 2 * sim.Microsecond, Margin: 3, Budget: NewDupBudget(1<<20, 64<<10),
	})
	p := flowPkt(1)
	got := d.Pick(0, p, paths)
	if len(got) != 2 || got[0] == got[1] {
		t.Fatalf("at-risk pick %v, want two distinct paths", got)
	}
	st := d.Stats()
	if st.AtRisk != 1 || st.Duplicated != 1 {
		t.Fatalf("stats %+v", st)
	}
	if spent := d.Budget().SpentBytes(); spent != uint64(p.Size()) {
		t.Fatalf("budget spent %d, want the packet size %d", spent, p.Size())
	}
}

func TestDeadlineAwareLateGetsSinglePath(t *testing.T) {
	paths := trainedCalmPaths(t, 2)
	d := NewDeadlineAware(DeadlineAwareConfig{Deadline: 100, Budget: NewDupBudget(1<<20, 64<<10)})
	p := flowPkt(1)
	p.Deadline = 5 // already blown at now=10
	if got := d.Pick(10, p, paths); len(got) != 1 {
		t.Fatalf("late packet duplicated: %v", got)
	}
	if st := d.Stats(); st.Late != 1 || st.Duplicated != 0 {
		t.Fatalf("stats %+v", st)
	}
	if d.Budget().SpentBytes() != 0 {
		t.Fatal("late packet spent budget")
	}
}

func TestDeadlineAwareDeniesUselessCopy(t *testing.T) {
	// The duplicate target is queued so deep that even its optimistic
	// estimate blows the deadline: the copy could never arrive in time, so
	// the policy must keep the bytes instead of wasting budget.
	paths := trainedCalmPaths(t, 2)
	trainJittery(paths[0])
	for i := 0; i < 5; i++ {
		paths[1].Lane.Enqueue(flowPkt(uint64(900 + i)))
	}
	d := NewDeadlineAware(DeadlineAwareConfig{
		Deadline: 2 * sim.Microsecond, Margin: 3, Budget: NewDupBudget(1<<20, 64<<10),
	})
	if got := d.Pick(0, flowPkt(1), paths); len(got) != 1 {
		t.Fatalf("bought a copy that cannot make the deadline: %v", got)
	}
	if st := d.Stats(); st.Denied != 1 {
		t.Fatalf("stats %+v, want 1 denied", st)
	}
	if d.Budget().SpentBytes() != 0 {
		t.Fatal("useless copy spent budget")
	}
}

func TestDeadlineAwareNoDeadlineNoEscalation(t *testing.T) {
	paths := trainedCalmPaths(t, 2)
	d := NewDeadlineAware(DeadlineAwareConfig{Deadline: 0, Budget: NewDupBudget(1<<20, 64<<10)})
	for i := uint64(0); i < 20; i++ {
		if got := d.Pick(0, flowPkt(i), paths); len(got) != 1 {
			t.Fatalf("deadline-free packet duplicated: %v", got)
		}
	}
	if st := d.Stats(); st.Duplicated != 0 || st.AtRisk != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestDeadlineAwareZeroBudgetMatchesNoDup is the pick-level core of the P3
// degradation property: a zero-capacity budget and no budget at all must make
// byte-for-byte identical path choices (the engine then produces identical
// runs — the stream-level check lives in the experiment package).
func TestDeadlineAwareZeroBudgetMatchesNoDup(t *testing.T) {
	mk := func(budget *DupBudget) (*DeadlineAware, []*PathState) {
		paths := trainedCalmPaths(t, 4)
		// Skew the paths identically in both worlds.
		for i := 0; i < 3; i++ {
			paths[2].Lane.Enqueue(flowPkt(uint64(800 + i)))
		}
		return NewDeadlineAware(DeadlineAwareConfig{Deadline: 100, Budget: budget}), paths
	}
	dZero, pZero := mk(NewDupBudget(0, 0))
	dNil, pNil := mk(nil)
	for i := uint64(0); i < 200; i++ {
		a := dZero.Pick(sim.Time(i)*100, flowPkt(i), pZero)
		b := dNil.Pick(sim.Time(i)*100, flowPkt(i), pNil)
		if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
			t.Fatalf("pick %d diverged: budget-zero %v vs no-budget %v", i, a, b)
		}
	}
}

// ---- engine integration: deadline stamping + DupBytes accounting -----------

// TestDupBytesAccounting: a policy that duplicates every packet must bill
// exactly one extra copy's bytes per offered packet, and a single-path policy
// must bill none — the fix for hedge/redundant previously not accounting
// duplicated bytes at all.
func TestDupBytesAccounting(t *testing.T) {
	run := func(policy Policy) Metrics {
		s := sim.New()
		dp := New(s, Config{
			NumPaths:     2,
			ChainFactory: func(i int) *nf.Chain { return passChain(1 * sim.Microsecond) },
			Policy:       policy,
			QueueCap:     256,
			Seed:         3,
		}, func(p *packet.Packet) {})
		obsInject(dp, 300, 2*sim.Microsecond)
		return *dp.Metrics()
	}
	m := run(Redundant{K: 2})
	if m.DupBytes() == 0 {
		t.Fatal("redundant duplication billed no bytes")
	}
	if m.DupBytes() != m.OfferedBytes() {
		t.Fatalf("dup bytes %d != offered bytes %d (one extra copy per packet)",
			m.DupBytes(), m.OfferedBytes())
	}
	if s := run(SinglePath{}); s.DupBytes() != 0 {
		t.Fatalf("single-path run billed %d dup bytes", s.DupBytes())
	}
}

// TestDeadlineTraceStreamByteIdentical extends the determinism acceptance
// check to the deadline policy: two runs of the same seed, with DeadlineAware
// actively duplicating out of its budget, must record byte-identical
// flight-recorder streams.
func TestDeadlineTraceStreamByteIdentical(t *testing.T) {
	run := func() ([]byte, DeadlineAwareStats) {
		s := sim.New()
		rec := obs.NewRecorder(1 << 18)
		cfg := obsRunConfig(rec)
		da := NewDeadlineAware(DeadlineAwareConfig{
			Deadline: 5 * sim.Microsecond, // tight: forces at-risk escalations
			Margin:   3,
			Budget:   NewDupBudget(1<<20, 8<<10),
		})
		cfg.Policy = da
		cfg.Deadline = 5 * sim.Microsecond
		dp := New(s, cfg, func(p *packet.Packet) {})
		obsInject(dp, 600, 300*sim.Nanosecond)
		if rec.Overwritten() != 0 {
			t.Fatalf("ring overwrote %d events; raise capacity", rec.Overwritten())
		}
		var buf bytes.Buffer
		if _, err := rec.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		return buf.Bytes(), da.Stats()
	}
	a, stA := run()
	b, stB := run()
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed deadline runs recorded different event streams")
	}
	if stA != stB {
		t.Fatalf("same-seed decision counters diverged: %+v vs %+v", stA, stB)
	}
	// The run must actually exercise the escalation path, or this test
	// proves nothing about the new code.
	if stA.AtRisk == 0 || stA.Duplicated == 0 {
		t.Fatalf("deterministic run never escalated (stats %+v); tighten the deadline", stA)
	}
}

// ---- fuzz: adversarial telemetry and budget accounting ---------------------

// FuzzDeadlinePolicy feeds the fluctuation monitor and budget accounting
// adversarial RTT/loss telemetry — including lying telemetry via the tamper
// hook — and asserts the safety invariants: no panic, the budget never goes
// negative or past its allowance, and every risk estimate stays finite.
func FuzzDeadlinePolicy(f *testing.F) {
	f.Add(uint64(1), int64(2000), 3.0, 1e6, 64e3)
	f.Add(uint64(7), int64(-5), math.NaN(), math.Inf(1), -1.0)
	f.Add(uint64(42), int64(1)<<62, 1e308, 0.0, 0.0)
	f.Add(uint64(9), int64(100), -2.5, 50.0, 0.5)
	f.Fuzz(func(t *testing.T, seed uint64, deadlineNs int64, margin, rate, burst float64) {
		rng := xrand.New(seed | 1)
		_, paths := testPaths(t, 1+int(seed%4), 1000)
		d := NewDeadlineAware(DeadlineAwareConfig{
			Deadline: sim.Duration(deadlineNs),
			Margin:   margin,
			Budget:   NewDupBudget(rate, burst),
		})
		// Lying telemetry: every path's feed is rewritten — huge values,
		// negatives, or suppressed samples.
		for _, ps := range paths {
			r := rng.Split()
			ps.SetTelemetryTamper(func(now sim.Time, svc, lat sim.Duration) (sim.Duration, sim.Duration, bool) {
				switch r.Intn(5) {
				case 0:
					return svc, lat, true // honest
				case 1:
					return maxFiniteDur * 2, maxFiniteDur * 2, true // absurdly slow
				case 2:
					return -lat, -svc, true // negative
				case 3:
					return 0, 0, false // suppressed
				default:
					return sim.Duration(r.Uint64()), sim.Duration(r.Uint64()), true // garbage
				}
			})
		}
		now := sim.Time(0)
		for i := 0; i < 300; i++ {
			ps := paths[rng.Intn(len(paths))]
			ps.observe(now, sim.Duration(rng.Int63n(int64(sim.Millisecond))),
				sim.Duration(rng.Int63n(int64(sim.Millisecond))))
			now += sim.Duration(rng.Intn(int(sim.Microsecond)))

			p := flowPkt(uint64(i))
			if rng.Bool(0.3) {
				p.Deadline = sim.Time(rng.Uint64()) // arbitrary, possibly negative
			}
			picks := d.Pick(now, p, paths)
			if len(picks) < 1 || len(picks) > 2 {
				t.Fatalf("pick returned %d paths", len(picks))
			}
			for _, idx := range picks {
				if idx < 0 || idx >= len(paths) {
					t.Fatalf("pick out of range: %v", picks)
				}
			}
			if len(picks) == 2 && picks[0] == picks[1] {
				t.Fatalf("duplicated to the same path: %v", picks)
			}
			for _, ps := range paths {
				if est := d.estimate(ps); est < 0 || est > maxFiniteDur {
					t.Fatalf("estimate escaped finite range: %v", est)
				}
			}
			b := d.Budget()
			if tok := b.Tokens(); tok < 0 || tok != tok {
				t.Fatalf("budget tokens invalid: %v", tok)
			}
			if float64(b.SpentBytes()) > b.Allowance(sim.Duration(now))+1e-6 {
				t.Fatalf("spent %d past allowance %v", b.SpentBytes(), b.Allowance(sim.Duration(now)))
			}
		}
	})
}
