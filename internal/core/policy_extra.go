package core

import (
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/xrand"
)

// LetFlow re-steers each flowlet to a *uniformly random* path, relying on
// the flowlet mechanism's implicit load sensitivity (congested paths
// stretch packet gaps, splitting flows into more flowlets that then leave).
// This reproduces the LetFlow design point: no telemetry at all, just
// flowlet boundaries + randomness.
type LetFlow struct {
	Timeout sim.Duration
	Rng     *xrand.Rand

	table map[uint64]*flowletEntry
	elig  []int // scratch
}

// NewLetFlow builds the policy with the given flowlet idle gap.
func NewLetFlow(timeout sim.Duration, rng *xrand.Rand) *LetFlow {
	if timeout < 0 {
		panic("core: NewLetFlow with negative timeout")
	}
	if rng == nil {
		panic("core: NewLetFlow with nil rng")
	}
	return &LetFlow{Timeout: timeout, Rng: rng, table: make(map[uint64]*flowletEntry)}
}

// Name implements Policy.
func (l *LetFlow) Name() string { return "letflow" }

// Pick implements Policy.
func (l *LetFlow) Pick(now sim.Time, p *packet.Packet, paths []*PathState) []int {
	e, ok := l.table[p.FlowID]
	if ok && now-e.lastSeen <= l.Timeout && e.path < len(paths) && paths[e.path].Eligible() {
		e.lastSeen = now
		return []int{e.path}
	}
	var choice int
	if cand := eligibleInto(&l.elig, paths); cand != nil {
		choice = cand[l.Rng.Intn(len(cand))]
	} else {
		choice = l.Rng.Intn(len(paths))
	}
	if !ok {
		e = &flowletEntry{}
		l.table[p.FlowID] = e
	}
	e.path, e.lastSeen = choice, now
	return []int{choice}
}

// LeastLatency steers every packet to the path with the lowest smoothed
// latency estimate (EWMA), ignoring instantaneous queue depth. It shows
// what telemetry lag costs: the EWMA trails reality, so bursts pile onto a
// path that *was* fast.
type LeastLatency struct{}

// Name implements Policy.
func (LeastLatency) Name() string { return "least-lat" }

// Pick implements Policy.
func (LeastLatency) Pick(now sim.Time, p *packet.Packet, paths []*PathState) []int {
	best := -1
	var bestLat sim.Duration
	for i, ps := range paths {
		if !ps.Eligible() {
			continue
		}
		if l := ps.MeanLatency(); best == -1 || l < bestLat {
			best, bestLat = i, l
		}
	}
	if best == -1 {
		best, bestLat = 0, paths[0].MeanLatency()
		for i := 1; i < len(paths); i++ {
			if l := paths[i].MeanLatency(); l < bestLat {
				best, bestLat = i, l
			}
		}
	}
	return []int{best}
}

// WeightedRR distributes packets round-robin weighted by each path's
// observed service rate: a path whose mean service time is twice as long
// gets half the packets. Adapts to heterogeneous paths but not to
// transient interference.
type WeightedRR struct {
	credit []float64
}

// Name implements Policy.
func (*WeightedRR) Name() string { return "wrr" }

// Pick implements Policy.
func (w *WeightedRR) Pick(now sim.Time, p *packet.Packet, paths []*PathState) []int {
	if len(w.credit) != len(paths) {
		w.credit = make([]float64, len(paths))
	}
	// Accumulate credit proportional to service *rate* and spend it.
	// Ineligible paths neither earn nor spend: they leave the rotation
	// entirely and re-enter at their old credit when they recover.
	best, bestCredit := -1, -1.0
	for i, ps := range paths {
		if !ps.Eligible() {
			continue
		}
		w.credit[i] += 1.0 / float64(ps.MeanService())
		if w.credit[i] > bestCredit {
			best, bestCredit = i, w.credit[i]
		}
	}
	if best == -1 {
		for i, ps := range paths {
			w.credit[i] += 1.0 / float64(ps.MeanService())
			if w.credit[i] > bestCredit {
				best, bestCredit = i, w.credit[i]
			}
		}
	}
	w.credit[best] -= bestCredit // spend: push to the back of the rotation
	return []int{best}
}
