package core

import (
	"testing"

	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/vnet"
	"mpdp/internal/xrand"
)

// passChain returns a fresh fixed-cost pass-through chain.
func passChain(cost sim.Duration) *nf.Chain {
	return nf.NewChain("pass", nf.Func{
		ElemName: "pass",
		Fn: func(now sim.Time, p *packet.Packet) nf.Result {
			return nf.Result{Verdict: packet.Pass, Cost: cost}
		},
	})
}

// testPaths builds n idle deterministic paths on a fresh simulator.
func testPaths(t testing.TB, n int, cost sim.Duration) (*sim.Simulator, []*PathState) {
	t.Helper()
	s := sim.New()
	paths := make([]*PathState, n)
	for i := 0; i < n; i++ {
		cfg := vnet.LaneConfig{QueueCap: 64, Chain: passChain(cost)}
		paths[i] = newPathState(vnet.NewLane(i, s, cfg, xrand.New(uint64(i+1)), nil), 0.2, -1)
	}
	return s, paths
}

func flowPkt(flow uint64) *packet.Packet {
	key := packet.FlowKey{
		SrcIP: packet.IP4(10, 0, byte(flow>>8), byte(flow)), DstIP: packet.IP4(10, 1, 0, 1),
		SrcPort: uint16(1000 + flow%60000), DstPort: 80, Proto: packet.ProtoUDP,
	}
	return &packet.Packet{
		Data: packet.BuildUDP(key, make([]byte, 64), packet.BuildOpts{}),
		Flow: key, FlowID: key.Hash64(),
	}
}

func TestSinglePathAlwaysZero(t *testing.T) {
	_, paths := testPaths(t, 4, 100)
	p := SinglePath{}
	for i := uint64(0); i < 20; i++ {
		if got := p.Pick(0, flowPkt(i), paths); len(got) != 1 || got[0] != 0 {
			t.Fatalf("SinglePath picked %v", got)
		}
	}
}

func TestRSSHashStableAndSpread(t *testing.T) {
	_, paths := testPaths(t, 8, 100)
	p := RSSHash{}
	seen := make(map[int]bool)
	for i := uint64(0); i < 200; i++ {
		pkt := flowPkt(i)
		a := p.Pick(0, pkt, paths)
		b := p.Pick(0, pkt, paths)
		if a[0] != b[0] {
			t.Fatal("RSS not flow-stable")
		}
		seen[a[0]] = true
	}
	if len(seen) < 6 {
		t.Fatalf("RSS used only %d/8 paths", len(seen))
	}
}

func TestRoundRobinCycles(t *testing.T) {
	_, paths := testPaths(t, 3, 100)
	rr := &RoundRobin{}
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := rr.Pick(0, flowPkt(uint64(i)), paths); got[0] != w {
			t.Fatalf("RR pick %d = %d, want %d", i, got[0], w)
		}
	}
}

func TestRandomPickInRange(t *testing.T) {
	_, paths := testPaths(t, 5, 100)
	rp := &RandomPick{Rng: xrand.New(1)}
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		got := rp.Pick(0, flowPkt(uint64(i)), paths)
		if got[0] < 0 || got[0] >= 5 {
			t.Fatalf("random pick out of range: %d", got[0])
		}
		seen[got[0]] = true
	}
	if len(seen) != 5 {
		t.Fatalf("random pick covered %d/5", len(seen))
	}
}

func TestJSQPicksShallowest(t *testing.T) {
	_, paths := testPaths(t, 3, 10000)
	// Load path 0 with 3 packets, path 1 with 1, leave 2 idle.
	for i := 0; i < 3; i++ {
		paths[0].Lane.Enqueue(flowPkt(uint64(i)))
	}
	paths[1].Lane.Enqueue(flowPkt(100))
	if got := (JSQ{}).Pick(0, flowPkt(999), paths); got[0] != 2 {
		t.Fatalf("JSQ picked %d, want idle path 2", got[0])
	}
}

func TestPowerOfTwoPrefersShallower(t *testing.T) {
	_, paths := testPaths(t, 2, 10000)
	for i := 0; i < 5; i++ {
		paths[0].Lane.Enqueue(flowPkt(uint64(i)))
	}
	p2 := &PowerOfTwo{Rng: xrand.New(3)}
	// With 2 paths, po2 always compares both; must always pick path 1.
	for i := 0; i < 20; i++ {
		if got := p2.Pick(0, flowPkt(uint64(100+i)), paths); got[0] != 1 {
			t.Fatalf("po2 picked loaded path")
		}
	}
}

func TestPowerOfTwoSinglePath(t *testing.T) {
	_, paths := testPaths(t, 1, 100)
	p2 := &PowerOfTwo{Rng: xrand.New(3)}
	if got := p2.Pick(0, flowPkt(1), paths); got[0] != 0 {
		t.Fatal("po2 single-path broken")
	}
}

func TestFlowletSticksWithinGap(t *testing.T) {
	_, paths := testPaths(t, 4, 100)
	f := NewFlowlet(500 * sim.Microsecond)
	pkt := flowPkt(1)
	first := f.Pick(0, pkt, paths)[0]
	// Packets inside the gap stay put even if another path looks better.
	for i := 1; i <= 5; i++ {
		now := sim.Time(i) * 100 * sim.Microsecond
		if got := f.Pick(now, flowPkt(1), paths)[0]; got != first {
			t.Fatalf("flowlet moved mid-burst at %v", now)
		}
	}
}

func TestFlowletResteersAfterGap(t *testing.T) {
	s, paths := testPaths(t, 2, 10000)
	f := NewFlowlet(100 * sim.Microsecond)
	first := f.Pick(0, flowPkt(1), paths)[0]
	// Pile load onto the chosen path so the other becomes better.
	for i := 0; i < 10; i++ {
		paths[first].Lane.Enqueue(flowPkt(uint64(50 + i)))
	}
	_ = s
	// After an idle gap the flow must move.
	got := f.Pick(sim.Time(1)*sim.Millisecond, flowPkt(1), paths)[0]
	if got == first {
		t.Fatal("flowlet did not re-steer after idle gap")
	}
}

func TestFlowletDifferentFlowsIndependent(t *testing.T) {
	_, paths := testPaths(t, 4, 10000)
	f := NewFlowlet(sim.Second)
	a := f.Pick(0, flowPkt(1), paths)[0]
	// Load path a heavily; a *new* flow should go elsewhere.
	for i := 0; i < 10; i++ {
		paths[a].Lane.Enqueue(flowPkt(uint64(50 + i)))
	}
	b := f.Pick(0, flowPkt(2), paths)[0]
	if b == a {
		t.Fatal("new flow steered to the congested path")
	}
}

func TestRedundantPicksDistinct(t *testing.T) {
	_, paths := testPaths(t, 4, 100)
	r := Redundant{K: 3}
	got := r.Pick(0, flowPkt(1), paths)
	if len(got) != 3 {
		t.Fatalf("dup count %d", len(got))
	}
	seen := make(map[int]bool)
	for _, i := range got {
		if seen[i] {
			t.Fatalf("duplicate path index %v", got)
		}
		seen[i] = true
	}
}

func TestRedundantClampsToPathCount(t *testing.T) {
	_, paths := testPaths(t, 2, 100)
	r := Redundant{K: 5}
	if got := r.Pick(0, flowPkt(1), paths); len(got) != 2 {
		t.Fatalf("K not clamped: %v", got)
	}
	// K < 2 behaves as 2.
	r = Redundant{K: 0}
	if got := r.Pick(0, flowPkt(1), paths); len(got) != 2 {
		t.Fatalf("K floor not applied: %v", got)
	}
}

func TestMPDPNoDuplicationWhenIdle(t *testing.T) {
	_, paths := testPaths(t, 4, 100)
	m := NewMPDP(DefaultMPDPConfig())
	for i := uint64(0); i < 50; i++ {
		if got := m.Pick(sim.Time(i)*sim.Millisecond, flowPkt(i), paths); len(got) != 1 {
			t.Fatalf("idle paths triggered duplication: %v", got)
		}
	}
	if m.DupFraction() != 0 {
		t.Fatalf("dup fraction %v on idle paths", m.DupFraction())
	}
}

// trainStraggler teaches a path's telemetry a 1µs mean service with
// occasional huge stragglers, making its p99 estimate far exceed its mean.
func trainStraggler(ps *PathState) {
	for i := 0; i < 200; i++ {
		if i%50 == 25 {
			ps.observe(0, 1000, 80_000) // straggler
		} else {
			ps.observe(0, 1000, 1200)
		}
	}
}

func TestMPDPDuplicatesOnUnpredictablePath(t *testing.T) {
	_, paths := testPaths(t, 2, 1000)
	cfg := DefaultMPDPConfig()
	cfg.RerouteThreshold = 0 // isolate the duplication mechanism
	m := NewMPDP(cfg)
	// Both paths show straggler history; both are idle (so the spare-
	// capacity gate passes and flowlet steering is indifferent).
	trainStraggler(paths[0])
	trainStraggler(paths[1])
	got := m.Pick(0, flowPkt(1), paths)
	if len(got) != 2 {
		t.Fatalf("straggler-prone path did not trigger duplication: %v", got)
	}
	if got[0] == got[1] {
		t.Fatal("duplicated to the same path")
	}
}

func TestMPDPNoDuplicationOntoBusyTwin(t *testing.T) {
	_, paths := testPaths(t, 2, 10_000)
	cfg := DefaultMPDPConfig()
	cfg.RerouteThreshold = 0
	m := NewMPDP(cfg)
	trainStraggler(paths[0])
	trainStraggler(paths[1])
	// Busy twin: duplication must not add load to a contested path.
	for i := 0; i < 5; i++ {
		paths[1].Lane.Enqueue(flowPkt(uint64(900 + i)))
	}
	// Steer the flow to path 0 first (idle), then ask again.
	m.flowlet.Steer(flowPkt(1).FlowID, 0, 0)
	if got := m.Pick(0, flowPkt(1), paths); len(got) != 1 {
		t.Fatalf("duplicated onto a busy twin: %v", got)
	}
}

func TestMPDPBudgetCapsDuplication(t *testing.T) {
	_, paths := testPaths(t, 2, 1000)
	cfg := DefaultMPDPConfig()
	cfg.RerouteThreshold = 0
	cfg.DupBudget = 0.10
	cfg.FlowletTimeout = 1 // force fresh steering each packet
	m := NewMPDP(cfg)
	trainStraggler(paths[0])
	trainStraggler(paths[1])
	for i := uint64(0); i < 1000; i++ {
		m.Pick(sim.Time(i)*sim.Microsecond, flowPkt(i), paths)
	}
	if f := m.DupFraction(); f > 0.11 {
		t.Fatalf("dup fraction %v exceeds 10%% budget", f)
	}
	if m.DupFraction() == 0 {
		t.Fatal("budget suppressed all duplication")
	}
}

func TestMPDPZeroBudgetNeverDuplicates(t *testing.T) {
	_, paths := testPaths(t, 2, 1000)
	cfg := DefaultMPDPConfig()
	cfg.DupBudget = 0
	cfg.RerouteThreshold = 0
	m := NewMPDP(cfg)
	trainStraggler(paths[0])
	trainStraggler(paths[1])
	for i := uint64(0); i < 100; i++ {
		if got := m.Pick(0, flowPkt(i), paths); len(got) != 1 {
			t.Fatal("zero budget duplicated")
		}
	}
}

func TestMPDPClassAwareOnlyDupsLatencySensitive(t *testing.T) {
	_, paths := testPaths(t, 2, 1000)
	cfg := DefaultMPDPConfig()
	cfg.RerouteThreshold = 0
	cfg.DupBudget = 1
	cfg.ClassAware = true
	cfg.FlowletTimeout = 1
	m := NewMPDP(cfg)
	trainStraggler(paths[0])
	trainStraggler(paths[1])
	// Unstamped packet (class default): no duplication.
	if got := m.Pick(0, flowPkt(1), paths); len(got) != 1 {
		t.Fatal("class-aware duplicated default-class packet")
	}
	// Stamp a packet latency-sensitive via the real classifier.
	cls := nf.PresetClassifier()
	pkt := flowPkt(2) // dst port 80 -> latency-sensitive
	cls.Process(0, pkt)
	if got := m.Pick(0, pkt, paths); len(got) != 2 {
		t.Fatal("class-aware did not duplicate latency-sensitive packet")
	}
}

func TestMPDPReroutesAwayFromDegradedPath(t *testing.T) {
	_, paths := testPaths(t, 2, 10_000)
	cfg := DefaultMPDPConfig()
	cfg.DupBudget = 0
	m := NewMPDP(cfg)
	for i := range paths {
		for j := 0; j < 50; j++ {
			paths[i].observe(0, 1000, 1200)
		}
	}
	// Establish a flowlet on path 0, then degrade path 0.
	m.flowlet.Steer(flowPkt(1).FlowID, 0, 0)
	for i := 0; i < 10; i++ {
		paths[0].Lane.Enqueue(flowPkt(uint64(700 + i)))
	}
	got := m.Pick(10, flowPkt(1), paths) // inside the flowlet gap
	if got[0] != 1 {
		t.Fatalf("did not reroute away from degraded path: %v", got)
	}
	if m.Rerouted() != 1 {
		t.Fatalf("reroute counter %d", m.Rerouted())
	}
}

func TestPathStateTelemetry(t *testing.T) {
	_, paths := testPaths(t, 1, 100)
	ps := paths[0]
	if ps.MeanService() != sim.Microsecond {
		t.Fatalf("default service estimate %v", ps.MeanService())
	}
	ps.observe(0, 200, 500)
	ps.observe(0, 400, 700)
	if ps.MeanService() <= 0 || ps.MeanLatency() <= 0 {
		t.Fatal("telemetry not updating")
	}
	if ps.Completed() != 2 {
		t.Fatalf("completed %d", ps.Completed())
	}
	for i := 0; i < 100; i++ {
		ps.observe(0, 200, 500)
	}
	if p99 := ps.P99Latency(); p99 < 400 || p99 > 800 {
		t.Fatalf("p99 estimate %v far from 500", p99)
	}
}

func TestBestScoreTiesDeterministic(t *testing.T) {
	_, paths := testPaths(t, 4, 100)
	if bestScore(paths) != 0 {
		t.Fatal("tie not broken to lowest index")
	}
	if secondBest(paths, 0) != 1 {
		t.Fatal("secondBest tie not deterministic")
	}
	if secondBest(paths[:1], 0) != 0 {
		t.Fatal("secondBest with one path should return first")
	}
}

func TestLetFlowStickyThenRandom(t *testing.T) {
	_, paths := testPaths(t, 4, 100)
	lf := NewLetFlow(100*sim.Microsecond, xrand.New(5))
	first := lf.Pick(0, flowPkt(1), paths)[0]
	for i := 1; i <= 3; i++ {
		if got := lf.Pick(sim.Time(i)*10*sim.Microsecond, flowPkt(1), paths)[0]; got != first {
			t.Fatal("letflow moved mid-flowlet")
		}
	}
	// After many idle gaps, the random re-steer must eventually move.
	moved := false
	now := sim.Time(0)
	for i := 0; i < 50; i++ {
		now += sim.Millisecond
		if lf.Pick(now, flowPkt(1), paths)[0] != first {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("letflow never re-steered across 50 idle gaps")
	}
}

func TestLetFlowValidatesArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil rng accepted")
		}
	}()
	NewLetFlow(1, nil)
}

func TestLeastLatencyPicksFastPath(t *testing.T) {
	_, paths := testPaths(t, 3, 100)
	for i := range paths {
		for j := 0; j < 20; j++ {
			paths[i].observe(0, 1000, sim.Duration(1000*(i+1))) // path 0 fastest
		}
	}
	if got := (LeastLatency{}).Pick(0, flowPkt(1), paths); got[0] != 0 {
		t.Fatalf("least-lat picked %d", got[0])
	}
}

func TestWeightedRRProportionalToRate(t *testing.T) {
	_, paths := testPaths(t, 2, 100)
	// Path 0 twice as fast as path 1.
	for j := 0; j < 50; j++ {
		paths[0].observe(0, 1000, 1000)
		paths[1].observe(0, 2000, 2000)
	}
	w := &WeightedRR{}
	counts := [2]int{}
	for i := uint64(0); i < 3000; i++ {
		counts[w.Pick(0, flowPkt(i), paths)[0]]++
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("weighted split ratio %.2f (counts %v), want ~2", ratio, counts)
	}
}

func BenchmarkFlowletPick(b *testing.B) {
	_, paths := testPaths(b, 4, 100)
	f := NewFlowlet(500 * sim.Microsecond)
	pkt := flowPkt(1)
	f.Pick(0, pkt, paths) // warm-up: flow entry + scratch allocate once here
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Pick(sim.Time(i), pkt, paths)
	}
}

func BenchmarkMPDPPick(b *testing.B) {
	_, paths := testPaths(b, 4, 100)
	m := NewMPDP(DefaultMPDPConfig())
	pkt := flowPkt(1)
	m.Pick(0, pkt, paths) // warm-up: flow entry + scratch allocate once here
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Pick(sim.Time(i), pkt, paths)
	}
}
