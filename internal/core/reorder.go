// Package core implements the paper's contribution: the multipath data
// plane (MPDP). It schedules packets across multiple lanes (queue × core ×
// chain-replica paths built from internal/vnet), steering flowlets away
// from slow paths and selectively duplicating latency-critical packets,
// then restores per-flow ordering in a bounded reorder buffer before
// delivery to the guest.
package core

import (
	"sort"

	"mpdp/internal/obs"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// DeliverFunc receives packets released in order by the reorder buffer.
type DeliverFunc func(p *packet.Packet)

// Reorder is the in-order delivery stage. Packets of one flow (keyed by the
// immutable FlowID) are released in ingress sequence order. Two mechanisms
// keep a lost packet from stalling its successors:
//
//   - Hole punching: when the engine knows a sequence will never arrive
//     (queue-full drop, policy drop of every copy), it calls Skip, which
//     fills the hole with a tombstone so successors flow immediately.
//   - Gap timeout: any packet still blocked after Timeout is released
//     anyway, together with everything else that has waited at least that
//     long. This is the safety net for losses the engine cannot see.
//
// The buffer also deduplicates: when the redundancy policy sends two copies
// of a sequence number, the first to finish service wins and the second is
// discarded here.
type Reorder struct {
	sim     *sim.Simulator
	timeout sim.Duration
	deliver DeliverFunc
	onLost  DeliverFunc // a real packet discarded for good (late drop)
	trace   obs.Sink    // optional flight-recorder hook (nil = off)

	flows map[uint64]*flowOrder

	// Counters for the E8 reordering-cost table.
	inOrder      uint64
	outOfOrder   uint64
	dupDrops     uint64
	lateDrops    uint64
	timeoutRel   uint64
	holesPunched uint64
	gapSkipped   uint64 // sequence numbers abandoned by a gap timeout
	occupancy    int    // buffered entries, tombstones included
	pktOccupancy int    // buffered real packets only
	maxOccupancy int
}

type pendingPkt struct {
	p  *packet.Packet // nil for a tombstone (punched hole)
	at sim.Time       // when it entered the buffer
}

type flowOrder struct {
	next    uint64 // lowest sequence not yet released
	pending map[uint64]pendingPkt
	timer   *sim.Event // gap timer, armed while pending is non-empty
}

// NewReorder builds the stage. timeout <= 0 disables gap timeouts (wait
// forever — only sensible when the caller guarantees hole punching covers
// every loss).
func NewReorder(s *sim.Simulator, timeout sim.Duration, deliver DeliverFunc) *Reorder {
	if deliver == nil {
		panic("core: NewReorder with nil deliver")
	}
	return &Reorder{
		sim:     s,
		timeout: timeout,
		deliver: deliver,
		flows:   make(map[uint64]*flowOrder),
	}
}

// OnLost registers a callback for packets the buffer discards for good — a
// straggler arriving after its gap was declared lost. Duplicate copies
// (their original was or will be delivered by a sibling) do not fire it.
func (r *Reorder) OnLost(fn DeliverFunc) { r.onLost = fn }

// emit records a reorder-stage lifecycle event when a recorder is attached.
func (r *Reorder) emit(kind obs.Kind, p *packet.Packet, a, b int64) {
	if r.trace == nil || p == nil {
		return
	}
	r.trace.Emit(obs.Event{Time: r.sim.Now(), Kind: kind, PktID: p.ID, OrigID: p.OrigID,
		FlowID: p.FlowID, Seq: p.Seq, Path: int32(p.PathID), A: a, B: b})
}

func (r *Reorder) flow(id uint64) *flowOrder {
	f, ok := r.flows[id]
	if !ok {
		f = &flowOrder{pending: make(map[uint64]pendingPkt)}
		r.flows[id] = f
	}
	return f
}

// Submit hands the buffer a service-completed packet.
func (r *Reorder) Submit(p *packet.Packet) {
	f := r.flow(p.FlowID)

	switch {
	case p.Seq < f.next:
		// Predecessor of an already-released sequence: either a duplicate
		// copy losing the race, or a straggler that missed its timeout.
		if p.IsDup || p.Cancelled {
			r.dupDrops++
			p.Dropped = packet.DropCancelled
		} else {
			r.lateDrops++
			p.Dropped = packet.DropReorder
			if r.onLost != nil {
				r.onLost(p)
			}
		}
		return
	case p.Seq == f.next:
		r.inOrder++
		r.release(f, p)
		r.drain(f)
	default:
		// Early: a predecessor is still in flight somewhere.
		if _, dup := f.pending[p.Seq]; dup {
			r.dupDrops++
			p.Dropped = packet.DropCancelled
			return
		}
		r.outOfOrder++
		r.emit(obs.KindReorderEnter, p, 0, 0)
		f.pending[p.Seq] = pendingPkt{p: p, at: r.sim.Now()}
		r.occupancy++
		r.pktOccupancy++
		if r.occupancy > r.maxOccupancy {
			r.maxOccupancy = r.occupancy
		}
		r.armTimer(f)
	}
}

// Skip punches a hole: sequence seq of the flow will never arrive (the
// engine dropped every copy of it), so successors must not wait for it.
func (r *Reorder) Skip(flowID, seq uint64) {
	f := r.flow(flowID)
	if seq < f.next {
		return
	}
	r.holesPunched++
	if seq == f.next {
		f.next = seq + 1
		r.drain(f)
		return
	}
	if _, exists := f.pending[seq]; exists {
		return
	}
	f.pending[seq] = pendingPkt{p: nil, at: r.sim.Now()}
	r.occupancy++
	if r.occupancy > r.maxOccupancy {
		r.maxOccupancy = r.occupancy
	}
	r.armTimer(f)
}

// release delivers p (or swallows a tombstone) and advances the cursor.
func (r *Reorder) release(f *flowOrder, p *packet.Packet) {
	if p != nil {
		f.next = p.Seq + 1
		p.Delivered = r.sim.Now()
		r.deliver(p)
		return
	}
	f.next++
}

// drain releases consecutive pending successors.
func (r *Reorder) drain(f *flowOrder) {
	for {
		e, ok := f.pending[f.next]
		if !ok {
			break
		}
		delete(f.pending, f.next)
		r.occupancy--
		if e.p != nil {
			r.pktOccupancy--
			r.emit(obs.KindReorderRelease, e.p, int64(e.at), 0)
			r.release(f, e.p)
		} else {
			f.next++
		}
	}
	if len(f.pending) == 0 {
		if f.timer != nil {
			f.timer.Cancel()
			f.timer = nil
		}
	} else {
		r.armTimer(f)
	}
}

// armTimer arms the flow's gap timer for its oldest pending entry.
func (r *Reorder) armTimer(f *flowOrder) {
	if r.timeout <= 0 || f.timer != nil || len(f.pending) == 0 {
		return
	}
	oldest := r.oldestPending(f)
	fireIn := oldest + r.timeout - r.sim.Now()
	if fireIn < 1 {
		fireIn = 1
	}
	f.timer = r.sim.Schedule(fireIn, func() {
		f.timer = nil
		r.onTimeout(f)
	})
}

func (r *Reorder) oldestPending(f *flowOrder) sim.Time {
	var oldest sim.Time = 1<<63 - 1
	for _, e := range f.pending {
		if e.at < oldest {
			oldest = e.at
		}
	}
	return oldest
}

// onTimeout releases, in sequence order, every pending entry that has
// waited at least the timeout (declaring the gaps before them lost), then
// re-arms for the oldest survivor.
func (r *Reorder) onTimeout(f *flowOrder) {
	cutoff := r.sim.Now() - r.timeout
	for len(f.pending) > 0 {
		// Find the smallest pending sequence.
		min := ^uint64(0)
		for seq := range f.pending {
			if seq < min {
				min = seq
			}
		}
		e := f.pending[min]
		if e.at > cutoff {
			break // youngest-first survivors keep waiting
		}
		delete(f.pending, min)
		r.occupancy--
		r.gapSkipped += min - f.next // seqs the timeout declares lost
		if e.p != nil {
			r.pktOccupancy--
			r.timeoutRel++
			f.next = min // skip the gap
			r.emit(obs.KindReorderRelease, e.p, int64(e.at), 1)
			r.release(f, e.p)
		} else {
			f.next = min + 1
		}
		r.drain(f)
	}
	r.armTimer(f)
}

// ReorderStats is the E8 cost snapshot.
type ReorderStats struct {
	InOrder      uint64 // packets released immediately
	OutOfOrder   uint64 // packets that had to wait for a predecessor
	DupDrops     uint64 // duplicate copies discarded
	LateDrops    uint64 // stragglers arriving after a timeout skip
	TimeoutFires uint64 // packets force-released by the gap timeout
	HolesPunched uint64 // losses the engine reported via Skip
	GapSkipped   uint64 // sequence numbers abandoned by a gap timeout
	MaxOccupancy int    // peak buffered entries
	Pending      int    // currently buffered (tombstones included)
	PendingPkts  int    // currently buffered real packets
}

// Stats returns a snapshot of the buffer's counters.
func (r *Reorder) Stats() ReorderStats {
	return ReorderStats{
		InOrder:      r.inOrder,
		OutOfOrder:   r.outOfOrder,
		DupDrops:     r.dupDrops,
		LateDrops:    r.lateDrops,
		TimeoutFires: r.timeoutRel,
		HolesPunched: r.holesPunched,
		GapSkipped:   r.gapSkipped,
		MaxOccupancy: r.maxOccupancy,
		Pending:      r.occupancy,
		PendingPkts:  r.pktOccupancy,
	}
}

// OOOFraction returns the fraction of released packets that arrived out of
// order.
func (s ReorderStats) OOOFraction() float64 {
	total := s.InOrder + s.OutOfOrder
	if total == 0 {
		return 0
	}
	return float64(s.OutOfOrder) / float64(total)
}

// Flush force-releases everything still pending (end of measurement run),
// in per-flow sequence order. Flows are visited in ascending flow-ID order
// so the release sequence — and any attached event recorder's stream — is
// identical across same-seed runs.
func (r *Reorder) Flush() {
	ids := make([]uint64, 0, len(r.flows))
	for id := range r.flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := r.flows[id]
		if f.timer != nil {
			f.timer.Cancel()
			f.timer = nil
		}
		for len(f.pending) > 0 {
			min := ^uint64(0)
			for seq := range f.pending {
				if seq < min {
					min = seq
				}
			}
			e := f.pending[min]
			delete(f.pending, min)
			r.occupancy--
			if e.p != nil {
				r.pktOccupancy--
				f.next = min
				r.emit(obs.KindReorderRelease, e.p, int64(e.at), 1)
				r.release(f, e.p)
			} else {
				f.next = min + 1
			}
		}
	}
}
