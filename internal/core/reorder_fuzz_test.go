package core

import (
	"testing"

	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// FuzzReorder drives the reorder buffer through arbitrary interleavings of
// in-order arrivals, out-of-order arrivals, duplicate copies, hole punches,
// and time advances (firing gap timeouts), then checks the stage's
// contract:
//
//   - per flow, delivered sequence numbers are strictly increasing;
//   - no (flow, seq) is ever delivered twice;
//   - after Flush, the buffer is empty (no leaked entries or tombstones);
//   - occupancy counters never go negative.
//
// The byte stream is an op tape: two bytes per op (opcode, argument).
func FuzzReorder(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 1, 0, 2, 0})             // mint + submit in order
	f.Add([]byte{0, 0, 0, 0, 0, 0, 3, 0, 1, 0, 1, 0}) // out-of-order pair
	f.Add([]byte{0, 0, 1, 0, 4, 0, 4, 1})             // duplicates of a released seq
	f.Add([]byte{0, 0, 0, 0, 5, 0, 1, 0})             // punch a hole, then deliver
	f.Add([]byte{0, 0, 0, 1, 0, 2, 3, 0, 2, 200})     // strand a gap, ride the timeout
	f.Add([]byte{0, 0, 3, 0, 2, 255, 1, 0})           // late straggler after timeout

	f.Fuzz(fuzzReorderOne)
}

func fuzzReorderOne(t *testing.T, data []byte) {
	s := sim.New()
	type key struct{ flow, seq uint64 }
	lastSeq := map[uint64]int64{} // flow -> last delivered seq
	deliveredAt := map[key]bool{}
	r := NewReorder(s, 50*sim.Microsecond, func(p *packet.Packet) {
		k := key{p.FlowID, p.Seq}
		if deliveredAt[k] {
			t.Fatalf("flow %d seq %d delivered twice", p.FlowID, p.Seq)
		}
		deliveredAt[k] = true
		if last, ok := lastSeq[p.FlowID]; ok && int64(p.Seq) <= last {
			t.Fatalf("flow %d delivered seq %d after %d", p.FlowID, p.Seq, last)
		}
		lastSeq[p.FlowID] = int64(p.Seq)
	})
	r.OnLost(func(p *packet.Packet) {})

	nextSeq := map[uint64]uint64{}     // per-flow mint cursor
	inflight := map[uint64][]uint64{}  // minted but not yet submitted
	submitted := map[uint64][]uint64{} // submitted at least once

	pkt := func(flow, seq uint64, dup bool) *packet.Packet {
		return &packet.Packet{FlowID: flow, Seq: seq, IsDup: dup}
	}
	for i := 0; i+1 < len(data); i += 2 {
		op, arg := data[i], data[i+1]
		flow := uint64(arg % 3)
		switch op % 6 {
		case 0: // mint the flow's next sequence (goes in flight)
			seq := nextSeq[flow]
			nextSeq[flow] = seq + 1
			inflight[flow] = append(inflight[flow], seq)
		case 1: // submit the oldest in-flight packet (in order)
			if q := inflight[flow]; len(q) > 0 {
				seq := q[0]
				inflight[flow] = q[1:]
				submitted[flow] = append(submitted[flow], seq)
				r.Submit(pkt(flow, seq, false))
			}
		case 2: // advance virtual time (gap timers may fire)
			s.RunUntil(s.Now() + sim.Duration(arg)*sim.Microsecond)
		case 3: // submit the newest in-flight packet (out of order)
			if q := inflight[flow]; len(q) > 0 {
				seq := q[len(q)-1]
				inflight[flow] = q[:len(q)-1]
				submitted[flow] = append(submitted[flow], seq)
				r.Submit(pkt(flow, seq, false))
			}
		case 4: // submit a duplicate copy of something already submitted
			if q := submitted[flow]; len(q) > 0 {
				seq := q[int(arg)%len(q)]
				r.Submit(pkt(flow, seq, true))
			}
		case 5: // punch: the oldest in-flight packet is declared lost
			if q := inflight[flow]; len(q) > 0 {
				seq := q[0]
				inflight[flow] = q[1:]
				r.Skip(flow, seq)
			}
		}
		if st := r.Stats(); st.Pending < 0 || st.PendingPkts < 0 || st.PendingPkts > st.Pending {
			t.Fatalf("occupancy corrupt: pending=%d pktPending=%d", st.Pending, st.PendingPkts)
		}
	}

	// Drain: fire any armed timers, then flush the rest.
	s.Run()
	r.Flush()
	st := r.Stats()
	if st.Pending != 0 || st.PendingPkts != 0 {
		t.Fatalf("buffer not empty after Flush: pending=%d pktPending=%d", st.Pending, st.PendingPkts)
	}

	// Every accepted packet is eventually delivered exactly once: InOrder
	// packets immediately, OutOfOrder ones via drain, timeout, or Flush.
	// Rejected submissions (dup copies, late stragglers) never enter
	// either counter.
	if got := uint64(len(deliveredAt)); got != st.InOrder+st.OutOfOrder {
		t.Fatalf("delivered %d unique packets, counters say %d in-order + %d buffered",
			got, st.InOrder, st.OutOfOrder)
	}
}
