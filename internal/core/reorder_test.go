package core

import (
	"testing"
	"testing/quick"

	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/xrand"
)

func rp(flow, seq uint64) *packet.Packet {
	return &packet.Packet{ID: flow*1000 + seq, OrigID: flow*1000 + seq, FlowID: flow, Seq: seq}
}

func TestReorderInOrderPassThrough(t *testing.T) {
	s := sim.New()
	var got []uint64
	r := NewReorder(s, sim.Millisecond, func(p *packet.Packet) { got = append(got, p.Seq) })
	for seq := uint64(0); seq < 5; seq++ {
		r.Submit(rp(1, seq))
	}
	if len(got) != 5 {
		t.Fatalf("delivered %d", len(got))
	}
	st := r.Stats()
	if st.InOrder != 5 || st.OutOfOrder != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestReorderHoldsGapThenDrains(t *testing.T) {
	s := sim.New()
	var got []uint64
	r := NewReorder(s, sim.Millisecond, func(p *packet.Packet) { got = append(got, p.Seq) })
	r.Submit(rp(1, 0))
	r.Submit(rp(1, 2)) // held: 1 missing
	r.Submit(rp(1, 3)) // held
	if len(got) != 1 {
		t.Fatalf("out-of-order released early: %v", got)
	}
	r.Submit(rp(1, 1)) // fills the gap
	if len(got) != 4 {
		t.Fatalf("gap fill did not drain: %v", got)
	}
	for i, seq := range got {
		if seq != uint64(i) {
			t.Fatalf("delivery out of order: %v", got)
		}
	}
	st := r.Stats()
	if st.OutOfOrder != 2 || st.MaxOccupancy != 2 || st.Pending != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestReorderTimeoutSkipsGap(t *testing.T) {
	s := sim.New()
	var got []uint64
	r := NewReorder(s, 100*sim.Microsecond, func(p *packet.Packet) { got = append(got, p.Seq) })
	r.Submit(rp(1, 0))
	r.Submit(rp(1, 2)) // seq 1 will never arrive
	s.RunUntil(99 * sim.Microsecond)
	if len(got) != 1 {
		t.Fatal("released before timeout")
	}
	s.RunUntil(150 * sim.Microsecond)
	if len(got) != 2 || got[1] != 2 {
		t.Fatalf("timeout did not release: %v", got)
	}
	if r.Stats().TimeoutFires != 1 {
		t.Fatalf("timeout count %d", r.Stats().TimeoutFires)
	}
}

func TestReorderLateArrivalAfterSkip(t *testing.T) {
	s := sim.New()
	var got []uint64
	r := NewReorder(s, 100*sim.Microsecond, func(p *packet.Packet) { got = append(got, p.Seq) })
	r.Submit(rp(1, 0))
	r.Submit(rp(1, 2))
	s.RunUntil(200 * sim.Microsecond) // skip fires, seq2 released
	late := rp(1, 1)
	r.Submit(late)
	if late.Dropped != packet.DropReorder {
		t.Fatalf("late straggler not dropped: %v", late.Dropped)
	}
	if r.Stats().LateDrops != 1 {
		t.Fatal("late drop not counted")
	}
	if len(got) != 2 {
		t.Fatalf("late straggler delivered: %v", got)
	}
}

func TestReorderDuplicateFirstWins(t *testing.T) {
	s := sim.New()
	var got []uint64
	r := NewReorder(s, sim.Millisecond, func(p *packet.Packet) { got = append(got, p.Seq) })
	a := rp(1, 0)
	b := rp(1, 0)
	b.IsDup = true
	r.Submit(a)
	r.Submit(b)
	if len(got) != 1 {
		t.Fatalf("duplicate delivered twice: %v", got)
	}
	if b.Dropped != packet.DropCancelled {
		t.Fatalf("loser drop reason %v", b.Dropped)
	}
	if r.Stats().DupDrops != 1 {
		t.Fatal("dup drop not counted")
	}
}

func TestReorderDuplicateBothEarly(t *testing.T) {
	s := sim.New()
	var got []uint64
	r := NewReorder(s, sim.Millisecond, func(p *packet.Packet) { got = append(got, p.Seq) })
	a := rp(1, 1)
	b := rp(1, 1)
	b.IsDup = true
	r.Submit(a) // pending (seq 0 missing)
	r.Submit(b) // duplicate of pending
	if r.Stats().DupDrops != 1 {
		t.Fatal("pending duplicate not deduped")
	}
	r.Submit(rp(1, 0))
	if len(got) != 2 {
		t.Fatalf("deliveries %v", got)
	}
}

func TestReorderIndependentFlows(t *testing.T) {
	s := sim.New()
	var got []uint64
	r := NewReorder(s, sim.Millisecond, func(p *packet.Packet) { got = append(got, p.FlowID*100+p.Seq) })
	r.Submit(rp(1, 1)) // flow 1 blocked on seq 0
	r.Submit(rp(2, 0)) // flow 2 independent
	r.Submit(rp(2, 1))
	if len(got) != 2 || got[0] != 200 || got[1] != 201 {
		t.Fatalf("flow isolation broken: %v", got)
	}
}

func TestReorderFlush(t *testing.T) {
	s := sim.New()
	var got []uint64
	r := NewReorder(s, sim.Second, func(p *packet.Packet) { got = append(got, p.Seq) })
	r.Submit(rp(1, 3))
	r.Submit(rp(1, 1))
	r.Submit(rp(1, 5))
	r.Flush()
	if len(got) != 3 {
		t.Fatalf("flush released %d", len(got))
	}
	// Flush must preserve sequence order.
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("flush order: %v", got)
	}
	if r.Stats().Pending != 0 {
		t.Fatal("pending after flush")
	}
}

func TestReorderZeroTimeoutWaitsForever(t *testing.T) {
	s := sim.New()
	count := 0
	r := NewReorder(s, 0, func(p *packet.Packet) { count++ })
	r.Submit(rp(1, 1))
	s.RunUntil(10 * sim.Second)
	if count != 0 {
		t.Fatal("zero-timeout reorder released a gap")
	}
	if s.Pending() != 0 {
		t.Fatal("zero-timeout reorder scheduled timers")
	}
}

func TestReorderNilDeliverPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil deliver did not panic")
		}
	}()
	NewReorder(sim.New(), 0, nil)
}

func TestReorderDelayStamped(t *testing.T) {
	s := sim.New()
	var heldDelay sim.Duration
	r := NewReorder(s, sim.Millisecond, func(p *packet.Packet) {
		if p.Seq == 1 {
			heldDelay = p.ReorderWait()
		}
	})
	early := rp(1, 1)
	early.Done = 0
	r.Submit(early)
	s.RunUntil(300 * sim.Microsecond)
	s.At(300*sim.Microsecond, func() { r.Submit(rp(1, 0)) })
	s.Run()
	if heldDelay != 300*sim.Microsecond {
		t.Fatalf("reorder wait %v, want 300µs", heldDelay)
	}
}

// Property: any permutation of a window of sequences is delivered in order
// and completely (no timeout involved).
func TestQuickReorderAlwaysInOrder(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		s := sim.New()
		var got []uint64
		r := NewReorder(s, 0, func(p *packet.Packet) { got = append(got, p.Seq) })
		perm := xrand.New(seed).Perm(n)
		for _, v := range perm {
			r.Submit(rp(1, uint64(v)))
		}
		if len(got) != n {
			return false
		}
		for i, seq := range got {
			if seq != uint64(i) {
				return false
			}
		}
		return r.Stats().Pending == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with duplicates of every sequence, each sequence is delivered
// exactly once, in order.
func TestQuickReorderDedupComplete(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		s := sim.New()
		delivered := make(map[uint64]int)
		order := []uint64{}
		r := NewReorder(s, 0, func(p *packet.Packet) {
			delivered[p.Seq]++
			order = append(order, p.Seq)
		})
		// Two copies of each seq, submitted in a random interleaving.
		items := make([]uint64, 0, 2*n)
		for i := 0; i < n; i++ {
			items = append(items, uint64(i), uint64(i))
		}
		rng := xrand.New(seed)
		for i := len(items) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			items[i], items[j] = items[j], items[i]
		}
		for _, seq := range items {
			p := rp(1, seq)
			p.IsDup = true
			r.Submit(p)
		}
		for i := 0; i < n; i++ {
			if delivered[uint64(i)] != 1 {
				return false
			}
		}
		for i, seq := range order {
			if seq != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReorderSkipPunchesHole(t *testing.T) {
	s := sim.New()
	var got []uint64
	r := NewReorder(s, sim.Second, func(p *packet.Packet) { got = append(got, p.Seq) })
	r.Submit(rp(1, 0))
	r.Submit(rp(1, 2)) // blocked on seq 1
	if len(got) != 1 {
		t.Fatal("early release")
	}
	r.Skip(1, 1) // engine dropped seq 1
	if len(got) != 2 || got[1] != 2 {
		t.Fatalf("hole punch did not release successor: %v", got)
	}
	if r.Stats().HolesPunched != 1 {
		t.Fatal("hole not counted")
	}
}

func TestReorderSkipAtCursor(t *testing.T) {
	s := sim.New()
	var got []uint64
	r := NewReorder(s, sim.Second, func(p *packet.Packet) { got = append(got, p.Seq) })
	r.Skip(1, 0) // first packet of the flow is lost
	r.Submit(rp(1, 1))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("cursor skip broken: %v", got)
	}
}

func TestReorderSkipFutureThenFill(t *testing.T) {
	s := sim.New()
	var got []uint64
	r := NewReorder(s, sim.Second, func(p *packet.Packet) { got = append(got, p.Seq) })
	r.Skip(1, 2)       // tombstone ahead of the cursor
	r.Submit(rp(1, 3)) // blocked on 0,1
	r.Submit(rp(1, 0))
	r.Submit(rp(1, 1)) // drains 0,1, tombstone 2, then 3
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("tombstone drain: %v", got)
	}
	if r.Stats().Pending != 0 {
		t.Fatal("pending left behind")
	}
}

func TestReorderSkipBelowCursorIgnored(t *testing.T) {
	s := sim.New()
	r := NewReorder(s, sim.Second, func(p *packet.Packet) {})
	r.Submit(rp(1, 0))
	r.Skip(1, 0) // already released
	if r.Stats().HolesPunched != 0 {
		t.Fatal("stale skip counted")
	}
}

func TestReorderTimeoutReleasesAllExpired(t *testing.T) {
	// The regression behind the E1 artifact: multiple gaps must clear in
	// ONE timeout pass, not one gap per timeout period.
	s := sim.New()
	var got []uint64
	r := NewReorder(s, 100*sim.Microsecond, func(p *packet.Packet) { got = append(got, p.Seq) })
	// Gaps at 0,2,4,6: pending 1,3,5,7 all submitted now.
	for _, seq := range []uint64{1, 3, 5, 7} {
		r.Submit(rp(1, seq))
	}
	s.RunUntil(150 * sim.Microsecond)
	if len(got) != 4 {
		t.Fatalf("one timeout pass released %d of 4 expired packets", len(got))
	}
	if s.Now() > 150*sim.Microsecond {
		t.Fatal("took multiple timeout periods")
	}
}

func TestReorderFlushTombstones(t *testing.T) {
	s := sim.New()
	var got []uint64
	r := NewReorder(s, sim.Second, func(p *packet.Packet) { got = append(got, p.Seq) })
	r.Skip(1, 1)
	r.Submit(rp(1, 2))
	r.Flush()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("flush with tombstone: %v", got)
	}
}
