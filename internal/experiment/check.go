package experiment

import (
	"fmt"

	"mpdp/internal/sim"
)

// CheckShapes runs a fast battery of the suite's headline qualitative
// claims and returns a list of violations (empty = all shapes hold). It is
// the CLI-facing twin of the TestHeadlineShapes test: something a user can
// run after modifying the data plane to see whether the paper's story
// still stands on their machine.
func CheckShapes(opts SuiteOpts) ([]string, error) {
	opts.fill()
	var bad []string
	seed := opts.Seed + 4

	// 1. Motivation: interference inflates the single-path tail far more
	//    than the median.
	clean, err := Run(RunConfig{
		Seed: seed, NumPaths: 1, Policy: "single", Util: 0.5,
		Interference: "none", Duration: 10 * sim.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	noisy, err := Run(RunConfig{
		Seed: seed, NumPaths: 1, Policy: "single", Util: 0.5,
		Interference: "heavy", Duration: 10 * sim.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	tailBlow := float64(noisy.Latency.P99) / float64(clean.Latency.P99)
	medBlow := float64(noisy.Latency.P50) / float64(clean.Latency.P50)
	if tailBlow < 5 {
		bad = append(bad, fmt.Sprintf("E1 shape: heavy-interference tail blowup only %.1fx (want >= 5x)", tailBlow))
	}
	if medBlow > tailBlow/2 {
		bad = append(bad, fmt.Sprintf("E1 shape: median blowup %.1fx not well below tail blowup %.1fx", medBlow, tailBlow))
	}

	// 2. Headline: mpdp p99 well below rss at 70% load.
	rss, err := RunSeeds(RunConfig{
		Seed: seed, Policy: "rss", Util: 0.7, Interference: "moderate",
		Duration: 10 * sim.Millisecond,
	}, 3)
	if err != nil {
		return nil, err
	}
	mpdp, err := RunSeeds(RunConfig{
		Seed: seed, Policy: "mpdp", Util: 0.7, Interference: "moderate",
		Duration: 10 * sim.Millisecond,
	}, 3)
	if err != nil {
		return nil, err
	}
	if MeanP99Micros(mpdp) >= MeanP99Micros(rss)/1.5 {
		bad = append(bad, fmt.Sprintf("E2 shape: mpdp p99 %.1fus not well below rss %.1fus",
			MeanP99Micros(mpdp), MeanP99Micros(rss)))
	}

	// 3. Duplication discipline: dup-all ~100% overhead; mpdp within budget.
	dupAll, err := Run(RunConfig{
		Seed: seed, Policy: "dup-all", Util: 0.8, Interference: "moderate",
		Duration: 8 * sim.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	if dupAll.DupOverhead < 0.99 {
		bad = append(bad, fmt.Sprintf("E7 shape: dup-all overhead %.2f (want ~1.0)", dupAll.DupOverhead))
	}
	budgeted, err := Run(RunConfig{
		Seed: seed, Policy: "mpdp", Util: 0.8, Interference: "moderate",
		Duration: 8 * sim.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	if budgeted.DupOverhead > 0.26 {
		bad = append(bad, fmt.Sprintf("E7 shape: mpdp dup overhead %.2f exceeds the 25%% budget", budgeted.DupOverhead))
	}

	// 4. Ordering discipline: rss never reorders; in-order delivery holds.
	if f := rss[0].Reorder.OOOFraction(); f != 0 {
		bad = append(bad, fmt.Sprintf("E8 shape: rss OOO fraction %.4f != 0", f))
	}

	// 5. Conservation: nothing is silently lost.
	for _, r := range mpdp {
		if r.Delivered+r.Lost != r.Offered {
			bad = append(bad, fmt.Sprintf("accounting: delivered %d + lost %d != offered %d",
				r.Delivered, r.Lost, r.Offered))
		}
	}
	return bad, nil
}
