package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// LoadConfig reads a RunConfig from a JSON file. Durations are plain
// nanosecond integers (virtual time), e.g.:
//
//	{
//	  "Seed": 7,
//	  "NumPaths": 4,
//	  "Policy": "mpdp",
//	  "Util": 0.7,
//	  "Interference": "moderate",
//	  "Duration": 50000000
//	}
//
// Unknown fields are rejected so typos in experiment configs fail loudly
// instead of silently taking defaults.
func LoadConfig(path string) (RunConfig, error) {
	var cfg RunConfig
	data, err := os.ReadFile(path)
	if err != nil {
		return cfg, fmt.Errorf("experiment: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("experiment: parsing %s: %w", path, err)
	}
	return cfg, nil
}

// SaveConfig writes a RunConfig as indented JSON, for seeding new
// experiment files from a known-good configuration.
func SaveConfig(path string, cfg RunConfig) error {
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
