package experiment

import (
	"os"
	"path/filepath"
	"testing"

	"mpdp/internal/sim"
	"mpdp/internal/trace"
	"mpdp/internal/workload"
	"mpdp/internal/xrand"
)

func TestConfigSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json")
	want := RunConfig{
		Seed: 9, NumPaths: 8, ChainLen: 5, Policy: "flowlet",
		Util: 0.65, Arrival: "onoff", BurstDuty: 0.2,
		Interference: "heavy", Qdisc: "drr",
		Duration: 12 * sim.Millisecond,
	}
	if err := SaveConfig(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != want.Seed || got.Policy != want.Policy || got.Duration != want.Duration ||
		got.Qdisc != want.Qdisc || got.BurstDuty != want.BurstDuty {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// The loaded config must actually run.
	if _, err := Run(got); err != nil {
		t.Fatalf("loaded config does not run: %v", err)
	}
}

func TestLoadConfigRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"Polcy": "mpdp"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(path); err == nil {
		t.Fatal("typo field accepted")
	}
}

func TestLoadConfigMissingFile(t *testing.T) {
	if _, err := LoadConfig("/nonexistent/run.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunFromTraceFile(t *testing.T) {
	// Record a short synthetic trace, then run the data plane on it.
	dir := t.TempDir()
	path := filepath.Join(dir, "w.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(3)
	gen := workload.NewTraffic(workload.TrafficConfig{
		Arrival: workload.NewPoisson(rng.Split(), 2000),
		Size:    workload.IMIX{Rng: rng.Split()},
		Flows:   16,
		Rng:     rng.Split(),
	})
	var now sim.Time
	const pkts = 2000
	for i := 0; i < pkts; i++ {
		now += 2000
		if err := w.Write(now, gen.NextPacket().Data); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := Run(RunConfig{Seed: 1, Policy: "mpdp", TraceFile: path, Interference: "moderate"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Offered != pkts {
		t.Fatalf("offered %d, want %d", r.Offered, pkts)
	}
	if r.Delivered == 0 || r.Latency.Count == 0 {
		t.Fatal("trace run produced no measurements")
	}
}

func TestRunFromTraceDeterministic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.trc")
	f, _ := os.Create(path)
	w, _ := trace.NewWriter(f)
	rng := xrand.New(8)
	gen := workload.NewTraffic(workload.TrafficConfig{
		Arrival: workload.CBR{Gap: 1500},
		Size:    workload.Fixed{Bytes: 400},
		Flows:   8,
		Rng:     rng,
	})
	var now sim.Time
	for i := 0; i < 1000; i++ {
		now += 1500
		w.Write(now, gen.NextPacket().Data)
	}
	w.Flush()
	f.Close()

	cfg := RunConfig{Seed: 4, Policy: "jsq", TraceFile: path, Interference: "light"}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency.P99 != b.Latency.P99 || a.Delivered != b.Delivered {
		t.Fatal("trace replay not deterministic")
	}
}
