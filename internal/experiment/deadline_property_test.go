package experiment

import (
	"bytes"
	"testing"

	"mpdp/internal/core"
	"mpdp/internal/obs"
	"mpdp/internal/sim"
)

// P3 property, part 1: across randomized seeds, loads and impairments, the
// total duplicated bytes of a deadline run never exceed the configured
// DupBudget's hard allowance (burst + rate·horizon), and the engine's
// dup-byte accounting agrees with the bucket's own ledger.
func TestDeadlineDupBudgetNeverExceeded(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	const (
		rate  = 256 << 10 // 256 KiB/s
		burst = 4 << 10   // 4 KiB
	)
	utils := []float64{0.5, 0.9}
	intfs := []string{"none", "heavy"}
	arrivals := []string{"poisson", "onoff"}
	n := 0
	for seed := uint64(1); seed <= 3; seed++ {
		for _, util := range utils {
			for _, intf := range intfs {
				cfg := RunConfig{
					Seed:           seed,
					Policy:         "deadline",
					Util:           util,
					Interference:   intf,
					Arrival:        arrivals[n%len(arrivals)],
					Deadline:       100 * sim.Microsecond, // tight: escalations are common
					DupBudgetBps:   rate,
					DupBudgetBurst: burst,
					Duration:       5 * sim.Millisecond,
				}
				n++
				r, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				// Spends stop with ingress, so the horizon bounds elapsed
				// virtual time at the last possible TrySpend.
				allow := core.NewDupBudget(rate, burst).Allowance(cfg.Duration)
				if float64(r.BudgetSpentBytes) > allow {
					t.Fatalf("seed=%d util=%.1f intf=%s: spent %d bytes past the %.0f-byte allowance",
						seed, util, intf, r.BudgetSpentBytes, allow)
				}
				// Without faults there are no canary mirrors, so every
				// duplicated byte the engine billed came out of the bucket.
				if r.DupBytes != r.BudgetSpentBytes {
					t.Fatalf("seed=%d util=%.1f intf=%s: engine billed %d dup bytes, bucket granted %d",
						seed, util, intf, r.DupBytes, r.BudgetSpentBytes)
				}
				if r.DeadlineHits+r.DeadlineMisses != r.Delivered {
					t.Fatalf("seed=%d: deadline scored %d of %d deliveries",
						seed, r.DeadlineHits+r.DeadlineMisses, r.Delivered)
				}
			}
		}
	}
}

// P3 property, part 2: with budget zero, the deadline policy degrades exactly
// to best-single-path — the flight-recorder stream of a budget-zero run is
// byte-identical to a run of the explicitly duplication-free variant.
func TestDeadlineZeroBudgetByteIdenticalToNoDup(t *testing.T) {
	if testing.Short() {
		t.Skip("stream-identity sweep skipped in -short mode")
	}
	record := func(seed uint64, policy string, budgetBps float64) []byte {
		rec := obs.NewRecorder(1 << 19)
		cfg := RunConfig{
			Seed:         seed,
			Policy:       policy,
			Util:         0.8,
			Interference: "moderate",
			Deadline:     50 * sim.Microsecond,
			DupBudgetBps: budgetBps,
			Duration:     4 * sim.Millisecond,
			EventSink:    rec,
		}
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		if rec.Overwritten() != 0 {
			t.Fatalf("recorder overwrote %d events; raise capacity", rec.Overwritten())
		}
		var buf bytes.Buffer
		if _, err := rec.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for seed := uint64(1); seed <= 3; seed++ {
		zero := record(seed, "deadline", -1) // negative = budget zero
		noDup := record(seed, "deadline-nodup", 0)
		if !bytes.Equal(zero, noDup) {
			t.Fatalf("seed %d: budget-zero stream differs from the no-dup stream", seed)
		}
		// Sanity that the identity has teeth: with a real budget the same
		// workload must produce a different stream (duplication happened).
		funded := record(seed, "deadline", 0) // 0 = policy default budget
		if bytes.Equal(zero, funded) {
			t.Fatalf("seed %d: funded run identical to budget-zero run — no duplication occurred, the property is vacuous", seed)
		}
	}
}
