package experiment

import (
	"runtime"
	"sync"
)

// RunMany executes independent run configurations concurrently on a worker
// pool and returns results in input order. Each Run owns a private
// simulator and RNG stream, so results are bit-identical to serial
// execution — parallelism changes wall-clock time only.
//
// workers <= 0 uses GOMAXPROCS.
func RunMany(cfgs []RunConfig, workers int) ([]RunResult, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}

	results := make([]RunResult, len(cfgs))
	errs := make([]error, len(cfgs))
	jobs := make(chan int)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = Run(cfgs[i])
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// seedConfigs expands one configuration into `seeds` variants with
// decorrelated seeds (the same expansion RunSeeds uses).
func seedConfigs(cfg RunConfig, seeds int) []RunConfig {
	if seeds <= 0 {
		seeds = 1
	}
	out := make([]RunConfig, seeds)
	for i := 0; i < seeds; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*1_000_003
		out[i] = c
	}
	return out
}
