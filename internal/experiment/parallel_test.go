package experiment

import (
	"fmt"
	"testing"

	"mpdp/internal/fault"
	"mpdp/internal/sim"
)

// resultRow canonicalizes a RunResult to one CSV-style line covering every
// externally meaningful measurement. Two runs of the same config must
// produce identical rows, bit for bit.
func resultRow(r RunResult) string {
	return fmt.Sprintf("%s,%d,%d,%d,%d,%d,%d,%d,%.9f,%.9f,%.9f,%d,%d,%v,%d,%d,%d,%d",
		r.Config.Policy, r.Config.Seed,
		r.Latency.P50, r.Latency.P99, r.Latency.Max,
		r.Offered, r.Delivered, r.Lost,
		r.DeliveryRate, r.GoodputGbps, r.DupOverhead,
		r.Quarantines, r.Canaries,
		r.PerPathServed,
		r.Reorder.InOrder, r.Reorder.OutOfOrder, r.Reorder.HolesPunched, r.Reorder.DupDrops)
}

// TestRunManyDeterministicAcrossWorkers runs the same config grid serially
// and on a worker pool and requires byte-identical rows: scheduling across
// goroutines must never leak into results, including under fault injection.
func TestRunManyDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism grid skipped in -short mode")
	}
	var cfgs []RunConfig
	plan := &fault.Plan{
		Seed:  3,
		Lanes: []fault.LaneFailure{{Path: 0, At: 1 * sim.Millisecond, Mode: fault.ModeBlackhole}},
	}
	for _, pol := range []string{"rss", "jsq", "mpdp"} {
		for seed := uint64(1); seed <= 2; seed++ {
			cfgs = append(cfgs, RunConfig{
				Seed: seed, Policy: pol, Util: 0.7,
				Interference: "moderate", Duration: 3 * sim.Millisecond,
			})
		}
		cfgs = append(cfgs, RunConfig{
			Seed: 9, Policy: pol, Util: 0.6,
			Duration: 3 * sim.Millisecond, Fault: plan,
		})
	}

	serial, err := RunMany(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunMany(cfgs, 8)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunMany(cfgs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(cfgs) || len(pooled) != len(cfgs) {
		t.Fatalf("result count %d/%d, want %d", len(serial), len(pooled), len(cfgs))
	}
	for i := range cfgs {
		s, p, a := resultRow(serial[i]), resultRow(pooled[i]), resultRow(again[i])
		if s != p {
			t.Errorf("config %d (%s seed %d): serial != pooled\n  serial: %s\n  pooled: %s",
				i, cfgs[i].Policy, cfgs[i].Seed, s, p)
		}
		if p != a {
			t.Errorf("config %d (%s seed %d): pooled runs differ between invocations\n  1st: %s\n  2nd: %s",
				i, cfgs[i].Policy, cfgs[i].Seed, p, a)
		}
	}
}
