package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Plot renders the figure as an ASCII chart: one glyph per curve, y
// log-scaled when the data spans more than two decades (latency figures
// always do). Intended for terminal inspection; the Render data block
// remains the precise output.
func (f *Figure) Plot(w io.Writer, width, height int) error {
	var b strings.Builder
	f.plotTo(&b, width, height)
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *Figure) plotTo(w *strings.Builder, width, height int) {
	if width < 30 {
		width = 72
	}
	if height < 8 {
		height = 20
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

	// Bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, c := range f.Curves {
		for _, p := range c.Points {
			points++
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if points == 0 {
		fmt.Fprintf(w, "(%s: no data)\n", f.Name)
		return
	}
	logY := minY > 0 && maxY/math.Max(minY, 1e-9) > 100
	yOf := func(v float64) float64 {
		if logY {
			return math.Log10(v)
		}
		return v
	}
	loY, hiY := yOf(math.Max(minY, 1e-9)), yOf(math.Max(maxY, 1e-9))
	if hiY == loY {
		hiY = loY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for ci, c := range f.Curves {
		g := glyphs[ci%len(glyphs)]
		for _, p := range c.Points {
			x := int((p.X - minX) / (maxX - minX) * float64(width-1))
			yv := yOf(math.Max(p.Y, 1e-9))
			y := int((yv - loY) / (hiY - loY) * float64(height-1))
			row := height - 1 - y
			if row >= 0 && row < height && x >= 0 && x < width {
				grid[row][x] = g
			}
		}
	}

	scale := "linear"
	if logY {
		scale = "log"
	}
	fmt.Fprintf(w, "-- %s: %s [y %s] --\n", f.Name, f.Title, scale)
	yLabel := func(row int) string {
		frac := float64(height-1-row) / float64(height-1)
		v := loY + frac*(hiY-loY)
		if logY {
			v = math.Pow(10, v)
		}
		return fmt.Sprintf("%10.2f", v)
	}
	for row := 0; row < height; row++ {
		label := strings.Repeat(" ", 10)
		if row == 0 || row == height-1 || row == height/2 {
			label = yLabel(row)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(grid[row]))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s  %-*s%s\n", strings.Repeat(" ", 10), width-len(trimFloat(maxX)), trimFloat(minX), trimFloat(maxX))
	legend := make([]string, 0, len(f.Curves))
	for ci, c := range f.Curves {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[ci%len(glyphs)], c.Label))
	}
	fmt.Fprintf(w, "%s  x=%s y=%s   %s\n", strings.Repeat(" ", 10), f.XLabel, f.YLabel, strings.Join(legend, " "))
}
