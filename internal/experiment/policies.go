package experiment

import (
	"fmt"
	"sort"

	"mpdp/internal/core"
	"mpdp/internal/sim"
	"mpdp/internal/xrand"
)

// PolicyParams carries the tunables of the adaptive/duplicating policies.
type PolicyParams struct {
	FlowletTimeout sim.Duration
	DupThreshold   float64
	DupBudget      float64
	DupK           int
	ClassAware     bool

	// Deadline-aware policy knobs. Deadline is the fallback per-packet
	// budget, DeadlineMargin the jitter multiplier. DupBudgetBps /
	// DupBudgetBurst configure the duplication-bytes token bucket: both
	// zero takes the policy default (1 MiB/s, 64 KiB burst); a NEGATIVE
	// DupBudgetBps means budget zero — duplication disabled outright, the
	// degradation case the P3 property test pins down.
	Deadline       sim.Duration
	DeadlineMargin float64
	DupBudgetBps   float64
	DupBudgetBurst float64
}

// policyBuilders maps CLI/table names to constructors.
var policyBuilders = map[string]func(rng *xrand.Rand, p PolicyParams) core.Policy{
	"single": func(rng *xrand.Rand, p PolicyParams) core.Policy { return core.SinglePath{} },
	"rss":    func(rng *xrand.Rand, p PolicyParams) core.Policy { return core.RSSHash{} },
	"rr":     func(rng *xrand.Rand, p PolicyParams) core.Policy { return &core.RoundRobin{} },
	"random": func(rng *xrand.Rand, p PolicyParams) core.Policy { return &core.RandomPick{Rng: rng} },
	"jsq":    func(rng *xrand.Rand, p PolicyParams) core.Policy { return core.JSQ{} },
	"po2":    func(rng *xrand.Rand, p PolicyParams) core.Policy { return &core.PowerOfTwo{Rng: rng} },
	"flowlet": func(rng *xrand.Rand, p PolicyParams) core.Policy {
		t := p.FlowletTimeout
		if t == 0 {
			t = 500 * sim.Microsecond
		}
		return core.NewFlowlet(t)
	},
	"letflow": func(rng *xrand.Rand, p PolicyParams) core.Policy {
		t := p.FlowletTimeout
		if t == 0 {
			t = 500 * sim.Microsecond
		}
		return core.NewLetFlow(t, rng)
	},
	"least-lat": func(rng *xrand.Rand, p PolicyParams) core.Policy { return core.LeastLatency{} },
	"wrr":       func(rng *xrand.Rand, p PolicyParams) core.Policy { return &core.WeightedRR{} },
	"dup-all": func(rng *xrand.Rand, p PolicyParams) core.Policy {
		k := p.DupK
		if k == 0 {
			k = 2
		}
		return core.Redundant{K: k}
	},
	"mpdp": func(rng *xrand.Rand, p PolicyParams) core.Policy {
		cfg := core.DefaultMPDPConfig()
		if p.FlowletTimeout != 0 {
			cfg.FlowletTimeout = p.FlowletTimeout
		}
		if p.DupThreshold != 0 {
			cfg.DupThreshold = p.DupThreshold
		}
		if p.DupBudget != 0 {
			cfg.DupBudget = p.DupBudget
		}
		cfg.ClassAware = p.ClassAware
		return core.NewMPDP(cfg)
	},
	"mpdp-nodup": func(rng *xrand.Rand, p PolicyParams) core.Policy {
		cfg := core.DefaultMPDPConfig()
		if p.FlowletTimeout != 0 {
			cfg.FlowletTimeout = p.FlowletTimeout
		}
		cfg.DupBudget = 0
		return core.NewMPDP(cfg)
	},
	"deadline": func(rng *xrand.Rand, p PolicyParams) core.Policy {
		return core.NewDeadlineAware(deadlineConfig(p))
	},
	"deadline-nodup": func(rng *xrand.Rand, p PolicyParams) core.Policy {
		// The budget-free twin: identical best-single-path choice, never a
		// duplicate. P3 asserts "deadline" with budget zero is byte-identical
		// to this.
		cfg := deadlineConfig(p)
		cfg.Budget = nil
		return core.NewDeadlineAware(cfg)
	},
}

// deadlineConfig maps PolicyParams onto the DeadlineAware configuration.
func deadlineConfig(p PolicyParams) core.DeadlineAwareConfig {
	cfg := core.DefaultDeadlineAwareConfig()
	if p.Deadline != 0 {
		cfg.Deadline = p.Deadline
	}
	if p.DeadlineMargin != 0 {
		cfg.Margin = p.DeadlineMargin
	}
	switch {
	case p.DupBudgetBps < 0:
		cfg.Budget = core.NewDupBudget(0, 0) // deny-all: budget zero
	case p.DupBudgetBps != 0 || p.DupBudgetBurst != 0:
		cfg.Budget = core.NewDupBudget(p.DupBudgetBps, p.DupBudgetBurst)
	}
	return cfg
}

// NewPolicy builds a policy by name. The DupBudget/FlowletTimeout fields of
// params apply to the adaptive policies; others ignore them.
func NewPolicy(name string, rng *xrand.Rand, params PolicyParams) (core.Policy, error) {
	b, ok := policyBuilders[name]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown policy %q (have %v)", name, PolicyNames())
	}
	return b(rng, params), nil
}

// PolicyNames lists the registered policy names, sorted.
func PolicyNames() []string {
	out := make([]string, 0, len(policyBuilders))
	for n := range policyBuilders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
