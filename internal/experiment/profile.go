package experiment

import (
	"fmt"

	"mpdp/internal/obs"
	"mpdp/internal/sim"
)

// ProfileOpts configures a diagnostic profile run: one representative
// workload with the full observability plane attached.
type ProfileOpts struct {
	Seed      uint64
	Exemplars int // K slowest packets to keep (default 8)

	// Workload shape (defaults mirror the E-series baseline).
	Policy       string  // default "mpdp"
	Util         float64 // default 0.7
	Interference string  // default "moderate"
	Quick        bool    // shrink the horizon for CI smoke runs

	// SamplePeriod is the lane-gauge sampling period (default 20 µs).
	SamplePeriod sim.Duration
}

// ProfileOutput bundles the rendered result with the raw observability
// artifacts so callers can export them (event stream, Chrome trace, CSV).
type ProfileOutput struct {
	Result Result
	Run    RunResult

	Report     *obs.Report
	Exemplars  []obs.Exemplar
	Events     []obs.Event // full recorded stream, emission order
	LaneSeries []obs.LaneSeries
}

// Profile runs one instrumented simulation: flight recorder on, tail
// exemplars collected, lane gauges sampled. It answers "where did the
// slowest packets' time go, and what were the lanes doing meanwhile".
func Profile(opts ProfileOpts) (*ProfileOutput, error) {
	if opts.Exemplars <= 0 {
		opts.Exemplars = 8
	}
	if opts.Policy == "" {
		opts.Policy = "mpdp"
	}
	if opts.Util == 0 {
		opts.Util = 0.7
	}
	if opts.Interference == "" {
		opts.Interference = "moderate"
	}
	if opts.SamplePeriod <= 0 {
		opts.SamplePeriod = 20 * sim.Microsecond
	}
	duration := 50 * sim.Millisecond
	if opts.Quick {
		duration = 10 * sim.Millisecond
	}

	rec := obs.NewRecorder(0) // DefaultRecorderCap: the tail of the run
	cfg := RunConfig{
		Seed:         opts.Seed,
		Policy:       opts.Policy,
		Util:         opts.Util,
		Interference: opts.Interference,
		Duration:     duration,

		Exemplars:    opts.Exemplars,
		EventSink:    rec,
		SamplePeriod: opts.SamplePeriod,
		// Windows sized so the lane figures have ~25 points.
		TimelineWindow: duration / 25,
	}
	res, err := Run(cfg)
	if err != nil {
		return nil, err
	}

	report := obs.BuildReport(res.Exemplars)
	out := &ProfileOutput{
		Run:        res,
		Report:     report,
		Exemplars:  res.Exemplars,
		Events:     rec.Events(),
		LaneSeries: res.LaneSeries,
	}

	// Renderable result: attribution table + lane gauge figures.
	attr := Table{
		Name:    "profile",
		Title:   fmt.Sprintf("top-%d tail exemplars (%s, util %.2f, %s interference, seed %d)", len(res.Exemplars), opts.Policy, opts.Util, opts.Interference, opts.Seed),
		Columns: []string{"rank", "latency µs", "lane", "pre-queue µs", "queue-wait µs", "service µs", "reorder µs", "dup"},
	}
	for i, ex := range res.Exemplars {
		dup := "-"
		if ex.Duplicated {
			dup = "yes"
		}
		attr.Rows = append(attr.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.1f", float64(ex.Latency)/1000),
			fmt.Sprintf("%d", ex.WinnerPath),
			fmt.Sprintf("%.1f", float64(ex.Attr.PreQueue)/1000),
			fmt.Sprintf("%.1f", float64(ex.Attr.QueueWait)/1000),
			fmt.Sprintf("%.1f", float64(ex.Attr.Service)/1000),
			fmt.Sprintf("%.1f", float64(ex.Attr.ReorderWait)/1000),
			dup,
		})
	}

	depthFig := Figure{
		Name: "profile", Title: "lane queue depth over time (mean per window)",
		XLabel: "t_ms", YLabel: "depth",
	}
	rateFig := Figure{
		Name: "profile", Title: "lane service rate over time (completions per sample)",
		XLabel: "t_ms", YLabel: "rate",
	}
	for _, ls := range res.LaneSeries {
		dc := Curve{Label: fmt.Sprintf("lane%d", ls.Lane)}
		for _, pt := range ls.Depth.Points() {
			dc.Points = append(dc.Points, Point{X: float64(pt.Start) / 1e6, Y: pt.Hist.Mean()})
		}
		depthFig.Curves = append(depthFig.Curves, dc)
		rc := Curve{Label: fmt.Sprintf("lane%d", ls.Lane)}
		for _, pt := range ls.Rate.Points() {
			rc.Points = append(rc.Points, Point{X: float64(pt.Start) / 1e6, Y: pt.Hist.Mean()})
		}
		rateFig.Curves = append(rateFig.Curves, rc)
	}

	out.Result = Result{
		ID:    "profile",
		Title: "diagnostic profile: tail attribution + lane gauges",
		Notes: []string{
			report.Headline(),
			fmt.Sprintf("recorded %d events (%d overwritten by the ring)", rec.Len(), rec.Overwritten()),
			fmt.Sprintf("p99 %.1f µs over %d delivered", float64(res.Latency.P99)/1000, res.Delivered),
		},
		Tables:  []Table{attr},
		Figures: []Figure{depthFig, rateFig},
	}
	return out, nil
}
