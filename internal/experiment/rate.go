package experiment

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseByteRate parses a human-readable byte rate like "1MBps", "500KBps",
// "2.5MBps" or a plain number of bytes per second ("1048576"). Units are
// binary (K=1024) to match the policy defaults; the "Bps"/"B/s" suffix is
// optional after a unit letter. "0" disables the budget.
func ParseByteRate(s string) (float64, error) {
	orig := s
	s = strings.TrimSpace(s)
	upper := strings.ToUpper(s)
	upper = strings.TrimSuffix(upper, "B/S")
	upper = strings.TrimSuffix(upper, "BPS")
	mult := 1.0
	switch {
	case strings.HasSuffix(upper, "G"):
		mult, upper = 1<<30, strings.TrimSuffix(upper, "G")
	case strings.HasSuffix(upper, "M"):
		mult, upper = 1<<20, strings.TrimSuffix(upper, "M")
	case strings.HasSuffix(upper, "K"):
		mult, upper = 1<<10, strings.TrimSuffix(upper, "K")
	case strings.HasSuffix(upper, "B"):
		// plain bytes: "64B", or bare "...B" left from "64Bps"
		upper = strings.TrimSuffix(upper, "B")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(upper), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("experiment: bad byte rate %q (want e.g. 1MBps, 500KBps, or bytes/sec)", orig)
	}
	return v * mult, nil
}
