// Package experiment is MPDP's evaluation harness: a registry of named
// experiments (E1–E12), each of which configures workload + data plane,
// runs them in virtual time, and emits the table or figure it reproduces
// as aligned ASCII and as CSV.
//
// See DESIGN.md §4 for the experiment index and the source-text mismatch
// notice explaining why the suite is reconstructed rather than copied from
// figure numbers.
package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Point is one (x, y) sample of a curve.
type Point struct {
	X, Y float64
}

// Curve is one labelled line of a figure.
type Curve struct {
	Label  string
	Points []Point
}

// Figure is the reproduction of one paper figure: multiple curves over a
// shared x axis.
type Figure struct {
	Name   string // e.g. "E2"
	Title  string
	XLabel string
	YLabel string
	Curves []Curve
}

// Table is the reproduction of one paper table.
type Table struct {
	Name    string
	Title   string
	Columns []string
	Rows    [][]string
}

// Result is everything an experiment produced.
type Result struct {
	ID      string
	Title   string
	Figures []Figure
	Tables  []Table
	Notes   []string
}

// Render writes the result as human-readable ASCII. The output is built
// in memory and written in one call so a write failure (full disk, closed
// pipe) is reported rather than yielding a silently truncated report.
func (r *Result) Render(w io.Writer) error {
	var b strings.Builder
	r.renderTo(&b)
	_, err := io.WriteString(w, b.String())
	return err
}

func (r *Result) renderTo(b *strings.Builder) {
	fmt.Fprintf(b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(b, "note: %s\n", n)
	}
	for i := range r.Tables {
		fmt.Fprintln(b)
		r.Tables[i].renderTo(b)
	}
	for i := range r.Figures {
		fmt.Fprintln(b)
		r.Figures[i].renderTo(b)
	}
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	var b strings.Builder
	t.renderTo(&b)
	_, err := io.WriteString(w, b.String())
	return err
}

func (t *Table) renderTo(b *strings.Builder) {
	fmt.Fprintf(b, "-- %s: %s --\n", t.Name, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var line strings.Builder
		for i, cell := range cells {
			if i > 0 {
				line.WriteString("  ")
			}
			line.WriteString(pad(cell, widths[i]))
		}
		fmt.Fprintln(b, strings.TrimRight(line.String(), " "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// Render writes the figure as a column-per-curve data block: one x column
// plus one y column per curve, aligned, ready for plotting.
func (f *Figure) Render(w io.Writer) error {
	var b strings.Builder
	f.renderTo(&b)
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *Figure) renderTo(w *strings.Builder) {
	fmt.Fprintf(w, "-- %s: %s --\n", f.Name, f.Title)
	fmt.Fprintf(w, "   x = %s, y = %s\n", f.XLabel, f.YLabel)
	// Merge x values across curves.
	xsSet := map[float64]bool{}
	for _, c := range f.Curves {
		for _, p := range c.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	cols := []string{f.XLabel}
	for _, c := range f.Curves {
		cols = append(cols, c.Label)
	}
	tab := Table{Name: f.Name, Title: "data", Columns: cols}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, c := range f.Curves {
			cell := ""
			for _, p := range c.Points {
				if p.X == x {
					cell = trimFloat(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		tab.Rows = append(tab.Rows, row)
	}
	// Render just the data block (skip the table header line).
	widths := make([]int, len(tab.Columns))
	for i, c := range tab.Columns {
		widths[i] = len(c)
	}
	for _, row := range tab.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var lb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				lb.WriteString("  ")
			}
			lb.WriteString(pad(cell, widths[i]))
		}
		fmt.Fprintln(w, strings.TrimRight(lb.String(), " "))
	}
	line(tab.Columns)
	for _, row := range tab.Rows {
		line(row)
	}
}

// trimFloat formats a float compactly (no trailing zeros).
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// CSV writes the result's tables and figures as CSV blocks. A write
// failure is returned: a results file that silently loses rows is worse
// than no results file.
func (r *Result) CSV(w io.Writer) error {
	var b strings.Builder
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "# table,%s,%s\n", t.Name, csvEscape(t.Title))
		fmt.Fprintln(&b, strings.Join(mapEsc(t.Columns), ","))
		for _, row := range t.Rows {
			fmt.Fprintln(&b, strings.Join(mapEsc(row), ","))
		}
		fmt.Fprintln(&b)
	}
	for _, f := range r.Figures {
		fmt.Fprintf(&b, "# figure,%s,%s\n", f.Name, csvEscape(f.Title))
		for _, c := range f.Curves {
			fmt.Fprintf(&b, "curve,%s\n", csvEscape(c.Label))
			for _, p := range c.Points {
				fmt.Fprintf(&b, "%s,%s\n", trimFloat(p.X), trimFloat(p.Y))
			}
		}
		fmt.Fprintln(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func mapEsc(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = csvEscape(s)
	}
	return out
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
