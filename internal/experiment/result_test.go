package experiment

import (
	"strings"
	"testing"
)

func TestTableRenderAligned(t *testing.T) {
	tab := Table{
		Name: "T1", Title: "demo",
		Columns: []string{"policy", "p99"},
		Rows:    [][]string{{"rss", "123.4"}, {"mpdp", "7.0"}},
	}
	var b strings.Builder
	tab.Render(&b)
	out := b.String()
	if !strings.Contains(out, "T1: demo") {
		t.Fatalf("missing header: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "rss ") {
		t.Fatalf("row misaligned: %q", lines[3])
	}
}

func TestFigureRenderMergesX(t *testing.T) {
	fig := Figure{
		Name: "F1", Title: "demo", XLabel: "x", YLabel: "y",
		Curves: []Curve{
			{Label: "a", Points: []Point{{1, 10}, {2, 20}}},
			{Label: "b", Points: []Point{{2, 200}, {3, 300}}},
		},
	}
	var b strings.Builder
	fig.Render(&b)
	out := b.String()
	for _, want := range []string{"F1: demo", "a", "b", "300"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
	// x=2 row must contain both 20 and 200.
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "2 ") && strings.Contains(line, "20") && strings.Contains(line, "200") {
			found = true
		}
	}
	if !found {
		t.Fatalf("merged x row missing: %q", out)
	}
}

func TestResultRenderAndCSV(t *testing.T) {
	res := Result{
		ID: "EX", Title: "example",
		Notes:  []string{"a note"},
		Tables: []Table{{Name: "T", Title: "t", Columns: []string{"c"}, Rows: [][]string{{"v"}}}},
		Figures: []Figure{{
			Name: "F", Title: "f", XLabel: "x", YLabel: "y",
			Curves: []Curve{{Label: "l", Points: []Point{{1, 2}}}},
		}},
	}
	var b strings.Builder
	res.Render(&b)
	for _, want := range []string{"EX: example", "a note", "T: t", "F: f"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("render missing %q", want)
		}
	}
	var c strings.Builder
	res.CSV(&c)
	for _, want := range []string{"# table,T,t", "# figure,F,f", "curve,l", "1,2"} {
		if !strings.Contains(c.String(), want) {
			t.Fatalf("csv missing %q in %q", want, c.String())
		}
	}
}

func TestCSVEscape(t *testing.T) {
	cases := map[string]string{
		"plain":      "plain",
		"a,b":        `"a,b"`,
		`say "hi"`:   `"say ""hi"""`,
		"multi\nrow": "\"multi\nrow\"",
	}
	for in, want := range cases {
		if got := csvEscape(in); got != want {
			t.Errorf("csvEscape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.5:    "1.5",
		2.0:    "2",
		0.1234: "0.1234",
		0:      "0",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPolicyNamesAndFactory(t *testing.T) {
	names := PolicyNames()
	if len(names) < 9 {
		t.Fatalf("only %d policies registered", len(names))
	}
	for _, n := range names {
		p, err := NewPolicy(n, rngForTest(), PolicyParams{})
		if err != nil {
			t.Fatalf("NewPolicy(%s): %v", n, err)
		}
		if p.Name() == "" {
			t.Fatalf("policy %s has empty name", n)
		}
	}
	if _, err := NewPolicy("bogus", rngForTest(), PolicyParams{}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestFigurePlot(t *testing.T) {
	fig := Figure{
		Name: "P", Title: "plot", XLabel: "x", YLabel: "y",
		Curves: []Curve{
			{Label: "a", Points: []Point{{1, 1}, {2, 1000}}},
			{Label: "b", Points: []Point{{1, 500}, {2, 2}}},
		},
	}
	var b strings.Builder
	fig.Plot(&b, 40, 10)
	out := b.String()
	if !strings.Contains(out, "[y log]") {
		t.Fatal("3-decade spread did not switch to log scale")
	}
	for _, want := range []string{"*=a", "+=b", "x=x y=y"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "*") < 2 {
		t.Fatal("curve a glyphs missing")
	}
}

func TestFigurePlotEmpty(t *testing.T) {
	fig := Figure{Name: "E", Title: "empty"}
	var b strings.Builder
	fig.Plot(&b, 40, 10) // must not panic
	if !strings.Contains(b.String(), "no data") {
		t.Fatal("empty plot not flagged")
	}
}

func TestFigurePlotLinearScale(t *testing.T) {
	fig := Figure{
		Name: "L", Title: "lin", XLabel: "x", YLabel: "y",
		Curves: []Curve{{Label: "a", Points: []Point{{0, 10}, {1, 20}, {2, 30}}}},
	}
	var b strings.Builder
	fig.Plot(&b, 40, 10)
	if !strings.Contains(b.String(), "[y linear]") {
		t.Fatal("narrow spread did not stay linear")
	}
}
