package experiment

import (
	"fmt"
	"os"

	"mpdp/internal/core"
	"mpdp/internal/fault"
	"mpdp/internal/invariant"
	"mpdp/internal/nf"
	"mpdp/internal/obs"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/stats"
	"mpdp/internal/trace"
	"mpdp/internal/vnet"
	"mpdp/internal/workload"
	"mpdp/internal/xrand"
)

// RunConfig describes one simulation run of the data plane under a
// packet-level workload. The zero values of most fields take suite
// defaults, so experiments only set what they sweep.
type RunConfig struct {
	Seed     uint64
	NumPaths int     // default 4
	ChainLen int     // preset chain length 1..6, default 3
	Policy   string  // policy name (see NewPolicy), default "mpdp"
	Util     float64 // offered load as a fraction of aggregate capacity, default 0.7

	// TraceFile, when set, replaces the synthetic workload entirely: the
	// recorded packets are replayed at their recorded virtual times and
	// Duration/Util/Arrival/SizeDist are ignored (Duration is derived
	// from the trace span).
	TraceFile string

	// Workload shape.
	Arrival      string       // "poisson" (default), "cbr", "onoff", "mmpp"
	BurstGap     sim.Duration // onoff: gap inside bursts (default mean/10)
	BurstDuty    float64      // onoff: fraction of time in bursts (default 0.1)
	SizeDist     string       // "imix" (default), "fixed:<bytes>", "pareto"
	Flows        int          // flow pool size, default 64
	FlowSkew     float64      // zipf exponent, default 1.05
	BulkFraction float64      // share of bulk-class flows in the pool, default 0.25

	// Host conditions.
	Interference    string // "none" (default), "light", "moderate", "heavy"
	InterferedPaths int
	// SlowdownFor is a scripted override; not serializable to JSON.
	SlowdownFor func(i int) vnet.Slowdown `json:"-"`

	// Policy knobs (used by the mpdp/flowlet/dup policies).
	FlowletTimeout sim.Duration
	DupThreshold   float64
	DupBudget      float64
	DupK           int
	ClassAware     bool

	// Deadline knobs. Deadline > 0 stamps every ingress packet with
	// now+Deadline (any policy; delivery accounting scores hit/miss).
	// DeadlineMargin and the DupBudgetBps/DupBudgetBurst token bucket
	// configure the "deadline" policy; a negative DupBudgetBps means budget
	// zero (duplication disabled outright).
	Deadline       sim.Duration
	DeadlineMargin float64
	DupBudgetBps   float64
	DupBudgetBurst float64

	// Engine knobs.
	QueueCap       int
	Qdisc          string  // "fifo" (default), "prio", "drr"
	JitterSigma    float64 // default 0.15
	ReorderTimeout sim.Duration
	DisableReorder bool
	TimelineWindow sim.Duration

	// Duration is the traffic horizon (default 50 ms of virtual time).
	Duration sim.Duration

	// Warmup discards deliveries before this time from latency stats
	// (default 10% of Duration).
	Warmup sim.Duration

	// Fault, when non-nil, is the fault-injection schedule for the run:
	// lane failures, flaps, NF error windows, telemetry lies.
	Fault *fault.Plan

	// Observability taps (all off by default; attaching them never changes
	// a run's numbers — see DESIGN.md, "Observability").

	// Exemplars keeps the K slowest delivered packets' full event
	// timelines for tail attribution (0 disables).
	Exemplars int
	// EventSink, when non-nil, receives every flight-recorder event (e.g.
	// an obs.Recorder ring buffer or an obs.Writer streaming to disk).
	EventSink obs.Sink `json:"-"`
	// SamplePeriod, when > 0, polls per-lane gauges (queue depth, copies
	// in flight, health state, service rate) every period of virtual time.
	SamplePeriod sim.Duration

	// Verify attaches the end-to-end invariant checker; any violation
	// fails the run with an error. The -verify harness flag forces this on
	// for every run via SetVerify.
	Verify bool
}

// verifyAll is the process-wide verification toggle (the harness's -verify
// flag). It is read once per Run start — set it before launching runs.
var verifyAll bool

// SetVerify turns invariant checking on for every subsequent run,
// regardless of each RunConfig's Verify field.
func SetVerify(v bool) { verifyAll = v }

// VerifyEnabled reports the process-wide verification toggle.
func VerifyEnabled() bool { return verifyAll }

// attachVerify hooks the invariant checker onto a hand-built data plane when
// -verify is on. Call the returned function once the run is over; drained
// says whether the plane was flushed and run dry (full conservation) or cut
// off mid-flight (outstanding packets must still be accounted for).
func attachVerify(dp *core.DataPlane) func(drained bool) error {
	if !verifyAll {
		return func(bool) error { return nil }
	}
	chk := invariant.Attach(dp, invariant.Options{CheckOrder: true})
	return chk.Finish
}

func (c *RunConfig) fillDefaults() {
	if c.NumPaths == 0 {
		c.NumPaths = 4
	}
	if c.ChainLen == 0 {
		c.ChainLen = 3
	}
	if c.Policy == "" {
		c.Policy = "mpdp"
	}
	if c.Util == 0 {
		c.Util = 0.7
	}
	if c.Arrival == "" {
		c.Arrival = "poisson"
	}
	if c.SizeDist == "" {
		c.SizeDist = "imix"
	}
	if c.Flows == 0 {
		c.Flows = 64
	}
	if c.FlowSkew == 0 {
		c.FlowSkew = 1.05
	}
	if c.Interference == "" {
		c.Interference = "none"
	}
	if c.JitterSigma == 0 {
		c.JitterSigma = 0.15
	}
	if c.Duration == 0 {
		c.Duration = 50 * sim.Millisecond
	}
	if c.Warmup == 0 {
		c.Warmup = c.Duration / 10
	}
	if c.BurstDuty == 0 {
		c.BurstDuty = 0.1
	}
}

// interferenceConfig maps the named intensity levels to configurations.
func interferenceConfig(level string) (vnet.InterferenceConfig, error) {
	switch level {
	case "none":
		return vnet.InterferenceConfig{}, nil
	case "light":
		return vnet.InterferenceConfig{
			SlowFactor: 2, MeanOn: 100 * sim.Microsecond, MeanOff: 1900 * sim.Microsecond,
		}, nil
	case "moderate":
		return vnet.DefaultInterferenceConfig(), nil // 4x, 10% duty
	case "heavy":
		return vnet.InterferenceConfig{
			SlowFactor: 8, MeanOn: 400 * sim.Microsecond, MeanOff: 1600 * sim.Microsecond,
		}, nil
	default:
		return vnet.InterferenceConfig{}, fmt.Errorf("experiment: unknown interference level %q", level)
	}
}

// RunResult is the measured outcome of one run.
type RunResult struct {
	Config RunConfig

	Latency      stats.Summary
	CDF          []stats.CDFPoint
	Offered      uint64
	OfferedBytes uint64
	Delivered    uint64
	Lost         uint64
	DeliveryRate float64
	GoodputGbps  float64
	DupOverhead  float64
	DupCancelled uint64
	DupBytes     uint64 // bytes of extra duplicate copies (any duplicating policy)

	// Deadline accounting, non-zero only when Config.Deadline > 0.
	DeadlineHits    uint64
	DeadlineMisses  uint64
	DeadlineHitRate float64

	// DeadlineSched holds the deadline policy's decision counters (nil for
	// other policies); BudgetSpentBytes/BudgetDenied its token bucket.
	DeadlineSched    *core.DeadlineAwareStats
	BudgetSpentBytes uint64
	BudgetDenied     uint64

	QueueWaitMean, QueueWaitP99     float64
	ServiceMean, ServiceP99         float64
	ReorderWaitMean, ReorderWaitP99 float64

	// Per-traffic-class latency (µs at p99; index = nf.TrafficClass).
	ClassP99   [4]float64
	ClassCount [4]uint64

	// PerPathServed is the number of packets each lane's core served.
	PerPathServed []uint64

	// Health machinery counters (non-zero only under fault injection).
	Quarantines uint64
	Canaries    uint64

	Reorder  core.ReorderStats
	Timeline []stats.WindowPoint

	// Exemplars holds the K slowest delivered packets (slowest first) when
	// Config.Exemplars > 0.
	Exemplars []obs.Exemplar `json:"-"`
	// LaneSeries holds per-lane gauge time series when Config.SamplePeriod
	// is positive.
	LaneSeries []obs.LaneSeries `json:"-"`

	Elapsed sim.Duration
}

// Run executes one configuration and returns its measurements.
func Run(cfg RunConfig) (RunResult, error) {
	cfg.fillDefaults()

	intf, err := interferenceConfig(cfg.Interference)
	if err != nil {
		return RunResult{}, err
	}

	// A trace workload fixes the run's duration before anything that
	// depends on it (warmup boundary, drain horizon) is derived.
	var traceRecs []trace.Record
	if cfg.TraceFile != "" {
		f, err := os.Open(cfg.TraceFile)
		if err != nil {
			return RunResult{}, fmt.Errorf("experiment: %w", err)
		}
		traceRecs, err = trace.ReadAll(f)
		closeErr := f.Close()
		if err != nil {
			return RunResult{}, err
		}
		if closeErr != nil {
			return RunResult{}, fmt.Errorf("experiment: closing trace: %w", closeErr)
		}
		if len(traceRecs) == 0 {
			return RunResult{}, fmt.Errorf("experiment: trace %s is empty", cfg.TraceFile)
		}
		cfg.Duration = traceRecs[len(traceRecs)-1].Time + sim.Millisecond
		cfg.Warmup = cfg.Duration / 10
	}

	rng := xrand.New(cfg.Seed ^ 0x9e3779b97f4a7c15)

	// Size distribution.
	var sizes workload.SizeDist
	switch cfg.SizeDist {
	case "imix":
		sizes = workload.IMIX{Rng: rng.Split()}
	case "pareto":
		sizes = workload.BoundedPareto{Alpha: 1.3, Lo: 64, Hi: 1500, Rng: rng.Split()}
	default:
		var bytes int
		if _, err := fmt.Sscanf(cfg.SizeDist, "fixed:%d", &bytes); err != nil || bytes <= 0 {
			return RunResult{}, fmt.Errorf("experiment: unknown size dist %q", cfg.SizeDist)
		}
		sizes = workload.Fixed{Bytes: bytes}
	}

	// Calibrate the arrival rate: mean chain cost on a probe replica.
	probeChain := nf.PresetChain(cfg.ChainLen)
	meanCost := workload.MeanServiceCost(probeChain, sizes, rng.Split(), 300)
	meanCost += 150 * sim.Nanosecond // dispatch overhead
	meanGap := sim.Duration(float64(meanCost) / (cfg.Util * float64(cfg.NumPaths)))
	if meanGap < 1 {
		meanGap = 1
	}

	var arrival workload.Arrival
	switch cfg.Arrival {
	case "poisson":
		arrival = workload.NewPoisson(rng.Split(), meanGap)
	case "cbr":
		arrival = workload.CBR{Gap: meanGap}
	case "onoff":
		burstGap := cfg.BurstGap
		if burstGap == 0 {
			burstGap = sim.Duration(float64(meanGap) * cfg.BurstDuty)
		}
		// Keep the mean rate: duty fraction of time at burstGap spacing.
		meanOn := 20 * burstGap // ~20-packet bursts on average
		duty := float64(burstGap) / float64(meanGap)
		meanOff := sim.Duration(float64(meanOn) * (1 - duty) / duty)
		arrival = workload.NewOnOff(rng.Split(), burstGap, meanOn, meanOff)
	case "mmpp":
		arrival = workload.NewMMPP2(rng.Split(),
			meanGap/2, meanGap*4, 2*sim.Millisecond, 2*sim.Millisecond)
	default:
		return RunResult{}, fmt.Errorf("experiment: unknown arrival %q", cfg.Arrival)
	}

	traffic := workload.NewTraffic(workload.TrafficConfig{
		Arrival: arrival, Size: sizes,
		Flows: cfg.Flows, FlowSkew: cfg.FlowSkew,
		BulkFraction: cfg.BulkFraction,
		Rng:          rng.Split(),
	})

	policy, err := NewPolicy(cfg.Policy, rng.Split(), PolicyParams{
		FlowletTimeout: cfg.FlowletTimeout,
		DupThreshold:   cfg.DupThreshold,
		DupBudget:      cfg.DupBudget,
		DupK:           cfg.DupK,
		ClassAware:     cfg.ClassAware,
		Deadline:       cfg.Deadline,
		DeadlineMargin: cfg.DeadlineMargin,
		DupBudgetBps:   cfg.DupBudgetBps,
		DupBudgetBurst: cfg.DupBudgetBurst,
	})
	if err != nil {
		return RunResult{}, err
	}

	var qdiscFor func(i int) vnet.Qdisc
	qcap := cfg.QueueCap
	if qcap == 0 {
		qcap = 512
	}
	switch cfg.Qdisc {
	case "", "fifo":
		// default FIFO
	case "prio":
		qdiscFor = func(i int) vnet.Qdisc { return vnet.NewStrictPriority(3 * qcap) }
	case "drr":
		qdiscFor = func(i int) vnet.Qdisc { return vnet.NewDRR(3*qcap, [3]int{}) }
	default:
		return RunResult{}, fmt.Errorf("experiment: unknown qdisc %q", cfg.Qdisc)
	}

	// A fault plan with NF error windows wraps the affected lanes' chains
	// with the error-mode element; everything else about the chain is the
	// preset.
	chainFor := func(i int) *nf.Chain {
		ch := nf.PresetChain(cfg.ChainLen)
		if el := cfg.Fault.ElementFor(i); el != nil {
			return nf.NewChain(ch.Name()+"+fault", append([]nf.Element{el}, ch.Elements()...)...)
		}
		return ch
	}

	s := sim.New()
	coreCfg := core.Config{
		NumPaths:        cfg.NumPaths,
		ChainFactory:    chainFor,
		Policy:          policy,
		QueueCap:        cfg.QueueCap,
		QdiscFor:        qdiscFor,
		JitterSigma:     cfg.JitterSigma,
		Interference:    intf,
		InterferedPaths: cfg.InterferedPaths,
		SlowdownFor:     cfg.SlowdownFor,
		ReorderTimeout:  cfg.ReorderTimeout,
		DisableReorder:  cfg.DisableReorder,
		Deadline:        cfg.Deadline,
		Seed:            cfg.Seed,
		TimelineWindow:  cfg.TimelineWindow,
	}

	// Observability taps. The collector and any caller-supplied sink share
	// one hook stream; a nil MultiSink result leaves recording off (the
	// hooks then cost one nil check each).
	var collector *obs.Collector
	var sinks []obs.Sink
	if cfg.Exemplars > 0 {
		collector = obs.NewCollector(cfg.Exemplars)
		sinks = append(sinks, collector)
	}
	if cfg.EventSink != nil {
		sinks = append(sinks, cfg.EventSink)
	}
	coreCfg.Trace = obs.MultiSink(sinks...)

	// Warmup filtering: the headline latency histogram only counts packets
	// delivered after the warmup boundary; the engine's own Metrics keep
	// full-run counts for throughput and drop accounting.
	measured := stats.NewHist()
	var classHists [4]*stats.Hist
	for i := range classHists {
		classHists[i] = stats.NewHist()
	}
	warmup := cfg.Warmup
	dp := core.New(s, coreCfg, func(p *packet.Packet) {
		if p.Delivered >= warmup {
			lat := int64(p.Latency())
			measured.Record(lat)
			if c := int(nf.ClassOf(p)); c < len(classHists) {
				classHists[c].Record(lat)
			}
		}
	})

	var sampler *obs.Sampler
	if cfg.SamplePeriod > 0 {
		sampler = obs.NewSampler(s, cfg.SamplePeriod, cfg.TimelineWindow, cfg.NumPaths, dp.LaneSample)
	}

	var chk *invariant.Checker
	if cfg.Verify || verifyAll {
		chk = invariant.Attach(dp, invariant.Options{CheckOrder: !cfg.DisableReorder})
	}
	if cfg.Fault != nil {
		if err := cfg.Fault.Install(dp); err != nil {
			return RunResult{}, err
		}
	}

	// Classify at the vNIC (before queueing), like hardware flow steering:
	// class-aware qdiscs and per-class accounting need the DSCP stamp at
	// enqueue time, not after the chain's own classifier runs.
	ingressCls := nf.PresetClassifier()
	ingress := func(p *packet.Packet) {
		ingressCls.Process(s.Now(), p)
		dp.Ingress(p)
	}
	if traceRecs != nil {
		for _, rec := range traceRecs {
			key, err := packet.ExtractFlowKey(rec.Frame)
			if err != nil {
				continue // non-IP records are skipped
			}
			p := &packet.Packet{Data: rec.Frame, Flow: key, FlowID: key.Hash64()}
			s.At(rec.Time, func() { ingress(p) })
		}
	} else {
		traffic.Run(s, ingress, cfg.Duration)
	}
	// Run traffic plus a generous drain window; perpetual interference
	// processes keep the event queue non-empty, so bound by time.
	s.RunUntil(cfg.Duration + 20*sim.Millisecond)
	if sampler != nil {
		sampler.Stop()
	}
	dp.Flush()
	s.RunUntil(cfg.Duration + 25*sim.Millisecond)

	if chk != nil {
		if err := chk.Finish(true); err != nil {
			return RunResult{}, fmt.Errorf("experiment: run (policy=%s seed=%d): %w", cfg.Policy, cfg.Seed, err)
		}
	}

	m := dp.Metrics()
	res := RunResult{
		Config:       cfg,
		Latency:      measured.Summarize(),
		CDF:          measured.CDF(),
		Offered:      m.Offered(),
		OfferedBytes: m.OfferedBytes(),
		Delivered:    m.Delivered(),
		Lost:         m.TotalLost(),
		DeliveryRate: m.DeliveryRate(),
		GoodputGbps:  m.GoodputBps(cfg.Duration) / 1e9,
		DupOverhead:  m.DupOverhead(),
		DupCancelled: m.DupCancelled(),
		DupBytes:     m.DupBytes(),

		DeadlineHits:    m.DeadlineHits(),
		DeadlineMisses:  m.DeadlineMisses(),
		DeadlineHitRate: m.DeadlineHitRate(),

		QueueWaitMean:   m.QueueWait.Mean(),
		QueueWaitP99:    float64(m.QueueWait.Percentile(0.99)),
		ServiceMean:     m.ServiceTime.Mean(),
		ServiceP99:      float64(m.ServiceTime.Percentile(0.99)),
		ReorderWaitMean: m.ReorderWait.Mean(),
		ReorderWaitP99:  float64(m.ReorderWait.Percentile(0.99)),

		Quarantines: m.Quarantines(),
		Canaries:    m.Canaries(),

		Reorder: dp.ReorderStats(),
		Elapsed: cfg.Duration,
	}
	if da, ok := policy.(*core.DeadlineAware); ok {
		st := da.Stats()
		res.DeadlineSched = &st
		if b := da.Budget(); b != nil {
			res.BudgetSpentBytes = b.SpentBytes()
			res.BudgetDenied = b.Denied()
		}
	}
	for i, h := range classHists {
		res.ClassP99[i] = float64(h.Percentile(0.99)) / 1000
		res.ClassCount[i] = h.Count()
	}
	for _, ps := range dp.Paths() {
		res.PerPathServed = append(res.PerPathServed, ps.Lane.Stats().Served)
	}
	if m.Timeline != nil {
		res.Timeline = m.Timeline.Points()
	}
	if collector != nil {
		res.Exemplars = collector.Exemplars()
	}
	if sampler != nil {
		res.LaneSeries = sampler.Series()
	}
	return res, nil
}

// RunSeeds runs the configuration across several seeds (in parallel; see
// RunMany) and returns the per-seed results. Experiments aggregate these
// (typically by averaging the percentile of interest) to damp run-to-run
// variance.
func RunSeeds(cfg RunConfig, seeds int) ([]RunResult, error) {
	return RunMany(seedConfigs(cfg, seeds), 0)
}

// MeanP99Micros averages the p99 latency (µs) across results.
func MeanP99Micros(rs []RunResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rs {
		sum += float64(r.Latency.P99) / 1000
	}
	return sum / float64(len(rs))
}
