package experiment

import (
	"testing"

	"mpdp/internal/sim"
	"mpdp/internal/vnet"
	"mpdp/internal/xrand"
)

func rngForTest() *xrand.Rand { return xrand.New(99) }

// quickCfg is a small, fast run used across these tests.
func quickCfg() RunConfig {
	return RunConfig{
		Seed: 1, Policy: "mpdp", Util: 0.6,
		Interference: "moderate",
		Duration:     4 * sim.Millisecond,
	}
}

func TestRunProducesSaneResult(t *testing.T) {
	r, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Offered == 0 || r.Delivered == 0 {
		t.Fatalf("empty run: %+v", r)
	}
	if r.Delivered+r.Lost != r.Offered {
		t.Fatalf("conservation: %d+%d != %d", r.Delivered, r.Lost, r.Offered)
	}
	s := r.Latency
	if !(s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.P999) {
		t.Fatalf("percentiles unordered: %+v", s)
	}
	if s.P50 <= 0 {
		t.Fatal("non-positive median")
	}
	if len(r.CDF) == 0 {
		t.Fatal("no CDF")
	}
	if r.GoodputGbps <= 0 {
		t.Fatal("no goodput")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency.P99 != b.Latency.P99 || a.Delivered != b.Delivered {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v",
			a.Latency.P99, a.Delivered, b.Latency.P99, b.Delivered)
	}
	c := quickCfg()
	c.Seed = 2
	d, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if d.Latency.P99 == a.Latency.P99 && d.Delivered == a.Delivered {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestRunAllArrivals(t *testing.T) {
	for _, arr := range []string{"poisson", "cbr", "onoff", "mmpp"} {
		cfg := quickCfg()
		cfg.Arrival = arr
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", arr, err)
		}
		if r.Delivered == 0 {
			t.Fatalf("%s delivered nothing", arr)
		}
	}
}

func TestRunAllSizeDists(t *testing.T) {
	for _, sd := range []string{"imix", "pareto", "fixed:256"} {
		cfg := quickCfg()
		cfg.SizeDist = sd
		if _, err := Run(cfg); err != nil {
			t.Fatalf("%s: %v", sd, err)
		}
	}
}

func TestRunAllInterferenceLevels(t *testing.T) {
	var prevP99 int64
	for _, level := range []string{"none", "light", "moderate", "heavy"} {
		cfg := quickCfg()
		cfg.Policy = "single"
		cfg.NumPaths = 1
		cfg.Util = 0.5
		cfg.Interference = level
		cfg.Duration = 8 * sim.Millisecond
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", level, err)
		}
		if level != "none" && r.Latency.P99 < prevP99/2 {
			t.Fatalf("p99 fell sharply from %d to %d at level %s", prevP99, r.Latency.P99, level)
		}
		prevP99 = r.Latency.P99
	}
}

func TestRunRejectsUnknownConfig(t *testing.T) {
	bad := []RunConfig{
		{Policy: "nope"},
		{Arrival: "nope"},
		{SizeDist: "nope"},
		{Interference: "nope"},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunScriptedSlowdown(t *testing.T) {
	cfg := quickCfg()
	cfg.Interference = "none"
	cfg.SlowdownFor = func(i int) vnet.Slowdown {
		if i == 0 {
			return &vnet.ScriptedSlowdown{Windows: []vnet.SlowWindow{
				{Start: 0, End: 100 * sim.Second, Factor: 10},
			}}
		}
		return nil
	}
	cfg.TimelineWindow = sim.Millisecond
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Timeline) == 0 {
		t.Fatal("timeline missing")
	}
}

func TestRunSeedsAveraging(t *testing.T) {
	rs, err := RunSeeds(quickCfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results", len(rs))
	}
	if rs[0].Latency.P99 == rs[1].Latency.P99 && rs[1].Latency.P99 == rs[2].Latency.P99 {
		t.Fatal("seeds not varied")
	}
	if MeanP99Micros(rs) <= 0 {
		t.Fatal("mean p99 not computed")
	}
	if MeanP99Micros(nil) != 0 {
		t.Fatal("empty mean not zero")
	}
}

func TestRunWarmupFiltering(t *testing.T) {
	cfg := quickCfg()
	cfg.Warmup = cfg.Duration * 9 / 10 // keep only the last 10%
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Latency.Count == 0 {
		t.Fatal("warmup filtered everything")
	}
	if r.Latency.Count >= r.Delivered {
		t.Fatal("warmup filtered nothing")
	}
}

func TestRunManyMatchesSerial(t *testing.T) {
	cfgs := seedConfigs(quickCfg(), 4)
	par, err := RunMany(cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		ser, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if par[i].Latency.P99 != ser.Latency.P99 || par[i].Delivered != ser.Delivered {
			t.Fatalf("parallel result %d differs from serial", i)
		}
	}
}

func TestRunManyEmpty(t *testing.T) {
	rs, err := RunMany(nil, 0)
	if err != nil || rs != nil {
		t.Fatalf("empty RunMany: %v %v", rs, err)
	}
}

func TestRunManyPropagatesError(t *testing.T) {
	if _, err := RunMany([]RunConfig{{Policy: "nope"}}, 2); err == nil {
		t.Fatal("error not propagated")
	}
}

func TestRunQdiscVariants(t *testing.T) {
	for _, q := range []string{"fifo", "prio", "drr"} {
		cfg := quickCfg()
		cfg.Qdisc = q
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if r.Delivered == 0 {
			t.Fatalf("%s delivered nothing", q)
		}
	}
	cfg := quickCfg()
	cfg.Qdisc = "nope"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown qdisc accepted")
	}
}

func TestRunClassAccounting(t *testing.T) {
	cfg := quickCfg()
	cfg.BulkFraction = 0.3
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Ingress classification stamps port-80 flows latency-sensitive and
	// high-port flows bulk; both classes must be populated.
	if r.ClassCount[1] == 0 {
		t.Fatal("no latency-sensitive packets accounted")
	}
	if r.ClassCount[2] == 0 {
		t.Fatal("no bulk packets accounted")
	}
	if r.ClassP99[1] <= 0 || r.ClassP99[2] <= 0 {
		t.Fatal("class p99 not computed")
	}
}

func TestRunPriorityProtectsLatencyClass(t *testing.T) {
	// Under bulk pressure at high load, strict priority must cut the
	// latency class's p99 versus FIFO on the same seed.
	base := RunConfig{
		Seed: 11, Policy: "rss", Util: 0.85, BulkFraction: 0.4,
		Interference: "none", Duration: 10 * sim.Millisecond,
	}
	fifo, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	prio := base
	prio.Qdisc = "prio"
	p, err := Run(prio)
	if err != nil {
		t.Fatal(err)
	}
	if p.ClassP99[1] >= fifo.ClassP99[1] {
		t.Fatalf("priority lat-class p99 %.1f not below FIFO %.1f",
			p.ClassP99[1], fifo.ClassP99[1])
	}
}
