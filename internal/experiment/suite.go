package experiment

import (
	"fmt"
	"sort"

	"mpdp/internal/core"
	"mpdp/internal/nf"
	"mpdp/internal/sim"
	"mpdp/internal/stats"
	"mpdp/internal/vnet"
	"mpdp/internal/workload"
	"mpdp/internal/xrand"
)

// SuiteOpts controls a whole-experiment invocation.
type SuiteOpts struct {
	// Seed is the base seed (default 1).
	Seed uint64
	// Seeds is the number of independent repetitions averaged per point
	// (default 2).
	Seeds int
	// Quick shrinks horizons and repetitions for smoke runs.
	Quick bool
}

func (o *SuiteOpts) fill() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Seeds == 0 {
		o.Seeds = 2
	}
	if o.Quick {
		o.Seeds = 1
	}
}

func (o SuiteOpts) duration(normal sim.Duration) sim.Duration {
	if o.Quick {
		return normal / 5
	}
	return normal
}

// ExpFunc runs one experiment.
type ExpFunc func(opts SuiteOpts) (*Result, error)

// Registry maps experiment IDs to implementations.
var Registry = map[string]ExpFunc{
	"E1":  E1Motivation,
	"E2":  E2LoadSweep,
	"E3":  E3LatencyCDF,
	"E4":  E4PathSweep,
	"E5":  E5Burstiness,
	"E6":  E6Incast,
	"E7":  E7Overhead,
	"E8":  E8ReorderCost,
	"E9":  E9ChainLength,
	"E10": E10Breakdown,
	"E11": E11Timeline,
	"E12": E12Ablation,
}

// IDs returns the registered experiment IDs in suite order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	return ids
}

// sampleCDF thins a CDF to at most n points, keeping the tail dense.
func sampleCDF(cdf []stats.CDFPoint, n int) []Point {
	if len(cdf) == 0 {
		return nil
	}
	out := make([]Point, 0, n)
	step := len(cdf) / n
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(cdf); i += step {
		p := cdf[i]
		out = append(out, Point{X: float64(p.Value) / 1000, Y: p.Frac})
		// Keep every point once past p99: the tail is what matters.
		if p.Frac > 0.99 {
			for j := i + 1; j < len(cdf); j++ {
				out = append(out, Point{X: float64(cdf[j].Value) / 1000, Y: cdf[j].Frac})
			}
			return out
		}
	}
	last := cdf[len(cdf)-1]
	out = append(out, Point{X: float64(last.Value) / 1000, Y: last.Frac})
	return out
}

// E1Motivation — "the last mile matters": a conventional single-path data
// plane at half load, under increasing noisy-neighbor intensity. The median
// barely moves; the p99/p99.9 blow up by an order of magnitude.
func E1Motivation(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E1",
		Title: "Motivation: single-path tail latency vs interference intensity",
		Notes: []string{
			"expected shape: median roughly flat across intensities; p99 grows multiples (tail blow-up)",
		},
	}
	fig := Figure{Name: "E1", Title: "latency CDF, single path @50% load", XLabel: "latency_us", YLabel: "cum_frac"}
	tab := Table{
		Name: "E1t", Title: "latency percentiles (us)",
		Columns: []string{"interference", "p50", "p90", "p99", "p99.9"},
	}
	for _, level := range []string{"none", "light", "moderate", "heavy"} {
		merged := stats.NewHist()
		for seed := 0; seed < opts.Seeds; seed++ {
			r, err := Run(RunConfig{
				Seed: opts.Seed + uint64(seed)*7919, NumPaths: 1, Policy: "single",
				Util: 0.5, Interference: level,
				Duration: opts.duration(40 * sim.Millisecond),
			})
			if err != nil {
				return nil, err
			}
			mergeSummaryInto(merged, r)
		}
		sum := merged.Summarize()
		fig.Curves = append(fig.Curves, Curve{Label: level, Points: sampleCDF(merged.CDF(), 30)})
		tab.Rows = append(tab.Rows, []string{
			level, us(sum.P50), us(sum.P90), us(sum.P99), us(sum.P999),
		})
	}
	res.Figures = append(res.Figures, fig)
	res.Tables = append(res.Tables, tab)
	return res, nil
}

// mergeSummaryInto replays a run's CDF into a merged histogram. The CDF is
// bucket-resolution, which is exactly what the histogram stores anyway.
func mergeSummaryInto(h *stats.Hist, r RunResult) {
	var prev uint64
	total := r.Latency.Count
	for _, p := range r.CDF {
		cum := uint64(p.Frac * float64(total))
		for i := prev; i < cum; i++ {
			h.Record(p.Value)
		}
		prev = cum
	}
}

func us(ns int64) string { return fmt.Sprintf("%.1f", float64(ns)/1000) }

// E2LoadSweep — p99 latency vs offered load for each policy, 4 paths,
// moderate interference.
func E2LoadSweep(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E2",
		Title: "p99 latency vs offered load (4 paths, moderate interference)",
		Notes: []string{
			"expected shape: static policies (rss) diverge first; adaptive multipath (flowlet/mpdp) holds the tail flat longest; mpdp lowest at mid-high load",
		},
	}
	fig := Figure{Name: "E2", Title: "p99 vs load", XLabel: "load", YLabel: "p99_us"}
	policies := []string{"rss", "rr", "jsq", "po2", "flowlet", "mpdp"}
	loads := []float64{0.3, 0.5, 0.6, 0.7, 0.8, 0.9}

	// The whole grid (policy × load × seed) runs on one worker pool.
	var cfgs []RunConfig
	for _, pol := range policies {
		for _, load := range loads {
			cfgs = append(cfgs, seedConfigs(RunConfig{
				Seed: opts.Seed, Policy: pol, Util: load,
				Interference: "moderate",
				Duration:     opts.duration(30 * sim.Millisecond),
			}, opts.Seeds)...)
		}
	}
	results, err := RunMany(cfgs, 0)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, pol := range policies {
		curve := Curve{Label: pol}
		for _, load := range loads {
			rs := results[i : i+opts.Seeds]
			i += opts.Seeds
			curve.Points = append(curve.Points, Point{X: load, Y: MeanP99Micros(rs)})
		}
		fig.Curves = append(fig.Curves, curve)
	}
	res.Figures = append(res.Figures, fig)
	return res, nil
}

// E3LatencyCDF — full latency CDF at 70% load for the headline policies.
func E3LatencyCDF(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E3",
		Title: "latency CDF @ 70% load (4 paths, moderate interference)",
		Notes: []string{
			"expected shape: all medians similar; rss/rr tails longest, mpdp tail shortest; dup-all good tail but see E7 for its cost",
		},
	}
	fig := Figure{Name: "E3", Title: "latency CDF @ 0.7 load", XLabel: "latency_us", YLabel: "cum_frac"}
	for _, pol := range []string{"rss", "rr", "flowlet", "dup-all", "mpdp"} {
		merged := stats.NewHist()
		for seed := 0; seed < opts.Seeds; seed++ {
			r, err := Run(RunConfig{
				Seed: opts.Seed + uint64(seed)*7919, Policy: pol, Util: 0.7,
				Interference: "moderate",
				Duration:     opts.duration(30 * sim.Millisecond),
			})
			if err != nil {
				return nil, err
			}
			mergeSummaryInto(merged, r)
		}
		fig.Curves = append(fig.Curves, Curve{Label: pol, Points: sampleCDF(merged.CDF(), 30)})
	}
	res.Figures = append(res.Figures, fig)
	return res, nil
}

// E4PathSweep — p99 vs number of paths at fixed relative load.
func E4PathSweep(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E4",
		Title: "p99 latency vs number of paths (60% load, moderate interference)",
		Notes: []string{
			"expected shape: both improve with paths; mpdp gains most of its win by 4 paths (diminishing returns); gap vs rss persists at every width",
		},
	}
	fig := Figure{Name: "E4", Title: "p99 vs paths", XLabel: "paths", YLabel: "p99_us"}
	for _, pol := range []string{"rss", "jsq", "mpdp"} {
		curve := Curve{Label: pol}
		for _, n := range []int{1, 2, 3, 4, 6, 8} {
			rs, err := RunSeeds(RunConfig{
				Seed: opts.Seed, Policy: pol, NumPaths: n, Util: 0.6,
				Interference: "moderate",
				Duration:     opts.duration(30 * sim.Millisecond),
			}, opts.Seeds)
			if err != nil {
				return nil, err
			}
			curve.Points = append(curve.Points, Point{X: float64(n), Y: MeanP99Micros(rs)})
		}
		fig.Curves = append(fig.Curves, curve)
	}
	res.Figures = append(res.Figures, fig)
	return res, nil
}

// E5Burstiness — p99 vs workload burstiness at a fixed mean rate.
func E5Burstiness(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E5",
		Title: "p99 latency vs burstiness (ON/OFF arrivals, 60% mean load)",
		Notes: []string{
			"x = peak-to-mean ratio (1 = smooth CBR-like). expected shape: static hashing degrades steeply with burstiness; mpdp absorbs bursts via path diversity",
		},
	}
	fig := Figure{Name: "E5", Title: "p99 vs burst intensity", XLabel: "peak_to_mean", YLabel: "p99_us"}
	duties := []float64{1.0, 0.5, 0.2, 0.1, 0.05}
	for _, pol := range []string{"rss", "jsq", "mpdp"} {
		curve := Curve{Label: pol}
		for _, duty := range duties {
			cfg := RunConfig{
				Seed: opts.Seed, Policy: pol, Util: 0.6,
				Interference: "light",
				Duration:     opts.duration(30 * sim.Millisecond),
			}
			if duty >= 1 {
				cfg.Arrival = "poisson"
			} else {
				cfg.Arrival = "onoff"
				cfg.BurstDuty = duty
			}
			rs, err := RunSeeds(cfg, opts.Seeds)
			if err != nil {
				return nil, err
			}
			curve.Points = append(curve.Points, Point{X: 1 / duty, Y: MeanP99Micros(rs)})
		}
		fig.Curves = append(fig.Curves, curve)
	}
	res.Figures = append(res.Figures, fig)
	return res, nil
}

// E6Incast — p99 flow completion time of incast responses vs fan-in.
func E6Incast(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E6",
		Title: "incast: p99 response FCT vs fan-in (20KB responses, 4 paths)",
		Notes: []string{
			"expected shape: FCT grows with fan-in for all; rss suffers hash collisions onto one lane; mpdp spreads each burst, keeping p99 a small multiple of the ideal",
		},
	}
	fig := Figure{Name: "E6", Title: "p99 FCT vs fan-in", XLabel: "fanin", YLabel: "p99_fct_us"}
	fanins := []int{4, 8, 16, 32, 64}
	for _, pol := range []string{"rss", "jsq", "mpdp"} {
		curve := Curve{Label: pol}
		for _, fanin := range fanins {
			var sum float64
			for seed := 0; seed < opts.Seeds; seed++ {
				p99, err := runIncast(opts.Seed+uint64(seed)*7919, pol, fanin, opts)
				if err != nil {
					return nil, err
				}
				sum += p99
			}
			curve.Points = append(curve.Points, Point{X: float64(fanin), Y: sum / float64(opts.Seeds)})
		}
		fig.Curves = append(fig.Curves, curve)
	}
	res.Figures = append(res.Figures, fig)
	return res, nil
}

// runIncast runs one incast configuration and returns p99 FCT in µs.
func runIncast(seed uint64, policyName string, fanin int, opts SuiteOpts) (float64, error) {
	rng := xrand.New(seed)
	policy, err := NewPolicy(policyName, rng.Split(), PolicyParams{})
	if err != nil {
		return 0, err
	}
	s := sim.New()
	epochs := 60
	if opts.Quick {
		epochs = 15
	}
	ic := workload.NewIncast(workload.IncastConfig{
		Fanin: fanin, Response: 20_000,
		Epoch: 500 * sim.Microsecond, Epochs: epochs,
		PacketGap: 300 * sim.Nanosecond,
		Rng:       rng.Split(),
	})
	dp := core.New(s, core.Config{
		NumPaths:     4,
		ChainFactory: func(i int) *nf.Chain { return nf.PresetChain(3) },
		Policy:       policy,
		JitterSigma:  0.15,
		Interference: vnet.DefaultInterferenceConfig(),
		Seed:         seed,
	}, ic.Tracker.OnDeliver)
	finish := attachVerify(dp)
	ic.Run(s, dp.Ingress)
	horizon := sim.Duration(epochs+40) * 500 * sim.Microsecond
	s.RunUntil(horizon)
	dp.Flush()
	s.RunUntil(horizon + 5*sim.Millisecond)
	if err := finish(true); err != nil {
		return 0, err
	}
	if ic.Tracker.ShortFCT.Count() == 0 {
		return 0, fmt.Errorf("incast: no completed responses (fanin %d, policy %s)", fanin, policyName)
	}
	return float64(ic.Tracker.ShortFCT.Percentile(0.99)) / 1000, nil
}

// E7Overhead — the throughput/duplication cost table at 80% load.
func E7Overhead(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E7",
		Title: "throughput and duplication overhead @ 80% load (4 paths, moderate interference)",
		Notes: []string{
			"expected shape: dup-all pays ~100% extra copies and loses goodput/deliveries at this load; mpdp's budgeted duplication stays under ~25% with near-best p99",
		},
	}
	tab := Table{
		Name: "E7t", Title: "per-policy cost",
		Columns: []string{"policy", "goodput_gbps", "delivery_%", "dup_overhead_%", "dup_cancelled", "p50_us", "p99_us"},
	}
	for _, pol := range []string{"rss", "rr", "jsq", "flowlet", "dup-all", "mpdp"} {
		rs, err := RunSeeds(RunConfig{
			Seed: opts.Seed, Policy: pol, Util: 0.8,
			Interference: "moderate",
			Duration:     opts.duration(30 * sim.Millisecond),
		}, opts.Seeds)
		if err != nil {
			return nil, err
		}
		var goodput, delivery, dup, p50, p99 float64
		var cancelled uint64
		for _, r := range rs {
			goodput += r.GoodputGbps
			delivery += r.DeliveryRate * 100
			dup += r.DupOverhead * 100
			cancelled += r.DupCancelled
			p50 += float64(r.Latency.P50) / 1000
			p99 += float64(r.Latency.P99) / 1000
		}
		n := float64(len(rs))
		tab.Rows = append(tab.Rows, []string{
			pol,
			fmt.Sprintf("%.3f", goodput/n),
			fmt.Sprintf("%.2f", delivery/n),
			fmt.Sprintf("%.1f", dup/n),
			fmt.Sprintf("%d", cancelled/uint64(len(rs))),
			fmt.Sprintf("%.1f", p50/n),
			fmt.Sprintf("%.1f", p99/n),
		})
	}
	res.Tables = append(res.Tables, tab)
	return res, nil
}

// E8ReorderCost — the reordering cost table at 70% load.
func E8ReorderCost(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E8",
		Title: "reordering cost @ 70% load (4 paths, moderate interference)",
		Notes: []string{
			"expected shape: rr reorders heavily (per-packet spraying); flowlet/mpdp keep OOO% low; rss never reorders by construction",
		},
	}
	tab := Table{
		Name: "E8t", Title: "reorder-buffer behaviour",
		Columns: []string{"policy", "ooo_%", "max_occupancy", "reorder_wait_p99_us", "timeout_fires", "late_drops", "dup_drops"},
	}
	for _, pol := range []string{"rss", "rr", "random", "jsq", "flowlet", "dup-all", "mpdp"} {
		rs, err := RunSeeds(RunConfig{
			Seed: opts.Seed, Policy: pol, Util: 0.7,
			Interference: "moderate",
			Duration:     opts.duration(30 * sim.Millisecond),
		}, opts.Seeds)
		if err != nil {
			return nil, err
		}
		var ooo, wait float64
		var occ, fires, late, dup uint64
		for _, r := range rs {
			ooo += r.Reorder.OOOFraction() * 100
			wait += r.ReorderWaitP99 / 1000
			occ += uint64(r.Reorder.MaxOccupancy)
			fires += r.Reorder.TimeoutFires
			late += r.Reorder.LateDrops
			dup += r.Reorder.DupDrops
		}
		n := float64(len(rs))
		un := uint64(len(rs))
		tab.Rows = append(tab.Rows, []string{
			pol,
			fmt.Sprintf("%.2f", ooo/n),
			fmt.Sprintf("%d", occ/un),
			fmt.Sprintf("%.1f", wait/n),
			fmt.Sprintf("%d", fires/un),
			fmt.Sprintf("%d", late/un),
			fmt.Sprintf("%d", dup/un),
		})
	}
	res.Tables = append(res.Tables, tab)
	return res, nil
}

// E9ChainLength — p99 vs SFC length.
func E9ChainLength(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E9",
		Title: "p99 latency vs SFC length (70% load, 4 paths, moderate interference)",
		Notes: []string{
			"expected shape: longer chains raise base service time; the absolute mpdp-vs-rss gap widens with chain length (more service time exposed to stragglers)",
		},
	}
	fig := Figure{Name: "E9", Title: "p99 vs chain length", XLabel: "chain_len", YLabel: "p99_us"}
	for _, pol := range []string{"rss", "mpdp"} {
		curve := Curve{Label: pol}
		for n := 1; n <= 6; n++ {
			rs, err := RunSeeds(RunConfig{
				Seed: opts.Seed, Policy: pol, ChainLen: n, Util: 0.7,
				Interference: "moderate",
				Duration:     opts.duration(25 * sim.Millisecond),
			}, opts.Seeds)
			if err != nil {
				return nil, err
			}
			curve.Points = append(curve.Points, Point{X: float64(n), Y: MeanP99Micros(rs)})
		}
		fig.Curves = append(fig.Curves, curve)
	}
	res.Figures = append(res.Figures, fig)
	return res, nil
}

// E10Breakdown — where delivered-packet latency goes, per policy.
func E10Breakdown(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E10",
		Title: "latency breakdown @ 70% load (4 paths, moderate interference)",
		Notes: []string{
			"expected shape: queueing dominates the tail for static policies; mpdp trades a little reorder wait for much less queueing",
		},
	}
	tab := Table{
		Name: "E10t", Title: "latency components (us)",
		Columns: []string{"policy", "queue_mean", "queue_p99", "service_mean", "service_p99", "reorder_mean", "reorder_p99", "total_p99"},
	}
	for _, pol := range []string{"rss", "rr", "jsq", "flowlet", "mpdp"} {
		rs, err := RunSeeds(RunConfig{
			Seed: opts.Seed, Policy: pol, Util: 0.7,
			Interference: "moderate",
			Duration:     opts.duration(30 * sim.Millisecond),
		}, opts.Seeds)
		if err != nil {
			return nil, err
		}
		var qm, qp, sm, sp, rm, rp, tp float64
		for _, r := range rs {
			qm += r.QueueWaitMean / 1000
			qp += r.QueueWaitP99 / 1000
			sm += r.ServiceMean / 1000
			sp += r.ServiceP99 / 1000
			rm += r.ReorderWaitMean / 1000
			rp += r.ReorderWaitP99 / 1000
			tp += float64(r.Latency.P99) / 1000
		}
		n := float64(len(rs))
		f := func(v float64) string { return fmt.Sprintf("%.2f", v/n) }
		tab.Rows = append(tab.Rows, []string{pol, f(qm), f(qp), f(sm), f(sp), f(rm), f(rp), f(tp)})
	}
	res.Tables = append(res.Tables, tab)
	return res, nil
}

// E11Timeline — adaptivity: p99 per 2 ms window across a scripted
// interference burst hitting half the paths.
func E11Timeline(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E11",
		Title: "adaptivity timeline: scripted 8x slowdown on paths 0-1 during [20ms,30ms)",
		Notes: []string{
			"expected shape: rss p99 spikes for the whole burst (hashed flows are stuck); mpdp spikes briefly then re-steers flowlets to clean paths",
		},
	}
	fig := Figure{Name: "E11", Title: "windowed p99 over time", XLabel: "t_ms", YLabel: "p99_us"}
	burst := func(i int) vnet.Slowdown {
		if i <= 1 {
			return &vnet.ScriptedSlowdown{Windows: []vnet.SlowWindow{
				{Start: 20 * sim.Millisecond, End: 30 * sim.Millisecond, Factor: 8},
			}}
		}
		return nil
	}
	for _, pol := range []string{"rss", "mpdp"} {
		r, err := Run(RunConfig{
			Seed: opts.Seed, Policy: pol, Util: 0.6,
			SlowdownFor:    burst,
			TimelineWindow: 2 * sim.Millisecond,
			Duration:       opts.duration(50 * sim.Millisecond),
			Warmup:         1, // timeline wants the whole run
		})
		if err != nil {
			return nil, err
		}
		curve := Curve{Label: pol}
		for _, wp := range r.Timeline {
			curve.Points = append(curve.Points, Point{
				X: float64(wp.Start) / 1e6,
				Y: float64(wp.Hist.Percentile(0.99)) / 1000,
			})
		}
		fig.Curves = append(fig.Curves, curve)
	}
	res.Figures = append(res.Figures, fig)
	return res, nil
}

// E12Ablation — which MPDP design choices matter.
func E12Ablation(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E12",
		Title: "ablation of MPDP design choices @ 75% load (4 paths, moderate interference)",
		Notes: []string{
			"expected shape: per-packet steering (timeout 0) reorders heavily; per-flow (timeout inf) adapts too slowly; no duplication loses tail; unlimited duplication costs overhead",
		},
	}
	tab := Table{
		Name: "E12t", Title: "MPDP variants",
		Columns: []string{"variant", "p50_us", "p99_us", "dup_overhead_%", "ooo_%", "delivery_%"},
	}
	type variant struct {
		name string
		cfg  func(c *RunConfig)
	}
	variants := []variant{
		{"mpdp (default)", func(c *RunConfig) {}},
		{"flowlet timeout 0 (per-packet)", func(c *RunConfig) { c.FlowletTimeout = 1 }},
		{"flowlet timeout 100us", func(c *RunConfig) { c.FlowletTimeout = 100 * sim.Microsecond }},
		{"flowlet timeout inf (per-flow)", func(c *RunConfig) { c.FlowletTimeout = 1000 * sim.Second }},
		{"no duplication", func(c *RunConfig) { c.Policy = "mpdp-nodup" }},
		{"dup budget 100%", func(c *RunConfig) { c.DupBudget = 1.0 }},
		{"dup threshold 2 (eager)", func(c *RunConfig) { c.DupThreshold = 2 }},
		{"dup threshold 32 (timid)", func(c *RunConfig) { c.DupThreshold = 32 }},
		{"class-aware duplication", func(c *RunConfig) { c.ClassAware = true }},
		{"no reorder stage", func(c *RunConfig) { c.DisableReorder = true }},
	}
	for _, v := range variants {
		cfg := RunConfig{
			Seed: opts.Seed, Policy: "mpdp", Util: 0.75,
			Interference: "moderate",
			Duration:     opts.duration(30 * sim.Millisecond),
		}
		v.cfg(&cfg)
		rs, err := RunSeeds(cfg, opts.Seeds)
		if err != nil {
			return nil, err
		}
		var p50, p99, dup, ooo, del float64
		for _, r := range rs {
			p50 += float64(r.Latency.P50) / 1000
			p99 += float64(r.Latency.P99) / 1000
			dup += r.DupOverhead * 100
			ooo += r.Reorder.OOOFraction() * 100
			del += r.DeliveryRate * 100
		}
		n := float64(len(rs))
		tab.Rows = append(tab.Rows, []string{
			v.name,
			fmt.Sprintf("%.1f", p50/n),
			fmt.Sprintf("%.1f", p99/n),
			fmt.Sprintf("%.1f", dup/n),
			fmt.Sprintf("%.2f", ooo/n),
			fmt.Sprintf("%.2f", del/n),
		})
	}
	res.Tables = append(res.Tables, tab)
	return res, nil
}
