package experiment

import (
	"fmt"

	"mpdp/internal/core"
	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/stats"
	"mpdp/internal/vnet"
	"mpdp/internal/workload"
	"mpdp/internal/xrand"
)

func init() {
	Registry["E17"] = E17HashAttack
}

// E17HashAttack — robustness: an adversary crafts flows that all collide
// onto RSS queue 0 (an algorithmic-complexity attack on static hashing).
// The aggregate rate is a modest 50% of one core's capacity times four —
// i.e. harmless if spread, fatal if concentrated.
func E17HashAttack(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E17",
		Title: "adversarial RSS-collision flows @ 50% aggregate load (4 paths)",
		Notes: []string{
			"all flows crafted to Toeplitz-hash onto queue 0; same packet rate as a benign mix",
			"expected shape: rss collapses (one core takes 4x its capacity, three idle); any feedback-driven policy is indifferent to the crafted tuples",
		},
	}
	tab := Table{
		Name: "E17t", Title: "under collision attack",
		Columns: []string{"policy", "delivery_%", "p50_us", "p99_us", "busiest_lane_share_%"},
	}
	for _, pol := range []string{"rss", "rr", "jsq", "flowlet", "mpdp"} {
		var del, p50, p99, share float64
		for seed := 0; seed < opts.Seeds; seed++ {
			r, err := runHashAttack(opts.Seed+uint64(seed)*7919, pol, opts)
			if err != nil {
				return nil, err
			}
			del += r[0]
			p50 += r[1]
			p99 += r[2]
			share += r[3]
		}
		n := float64(opts.Seeds)
		tab.Rows = append(tab.Rows, []string{
			pol,
			fmt.Sprintf("%.2f", del/n),
			fmt.Sprintf("%.1f", p50/n),
			fmt.Sprintf("%.1f", p99/n),
			fmt.Sprintf("%.1f", share/n),
		})
	}
	res.Tables = append(res.Tables, tab)
	return res, nil
}

// runHashAttack returns [delivery%, p50us, p99us, busiestLaneShare%].
func runHashAttack(seed uint64, policyName string, opts SuiteOpts) ([4]float64, error) {
	var out [4]float64
	rng := xrand.New(seed)
	policy, err := NewPolicy(policyName, rng.Split(), PolicyParams{})
	if err != nil {
		return out, err
	}
	s := sim.New()

	sizes := workload.IMIX{Rng: rng.Split()}
	meanCost := workload.MeanServiceCost(nf.PresetChain(3), sizes, rng.Split(), 300)
	gap := sim.Duration(float64(meanCost+150) / (0.5 * 4))
	traffic := workload.NewCollisionTraffic(
		workload.NewPoisson(rng.Split(), gap), sizes, rng.Split(),
		64, 4, 0)

	measured := stats.NewHist()
	dp := core.New(s, core.Config{
		NumPaths:     4,
		ChainFactory: func(i int) *nf.Chain { return nf.PresetChain(3) },
		Policy:       policy,
		JitterSigma:  0.15,
		Interference: vnet.DefaultInterferenceConfig(),
		Seed:         seed,
	}, func(p *packet.Packet) { measured.Record(int64(p.Latency())) })
	finish := attachVerify(dp)

	horizon := opts.duration(25 * sim.Millisecond)
	traffic.Run(s, dp.Ingress, horizon)
	s.RunUntil(horizon + 15*sim.Millisecond)
	dp.Flush()
	s.RunUntil(horizon + 17*sim.Millisecond)
	if err := finish(true); err != nil {
		return out, err
	}

	m := dp.Metrics()
	out[0] = m.DeliveryRate() * 100
	out[1] = float64(measured.Percentile(0.50)) / 1000
	out[2] = float64(measured.Percentile(0.99)) / 1000
	var total, max uint64
	for _, ps := range dp.Paths() {
		served := ps.Lane.Stats().Served
		total += served
		if served > max {
			max = served
		}
	}
	if total > 0 {
		out[3] = float64(max) / float64(total) * 100
	}
	return out, nil
}
