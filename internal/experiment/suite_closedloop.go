package experiment

import (
	"fmt"

	"mpdp/internal/core"
	"mpdp/internal/nf"
	"mpdp/internal/sim"
	"mpdp/internal/vnet"
	"mpdp/internal/workload"
	"mpdp/internal/xrand"
)

func init() {
	Registry["E18"] = E18ClosedLoop
}

// E18ClosedLoop — application-level view: closed-loop RPC clients over the
// data plane. Offered load is self-clocking, so the y axes are what an
// application owner sees: request p99 and achieved request rate at a given
// concurrency.
func E18ClosedLoop(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E18",
		Title: "closed-loop RPC: request p99 and throughput vs concurrency (4 paths, moderate interference)",
		Notes: []string{
			"2KB requests, 100us mean think time; each request is a fresh flow",
			"expected shape: at low concurrency mpdp and rss achieve similar rates but mpdp's p99 is far lower; at high concurrency rss's hot lanes throttle the achieved rate itself",
		},
	}
	figLat := Figure{Name: "E18a", Title: "request p99 vs concurrency", XLabel: "clients", YLabel: "p99_us"}
	figRate := Figure{Name: "E18b", Title: "achieved request rate vs concurrency", XLabel: "clients", YLabel: "kreq_per_s"}
	concurrency := []int{8, 32, 128, 512}
	for _, pol := range []string{"rss", "jsq", "mpdp"} {
		cLat := Curve{Label: pol}
		cRate := Curve{Label: pol}
		for _, nClients := range concurrency {
			var p99, rate float64
			for seed := 0; seed < opts.Seeds; seed++ {
				a, b, err := runClosedLoop(opts.Seed+uint64(seed)*7919, pol, nClients, opts)
				if err != nil {
					return nil, err
				}
				p99 += a
				rate += b
			}
			n := float64(opts.Seeds)
			cLat.Points = append(cLat.Points, Point{X: float64(nClients), Y: p99 / n})
			cRate.Points = append(cRate.Points, Point{X: float64(nClients), Y: rate / n})
		}
		figLat.Curves = append(figLat.Curves, cLat)
		figRate.Curves = append(figRate.Curves, cRate)
	}
	res.Figures = append(res.Figures, figLat, figRate)
	return res, nil
}

// runClosedLoop returns (request p99 µs, achieved kreq/s).
func runClosedLoop(seed uint64, policyName string, clients int, opts SuiteOpts) (float64, float64, error) {
	rng := xrand.New(seed)
	policy, err := NewPolicy(policyName, rng.Split(), PolicyParams{})
	if err != nil {
		return 0, 0, err
	}
	s := sim.New()
	cl := workload.NewClosedLoop(workload.ClosedLoopConfig{
		Clients: clients, RequestBytes: 2000,
		MeanThink: 100 * sim.Microsecond,
		Rng:       rng.Split(),
	})
	dp := core.New(s, core.Config{
		NumPaths:     4,
		ChainFactory: func(i int) *nf.Chain { return nf.PresetChain(3) },
		Policy:       policy,
		JitterSigma:  0.15,
		Interference: vnet.DefaultInterferenceConfig(),
		Seed:         seed,
	}, cl.OnDeliver)
	// The closed loop is cut off mid-flight (requests are always
	// outstanding by construction), so conservation is checked in its
	// weaker, undrained form.
	finish := attachVerify(dp)
	cl.Start(s, dp.Ingress)

	horizon := opts.duration(30 * sim.Millisecond)
	s.RunUntil(horizon)
	if err := finish(false); err != nil {
		return 0, 0, err
	}
	completed := cl.Completed()
	if completed == 0 {
		return 0, 0, fmt.Errorf("E18: no requests completed (policy %s, %d clients)", policyName, clients)
	}
	p99 := float64(cl.Latency.Percentile(0.99)) / 1000
	rate := float64(completed) / horizon.Seconds() / 1000
	return p99, rate, nil
}
