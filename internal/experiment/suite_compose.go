package experiment

import (
	"fmt"

	"mpdp/internal/core"
	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/stats"
	"mpdp/internal/vnet"
	"mpdp/internal/workload"
	"mpdp/internal/xrand"
)

func init() {
	Registry["E16"] = E16Composition
}

// composeVariant builds one chain layout per lane.
type composeVariant struct {
	name  string
	chain func() *nf.Chain
}

// composeVariants returns the three compositions under study. All run the
// same five logical NFs (classifier, firewall, router, monitor, DPI);
// only the composition differs.
func composeVariants() []composeVariant {
	return []composeVariant{
		{"sequential chain", func() *nf.Chain { return nf.PresetChain(5) }},
		{"parallel group (mon || dpi)", func() *nf.Chain {
			par := nf.NewParallelGroup("par",
				nf.NewMonitor("mon"),
				nf.NewDPI("dpi", nf.DefaultSignatures, false),
			)
			return nf.NewChain("sfc-par",
				nf.PresetClassifier(), nf.PresetFirewall(20), nf.PresetRouter(), par)
		}},
		{"sequential dual-DPI (2x signatures)", func() *nf.Chain {
			return nf.NewChain("sfc-seq2",
				nf.PresetClassifier(), nf.PresetFirewall(20), nf.PresetRouter(),
				nf.NewMonitor("mon"),
				nf.NewDPI("dpiA", nf.DefaultSignatures, false),
				nf.NewDPI("dpiB", []string{
					"X-Shard-B: ransom-note-marker",
					"\xde\xad\xbe\xef\xde\xad\xbe\xef",
					"wget http://198.51.100.9/stage2",
				}, false))
		}},
		{"parallel dual-DPI (2x signatures)", func() *nf.Chain {
			// Delay-balanced parallelism: two equally expensive DPI
			// instances with disjoint signature shards scan concurrently —
			// double the inspection coverage at roughly single-DPI latency.
			par := nf.NewParallelGroup("par2",
				nf.NewDPI("dpiA", nf.DefaultSignatures, false),
				nf.NewDPI("dpiB", []string{
					"X-Shard-B: ransom-note-marker",
					"\xde\xad\xbe\xef\xde\xad\xbe\xef",
					"wget http://198.51.100.9/stage2",
				}, false),
			)
			return nf.NewChain("sfc-par2",
				nf.PresetClassifier(), nf.PresetFirewall(20), nf.PresetRouter(),
				nf.NewMonitor("mon"), par)
		}},
		{"fast-path branch (lat skips dpi)", func() *nf.Chain {
			common := []nf.Element{nf.PresetFirewall(20), nf.PresetRouter(), nf.NewMonitor("mon")}
			fast := nf.NewChain("fast", common...)
			slowElems := append(append([]nf.Element{}, common...),
				nf.NewDPI("dpi", nf.DefaultSignatures, false))
			slow := nf.NewChain("slow", slowElems...)
			br := nf.NewBranch("fp", func(p *packet.Packet) int {
				if nf.ClassOf(p) == nf.ClassLatencySensitive {
					return 0
				}
				return 1
			}, fast, slow)
			return nf.NewChain("sfc-branch", nf.PresetClassifier(), br)
		}},
	}
}

// E16Composition — NF composition (the ParaGraph axis) crossed with
// multipath: does composing the chain differently stack with scheduling?
func E16Composition(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E16",
		Title: "NF composition x multipath @ 70% load (4 paths, moderate interference)",
		Notes: []string{
			"same five logical NFs, three compositions, identical arrival rate (calibrated to the sequential chain)",
			"expected shape: parallel/branch compositions cut base service time (p50); multipath cuts queueing (p99); the effects stack",
		},
	}
	tab := Table{
		Name: "E16t", Title: "composition x steering",
		Columns: []string{"composition", "policy", "service_mean_us", "p50_us", "p99_us", "delivery_%"},
	}
	for _, v := range composeVariants() {
		for _, pol := range []string{"rss", "mpdp"} {
			var svc, p50, p99, del float64
			for seed := 0; seed < opts.Seeds; seed++ {
				r, err := runComposition(opts.Seed+uint64(seed)*7919, pol, v, opts)
				if err != nil {
					return nil, err
				}
				svc += r[0]
				p50 += r[1]
				p99 += r[2]
				del += r[3]
			}
			n := float64(opts.Seeds)
			tab.Rows = append(tab.Rows, []string{
				v.name, pol,
				fmt.Sprintf("%.2f", svc/n),
				fmt.Sprintf("%.1f", p50/n),
				fmt.Sprintf("%.1f", p99/n),
				fmt.Sprintf("%.2f", del/n),
			})
		}
	}
	res.Tables = append(res.Tables, tab)
	return res, nil
}

// runComposition runs one (composition, policy) cell and returns
// [serviceMeanUs, p50Us, p99Us, delivery%].
func runComposition(seed uint64, policyName string, v composeVariant, opts SuiteOpts) ([4]float64, error) {
	var out [4]float64
	rng := xrand.New(seed)
	policy, err := NewPolicy(policyName, rng.Split(), PolicyParams{})
	if err != nil {
		return out, err
	}
	s := sim.New()

	sizes := workload.IMIX{Rng: rng.Split()}
	// Calibrate on the sequential chain so every composition sees the
	// same packet rate: composition benefits show as latency, not load.
	meanCost := workload.MeanServiceCost(nf.PresetChain(5), sizes, rng.Split(), 300)
	gap := sim.Duration(float64(meanCost+150) / (0.7 * 4))

	traffic := workload.NewTraffic(workload.TrafficConfig{
		Arrival: workload.NewPoisson(rng.Split(), gap),
		Size:    sizes,
		Flows:   64,
		Rng:     rng.Split(),
	})

	measured := stats.NewHist()
	dp := core.New(s, core.Config{
		NumPaths:     4,
		ChainFactory: func(i int) *nf.Chain { return v.chain() },
		Policy:       policy,
		JitterSigma:  0.15,
		Interference: vnet.DefaultInterferenceConfig(),
		Seed:         seed,
	}, func(p *packet.Packet) { measured.Record(int64(p.Latency())) })
	finish := attachVerify(dp)

	cls := nf.PresetClassifier()
	horizon := opts.duration(25 * sim.Millisecond)
	traffic.Run(s, func(p *packet.Packet) {
		cls.Process(s.Now(), p)
		dp.Ingress(p)
	}, horizon)
	s.RunUntil(horizon + 10*sim.Millisecond)
	dp.Flush()
	s.RunUntil(horizon + 12*sim.Millisecond)
	if err := finish(true); err != nil {
		return out, err
	}

	m := dp.Metrics()
	out[0] = m.ServiceTime.Mean() / 1000
	out[1] = float64(measured.Percentile(0.50)) / 1000
	out[2] = float64(measured.Percentile(0.99)) / 1000
	out[3] = m.DeliveryRate() * 100
	return out, nil
}
