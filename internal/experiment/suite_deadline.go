package experiment

import (
	"fmt"
	"sync"
	"time"

	"mpdp/internal/core"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/stats"
	"mpdp/internal/transport"
)

func init() {
	Registry["E22"] = E22DeadlineFrontier
}

// E22DeadlineFrontier — the cost/tail frontier of deadline-aware
// duplication, in sim and on the loopback wire.
//
// The paper's tail win is bought with duplicated bytes; the existing menu
// only offers the two extremes (never duplicate / always duplicate). E22
// measures what the DeadlineAware policy buys between them: every
// contender runs the same moderate-interference workload with a 2 ms
// per-packet deadline stamped at ingress, so deadline-hit-rate and p99 are
// comparable across the whole menu, and duplicated bytes put every policy
// on the same cost axis.
//
//   - Table 1 / Figure 1: the policy menu — p99, deadline-hit rate, and
//     duplication cost per policy. The acceptance shape: "deadline" lands
//     within 10% of dup-all's p99 while spending well under half its
//     duplicated bytes.
//   - Figure 2: the frontier — the deadline policy swept across DupBudget
//     rates from zero to effectively-unbounded, tracing duplicated-byte
//     fraction (x) against p99 (y), with jsq and dup-all as the endpoints.
//   - Table 2: the wire leg — the same policy shapes (rr, least-inflight,
//     hedge, deadline) on real loopback UDP paths under injected delay
//     faults, scored against the same 2 ms deadline.
func E22DeadlineFrontier(opts SuiteOpts) (*Result, error) {
	opts.fill()
	dur := opts.duration(50 * sim.Millisecond)
	// Sim latencies at util 0.7 sit in the tens-to-hundreds of microseconds,
	// so the deadline that makes escalation a live decision is ~100 µs: loose
	// enough that the best path usually suffices, tight enough that moderate
	// interference puts a real fraction of packets at risk. (The wire leg
	// keeps the 2 ms flag default — loopback RTTs against 3 ms delay faults
	// live on a millisecond scale.)
	const deadline = 100 * sim.Microsecond

	res := &Result{
		ID:    "E22",
		Title: "deadline-aware duplication: cost/tail frontier, sim + loopback wire",
		Notes: []string{
			"expected shape: deadline matches (or beats) dup-all's p99 at a small fraction of its duplicated bytes; budget zero degrades to best-single-path",
		},
	}

	// --- Sim leg: the policy menu on one common workload. ---------------
	base := RunConfig{
		NumPaths:     4,
		Util:         0.7,
		Interference: "moderate",
		Deadline:     deadline,
		Duration:     dur,
	}
	menu := []struct {
		label  string
		policy string
		budget float64 // DupBudgetBps; 0 = policy default, <0 = budget zero
	}{
		{"rr", "rr", 0},
		{"jsq", "jsq", 0},
		{"dup-all", "dup-all", 0},
		{"mpdp", "mpdp", 0},
		{"deadline", "deadline", 0},
		{"deadline-b0", "deadline", -1},
	}
	tab := Table{
		Name:    "E22",
		Title:   fmt.Sprintf("policy menu @util 0.7, moderate interference, deadline %s", deadline),
		Columns: []string{"policy", "p99_us", "hit_pct", "dup_byte_pct", "dup_denied", "delivery_pct"},
	}
	fig := Figure{Name: "E22", Title: "duplication cost vs p99, policy menu", XLabel: "dup_byte_pct", YLabel: "p99_us"}
	var hedgeP99, hedgeDupPct float64
	var dlP99, dlDupPct float64
	for _, m := range menu {
		cfg := base
		cfg.Seed = opts.Seed
		cfg.Policy = m.policy
		cfg.DupBudgetBps = m.budget
		rs, err := RunSeeds(cfg, opts.Seeds)
		if err != nil {
			return nil, err
		}
		p99 := MeanP99Micros(rs)
		var hitPct, dupPct, delivPct, denied float64
		for _, r := range rs {
			hitPct += r.DeadlineHitRate * 100
			delivPct += r.DeliveryRate * 100
			dupPct += 100 * float64(r.DupBytes) / float64(max64(r.OfferedBytes, 1))
			if r.DeadlineSched != nil {
				denied += float64(r.DeadlineSched.Denied)
			}
		}
		n := float64(len(rs))
		hitPct, dupPct, delivPct, denied = hitPct/n, dupPct/n, delivPct/n, denied/n
		switch m.label {
		case "dup-all":
			hedgeP99, hedgeDupPct = p99, dupPct
		case "deadline":
			dlP99, dlDupPct = p99, dupPct
		}
		tab.Rows = append(tab.Rows, []string{
			m.label,
			fmt.Sprintf("%.1f", p99),
			fmt.Sprintf("%.2f", hitPct),
			fmt.Sprintf("%.3f", dupPct),
			fmt.Sprintf("%.0f", denied),
			fmt.Sprintf("%.1f", delivPct),
		})
		fig.Curves = append(fig.Curves, Curve{
			Label:  m.label,
			Points: []Point{{X: dupPct, Y: p99}},
		})
	}
	if hedgeP99 > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"acceptance: deadline p99 %.1fus vs dup-all %.1fus (%.2fx) at %.3f%% vs %.3f%% duplicated bytes",
			dlP99, hedgeP99, dlP99/hedgeP99, dlDupPct, hedgeDupPct))
	}
	res.Tables = append(res.Tables, tab)
	res.Figures = append(res.Figures, fig)

	// --- Frontier: sweep the deadline policy's budget rate. -------------
	frontier := Figure{Name: "E22f", Title: "deadline policy: dup-budget sweep (cost/tail frontier)", XLabel: "dup_byte_pct", YLabel: "p99_us"}
	curve := Curve{Label: "deadline"}
	budgets := []struct {
		label string
		bps   float64
		burst float64
	}{
		{"0", -1, 0},
		{"64KBps", 64 << 10, 0},
		{"256KBps", 256 << 10, 0},
		{"1MBps", 1 << 20, 0},
		{"4MBps", 4 << 20, 0},
		{"16MBps", 16 << 20, 0},
	}
	if opts.Quick {
		budgets = budgets[:4:4]
	}
	for _, b := range budgets {
		cfg := base
		cfg.Seed = opts.Seed
		cfg.Policy = "deadline"
		cfg.DupBudgetBps = b.bps
		cfg.DupBudgetBurst = b.burst
		rs, err := RunSeeds(cfg, opts.Seeds)
		if err != nil {
			return nil, err
		}
		var dupPct float64
		for _, r := range rs {
			dupPct += 100 * float64(r.DupBytes) / float64(max64(r.OfferedBytes, 1))
		}
		dupPct /= float64(len(rs))
		curve.Points = append(curve.Points, Point{X: dupPct, Y: MeanP99Micros(rs)})
	}
	frontier.Curves = append(frontier.Curves, curve)
	res.Figures = append(res.Figures, frontier)

	// --- Wire leg: the same shapes on loopback UDP under burst faults. --
	// The fault model is the paper's: episodic last-mile degradation (a
	// burst of 3 ms delays on one path), not i.i.d. per-frame noise. A
	// telemetry-driven scheduler can react to an episode — the first
	// delayed acks inflate the path's RTT/jitter estimate, steering and
	// escalation cover the rest of the burst — whereas uncorrelated
	// single-frame faults are unpredictable by construction and only
	// blanket duplication can absorb them.
	packets := uint64(4000)
	if opts.Quick {
		packets = 1000
	}
	wtab := Table{
		Name:    "E22w",
		Title:   "loopback wire: 3ms delay bursts on path 0, 2ms deadline",
		Columns: []string{"sched", "delivered", "hit_pct", "p99_ms", "dup_bytes", "frames"},
	}
	var wireHedge, wireDeadline e22WireRow
	for _, sched := range []transport.SchedulerName{
		transport.SchedRoundRobin,
		transport.SchedLeastInflight,
		transport.SchedHedge,
		transport.SchedDeadline,
	} {
		row, err := e22WireRun(sched, packets)
		if err != nil {
			return nil, err
		}
		switch sched {
		case transport.SchedHedge:
			wireHedge = row
		case transport.SchedDeadline:
			wireDeadline = row
		}
		wtab.Rows = append(wtab.Rows, []string{
			string(sched),
			fmt.Sprintf("%d", row.delivered),
			fmt.Sprintf("%.2f", row.hitPct),
			fmt.Sprintf("%.3f", row.p99ms),
			fmt.Sprintf("%d", row.dupBytes),
			fmt.Sprintf("%d", row.frames),
		})
	}
	if wireHedge.p99ms > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"wire acceptance: deadline p99 %.3fms vs hedge %.3fms (%.2fx) at %d vs %d duplicated bytes (%.1f%%)",
			wireDeadline.p99ms, wireHedge.p99ms, wireDeadline.p99ms/wireHedge.p99ms,
			wireDeadline.dupBytes, wireHedge.dupBytes,
			100*float64(wireDeadline.dupBytes)/float64(max64(wireHedge.dupBytes, 1))))
	}
	res.Tables = append(res.Tables, wtab)
	return res, nil
}

// e22WireRow is one loopback run condensed to the table's columns.
type e22WireRow struct {
	delivered uint64
	hitPct    float64
	p99ms     float64
	dupBytes  uint64
	frames    uint64
}

// e22WireRun drives one loopback run against the burst fault pattern. The
// send rate is paced (5000 pkt/s) so a burst spans many send intervals:
// reacting to the first late acks can still save most of the episode.
func e22WireRun(sched transport.SchedulerName, packets uint64) (e22WireRow, error) {
	var mu sync.Mutex
	lat := stats.NewHist()
	// Burst geometry scales with the packet count: two episodes per run,
	// each covering 1/8 of the frames sent while it is open.
	period := packets / 2
	if period == 0 {
		period = 1
	}
	rep, err := transport.RunLoopback(transport.LoopbackConfig{
		Paths:     2,
		Scheduler: sched,
		Deadline:  2 * time.Millisecond,
		// ~1 MiB/s of duplication with a deep enough burst to cover a
		// cluster of delayed-RTT escalations.
		DupBudgetBytesPerSec: 1 << 20,
		DupBudgetBurst:       64 << 10,
		Packets:              packets,
		Rate:                 5000,
		Payload:              256,
		// Health thresholds scaled to loopback RTTs: the sim-scaled 1 ms
		// blackhole watchdog would flap paths on every 3 ms burst and the
		// quarantine churn, not the scheduler, would set the tail.
		Health: core.HealthConfig{
			SuspectTimeout:    sim.Duration(200 * time.Millisecond),
			QuarantineBackoff: sim.Duration(50 * time.Millisecond),
			ProbeSuccesses:    4,
			DropWindowMin:     64,
		},
		Impairer: transport.NewBurstImpairer(transport.BurstImpairConfig{
			Path:   0,
			Period: period,
			Length: period / 8,
			Delay:  3 * time.Millisecond,
		}),
		OnDeliver: func(p *packet.Packet) {
			mu.Lock()
			lat.Record(int64(p.Delivered - p.Ingress))
			mu.Unlock()
		},
	})
	if err != nil {
		return e22WireRow{}, err
	}
	if err := rep.Verify(); err != nil {
		return e22WireRow{}, fmt.Errorf("experiment: E22 wire (%s): %w", sched, err)
	}
	row := e22WireRow{
		delivered: rep.Delivered,
		dupBytes:  rep.Sender.DupBytes,
		frames:    rep.Frames,
	}
	if total := rep.DeadlineHits + rep.DeadlineMisses; total > 0 {
		row.hitPct = 100 * float64(rep.DeadlineHits) / float64(total)
	}
	mu.Lock()
	row.p99ms = float64(lat.Percentile(0.99)) / 1e6
	mu.Unlock()
	return row, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
