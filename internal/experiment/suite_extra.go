package experiment

import (
	"fmt"

	"mpdp/internal/core"
	"mpdp/internal/nf"
	"mpdp/internal/sim"
	"mpdp/internal/vnet"
	"mpdp/internal/workload"
	"mpdp/internal/xrand"
)

func init() {
	Registry["E13"] = E13FlowFCT
	Registry["E14"] = E14QueueCapacity
	Registry["E15"] = E15ClassIsolation
}

// E15ClassIsolation — is priority queueing an alternative to multipath, or
// a complement? Latency-sensitive traffic shares the data plane with bulk
// flows under FIFO, strict-priority, and DRR disciplines, crossed with
// static RSS vs MPDP steering.
func E15ClassIsolation(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E15",
		Title: "class isolation: qdisc x steering @ 80% load, 40% bulk traffic",
		Notes: []string{
			"expected shape: priority queueing protects the latency class from bulk HoL blocking but not from interference (slow cores hit all bands); multipath fixes interference but not HoL; the combination wins",
		},
	}
	tab := Table{
		Name: "E15t", Title: "latency-sensitive-class p99 (us)",
		Columns: []string{"policy", "qdisc", "lat_class_p99", "bulk_class_p99", "delivery_%"},
	}
	var cfgs []RunConfig
	type cell struct{ pol, q string }
	var cells []cell
	for _, pol := range []string{"rss", "mpdp"} {
		for _, q := range []string{"fifo", "prio", "drr"} {
			cells = append(cells, cell{pol, q})
			cfgs = append(cfgs, seedConfigs(RunConfig{
				Seed: opts.Seed, Policy: pol, Util: 0.8, Qdisc: q,
				Interference: "moderate",
				// Heavier bulk share to create head-of-line pressure.
				BulkFraction: 0.4,
				SizeDist:     "imix", FlowSkew: 1.0,
				Duration: opts.duration(30 * sim.Millisecond),
			}, opts.Seeds)...)
		}
	}
	results, err := RunMany(cfgs, 0)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, c := range cells {
		rs := results[i : i+opts.Seeds]
		i += opts.Seeds
		var lat, bulk, del float64
		for _, r := range rs {
			lat += r.ClassP99[1]  // nf.ClassLatencySensitive
			bulk += r.ClassP99[2] // nf.ClassBulk
			del += r.DeliveryRate * 100
		}
		n := float64(len(rs))
		tab.Rows = append(tab.Rows, []string{
			c.pol, c.q,
			fmt.Sprintf("%.1f", lat/n),
			fmt.Sprintf("%.1f", bulk/n),
			fmt.Sprintf("%.2f", del/n),
		})
	}
	res.Tables = append(res.Tables, tab)
	return res, nil
}

// E13FlowFCT — flow completion times under the canonical web-search flow
// size distribution: mice FCT is the latency-sensitive metric, elephants
// measure bandwidth fairness.
func E13FlowFCT(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E13",
		Title: "flow completion time, web-search flow sizes (4 paths, moderate interference)",
		Notes: []string{
			"expected shape: mpdp cuts short-flow (mice) p99 FCT well below rss; long-flow FCT differs little (elephants are bandwidth-bound, not tail-bound)",
		},
	}
	tab := Table{
		Name: "E13t", Title: "FCT by flow class (us)",
		Columns: []string{"policy", "short_p50", "short_p99", "long_p50", "long_p99", "completed_%"},
	}
	for _, pol := range []string{"rss", "jsq", "letflow", "mpdp"} {
		var sp50, sp99, lp50, lp99, comp float64
		for seed := 0; seed < opts.Seeds; seed++ {
			r, err := runFlowFCT(opts.Seed+uint64(seed)*7919, pol, opts)
			if err != nil {
				return nil, err
			}
			sp50 += r[0]
			sp99 += r[1]
			lp50 += r[2]
			lp99 += r[3]
			comp += r[4]
		}
		n := float64(opts.Seeds)
		tab.Rows = append(tab.Rows, []string{
			pol,
			fmt.Sprintf("%.1f", sp50/n), fmt.Sprintf("%.1f", sp99/n),
			fmt.Sprintf("%.1f", lp50/n), fmt.Sprintf("%.1f", lp99/n),
			fmt.Sprintf("%.2f", comp/n),
		})
	}
	res.Tables = append(res.Tables, tab)
	return res, nil
}

// runFlowFCT runs one flow-level workload and returns
// [shortP50, shortP99, longP50, longP99, completed%] in µs / percent.
func runFlowFCT(seed uint64, policyName string, opts SuiteOpts) ([5]float64, error) {
	var out [5]float64
	rng := xrand.New(seed)
	policy, err := NewPolicy(policyName, rng.Split(), PolicyParams{})
	if err != nil {
		return out, err
	}
	s := sim.New()

	sizes := workload.WebSearch(rng.Split())
	// Calibrate flow arrival rate to ~60% utilization of 4 paths:
	// packets/flow × per-packet cost × flow rate = 0.6 × 4.
	meanCost := float64(workload.MeanServiceCost(nf.PresetChain(3), workload.Fixed{Bytes: 1500}, rng.Split(), 100) + 150)
	pktsPerFlow := sizes.Mean() / 1458 // MTU payload
	flowGap := sim.Duration(pktsPerFlow * meanCost / (0.6 * 4))

	fw := workload.NewFlowWorkload(workload.FlowConfig{
		MeanGap:   flowGap,
		Sizes:     sizes,
		PacketGap: 500 * sim.Nanosecond,
		Rng:       rng.Split(),
	})
	dp := core.New(s, core.Config{
		NumPaths:     4,
		ChainFactory: func(i int) *nf.Chain { return nf.PresetChain(3) },
		Policy:       policy,
		JitterSigma:  0.15,
		Interference: vnet.DefaultInterferenceConfig(),
		Seed:         seed,
		QueueCap:     2048, // elephants burst thousands of packets
	}, fw.Tracker.OnDeliver)
	finish := attachVerify(dp)

	horizon := opts.duration(60 * sim.Millisecond)
	fw.Run(s, dp.Ingress, horizon)
	// Elephants keep emitting past the horizon; allow a long drain.
	s.RunUntil(horizon + 100*sim.Millisecond)
	dp.Flush()
	s.RunUntil(horizon + 105*sim.Millisecond)
	if err := finish(true); err != nil {
		return out, err
	}

	tr := fw.Tracker
	if tr.ShortFCT.Count() == 0 {
		return out, fmt.Errorf("E13: no short flows completed (policy %s)", policyName)
	}
	out[0] = float64(tr.ShortFCT.Percentile(0.50)) / 1000
	out[1] = float64(tr.ShortFCT.Percentile(0.99)) / 1000
	out[2] = float64(tr.LongFCT.Percentile(0.50)) / 1000
	out[3] = float64(tr.LongFCT.Percentile(0.99)) / 1000
	out[4] = float64(tr.Completed()) / float64(tr.Started()) * 100
	return out, nil
}

// E14QueueCapacity — drop-tail sensitivity: how much buffer does each
// policy need at high load?
func E14QueueCapacity(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E14",
		Title: "queue-capacity sensitivity @ 85% load (4 paths, moderate interference)",
		Notes: []string{
			"expected shape: static hashing needs deep buffers to avoid loss (one hot lane overflows); adaptive multipath holds ~full delivery with small buffers, and its p99 grows more slowly with depth",
		},
	}
	figDel := Figure{Name: "E14a", Title: "delivery rate vs queue capacity", XLabel: "queue_cap", YLabel: "delivery_frac"}
	figP99 := Figure{Name: "E14b", Title: "p99 vs queue capacity", XLabel: "queue_cap", YLabel: "p99_us"}
	caps := []int{32, 64, 128, 256, 512}

	var cfgs []RunConfig
	policies := []string{"rss", "jsq", "mpdp"}
	for _, pol := range policies {
		for _, qc := range caps {
			cfgs = append(cfgs, seedConfigs(RunConfig{
				Seed: opts.Seed, Policy: pol, Util: 0.85, QueueCap: qc,
				Interference: "moderate",
				Duration:     opts.duration(25 * sim.Millisecond),
			}, opts.Seeds)...)
		}
	}
	results, err := RunMany(cfgs, 0)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, pol := range policies {
		cDel := Curve{Label: pol}
		cP99 := Curve{Label: pol}
		for _, qc := range caps {
			rs := results[i : i+opts.Seeds]
			i += opts.Seeds
			var del float64
			for _, r := range rs {
				del += r.DeliveryRate
			}
			cDel.Points = append(cDel.Points, Point{X: float64(qc), Y: del / float64(opts.Seeds)})
			cP99.Points = append(cP99.Points, Point{X: float64(qc), Y: MeanP99Micros(rs)})
		}
		figDel.Curves = append(figDel.Curves, cDel)
		figP99.Curves = append(figP99.Curves, cP99)
	}
	res.Figures = append(res.Figures, figDel, figP99)
	return res, nil
}
