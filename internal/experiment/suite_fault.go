package experiment

import (
	"fmt"

	"mpdp/internal/fault"
	"mpdp/internal/sim"
)

func init() {
	Registry["E20"] = E20FaultRecovery
}

// E20FaultRecovery — the fault-recovery timeline: one of the four lanes is
// silently killed (blackhole: it keeps accepting packets and swallows them)
// a third of the way into the run and never repaired. The figure tracks
// windowed p99 latency through the failure; the table condenses it to
// pre-failure p99, peak p99, time-to-recover, and delivery rate.
//
// The three contenders span the design space:
//
//   - single: the conventional single-path plane. Its only lane died; it
//     never recovers and delivers nothing for the rest of the run.
//   - rss: static hashing with failover — the health machinery steers the
//     dead queue's flows to a neighbor, but statically, so the survivors
//     carry an unbalanced load.
//   - mpdp: adaptive multipath — detection plus flowlet re-steering spreads
//     the dead lane's load across all survivors.
func E20FaultRecovery(opts SuiteOpts) (*Result, error) {
	opts.fill()
	dur := opts.duration(60 * sim.Millisecond)
	failAt := dur / 3
	const window = 2 * sim.Millisecond

	res := &Result{
		ID: "E20",
		Title: fmt.Sprintf("fault recovery: lane 0 blackholed at t=%.0fms (permanent), util 0.6",
			float64(failAt)/1e6),
		Notes: []string{
			"expected shape: single-path flatlines at the failure and never returns; rss and mpdp spike while the watchdog confirms the blackhole, then recover — rss settles higher (the dead queue's flows all land on one neighbor), mpdp re-spreads them",
		},
	}
	fig := Figure{Name: "E20", Title: "windowed p99 across a silent lane failure", XLabel: "t_ms", YLabel: "p99_us"}
	tab := Table{
		Name:    "E20",
		Title:   "recovery summary",
		Columns: []string{"policy", "paths", "prefail_p99_us", "peak_p99_us", "recover_ms", "delivery_pct", "quarantines", "canaries"},
	}

	contenders := []struct {
		policy string
		paths  int
	}{
		{"single", 1},
		{"rss", 4},
		{"mpdp", 4},
	}
	for _, c := range contenders {
		plan := &fault.Plan{
			Seed:  opts.Seed,
			Lanes: []fault.LaneFailure{{Path: 0, At: failAt, Mode: fault.ModeBlackhole}},
		}
		r, err := Run(RunConfig{
			Seed:     opts.Seed,
			Policy:   c.policy,
			NumPaths: c.paths,
			Util:     0.6,
			Fault:    plan,

			TimelineWindow: window,
			Duration:       dur,
			Warmup:         1, // the timeline wants the whole run
		})
		if err != nil {
			return nil, err
		}

		// Windowed p99 curve; windows with no deliveries (a dead single
		// path) simply end the curve.
		curve := Curve{Label: c.policy}
		var prefailSum float64
		var prefailN int
		peak := 0.0
		recover := -1.0
		for _, wp := range r.Timeline {
			if wp.Hist.Count() == 0 {
				continue
			}
			p99 := float64(wp.Hist.Percentile(0.99)) / 1000
			curve.Points = append(curve.Points, Point{X: float64(wp.Start) / 1e6, Y: p99})
			if wp.Start+int64(window) <= int64(failAt) {
				prefailSum += p99
				prefailN++
			}
		}
		prefail := 0.0
		if prefailN > 0 {
			prefail = prefailSum / float64(prefailN)
		}
		// Post-failure: the peak window, then the first window at or after
		// the peak back within 1.5x of the pre-failure p99 — time-to-recover
		// counts from the failure until the worst is over AND the tail is
		// back to normal, so a late spike can't be mistaken for recovery.
		peakStart := int64(-1)
		for _, wp := range r.Timeline {
			if wp.Start < int64(failAt) || wp.Hist.Count() == 0 {
				continue
			}
			if p99 := float64(wp.Hist.Percentile(0.99)) / 1000; p99 > peak {
				peak, peakStart = p99, wp.Start
			}
		}
		for _, wp := range r.Timeline {
			if wp.Start < peakStart || peakStart < 0 || wp.Hist.Count() == 0 {
				continue
			}
			if p99 := float64(wp.Hist.Percentile(0.99)) / 1000; prefail > 0 && p99 <= 1.5*prefail {
				recover = (float64(wp.Start) - float64(failAt)) / 1e6
				break
			}
		}
		recoverCell := "never"
		if recover >= 0 {
			recoverCell = fmt.Sprintf("%.1f", recover)
		}
		fig.Curves = append(fig.Curves, curve)
		tab.Rows = append(tab.Rows, []string{
			c.policy,
			fmt.Sprintf("%d", c.paths),
			fmt.Sprintf("%.1f", prefail),
			fmt.Sprintf("%.1f", peak),
			recoverCell,
			fmt.Sprintf("%.1f", r.DeliveryRate*100),
			fmt.Sprintf("%d", r.Quarantines),
			fmt.Sprintf("%d", r.Canaries),
		})
	}
	res.Tables = append(res.Tables, tab)
	res.Figures = append(res.Figures, fig)
	return res, nil
}
