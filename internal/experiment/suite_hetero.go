package experiment

import (
	"fmt"

	"mpdp/internal/sim"
	"mpdp/internal/vnet"
)

func init() {
	Registry["E19"] = E19Heterogeneous
}

// E19Heterogeneous — permanently asymmetric paths: lane speeds 1×/1×/2×/4×
// (e.g. two performance cores, one mid core, one efficiency core). Static
// equal-split policies waste the fast cores and drown the slow one;
// rate-aware and feedback policies find the true capacity split.
func E19Heterogeneous(opts SuiteOpts) (*Result, error) {
	opts.fill()
	res := &Result{
		ID:    "E19",
		Title: "heterogeneous path speeds (1x/1x/2x/4x slower) @ 60% load of true capacity",
		Notes: []string{
			"lane 2 is 2x slower, lane 3 is 4x slower; load calibrated to the aggregate true capacity",
			"expected shape: rss/rr split evenly and overload the slow lanes (drops, huge tails); wrr matches the rate split but ignores transients; jsq/mpdp find the split by feedback",
		},
	}
	tab := Table{
		Name: "E19t", Title: "on asymmetric cores",
		Columns: []string{"policy", "delivery_%", "p50_us", "p99_us", "slow_lane_share_%"},
	}
	slowdown := func(i int) vnet.Slowdown {
		switch i {
		case 2:
			return vnet.ConstantSlowdown(2)
		case 3:
			return vnet.ConstantSlowdown(4)
		default:
			return nil
		}
	}
	// True aggregate capacity = 1 + 1 + 1/2 + 1/4 = 2.75 core-equivalents;
	// Util is interpreted against NumPaths (4), so scale it down.
	util := 0.6 * 2.75 / 4

	for _, pol := range []string{"rss", "rr", "wrr", "jsq", "mpdp"} {
		rs, err := RunSeeds(RunConfig{
			Seed: opts.Seed, Policy: pol, Util: util,
			SlowdownFor: slowdown,
			Duration:    opts.duration(25 * sim.Millisecond),
		}, opts.Seeds)
		if err != nil {
			return nil, err
		}
		var del, p50, p99 float64
		for _, r := range rs {
			del += r.DeliveryRate * 100
			p50 += float64(r.Latency.P50) / 1000
			p99 += float64(r.Latency.P99) / 1000
		}
		n := float64(len(rs))
		// Fraction of served packets handled by the two slow lanes
		// (ideal = (0.5+0.25)/2.75 ≈ 27%), averaged across seeds.
		var share float64
		for _, r := range rs {
			var total, slow uint64
			for i, served := range r.PerPathServed {
				total += served
				if i >= 2 {
					slow += served
				}
			}
			if total > 0 {
				share += float64(slow) / float64(total) * 100
			}
		}
		share /= n
		tab.Rows = append(tab.Rows, []string{
			pol,
			fmt.Sprintf("%.2f", del/n),
			fmt.Sprintf("%.1f", p50/n),
			fmt.Sprintf("%.1f", p99/n),
			fmt.Sprintf("%.1f", share),
		})
	}
	res.Tables = append(res.Tables, tab)
	return res, nil
}
