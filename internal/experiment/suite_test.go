package experiment

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 21 {
		t.Fatalf("registry has %d experiments, want 21", len(ids))
	}
	if ids[0] != "E1" || ids[len(ids)-1] != "E22" {
		t.Fatalf("suite order wrong: %v", ids)
	}
}

// TestSuiteSmokeAll runs every experiment in quick mode — with the
// end-to-end invariant checker armed, so every run is also conservation-
// and order-checked — and verifies the structural integrity of what it
// emits. This is the suite's integration test; it is skipped under -short.
func TestSuiteSmokeAll(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke test skipped in -short mode")
	}
	SetVerify(true)
	defer SetVerify(false)
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Registry[id](SuiteOpts{Seed: 1, Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != id {
				t.Fatalf("result ID %q", res.ID)
			}
			if len(res.Figures) == 0 && len(res.Tables) == 0 {
				t.Fatal("experiment produced nothing")
			}
			for _, f := range res.Figures {
				if len(f.Curves) == 0 {
					t.Fatalf("figure %s has no curves", f.Name)
				}
				for _, c := range f.Curves {
					if len(c.Points) == 0 {
						t.Fatalf("curve %s of %s is empty", c.Label, f.Name)
					}
				}
			}
			for _, tab := range res.Tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("table %s has no rows", tab.Name)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Fatalf("table %s row width %d != %d cols", tab.Name, len(row), len(tab.Columns))
					}
				}
			}
			var b strings.Builder
			res.Render(&b)
			if !strings.Contains(b.String(), id+":") {
				t.Fatal("render missing experiment header")
			}
		})
	}
}

// TestHeadlineShapes verifies the qualitative claims the suite documents in
// EXPERIMENTS.md, at quick scale: who wins, in which direction.
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	// Shape 1 (E1): interference inflates the single-path tail far more
	// than the median.
	clean, err := Run(RunConfig{
		Seed: 5, NumPaths: 1, Policy: "single", Util: 0.5,
		Interference: "none", Duration: 10_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Run(RunConfig{
		Seed: 5, NumPaths: 1, Policy: "single", Util: 0.5,
		Interference: "heavy", Duration: 10_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	tailBlowup := float64(noisy.Latency.P99) / float64(clean.Latency.P99)
	medianBlowup := float64(noisy.Latency.P50) / float64(clean.Latency.P50)
	if tailBlowup < 5 {
		t.Fatalf("E1 shape: tail blowup only %.1fx", tailBlowup)
	}
	if medianBlowup > tailBlowup/2 {
		t.Fatalf("E1 shape: median blew up as much as the tail (%.1fx vs %.1fx)", medianBlowup, tailBlowup)
	}

	// Shape 2 (E2/E3): mpdp beats rss clearly at 70% load under
	// interference (averaged over seeds).
	rss, err := RunSeeds(RunConfig{
		Seed: 5, Policy: "rss", Util: 0.7, Interference: "moderate", Duration: 10_000_000,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	mpdp, err := RunSeeds(RunConfig{
		Seed: 5, Policy: "mpdp", Util: 0.7, Interference: "moderate", Duration: 10_000_000,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if MeanP99Micros(mpdp) >= MeanP99Micros(rss)/1.5 {
		t.Fatalf("E2 shape: mpdp p99 %.1f not well below rss %.1f",
			MeanP99Micros(mpdp), MeanP99Micros(rss))
	}

	// Shape 3 (E7): dup-all duplicates ~100%, mpdp stays within budget.
	dupAll, err := Run(RunConfig{
		Seed: 5, Policy: "dup-all", Util: 0.8, Interference: "moderate", Duration: 8_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dupAll.DupOverhead < 0.99 {
		t.Fatalf("dup-all overhead %.2f", dupAll.DupOverhead)
	}
	budgeted, err := Run(RunConfig{
		Seed: 5, Policy: "mpdp", Util: 0.8, Interference: "moderate", Duration: 8_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if budgeted.DupOverhead > 0.26 {
		t.Fatalf("mpdp dup overhead %.2f exceeds budget", budgeted.DupOverhead)
	}

	// Shape 4 (E8): rss never reorders; rr reorders massively.
	rr, err := Run(RunConfig{
		Seed: 5, Policy: "rr", Util: 0.7, Interference: "moderate", Duration: 8_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rss[0].Reorder.OOOFraction() != 0 {
		t.Fatalf("rss OOO fraction %v != 0", rss[0].Reorder.OOOFraction())
	}
	if rr.Reorder.OOOFraction() < 0.1 {
		t.Fatalf("rr OOO fraction %v suspiciously low", rr.Reorder.OOOFraction())
	}
}
