// Package fault is the deterministic fault-injection subsystem: a
// JSON-serializable Plan of scheduled failures that is armed against a
// running data plane. It models the last-mile failure taxonomy the health
// machinery in internal/core exists to survive:
//
//   - Lane failures — fail-stop (announced: the lane refuses traffic) and
//     blackhole (silent: the lane swallows traffic), with optional repair.
//   - Flapping lanes — repeated fail/repair cycles.
//   - NF error mode — a chain element that drops or corrupts a seeded
//     fraction of packets while active (a misbehaving NF replica).
//   - Telemetry lies — a path's latency feed reports optimistically,
//     pessimistically, or goes stale, without the packets changing at all.
//
// Everything is driven by the virtual clock and the plan's own seed, so a
// faulted run is exactly as reproducible as a clean one.
package fault

import (
	"encoding/json"
	"fmt"

	"mpdp/internal/core"
	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/vnet"
	"mpdp/internal/xrand"
)

// Failure modes for LaneFailure and Flap, as stable JSON strings.
const (
	// ModeFailStop is an announced failure: enqueues are refused.
	ModeFailStop = "fail-stop"
	// ModeBlackhole is a silent failure: packets are accepted and swallowed.
	ModeBlackhole = "blackhole"
)

// Telemetry fault modes.
const (
	// TelemetryOptimistic divides reported service/latency by Factor: the
	// path advertises itself as faster than it is, attracting traffic.
	TelemetryOptimistic = "optimistic"
	// TelemetryPessimistic multiplies reported numbers by Factor.
	TelemetryPessimistic = "pessimistic"
	// TelemetryStale suppresses observations entirely: estimates freeze at
	// their last pre-fault values.
	TelemetryStale = "stale"
)

// LaneFailure schedules one lane failure. All times are offsets from the
// start of the run (virtual time zero).
type LaneFailure struct {
	Path int          `json:"path"`
	At   sim.Duration `json:"at"`
	Mode string       `json:"mode"` // ModeFailStop or ModeBlackhole
	// RepairAfter, if > 0, restores the lane this long after the failure.
	// Health recovery still goes through quarantine + probing: repair makes
	// the lane *capable* again, canaries make it *trusted* again.
	RepairAfter sim.Duration `json:"repair_after,omitempty"`
}

// Flap schedules Count fail/repair cycles: down for Down, up for Up.
type Flap struct {
	Path  int          `json:"path"`
	Start sim.Duration `json:"start"`
	Down  sim.Duration `json:"down"`
	Up    sim.Duration `json:"up"`
	Count int          `json:"count"`
	Mode  string       `json:"mode"` // ModeFailStop or ModeBlackhole
}

// NFError puts a lane's chain into error mode for a window: a seeded
// fraction of packets is dropped and another fraction corrupted in flight.
// Unlike lane failures this is invisible to the engine except through its
// effects — exactly the case the drop-fraction health transition catches.
type NFError struct {
	// Path selects the lane; -1 applies to every lane (a uniform error rate
	// that must NOT get anyone quarantined).
	Path  int          `json:"path"`
	Start sim.Duration `json:"start"`
	// Stop ends the window; 0 means until the end of the run.
	Stop        sim.Duration `json:"stop,omitempty"`
	DropFrac    float64      `json:"drop_frac,omitempty"`
	CorruptFrac float64      `json:"corrupt_frac,omitempty"`
}

// TelemetryFault makes one path's telemetry lie or go stale for a window.
type TelemetryFault struct {
	Path  int          `json:"path"`
	Start sim.Duration `json:"start"`
	// Stop ends the window; 0 means until the end of the run.
	Stop   sim.Duration `json:"stop,omitempty"`
	Mode   string       `json:"mode"`
	Factor float64      `json:"factor,omitempty"` // default 4
}

// Plan is a complete, serializable fault schedule.
type Plan struct {
	// Seed drives the NF error element's randomness (default 1).
	Seed      uint64           `json:"seed,omitempty"`
	Lanes     []LaneFailure    `json:"lanes,omitempty"`
	Flaps     []Flap           `json:"flaps,omitempty"`
	NFErrors  []NFError        `json:"nf_errors,omitempty"`
	Telemetry []TelemetryFault `json:"telemetry,omitempty"`
}

// Empty reports whether the plan schedules nothing.
func (pl *Plan) Empty() bool {
	return pl == nil ||
		len(pl.Lanes) == 0 && len(pl.Flaps) == 0 && len(pl.NFErrors) == 0 && len(pl.Telemetry) == 0
}

// Validate checks mode strings and path indices against numPaths.
func (pl *Plan) Validate(numPaths int) error {
	if pl == nil {
		return nil
	}
	checkPath := func(kind string, p int, allowAll bool) error {
		if allowAll && p == -1 {
			return nil
		}
		if p < 0 || p >= numPaths {
			return fmt.Errorf("fault: %s path %d out of range [0,%d)", kind, p, numPaths)
		}
		return nil
	}
	for _, f := range pl.Lanes {
		if err := checkPath("lane failure", f.Path, false); err != nil {
			return err
		}
		if f.Mode != ModeFailStop && f.Mode != ModeBlackhole {
			return fmt.Errorf("fault: lane failure mode %q (want %q or %q)", f.Mode, ModeFailStop, ModeBlackhole)
		}
	}
	for _, f := range pl.Flaps {
		if err := checkPath("flap", f.Path, false); err != nil {
			return err
		}
		if f.Mode != ModeFailStop && f.Mode != ModeBlackhole {
			return fmt.Errorf("fault: flap mode %q (want %q or %q)", f.Mode, ModeFailStop, ModeBlackhole)
		}
		if f.Count <= 0 || f.Down <= 0 {
			return fmt.Errorf("fault: flap on path %d needs Count > 0 and Down > 0", f.Path)
		}
	}
	for _, f := range pl.NFErrors {
		if err := checkPath("nf error", f.Path, true); err != nil {
			return err
		}
		if f.DropFrac < 0 || f.DropFrac > 1 || f.CorruptFrac < 0 || f.CorruptFrac > 1 {
			return fmt.Errorf("fault: nf error fractions must be in [0,1]")
		}
	}
	for _, f := range pl.Telemetry {
		if err := checkPath("telemetry fault", f.Path, false); err != nil {
			return err
		}
		switch f.Mode {
		case TelemetryOptimistic, TelemetryPessimistic, TelemetryStale:
		default:
			return fmt.Errorf("fault: telemetry mode %q", f.Mode)
		}
	}
	return nil
}

// ParsePlan decodes a plan from JSON, rejecting unknown fields.
func ParsePlan(data []byte) (*Plan, error) {
	var pl Plan
	if err := json.Unmarshal(data, &pl); err != nil {
		return nil, fmt.Errorf("fault: parse plan: %w", err)
	}
	return &pl, nil
}

func failMode(mode string) vnet.FailMode {
	if mode == ModeBlackhole {
		return vnet.LaneBlackhole
	}
	return vnet.LaneFailStop
}

// Install arms the plan's lane failures, flaps, and telemetry faults against
// dp on its simulator. NF errors are NOT handled here — they live inside the
// chain; wrap each lane's chain with ElementFor at build time. Install
// validates the plan and must be called before the run starts (it schedules
// at absolute offsets from time zero).
func (pl *Plan) Install(dp *core.DataPlane) error {
	if pl.Empty() {
		return nil
	}
	s := dp.Sim()
	if err := pl.Validate(len(dp.Paths())); err != nil {
		return err
	}
	for _, f := range pl.Lanes {
		f := f
		s.At(sim.Time(f.At), func() { dp.FailPath(f.Path, failMode(f.Mode)) })
		if f.RepairAfter > 0 {
			s.At(sim.Time(f.At+f.RepairAfter), func() { dp.RestorePath(f.Path) })
		}
	}
	for _, f := range pl.Flaps {
		f := f
		period := f.Down + f.Up
		for k := 0; k < f.Count; k++ {
			down := f.Start + sim.Duration(k)*period
			s.At(sim.Time(down), func() { dp.FailPath(f.Path, failMode(f.Mode)) })
			s.At(sim.Time(down+f.Down), func() { dp.RestorePath(f.Path) })
		}
	}
	for _, f := range pl.Telemetry {
		f := f
		factor := f.Factor
		if factor <= 0 {
			factor = 4
		}
		dp.Paths()[f.Path].SetTelemetryTamper(func(now sim.Time, svc, lat sim.Duration) (sim.Duration, sim.Duration, bool) {
			if now < sim.Time(f.Start) || (f.Stop > 0 && now >= sim.Time(f.Stop)) {
				return svc, lat, true
			}
			switch f.Mode {
			case TelemetryStale:
				return 0, 0, false
			case TelemetryOptimistic:
				return sim.Duration(float64(svc) / factor), sim.Duration(float64(lat) / factor), true
			default: // TelemetryPessimistic
				return sim.Duration(float64(svc) * factor), sim.Duration(float64(lat) * factor), true
			}
		})
	}
	return nil
}

// ElementFor returns the error-mode element for lane path, or nil when the
// plan schedules no NF error there. Prepend the result to the lane's chain:
//
//	chain := nf.NewChain("faulty", append([]nf.Element{el}, stages...)...)
//
// Each lane gets its own element (chains are per-lane); randomness is
// derived from the plan seed and the lane index, so runs are reproducible.
func (pl *Plan) ElementFor(path int) *FaultyElement {
	if pl.Empty() {
		return nil
	}
	var windows []NFError
	for _, f := range pl.NFErrors {
		if f.Path == -1 || f.Path == path {
			windows = append(windows, f)
		}
	}
	if len(windows) == 0 {
		return nil
	}
	seed := pl.Seed
	if seed == 0 {
		seed = 1
	}
	return &FaultyElement{
		windows: windows,
		rng:     xrand.New(seed ^ (0x9e3779b97f4a7c15 * uint64(path+1))),
	}
}

// FaultyElement is the NF error mode: while any of its windows is active it
// drops a fraction of packets (verdict Drop, DropPolicy — indistinguishable
// from an ACL deny, which is the point) and corrupts another fraction by
// garbling payload bytes. Outside its windows it is a zero-cost no-op.
type FaultyElement struct {
	windows []NFError
	rng     *xrand.Rand

	dropped   uint64
	corrupted uint64
}

// Name implements nf.Element.
func (e *FaultyElement) Name() string { return "fault-injector" }

// active returns the strongest drop/corrupt fractions of any open window.
func (e *FaultyElement) active(now sim.Time) (drop, corrupt float64) {
	for _, w := range e.windows {
		if now < sim.Time(w.Start) || (w.Stop > 0 && now >= sim.Time(w.Stop)) {
			continue
		}
		if w.DropFrac > drop {
			drop = w.DropFrac
		}
		if w.CorruptFrac > corrupt {
			corrupt = w.CorruptFrac
		}
	}
	return drop, corrupt
}

// Process implements nf.Element.
func (e *FaultyElement) Process(now sim.Time, p *packet.Packet) nf.Result {
	drop, corrupt := e.active(now)
	if drop == 0 && corrupt == 0 {
		return nf.Result{Verdict: packet.Pass}
	}
	// The die is rolled once per packet: a packet is dropped, corrupted, or
	// spared, never both faults at once.
	u := e.rng.Float64()
	switch {
	case u < drop:
		e.dropped++
		p.Dropped = packet.DropPolicy
		return nf.Result{Verdict: packet.Drop, Cost: 25 * sim.Nanosecond}
	case u < drop+corrupt:
		e.corrupted++
		// Garble the payload tail, leaving headers parseable so the rest of
		// the chain still runs (corruption a checksum would catch, not one
		// that derails parsing).
		if n := len(p.Data); n > 0 {
			p.Data[n-1] ^= 0xFF
		}
		return nf.Result{Verdict: packet.Pass, Cost: 25 * sim.Nanosecond}
	}
	return nf.Result{Verdict: packet.Pass}
}

// Dropped returns packets the element discarded.
func (e *FaultyElement) Dropped() uint64 { return e.dropped }

// Corrupted returns packets the element garbled.
func (e *FaultyElement) Corrupted() uint64 { return e.corrupted }
