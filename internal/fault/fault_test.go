package fault

import (
	"encoding/json"
	"reflect"
	"testing"

	"mpdp/internal/core"
	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/vnet"
)

func validPlan() *Plan {
	return &Plan{
		Seed: 9,
		Lanes: []LaneFailure{
			{Path: 0, At: 2 * sim.Millisecond, Mode: ModeBlackhole, RepairAfter: 1 * sim.Millisecond},
		},
		Flaps: []Flap{
			{Path: 1, Start: 1 * sim.Millisecond, Down: 100 * sim.Microsecond, Up: 400 * sim.Microsecond, Count: 3, Mode: ModeFailStop},
		},
		NFErrors: []NFError{
			{Path: 2, Start: 0, Stop: 5 * sim.Millisecond, DropFrac: 0.5, CorruptFrac: 0.1},
		},
		Telemetry: []TelemetryFault{
			{Path: 3, Start: 0, Mode: TelemetryStale},
		},
	}
}

func TestPlanValidate(t *testing.T) {
	if err := validPlan().Validate(4); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(4); err != nil {
		t.Fatalf("nil plan rejected: %v", err)
	}
	if !nilPlan.Empty() || !(&Plan{}).Empty() {
		t.Fatal("empty plans not recognized")
	}
	if validPlan().Empty() {
		t.Fatal("non-empty plan reported empty")
	}

	bad := []*Plan{
		{Lanes: []LaneFailure{{Path: 4, Mode: ModeFailStop}}},             // path out of range
		{Lanes: []LaneFailure{{Path: 0, Mode: "explode"}}},                // unknown mode
		{Flaps: []Flap{{Path: 0, Mode: ModeFailStop, Count: 0, Down: 1}}}, // no cycles
		{Flaps: []Flap{{Path: 0, Mode: ModeFailStop, Count: 1, Down: 0}}}, // zero downtime
		{NFErrors: []NFError{{Path: -2}}},                                 // -1 is "all", -2 is junk
		{NFErrors: []NFError{{Path: 0, DropFrac: 1.5}}},                   // fraction out of range
		{Telemetry: []TelemetryFault{{Path: 0, Mode: "gaslight"}}},        // unknown telemetry mode
	}
	for i, pl := range bad {
		if err := pl.Validate(4); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
	// NFError path -1 means "every lane" and must validate.
	all := &Plan{NFErrors: []NFError{{Path: -1, DropFrac: 0.1}}}
	if err := all.Validate(4); err != nil {
		t.Fatalf("path -1 rejected: %v", err)
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	pl := validPlan()
	data, err := json.Marshal(pl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pl, back) {
		t.Fatalf("round trip changed the plan:\n  in:  %+v\n  out: %+v", pl, back)
	}
	if _, err := ParsePlan([]byte("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestElementForSelectsLanes(t *testing.T) {
	pl := &Plan{
		Seed: 3,
		NFErrors: []NFError{
			{Path: 1, DropFrac: 0.5},
			{Path: -1, CorruptFrac: 0.25},
		},
	}
	if el := pl.ElementFor(0); el == nil {
		t.Fatal("path -1 window should cover lane 0")
	}
	if el := pl.ElementFor(1); el == nil || len(el.windows) != 2 {
		t.Fatal("lane 1 should get its own window plus the catch-all")
	}
	only := &Plan{NFErrors: []NFError{{Path: 1, DropFrac: 0.5}}}
	if el := only.ElementFor(0); el != nil {
		t.Fatal("lane 0 has no scheduled error but got an element")
	}
	var nilPlan *Plan
	if el := nilPlan.ElementFor(0); el != nil {
		t.Fatal("nil plan produced an element")
	}
}

func mkPkt() *packet.Packet {
	return &packet.Packet{Data: []byte{1, 2, 3, 4}}
}

func TestFaultyElementWindows(t *testing.T) {
	pl := &Plan{
		Seed:     5,
		NFErrors: []NFError{{Path: 0, Start: 1 * sim.Millisecond, Stop: 2 * sim.Millisecond, DropFrac: 1}},
	}
	el := pl.ElementFor(0)

	// Before the window and after it: a zero-cost pass.
	for _, at := range []sim.Time{0, sim.Time(2 * sim.Millisecond), sim.Time(3 * sim.Millisecond)} {
		if res := el.Process(at, mkPkt()); res.Verdict != packet.Pass || res.Cost != 0 {
			t.Fatalf("element active outside its window at t=%d: %+v", at, res)
		}
	}
	// Inside: DropFrac 1 drops everything.
	p := mkPkt()
	if res := el.Process(sim.Time(1500*sim.Microsecond), p); res.Verdict != packet.Drop {
		t.Fatalf("DropFrac=1 passed a packet: %+v", res)
	}
	if p.Dropped != packet.DropPolicy {
		t.Fatalf("drop reason %v, want DropPolicy (indistinguishable from an ACL deny)", p.Dropped)
	}
	if el.Dropped() != 1 {
		t.Fatalf("Dropped() = %d", el.Dropped())
	}
}

func TestFaultyElementCorruptsAndIsDeterministic(t *testing.T) {
	pl := &Plan{
		Seed:     11,
		NFErrors: []NFError{{Path: 0, DropFrac: 0.3, CorruptFrac: 0.3}},
	}
	run := func() (verdicts []packet.Verdict, tail []byte) {
		el := pl.ElementFor(0)
		for i := 0; i < 200; i++ {
			p := mkPkt()
			res := el.Process(sim.Time(i)*sim.Time(sim.Microsecond), p)
			verdicts = append(verdicts, res.Verdict)
			tail = append(tail, p.Data[len(p.Data)-1])
		}
		return
	}
	v1, t1 := run()
	v2, t2 := run()
	if !reflect.DeepEqual(v1, v2) || !reflect.DeepEqual(t1, t2) {
		t.Fatal("same plan seed produced different fault sequences")
	}
	var drops, corrupts int
	for i := range v1 {
		if v1[i] == packet.Drop {
			drops++
		} else if t1[i] != 4 {
			corrupts++ // last payload byte garbled
		}
	}
	if drops < 30 || drops > 90 {
		t.Fatalf("%d/200 drops for DropFrac 0.3", drops)
	}
	if corrupts < 30 || corrupts > 90 {
		t.Fatalf("%d/200 corruptions for CorruptFrac 0.3", corrupts)
	}
	// Different lanes must not share a die.
	elA := pl.ElementFor(0)
	other := &Plan{Seed: 11, NFErrors: []NFError{{Path: -1, DropFrac: 0.3, CorruptFrac: 0.3}}}
	lane1 := other.ElementFor(1)
	same := true
	for i := 0; i < 50; i++ {
		a := elA.Process(0, mkPkt()).Verdict
		b := lane1.Process(0, mkPkt()).Verdict
		if a != b {
			same = false
		}
	}
	if same {
		t.Fatal("lane 0 and lane 1 rolled identical dice")
	}
}

func testDP(t *testing.T) (*sim.Simulator, *core.DataPlane) {
	t.Helper()
	s := sim.New()
	dp := core.New(s, core.Config{
		NumPaths: 4,
		ChainFactory: func(i int) *nf.Chain {
			return nf.NewChain("pass", nf.Func{
				ElemName: "pass",
				Fn: func(now sim.Time, p *packet.Packet) nf.Result {
					return nf.Result{Verdict: packet.Pass, Cost: 1 * sim.Microsecond}
				},
			})
		},
		Policy:   core.JSQ{},
		QueueCap: 64,
		Seed:     7,
	}, func(p *packet.Packet) {})
	return s, dp
}

func TestInstallSchedulesFailureAndRepair(t *testing.T) {
	s, dp := testDP(t)
	pl := &Plan{Lanes: []LaneFailure{{
		Path: 2, At: 1 * sim.Millisecond, Mode: ModeFailStop, RepairAfter: 1 * sim.Millisecond,
	}}}
	if err := pl.Install(dp); err != nil {
		t.Fatal(err)
	}
	var during, after vnet.FailMode
	s.At(sim.Time(1500*sim.Microsecond), func() { during = dp.Paths()[2].Lane.FailState() })
	s.At(sim.Time(2500*sim.Microsecond), func() { after = dp.Paths()[2].Lane.FailState() })
	s.Run()
	if during != vnet.LaneFailStop {
		t.Fatalf("lane state %v during scheduled failure, want fail-stop", during)
	}
	if after != vnet.LaneHealthy {
		t.Fatalf("lane state %v after scheduled repair, want healthy", after)
	}
}

func TestInstallFlapCycles(t *testing.T) {
	s, dp := testDP(t)
	pl := &Plan{Flaps: []Flap{{
		Path: 1, Start: 1 * sim.Millisecond,
		Down: 200 * sim.Microsecond, Up: 300 * sim.Microsecond,
		Count: 3, Mode: ModeFailStop,
	}}}
	if err := pl.Install(dp); err != nil {
		t.Fatal(err)
	}
	// Sample mid-down and mid-up of each of the three cycles.
	downs := make([]vnet.FailMode, 3)
	ups := make([]vnet.FailMode, 3)
	for k := 0; k < 3; k++ {
		k := k
		cycle := sim.Time(1*sim.Millisecond) + sim.Time(k)*sim.Time(500*sim.Microsecond)
		s.At(cycle+sim.Time(100*sim.Microsecond), func() { downs[k] = dp.Paths()[1].Lane.FailState() })
		s.At(cycle+sim.Time(350*sim.Microsecond), func() { ups[k] = dp.Paths()[1].Lane.FailState() })
	}
	s.Run()
	for k := 0; k < 3; k++ {
		if downs[k] != vnet.LaneFailStop {
			t.Fatalf("cycle %d: lane up mid-downtime (%v)", k, downs[k])
		}
		if ups[k] != vnet.LaneHealthy {
			t.Fatalf("cycle %d: lane down mid-uptime (%v)", k, ups[k])
		}
	}
}

func TestInstallRejectsInvalidPlan(t *testing.T) {
	_, dp := testDP(t)
	pl := &Plan{Lanes: []LaneFailure{{Path: 9, Mode: ModeFailStop}}}
	if err := pl.Install(dp); err == nil {
		t.Fatal("out-of-range path installed")
	}
	var nilPlan *Plan
	if err := nilPlan.Install(dp); err != nil {
		t.Fatalf("nil plan should install as a no-op: %v", err)
	}
}
