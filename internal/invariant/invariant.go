// Package invariant is the end-to-end checker for the multipath data plane:
// an Observer that shadows every packet from ingress to its fate and asserts
// the properties the engine promises no matter which policy, workload, or
// fault plan is running:
//
//   - Conservation: every injected packet is eventually delivered, consumed,
//     or conclusively lost — exactly once. At drain, nothing is outstanding.
//   - No duplicate delivery: selective duplication never hands the guest the
//     same packet twice.
//   - In-order delivery: with the reorder stage enabled, each flow's
//     delivered sequence numbers are strictly increasing.
//   - Monotone virtual time: per-packet timestamps advance through the
//     pipeline stages, and deliveries never run backwards in time.
//
// The checker is pure bookkeeping on the observer callbacks — it never
// mutates packets or engine state — so enabling it cannot change a run's
// outcome, only veto it.
package invariant

import (
	"fmt"
	"strings"

	"mpdp/internal/core"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// fates a packet can reach.
const (
	fateNone = iota
	fateDelivered
	fateLost
	fateConsumed
)

func fateName(f byte) string {
	switch f {
	case fateDelivered:
		return "delivered"
	case fateLost:
		return "lost"
	case fateConsumed:
		return "consumed"
	default:
		return "pending"
	}
}

// Options tunes the checker.
type Options struct {
	// CheckOrder asserts strictly-increasing per-flow delivery sequence
	// numbers. Turn off when the data plane runs with DisableReorder (the
	// ablation delivers in completion order by design).
	CheckOrder bool
	// MaxViolations bounds recorded violation messages (default 16; the
	// total count is always exact).
	MaxViolations int
}

// Checker implements core.Observer. Attach one per data plane, before the
// first ingress.
type Checker struct {
	dp   *core.DataPlane
	opts Options

	injected  uint64
	delivered uint64
	lost      uint64
	consumed  uint64

	fate    map[uint64]byte   // OrigID -> fate
	lastSeq map[uint64]uint64 // FlowID -> last delivered Seq + 1

	lastIngressAt  sim.Time
	lastDeliveryAt sim.Time

	nViolations uint64
	violations  []string
}

// Attach builds a checker and registers it as dp's observer.
func Attach(dp *core.DataPlane, opts Options) *Checker {
	if opts.MaxViolations == 0 {
		opts.MaxViolations = 16
	}
	c := &Checker{
		dp:      dp,
		opts:    opts,
		fate:    make(map[uint64]byte),
		lastSeq: make(map[uint64]uint64),
	}
	dp.SetObserver(c)
	return c
}

func (c *Checker) violate(format string, args ...any) {
	c.nViolations++
	if len(c.violations) < c.opts.MaxViolations {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

// PacketIngress implements core.Observer.
func (c *Checker) PacketIngress(p *packet.Packet) {
	c.injected++
	if f, seen := c.fate[p.OrigID]; seen {
		c.violate("packet %d injected twice (already %s)", p.OrigID, fateName(f))
		return
	}
	c.fate[p.OrigID] = fateNone
	if p.Ingress < c.lastIngressAt {
		c.violate("packet %d ingress time %d before previous ingress %d", p.OrigID, p.Ingress, c.lastIngressAt)
	}
	c.lastIngressAt = p.Ingress
}

// settle moves OrigID to fate f, catching double-settlement.
func (c *Checker) settle(p *packet.Packet, f byte) bool {
	prev, seen := c.fate[p.OrigID]
	if !seen {
		c.violate("packet %d %s without ingress", p.OrigID, fateName(f))
		return false
	}
	if prev != fateNone {
		c.violate("packet %d %s after already being %s", p.OrigID, fateName(f), fateName(prev))
		return false
	}
	c.fate[p.OrigID] = f
	return true
}

// PacketDelivered implements core.Observer.
func (c *Checker) PacketDelivered(p *packet.Packet) {
	c.delivered++
	if !c.settle(p, fateDelivered) {
		return
	}
	// Global delivery-time monotonicity: the simulator fires events in time
	// order, so a regression here means a stage backdated a packet.
	if p.Delivered < c.lastDeliveryAt {
		c.violate("packet %d delivered at %d after a delivery at %d", p.OrigID, p.Delivered, c.lastDeliveryAt)
	}
	c.lastDeliveryAt = p.Delivered
	// Per-packet stage monotonicity.
	if p.Enqueued < p.Ingress || p.ServiceAt < p.Enqueued || p.Done < p.ServiceAt || p.Delivered < p.Done {
		c.violate("packet %d timestamps not monotone: ingress=%d enq=%d svc=%d done=%d dlv=%d",
			p.OrigID, p.Ingress, p.Enqueued, p.ServiceAt, p.Done, p.Delivered)
	}
	// Per-flow order.
	if c.opts.CheckOrder {
		if next, seen := c.lastSeq[p.FlowID]; seen && p.Seq < next {
			c.violate("flow %x delivered seq %d after seq %d", p.FlowID, p.Seq, next-1)
		}
		c.lastSeq[p.FlowID] = p.Seq + 1
	}
}

// PacketLost implements core.Observer.
func (c *Checker) PacketLost(p *packet.Packet, reason packet.DropReason) {
	c.lost++
	if !c.settle(p, fateLost) {
		return
	}
	if reason == packet.NotDropped {
		c.violate("packet %d reported lost with no drop reason", p.OrigID)
	}
}

// PacketConsumed implements core.Observer.
func (c *Checker) PacketConsumed(p *packet.Packet) {
	c.consumed++
	c.settle(p, fateConsumed)
}

// Outstanding returns injected packets that have not yet reached a fate.
func (c *Checker) Outstanding() uint64 {
	done := c.delivered + c.consumed + c.lost
	if c.injected < done {
		return 0
	}
	return c.injected - done
}

// Violations returns the recorded violation messages (capped) and the exact
// total count.
func (c *Checker) Violations() ([]string, uint64) { return c.violations, c.nViolations }

// Finish runs the end-of-run checks and returns an error describing every
// violation found, or nil. requireDrained asserts full conservation — the
// caller flushed the plane and ran the simulator dry, so nothing may be
// outstanding. Without it (open-ended runs cut off mid-flight), the
// outstanding packets must at least be accounted for by copies still inside
// lanes or parked in the reorder buffer.
func (c *Checker) Finish(requireDrained bool) error {
	m := c.dp.Metrics()
	if m.Offered() != c.injected {
		c.violate("engine offered %d != observed ingress %d", m.Offered(), c.injected)
	}
	if m.Delivered() != c.delivered {
		c.violate("engine delivered %d != observed %d", m.Delivered(), c.delivered)
	}
	if m.Consumed() != c.consumed {
		c.violate("engine consumed %d != observed %d", m.Consumed(), c.consumed)
	}
	// Over-delivery: Metrics.TotalLost computes offered-delivered-consumed
	// and clamps a negative result to 0, so a duplicate-delivery bug would
	// vanish from the loss accounting. Catch it here on the raw counters.
	if done := m.Delivered() + m.Consumed(); done > m.Offered() {
		c.violate("over-delivery: delivered %d + consumed %d exceeds offered %d (TotalLost clamps this to 0)",
			m.Delivered(), m.Consumed(), m.Offered())
	}

	out := c.Outstanding()
	if requireDrained {
		if out != 0 {
			c.violate("conservation: %d packets outstanding at drain (injected=%d delivered=%d consumed=%d lost=%d)",
				out, c.injected, c.delivered, c.consumed, c.lost)
		}
	} else if out > 0 {
		// Each outstanding packet must have at least one copy physically
		// somewhere: in a lane or waiting in the reorder buffer. (With
		// duplication the sum over-counts, hence <=.)
		held := uint64(c.dp.ReorderStats().PendingPkts)
		for _, ps := range c.dp.Paths() {
			if n := ps.InFlight(); n > 0 {
				held += uint64(n)
			}
		}
		if out > held {
			c.violate("conservation: %d packets outstanding but only %d copies held in lanes+reorder", out, held)
		}
	}

	if c.nViolations == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "invariant: %d violation(s):", c.nViolations)
	for _, v := range c.violations {
		b.WriteString("\n  - ")
		b.WriteString(v)
	}
	if uint64(len(c.violations)) < c.nViolations {
		fmt.Fprintf(&b, "\n  … and %d more", c.nViolations-uint64(len(c.violations)))
	}
	return fmt.Errorf("%s", b.String())
}
