package invariant

import (
	"strings"
	"testing"

	"mpdp/internal/core"
	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/vnet"
)

// mk builds a packet with consistent, monotone stage timestamps starting at t0.
func mk(id, flow, seq uint64, t0 sim.Time) *packet.Packet {
	return &packet.Packet{
		ID: id, OrigID: id, FlowID: flow, Seq: seq,
		Ingress: t0, Enqueued: t0 + 1, ServiceAt: t0 + 2, Done: t0 + 3, Delivered: t0 + 4,
	}
}

// idleChecker attaches a checker to a data plane that never runs, so the
// per-event checks can be driven by hand.
func idleChecker(t *testing.T, opts Options) *Checker {
	t.Helper()
	s := sim.New()
	dp := core.New(s, core.Config{
		NumPaths:     2,
		ChainFactory: func(i int) *nf.Chain { return passChain() },
		Policy:       core.JSQ{},
		Seed:         1,
	}, func(p *packet.Packet) {})
	return Attach(dp, opts)
}

func passChain() *nf.Chain {
	return nf.NewChain("pass", nf.Func{
		ElemName: "pass",
		Fn: func(now sim.Time, p *packet.Packet) nf.Result {
			return nf.Result{Verdict: packet.Pass, Cost: 1 * sim.Microsecond}
		},
	})
}

func wantViolation(t *testing.T, c *Checker, substr string) {
	t.Helper()
	msgs, n := c.Violations()
	if n == 0 {
		t.Fatalf("no violation recorded, want one containing %q", substr)
	}
	for _, m := range msgs {
		if strings.Contains(m, substr) {
			return
		}
	}
	t.Fatalf("no violation contains %q; got %v", substr, msgs)
}

func TestCatchesDoubleDelivery(t *testing.T) {
	c := idleChecker(t, Options{})
	p := mk(1, 7, 0, 100)
	c.PacketIngress(p)
	c.PacketDelivered(p)
	if _, n := c.Violations(); n != 0 {
		t.Fatalf("clean deliver flagged: %v", n)
	}
	c.PacketDelivered(p)
	wantViolation(t, c, "after already being delivered")
}

func TestCatchesDeliveryWithoutIngress(t *testing.T) {
	c := idleChecker(t, Options{})
	c.PacketDelivered(mk(99, 7, 0, 100))
	wantViolation(t, c, "without ingress")
}

func TestCatchesOutOfOrderDelivery(t *testing.T) {
	c := idleChecker(t, Options{CheckOrder: true})
	a := mk(1, 7, 0, 100)
	b := mk(2, 7, 1, 105)
	c.PacketIngress(a)
	c.PacketIngress(b)
	c.PacketDelivered(b)
	c.PacketDelivered(a) // seq 0 after seq 1
	wantViolation(t, c, "delivered seq")

	// Without CheckOrder the same sequence is legal (DisableReorder mode).
	c2 := idleChecker(t, Options{})
	a2, b2 := mk(1, 7, 0, 100), mk(2, 7, 1, 105)
	c2.PacketIngress(a2)
	c2.PacketIngress(b2)
	c2.PacketDelivered(b2)
	a2.Delivered = 110 // keep global delivery time monotone
	c2.PacketDelivered(a2)
	if _, n := c2.Violations(); n != 0 {
		t.Fatalf("order flagged with CheckOrder off: %d violations", n)
	}
}

func TestCatchesNonMonotoneTimestamps(t *testing.T) {
	c := idleChecker(t, Options{})
	p := mk(1, 7, 0, 100)
	p.Done = p.Delivered + 50 // finished service after delivery?
	c.PacketIngress(p)
	c.PacketDelivered(p)
	wantViolation(t, c, "timestamps not monotone")
}

func TestCatchesLostWithoutReason(t *testing.T) {
	c := idleChecker(t, Options{})
	p := mk(1, 7, 0, 100)
	c.PacketIngress(p)
	c.PacketLost(p, packet.NotDropped)
	wantViolation(t, c, "no drop reason")
}

func TestCatchesLostAfterDelivered(t *testing.T) {
	c := idleChecker(t, Options{})
	p := mk(1, 7, 0, 100)
	c.PacketIngress(p)
	c.PacketDelivered(p)
	c.PacketLost(p, packet.DropQueueFull)
	wantViolation(t, c, "lost after already being delivered")
}

func TestOutstandingCounts(t *testing.T) {
	c := idleChecker(t, Options{})
	for i := uint64(1); i <= 3; i++ {
		c.PacketIngress(mk(i, 7, i-1, sim.Time(100*i)))
	}
	if got := c.Outstanding(); got != 3 {
		t.Fatalf("Outstanding() = %d, want 3", got)
	}
	c.PacketDelivered(mk(1, 7, 0, 100))
	if got := c.Outstanding(); got != 2 {
		t.Fatalf("Outstanding() = %d, want 2", got)
	}
}

// engineRun drives real traffic through an engine with the checker attached.
func engineRun(t *testing.T, policy core.Policy, pkts int, fail bool) (*core.DataPlane, *Checker) {
	t.Helper()
	s := sim.New()
	dp := core.New(s, core.Config{
		NumPaths:     4,
		ChainFactory: func(i int) *nf.Chain { return passChain() },
		Policy:       policy,
		QueueCap:     128,
		Seed:         21,
	}, func(p *packet.Packet) {})
	chk := Attach(dp, Options{CheckOrder: true})
	if fail {
		s.At(sim.Time(200*sim.Microsecond), func() { dp.FailPath(0, vnet.LaneBlackhole) })
	}
	for i := 0; i < pkts; i++ {
		key := packet.FlowKey{
			SrcIP: packet.IP4(10, 0, 0, byte(i%5)), DstIP: packet.IP4(10, 1, 0, 1),
			SrcPort: uint16(1000 + i%5), DstPort: 80, Proto: packet.ProtoUDP,
		}
		p := &packet.Packet{
			Data: packet.BuildUDP(key, make([]byte, 64), packet.BuildOpts{}),
			Flow: key, FlowID: key.Hash64(),
		}
		s.At(sim.Time(i)*sim.Time(700*sim.Nanosecond), func() { dp.Ingress(p) })
	}
	s.Run()
	dp.Flush()
	s.Run()
	return dp, chk
}

func TestCleanEngineRunPasses(t *testing.T) {
	for _, pol := range []core.Policy{core.JSQ{}, &core.RoundRobin{}, core.Redundant{K: 2}} {
		_, chk := engineRun(t, pol, 1500, false)
		if err := chk.Finish(true); err != nil {
			t.Fatalf("%T: %v", pol, err)
		}
	}
}

func TestFaultedEngineRunPasses(t *testing.T) {
	// A blackhole mid-run: packets are lost, but every loss must still be
	// accounted, and conservation must hold at drain.
	_, chk := engineRun(t, core.JSQ{}, 1500, true)
	if err := chk.Finish(true); err != nil {
		t.Fatal(err)
	}
}

func TestFinishCatchesPhantomIngress(t *testing.T) {
	_, chk := engineRun(t, core.JSQ{}, 200, false)
	// An ingress the engine never saw: offered-vs-observed must mismatch,
	// and the packet stays outstanding at drain.
	chk.PacketIngress(mk(1<<40, 9, 0, 1<<40))
	err := chk.Finish(true)
	if err == nil {
		t.Fatal("phantom ingress not caught")
	}
	if !strings.Contains(err.Error(), "outstanding at drain") {
		t.Fatalf("error misses conservation: %v", err)
	}
}
