package invariant

import (
	"fmt"
	"strings"
	"sync"
)

// Stream is the endpoint-independent sibling of Checker: where Checker
// attaches to one core.DataPlane's observer callbacks, Stream shadows a
// logical delivery stream whose two ends live in different components —
// the mesh client notes every (flow, seq) it sends, and whichever node
// owns the flow at delivery time (including a new owner after a
// drain/handoff) notes it surfacing. The asserted properties are the
// ones ownership migration must not break:
//
//   - At-most-once: each (flow, seq) surfaces at most once, no matter
//     how many nodes touched the flow.
//   - In-order: each flow's delivered seqs are strictly increasing even
//     across an ownership change.
//   - No invention: every delivered (flow, seq) was actually sent.
//   - Conservation (at Finish): delivered never exceeds sent, per flow
//     and in total. Losses are legal — the wire is UDP.
//
// Safe for concurrent use: the sender and every node feed the same
// checker.
type Stream struct {
	mu sync.Mutex

	nextSent map[uint64]uint64 // flow -> next unsent seq
	nextDlv  map[uint64]uint64 // flow -> last delivered seq + 1

	sent      uint64
	delivered uint64

	maxViolations int
	violations    []string
	nViolations   uint64
}

// NewStream returns an empty stream checker.
func NewStream() *Stream {
	return &Stream{
		nextSent:      make(map[uint64]uint64),
		nextDlv:       make(map[uint64]uint64),
		maxViolations: 16,
	}
}

func (s *Stream) violate(format string, args ...any) {
	s.nViolations++
	if len(s.violations) < s.maxViolations {
		s.violations = append(s.violations, fmt.Sprintf(format, args...))
	}
}

// NoteSent records that (flow, seq) entered the mesh. Seqs must be
// assigned contiguously per flow (the mesh client does); duplicated
// wire copies count once.
func (s *Stream) NoteSent(flow, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sent++
	if next := s.nextSent[flow]; seq != next {
		s.violate("flow %x sent seq %d, want contiguous %d", flow, seq, next)
	}
	s.nextSent[flow] = seq + 1
}

// NoteDelivered records that (flow, seq) surfaced to the application on
// whichever node owned the flow at that moment.
func (s *Stream) NoteDelivered(flow, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.delivered++
	if next, known := s.nextSent[flow]; known && seq >= next {
		s.violate("flow %x delivered seq %d which was never sent (next unsent %d)", flow, seq, next)
	}
	if next := s.nextDlv[flow]; next > 0 && seq < next {
		if seq == next-1 {
			s.violate("flow %x delivered seq %d twice (duplicate surfaced across ownership)", flow, seq)
		} else {
			s.violate("flow %x delivered seq %d after seq %d (out of order)", flow, seq, next-1)
		}
		return
	}
	s.nextDlv[flow] = seq + 1
}

// Counts returns total packets sent and delivered.
func (s *Stream) Counts() (sent, delivered uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent, s.delivered
}

// Violations returns the recorded messages (capped) and the exact count.
func (s *Stream) Violations() ([]string, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.violations...), s.nViolations
}

// Finish runs the end-of-run conservation checks and returns an error
// describing every violation, or nil.
func (s *Stream) Finish() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.delivered > s.sent {
		s.violate("over-delivery: %d delivered exceeds %d sent", s.delivered, s.sent)
	}
	for flow, next := range s.nextDlv {
		if sentNext, known := s.nextSent[flow]; known && next > sentNext {
			s.violate("flow %x delivered through seq %d but only sent through %d", flow, next-1, sentNext-1)
		}
	}
	if s.nViolations == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "stream invariant: %d violation(s):", s.nViolations)
	for _, m := range s.violations {
		b.WriteString("\n  - ")
		b.WriteString(m)
	}
	if uint64(len(s.violations)) < s.nViolations {
		fmt.Fprintf(&b, "\n  … and %d more", s.nViolations-uint64(len(s.violations)))
	}
	return fmt.Errorf("%s", b.String())
}
