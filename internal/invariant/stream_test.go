package invariant

import (
	"strings"
	"testing"
)

func TestStreamCleanRun(t *testing.T) {
	s := NewStream()
	for flow := uint64(0); flow < 3; flow++ {
		for seq := uint64(0); seq < 100; seq++ {
			s.NoteSent(flow, seq)
		}
	}
	// Deliver with losses (legal) but in order, once each.
	for flow := uint64(0); flow < 3; flow++ {
		for seq := uint64(0); seq < 100; seq += 2 {
			s.NoteDelivered(flow, seq)
		}
	}
	if err := s.Finish(); err != nil {
		t.Fatalf("clean run reported: %v", err)
	}
	sent, delivered := s.Counts()
	if sent != 300 || delivered != 150 {
		t.Fatalf("counts %d/%d, want 300/150", sent, delivered)
	}
}

func TestStreamDetectsDuplicate(t *testing.T) {
	s := NewStream()
	s.NoteSent(1, 0)
	s.NoteSent(1, 1)
	s.NoteDelivered(1, 0)
	s.NoteDelivered(1, 0)
	_, n := s.Violations()
	if n != 1 {
		t.Fatalf("%d violations, want 1 (duplicate)", n)
	}
	msgs, _ := s.Violations()
	if !strings.Contains(msgs[0], "twice") {
		t.Fatalf("violation %q does not name the duplicate", msgs[0])
	}
}

func TestStreamDetectsOutOfOrder(t *testing.T) {
	s := NewStream()
	for seq := uint64(0); seq < 5; seq++ {
		s.NoteSent(1, seq)
	}
	s.NoteDelivered(1, 3)
	s.NoteDelivered(1, 1)
	msgs, n := s.Violations()
	if n != 1 || !strings.Contains(msgs[0], "out of order") {
		t.Fatalf("violations %v (n=%d), want one out-of-order", msgs, n)
	}
}

func TestStreamDetectsInvention(t *testing.T) {
	s := NewStream()
	s.NoteSent(1, 0)
	s.NoteDelivered(1, 7)
	msgs, n := s.Violations()
	if n != 1 || !strings.Contains(msgs[0], "never sent") {
		t.Fatalf("violations %v (n=%d), want one invention", msgs, n)
	}
}

func TestStreamDetectsNonContiguousSend(t *testing.T) {
	s := NewStream()
	s.NoteSent(1, 0)
	s.NoteSent(1, 2)
	_, n := s.Violations()
	if n != 1 {
		t.Fatalf("%d violations, want 1 (send gap)", n)
	}
}

func TestStreamFinishConservation(t *testing.T) {
	// Delivery for an unknown flow, delivered past what was sent: Finish
	// must flag conservation even though per-event checks could not.
	s := NewStream()
	s.NoteDelivered(42, 0)
	s.NoteDelivered(42, 1)
	err := s.Finish()
	if err == nil {
		t.Fatal("over-delivery passed Finish")
	}
	if !strings.Contains(err.Error(), "over-delivery") {
		t.Fatalf("error %v does not name over-delivery", err)
	}
}

func TestStreamViolationCapKeepsExactCount(t *testing.T) {
	s := NewStream()
	s.NoteSent(1, 0)
	s.NoteDelivered(1, 0)
	for i := 0; i < 40; i++ {
		s.NoteDelivered(1, 0) // 40 duplicates
	}
	msgs, n := s.Violations()
	if n != 40 {
		t.Fatalf("exact count %d, want 40", n)
	}
	if len(msgs) != 16 {
		t.Fatalf("recorded messages %d, want capped 16", len(msgs))
	}
	// Finish adds the over-delivery conservation violation (41 delivered
	// against 1 sent), so the truncated tail reads 41-16 = 25.
	if err := s.Finish(); err == nil || !strings.Contains(err.Error(), "and 25 more") {
		t.Fatalf("Finish error %v does not surface the truncated tail", err)
	}
}

func TestStreamConcurrentUse(t *testing.T) {
	s := NewStream()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for seq := uint64(0); seq < 10_000; seq++ {
			s.NoteSent(2, seq)
			s.NoteDelivered(2, seq)
		}
	}()
	for seq := uint64(0); seq < 10_000; seq++ {
		s.NoteSent(1, seq)
		s.NoteDelivered(1, seq)
	}
	<-done
	if err := s.Finish(); err != nil {
		t.Fatalf("concurrent clean run reported: %v", err)
	}
}
