package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ClockTaintAnalyzer upgrades the determinism contract from call-site
// matching to intra-package taint flow. The determinism analyzer catches
// a time.Now() written inside a sim-scope package; this analyzer catches
// the smuggled variant: a wall-clock value read in bridge code (live,
// cmd/*) and handed into sim-scope code through a parameter, a struct
// field, a package-level variable or a type conversion. Sinks are
// conversions to sim-scope named types (sim.Time and friends), arguments
// to sim-scope functions, and stores into sim-scope struct fields.
//
// The transport clock.go funnel is the only blessed source: a wall-clock
// read annotated with a //lint:allow determinism pragma is a declared
// funnel and does not seed taint. Everything else that touches
// time.Now/Since/Until is tracked.
var ClockTaintAnalyzer = &Analyzer{
	Name:   "clocktaint",
	Doc:    "track wall-clock values through assignments, fields and calls; forbid them crossing into sim-scope types, functions or fields",
	Scoped: nil,
	Run:    runClockTaint,
}

// taintSourceFuncs are the package-time functions whose results carry
// wall-clock taint.
var taintSourceFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

type taintState struct {
	pass    *Pass
	blessed map[string]map[int]bool // file -> lines carrying a determinism allow pragma
	vars    map[types.Object]bool   // tainted variables (locals, params, globals)
	fields  map[types.Object]bool   // tainted struct field objects (this package's types)
	funcs   map[types.Object]bool   // same-package functions returning taint
	changed bool
}

func runClockTaint(pass *Pass) {
	st := &taintState{
		pass:    pass,
		blessed: blessedLines(pass),
		vars:    map[types.Object]bool{},
		fields:  map[types.Object]bool{},
		funcs:   map[types.Object]bool{},
	}
	// Propagate to a fixpoint: field- and function-mediated flow needs a
	// bounded number of whole-package sweeps (taint depth is tiny in
	// practice; the bound keeps pathological inputs linear).
	for i := 0; i < 8; i++ {
		st.changed = false
		for _, file := range pass.Files {
			st.propagateFile(file)
		}
		if !st.changed {
			break
		}
	}
	for _, file := range pass.Files {
		st.reportSinks(file)
	}
}

// blessedLines collects, per file, the lines annotated with a
// determinism allow pragma: declared wall-clock funnels (the transport
// clock) whose reads must not seed taint.
func blessedLines(pass *Pass) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:allow determinism ") {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = map[int]bool{}
				}
				out[pos.Filename][pos.Line] = true
			}
		}
	}
	return out
}

// isBlessed reports whether pos sits on (or directly under) a declared
// funnel line.
func (st *taintState) isBlessed(n ast.Node) bool {
	pos := st.pass.Fset.Position(n.Pos())
	lines := st.blessed[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// tainted evaluates whether an expression carries wall-clock taint.
func (st *taintState) tainted(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := st.pass.Info.Uses[e]
		if obj == nil {
			obj = st.pass.Info.Defs[e]
		}
		return obj != nil && st.vars[obj]
	case *ast.SelectorExpr:
		if obj := st.pass.Info.Uses[e.Sel]; obj != nil && st.fields[obj] {
			return true
		}
		return false
	case *ast.CallExpr:
		return st.callTainted(e)
	case *ast.BinaryExpr:
		return st.tainted(e.X) || st.tainted(e.Y)
	case *ast.ParenExpr:
		return st.tainted(e.X)
	case *ast.StarExpr:
		return st.tainted(e.X)
	case *ast.UnaryExpr:
		return st.tainted(e.X)
	case *ast.IndexExpr:
		return st.tainted(e.X)
	}
	return false
}

// callTainted reports whether a call's result is wall-clock tainted: a
// seed call (time.Now/Since/Until, unless blessed), a conversion of a
// tainted value, a time.Time/Duration method on a tainted receiver
// (t.UnixNano(), d.Nanoseconds(), ...), or a same-package function whose
// returns are tainted.
func (st *taintState) callTainted(call *ast.CallExpr) bool {
	// Conversion of a tainted operand stays tainted.
	if tv, ok := st.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return len(call.Args) == 1 && st.tainted(call.Args[0])
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := st.pass.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" {
			if taintSourceFuncs[obj.Name()] && !st.isBlessed(call) {
				return true // the seed
			}
			// Methods on tainted time values propagate.
			return st.tainted(sel.X)
		}
	}
	if callee := staticCallee(st.pass, call); callee != nil && st.funcs[callee] {
		return true
	}
	return false
}

// markVar taints the object behind an identifier or field selector.
func (st *taintState) mark(lhs ast.Expr) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := st.pass.Info.Defs[lhs]
		if obj == nil {
			obj = st.pass.Info.Uses[lhs]
		}
		if obj != nil && !st.vars[obj] {
			st.vars[obj] = true
			st.changed = true
		}
	case *ast.SelectorExpr:
		if obj := st.pass.Info.Uses[lhs.Sel]; obj != nil {
			// Only fields of this package's types are tracked for flow;
			// stores into sim-scope fields are sinks, reported later.
			if v, ok := obj.(*types.Var); ok && v.IsField() && obj.Pkg() == st.pass.Pkg && !st.fields[obj] {
				st.fields[obj] = true
				st.changed = true
			}
		}
	case *ast.StarExpr:
		st.mark(lhs.X)
	case *ast.ParenExpr:
		st.mark(lhs.X)
	}
}

// propagateFile runs one taint-propagation sweep over a file.
func (st *taintState) propagateFile(file *ast.File) {
	var curFn types.Object
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			prev := curFn
			curFn = st.pass.Info.Defs[n.Name]
			if n.Body != nil {
				ast.Inspect(n.Body, walk)
			}
			curFn = prev
			return false
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !st.tainted(rhs) {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) {
					st.mark(n.Lhs[i])
				} else {
					for _, lhs := range n.Lhs { // tuple assignment: taint all
						st.mark(lhs)
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if st.tainted(v) && i < len(n.Names) {
					st.mark(n.Names[i])
				}
			}
		case *ast.ReturnStmt:
			if curFn == nil {
				break
			}
			for _, r := range n.Results {
				if st.tainted(r) && !st.funcs[curFn] {
					st.funcs[curFn] = true
					st.changed = true
				}
			}
		case *ast.CallExpr:
			st.propagateCallArgs(n)
		}
		return true
	}
	ast.Inspect(file, walk)
}

// propagateCallArgs taints the parameters of same-package callees that
// receive tainted arguments, so the taint follows the value into the
// callee's body on the next sweep.
func (st *taintState) propagateCallArgs(call *ast.CallExpr) {
	callee := staticCallee(st.pass, call)
	if callee == nil || callee.Pkg() != st.pass.Pkg {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break
		}
		if st.tainted(arg) {
			p := sig.Params().At(i)
			if !st.vars[p] {
				st.vars[p] = true
				st.changed = true
			}
		}
	}
}

// reportSinks walks a file reporting every point where a tainted value
// crosses into sim scope.
func (st *taintState) reportSinks(file *ast.File) {
	pass := st.pass
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Conversion to a sim-scope named type.
			if tv, ok := pass.Info.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
				if named := namedOf(tv.Type); named != nil && st.simScopeObj(named.Obj()) && st.tainted(n.Args[0]) {
					pass.Reportf(n.Pos(), "wall-clock-derived value converted to sim-scope type %s.%s; virtual time must come from the sim clock", named.Obj().Pkg().Name(), named.Obj().Name())
				}
				return true
			}
			// Argument to a sim-scope function.
			if callee := staticCallee(pass, n); callee != nil && st.simScopeObj(callee) {
				for _, arg := range n.Args {
					if st.tainted(arg) {
						pass.Reportf(arg.Pos(), "wall-clock-derived value passed to sim-scope %s.%s; virtual time must come from the sim clock", callee.Pkg().Name(), callee.Name())
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !st.tainted(rhs) {
					continue
				}
				if sel, ok := n.Lhs[i].(*ast.SelectorExpr); ok {
					if obj := pass.Info.Uses[sel.Sel]; obj != nil && st.simScopeObj(obj) {
						if v, ok := obj.(*types.Var); ok && v.IsField() {
							pass.Reportf(n.Pos(), "wall-clock-derived value stored into sim-scope field %s.%s; virtual time must come from the sim clock", obj.Pkg().Name(), obj.Name())
						}
					}
				}
			}
		}
		return true
	})
}

// simScopeObj reports whether obj belongs to a sim-scope package other
// than the one under analysis (in-package flow is the determinism
// analyzer's domain; the boundary crossing is the taint sink).
func (st *taintState) simScopeObj(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Pkg() != st.pass.Pkg && inSimScope(obj.Pkg().Path())
}
