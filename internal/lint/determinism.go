package lint

import (
	"go/ast"
	"strconv"
)

// DeterminismAnalyzer forbids wall-clock and math/rand use in simulation
// packages. Simulated time comes from sim.Simulator and randomness from
// per-entity xrand.Rand streams; a single stray time.Now or global rand
// call makes runs irreproducible in exactly the p99.9 region the project
// measures. internal/live (the real-time bridge) is outside the scope.
var DeterminismAnalyzer = &Analyzer{
	Name:   "determinism",
	Doc:    "forbid time.Now/time.Since/timers and math/rand in simulation packages; use sim clock and xrand streams",
	Scoped: inSimScope,
	Run:    runDeterminism,
}

// forbiddenTimeFuncs are the package-level functions of "time" that read
// the wall clock or create real timers.
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runDeterminism(pass *Pass) {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in simulation code; use mpdp/internal/xrand for seed-stable streams", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if forbiddenTimeFuncs[obj.Name()] {
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock; simulation code must use the sim.Simulator clock", obj.Name())
			}
			return true
		})
	}
}
