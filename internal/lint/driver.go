package lint

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ExpandPatterns turns command-line package patterns into a sorted list
// of directories containing buildable Go files. Supported forms are a
// plain directory and the `dir/...` wildcard; "testdata", "vendor" and
// hidden directories are never descended into, matching go tool
// conventions.
func ExpandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return
		}
		if !seen[abs] && hasGoFiles(abs) {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "/...")
		if root == "" {
			root = "."
		}
		if !recursive {
			if !hasGoFiles(root) {
				return nil, fmt.Errorf("lint: no Go files in %s", pat)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LintDirs loads and analyzes every directory, accumulating findings.
// Load or type-check failures are reported as errors: the linter must not
// silently skip a package it cannot see.
func LintDirs(l *Loader, cfg Config, dirs []string) ([]Finding, error) {
	var out []Finding
	for _, dir := range dirs {
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, Run(cfg, pkg)...)
	}
	return out, nil
}
