package lint

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// ExpandPatterns turns command-line package patterns into a sorted list
// of directories containing buildable Go files. Supported forms are a
// plain directory and the `dir/...` wildcard; "testdata", "vendor" and
// hidden directories are never descended into, matching go tool
// conventions.
func ExpandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return
		}
		if !seen[abs] && hasGoFiles(abs) {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "/...")
		if root == "" {
			root = "."
		}
		if !recursive {
			if !hasGoFiles(root) {
				return nil, fmt.Errorf("lint: no Go files in %s", pat)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LintDirs loads and analyzes every directory, accumulating findings, and
// runs the session's whole-program Finish phase at the end. Packages are
// type-checked and analyzed in parallel; the output is deterministic
// regardless: per-package findings are merged in directory order and the
// final list is stably sorted. Load or type-check failures are reported
// as errors — the linter must not silently skip a package it cannot see —
// and the error for the lexically first failing directory wins, so
// failures are stable too.
func LintDirs(l *Loader, cfg Config, dirs []string) ([]Finding, error) {
	if cfg.Session == nil {
		cfg.Session = NewSession()
	}
	workers := runtime.NumCPU()
	if workers > len(dirs) {
		workers = len(dirs)
	}
	if workers < 1 {
		workers = 1
	}
	perDir := make([][]Finding, len(dirs))
	errs := make([]error, len(dirs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				pkg, err := l.Load(dirs[i])
				if err != nil {
					errs[i] = err
					continue
				}
				perDir[i] = Run(cfg, pkg)
			}
		}()
	}
	for i := range dirs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []Finding
	for _, findings := range perDir {
		out = append(out, findings...)
	}
	out = append(out, cfg.Session.Finish(cfg)...)
	SortFindings(out)
	return out, nil
}
