package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrorEatAnalyzer flags call statements in internal/ packages that
// silently discard an error result. A swallowed error in the simulator is
// a silent divergence: a CSV row that never lands, a trace record that is
// dropped, a config that half-applies — all invisible until a result
// table disagrees across machines. Errors must be handled, returned, or
// the call annotated with //lint:allow erroreat <reason>.
//
// Calls to types that are documented never to fail (strings.Builder,
// bytes.Buffer) are exempt.
var ErrorEatAnalyzer = &Analyzer{
	Name:   "erroreat",
	Doc:    "flag statements that discard an error-returning call's result in internal/ code",
	Scoped: inInternalScope,
	Run:    runErrorEat,
}

func runErrorEat(pass *Pass) {
	errType := types.Universe.Lookup("error").Type()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call, errType) || infallible(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "result of %s discards an error; handle it or annotate the exception", callName(pass, call))
			return true
		})
	}
}

// returnsError reports whether any of the call's results has type error.
func returnsError(pass *Pass, call *ast.CallExpr, errType types.Type) bool {
	t := pass.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

// infallible exempts calls whose error results are documented to always
// be nil: methods on strings.Builder / bytes.Buffer, and fmt.Fprint*
// writing into one of those.
func infallible(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, ok := pass.Info.Selections[sel]; ok {
		return neverFailsWriter(s.Recv())
	}
	// fmt.Fprint / Fprintf / Fprintln into an infallible writer.
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" ||
		!strings.HasPrefix(obj.Name(), "Fprint") || len(call.Args) == 0 {
		return false
	}
	t := pass.Info.TypeOf(call.Args[0])
	return t != nil && neverFailsWriter(t)
}

// neverFailsWriter reports whether t is (a pointer to) a writer type
// whose Write never returns a non-nil error.
func neverFailsWriter(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// callName renders a readable name for the called function.
func callName(pass *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return types.ExprString(fun)
	}
	return "call"
}
