package lint

import (
	"go/ast"
	"go/types"
)

// GoroLeakAnalyzer flags goroutines that cannot be stopped: a `go`
// statement whose body (a literal, or a same-package function) runs an
// unconditional `for {}` loop with no way out — no select, no channel
// receive, no return or break. Such a goroutine outlives every shutdown
// path, pins its captures, and keeps touching shared state while the
// process drains; the shutdown and mesh-handoff work (ROADMAP item 3)
// requires every long-lived goroutine to be joinable.
//
// It also enforces the hot-path send contract: a function annotated
// //mpdp:hotpath (or reached from one in-package) must not perform a bare
// blocking channel send — a full queue would stall the datapath for an
// unbounded time. Sends inside a select (which can time out or drop) are
// fine.
var GoroLeakAnalyzer = &Analyzer{
	Name:   "goroleak",
	Doc:    "flag goroutines running unstoppable for-loops, and blocking channel sends in //mpdp:hotpath functions",
	Scoped: nil,
	Run:    runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	decls := packageFuncDecls(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := spawnedBody(pass, g, decls)
			if body == nil {
				return true
			}
			if loop := unstoppableLoop(pass, body); loop != nil {
				pass.Reportf(g.Pos(), "goroutine runs an unstoppable for-loop (no select, channel receive, return or break); thread a context, done channel or stop flag")
			}
			return true
		})
	}

	// Hot-path send contract.
	anns, _ := hotpathFuncs(pass.Files)
	if len(anns) == 0 {
		return
	}
	hot := hotSet(pass, anns, decls)
	for _, fd := range funcDeclsInOrder(pass.Files) {
		root, ok := hot[fd]
		if !ok || fd.Body == nil {
			continue
		}
		reportBlockingSends(pass, fd, root)
	}
}

// spawnedBody resolves the statement body a go statement will run: the
// literal's body, or the declaration body of a same-package function.
func spawnedBody(pass *Pass, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	default:
		if callee := staticCallee(pass, g.Call); callee != nil {
			if fd, ok := decls[callee]; ok && fd.Body != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// unstoppableLoop finds a `for {}` (no condition) loop in body with no
// escape construct inside it, returning the loop or nil. Loops that range
// over a channel are inherently stoppable (close the channel), as are
// loops containing a select, a channel receive, a return or a break.
func unstoppableLoop(pass *Pass, body *ast.BlockStmt) *ast.ForStmt {
	var found *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !hasEscape(loop.Body) {
			found = loop
			return false
		}
		return true
	})
	return found
}

// hasEscape reports whether a loop body contains any construct that can
// end or park the loop on an external signal: select, channel receive,
// return, break, panic, or a WaitGroup/Cond wait (which at least makes
// the goroutine joinable at a rendezvous).
func hasEscape(body *ast.BlockStmt) bool {
	escape := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escape {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its body is a different goroutine's problem
		case *ast.SelectStmt:
			escape = true
		case *ast.ReturnStmt:
			escape = true
		case *ast.BranchStmt:
			if n.Tok.String() == "break" || n.Tok.String() == "goto" {
				escape = true
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				escape = true
			}
		case *ast.RangeStmt:
			escape = true // ranging over a channel ends on close
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				escape = true
			}
		}
		return !escape
	})
	return escape
}

// reportBlockingSends flags bare channel sends in a hot function. Sends
// that appear as a select comm clause are exempt: the select bounds the
// stall (default case, timeout arm, or shutdown arm).
func reportBlockingSends(pass *Pass, fd *ast.FuncDecl, root string) {
	inSelect := map[ast.Stmt]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
				inSelect[cc.Comm] = true
			}
		}
		return true
	})
	origin := ""
	if rootName(fd) != root {
		origin = " (in hotpath " + root + " via in-package calls)"
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			_ = fl
			return false
		}
		send, ok := n.(*ast.SendStmt)
		if !ok || inSelect[send] {
			return true
		}
		pass.Reportf(send.Pos(), "blocking channel send in hot path%s; use a select with a default or shutdown arm so a full queue cannot stall the datapath", origin)
		return true
	})
}
