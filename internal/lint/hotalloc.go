package lint

import (
	"go/ast"
	"go/types"
)

// HotAllocAnalyzer enforces the zero-allocation contract on functions
// annotated //mpdp:hotpath and everything they call inside the same
// package (resolved over the in-package static call graph, so a contract
// on the frame encoder also covers its helpers). Flagged allocation
// shapes: make/new, append growth (unless appending into a
// caller-provided parameter — the Append* encoder idiom, where growth is
// the caller's allocation), composite literals that escape (&T{…}, slice
// and map literals), interface boxing at call sites and conversions,
// closure creation, goroutine spawns, non-constant string concatenation,
// string<->[]byte conversions, and any call into fmt, reflect or log.
//
// The runtime half of the same contract is the generated benchmark gate
// list (see CollectHotpathGates): each annotation's bench attribute is
// measured with -benchmem in CI and held at 0 allocs/op.
var HotAllocAnalyzer = &Analyzer{
	Name:   "hotalloc",
	Doc:    "forbid heap allocation in //mpdp:hotpath functions and their in-package callees (make/new/append growth, escaping literals, boxing, closures, string concat, fmt/reflect)",
	Scoped: nil,
	Run:    runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	anns, strays := hotpathFuncs(pass.Files)
	for _, ann := range strays {
		for _, e := range ann.errs {
			pass.Reportf(ann.pos, "bad //mpdp:hotpath: %s", e)
		}
	}
	if len(anns) == 0 {
		return
	}
	for _, fd := range funcDeclsInOrder(pass.Files) {
		if ann, ok := anns[fd]; ok {
			for _, e := range ann.errs {
				pass.Reportf(ann.pos, "bad //mpdp:hotpath: %s", e)
			}
		}
	}

	decls := packageFuncDecls(pass)
	hot := hotSet(pass, anns, decls)
	for _, fd := range funcDeclsInOrder(pass.Files) {
		root, ok := hot[fd]
		if !ok || fd.Body == nil {
			continue
		}
		origin := ""
		if rootName(fd) != root {
			origin = " (in hotpath " + root + " via in-package calls)"
		}
		checkAllocs(pass, fd, origin)
	}
}

// packageFuncDecls maps each function object defined in the package to
// its declaration, for call-graph resolution.
func packageFuncDecls(pass *Pass) map[types.Object]*ast.FuncDecl {
	out := map[types.Object]*ast.FuncDecl{}
	for _, fd := range funcDeclsInOrder(pass.Files) {
		if obj := pass.Info.Defs[fd.Name]; obj != nil {
			out[obj] = fd
		}
	}
	return out
}

// funcDeclsInOrder returns every function declaration in stable
// file-then-source order (map iteration never drives traversal: finding
// order must be byte-identical across runs).
func funcDeclsInOrder(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				out = append(out, fd)
			}
		}
	}
	return out
}

// rootName renders a declaration's display name ("(*T).M" or "F").
func rootName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// hotSet expands the annotated roots over the in-package static call
// graph, attributing each reached function to the first root that
// reaches it (deterministic BFS in declaration order).
func hotSet(pass *Pass, anns map[*ast.FuncDecl]*hotpathAnnotation, decls map[types.Object]*ast.FuncDecl) map[*ast.FuncDecl]string {
	hot := map[*ast.FuncDecl]string{}
	var queue []*ast.FuncDecl
	for _, fd := range funcDeclsInOrder(pass.Files) {
		if _, ok := anns[fd]; ok {
			hot[fd] = rootName(fd)
			queue = append(queue, fd)
		}
	}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if fd.Body == nil {
			continue
		}
		root := hot[fd]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(pass, call)
			if callee == nil {
				return true
			}
			cd, ok := decls[callee]
			if !ok {
				return true
			}
			if _, seen := hot[cd]; !seen {
				hot[cd] = root
				queue = append(queue, cd)
			}
			return true
		})
	}
	return hot
}

// staticCallee resolves a call to the *types.Func object it statically
// invokes, or nil for builtins, conversions, interface dispatch outside
// the package, and function values.
func staticCallee(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// allocPackages are the stdlib packages whose entry points allocate (and
// reflect) by construction; any call from a hot function is a finding.
var allocPackages = map[string]bool{"fmt": true, "reflect": true, "log": true}

// checkAllocs walks one hot function's body and reports every statically
// visible allocation shape.
func checkAllocs(pass *Pass, fd *ast.FuncDecl, origin string) {
	params := paramObjs(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocates in hot path%s; hoist the func value or restructure", origin)
			return false // the closure body runs outside the hot frame
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine spawn in hot path%s allocates a stack; hand work to an existing worker", origin)
			return true
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if lit, ok := n.X.(*ast.CompositeLit); ok {
					name := "composite"
					if id, ok := lit.Type.(*ast.Ident); ok {
						name = id.Name
					}
					pass.Reportf(n.Pos(), "&%s{...} literal escapes to the heap in hot path%s; reuse a pooled or caller-provided object", name, origin)
					return false
				}
			}
		case *ast.CompositeLit:
			switch pass.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in hot path%s; preallocate outside the hot loop", origin)
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in hot path%s; preallocate outside the hot loop", origin)
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isNonConstString(pass, n) {
				pass.Reportf(n.Pos(), "string concatenation allocates in hot path%s; use a preallocated buffer", origin)
			}
		case *ast.CallExpr:
			checkCallAlloc(pass, n, params, origin)
		}
		return true
	})
}

// paramObjs collects the parameter (and named result) objects of fd,
// including the receiver: appending into one of these is the caller's
// allocation, not this function's.
func paramObjs(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	addFields(fd.Type.Results)
	return out
}

func checkCallAlloc(pass *Pass, call *ast.CallExpr, params map[types.Object]bool, origin string) {
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make allocates in hot path%s; hoist the allocation out of the hot loop", origin)
			case "new":
				pass.Reportf(call.Pos(), "new allocates in hot path%s; reuse a pooled or caller-provided object", origin)
			case "append":
				if len(call.Args) > 0 && !isCallerBuffer(pass, call.Args[0], params) {
					pass.Reportf(call.Pos(), "append may grow the backing array in hot path%s; append into a caller-provided buffer or preallocate capacity", origin)
				}
			}
			return
		}
	}
	// Conversions: T(x).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		checkConversion(pass, call, tv.Type, origin)
		return
	}
	// Calls into allocation-heavy stdlib packages.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := pass.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && allocPackages[obj.Pkg().Path()] {
			pass.Reportf(call.Pos(), "%s.%s allocates (and reflects) in hot path%s; format outside the hot loop", obj.Pkg().Name(), obj.Name(), origin)
			return
		}
	}
	// Interface boxing of concrete arguments.
	checkBoxing(pass, call, origin)
}

// checkConversion flags allocating conversions: string <-> []byte/[]rune
// and concrete -> interface.
func checkConversion(pass *Pass, call *ast.CallExpr, target types.Type, origin string) {
	src := pass.Info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if tv, ok := pass.Info.Types[call]; ok && tv.Value != nil {
		return // constant conversion, folded at compile time
	}
	tu, su := target.Underlying(), src.Underlying()
	if isString(tu) && isByteOrRuneSlice(su) {
		pass.Reportf(call.Pos(), "[]byte->string conversion copies in hot path%s; keep the byte slice", origin)
		return
	}
	if isByteOrRuneSlice(tu) && isString(su) {
		pass.Reportf(call.Pos(), "string->slice conversion copies in hot path%s; keep the byte slice", origin)
		return
	}
	if types.IsInterface(tu) && !types.IsInterface(su) && su != types.Typ[types.UntypedNil] {
		pass.Reportf(call.Pos(), "conversion to interface boxes in hot path%s; keep the concrete type", origin)
	}
}

// checkBoxing flags concrete values passed to interface-typed parameters.
func checkBoxing(pass *Pass, call *ast.CallExpr, origin string) {
	sigType := pass.Info.TypeOf(call.Fun)
	if sigType == nil {
		return
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return
	}
	nParams := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= nParams-1:
			if s, ok := sig.Params().At(nParams - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < nParams:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes into interface parameter in hot path%s; keep the call monomorphic", origin)
	}
}

// isCallerBuffer reports whether an append target is amortized rather than
// a fresh per-call allocation: a parameter (or *param) of the enclosing hot
// function — growth is the caller's allocation, gated at the caller — or
// any `x[:0]` re-slice, the scratch-reuse idiom whose backing array sticks
// after warm-up (the runtime benchmark gate holds the steady state at 0
// allocs/op).
func isCallerBuffer(pass *Pass, expr ast.Expr, params map[types.Object]bool) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[e]
		if obj == nil {
			obj = pass.Info.Defs[e]
		}
		return obj != nil && params[obj]
	case *ast.StarExpr:
		return isCallerBuffer(pass, e.X, params)
	case *ast.ParenExpr:
		return isCallerBuffer(pass, e.X, params)
	case *ast.SliceExpr:
		return e.Low == nil && isZeroLit(e.High)
	}
	return false
}

// isZeroLit matches the literal 0.
func isZeroLit(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func isNonConstString(pass *Pass, n ast.Expr) bool {
	tv, ok := pass.Info.Types[n]
	if !ok || tv.Value != nil {
		return false
	}
	t := tv.Type
	if t == nil {
		return false
	}
	return isString(t.Underlying())
}
