package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The //mpdp:hotpath annotation marks a function as datapath-hot: the
// hotalloc analyzer statically verifies that the function and its
// same-package callees perform no heap allocation, and the annotation's
// bench attribute names the runtime benchmark that CI gates at
// 0 allocs/op, so the static contract and the runtime gate are generated
// from the same source line and can never drift.
//
// Grammar (a comment directive, so no space after //):
//
//	//mpdp:hotpath [bench=BenchmarkName[,BenchmarkName...]]
//
// The directive must sit in the doc comment of a function or method
// declaration. bench names must be Go benchmark identifiers
// (Benchmark*). Unknown attributes are reported by hotalloc.
const hotpathDirective = "//mpdp:hotpath"

// hotpathAnnotation is one parsed //mpdp:hotpath directive.
type hotpathAnnotation struct {
	pos     token.Pos
	benches []string
	errs    []string // grammar problems, reported by hotalloc
}

// parseHotpathDirective parses the text of one directive comment.
func parseHotpathDirective(text string, pos token.Pos) *hotpathAnnotation {
	ann := &hotpathAnnotation{pos: pos}
	rest := strings.TrimPrefix(text, hotpathDirective)
	for _, field := range strings.Fields(rest) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			ann.errs = append(ann.errs, fmt.Sprintf("malformed attribute %q; want key=value", field))
			continue
		}
		switch key {
		case "bench":
			for _, b := range strings.Split(val, ",") {
				if !strings.HasPrefix(b, "Benchmark") || len(b) == len("Benchmark") {
					ann.errs = append(ann.errs, fmt.Sprintf("bench %q is not a Benchmark* identifier", b))
					continue
				}
				ann.benches = append(ann.benches, b)
			}
		default:
			ann.errs = append(ann.errs, fmt.Sprintf("unknown attribute %q (known: bench)", key))
		}
	}
	return ann
}

// hotpathFuncs returns the annotated function declarations of a package,
// keyed by declaration, plus directives that are not attached to any
// function declaration (a grammar error).
func hotpathFuncs(files []*ast.File) (map[*ast.FuncDecl]*hotpathAnnotation, []*hotpathAnnotation) {
	anns := map[*ast.FuncDecl]*hotpathAnnotation{}
	var strays []*hotpathAnnotation
	for _, f := range files {
		attached := map[*ast.CommentGroup]bool{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			attached[fd.Doc] = true
			for _, c := range fd.Doc.List {
				if isHotpathDirective(c.Text) {
					anns[fd] = parseHotpathDirective(c.Text, c.Pos())
				}
			}
		}
		for _, cg := range f.Comments {
			if attached[cg] {
				continue
			}
			for _, c := range cg.List {
				if isHotpathDirective(c.Text) {
					ann := parseHotpathDirective(c.Text, c.Pos())
					ann.errs = append(ann.errs, "directive is not attached to a function declaration's doc comment")
					strays = append(strays, ann)
				}
			}
		}
	}
	return anns, strays
}

func isHotpathDirective(text string) bool {
	return text == hotpathDirective || strings.HasPrefix(text, hotpathDirective+" ")
}

// A HotpathGate is one generated runtime allocation gate: a benchmark in
// a package that CI must run with -benchmem and hold at 0 allocs/op.
type HotpathGate struct {
	PkgDir string // module-relative, "./internal/transport" form
	Bench  string
}

// CollectHotpathGates walks the given package directories (parse-only; no
// type checking) and derives the runtime alloc-gate list from every
// //mpdp:hotpath bench= annotation. The result is sorted and
// de-duplicated — the single source of truth for the CI gate list.
func CollectHotpathGates(modRoot string, dirs []string) ([]HotpathGate, error) {
	fset := token.NewFileSet()
	seen := map[HotpathGate]bool{}
	var out []HotpathGate
	for _, dir := range dirs {
		names, err := goFileNames(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(modRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: %s is outside module %s", dir, modRoot)
		}
		pkgDir := "./" + filepath.ToSlash(rel)
		if rel == "." {
			pkgDir = "."
		}
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			anns, strays := hotpathFuncs([]*ast.File{f})
			for _, ann := range anns {
				for _, b := range ann.benches {
					g := HotpathGate{PkgDir: pkgDir, Bench: b}
					if !seen[g] {
						seen[g] = true
						out = append(out, g)
					}
				}
			}
			_ = strays // grammar errors are the type-checked analyzer's job
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PkgDir != out[j].PkgDir {
			return out[i].PkgDir < out[j].PkgDir
		}
		return out[i].Bench < out[j].Bench
	})
	return out, nil
}

// FormatHotpathGates renders the gate list in its on-disk form: one
// "pkgdir<TAB>bench" line per gate, with a generated-file header.
func FormatHotpathGates(gates []HotpathGate) string {
	var b strings.Builder
	b.WriteString("# Generated by mpdp-lint -hotpath-gates from //mpdp:hotpath annotations.\n")
	b.WriteString("# One line per runtime allocation gate: <package dir> <tab> <benchmark>.\n")
	b.WriteString("# CI runs each benchmark with -benchmem and fails on any non-zero allocs/op.\n")
	b.WriteString("# Regenerate with `make hotpath-gates`; do not edit by hand.\n")
	for _, g := range gates {
		fmt.Fprintf(&b, "%s\t%s\n", g.PkgDir, g.Bench)
	}
	return b.String()
}

// goFileNames lists the non-test .go files of dir in sorted order.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}
