// Package lint implements mpdp-lint, a domain-specific static-analysis
// pass that mechanically enforces the simulator's determinism and
// concurrency contracts. The whole value of the reproduction rests on
// bit-reproducible, seed-driven runs; the contracts that guarantee that
// property (no wall clock in simulation code, no unsorted map iteration
// feeding results, per-entity RNG streams never shared across goroutines,
// no blocking under a held lock, no swallowed errors, no packet use after
// hand-off) are checked here rather than left to code review.
//
// The driver is built only on go/ast, go/parser and go/types, consistent
// with the module's zero-dependency go.mod. Deliberate exceptions are
// annotated in source with
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line above it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// A Finding is one reported contract violation.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the canonical "file:line: [analyzer] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// An Analyzer checks one contract over a single package.
type Analyzer struct {
	// Name is the identifier used in output and //lint:allow pragmas.
	Name string
	// Doc is the one-line contract description shown by -list.
	Doc string
	// Scoped reports whether the analyzer applies to the package at
	// path; nil means it applies everywhere.
	Scoped func(path string) bool
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Finding{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is a fully loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzers returns the full catalog in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		MapOrderAnalyzer,
		RandShareAnalyzer,
		LockHeldAnalyzer,
		ErrorEatAnalyzer,
		PacketReuseAnalyzer,
	}
}

// Config selects which analyzers run and how findings are filtered.
type Config struct {
	// Analyzers to run; nil means Analyzers().
	Analyzers []*Analyzer
	// IgnoreScope disables per-analyzer package scoping, so every
	// analyzer runs on every package (used by the golden tests, whose
	// fixture packages live under testdata/ rather than internal/).
	IgnoreScope bool
}

// Run applies the configured analyzers to pkg and returns the surviving
// findings, sorted by file, line and analyzer. Findings suppressed by a
// //lint:allow pragma on the same or the preceding line are dropped.
func Run(cfg Config, pkg *Package) []Finding {
	analyzers := cfg.Analyzers
	if analyzers == nil {
		analyzers = Analyzers()
	}
	allows := collectAllows(pkg)
	var out []Finding
	for _, a := range analyzers {
		if !cfg.IgnoreScope && a.Scoped != nil && !a.Scoped(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		pass.report = func(f Finding) {
			if allows.allowed(a.Name, f.File, f.Line) {
				return
			}
			out = append(out, f)
		}
		a.Run(pass)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// allowSet indexes //lint:allow pragmas by analyzer, file and line.
type allowSet map[string]map[int]bool // "analyzer\x00file" -> lines

func (s allowSet) allowed(analyzer, file string, line int) bool {
	lines := s[analyzer+"\x00"+file]
	return lines[line] || lines[line-1]
}

// collectAllows scans every comment in the package for allow pragmas.
// The pragma form is "//lint:allow <analyzer> <reason>"; the reason is
// mandatory so exceptions stay self-documenting.
func collectAllows(pkg *Package) allowSet {
	set := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:allow ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // reason missing: pragma is ignored
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fields[0] + "\x00" + pos.Filename
				if set[key] == nil {
					set[key] = map[int]bool{}
				}
				set[key][pos.Line] = true
			}
		}
	}
	return set
}

// RelativizeFindings rewrites absolute file paths relative to base for
// stable output; paths outside base are left untouched.
func RelativizeFindings(findings []Finding, base string) {
	for i := range findings {
		if rel, err := filepath.Rel(base, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}
}

// simPackages are the import-path prefixes holding simulation code, where
// the determinism contract (no wall clock, no math/rand) is absolute.
// internal/live bridges to real time by design and is deliberately absent:
// its histogram shards pick a stripe with math/rand/v2 and its SLO
// burn-rate windows are anchored to wall-clock time, both of which the
// determinism rules would (correctly, for sim code) reject.
//
// internal/transport IS in scope despite running on a real wire: its few
// wall-clock reads are funnelled through clock.go and annotated with
// //lint:allow pragmas, so any NEW time.Now creeping into the data path
// gets flagged instead of silently joining them.
var simPackages = []string{
	"mpdp/internal/core",
	"mpdp/internal/vnet",
	"mpdp/internal/nf",
	"mpdp/internal/experiment",
	"mpdp/internal/workload",
	"mpdp/internal/queueing",
	"mpdp/internal/stats",
	"mpdp/internal/fault",
	"mpdp/internal/invariant",
	"mpdp/internal/sim",
	"mpdp/internal/packet",
	"mpdp/internal/obs",
	"mpdp/internal/transport",
}

func inSimScope(path string) bool {
	for _, p := range simPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func inInternalScope(path string) bool {
	return strings.HasPrefix(path, "mpdp/internal/")
}
