// Package lint implements mpdp-lint, a domain-specific static-analysis
// pass that mechanically enforces the simulator's determinism and
// concurrency contracts. The whole value of the reproduction rests on
// bit-reproducible, seed-driven runs; the contracts that guarantee that
// property (no wall clock in simulation code, no unsorted map iteration
// feeding results, per-entity RNG streams never shared across goroutines,
// no blocking under a held lock, no swallowed errors, no packet use after
// hand-off) are checked here rather than left to code review.
//
// On top of the determinism contracts, the hot-path contracts gate the
// datapath itself: functions annotated //mpdp:hotpath carry statically
// checked zero-allocation obligations (hotalloc), the mutex acquisition
// order is checked for cross-package cycles (lockorder), goroutines must
// be stoppable (goroleak), and wall-clock values may not leak into
// simulation-scoped code through fields or parameters (clocktaint).
//
// The driver is built only on go/ast, go/parser and go/types, consistent
// with the module's zero-dependency go.mod. Deliberate exceptions are
// annotated in source with
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line above it. An allow pragma that no
// longer suppresses anything is itself reported (analyzer "unusedallow"),
// so the exception list can only shrink.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Finding is one reported contract violation.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the canonical "file:line: [analyzer] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// An Analyzer checks one contract over a single package.
type Analyzer struct {
	// Name is the identifier used in output and //lint:allow pragmas.
	Name string
	// Doc is the one-line contract description shown by -list.
	Doc string
	// Scoped reports whether the analyzer applies to the package at
	// path; nil means it applies everywhere.
	Scoped func(path string) bool
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
	// NewState builds the cross-package state shared by every Run of
	// this analyzer in one Session (nil for per-package analyzers).
	// State mutation must be self-synchronized: packages are analyzed
	// concurrently.
	NewState func() any
	// Finish runs once per Session after every package has been
	// analyzed, for whole-program checks (e.g. cross-package lock-order
	// cycles). Findings reported here are still subject to allow
	// pragmas collected from the analyzed packages.
	Finish func(state any, report func(Finding))
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// State is the session-wide state built by Analyzer.NewState, nil
	// when the analyzer declares none.
	State any

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Finding{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is a fully loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzers returns the full catalog in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		MapOrderAnalyzer,
		RandShareAnalyzer,
		LockHeldAnalyzer,
		ErrorEatAnalyzer,
		PacketReuseAnalyzer,
		HotAllocAnalyzer,
		LockOrderAnalyzer,
		GoroLeakAnalyzer,
		ClockTaintAnalyzer,
		UnusedAllowAnalyzer,
	}
}

// Config selects which analyzers run and how findings are filtered.
type Config struct {
	// Analyzers to run; nil means Analyzers().
	Analyzers []*Analyzer
	// IgnoreScope disables per-analyzer package scoping, so every
	// analyzer runs on every package (used by the golden tests, whose
	// fixture packages live under testdata/ rather than internal/).
	IgnoreScope bool
	// CheckPragmas arms the unused-pragma check at Session.Finish time:
	// //lint:allow pragmas that suppressed nothing, or that carry no
	// reason, become findings themselves. Only meaningful when the full
	// catalog runs (a pragma is "unused" relative to the analyzers that
	// actually ran).
	CheckPragmas bool
	// Session accumulates cross-package analyzer state and pragma usage.
	// nil gives Run a private throwaway session (fixture-style single
	// package runs); LintDirs always supplies one.
	Session *Session
}

func (cfg Config) analyzers() []*Analyzer {
	if cfg.Analyzers == nil {
		return Analyzers()
	}
	return cfg.Analyzers
}

// Session carries the cross-package side of one lint run: analyzer states
// (e.g. the global lock-order graph) and every allow pragma seen, with
// usage marks. Safe for concurrent use by parallel package runs.
type Session struct {
	mu      sync.Mutex
	states  map[string]any
	pragmas map[string]*pragmaRec // "file\x00line" -> record
}

// NewSession returns an empty session.
func NewSession() *Session {
	return &Session{states: map[string]any{}, pragmas: map[string]*pragmaRec{}}
}

func (s *Session) stateFor(a *Analyzer) any {
	if a.NewState == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.states[a.Name]
	if !ok {
		st = a.NewState()
		s.states[a.Name] = st
	}
	return st
}

// pragmaRec is one //lint:allow comment in source.
type pragmaRec struct {
	analyzer string
	file     string
	line     int
	reason   string
	used     bool // guarded by Session.mu
}

// Run applies the configured analyzers to pkg and returns the surviving
// findings, sorted by file, line and analyzer. Findings suppressed by a
// //lint:allow pragma on the same or the preceding line are dropped (and
// the pragma is marked used in the session).
func Run(cfg Config, pkg *Package) []Finding {
	session := cfg.Session
	if session == nil {
		session = NewSession()
	}
	allows := session.collectAllows(pkg)
	var out []Finding
	for _, a := range cfg.analyzers() {
		if a.Run == nil {
			continue
		}
		if !cfg.IgnoreScope && a.Scoped != nil && !a.Scoped(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			State:    session.stateFor(a),
		}
		pass.report = func(f Finding) {
			if session.allowed(allows, a.Name, f.File, f.Line) {
				return
			}
			out = append(out, f)
		}
		a.Run(pass)
	}
	SortFindings(out)
	return out
}

// Finish runs every configured analyzer's whole-program phase and, when
// cfg.CheckPragmas is set, reports unused and reason-less allow pragmas.
// Call it once, after every package has gone through Run with this
// session. Findings are sorted.
func (s *Session) Finish(cfg Config) []Finding {
	var out []Finding
	for _, a := range cfg.analyzers() {
		if a.Finish == nil {
			continue
		}
		a := a
		report := func(f Finding) {
			if s.allowedGlobal(a.Name, f.File, f.Line) {
				return
			}
			out = append(out, f)
		}
		a.Finish(s.stateFor(a), report)
	}
	if cfg.CheckPragmas {
		out = append(out, s.pragmaFindings()...)
	}
	SortFindings(out)
	return out
}

// SortFindings orders findings by file, line, column, analyzer, message —
// the canonical stable output order.
func SortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// allowSet indexes the package's pragma records by analyzer, file and line
// for the per-run fast path.
type allowSet map[string]map[int]*pragmaRec // "analyzer\x00file" -> line -> rec

// allowed checks (and marks used) a pragma covering analyzer at file:line.
func (s *Session) allowed(set allowSet, analyzer, file string, line int) bool {
	recs := set[analyzer+"\x00"+file]
	rec := recs[line]
	if rec == nil {
		rec = recs[line-1]
	}
	if rec == nil || rec.reason == "" {
		return false // reason-less pragmas never suppress
	}
	s.mu.Lock()
	rec.used = true
	s.mu.Unlock()
	return true
}

// allowedGlobal is the Finish-time variant: it searches every pragma the
// session has seen, not just one package's.
func (s *Session) allowedGlobal(analyzer, file string, line int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range []int{line, line - 1} {
		rec := s.pragmas[fmt.Sprintf("%s\x00%d", file, l)]
		if rec != nil && rec.analyzer == analyzer && rec.reason != "" {
			rec.used = true
			return true
		}
	}
	return false
}

// collectAllows scans every comment in the package for allow pragmas and
// registers them with the session. The pragma form is
// "//lint:allow <analyzer> <reason>"; the reason is mandatory so
// exceptions stay self-documenting (a reason-less pragma suppresses
// nothing and is reported by the unusedallow check).
func (s *Session) collectAllows(pkg *Package) allowSet {
	set := allowSet{}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:allow ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rec := &pragmaRec{
					analyzer: fields[0],
					file:     pos.Filename,
					line:     pos.Line,
					reason:   strings.Join(fields[1:], " "),
				}
				s.pragmas[fmt.Sprintf("%s\x00%d", rec.file, rec.line)] = rec
				key := rec.analyzer + "\x00" + rec.file
				if set[key] == nil {
					set[key] = map[int]*pragmaRec{}
				}
				set[key][rec.line] = rec
			}
		}
	}
	return set
}

// pragmaFindings reports reason-less pragmas and pragmas that suppressed
// nothing. An unused pragma can itself be excused with
// "//lint:allow unusedallow <reason>" on the same or preceding line
// (e.g. a pragma kept for a platform-conditional code path); the
// escape-hatch marking runs first so an escape pragma that is actually
// exercised never reports itself. Caller holds no locks.
func (s *Session) pragmaFindings() []Finding {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := make([]*pragmaRec, 0, len(s.pragmas))
	for _, rec := range s.pragmas {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].file != recs[j].file {
			return recs[i].file < recs[j].file
		}
		return recs[i].line < recs[j].line
	})
	// Phase 1: resolve escape hatches for every would-be finding, so the
	// escapes themselves count as used before phase 2 sweeps the rest.
	excused := map[*pragmaRec]bool{}
	for _, rec := range recs {
		if rec.analyzer == UnusedAllowAnalyzer.Name {
			continue
		}
		if rec.reason == "" || !rec.used {
			if esc := s.escapeFor(rec); esc != nil {
				esc.used = true
				excused[rec] = true
			}
		}
	}
	var out []Finding
	for _, rec := range recs {
		if excused[rec] {
			continue
		}
		switch {
		case rec.reason == "":
			out = append(out, Finding{
				File: rec.file, Line: rec.line, Analyzer: UnusedAllowAnalyzer.Name,
				Message: fmt.Sprintf("//lint:allow %s has no reason; exceptions must be self-documenting", rec.analyzer),
			})
		case !rec.used:
			out = append(out, Finding{
				File: rec.file, Line: rec.line, Analyzer: UnusedAllowAnalyzer.Name,
				Message: fmt.Sprintf("//lint:allow %s suppresses nothing; delete the stale pragma", rec.analyzer),
			})
		}
	}
	return out
}

// escapeFor finds an unusedallow pragma (with a reason) on rec's line or
// the line above. Caller holds s.mu.
func (s *Session) escapeFor(rec *pragmaRec) *pragmaRec {
	for _, l := range []int{rec.line, rec.line - 1} {
		esc := s.pragmas[fmt.Sprintf("%s\x00%d", rec.file, l)]
		if esc != nil && esc != rec && esc.analyzer == UnusedAllowAnalyzer.Name && esc.reason != "" {
			return esc
		}
	}
	return nil
}

// RelativizeFindings rewrites absolute file paths relative to base for
// stable output; paths outside base are left untouched.
func RelativizeFindings(findings []Finding, base string) {
	for i := range findings {
		if rel, err := filepath.Rel(base, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}
}

// simPackages are the import-path prefixes holding simulation code, where
// the determinism contract (no wall clock, no math/rand) is absolute.
// internal/live bridges to real time by design and is deliberately absent:
// its histogram shards pick a stripe with math/rand/v2 and its SLO
// burn-rate windows are anchored to wall-clock time, both of which the
// determinism rules would (correctly, for sim code) reject.
//
// internal/transport IS in scope despite running on a real wire: its few
// wall-clock reads are funnelled through clock.go and annotated with
// //lint:allow pragmas, so any NEW time.Now creeping into the data path
// gets flagged instead of silently joining them.
var simPackages = []string{
	"mpdp/internal/core",
	"mpdp/internal/vnet",
	"mpdp/internal/nf",
	"mpdp/internal/experiment",
	"mpdp/internal/workload",
	"mpdp/internal/queueing",
	"mpdp/internal/stats",
	"mpdp/internal/fault",
	"mpdp/internal/invariant",
	"mpdp/internal/sim",
	"mpdp/internal/packet",
	"mpdp/internal/obs",
	"mpdp/internal/transport",
	"mpdp/internal/mesh",
}

func inSimScope(path string) bool {
	for _, p := range simPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func inInternalScope(path string) bool {
	return strings.HasPrefix(path, "mpdp/internal/")
}
