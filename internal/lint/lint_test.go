package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// loadFixture type-checks one testdata package and runs a single analyzer
// over it with scoping disabled (fixture packages live under testdata/,
// outside every analyzer's natural scope). The session's Finish phase runs
// too, so whole-program findings (lock-order cycles, pragma hygiene)
// appear in the goldens. The pragma check has no Run of its own: its
// fixture is exercised by pairing it with the determinism analyzer so the
// package can contain used, stale, reason-less and excused pragmas.
func loadFixture(t *testing.T, a *Analyzer) []Finding {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dir := filepath.Join("testdata", "src", a.Name)
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	session := NewSession()
	cfg := Config{Analyzers: []*Analyzer{a}, IgnoreScope: true, Session: session}
	if a == UnusedAllowAnalyzer {
		cfg.Analyzers = []*Analyzer{DeterminismAnalyzer, a}
		cfg.CheckPragmas = true
	}
	findings := Run(cfg, pkg)
	findings = append(findings, session.Finish(cfg)...)
	SortFindings(findings)
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("Abs: %v", err)
	}
	RelativizeFindings(findings, abs)
	return findings
}

// TestGolden checks every analyzer against its fixture package: seeded
// violations must be reported, clean idioms must not, and pragma-
// annotated lines must be suppressed. Run with -update to regenerate.
func TestGolden(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			findings := loadFixture(t, a)
			var b strings.Builder
			for _, f := range findings {
				fmt.Fprintf(&b, "%s\n", f)
			}
			got := b.String()
			golden := filepath.Join("testdata", "src", a.Name, a.Name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatalf("writing golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (run `go test -run Golden -update ./internal/lint` to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			if got == "" {
				t.Errorf("fixture for %s produced no findings; the positive cases are not firing", a.Name)
			}
		})
	}
}

// TestGoldenSuppression asserts each fixture exercises a pragma: the
// function named "allowed" must contain a violation that the golden file
// does NOT list.
func TestGoldenSuppression(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", "src", a.Name, a.Name+".go"))
			if err != nil {
				t.Fatalf("reading fixture: %v", err)
			}
			if !strings.Contains(string(src), "//lint:allow "+a.Name) {
				t.Fatalf("fixture has no //lint:allow %s pragma case", a.Name)
			}
		})
	}
}

// TestPragmaRequiresReason checks that a pragma without a reason does not
// suppress, and a pragma naming a different analyzer does not suppress.
func TestPragmaRequiresReason(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dir := filepath.Join("testdata", "src", "pragma")
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	findings := Run(Config{Analyzers: []*Analyzer{DeterminismAnalyzer}, IgnoreScope: true}, pkg)
	if len(findings) != 2 {
		t.Fatalf("want 2 findings (reason-less and wrong-analyzer pragmas must not suppress), got %d: %v", len(findings), findings)
	}
}

// TestAnalyzerCatalog pins the catalog shape the -list flag and the
// documentation rely on.
func TestAnalyzerCatalog(t *testing.T) {
	as := Analyzers()
	if len(as) < 11 {
		t.Fatalf("catalog has %d analyzers, want >= 11", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v incomplete", a)
		}
		// Every analyzer needs a per-package Run except the pragma check,
		// which lives entirely in Session.Finish.
		if a.Run == nil && a != UnusedAllowAnalyzer {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if strings.ToLower(a.Name) != a.Name || strings.ContainsAny(a.Name, " \t") {
			t.Errorf("analyzer name %q must be lowercase with no spaces (pragma syntax)", a.Name)
		}
	}
}

// TestFindingFormats pins the text and JSON output forms.
func TestFindingFormats(t *testing.T) {
	f := Finding{File: "a/b.go", Line: 7, Col: 3, Analyzer: "maporder", Message: "msg"}
	if got, want := f.String(), "a/b.go:7: [maporder] msg"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, key := range []string{`"file"`, `"line"`, `"col"`, `"analyzer"`, `"message"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON %s missing key %s", data, key)
		}
	}
}

// TestExpandPatterns checks wildcard expansion skips testdata and finds
// this package.
func TestExpandPatterns(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dirs, err := ExpandPatterns([]string{loader.ModRoot + "/..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	var hasLint, hasTestdata bool
	for _, d := range dirs {
		if strings.HasSuffix(d, filepath.Join("internal", "lint")) {
			hasLint = true
		}
		if strings.Contains(d, "testdata") {
			hasTestdata = true
		}
	}
	if !hasLint {
		t.Errorf("expansion missed internal/lint: %v", dirs)
	}
	if hasTestdata {
		t.Errorf("expansion descended into testdata: %v", dirs)
	}
}

// TestDeterminismScopeCoversSchedulingCode pins the packages whose
// scheduling decisions feed the byte-identical-stream contract — including
// the deadline policy (internal/core) and its wire mirror
// (internal/transport) — inside the determinism analyzer's scope. Removing
// one from simPackages would silently exempt new wall-clock or math/rand
// uses there.
func TestDeterminismScopeCoversSchedulingCode(t *testing.T) {
	for _, pkg := range []string{
		"mpdp/internal/core",      // policies incl. DeadlineAware + DupBudget
		"mpdp/internal/transport", // wire scheduler incl. SchedDeadline
		"mpdp/internal/mesh",      // HRW steering + gossip/handoff control plane
		"mpdp/internal/experiment",
		"mpdp/internal/sim",
	} {
		if !inSimScope(pkg) {
			t.Errorf("%s fell out of the determinism scope", pkg)
		}
	}
}
