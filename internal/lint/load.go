package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Loader resolves import paths and type-checks packages using only the
// standard library. Module-internal packages ("mpdp/...") are mapped to
// directories under the repository root; everything else is expected to be
// standard library and is resolved through GOROOT. Dependency packages are
// checked with IgnoreFuncBodies for speed — only the packages under
// analysis get full bodies and a populated types.Info.
//
// The zero-dependency go.mod is what makes this feasible: every import is
// either stdlib or module-local, so no module graph resolution is needed.
// Loaders are safe for concurrent Load calls: the dependency cache is a
// per-path singleflight (the first goroutine to need a dependency checks
// it, later ones wait for the cached result), and the shared stdlib source
// importer is serialized behind its own mutex. token.FileSet is already
// concurrency-safe.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // directory containing go.mod
	ModPath string // module path, e.g. "mpdp"

	ctxt build.Context
	mu   sync.Mutex           // guards deps
	deps map[string]*depEntry // dependency singleflight cache, by import path
	gcMu sync.Mutex           // serializes the shared stdlib source importer
	gc   types.Importer       // fallback source importer for stdlib
}

// depEntry is one dependency's singleflight slot.
type depEntry struct {
	once sync.Once
	pkg  *types.Package
	err  error
}

// NewLoader locates the enclosing module starting from dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	ctxt := build.Default
	// Force the pure-Go build so stdlib packages select their cgo-free
	// variants; the linter never needs to run the cgo tool.
	ctxt.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		ctxt:    ctxt,
		deps:    map[string]*depEntry{},
		gc:      importer.ForCompiler(fset, "source", nil),
	}, nil
}

// dirFor maps an import path to a directory, or "" if it is not
// module-local.
func (l *Loader) dirFor(path string) string {
	if path == l.ModPath {
		return l.ModRoot
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest))
	}
	return ""
}

// PathFor maps a directory under the module root to its import path.
func (l *Loader) PathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	if abs == l.ModRoot {
		return l.ModPath, nil
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer for dependency resolution during
// type-checking. Results are cached and checked without function bodies.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	l.mu.Lock()
	entry, ok := l.deps[path]
	if !ok {
		entry = &depEntry{}
		l.deps[path] = entry
	}
	l.mu.Unlock()
	entry.once.Do(func() {
		if dir := l.dirFor(path); dir != "" {
			entry.pkg, _, _, entry.err = l.check(path, dir, false)
			return
		}
		// Standard library: resolve through a single shared source
		// importer. Type identity in go/types is by *types.Package, so
		// every stdlib package must come from one importer — mixing our
		// own per-package checks with a fallback importer would produce
		// two distinct "time" packages and spurious mismatches like
		// "cannot use 10 * time.Second as time.Duration" whenever a
		// checked package assigns across the two universes (e.g. setting
		// http.Client.Timeout). The importer is not documented as
		// concurrency-safe, so calls are serialized.
		l.gcMu.Lock()
		defer l.gcMu.Unlock()
		entry.pkg, entry.err = l.gc.Import(path)
	})
	return entry.pkg, entry.err
}

// Load fully type-checks the package in dir (non-test files only) and
// returns the material a Pass needs.
func (l *Loader) Load(dir string) (*Package, error) {
	path, err := l.PathFor(dir)
	if err != nil {
		return nil, err
	}
	pkg, files, info, err := l.check(path, dir, true)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: pkg,
		Info:  info,
	}, nil
}

// check lists the buildable non-test files in dir and type-checks them.
func (l *Loader) check(path, dir string, full bool) (*types.Package, []*ast.File, *types.Info, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	return l.checkFiles(path, dir, bp.GoFiles, full)
}

func (l *Loader) checkFiles(path, dir string, names []string, full bool) (*types.Package, []*ast.File, *types.Info, error) {
	sort.Strings(names)
	mode := parser.SkipObjectResolution
	if full {
		mode |= parser.ParseComments
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	var info *types.Info
	if full {
		info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
	}
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: !full,
		FakeImportC:      true,
	}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return pkg, files, info, nil
}
