package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockHeldAnalyzer flags channel operations (send, receive, select, range
// over a channel) and WaitGroup/Cond waits executed while a sync.Mutex or
// sync.RWMutex is held in the enclosing function. Blocking under a lock is
// the classic recipe for the deadlocks and convoy effects that show up
// only as rare tail-latency artifacts — exactly what this project cannot
// tolerate in its measurement pipeline.
//
// The analysis is a straight-line scan per function: a lock is considered
// held from its Lock()/RLock() statement until the matching
// Unlock()/RUnlock() in the same statement sequence; a deferred unlock
// holds until function exit by definition.
var LockHeldAnalyzer = &Analyzer{
	Name:   "lockheld",
	Doc:    "flag channel ops or blocking waits while a sync.Mutex/RWMutex is held in the enclosing function",
	Scoped: nil,
	Run:    runLockHeld,
}

func runLockHeld(pass *Pass) {
	walkLockRegions(pass, lockRegionHooks{
		onStmt: func(pass *Pass, stmt ast.Stmt, held map[string]bool) {
			reportBlockingOps(pass, stmt, held)
		},
	})
}

// lockRegionHooks are the callbacks of the shared held-lock walker, used
// by both lockheld (blocking ops under a lock) and lockorder (acquisition
// order edges, syscalls under a lock).
type lockRegionHooks struct {
	// onStmt fires for every statement executed with at least one lock
	// held (shallow: nested blocks get their own calls).
	onStmt func(pass *Pass, stmt ast.Stmt, held map[string]bool)
	// onLock fires for every Lock/RLock call, with the set of locks
	// already held at that point (excluding the one being taken).
	onLock func(pass *Pass, call *ast.CallExpr, recv string, held map[string]bool)
}

// walkLockRegions applies the straight-line held-lock scan to every
// function in the package.
func walkLockRegions(pass *Pass, hooks lockRegionHooks) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					scanLockRegion(pass, n.Body.List, map[string]bool{}, hooks)
				}
			case *ast.FuncLit:
				scanLockRegion(pass, n.Body.List, map[string]bool{}, hooks)
			}
			return true
		})
	}
}

// syncMethod returns the method name if call is a selector call resolving
// to a method of package sync (covers embedded mutexes too), plus the
// receiver expression's printed form as a stable key.
func syncMethod(pass *Pass, call *ast.CallExpr) (name, recv string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj := pass.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	return fn.Name(), types.ExprString(sel.X)
}

// scanLockRegion walks a statement list in order, tracking which mutexes
// are held, and recursing into nested control flow with a copy of the
// held set. Function literals are skipped: their bodies run on their own
// goroutine or at defer time, not under the current lock scope (deferred
// unlock literals are handled explicitly).
func scanLockRegion(pass *Pass, stmts []ast.Stmt, held map[string]bool, hooks lockRegionHooks) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				switch name, recv := syncMethod(pass, call); name {
				case "Lock", "RLock":
					if hooks.onLock != nil {
						hooks.onLock(pass, call, recv, held)
					}
					held[recv] = true
					continue
				case "Unlock", "RUnlock":
					delete(held, recv)
					continue
				}
			}
		case *ast.DeferStmt:
			// `defer mu.Unlock()` or `defer func() { mu.Unlock() }()`
			// keeps the lock held to function exit; nothing to do — the
			// held set already reflects that. Skip inspection of the
			// deferred call itself.
			continue
		}
		if len(held) > 0 && hooks.onStmt != nil {
			hooks.onStmt(pass, stmt, held)
		}
		// Recurse into nested statement lists with an independent copy,
		// so a lock taken inside a branch does not leak out.
		for _, list := range nestedStmtLists(stmt) {
			scanLockRegion(pass, list, copyHeld(held), hooks)
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// nestedStmtLists returns the statement lists directly nested in stmt.
func nestedStmtLists(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if s.Else != nil {
			out = append(out, nestedStmtLists(s.Else)...)
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, nestedStmtLists(s.Stmt)...)
	}
	return out
}

// reportBlockingOps inspects one statement (shallowly — nested blocks are
// handled by the recursive scan, function literals escape the lock scope)
// for operations that can block while held locks are outstanding.
func reportBlockingOps(pass *Pass, stmt ast.Stmt, held map[string]bool) {
	locks := heldNames(held)
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			return false // covered by the recursive scan
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while %s is held; blocking under a lock risks deadlock and convoying", locks)
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Reportf(n.Pos(), "channel receive while %s is held; blocking under a lock risks deadlock and convoying", locks)
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select while %s is held; blocking under a lock risks deadlock and convoying", locks)
			return false
		case *ast.CallExpr:
			if name, recv := syncMethod(pass, n); name == "Wait" {
				pass.Reportf(n.Pos(), "%s.Wait() while %s is held; blocking under a lock risks deadlock and convoying", recv, locks)
			}
		}
		return true
	})
}

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
