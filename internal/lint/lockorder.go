package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// LockOrderAnalyzer builds a global mutex acquisition-order graph across
// every analyzed package and reports cycles at Finish time: if one code
// path locks A then B and another locks B then A, the two can deadlock —
// or, short of that, convoy — under exactly the contention the sharded
// flow tables of ROADMAP item 2 will create. Mutexes are identified by
// class (package.Type.field for struct-embedded locks, package.var for
// globals); function-local mutexes cannot participate in cross-function
// cycles and are ignored.
//
// The per-package pass additionally reports two local hazards: methods
// whose value receiver copies a lock-bearing struct (the copy and the
// original guard nothing together), and syscall-bound calls (net, os,
// syscall) made while a lock is held — a convoy generator with an
// unbounded hold time.
var LockOrderAnalyzer = &Analyzer{
	Name:     "lockorder",
	Doc:      "report cross-package mutex acquisition-order cycles, lock-copying value receivers, and syscalls under a held lock",
	Scoped:   nil,
	Run:      runLockOrder,
	NewState: func() any { return newLockOrderState() },
	Finish:   finishLockOrder,
}

// lockEdge is one observed acquisition order: from is held while to is
// taken.
type lockEdge struct{ from, to string }

// lockOrderState is the session-global acquisition graph. Packages are
// analyzed concurrently, so every mutation locks mu (the irony is noted).
type lockOrderState struct {
	mu    sync.Mutex
	edges map[lockEdge]token.Position // first (lexically smallest) site
}

func newLockOrderState() *lockOrderState {
	return &lockOrderState{edges: map[lockEdge]token.Position{}}
}

func (s *lockOrderState) record(e lockEdge, pos token.Position) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.edges[e]
	if !ok || pos.Filename < old.Filename || (pos.Filename == old.Filename && pos.Line < old.Line) {
		s.edges[e] = pos
	}
}

// syscallPackages are the stdlib packages whose calls can block on the
// kernel for an unbounded time.
var syscallPackages = map[string]bool{"net": true, "os": true, "syscall": true}

func runLockOrder(pass *Pass) {
	state, _ := pass.State.(*lockOrderState)
	reportLockCopies(pass)
	// exprClass remembers, within this package, which acquisition class
	// each held-set key (printed receiver expression) resolved to; the
	// walker visits Lock sites in source order, so a held expression has
	// always been classified before an edge that uses it.
	exprClass := map[string]string{}
	walkLockRegions(pass, lockRegionHooks{
		onLock: func(pass *Pass, call *ast.CallExpr, recv string, held map[string]bool) {
			class := lockClass(pass, call)
			if class != "" {
				exprClass[recv] = class
			}
			if state == nil || class == "" || len(held) == 0 {
				return
			}
			for _, h := range heldKeys(held) {
				from := exprClass[h]
				if from == "" || from == class {
					continue
				}
				state.record(lockEdge{from: from, to: class}, pass.Fset.Position(call.Pos()))
			}
		},
		onStmt: func(pass *Pass, stmt ast.Stmt, held map[string]bool) {
			reportSyscallsUnderLock(pass, stmt, held)
		},
	})
}

func heldKeys(held map[string]bool) []string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lockClass derives the cross-package identity of the mutex a
// Lock/RLock call acquires: "pkg.Type.field" for a lock stored in a
// struct field, "pkg.var" for a package-level lock, "" for locals.
func lockClass(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		// s.mu.Lock(): classify by the owning named type of the field.
		fieldObj := pass.Info.Uses[x.Sel]
		if fieldObj == nil || fieldObj.Pkg() == nil {
			return ""
		}
		owner := namedOf(pass.Info.TypeOf(x.X))
		if owner == nil {
			return ""
		}
		return fieldObj.Pkg().Name() + "." + owner.Obj().Name() + "." + x.Sel.Name
	case *ast.Ident:
		// mu.Lock(): package-level mutex var, or an embedded lock via a
		// value receiver. Locals are anonymous to the graph.
		obj := pass.Info.Uses[x]
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	}
	return ""
}

// namedOf unwraps pointers to the named type underneath, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// reportSyscallsUnderLock flags calls into kernel-bound stdlib packages
// made while a lock is held.
func reportSyscallsUnderLock(pass *Pass, stmt ast.Stmt, held map[string]bool) {
	locks := strings.Join(heldKeys(held), ", ")
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.BlockStmt:
			return false // covered by the recursive scan / escapes the lock scope
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || !syscallPackages[obj.Pkg().Path()] {
				return true
			}
			pass.Reportf(n.Pos(), "%s.%s (a syscall-bound call) while %s is held; the kernel sets the hold time", obj.Pkg().Name(), obj.Name(), locks)
		}
		return true
	})
}

// reportLockCopies flags methods whose value receiver contains a mutex:
// every call copies the lock, so the copy guards nothing.
func reportLockCopies(pass *Pass) {
	for _, fd := range funcDeclsInOrder(pass.Files) {
		if fd.Recv == nil || len(fd.Recv.List) == 0 {
			continue
		}
		rt := fd.Recv.List[0].Type
		if _, isPtr := rt.(*ast.StarExpr); isPtr {
			continue
		}
		t := pass.Info.TypeOf(rt)
		if t == nil {
			continue
		}
		if path := mutexFieldPath(t, 0); path != "" {
			pass.Reportf(fd.Recv.List[0].Pos(), "value receiver of %s copies lock %s on every call; use a pointer receiver", rootName(fd), path)
		}
	}
}

// mutexFieldPath reports a path to a sync.Mutex/RWMutex held by value
// inside t, or "".
func mutexFieldPath(t types.Type, depth int) string {
	if depth > 4 {
		return ""
	}
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Pool", "Map":
				return obj.Name()
			}
		}
		t = named.Underlying()
	}
	st, ok := t.(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if sub := mutexFieldPath(f.Type(), depth+1); sub != "" {
			return f.Name() + "." + sub
		}
	}
	return ""
}

// finishLockOrder detects cycles in the accumulated acquisition graph.
// Every edge whose head can reach its tail participates in a cycle and is
// reported at its recorded acquisition site, with one shortest witness
// path spelled out.
func finishLockOrder(state any, report func(Finding)) {
	s, ok := state.(*lockOrderState)
	if !ok {
		return
	}
	s.mu.Lock()
	edges := make([]lockEdge, 0, len(s.edges))
	positions := make(map[lockEdge]token.Position, len(s.edges))
	for e, p := range s.edges {
		edges = append(edges, e)
		positions[e] = p
	}
	s.mu.Unlock()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	// Build adjacency from the sorted edge list so neighbor order (and
	// therefore witness paths) is deterministic.
	adj := map[string][]string{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for _, e := range edges {
		path := shortestPath(adj, e.to, e.from)
		if path == nil {
			continue
		}
		pos := positions[e]
		// path runs e.to -> ... -> e.from, so prefixing e.from spells the
		// full cycle from -> to -> ... -> from.
		cycle := append([]string{e.from}, path...)
		report(Finding{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: "lockorder",
			Message: fmt.Sprintf("lock order cycle: %s is acquired while %s is held, but elsewhere the order inverts (%s)",
				e.to, e.from, strings.Join(cycle, " -> ")),
		})
	}
}

// shortestPath returns the node sequence from src to dst (inclusive of
// both) over adj, or nil. Neighbor lists are pre-sorted, so the result is
// deterministic.
func shortestPath(adj map[string][]string, src, dst string) []string {
	prev := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == dst {
			var path []string
			for at := dst; ; at = prev[at] {
				path = append([]string{at}, path...)
				if at == src {
					return path
				}
			}
		}
		for _, m := range adj[n] {
			if _, seen := prev[m]; !seen {
				prev[m] = n
				queue = append(queue, m)
			}
		}
	}
	return nil
}
