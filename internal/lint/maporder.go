package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrderAnalyzer flags map iterations whose bodies have order-dependent
// effects. Go randomizes map iteration order per run, so any map loop that
// appends to a slice, writes output, sends on a channel, or feeds another
// simulator component produces seed-unstable results unless the keys are
// sorted first.
//
// The canonical sorted-iteration idiom stays clean: a loop that only
// collects the keys into a slice (for later sorting) is exempt, as are
// loops whose bodies are commutative (counting, summing into scalars,
// writing into another map).
var MapOrderAnalyzer = &Analyzer{
	Name:   "maporder",
	Doc:    "flag map iteration with order-dependent effects (append, output, channel send, engine/policy calls); sort keys first",
	Scoped: nil,
	Run:    runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		sorted := collectSortCalls(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			keyObj := loopVarObj(pass, rs.Key)
			if effect, pos := orderDependentEffect(pass, rs.Body, keyObj, sorted); effect != "" {
				pass.Reportf(pos, "map iteration body %s; iterate over sorted keys instead", effect)
			}
			return true
		})
	}
}

// sortCalls records, per slice variable, the positions where it is passed
// to a sort.*/slices.Sort* call. An order-dependent append into a slice
// that is sorted afterwards is the sanctioned collect-then-sort idiom
// (the comparator must impose a total order for the result to be
// deterministic — that part stays on the reviewer).
type sortCalls map[types.Object][]token.Pos

func (s sortCalls) sortedAfter(obj types.Object, pos token.Pos) bool {
	for _, p := range s[obj] {
		if p > pos {
			return true
		}
	}
	return false
}

func collectSortCalls(pass *Pass, file *ast.File) sortCalls {
	out := sortCalls{}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		name := obj.Name()
		if !strings.HasPrefix(name, "Sort") && !strings.HasPrefix(name, "Slice") &&
			name != "Strings" && name != "Ints" && name != "Float64s" && name != "Stable" && name != "Sort" {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok {
			if target := pass.Info.Uses[arg]; target != nil {
				out[target] = append(out[target], call.Pos())
			}
		}
		return true
	})
	return out
}

// loopVarObj resolves the object bound to a range loop variable.
func loopVarObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

// orderDependentEffect scans a map-loop body for the first construct whose
// outcome depends on iteration order and describes it.
func orderDependentEffect(pass *Pass, body *ast.BlockStmt, keyObj types.Object, sorted sortCalls) (string, token.Pos) {
	var effect string
	var at token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			effect, at = "sends on a channel", n.Pos()
			return false
		case *ast.CallExpr:
			if isKeyCollectAppend(pass, n, keyObj) {
				return false // sorted-iteration idiom, first half
			}
			if isSortedAfterAppend(pass, n, sorted) {
				return false // collect-then-sort idiom
			}
			if name, ok := orderDependentCall(pass, n); ok {
				effect, at = name, n.Pos()
				return false
			}
		}
		return true
	})
	return effect, at
}

// isSortedAfterAppend recognizes `s = append(s, ...)` where s is passed to
// a sort call after the append.
func isSortedAfterAppend(pass *Pass, call *ast.CallExpr, sorted sortCalls) bool {
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if b, ok := pass.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	target, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[target]
	return obj != nil && sorted.sortedAfter(obj, call.Pos())
}

// isKeyCollectAppend recognizes `keys = append(keys, k)` where k is the
// loop key: the standard way to gather keys before sorting them.
func isKeyCollectAppend(pass *Pass, call *ast.CallExpr, keyObj types.Object) bool {
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || keyObj == nil {
		return false
	}
	if b, ok := pass.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if len(call.Args) != 2 {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && pass.Info.Uses[arg] == keyObj
}

// orderDependentCall classifies calls whose effect depends on the order
// they are made in.
func orderDependentCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := pass.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" {
			return "appends to a slice", true
		}
	case *ast.SelectorExpr:
		obj := pass.Info.Uses[fun.Sel]
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" &&
			(strings.HasPrefix(obj.Name(), "Print") || strings.HasPrefix(obj.Name(), "Fprint")) {
			return "writes output with fmt." + obj.Name(), true
		}
		switch fun.Sel.Name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Printf", "Print", "Println":
			return "writes output via " + fun.Sel.Name, true
		}
		if sel, ok := pass.Info.Selections[fun]; ok {
			if name, ok := crossPackageMutator(pass, sel); ok {
				return name, true
			}
		}
	}
	return "", false
}

// crossPackageMutator reports method calls that feed state into another
// simulator package (engine, policy, stats sink, ...). Argument-less
// methods are treated as read-only accessors and ignored; anything taking
// parameters is assumed to record or mutate, which is order-sensitive for
// components like P² estimators and Welford accumulators.
func crossPackageMutator(pass *Pass, sel *types.Selection) (string, bool) {
	fn, ok := sel.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	if !strings.HasPrefix(path, "mpdp/") || path == pass.Pkg.Path() {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return "", false
	}
	short := path[strings.LastIndex(path, "/")+1:]
	return "calls " + short + "." + fn.Name() + " (state fed to another simulator package)", true
}
