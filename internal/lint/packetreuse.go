package lint

import (
	"go/ast"
	"go/types"
)

// PacketReuseAnalyzer flags use of a *packet.Packet variable after it has
// been handed to a lane/engine ingestion call (Enqueue, Send, Inject, ...)
// in the same statement block. Ownership transfers at the call: the lane
// mutates the packet's timestamps and may hand it to another goroutine in
// live mode, so a subsequent read races and a subsequent re-enqueue
// corrupts accounting.
//
// Only unconditional hand-offs (the call as its own statement) taint the
// variable; a call whose boolean result is inspected (`if !lane.Enqueue(p)`)
// legitimately retains the packet on the rejection path and is not
// flagged.
var PacketReuseAnalyzer = &Analyzer{
	Name:   "packetreuse",
	Doc:    "flag use of a *packet.Packet after an unconditional Enqueue/Send-style hand-off in the same block",
	Scoped: nil,
	Run:    runPacketReuse,
}

const packetPath = "mpdp/internal/packet"

// handoffMethods are method names that transfer packet ownership.
var handoffMethods = map[string]bool{
	"Enqueue": true,
	"Send":    true,
	"Inject":  true,
	"Submit":  true,
	"Deliver": true,
	"Push":    true,
}

// isPacketPtr reports whether t is *packet.Packet.
func isPacketPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Packet" && obj.Pkg() != nil && obj.Pkg().Path() == packetPath
}

func runPacketReuse(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			scanHandoffs(pass, list)
			return true
		})
	}
}

// scanHandoffs walks one statement list, tainting packet variables at
// unconditional hand-off statements and reporting any later use in the
// same list. Reassignment of the variable clears the taint.
func scanHandoffs(pass *Pass, stmts []ast.Stmt) {
	tainted := map[types.Object]string{} // packet var -> hand-off description
	for _, stmt := range stmts {
		// Reassignment gives the variable a fresh packet, so clear taint
		// before looking for uses (the LHS of `p = ...` is not a read).
		clearReassigned(pass, stmt, tainted)
		// A use anywhere in this statement of an already-tainted packet
		// is a bug — including a second hand-off.
		if len(tainted) > 0 {
			reportTaintedUses(pass, stmt, tainted)
		}
		if obj, desc := handoffIn(pass, stmt); obj != nil {
			tainted[obj] = desc
		}
	}
}

// handoffIn recognizes `recv.Method(p)` as a full statement where Method
// is a hand-off name and p an identifier of type *packet.Packet.
func handoffIn(pass *Pass, stmt ast.Stmt) (types.Object, string) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil, ""
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !handoffMethods[sel.Sel.Name] {
		return nil, ""
	}
	for _, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.Info.Uses[id]
		if obj != nil && isPacketPtr(obj.Type()) {
			return obj, types.ExprString(sel)
		}
	}
	return nil, ""
}

// reportTaintedUses flags identifiers in stmt that resolve to a tainted
// packet variable.
func reportTaintedUses(pass *Pass, stmt ast.Stmt, tainted map[types.Object]string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if desc, ok := tainted[obj]; ok {
			pass.Reportf(id.Pos(), "packet %q used after hand-off to %s; ownership transferred at the call", id.Name, desc)
		}
		return true
	})
}

// clearReassigned drops taint for packet variables that stmt assigns a
// new value to.
func clearReassigned(pass *Pass, stmt ast.Stmt, tainted map[types.Object]string) {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return
	}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := pass.Info.Uses[id]; obj != nil {
			delete(tainted, obj)
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			delete(tainted, obj)
		}
	}
}
