package lint

import (
	"go/ast"
	"go/types"
)

// RandShareAnalyzer flags *xrand.Rand values that can escape to another
// goroutine: captured by a `go func` literal, or stored in a struct that
// is sent on a channel. A Rand is documented as not safe for concurrent
// use, and sharing one across goroutines both races and destroys the
// per-entity stream discipline that seed-determinism depends on. The fix
// is always the same: hand the goroutine its own stream via Split().
var RandShareAnalyzer = &Analyzer{
	Name:   "randshare",
	Doc:    "flag *xrand.Rand captured by go-routines or shipped through channels; derive a Split() stream per goroutine",
	Scoped: nil,
	Run:    runRandShare,
}

const xrandPath = "mpdp/internal/xrand"

// isXrandPtr reports whether t is *xrand.Rand.
func isXrandPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rand" && obj.Pkg() != nil && obj.Pkg().Path() == xrandPath
}

func runRandShare(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkGoCapture(pass, lit)
				}
			case *ast.SendStmt:
				checkChannelSend(pass, n)
			}
			return true
		})
	}
}

// checkGoCapture reports free *xrand.Rand variables referenced inside a
// goroutine's function literal.
func checkGoCapture(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !isXrandPtr(obj.Type()) {
			return true
		}
		// Declared outside the literal means captured, not local.
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			pass.Reportf(id.Pos(), "*xrand.Rand %q captured by go func literal; pass a Split() stream instead", id.Name)
		}
		return true
	})
}

// checkChannelSend reports sends whose payload (or its pointee) carries an
// *xrand.Rand field — the stream crosses a goroutine boundary with the
// value.
func checkChannelSend(pass *Pass, send *ast.SendStmt) {
	t := pass.Info.TypeOf(send.Value)
	if t == nil {
		return
	}
	if isXrandPtr(t) {
		pass.Reportf(send.Pos(), "*xrand.Rand sent on a channel; the receiver must derive its own Split() stream")
		return
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		if isXrandPtr(st.Field(i).Type()) {
			pass.Reportf(send.Pos(), "struct with *xrand.Rand field %q sent on a channel; streams must stay goroutine-local", st.Field(i).Name())
			return
		}
	}
}
