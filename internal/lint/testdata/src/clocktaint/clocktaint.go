// Package clocktaint exercises the wall-clock taint analyzer: a
// time.Now/Since value reaching sim-scope types, functions or fields —
// directly or smuggled through locals, struct fields and same-package
// calls — must be flagged; declared funnels and sim-clock values must not.
package clocktaint

import (
	"time"

	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

type bridge struct {
	start time.Time
	last  int64
}

// badDirect converts a wall-clock read straight into virtual time.
func badDirect() sim.Time {
	return sim.Time(time.Now().UnixNano())
}

// badThroughField smuggles the value through a local and a struct field.
func badThroughField(b *bridge) sim.Time {
	ns := time.Since(b.start).Nanoseconds()
	b.last = ns
	return sim.Time(b.last)
}

// badThroughParam hands the tainted value to a helper; the helper's
// parameter carries the taint into its own conversion.
func badThroughParam() sim.Time {
	return stamp(time.Now().UnixNano())
}

func stamp(ns int64) sim.Time {
	return sim.Time(ns)
}

// badFieldStore writes a wall-clock value into a sim-scope struct field.
func badFieldStore(p *packet.Packet) {
	p.Ingress = sim.Time(time.Now().UnixNano())
}

// goodSimClock derives virtual time from the simulator: no taint.
func goodSimClock(s *sim.Simulator) sim.Time {
	return s.Now() + sim.Millisecond
}

// goodBlessed is a declared funnel: the determinism pragma blesses this
// read, so it does not seed taint.
func goodBlessed() sim.Time {
	//lint:allow determinism declared funnel: the fixture's one blessed wall-clock read
	return sim.Time(time.Now().UnixNano())
}

// allowed suppresses the sink finding itself.
func allowed() sim.Time {
	//lint:allow clocktaint fixture exercises sink suppression
	return sim.Time(time.Now().UnixNano())
}
