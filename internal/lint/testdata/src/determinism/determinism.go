// Package determinism exercises the determinism analyzer: wall-clock
// reads, timers and math/rand imports must be flagged; simulated-time
// arithmetic and pragma-annotated exceptions must not.
package determinism

import (
	"math/rand"
	"time"
)

// bad reads the wall clock three ways and starts a timer.
func bad() time.Duration {
	t := time.Now()
	time.Sleep(time.Millisecond)
	<-time.After(time.Millisecond)
	return time.Since(t)
}

// badRand pulls from the global math/rand stream (the import itself is
// the violation).
func badRand() int {
	return rand.Int()
}

// good uses time only for duration constants, which is fine: no clock is
// read.
func good() time.Duration {
	return 3 * time.Millisecond
}

// allowed documents a deliberate exception with a pragma.
func allowed() time.Time {
	//lint:allow determinism startup banner timestamp, not simulation state
	return time.Now()
}
