// Package erroreat exercises the discarded-error analyzer: calls whose
// error result is dropped on the floor must be flagged; handled errors
// and never-failing writers must not.
package erroreat

import (
	"fmt"
	"os"
	"strings"
)

// badDiscard drops os.Remove's error.
func badDiscard(path string) {
	os.Remove(path)
}

// badFprintf drops a write error to a real (fallible) writer.
func badFprintf(f *os.File) {
	fmt.Fprintf(f, "hello\n")
}

// goodHandled propagates the error.
func goodHandled(path string) error {
	if err := os.Remove(path); err != nil {
		return err
	}
	return nil
}

// goodBuilder writes to a strings.Builder, which never fails.
func goodBuilder() string {
	var b strings.Builder
	b.WriteString("x")
	fmt.Fprintf(&b, "%d", 42)
	return b.String()
}

// allowed documents a deliberate exception.
func allowed(path string) {
	//lint:allow erroreat best-effort cleanup of a temp file
	os.Remove(path)
}
