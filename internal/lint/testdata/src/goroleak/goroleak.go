// Package goroleak exercises the goroutine-leak analyzer: unstoppable
// for-loops spawned with go must be flagged (literal or named), as must
// bare blocking sends in //mpdp:hotpath functions; stoppable loops and
// select-guarded sends must not.
package goroleak

func work() {}

// badSpin spawns a literal goroutine with no way out.
func badSpin() {
	go func() {
		for {
			work()
		}
	}()
}

// spinner is an unstoppable loop body used by named spawns below.
func spinner() {
	for {
		work()
	}
}

// badNamed spawns a same-package function that never stops.
func badNamed() {
	go spinner()
}

// goodStoppable selects on a done channel inside the loop.
func goodStoppable(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

// goodRange ranges over a channel: closing it ends the goroutine.
func goodRange(in chan int) {
	go func() {
		for range in {
			work()
		}
	}()
}

// badHotSend performs a bare blocking send on a hot path.
//
//mpdp:hotpath
func badHotSend(ch chan int, v int) {
	ch <- v
}

// goodHotSelect bounds the stall with a drop arm.
//
//mpdp:hotpath
func goodHotSelect(ch chan int, v int) {
	select {
	case ch <- v:
	default:
	}
}

// goodColdSend is not hot: blocking sends are fine off the datapath.
func goodColdSend(ch chan int, v int) {
	ch <- v
}

// allowed documents a deliberate exception.
func allowed() {
	//lint:allow goroleak lifetime equals process lifetime by design
	go spinner()
}
