// Package hotalloc exercises the zero-allocation analyzer: allocation
// shapes inside //mpdp:hotpath functions (and their in-package callees)
// must be flagged; caller-buffer appends, scratch reuse and unannotated
// functions must not.
package hotalloc

import "fmt"

type enc struct{ scratch []byte }

type boxer interface{ take(v any) }

// badMake allocates directly in an annotated function.
//
//mpdp:hotpath
func badMake(n int) []byte {
	return make([]byte, n)
}

// badShapes seeds one of each remaining allocation shape.
//
//mpdp:hotpath
func badShapes(s string) string {
	e := &enc{}
	xs := []int{1, 2, 3}
	go spin()
	b := []byte(s)
	_, _, _ = e, xs, b
	return s + "!"
}

func spin() {}

// hotRoot is annotated; helper is reached through the in-package call
// graph and must be checked with the root attributed.
//
//mpdp:hotpath bench=BenchmarkHotRoot
func hotRoot(n int) int { return helper(n) }

func helper(n int) int {
	m := make([]int, n)
	return len(m)
}

// badFmt calls into an allocation-heavy stdlib package.
//
//mpdp:hotpath
func badFmt(n int) {
	fmt.Println(n)
}

// badBox passes a concrete value to an interface parameter.
//
//mpdp:hotpath
func badBox(b boxer, n int) {
	b.take(n)
}

// goodAppend appends into caller-owned storage and reused scratch: both
// amortized, neither flagged.
//
//mpdp:hotpath
func goodAppend(dst []byte, e *enc, b byte) []byte {
	e.scratch = append(e.scratch[:0], b)
	return append(dst, b)
}

// goodCold is not annotated and not reachable from an annotated root;
// its allocations are nobody's business.
func goodCold(n int) []byte {
	return make([]byte, n)
}

// allowed documents a deliberate exception.
//
//mpdp:hotpath
func allowed(n int) []byte {
	//lint:allow hotalloc deliberate: exercises pragma suppression in the fixture
	return make([]byte, n)
}

// badAttr has a malformed directive.
//
//mpdp:hotpath bench=notABenchmark speed
func badAttr() {}

// The stray directive below is attached to a var, not a function.
//
//mpdp:hotpath
var stray int
