// Package lockheld exercises the blocking-under-lock analyzer: channel
// operations and waits between Lock and Unlock must be flagged; the same
// operations outside the critical section must not.
package lockheld

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

// badSend blocks on a channel send while holding mu.
func badSend(b *box, ch chan int) {
	b.mu.Lock()
	ch <- b.n
	b.mu.Unlock()
}

// badRecvDeferred holds mu to function exit via defer and then receives.
func badRecvDeferred(b *box, ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n = <-ch
}

// badSelect selects while holding mu.
func badSelect(b *box, ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case v := <-ch:
		b.n = v
	default:
	}
}

// badWait waits on a WaitGroup while holding mu.
func badWait(b *box, wg *sync.WaitGroup) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wg.Wait()
}

// goodAfterUnlock releases the lock before touching the channel.
func goodAfterUnlock(b *box, ch chan int) {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	ch <- n
}

// goodBranchScoped takes the lock only inside one branch; the send in the
// other branch runs unlocked.
func goodBranchScoped(b *box, ch chan int, locked bool) {
	if locked {
		b.mu.Lock()
		b.n++
		b.mu.Unlock()
	} else {
		ch <- 1
	}
}

// allowed documents a deliberate exception.
func allowed(b *box, ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	//lint:allow lockheld buffered handoff channel, never blocks by construction
	ch <- b.n
}
