// Package lockorder exercises the acquisition-order analyzer: inverted
// lock orders across functions must be reported as a cycle at finish
// time, lock-copying value receivers and syscalls under a held lock must
// be flagged locally, and consistent orders must not.
package lockorder

import (
	"os"
	"sync"
)

type a struct {
	mu sync.Mutex
	n  int
}

type b struct {
	mu sync.Mutex
	n  int
}

type pair struct {
	x a
	y b
}

// lockAB establishes the order a.mu -> b.mu.
func lockAB(p *pair) {
	p.x.mu.Lock()
	p.y.mu.Lock()
	p.y.n = p.x.n
	p.y.mu.Unlock()
	p.x.mu.Unlock()
}

// lockBA inverts it: b.mu -> a.mu. Together with lockAB this is a
// deadlock-capable cycle, reported at finish time.
func lockBA(p *pair) {
	p.y.mu.Lock()
	p.x.mu.Lock()
	p.x.n = p.y.n
	p.x.mu.Unlock()
	p.y.mu.Unlock()
}

// goodNested always takes the locks in the a-then-b order.
func goodNested(p *pair) {
	p.x.mu.Lock()
	p.y.mu.Lock()
	p.y.mu.Unlock()
	p.x.mu.Unlock()
}

// counter's value receiver copies its mutex on every call.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c counter) get() int {
	return c.n
}

// badSyscall calls into the os package while holding a lock.
func badSyscall(p *pair) string {
	p.x.mu.Lock()
	defer p.x.mu.Unlock()
	return os.Getenv("HOME")
}

// goodHoisted resolves the environment before taking the lock.
func goodHoisted(p *pair) string {
	home := os.Getenv("HOME")
	p.x.mu.Lock()
	defer p.x.mu.Unlock()
	return home
}

// allowed documents a deliberate exception.
func allowed(p *pair) string {
	p.x.mu.Lock()
	defer p.x.mu.Unlock()
	//lint:allow lockorder startup-only path, runs before any contention exists
	return os.Getenv("HOME")
}
