// Package maporder exercises the map-iteration analyzer: order-dependent
// loop bodies must be flagged; the collect-then-sort idioms and
// commutative bodies must not.
package maporder

import (
	"fmt"
	"sort"

	"mpdp/internal/stats"
)

// badAppend materializes values in map order.
func badAppend(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// badPrint writes output in map order.
func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}

// badSend publishes entries in map order.
func badSend(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v
	}
}

// badObserve feeds a stats sink in map order; percentile estimators are
// sequence-sensitive.
func badObserve(m map[string]int64, h *stats.Hist) {
	for _, v := range m {
		h.Record(v)
	}
}

// goodKeyCollect is the first half of the sorted-iteration idiom.
func goodKeyCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodSortedAfter collects values and sorts them before use.
func goodSortedAfter(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// goodCommutative only sums, which no iteration order can change.
func goodCommutative(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// allowed documents a deliberate exception.
func allowed(m map[string]int) []int {
	var out []int
	for _, v := range m {
		//lint:allow maporder diagnostic dump, order does not matter
		out = append(out, v)
	}
	return out
}
