// Package packetreuse exercises the use-after-hand-off analyzer: touching
// a *packet.Packet after unconditionally enqueueing it must be flagged;
// checked hand-offs and reassignment must not.
package packetreuse

import "mpdp/internal/packet"

type lane struct{ q []*packet.Packet }

func (l *lane) Enqueue(p *packet.Packet) bool {
	l.q = append(l.q, p)
	return true
}

// badReadAfter reads a packet field after ownership moved to the lane.
func badReadAfter(l *lane, p *packet.Packet) int {
	l.Enqueue(p)
	return p.Size()
}

// badDoubleHandoff enqueues the same packet twice.
func badDoubleHandoff(a, b *lane, p *packet.Packet) {
	a.Enqueue(p)
	b.Enqueue(p)
}

// goodChecked inspects the result: the rejection path legitimately still
// owns the packet.
func goodChecked(l *lane, p *packet.Packet, drops *int) {
	if !l.Enqueue(p) {
		*drops += p.Size()
	}
}

// goodReassigned points p at a fresh packet before reuse.
func goodReassigned(l *lane, p *packet.Packet) int {
	l.Enqueue(p)
	p = &packet.Packet{}
	return p.Size()
}

// goodBeforeHandoff reads first, hands off last.
func goodBeforeHandoff(l *lane, p *packet.Packet) int {
	n := p.Size()
	l.Enqueue(p)
	return n
}

// allowed documents a deliberate exception.
func allowed(l *lane, p *packet.Packet) uint64 {
	l.Enqueue(p)
	//lint:allow packetreuse single-threaded test helper, lane does not mutate
	return p.ID
}
