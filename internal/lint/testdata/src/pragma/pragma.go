// Package pragma exercises pragma edge cases: an allow without a reason
// and an allow naming the wrong analyzer must both fail to suppress.
package pragma

import "time"

// noReason has a reason-less pragma, which is ignored by design: every
// exception must be self-documenting.
func noReason() time.Time {
	//lint:allow determinism
	return time.Now()
}

// wrongAnalyzer names a different analyzer, so determinism still fires.
func wrongAnalyzer() time.Time {
	//lint:allow maporder not the analyzer that fires here
	return time.Now()
}
