// Package randshare exercises the RNG-sharing analyzer: a *xrand.Rand
// escaping to another goroutine (closure capture or channel payload) must
// be flagged; goroutine-local Split() streams must not.
package randshare

import "mpdp/internal/xrand"

// worker carries per-goroutine state including its RNG stream.
type worker struct {
	id  int
	rng *xrand.Rand
}

// badCapture shares the parent's stream with a goroutine.
func badCapture(rng *xrand.Rand, done chan struct{}) {
	go func() {
		_ = rng.Uint64()
		close(done)
	}()
}

// badSendStruct ships a stream to whoever reads the channel.
func badSendStruct(ch chan worker, rng *xrand.Rand) {
	ch <- worker{id: 1, rng: rng}
}

// badSendRand ships the stream itself.
func badSendRand(ch chan *xrand.Rand, rng *xrand.Rand) {
	ch <- rng
}

// goodSplit derives an independent stream for the goroutine before
// launching it; only the child stream is referenced inside.
func goodSplit(rng *xrand.Rand, done chan struct{}) {
	child := rng.Split()
	go func(r *xrand.Rand) {
		_ = r.Uint64()
		close(done)
	}(child)
}

// goodLocal creates the stream inside the goroutine.
func goodLocal(done chan struct{}) {
	go func() {
		r := xrand.New(7)
		_ = r.Uint64()
		close(done)
	}()
}

// allowed documents a deliberate exception.
func allowed(rng *xrand.Rand, done chan struct{}) {
	go func() {
		//lint:allow randshare single goroutine, parent provably never touches rng again
		_ = rng.Uint64()
		close(done)
	}()
}
