// Package unusedallow exercises the pragma-hygiene check: a pragma that
// suppresses a real finding is fine; a stale pragma (suppresses nothing)
// and a reason-less pragma are reported; a stale pragma carrying its own
// unusedallow escape hatch is excused.
package unusedallow

import "time"

// goodUsed carries a pragma that suppresses a real determinism finding,
// so the pragma counts as used and is not reported.
func goodUsed() int64 {
	//lint:allow determinism fixture: suppressed here and therefore used
	return time.Now().UnixNano()
}

// The pragma below suppresses nothing: reported as stale.
//
//lint:allow determinism nothing on this line violates anything
var stale int

// badReasonless has a pragma with no reason: it suppresses nothing (the
// determinism finding still fires) and is itself reported.
func badReasonless() int64 {
	//lint:allow determinism
	return time.Now().UnixNano()
}

// The stale pragma below is excused by its unusedallow escape hatch:
// neither line is reported.
//
//lint:allow unusedallow kept to exercise the escape hatch in this fixture
//lint:allow determinism platform-conditional; suppresses nothing on this build
var excused int
