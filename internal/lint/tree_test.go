package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTreeIsClean runs the full default analyzer suite over the real
// module — the same gate `make lint` and CI enforce — and requires zero
// findings. Any contract violation introduced anywhere in the tree fails
// this test before it ever reaches CI.
func TestTreeIsClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dirs, err := ExpandPatterns([]string{loader.ModRoot + "/..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	if len(dirs) < 15 {
		t.Fatalf("only %d package dirs found under %s; expansion is broken", len(dirs), loader.ModRoot)
	}
	findings, err := LintDirs(loader, Config{CheckPragmas: true}, dirs)
	if err != nil {
		t.Fatalf("LintDirs: %v", err)
	}
	if len(findings) > 0 {
		var b strings.Builder
		for _, f := range findings {
			b.WriteString("\n  ")
			b.WriteString(f.String())
		}
		t.Errorf("tree has %d lint finding(s):%s", len(findings), b.String())
	}
}

// TestParallelOutputDeterministic runs the parallel driver twice over the
// fixture corpus — a finding-rich input exercising every analyzer,
// including the Finish phase and the pragma check — and requires
// byte-identical output. Parallel package analysis must never let worker
// scheduling order leak into the report.
func TestParallelOutputDeterministic(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil || len(fixtures) < 5 {
		t.Fatalf("fixture corpus missing (%d dirs, err %v)", len(fixtures), err)
	}
	render := func() string {
		loader, err := NewLoader(".")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		findings, err := LintDirs(loader, Config{IgnoreScope: true, CheckPragmas: true}, fixtures)
		if err != nil {
			t.Fatalf("LintDirs: %v", err)
		}
		var b strings.Builder
		for _, f := range findings {
			b.WriteString(f.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	first := render()
	if first == "" {
		t.Fatal("fixture corpus produced no findings; the determinism check is vacuous")
	}
	for i := 0; i < 3; i++ {
		if got := render(); got != first {
			t.Fatalf("run %d differs from first run\n--- first ---\n%s--- got ---\n%s", i+2, first, got)
		}
	}
}

// TestDocsCoverAnalyzers is the DESIGN.md doc test: the "Static
// contracts" section must name every analyzer in the catalog and document
// the pragma syntax, and the README must mention `make lint` in the dev
// workflow.
func TestDocsCoverAnalyzers(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	design, err := os.ReadFile(filepath.Join(loader.ModRoot, "DESIGN.md"))
	if err != nil {
		t.Fatalf("reading DESIGN.md: %v", err)
	}
	text := string(design)
	if !strings.Contains(text, "Static contracts") {
		t.Errorf("DESIGN.md has no \"Static contracts\" section")
	}
	if !strings.Contains(text, "//lint:allow") {
		t.Errorf("DESIGN.md does not document the //lint:allow pragma syntax")
	}
	for _, a := range Analyzers() {
		if !strings.Contains(text, a.Name) {
			t.Errorf("DESIGN.md does not mention analyzer %q", a.Name)
		}
	}
	readme, err := os.ReadFile(filepath.Join(loader.ModRoot, "README.md"))
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	if !strings.Contains(string(readme), "make lint") {
		t.Errorf("README.md does not mention `make lint`")
	}
}
