package lint

// UnusedAllowAnalyzer is the pragma hygiene check. Unlike the other
// analyzers it has no per-package Run: the Session records every
// //lint:allow pragma and which of them actually suppressed a finding,
// and Session.Finish (with Config.CheckPragmas set) reports the rest —
// pragmas with no reason, and pragmas that no longer suppress anything.
// Without this check the exception list only ever grows: a refactor that
// removes the offending line leaves the pragma behind, silently
// pre-approving the next violation someone writes there.
//
// A pragma that must outlive what it suppresses (say, one exercised only
// on another platform) can be excused with its own escape hatch on the
// preceding line:
//
//	//lint:allow unusedallow <reason>
var UnusedAllowAnalyzer = &Analyzer{
	Name: "unusedallow",
	Doc:  "report //lint:allow pragmas that suppress nothing or carry no reason (whole-run check; see Config.CheckPragmas)",
}
