package live

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the opt-in runtime introspection mux:
//
//	/debug/pprof/        net/http/pprof index (heap, goroutine, ...)
//	/debug/pprof/profile 30s CPU profile
//	/debug/pprof/trace   execution trace
//	/debug/vars          expvar JSON (cmdline, memstats)
//
// It is deliberately a separate handler from MetricsHandler so operators
// bind it to a separate (loopback or firewalled) listener: profiling
// endpoints can stall the process and must never ride along on the
// scrape port by accident.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
