package live

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s body: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: code %d", code)
	}
	if code, body := get("/debug/pprof/goroutine?debug=1"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("goroutine profile: code %d", code)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars: code %d, body %.80s", code, body)
	}
	// Metrics endpoints must NOT be served here (separate listener contract).
	if code, _ := get("/metrics"); code == 200 {
		t.Fatal("/metrics must not be on the debug mux")
	}
}
