package live

import (
	"math"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sync/atomic"
)

// Histogram is the live plane's lock-free latency histogram: power-of-two
// log-bucketed with geometric sub-buckets (like stats.Hist), striped across
// shards so concurrent recorders do not serialize on one cache line.
//
// Layout: values below 32 land in exact unit buckets; above, each
// power-of-two range splits into 32 geometric sub-buckets, bounding the
// relative quantile error by 2^-5 ≈ 3.1% while every bucket boundary stays
// an exact integer — Quantile reports the bucket's bounds alongside its
// midpoint, so a reading is never silently wrong by more than its stated
// bracket.
//
// Sharding: Record picks a shard with the runtime's per-M fast random
// source (math/rand/v2's thread-local generator — no lock, no allocation),
// which approximates per-P striping without runtime internals: two
// recorders on different Ps almost always hit different cache lines, and a
// collision costs one contended atomic add, never a lock. Writers only
// ever atomically add; Snapshot merges shard counts with atomic loads, so
// readers never stop writers.
//
// The zero Histogram is not usable; construct with NewHistogram.
type Histogram struct {
	shards []histShard
	mask   uint32
}

const (
	hSubBits     = 5
	hLinearLimit = 1 << hSubBits // 32
	hSubBuckets  = 1 << hSubBits
	hNumBuckets  = hLinearLimit + (63-hSubBits)*hSubBuckets + hSubBuckets
)

// histShard is one stripe. Padding keeps the hot counters of adjacent
// shards on separate cache lines (the counts array is large enough that
// only the scalar fields can false-share).
type histShard struct {
	counts [hNumBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	min    atomic.Int64 // valid only when count > 0
	max    atomic.Int64
	_      [64]byte
}

// NewHistogram returns a histogram striped over roughly one shard per
// available CPU (rounded up to a power of two, capped at 64).
func NewHistogram() *Histogram {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	// Round up to a power of two so Record masks instead of dividing.
	shards := 1
	for shards < n {
		shards <<= 1
	}
	h := &Histogram{shards: make([]histShard, shards), mask: uint32(shards - 1)}
	for i := range h.shards {
		h.shards[i].min.Store(math.MaxInt64)
	}
	return h
}

func hBucketOf(v int64) int {
	if v < hLinearLimit {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	mantissa := int(v>>uint(exp-hSubBits)) & (hSubBuckets - 1)
	return hLinearLimit + (exp-hSubBits)*hSubBuckets + mantissa
}

// hBucketLower returns the smallest value mapping to bucket i.
func hBucketLower(i int) int64 {
	if i < hLinearLimit {
		return int64(i)
	}
	i -= hLinearLimit
	exp := i/hSubBuckets + hSubBits
	off := int64(i % hSubBuckets)
	return (int64(1) << uint(exp)) + off<<uint(exp-hSubBits)
}

// hBucketUpper returns the largest value mapping to bucket i.
func hBucketUpper(i int) int64 {
	if i < hLinearLimit {
		return int64(i)
	}
	if i+1 >= hNumBuckets {
		return math.MaxInt64
	}
	return hBucketLower(i+1) - 1
}

// Record adds one observation. Negative values clamp to zero. The hot path
// is allocation-free: a thread-local random shard pick, one bucket
// computation, and three uncontended atomic adds (min/max updates CAS only
// while the observation extends the range — never in steady state).
//
//mpdp:hotpath bench=BenchmarkHistogramRecord
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	s := &h.shards[rand.Uint32()&h.mask]
	s.counts[hBucketOf(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
	for {
		cur := s.min.Load()
		if v >= cur || s.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := s.max.Load()
		if v <= cur || s.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the total number of observations across shards.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.shards {
		n += h.shards[i].count.Load()
	}
	return n
}

// HistSnapshot is a merged, immutable copy of a Histogram's state: safe to
// read at leisure while recording continues. Snapshots taken mid-traffic
// are internally consistent per bucket but not across buckets (a recorder
// may land between two loads); quantiles remain correct to within the
// in-flight handful of observations.
type HistSnapshot struct {
	Counts   [hNumBuckets]uint64
	NCount   uint64
	Sum      int64
	Min, Max int64
}

// Snapshot merges every shard into one readable copy.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{Min: math.MaxInt64}
	for i := range h.shards {
		sh := &h.shards[i]
		c := sh.count.Load()
		if c == 0 {
			continue
		}
		s.NCount += c
		s.Sum += sh.sum.Load()
		if m := sh.min.Load(); m < s.Min {
			s.Min = m
		}
		if m := sh.max.Load(); m > s.Max {
			s.Max = m
		}
		for b := range sh.counts {
			if n := sh.counts[b].Load(); n != 0 {
				s.Counts[b] += n
			}
		}
	}
	if s.NCount == 0 {
		s.Min = 0
	}
	return s
}

// Merge adds o's observations into s.
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	if o.NCount == 0 {
		return
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	if s.NCount == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.NCount += o.NCount
	s.Sum += o.Sum
}

// Delta returns the observations recorded since prev — the windowed view
// the tail sentinel quantiles each tick. Counts subtract with a clamp at
// zero (a shard racing the two snapshots can make a bucket appear to run
// backwards by an in-flight observation; clamping keeps the window
// well-formed). Min/Max are not recoverable from cumulative extremes, so
// the delta's are the bounds of its first and last occupied buckets —
// exact enough for quantiles, which is all a window is for.
func (s *HistSnapshot) Delta(prev *HistSnapshot) *HistSnapshot {
	d := &HistSnapshot{}
	first, last := -1, -1
	for i := range s.Counts {
		if s.Counts[i] <= prev.Counts[i] {
			continue
		}
		c := s.Counts[i] - prev.Counts[i]
		d.Counts[i] = c
		d.NCount += c
		if first < 0 {
			first = i
		}
		last = i
	}
	if d.NCount == 0 {
		return d
	}
	if d.Sum = s.Sum - prev.Sum; d.Sum < 0 {
		d.Sum = 0
	}
	d.Min = hBucketLower(first)
	d.Max = hBucketUpper(last)
	return d
}

// Mean returns the exact mean, or 0 when empty.
func (s *HistSnapshot) Mean() float64 {
	if s.NCount == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.NCount)
}

// Quantile returns the value at quantile q in [0,1] — the midpoint of the
// bucket holding the rank-q observation, clamped to the observed extremes.
// p0 and p100 are exact (the tracked min and max).
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.NCount == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	lo, hi := s.QuantileBounds(q)
	mid := lo + (hi-lo)/2
	if mid < s.Min {
		mid = s.Min
	}
	if mid > s.Max {
		mid = s.Max
	}
	return mid
}

// QuantileBounds returns the exact bucket bounds [lo, hi] bracketing the
// rank-q observation: the true quantile is guaranteed to lie inside.
// Empty snapshots return (0, 0).
func (s *HistSnapshot) QuantileBounds(q float64) (lo, hi int64) {
	if s.NCount == 0 {
		return 0, 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.NCount)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range s.Counts {
		cum += s.Counts[i]
		if cum >= rank {
			return hBucketLower(i), hBucketUpper(i)
		}
	}
	return s.Max, s.Max
}

// Bucket is one cumulative Prometheus-style bucket: Count observations
// with value <= Le.
type Bucket struct {
	Le    int64 // upper bound, inclusive
	Count uint64
}

// CumBuckets returns the snapshot as cumulative buckets coalesced to
// power-of-two upper bounds — at most one bucket per occupied octave, so a
// Prometheus exposition stays a few dozen lines however fine the internal
// resolution. The final bucket's count equals NCount (the +Inf bucket is
// the caller's to add).
func (s *HistSnapshot) CumBuckets() []Bucket {
	if s.NCount == 0 {
		return nil
	}
	var out []Bucket
	var cum uint64
	// Linear region coalesces into le=31 (one bucket).
	for i := 0; i < hLinearLimit; i++ {
		cum += s.Counts[i]
	}
	if cum > 0 {
		out = append(out, Bucket{Le: hLinearLimit - 1, Count: cum})
	}
	for exp := hSubBits; exp <= 63; exp++ {
		base := hLinearLimit + (exp-hSubBits)*hSubBuckets
		var octave uint64
		for j := 0; j < hSubBuckets && base+j < hNumBuckets; j++ {
			octave += s.Counts[base+j]
		}
		if octave == 0 {
			continue
		}
		cum += octave
		le := int64(math.MaxInt64)
		if exp < 62 {
			le = (int64(1) << uint(exp+1)) - 1
		}
		out = append(out, Bucket{Le: le, Count: cum})
	}
	return out
}
