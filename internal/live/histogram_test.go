package live

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
	"sync"
	"testing"

	"mpdp/internal/stats"
)

func TestHistogramBucketRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, math.MaxInt64} {
		b := hBucketOf(v)
		lo, hi := hBucketLower(b), hBucketUpper(b)
		if v < lo || v > hi {
			t.Fatalf("value %d maps to bucket %d = [%d, %d]", v, b, lo, hi)
		}
		if b > 0 {
			if prevHi := hBucketUpper(b - 1); prevHi >= lo {
				t.Fatalf("bucket %d lower %d overlaps bucket %d upper %d", b, lo, b-1, prevHi)
			}
		}
	}
}

func TestHistogramQuantilesVsExact(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewPCG(1, 2))
	sample := make([]int64, 0, 50000)
	for i := 0; i < 50000; i++ {
		// Log-uniform latencies spanning ns to tens of ms.
		v := int64(math.Exp(rng.Float64() * math.Log(5e7)))
		sample = append(sample, v)
		h.Record(v)
	}
	s := h.Snapshot()
	if s.NCount != 50000 {
		t.Fatalf("count %d", s.NCount)
	}
	exact := stats.Quantiles(sample, 0.5, 0.9, 0.99, 0.999)
	for i, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := s.Quantile(q)
		lo, hi := s.QuantileBounds(q)
		if exact[i] < lo || exact[i] > hi {
			t.Fatalf("q%.3f: exact %d outside reported bounds [%d, %d]", q, exact[i], lo, hi)
		}
		// Midpoint within the bucket's ~3.1% relative error of the truth.
		if rel := math.Abs(float64(got)-float64(exact[i])) / float64(exact[i]); rel > 0.04 {
			t.Fatalf("q%.3f: histogram %d vs exact %d (rel err %.3f)", q, got, exact[i], rel)
		}
	}
	var sum int64
	for _, v := range sample {
		sum += v
	}
	if s.Sum != sum {
		t.Fatalf("sum %d != exact %d", s.Sum, sum)
	}
}

func TestHistogramMinMaxAndEmpty(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.NCount != 0 || s.Min != 0 || s.Max != 0 || s.Quantile(0.99) != 0 {
		t.Fatalf("empty snapshot %+v", s)
	}
	h.Record(500)
	h.Record(7)
	h.Record(-3) // clamps to 0
	s = h.Snapshot()
	if s.Min != 0 || s.Max != 500 || s.NCount != 3 {
		t.Fatalf("snapshot %+v", s)
	}
	if q := s.Quantile(0); q != 0 {
		t.Fatalf("p0 = %d", q)
	}
	if q := s.Quantile(1); q != 500 {
		t.Fatalf("p100 = %d (clamping to observed max expected)", q)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(0); i < 1000; i++ {
		a.Record(i)
		b.Record(i + 100000)
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.NCount != 2000 {
		t.Fatalf("merged count %d", s.NCount)
	}
	if s.Min != 0 || s.Max != 100999 {
		t.Fatalf("merged min/max %d/%d", s.Min, s.Max)
	}
	if p50 := s.Quantile(0.5); p50 > 1100 {
		t.Fatalf("merged p50 %d should sit at the top of a's range", p50)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	const goroutines, per = 8, 20000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(g*1000 + i%997))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.NCount != goroutines*per {
		t.Fatalf("lost observations: %d of %d", s.NCount, goroutines*per)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.NCount {
		t.Fatalf("bucket sum %d != count %d", total, s.NCount)
	}
}

// TestHistogramRecordNoAllocs is the deterministic version of the CI
// benchmark gate: the record path must never allocate, or the
// instrumentation would cause the GC tails it exists to measure.
func TestHistogramRecordNoAllocs(t *testing.T) {
	h := NewHistogram()
	if n := testing.AllocsPerRun(1000, func() { h.Record(12345) }); n != 0 {
		t.Fatalf("Record allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { h.Count() }); n != 0 {
		t.Fatalf("Count allocates %.1f objects/op, want 0", n)
	}
}

func TestHistogramCumBuckets(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{5, 100, 100, 5000, 1 << 20} {
		h.Record(v)
	}
	s := h.Snapshot()
	bks := s.CumBuckets()
	if len(bks) == 0 {
		t.Fatal("no buckets")
	}
	var last uint64
	for i, b := range bks {
		if b.Count < last {
			t.Fatalf("bucket %d count %d not cumulative (prev %d)", i, b.Count, last)
		}
		if i > 0 && b.Le <= bks[i-1].Le {
			t.Fatalf("bucket bounds not increasing: %v", bks)
		}
		last = b.Count
	}
	if last != s.NCount {
		t.Fatalf("final bucket %d != count %d", last, s.NCount)
	}
}

func TestRegistryHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 1000)
	}
	r.RegisterHistogram(`stage_latency_ns{stage="nf_nat"}`, h)

	snap := r.Snapshot()
	for _, key := range []string{
		`stage_latency_ns_count{stage="nf_nat"}`,
		`stage_latency_ns_sum{stage="nf_nat"}`,
		`stage_latency_ns_p50{stage="nf_nat"}`,
		`stage_latency_ns_p999{stage="nf_nat"}`,
	} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("snapshot missing %q: %v", key, snap)
		}
	}
	if snap[`stage_latency_ns_count{stage="nf_nat"}`] != 1000 {
		t.Fatalf("count = %v", snap[`stage_latency_ns_count{stage="nf_nat"}`])
	}
	p50 := snap[`stage_latency_ns_p50{stage="nf_nat"}`]
	if p50 < 450e3 || p50 > 550e3 {
		t.Fatalf("p50 = %v, want ≈ 500500", p50)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE stage_latency_ns histogram",
		`stage_latency_ns_bucket{stage="nf_nat",le="+Inf"} 1000`,
		`stage_latency_ns_count{stage="nf_nat"} 1000`,
		"# TYPE stage_latency_ns_p99 gauge",
		`stage_latency_ns_p99{stage="nf_nat"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Cumulative le series must be monotone in the rendered order.
	var prev float64 = -1
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "stage_latency_ns_bucket") && !strings.Contains(line, "+Inf") {
			var le, c float64
			if _, err := fmt.Sscanf(strings.NewReplacer("{stage=\"nf_nat\",le=\"", " ", "\"}", " ").Replace(line), "stage_latency_ns_bucket %f %f", &le, &c); err != nil {
				t.Fatalf("unparseable bucket line %q: %v", line, err)
			}
			if c < prev {
				t.Fatalf("bucket counts not cumulative:\n%s", out)
			}
			prev = c
		}
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i&0xffff) + 100)
	}
}

func BenchmarkHistogramRecordParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(100)
		for pb.Next() {
			v = (v*2862933555777941757 + 3037000493) & 0xfffff
			h.Record(v)
		}
	})
}

func BenchmarkHistogramSnapshot(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < 100000; i++ {
		h.Record(int64(i % 100000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		if s.NCount == 0 {
			b.Fatal("empty")
		}
	}
}

// Delta is the sentinel's windowed view: cumulative snapshot minus the
// previous tick's snapshot, quantiled per window.
func TestHistSnapshotDelta(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(int64(i) * 1000)
	}
	prev := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.Record(5_000_000) // a burst lands: 5ms observations
	}
	cur := h.Snapshot()
	d := cur.Delta(prev)
	if d.NCount != 50 {
		t.Fatalf("delta NCount = %d, want 50", d.NCount)
	}
	if got := d.Quantile(0.99); got < 4_000_000 || got > 6_000_000 {
		t.Fatalf("delta p99 = %d, want ~5ms — window must see only the burst", got)
	}
	if cum := cur.Quantile(0.50); cum >= 4_000_000 {
		t.Fatalf("cumulative p50 = %d — the cumulative view should dilute the burst (test setup broken)", cum)
	}
	if d.Min < 4_000_000 || d.Max < d.Min {
		t.Fatalf("delta bounds [%d,%d] should bracket the burst bucket", d.Min, d.Max)
	}
	// Empty delta: same snapshot twice.
	if e := cur.Delta(cur); e.NCount != 0 || e.Sum != 0 || e.Min != 0 || e.Max != 0 {
		t.Fatalf("self-delta not empty: %+v", e)
	}
	// Delta against a fresh histogram equals the cumulative view's count.
	if full := cur.Delta(NewHistogram().Snapshot()); full.NCount != cur.NCount {
		t.Fatalf("delta vs empty = %d, want %d", full.NCount, cur.NCount)
	}
}
