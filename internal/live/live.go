// Package live is the wall-clock execution engine of MPDP: the same NF
// chains and multipath structure as the simulator (internal/core), but run
// on real goroutines with channels as lane queues — one dispatcher
// goroutine steering packets, one worker goroutine per lane running its
// chain replica to completion, and one egress goroutine restoring per-flow
// order.
//
// Where the simulated engine measures virtual-time latency under modelled
// interference, the live engine demonstrates that the library's packet
// processing is a working concurrent data plane: real frames, real NF
// work, real parallel speedup, measured in wall nanoseconds. It is the
// repo's stand-in for the paper's Click/DPDK prototype process model.
//
// Scope notes (deliberate simplifications versus internal/core):
// duplication/cancellation is not offered (hedging across threads needs
// cross-queue revocation that channels cannot express cheaply), and
// steering policies are the live-safe subset.
package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mpdp/internal/nf"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/stats"
)

// PolicyName selects the dispatcher's steering policy.
type PolicyName string

// Live-safe policies.
const (
	PolicyRSS     PolicyName = "rss"     // static Toeplitz hash
	PolicyRR      PolicyName = "rr"      // per-packet round robin
	PolicyJSQ     PolicyName = "jsq"     // shortest queue (channel depth)
	PolicyFlowlet PolicyName = "flowlet" // flowlet-sticky shortest queue
)

// Config assembles a live data plane.
type Config struct {
	// Paths is the number of worker lanes (default 4).
	Paths int
	// ChainFactory builds lane i's chain replica (required). Each lane's
	// chain is owned by that lane's goroutine exclusively.
	ChainFactory func(i int) *nf.Chain
	// Policy is the steering policy (default PolicyFlowlet).
	Policy PolicyName
	// QueueCap bounds each lane channel (default 1024); full = tail drop.
	QueueCap int
	// FlowletTimeout is the idle gap ending a flowlet (default 500 µs of
	// wall time).
	FlowletTimeout time.Duration
	// ReorderTimeout bounds how long egress waits for a gap (default 2 ms
	// of wall time). 0 disables the reorder stage entirely (unordered
	// delivery).
	ReorderTimeout time.Duration
	// DisableSpans turns off per-stage span timing (dispatch, queue wait,
	// each NF element, service, reorder wait). Spans are on by default:
	// recording is lock-free and allocation-free, so the cost is a few
	// clock reads per packet.
	DisableSpans bool
	// SLO, when non-nil, receives every delivery (with its e2e latency)
	// and every loss — tail drops, chain drops, reorder stragglers — so
	// burn-rate alerting tracks the engine's real error budget. The
	// tracker is also registered on the engine's metrics registry.
	SLO *SLOTracker
}

// Engine is a running live data plane. Create with Start, feed with
// Ingress, stop with Close.
type Engine struct {
	cfg      Config
	start    time.Time
	lanes    []*laneWorker
	egress   chan *packet.Packet
	deliver  func(*packet.Packet)
	wg       sync.WaitGroup
	egressWG sync.WaitGroup
	closed   atomic.Bool

	// Dispatcher state (single goroutine: Ingress must not be called
	// concurrently; the common arrangement is one RX thread).
	rrNext   int
	flowlets map[uint64]*liveFlowlet
	seqGen   map[uint64]uint64

	offered   atomic.Uint64
	tailDrops atomic.Uint64
	delivered atomic.Uint64

	// latency is the end-to-end wall-latency histogram (ingress →
	// delivery). Lock-free: the egress goroutine records, readers
	// snapshot concurrently. When spans are enabled it is the same
	// histogram as spans.e2e.
	latency *Histogram
	// spans holds the per-stage histograms; nil when Config.DisableSpans.
	spans *spanSet

	metricsOnce sync.Once
	metricsReg  *Registry
}

type liveFlowlet struct {
	lane int
	last time.Time
}

type laneWorker struct {
	id     int
	in     chan *packet.Packet
	chain  *nf.Chain
	depth  atomic.Int64
	served atomic.Uint64
	drops  atomic.Uint64 // policy drops by the chain

	// Span state, touched only by this lane's goroutine. The hook is
	// built once at Start so the per-packet chain call allocates nothing.
	spanPrev sim.Time
	spanHook nf.StageHook
}

// Start launches the engine's goroutines. deliver receives packets (in
// per-flow order unless ReorderTimeout is 0) from the egress goroutine.
func Start(cfg Config, deliver func(*packet.Packet)) (*Engine, error) {
	if cfg.ChainFactory == nil {
		return nil, fmt.Errorf("live: ChainFactory is required")
	}
	if cfg.Paths <= 0 {
		cfg.Paths = 4
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyFlowlet
	}
	switch cfg.Policy {
	case PolicyRSS, PolicyRR, PolicyJSQ, PolicyFlowlet:
	default:
		return nil, fmt.Errorf("live: unknown policy %q", cfg.Policy)
	}
	if cfg.FlowletTimeout <= 0 {
		cfg.FlowletTimeout = 500 * time.Microsecond
	}

	e := &Engine{
		cfg:      cfg,
		start:    time.Now(),
		egress:   make(chan *packet.Packet, cfg.QueueCap*cfg.Paths),
		deliver:  deliver,
		flowlets: make(map[uint64]*liveFlowlet),
		seqGen:   make(map[uint64]uint64),
		latency:  NewHistogram(),
	}
	for i := 0; i < cfg.Paths; i++ {
		lw := &laneWorker{
			id:    i,
			in:    make(chan *packet.Packet, cfg.QueueCap),
			chain: cfg.ChainFactory(i),
		}
		e.lanes = append(e.lanes, lw)
	}
	if !cfg.DisableSpans {
		// Every lane runs a replica of the same chain shape; lane 0's
		// element list names the per-NF stages.
		e.spans = newSpanSet(e.lanes[0].chain.Elements(), e.latency)
		for _, lw := range e.lanes {
			lw := lw
			lw.spanHook = func(i int, _ nf.Element, _ nf.Result) {
				now := e.now()
				if i < len(e.spans.nfStages) {
					e.spans.nfStages[i].Record(int64(now - lw.spanPrev))
				}
				lw.spanPrev = now
			}
		}
	}
	for _, lw := range e.lanes {
		e.wg.Add(1)
		go e.runLane(lw)
	}
	e.egressWG.Add(1)
	go e.runEgress()
	return e, nil
}

// now returns wall time since engine start as a sim.Time, so the packet's
// virtual-time fields carry wall nanoseconds in live mode. It is the
// engine's single declared wall->virtual funnel: the determinism pragma
// below blesses this read for the clocktaint analyzer, so any OTHER
// wall-clock value reaching a sim-scope type or field is still flagged.
func (e *Engine) now() sim.Time {
	//lint:allow unusedallow determinism pragma below is a clocktaint funnel declaration, not a suppression
	//lint:allow determinism live mode runs on the wall clock by design; now() is the single wall->virtual funnel
	return sim.Time(time.Since(e.start).Nanoseconds())
}

// Ingress admits one packet. NOT safe for concurrent use — call from a
// single RX goroutine, mirroring a single poll-mode RX thread.
func (e *Engine) Ingress(p *packet.Packet) {
	if e.closed.Load() {
		return
	}
	e.offered.Add(1)
	p.Ingress = e.now()
	if p.FlowID == 0 {
		p.FlowID = p.Flow.Hash64()
	}
	p.Seq = e.seqGen[p.FlowID]
	e.seqGen[p.FlowID]++

	lane := e.pick(p)
	p.PathID = lane
	lw := e.lanes[lane]
	// Stamp before the send: the channel send happens-before the lane
	// worker's receive, so the worker may read Enqueued; stamping after a
	// successful send would race with it.
	p.Enqueued = e.now()
	select {
	case lw.in <- p:
		lw.depth.Add(1)
		if e.spans != nil {
			e.spans.dispatch.Record(int64(p.Enqueued - p.Ingress))
		}
	default:
		e.tailDrops.Add(1)
		p.Dropped = packet.DropQueueFull
		if e.cfg.SLO != nil {
			e.cfg.SLO.ObserveLoss()
		}
	}
}

// pick implements the dispatcher's steering.
func (e *Engine) pick(p *packet.Packet) int {
	switch e.cfg.Policy {
	case PolicyRSS:
		return packet.RSSQueue(packet.DefaultRSSKey, p.Flow, len(e.lanes))
	case PolicyRR:
		i := e.rrNext % len(e.lanes)
		e.rrNext++
		return i
	case PolicyJSQ:
		return e.shortest()
	default: // PolicyFlowlet
		now := time.Now()
		f, ok := e.flowlets[p.FlowID]
		if ok && now.Sub(f.last) <= e.cfg.FlowletTimeout {
			f.last = now
			return f.lane
		}
		lane := e.shortest()
		if !ok {
			f = &liveFlowlet{}
			e.flowlets[p.FlowID] = f
		}
		f.lane, f.last = lane, now
		return lane
	}
}

func (e *Engine) shortest() int {
	best, bestDepth := 0, e.lanes[0].depth.Load()
	for i := 1; i < len(e.lanes); i++ {
		if d := e.lanes[i].depth.Load(); d < bestDepth {
			best, bestDepth = i, d
		}
	}
	return best
}

// runLane is one worker: run-to-completion over the lane's chain replica.
func (e *Engine) runLane(lw *laneWorker) {
	defer e.wg.Done()
	for p := range lw.in {
		lw.depth.Add(-1)
		p.ServiceAt = e.now()
		if e.spans != nil {
			e.spans.queueWait.Record(int64(p.ServiceAt - p.Enqueued))
		}
		lw.spanPrev = p.ServiceAt
		r := lw.chain.ProcessHooked(p.ServiceAt, p, lw.spanHook)
		p.Done = e.now()
		if e.spans != nil {
			e.spans.service.Record(int64(p.Done - p.ServiceAt))
		}
		lw.served.Add(1)
		if r.Verdict != packet.Pass {
			lw.drops.Add(1)
			if e.cfg.SLO != nil {
				e.cfg.SLO.ObserveLoss()
			}
			continue
		}
		e.egress <- p
	}
}

// runEgress restores per-flow order (bounded wait) and delivers.
func (e *Engine) runEgress() {
	defer e.egressWG.Done()
	type flowState struct {
		next    uint64
		pending map[uint64]*packet.Packet
		arrived map[uint64]time.Time
	}
	flows := make(map[uint64]*flowState)

	release := func(p *packet.Packet) {
		p.Delivered = e.now()
		e.delivered.Add(1)
		if e.spans != nil {
			e.spans.reorderWait.Record(int64(p.Delivered - p.Done))
		}
		e.latency.Record(int64(p.Latency()))
		if e.cfg.SLO != nil {
			e.cfg.SLO.ObserveDelivery(int64(p.Latency()))
		}
		if e.deliver != nil {
			e.deliver(p)
		}
	}

	var tick <-chan time.Time
	var ticker *time.Ticker
	if e.cfg.ReorderTimeout > 0 {
		ticker = time.NewTicker(e.cfg.ReorderTimeout / 2)
		tick = ticker.C
		defer ticker.Stop()
	}

	handle := func(p *packet.Packet) {
		if e.cfg.ReorderTimeout <= 0 {
			release(p)
			return
		}
		f, ok := flows[p.FlowID]
		if !ok {
			f = &flowState{pending: map[uint64]*packet.Packet{}, arrived: map[uint64]time.Time{}}
			flows[p.FlowID] = f
		}
		switch {
		case p.Seq < f.next:
			p.Dropped = packet.DropReorder // straggler past a timeout skip
			if e.cfg.SLO != nil {
				e.cfg.SLO.ObserveLoss()
			}
		case p.Seq == f.next:
			f.next++
			release(p)
			for {
				q, ok := f.pending[f.next]
				if !ok {
					break
				}
				delete(f.pending, f.next)
				delete(f.arrived, f.next)
				f.next++
				release(q)
			}
		default:
			f.pending[p.Seq] = p
			f.arrived[p.Seq] = time.Now()
		}
	}

	expire := func() {
		cutoff := time.Now().Add(-e.cfg.ReorderTimeout)
		for _, f := range flows {
			for len(f.pending) > 0 {
				min := ^uint64(0)
				for seq := range f.pending {
					if seq < min {
						min = seq
					}
				}
				if f.arrived[min].After(cutoff) {
					break
				}
				p := f.pending[min]
				delete(f.pending, min)
				delete(f.arrived, min)
				f.next = min + 1
				release(p)
				for {
					q, ok := f.pending[f.next]
					if !ok {
						break
					}
					delete(f.pending, f.next)
					delete(f.arrived, f.next)
					f.next++
					release(q)
				}
			}
		}
	}

	for {
		select {
		case p, ok := <-e.egress:
			if !ok {
				// Drain: flush everything pending in sequence order.
				for _, f := range flows {
					for len(f.pending) > 0 {
						min := ^uint64(0)
						for seq := range f.pending {
							if seq < min {
								min = seq
							}
						}
						p := f.pending[min]
						delete(f.pending, min)
						f.next = min + 1
						release(p)
					}
				}
				return
			}
			handle(p)
		case <-tick:
			expire()
		}
	}
}

// Close stops ingress, drains the lanes and egress, and waits for all
// goroutines. Safe to call once.
func (e *Engine) Close() {
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	for _, lw := range e.lanes {
		close(lw.in)
	}
	e.wg.Wait()
	close(e.egress)
	e.egressWG.Wait()
}

// Stats is a snapshot of the live engine's counters.
type Stats struct {
	Offered   uint64
	Delivered uint64
	TailDrops uint64
	PerLane   []uint64 // packets served per lane
	Latency   stats.Summary
}

// Snapshot returns current counters. Latency percentiles are wall-clock
// nanoseconds.
func (e *Engine) Snapshot() Stats {
	st := Stats{
		Offered:   e.offered.Load(),
		Delivered: e.delivered.Load(),
		TailDrops: e.tailDrops.Load(),
	}
	for _, lw := range e.lanes {
		st.PerLane = append(st.PerLane, lw.served.Load())
	}
	st.Latency = e.latency.Snapshot().summary()
	return st
}

// StageSnapshot returns the per-stage span summaries (dispatch, queue
// wait, each NF element, service, reorder wait, e2e) in pipeline order,
// or nil when spans are disabled.
func (e *Engine) StageSnapshot() []StageSpan {
	if e.spans == nil {
		return nil
	}
	return e.spans.snapshot()
}
