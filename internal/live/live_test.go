package live

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"mpdp/internal/nf"
	"mpdp/internal/packet"
)

func livePkt(flow uint64, payload int) *packet.Packet {
	key := packet.FlowKey{
		SrcIP: packet.IP4(10, 0, byte(flow>>8), byte(flow)), DstIP: packet.IP4(10, 1, 0, 5),
		SrcPort: uint16(10000 + flow%40000), DstPort: 80, Proto: packet.ProtoUDP,
	}
	return &packet.Packet{
		Data: packet.BuildUDP(key, make([]byte, payload), packet.BuildOpts{}),
		Flow: key, FlowID: key.Hash64(),
	}
}

func startTest(t *testing.T, cfg Config, deliver func(*packet.Packet)) *Engine {
	t.Helper()
	if cfg.ChainFactory == nil {
		cfg.ChainFactory = func(i int) *nf.Chain { return nf.PresetChain(3) }
	}
	e, err := Start(cfg, deliver)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestLiveDeliversAll(t *testing.T) {
	var delivered atomic.Uint64
	e := startTest(t, Config{Paths: 4}, func(p *packet.Packet) { delivered.Add(1) })
	const n = 20000
	for i := 0; i < n; i++ {
		e.Ingress(livePkt(uint64(i%32), 200))
	}
	e.Close()
	st := e.Snapshot()
	if st.Offered != n {
		t.Fatalf("offered %d", st.Offered)
	}
	if delivered.Load()+st.TailDrops != n {
		t.Fatalf("conservation: delivered %d + drops %d != %d", delivered.Load(), st.TailDrops, n)
	}
	if delivered.Load() == 0 {
		t.Fatal("nothing delivered")
	}
	if st.Latency.Count == 0 || st.Latency.P99 <= 0 {
		t.Fatalf("latency not measured: %+v", st.Latency)
	}
}

func TestLivePerFlowOrder(t *testing.T) {
	lastSeq := make(map[uint64]uint64)
	violations := 0
	done := make(chan struct{})
	var count int
	const n = 30000
	e := startTest(t, Config{Paths: 4, Policy: PolicyRR, ReorderTimeout: 50 * time.Millisecond},
		func(p *packet.Packet) {
			if last, ok := lastSeq[p.FlowID]; ok && p.Seq <= last {
				violations++
			}
			lastSeq[p.FlowID] = p.Seq
			count++
			if count == n {
				close(done)
			}
		})
	for i := 0; i < n; i++ {
		e.Ingress(livePkt(uint64(i%8), 100))
	}
	e.Close()
	st := e.Snapshot()
	if st.TailDrops == 0 && st.Delivered != n {
		t.Fatalf("delivered %d of %d with no drops", st.Delivered, n)
	}
	if violations != 0 {
		t.Fatalf("%d per-flow order violations under RR spraying", violations)
	}
}

func TestLiveAllPoliciesWork(t *testing.T) {
	for _, pol := range []PolicyName{PolicyRSS, PolicyRR, PolicyJSQ, PolicyFlowlet} {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			var got atomic.Uint64
			e := startTest(t, Config{Paths: 3, Policy: pol}, func(*packet.Packet) { got.Add(1) })
			for i := 0; i < 5000; i++ {
				e.Ingress(livePkt(uint64(i%16), 128))
			}
			e.Close()
			st := e.Snapshot()
			if got.Load()+st.TailDrops != 5000 {
				t.Fatalf("conservation broken: %d + %d", got.Load(), st.TailDrops)
			}
		})
	}
}

func TestLiveParallelSpeedup(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skip("needs >= 4 CPUs for a meaningful speedup test")
	}
	run := func(paths int) time.Duration {
		e, err := Start(Config{
			Paths: paths,
			// DPI over a 1400B payload: enough real work per packet for
			// parallelism to matter.
			ChainFactory: func(i int) *nf.Chain {
				return nf.NewChain("w", nf.NewDPI("dpi", nf.DefaultSignatures, false))
			},
			Policy: PolicyRR, ReorderTimeout: 0,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		const n = 30000
		pkts := make([]*packet.Packet, n)
		for i := range pkts {
			pkts[i] = livePkt(uint64(i%64), 1400)
		}
		start := time.Now()
		for _, p := range pkts {
			e.Ingress(p)
		}
		e.Close()
		return time.Since(start)
	}
	one := run(1)
	four := run(4)
	speedup := float64(one) / float64(four)
	t.Logf("1 path: %v, 4 paths: %v, speedup %.2fx", one, four, speedup)
	if speedup < 1.5 {
		t.Fatalf("4 workers gave only %.2fx speedup", speedup)
	}
}

func TestLivePerLaneDistribution(t *testing.T) {
	e := startTest(t, Config{Paths: 4, Policy: PolicyRR}, nil)
	for i := 0; i < 8000; i++ {
		e.Ingress(livePkt(uint64(i%32), 100))
	}
	e.Close()
	st := e.Snapshot()
	for i, served := range st.PerLane {
		if served < 1000 {
			t.Fatalf("lane %d starved: %v", i, st.PerLane)
		}
	}
}

func TestLiveChainDropsCounted(t *testing.T) {
	denyAll := func(i int) *nf.Chain {
		return nf.NewChain("deny", nf.NewFirewall("fw", nil, false))
	}
	var got atomic.Uint64
	e := startTest(t, Config{Paths: 2, ChainFactory: denyAll}, func(*packet.Packet) { got.Add(1) })
	for i := 0; i < 1000; i++ {
		e.Ingress(livePkt(uint64(i%4), 64))
	}
	e.Close()
	if got.Load() != 0 {
		t.Fatal("deny-all chain delivered packets")
	}
	if e.Snapshot().Delivered != 0 {
		t.Fatal("delivered counter wrong")
	}
}

func TestLiveIngressAfterCloseIsNoop(t *testing.T) {
	e := startTest(t, Config{Paths: 1}, nil)
	e.Close()
	e.Ingress(livePkt(1, 64)) // must not panic or deadlock
	e.Close()                 // double close safe
	if e.Snapshot().Offered != 0 {
		t.Fatal("post-close ingress counted")
	}
}

func TestLiveRejectsBadConfig(t *testing.T) {
	if _, err := Start(Config{}, nil); err == nil {
		t.Fatal("nil ChainFactory accepted")
	}
	if _, err := Start(Config{
		ChainFactory: func(i int) *nf.Chain { return nf.PresetChain(1) },
		Policy:       "bogus",
	}, nil); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestLiveUnorderedMode(t *testing.T) {
	var got atomic.Uint64
	e := startTest(t, Config{Paths: 4, ReorderTimeout: 0}, func(*packet.Packet) { got.Add(1) })
	for i := 0; i < 5000; i++ {
		e.Ingress(livePkt(uint64(i%16), 100))
	}
	e.Close()
	if got.Load()+e.Snapshot().TailDrops != 5000 {
		t.Fatal("unordered mode lost packets")
	}
}

func BenchmarkLiveThroughput4Paths(b *testing.B) {
	e, err := Start(Config{
		Paths:        4,
		ChainFactory: func(i int) *nf.Chain { return nf.PresetChain(3) },
		Policy:       PolicyFlowlet,
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	pkts := make([]*packet.Packet, 4096)
	for i := range pkts {
		pkts[i] = livePkt(uint64(i%64), 256)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkts[i%len(pkts)]
		// Reset per-iteration identity so the engine treats it as new.
		q := *p
		q.Seq, q.FlowID = 0, 0
		q.FlowID = p.Flow.Hash64()
		e.Ingress(&q)
	}
	b.StopTimer()
	e.Close()
	st := e.Snapshot()
	b.ReportMetric(float64(st.Delivered)/float64(b.N)*100, "delivered_%")
}
