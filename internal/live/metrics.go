package live

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a named metrics registry for the live engine: owned atomic
// counters plus read-only hooks onto counters and gauges that live
// elsewhere (the engine's own atomics). Reads are lock-free on the hot
// path; registration takes a write lock and is expected at setup time.
//
// This is the wall-clock side of the observability plane — unlike
// internal/obs it may touch real time, goroutines and HTTP.
type Registry struct {
	mu       sync.RWMutex
	owned    map[string]*atomic.Uint64
	counters map[string]func() uint64
	gauges   map[string]func() float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		owned:    make(map[string]*atomic.Uint64),
		counters: make(map[string]func() uint64),
		gauges:   make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named owned counter, creating it on first use.
func (r *Registry) Counter(name string) *atomic.Uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.owned[name]
	if !ok {
		c = &atomic.Uint64{}
		r.owned[name] = c
	}
	return c
}

// CounterFunc registers a read-only counter source (monotone values).
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] = fn
}

// GaugeFunc registers a read-only gauge source (instantaneous values).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// RegisterHistogram attaches a Histogram under name (which may carry a
// label block, e.g. `mpdp_stage_latency_ns{stage="nf_nat"}`). The registry
// renders it as a Prometheus histogram family plus derived
// `<family>_{p50,p90,p99,p999}` quantile gauges and `<family>_count`/
// `<family>_sum`, and folds the same derived values into Snapshot and the
// JSON exposition.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists[name] = h
}

// histDerived appends one histogram's derived scalar readings to out. The
// suffix is inserted before any label block so labeled families stay
// labeled: `lat_ns{stage="x"}` → `lat_ns_p99{stage="x"}`.
func histDerived(out map[string]float64, name string, s *HistSnapshot) {
	family, labels := splitLabels(name)
	put := func(suffix string, v float64) {
		out[family+suffix+labels] = v
	}
	put("_count", float64(s.NCount))
	put("_sum", float64(s.Sum))
	put("_p50", float64(s.Quantile(0.50)))
	put("_p90", float64(s.Quantile(0.90)))
	put("_p99", float64(s.Quantile(0.99)))
	put("_p999", float64(s.Quantile(0.999)))
}

// Snapshot reads every metric, including each histogram's derived count,
// sum and quantiles. Counters and gauges share the namespace; names are
// unique by construction in the engine's registry.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := r.scalarsLocked()
	for name, h := range r.hists {
		histDerived(out, name, h.Snapshot())
	}
	return out
}

// scalarsLocked reads the non-histogram metrics. Callers hold r.mu.
func (r *Registry) scalarsLocked() map[string]float64 {
	out := make(map[string]float64, len(r.owned)+len(r.counters)+len(r.gauges)+6*len(r.hists))
	for name, c := range r.owned {
		out[name] = float64(c.Load())
	}
	for name, fn := range r.counters {
		out[name] = float64(fn())
	}
	for name, fn := range r.gauges {
		out[name] = fn()
	}
	return out
}

// counterNames returns the names registered as counters (owned + hooks),
// plus each histogram's monotone derived series (count and sum).
func (r *Registry) counterNames() map[string]bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]bool, len(r.owned)+len(r.counters)+2*len(r.hists))
	for name := range r.owned {
		out[name] = true
	}
	for name := range r.counters {
		out[name] = true
	}
	for name := range r.hists {
		family, labels := splitLabels(name)
		out[family+"_count"+labels] = true
		out[family+"_sum"+labels] = true
	}
	return out
}

// WriteJSON writes the snapshot as an expvar-style JSON object, keys
// sorted for stable output.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	// Hand-roll the object to keep key order deterministic.
	var b strings.Builder
	b.WriteString("{")
	for i, name := range names {
		if i > 0 {
			b.WriteString(",")
		}
		key, _ := json.Marshal(name)
		fmt.Fprintf(&b, "%s:%s", key, trimJSONNumber(snap[name]))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func trimJSONNumber(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4). Registry names may carry a label block (e.g.
// `mpdp_lane_depth{lane="2"}`); the TYPE comment is emitted once per
// metric family. Registered histograms render as native histogram
// families (`_bucket{le=...}` cumulative series coalesced per power of
// two, `_sum`, `_count`) followed by derived quantile gauges.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	snap := r.scalarsLocked()
	histNames := make([]string, 0, len(r.hists))
	for name := range r.hists {
		histNames = append(histNames, name)
	}
	histSnaps := make(map[string]*HistSnapshot, len(r.hists))
	for name, h := range r.hists {
		histSnaps[name] = h.Snapshot()
	}
	r.mu.RUnlock()
	isCounter := r.counterNames()

	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	sort.Strings(histNames)

	var b strings.Builder
	typed := make(map[string]bool)
	for _, name := range names {
		family, labels := splitLabels(name)
		family = promSanitize(family)
		if !typed[family] {
			kind := "gauge"
			if isCounter[name] {
				kind = "counter"
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", family, kind)
			typed[family] = true
		}
		fmt.Fprintf(&b, "%s%s %s\n", family, labels, trimJSONNumber(snap[name]))
	}

	for _, name := range histNames {
		family, labels := splitLabels(name)
		family = promSanitize(family)
		s := histSnaps[name]
		if !typed[family] {
			fmt.Fprintf(&b, "# TYPE %s histogram\n", family)
			typed[family] = true
		}
		// le labels merge into an existing label block: {stage="x"} →
		// {stage="x",le="…"}.
		leLabel := func(le string) string {
			if labels == "" {
				return fmt.Sprintf("{le=%q}", le)
			}
			return fmt.Sprintf("%s,le=%q}", strings.TrimSuffix(labels, "}"), le)
		}
		for _, bk := range s.CumBuckets() {
			fmt.Fprintf(&b, "%s_bucket%s %d\n", family, leLabel(fmt.Sprintf("%d", bk.Le)), bk.Count)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", family, leLabel("+Inf"), s.NCount)
		fmt.Fprintf(&b, "%s_sum%s %d\n", family, labels, s.Sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", family, labels, s.NCount)
		for _, q := range []struct {
			suffix string
			q      float64
		}{{"_p50", 0.50}, {"_p90", 0.90}, {"_p99", 0.99}, {"_p999", 0.999}} {
			qf := family + q.suffix
			if !typed[qf] {
				fmt.Fprintf(&b, "# TYPE %s gauge\n", qf)
				typed[qf] = true
			}
			fmt.Fprintf(&b, "%s%s %d\n", qf, labels, s.Quantile(q.q))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// splitLabels separates a registry name into its metric family and an
// optional `{...}` label block.
func splitLabels(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// promSanitize maps a family name to a legal Prometheus metric name.
func promSanitize(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}

// Sample is one periodic reading of the registry.
type Sample struct {
	At     time.Time          `json:"at"`
	Values map[string]float64 `json:"values"`
}

// MetricsSampler polls a registry on a wall-clock ticker, keeping a
// bounded history and per-second rates for counters. It is the live
// analogue of obs.Sampler.
type MetricsSampler struct {
	reg    *Registry
	period time.Duration

	mu      sync.Mutex
	history []Sample // ring, newest last
	keep    int
	last    map[string]float64
	rates   map[string]float64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewMetricsSampler starts sampling reg every period, keeping the last
// keep samples (default 120). Call Stop when done.
func NewMetricsSampler(reg *Registry, period time.Duration, keep int) *MetricsSampler {
	if period <= 0 {
		period = time.Second
	}
	if keep <= 0 {
		keep = 120
	}
	s := &MetricsSampler{
		reg: reg, period: period, keep: keep,
		rates: make(map[string]float64),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go s.run()
	return s
}

func (s *MetricsSampler) run() {
	defer close(s.done)
	t := time.NewTicker(s.period)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-t.C:
			s.sample(now)
		}
	}
}

func (s *MetricsSampler) sample(now time.Time) {
	snap := s.reg.Snapshot()
	counters := s.reg.counterNames()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last != nil {
		secs := s.period.Seconds()
		for name := range counters {
			rate := (snap[name] - s.last[name]) / secs
			// A counter that moved backwards (source restarted or was
			// reset) yields a bogus negative delta for one period; clamp
			// so dashboards never see a negative rate.
			if rate < 0 {
				rate = 0
			}
			s.rates[name+"_per_sec"] = rate
		}
	}
	s.last = snap
	s.history = append(s.history, Sample{At: now, Values: snap})
	if len(s.history) > s.keep {
		s.history = s.history[len(s.history)-s.keep:]
	}
}

// Rates returns the latest per-second counter rates ("<name>_per_sec").
func (s *MetricsSampler) Rates() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64, len(s.rates))
	for k, v := range s.rates {
		out[k] = v
	}
	return out
}

// History returns the retained samples, oldest first.
func (s *MetricsSampler) History() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.history))
	copy(out, s.history)
	return out
}

// Stop halts the sampling goroutine and waits for it to exit. Safe to
// call from multiple goroutines: the close happens exactly once (a naive
// closed-check-then-close races two concurrent stoppers into a double
// close and a panic).
func (s *MetricsSampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// MetricsHandler serves the registry over HTTP:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  expvar-style JSON snapshot (plus rates and history
//	               when a sampler is attached)
//
// sampler may be nil.
func MetricsHandler(reg *Registry, sampler *MetricsSampler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if sampler == nil {
			if err := reg.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		doc := struct {
			Metrics map[string]float64 `json:"metrics"`
			Rates   map[string]float64 `json:"rates"`
			History []Sample           `json:"history"`
		}{reg.Snapshot(), sampler.Rates(), sampler.History()}
		enc := json.NewEncoder(w)
		if err := enc.Encode(doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// Metrics returns the engine's registry, wiring the engine's counters and
// per-lane gauges on first call.
func (e *Engine) Metrics() *Registry {
	e.metricsOnce.Do(func() {
		r := NewRegistry()
		r.CounterFunc("mpdp_offered_total", e.offered.Load)
		r.CounterFunc("mpdp_delivered_total", e.delivered.Load)
		r.CounterFunc("mpdp_tail_drops_total", e.tailDrops.Load)
		quantile := func(q float64) func() float64 {
			return func() float64 { return float64(e.latency.Snapshot().Quantile(q)) }
		}
		r.GaugeFunc("mpdp_latency_p50_ns", quantile(0.50))
		r.GaugeFunc("mpdp_latency_p99_ns", quantile(0.99))
		r.GaugeFunc("mpdp_latency_p999_ns", quantile(0.999))
		if e.spans != nil {
			e.spans.register(r)
		}
		if e.cfg.SLO != nil {
			e.cfg.SLO.Register(r)
		}
		for _, lw := range e.lanes {
			lw := lw
			r.CounterFunc(fmt.Sprintf("mpdp_lane_served_total{lane=\"%d\"}", lw.id), lw.served.Load)
			r.CounterFunc(fmt.Sprintf("mpdp_lane_drops_total{lane=\"%d\"}", lw.id), lw.drops.Load)
			r.GaugeFunc(fmt.Sprintf("mpdp_lane_depth{lane=\"%d\"}", lw.id), func() float64 { return float64(lw.depth.Load()) })
		}
		e.metricsReg = r
	})
	return e.metricsReg
}
