package live

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRegistrySnapshotAndFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("owned_total").Store(7)
	var ext atomic.Uint64
	ext.Store(42)
	r.CounterFunc("hooked_total", ext.Load)
	r.GaugeFunc("depth", func() float64 { return 3.5 })
	r.CounterFunc(`lane_served_total{lane="0"}`, func() uint64 { return 10 })
	r.CounterFunc(`lane_served_total{lane="1"}`, func() uint64 { return 20 })

	snap := r.Snapshot()
	if snap["owned_total"] != 7 || snap["hooked_total"] != 42 || snap["depth"] != 3.5 {
		t.Fatalf("snapshot = %v", snap)
	}

	var js strings.Builder
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]float64
	if err := json.Unmarshal([]byte(js.String()), &decoded); err != nil {
		t.Fatalf("JSON output does not parse: %v\n%s", err, js.String())
	}
	if decoded["owned_total"] != 7 || decoded["depth"] != 3.5 {
		t.Fatalf("decoded = %v", decoded)
	}

	var prom strings.Builder
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, want := range []string{
		"# TYPE owned_total counter",
		"# TYPE depth gauge",
		`lane_served_total{lane="0"} 10`,
		`lane_served_total{lane="1"} 20`,
		"owned_total 7",
		"depth 3.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family even with multiple labeled series.
	if n := strings.Count(out, "# TYPE lane_served_total"); n != 1 {
		t.Fatalf("family lane_served_total typed %d times:\n%s", n, out)
	}
}

func TestPromSanitize(t *testing.T) {
	for in, want := range map[string]string{
		"ok_name":     "ok_name",
		"dots.and-hy": "dots_and_hy",
		"9lead":       "_lead",
		"":            "",
		"nameµ_k":     "name__k", // UTF-8 maps to one underscore per rune
		"a:b":         "a:b",     // colons are legal (recording rules)
		"x9":          "x9",      // digits legal after the first byte
		"Δtotal":      "_total",  // leading non-ASCII
		"a b\tc":      "a_b_c",   // whitespace
		"9":           "_",       // single leading digit
		"_ok":         "_ok",     // leading underscore stays
		"CamelCase":   "CamelCase",
	} {
		if got := promSanitize(in); got != want {
			t.Fatalf("promSanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSplitLabels(t *testing.T) {
	for _, tc := range []struct{ in, family, labels string }{
		{"plain_total", "plain_total", ""},
		{`m{lane="0"}`, "m", `{lane="0"}`},
		{`m{k="a=b"}`, "m", `{k="a=b"}`}, // '=' inside a label value
		{`m{a="1",b="2"}`, "m", `{a="1",b="2"}`},
		{"{}", "", "{}"}, // degenerate: empty family
		{`m{v="µ"}`, "m", `{v="µ"}`},
	} {
		family, labels := splitLabels(tc.in)
		if family != tc.family || labels != tc.labels {
			t.Fatalf("splitLabels(%q) = (%q, %q), want (%q, %q)",
				tc.in, family, labels, tc.family, tc.labels)
		}
	}
}

func TestTrimJSONNumber(t *testing.T) {
	neg0 := math.Copysign(0, -1)
	for in, want := range map[float64]string{
		0:          "0",
		neg0:       "0", // -0.0 compares equal to 0: renders as integer zero
		7:          "7",
		-3:         "-3",
		3.5:        "3.5",
		1e15:       "1000000000000000",
		0.001:      "0.001",
		-2.25:      "-2.25",
		1e21:       "1e+21", // past int64 precision: falls back to %g
		math.NaN(): "NaN",
	} {
		if got := trimJSONNumber(in); got != want {
			t.Fatalf("trimJSONNumber(%v) = %q, want %q", in, got, want)
		}
	}
}

// TestMetricsSamplerConcurrentStop hammers Stop from many goroutines: the
// sync.Once close must make this race- and panic-free (run with -race).
func TestMetricsSamplerConcurrentStop(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Store(1)
	s := NewMetricsSampler(r, time.Millisecond, 4)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Stop()
		}()
	}
	wg.Wait()
	s.Stop() // and again after it is already stopped
}

// TestMetricsSamplerNegativeRateClamps feeds the sampler a counter that
// moves backwards (source reset) and checks the reported rate clamps to 0
// instead of going negative.
func TestMetricsSamplerNegativeRateClamps(t *testing.T) {
	r := NewRegistry()
	var v atomic.Uint64
	v.Store(1000)
	r.CounterFunc("resetting_total", v.Load)
	s := &MetricsSampler{
		reg: r, period: time.Second, keep: 4,
		rates: make(map[string]float64),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	base := time.Unix(0, 0)
	s.sample(base)
	v.Store(2000) // forward: positive rate
	s.sample(base.Add(time.Second))
	if got := s.Rates()["resetting_total_per_sec"]; got != 1000 {
		t.Fatalf("forward rate %v, want 1000", got)
	}
	v.Store(50) // backwards: counter reset
	s.sample(base.Add(2 * time.Second))
	if got := s.Rates()["resetting_total_per_sec"]; got != 0 {
		t.Fatalf("rate after reset %v, want clamp to 0", got)
	}
	v.Store(150) // recovers on the next period
	s.sample(base.Add(3 * time.Second))
	if got := s.Rates()["resetting_total_per_sec"]; got != 100 {
		t.Fatalf("recovered rate %v, want 100", got)
	}
}

func TestMetricsSamplerRatesAndHistory(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("work_total")
	s := NewMetricsSampler(r, 5*time.Millisecond, 10)
	defer s.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		c.Add(100)
		if len(s.History()) >= 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	hist := s.History()
	if len(hist) < 3 {
		t.Fatalf("sampler collected %d samples", len(hist))
	}
	if len(hist) > 10 {
		t.Fatalf("history exceeded keep bound: %d", len(hist))
	}
	rates := s.Rates()
	if _, ok := rates["work_total_per_sec"]; !ok {
		t.Fatalf("no rate computed: %v", rates)
	}
}

// TestMetricsHandlerUnderLoad hits both endpoints while the engine is
// actively processing packets.
func TestMetricsHandlerUnderLoad(t *testing.T) {
	e := startTest(t, Config{Paths: 2}, nil)
	sampler := NewMetricsSampler(e.Metrics(), 2*time.Millisecond, 50)
	defer sampler.Stop()
	srv := httptest.NewServer(MetricsHandler(e.Metrics(), sampler))
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50000; i++ {
			e.Ingress(livePkt(uint64(i%16), 128))
		}
		e.Close()
	}()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	for i := 0; i < 20; i++ {
		prom, ct := get("/metrics")
		if !strings.Contains(ct, "text/plain") {
			t.Fatalf("/metrics content type %q", ct)
		}
		if !strings.Contains(prom, "mpdp_offered_total") {
			t.Fatalf("/metrics missing engine counters:\n%s", prom)
		}
		js, ct := get("/metrics.json")
		if !strings.Contains(ct, "application/json") {
			t.Fatalf("/metrics.json content type %q", ct)
		}
		var doc struct {
			Metrics map[string]float64 `json:"metrics"`
		}
		if err := json.Unmarshal([]byte(js), &doc); err != nil {
			t.Fatalf("/metrics.json does not parse: %v", err)
		}
		if _, ok := doc.Metrics["mpdp_delivered_total"]; !ok {
			t.Fatalf("/metrics.json missing engine counters: %v", doc.Metrics)
		}
	}
	<-done

	// After the run, offered must equal the pushed count.
	snap := e.Metrics().Snapshot()
	if snap["mpdp_offered_total"] != 50000 {
		t.Fatalf("offered = %v, want 50000", snap["mpdp_offered_total"])
	}
}
