package live

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the live plane's SLO tracker: latency and
// availability objectives evaluated with multi-window multi-burn-rate
// alerting (the SRE-workbook recipe). Each observation is classed good or
// bad against the objectives; the tracker keeps cumulative counters plus
// two ring buffers of periodic snapshots (a fine ring for the fast
// windows, a coarse ring for the slow ones) and derives, per window, the
// burn rate — the error rate as a multiple of the budget the objective
// allows. Paired windows gate each alert so a burst must both be recent
// (short window burning) and sustained (long window burning) to fire.

// SLOState is the tracker's alert state.
type SLOState int

const (
	SLOOK SLOState = iota
	SLOWarning
	SLOCritical
)

func (s SLOState) String() string {
	switch s {
	case SLOOK:
		return "ok"
	case SLOWarning:
		return "warning"
	case SLOCritical:
		return "critical"
	default:
		return fmt.Sprintf("SLOState(%d)", int(s))
	}
}

// SLOObjective is a parsed objective set.
type SLOObjective struct {
	// LatencyNS is the per-packet latency threshold in nanoseconds; a
	// delivered packet slower than this is a bad event. 0 disables the
	// latency objective.
	LatencyNS int64
	// LatencyTarget is the fraction of packets that must meet LatencyNS
	// (e.g. 0.99 for "p99 < 2ms"). The error budget is 1 - target.
	LatencyTarget float64
	// AvailTarget is the fraction of offered packets that must be
	// delivered (e.g. 0.999 for "avail > 99.9"). 0 disables it.
	AvailTarget float64
}

// ParseSLO parses a comma-separated objective spec like
//
//	p99<2ms,avail>99.9
//
// Latency terms are p<quantile><threshold> with a Go duration threshold
// (ns, us, ms, s); the quantile digits set the target fraction (p99 →
// 0.99, p999 → 0.999). Availability terms are avail><percent>.
func ParseSLO(spec string) (SLOObjective, error) {
	var o SLOObjective
	if strings.TrimSpace(spec) == "" {
		return o, fmt.Errorf("slo: empty spec")
	}
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		switch {
		case strings.HasPrefix(term, "p"):
			rest := term[1:]
			i := strings.IndexByte(rest, '<')
			if i <= 0 {
				return o, fmt.Errorf("slo: latency term %q needs the form p99<2ms", term)
			}
			digits := rest[:i]
			target := 0.0
			scale := 0.1
			for _, c := range digits {
				if c < '0' || c > '9' {
					return o, fmt.Errorf("slo: bad quantile %q in %q", digits, term)
				}
				target += float64(c-'0') * scale
				scale /= 10
			}
			if target <= 0 || target >= 1 {
				return o, fmt.Errorf("slo: quantile p%s out of range in %q", digits, term)
			}
			d, err := time.ParseDuration(rest[i+1:])
			if err != nil || d <= 0 {
				return o, fmt.Errorf("slo: bad latency threshold in %q", term)
			}
			o.LatencyNS = d.Nanoseconds()
			o.LatencyTarget = target
		case strings.HasPrefix(term, "avail>"):
			var pct float64
			if _, err := fmt.Sscanf(term[len("avail>"):], "%g", &pct); err != nil || pct <= 0 || pct >= 100 {
				return o, fmt.Errorf("slo: bad availability term %q (want avail>99.9)", term)
			}
			o.AvailTarget = pct / 100
		default:
			return o, fmt.Errorf("slo: unknown term %q", term)
		}
	}
	return o, nil
}

// String renders the objective back in spec form.
func (o SLOObjective) String() string {
	var parts []string
	if o.LatencyNS > 0 {
		q := strings.TrimRight(strings.TrimPrefix(fmt.Sprintf("%.4f", o.LatencyTarget), "0."), "0")
		parts = append(parts, fmt.Sprintf("p%s<%s", q, time.Duration(o.LatencyNS)))
	}
	if o.AvailTarget > 0 {
		parts = append(parts, fmt.Sprintf("avail>%g", o.AvailTarget*100))
	}
	return strings.Join(parts, ",")
}

// sloWindow pairs a lookback duration with the burn-rate threshold that,
// sustained over that window, justifies its alert severity.
type sloWindow struct {
	name string
	dur  time.Duration
	burn float64
}

// The canonical multiwindow pairs: the fast pair (5m+1h at 14.4×) catches
// budget-torching incidents within minutes; the slow pair (6h+3d at 1×)
// catches slow leaks that would exhaust a 30-day budget on schedule.
var (
	sloFastWindows = [2]sloWindow{{"5m", 5 * time.Minute, 14.4}, {"1h", time.Hour, 14.4}}
	sloSlowWindows = [2]sloWindow{{"6h", 6 * time.Hour, 1.0}, {"3d", 72 * time.Hour, 1.0}}
)

// sloCounters is one cumulative reading of the tracker's event counters.
type sloCounters struct {
	latGood, latBad     uint64 // latency objective events
	availGood, availBad uint64 // availability objective events
}

// sloRing is a fixed-period ring of cumulative counter snapshots, newest
// last. Window deltas subtract the snapshot nearest the window start from
// the current counters.
type sloRing struct {
	period time.Duration
	snaps  []sloCounters // ring storage
	times  []time.Time
	head   int // next write slot
	filled int
}

func newSLORing(period, span time.Duration) *sloRing {
	n := int(span/period) + 1
	return &sloRing{
		period: period,
		snaps:  make([]sloCounters, n),
		times:  make([]time.Time, n),
	}
}

func (r *sloRing) push(now time.Time, c sloCounters) {
	r.snaps[r.head] = c
	r.times[r.head] = now
	r.head = (r.head + 1) % len(r.snaps)
	if r.filled < len(r.snaps) {
		r.filled++
	}
}

// at returns the newest snapshot no newer than t, and whether the ring
// reaches back that far. With nothing old enough, the oldest retained
// snapshot is returned with ok=false; callers then treat the window as
// spanning the tracker's whole (short) life. Snapshots are pushed in
// time order, so this is a binary search over the ring's chronology.
func (r *sloRing) at(t time.Time) (sloCounters, bool) {
	if r.filled == 0 {
		return sloCounters{}, false
	}
	n := len(r.snaps)
	idxAt := func(j int) int { return (r.head - r.filled + j + n) % n }
	if r.times[idxAt(0)].After(t) {
		return r.snaps[idxAt(0)], false
	}
	lo, hi := 0, r.filled-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if r.times[idxAt(mid)].After(t) {
			hi = mid - 1
		} else {
			lo = mid
		}
	}
	return r.snaps[idxAt(lo)], true
}

// SLOTracker classifies observations against an objective and drives the
// ok → warning → critical state machine. Observe is lock-free (atomic
// adds); Tick and readers take a mutex. The clock is injected so the
// state machine is testable without waiting hours.
type SLOTracker struct {
	obj SLOObjective
	now func() time.Time

	latGood, latBad     atomic.Uint64
	availGood, availBad atomic.Uint64

	mu     sync.Mutex
	fine   *sloRing // 1s snapshots spanning the fast windows
	coarse *sloRing // 60s snapshots spanning the slow windows
	state  SLOState
	since  time.Time
	burns  map[string]SLOBurn // latest per-window burn rates
}

// SLOBurn is one window's burn reading for one objective.
type SLOBurn struct {
	Window    string  `json:"window"`
	Objective string  `json:"objective"` // "latency" or "availability"
	Rate      float64 `json:"burn_rate"` // error-rate / budget
	Events    uint64  `json:"events"`    // observations in the window
}

// NewSLOTracker builds a tracker for obj. clock may be nil (wall time).
func NewSLOTracker(obj SLOObjective, clock func() time.Time) *SLOTracker {
	if clock == nil {
		clock = time.Now
	}
	t := &SLOTracker{
		obj:    obj,
		now:    clock,
		fine:   newSLORing(time.Second, sloFastWindows[1].dur),
		coarse: newSLORing(time.Minute, sloSlowWindows[1].dur),
		burns:  make(map[string]SLOBurn),
	}
	t.since = clock()
	// Seed both rings with a zero baseline so the very first Tick already
	// measures a delta (otherwise a short-lived run evaluates nothing).
	t.fine.push(t.since, sloCounters{})
	t.coarse.push(t.since, sloCounters{})
	return t
}

// Objective returns the tracked objective.
func (t *SLOTracker) Objective() SLOObjective { return t.obj }

// ObserveDelivery records one delivered packet with its e2e latency.
func (t *SLOTracker) ObserveDelivery(latencyNS int64) {
	if t.obj.LatencyNS > 0 {
		if latencyNS <= t.obj.LatencyNS {
			t.latGood.Add(1)
		} else {
			t.latBad.Add(1)
		}
	}
	if t.obj.AvailTarget > 0 {
		t.availGood.Add(1)
	}
}

// ObserveLoss records one packet that was offered but not delivered
// (tail drop, chain drop, reorder straggler).
func (t *SLOTracker) ObserveLoss() {
	if t.obj.AvailTarget > 0 {
		t.availBad.Add(1)
	}
}

func (t *SLOTracker) counters() sloCounters {
	return sloCounters{
		latGood: t.latGood.Load(), latBad: t.latBad.Load(),
		availGood: t.availGood.Load(), availBad: t.availBad.Load(),
	}
}

// burnRate returns the burn over [now-w.dur, now] for bad/good deltas
// picked by pick, against budget. ok=false when the window saw no events.
func burnOver(cur, old sloCounters, pick func(sloCounters) (good, bad uint64), budget float64) (SLOBurn, bool) {
	cg, cb := pick(cur)
	og, ob := pick(old)
	good, bad := cg-og, cb-ob
	total := good + bad
	if total == 0 || budget <= 0 {
		return SLOBurn{}, false
	}
	errRate := float64(bad) / float64(total)
	return SLOBurn{Rate: errRate / budget, Events: total}, true
}

// Tick advances the tracker: pushes counter snapshots into the rings and
// re-evaluates the state machine. Call it about once a second (the
// engine's sampler or a dedicated ticker); tests call it directly with an
// advancing fake clock.
func (t *SLOTracker) Tick() {
	now := t.now()
	cur := t.counters()
	t.mu.Lock()
	defer t.mu.Unlock()

	// Push into each ring no faster than its period.
	if t.fine.filled == 0 || now.Sub(t.lastTime(t.fine)) >= t.fine.period {
		t.fine.push(now, cur)
	}
	if t.coarse.filled == 0 || now.Sub(t.lastTime(t.coarse)) >= t.coarse.period {
		t.coarse.push(now, cur)
	}

	type objective struct {
		name   string
		pick   func(sloCounters) (uint64, uint64)
		budget float64
	}
	var objectives []objective
	if t.obj.LatencyNS > 0 {
		objectives = append(objectives, objective{"latency",
			func(c sloCounters) (uint64, uint64) { return c.latGood, c.latBad },
			1 - t.obj.LatencyTarget})
	}
	if t.obj.AvailTarget > 0 {
		objectives = append(objectives, objective{"availability",
			func(c sloCounters) (uint64, uint64) { return c.availGood, c.availBad },
			1 - t.obj.AvailTarget})
	}

	state := SLOOK
	burns := make(map[string]SLOBurn, 8)
	for _, obj := range objectives {
		eval := func(w sloWindow, ring *sloRing) (SLOBurn, bool) {
			old, _ := ring.at(now.Add(-w.dur))
			b, ok := burnOver(cur, old, obj.pick, obj.budget)
			b.Window, b.Objective = w.name, obj.name
			burns[obj.name+"_"+w.name] = b
			return b, ok
		}
		fastShort, ok1 := eval(sloFastWindows[0], t.fine)
		fastLong, ok2 := eval(sloFastWindows[1], t.fine)
		slowShort, ok3 := eval(sloSlowWindows[0], t.coarse)
		slowLong, ok4 := eval(sloSlowWindows[1], t.coarse)
		if ok1 && ok2 && fastShort.Rate >= sloFastWindows[0].burn && fastLong.Rate >= sloFastWindows[1].burn {
			state = SLOCritical
		} else if ok3 && ok4 && slowShort.Rate >= sloSlowWindows[0].burn && slowLong.Rate >= sloSlowWindows[1].burn {
			if state < SLOWarning {
				state = SLOWarning
			}
		}
	}
	if state != t.state {
		t.state = state
		t.since = now
	}
	t.burns = burns
}

func (t *SLOTracker) lastTime(r *sloRing) time.Time {
	idx := (r.head - 1 + len(r.snaps)) % len(r.snaps)
	return r.times[idx]
}

// State returns the current alert state and when it was entered.
func (t *SLOTracker) State() (SLOState, time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state, t.since
}

// SLOStatus is the tracker's full JSON-ready status document.
type SLOStatus struct {
	Objective string             `json:"objective"`
	State     string             `json:"state"`
	Since     time.Time          `json:"since"`
	Totals    map[string]uint64  `json:"totals"`
	Burns     []SLOBurn          `json:"burn_rates"`
	Ratios    map[string]float64 `json:"ratios"`
}

// Status assembles the current status.
func (t *SLOTracker) Status() SLOStatus {
	cur := t.counters()
	t.mu.Lock()
	state, since := t.state, t.since
	burns := make([]SLOBurn, 0, len(t.burns))
	for _, b := range t.burns {
		burns = append(burns, b)
	}
	t.mu.Unlock()
	sort.Slice(burns, func(i, j int) bool {
		if burns[i].Objective != burns[j].Objective {
			return burns[i].Objective < burns[j].Objective
		}
		return burns[i].Window < burns[j].Window
	})

	st := SLOStatus{
		Objective: t.obj.String(),
		State:     state.String(),
		Since:     since,
		Totals: map[string]uint64{
			"latency_good": cur.latGood, "latency_bad": cur.latBad,
			"avail_good": cur.availGood, "avail_bad": cur.availBad,
		},
		Burns:  burns,
		Ratios: map[string]float64{},
	}
	if n := cur.latGood + cur.latBad; n > 0 {
		st.Ratios["latency_good_ratio"] = float64(cur.latGood) / float64(n)
	}
	if n := cur.availGood + cur.availBad; n > 0 {
		st.Ratios["avail_good_ratio"] = float64(cur.availGood) / float64(n)
	}
	return st
}

// WriteJSON writes the status document.
func (t *SLOTracker) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false) // keep "p99<2ms" readable, not <
	return enc.Encode(t.Status())
}

// Register exposes the tracker on a registry as mpdp_slo_* series: the
// numeric state, cumulative good/bad counters, and per-window burn-rate
// gauges.
func (t *SLOTracker) Register(r *Registry) {
	r.GaugeFunc("mpdp_slo_state", func() float64 {
		s, _ := t.State()
		return float64(s)
	})
	r.CounterFunc("mpdp_slo_latency_good_total", t.latGood.Load)
	r.CounterFunc("mpdp_slo_latency_bad_total", t.latBad.Load)
	r.CounterFunc("mpdp_slo_avail_good_total", t.availGood.Load)
	r.CounterFunc("mpdp_slo_avail_bad_total", t.availBad.Load)
	for _, w := range []sloWindow{sloFastWindows[0], sloFastWindows[1], sloSlowWindows[0], sloSlowWindows[1]} {
		for _, obj := range []string{"latency", "availability"} {
			key := obj + "_" + w.name
			r.GaugeFunc(fmt.Sprintf("mpdp_slo_burn_rate{objective=%q,window=%q}", obj, w.name), func() float64 {
				t.mu.Lock()
				defer t.mu.Unlock()
				return t.burns[key].Rate
			})
		}
	}
}

// SLOHandler serves the tracker at /slo.json.
func SLOHandler(t *SLOTracker) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/slo.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
