package live

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mpdp/internal/packet"
)

func TestParseSLO(t *testing.T) {
	o, err := ParseSLO("p99<2ms,avail>99.9")
	if err != nil {
		t.Fatal(err)
	}
	if o.LatencyNS != 2*time.Millisecond.Nanoseconds() || o.LatencyTarget != 0.99 {
		t.Fatalf("latency objective %+v", o)
	}
	if math.Abs(o.AvailTarget-0.999) > 1e-12 {
		t.Fatalf("avail objective %v", o.AvailTarget)
	}

	o, err = ParseSLO("p999<500us")
	if err != nil {
		t.Fatal(err)
	}
	if o.LatencyTarget != 0.999 || o.LatencyNS != 500*time.Microsecond.Nanoseconds() {
		t.Fatalf("p999 objective %+v", o)
	}
	if o.AvailTarget != 0 {
		t.Fatal("avail should be disabled")
	}

	if s := o.String(); !strings.Contains(s, "p999<") {
		t.Fatalf("round-trip spec %q", s)
	}

	for _, bad := range []string{"", "p99", "p99<", "p99<-1ms", "p0<1ms", "avail>", "avail>101", "avail>0", "latency<1ms", "p99<1ms,,"} {
		if _, err := ParseSLO(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// fakeClock is an injectable clock for deterministic SLO tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// feed pushes good/bad observations and ticks once per simulated step
// for the given span. Long phases use a coarse step so simulating days
// stays cheap; the coarse ring only retains one snapshot per minute
// anyway.
func feed(tr *SLOTracker, clk *fakeClock, span, step time.Duration, goodPerStep, badPerStep int) {
	steps := int(span / step)
	for i := 0; i < steps; i++ {
		for g := 0; g < goodPerStep; g++ {
			tr.ObserveDelivery(1) // well under any latency threshold
		}
		for b := 0; b < badPerStep; b++ {
			tr.ObserveLoss()
		}
		clk.advance(step)
		tr.Tick()
	}
}

// TestSLOStateMachine drives the tracker through ok → critical → ok →
// warning with a fake clock: a hard outage torches the fast windows, a
// slow leak only trips the slow pair.
func TestSLOStateMachine(t *testing.T) {
	obj, err := ParseSLO("p99<2ms,avail>99.9")
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	tr := NewSLOTracker(obj, clk.now)

	// Healthy traffic: all good, state stays ok.
	feed(tr, clk, 2*time.Minute, time.Second, 1000, 0)
	if s, _ := tr.State(); s != SLOOK {
		t.Fatalf("healthy state = %v", s)
	}

	// Hard outage: 10% of packets lost. Budget is 0.1%, so the burn rate
	// is 100x — far past the 14.4x fast threshold. Both fast windows see
	// it within minutes.
	feed(tr, clk, 6*time.Minute, time.Second, 900, 100)
	if s, _ := tr.State(); s != SLOCritical {
		t.Fatalf("outage state = %v, want critical", s)
	}
	st := tr.Status()
	if st.State != "critical" {
		t.Fatalf("status state %q", st.State)
	}

	// Recovery: the bad events age out of the 5m window.
	feed(tr, clk, 20*time.Minute, time.Second, 1000, 0)
	if s, _ := tr.State(); s != SLOOK && s != SLOWarning {
		t.Fatalf("recovered fast state = %v", s)
	}
	// ... and after the slow windows drain too, fully ok.
	feed(tr, clk, 80*time.Hour, time.Minute, 1000, 0)
	if s, _ := tr.State(); s != SLOOK {
		t.Fatalf("fully recovered state = %v", s)
	}

	// Slow leak: 0.3% loss — 3x budget burn. Too slow for the 14.4x fast
	// pair, but sustained over the 6h and 3d windows it must warn.
	feed(tr, clk, 80*time.Hour, time.Minute, 997, 3)
	if s, _ := tr.State(); s != SLOWarning {
		t.Fatalf("slow-leak state = %v, want warning", s)
	}
}

// TestSLOLatencyObjective checks the latency arm: deliveries past the
// threshold are bad events even with perfect availability.
func TestSLOLatencyObjective(t *testing.T) {
	obj, err := ParseSLO("p99<1ms")
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	tr := NewSLOTracker(obj, clk.now)

	slow := (2 * time.Millisecond).Nanoseconds()
	fast := (100 * time.Microsecond).Nanoseconds()
	for i := 0; i < 600; i++ {
		// 20% of deliveries breach the 1ms threshold: burn 20x the 1%
		// budget, past the 14.4x critical gate.
		for j := 0; j < 80; j++ {
			tr.ObserveDelivery(fast)
		}
		for j := 0; j < 20; j++ {
			tr.ObserveDelivery(slow)
		}
		clk.advance(time.Second)
		tr.Tick()
	}
	if s, _ := tr.State(); s != SLOCritical {
		t.Fatalf("latency breach state = %v, want critical", s)
	}
	st := tr.Status()
	if st.Totals["latency_bad"] == 0 || st.Totals["avail_bad"] != 0 {
		t.Fatalf("totals %v", st.Totals)
	}
	if r := st.Ratios["latency_good_ratio"]; r < 0.79 || r > 0.81 {
		t.Fatalf("latency_good_ratio %v", r)
	}
}

// TestSLOStatusAndMetrics checks the JSON document shape and the
// registry series.
func TestSLOStatusAndMetrics(t *testing.T) {
	obj, _ := ParseSLO("p99<2ms,avail>99.9")
	clk := &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	tr := NewSLOTracker(obj, clk.now)
	feed(tr, clk, time.Minute, time.Second, 99, 1)

	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"state"`, `"burn_rates"`, `"objective": "p99<2ms,avail>99.9"`, `"window": "5m"`} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("slo.json missing %s:\n%s", want, b.String())
		}
	}

	r := NewRegistry()
	tr.Register(r)
	snap := r.Snapshot()
	if snap["mpdp_slo_avail_bad_total"] != 60 {
		t.Fatalf("avail_bad %v", snap["mpdp_slo_avail_bad_total"])
	}
	burn := snap[`mpdp_slo_burn_rate{objective="availability",window="5m"}`]
	// 1% loss against a 0.1% budget: burn ≈ 10x.
	if burn < 8 || burn > 12 {
		t.Fatalf("5m availability burn %v, want ≈10", burn)
	}
	// 10x burn sits under the 14.4x fast gate (not critical) but over the
	// 1x slow gate — with the tracker only a minute old the slow windows
	// clamp to its whole life, so the sustained burn reads as a warning.
	if snap["mpdp_slo_state"] != float64(SLOWarning) {
		t.Fatalf("state gauge %v, want warning (%v)", snap["mpdp_slo_state"], float64(SLOWarning))
	}
}

// TestSLOEngineIntegration runs the live engine with a tracker attached
// and checks deliveries and drops both land in the tracker, and the
// engine's registry exposes the slo series.
func TestSLOEngineIntegration(t *testing.T) {
	obj, _ := ParseSLO("p99<10s,avail>99")
	tr := NewSLOTracker(obj, nil)
	var got atomic.Uint64
	e := startTest(t, Config{Paths: 2, QueueCap: 8, SLO: tr}, func(*packet.Packet) { got.Add(1) })
	for i := 0; i < 20000; i++ {
		e.Ingress(livePkt(uint64(i%16), 200))
	}
	e.Close()
	st := e.Snapshot()

	status := tr.Status()
	if status.Totals["avail_good"] != st.Delivered {
		t.Fatalf("tracker good %d != delivered %d", status.Totals["avail_good"], st.Delivered)
	}
	if status.Totals["avail_bad"] != st.TailDrops {
		t.Fatalf("tracker bad %d != tail drops %d", status.Totals["avail_bad"], st.TailDrops)
	}
	if status.Totals["latency_good"]+status.Totals["latency_bad"] != st.Delivered {
		t.Fatalf("latency events %d+%d != delivered %d",
			status.Totals["latency_good"], status.Totals["latency_bad"], st.Delivered)
	}
	snap := e.Metrics().Snapshot()
	if snap["mpdp_slo_avail_good_total"] != float64(st.Delivered) {
		t.Fatalf("registry slo series %v != %d", snap["mpdp_slo_avail_good_total"], st.Delivered)
	}
}

// The burn-rate math subtracts ring snapshots from current counters; the
// ring must stay chronologically searchable after its head wraps.
func TestSLORingWrapAround(t *testing.T) {
	r := newSLORing(time.Second, 4*time.Second) // 5 slots
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 12; i++ { // wrap the 5-slot ring twice
		r.push(base.Add(time.Duration(i)*time.Second), sloCounters{latGood: uint64(i)})
	}
	// Held window is now t=7..11. Exact hits inside it:
	for i := 7; i <= 11; i++ {
		c, ok := r.at(base.Add(time.Duration(i) * time.Second))
		if !ok || c.latGood != uint64(i) {
			t.Fatalf("at(t=%d): got %d ok=%v, want %d ok=true", i, c.latGood, ok, i)
		}
	}
	// Between snapshots: newest no newer than t.
	if c, ok := r.at(base.Add(9500 * time.Millisecond)); !ok || c.latGood != 9 {
		t.Fatalf("at(t=9.5): got %d ok=%v, want 9 ok=true", c.latGood, ok)
	}
	// Before the retained window: clamp to oldest with ok=false so the
	// burn window collapses to the ring's actual reach.
	if c, ok := r.at(base.Add(2 * time.Second)); ok || c.latGood != 7 {
		t.Fatalf("at(t=2): got %d ok=%v, want oldest 7 ok=false", c.latGood, ok)
	}
	// After the newest: the newest wins.
	if c, ok := r.at(base.Add(time.Hour)); !ok || c.latGood != 11 {
		t.Fatalf("at(t=+1h): got %d ok=%v, want 11 ok=true", c.latGood, ok)
	}
}

// A tracker that sat idle pushes nothing for a long gap; the snapshots on
// either side of the gap must still bracket queries correctly.
func TestSLORingIdleGap(t *testing.T) {
	r := newSLORing(time.Second, 10*time.Second)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	r.push(base, sloCounters{latGood: 1})
	r.push(base.Add(time.Second), sloCounters{latGood: 2})
	// Idle gap: nothing pushed for an hour.
	r.push(base.Add(time.Hour), sloCounters{latGood: 3})
	r.push(base.Add(time.Hour+time.Second), sloCounters{latGood: 4})

	// Queries inside the gap resolve to the last pre-gap snapshot: a burn
	// window starting mid-gap sees the pre-gap cumulative counts, so the
	// delta attributes nothing to the idle time.
	if c, ok := r.at(base.Add(30 * time.Minute)); !ok || c.latGood != 2 {
		t.Fatalf("mid-gap: got %d ok=%v, want 2 ok=true", c.latGood, ok)
	}
	if c, ok := r.at(base.Add(time.Hour)); !ok || c.latGood != 3 {
		t.Fatalf("gap end: got %d ok=%v, want 3 ok=true", c.latGood, ok)
	}
	// Before everything: oldest, not ok — window clamps to tracker life.
	if c, ok := r.at(base.Add(-time.Minute)); ok || c.latGood != 1 {
		t.Fatalf("pre-life: got %d ok=%v, want 1 ok=false", c.latGood, ok)
	}
}
