package live

import (
	"fmt"

	"mpdp/internal/nf"
	"mpdp/internal/stats"
)

// spanSet holds the live engine's per-stage latency histograms — the
// wall-clock analogue of internal/obs' 4-way exemplar attribution, but
// with per-NF-hop resolution and readable while the plane is running.
//
// Stages mirror a packet's path through the engine:
//
//	dispatch     ingress admission → lane enqueue (steering cost)
//	queue_wait   lane enqueue → service start (the interference signal)
//	nf<i>_<name> one chain element's wall execution time
//	service      full chain, service start → done
//	reorder_wait service done → in-order release
//	e2e          ingress → delivery (the paper's headline metric)
//
// All recorders are the sharded lock-free Histogram, so instrumentation
// adds atomic adds and clock reads but no locks to the hot path.
type spanSet struct {
	dispatch    *Histogram
	queueWait   *Histogram
	nfStages    []*Histogram
	nfNames     []string // label-ready: "nf0_fw", "nf1_nat", ...
	service     *Histogram
	reorderWait *Histogram
	e2e         *Histogram
}

// newSpanSet builds the stage histograms for a chain's element list.
// Element names repeat across chains (every lane runs a replica), so the
// set is built once from lane 0's replica and shared: stage timing
// aggregates across lanes, with shard striping absorbing the concurrency.
// The e2e stage reuses the engine's existing end-to-end histogram rather
// than allocating a second copy.
func newSpanSet(elements []nf.Element, e2e *Histogram) *spanSet {
	s := &spanSet{
		dispatch:    NewHistogram(),
		queueWait:   NewHistogram(),
		service:     NewHistogram(),
		reorderWait: NewHistogram(),
		e2e:         e2e,
	}
	for i, e := range elements {
		s.nfStages = append(s.nfStages, NewHistogram())
		s.nfNames = append(s.nfNames, fmt.Sprintf("nf%d_%s", i, e.Name()))
	}
	return s
}

// register exposes every stage histogram on the registry as one labeled
// family, `mpdp_stage_latency_ns{stage="..."}`.
func (s *spanSet) register(r *Registry) {
	reg := func(stage string, h *Histogram) {
		r.RegisterHistogram(fmt.Sprintf("mpdp_stage_latency_ns{stage=%q}", stage), h)
	}
	reg("dispatch", s.dispatch)
	reg("queue_wait", s.queueWait)
	for i, h := range s.nfStages {
		reg(s.nfNames[i], h)
	}
	reg("service", s.service)
	reg("reorder_wait", s.reorderWait)
	reg("e2e", s.e2e)
}

// StageSpan is one stage's snapshot for programmatic readers (Snapshot,
// mpdp-live's end-of-run report, tests).
type StageSpan struct {
	Stage   string
	Latency stats.Summary
}

// Summary converts a histogram snapshot to the stats.Summary shape the
// rest of the repo reports (exported for the wire transport's span
// reporting, which reuses these histograms outside the engine).
func (s *HistSnapshot) Summary() stats.Summary { return s.summary() }

// summary converts a histogram snapshot to the stats.Summary shape the
// rest of the repo reports.
func (s *HistSnapshot) summary() stats.Summary {
	return stats.Summary{
		Count: s.NCount,
		Mean:  s.Mean(),
		Min:   s.Min,
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
		Max:   s.Max,
	}
}

// snapshot returns every stage's summary in pipeline order.
func (s *spanSet) snapshot() []StageSpan {
	out := []StageSpan{
		{Stage: "dispatch", Latency: s.dispatch.Snapshot().summary()},
		{Stage: "queue_wait", Latency: s.queueWait.Snapshot().summary()},
	}
	for i, h := range s.nfStages {
		out = append(out, StageSpan{Stage: s.nfNames[i], Latency: h.Snapshot().summary()})
	}
	out = append(out,
		StageSpan{Stage: "service", Latency: s.service.Snapshot().summary()},
		StageSpan{Stage: "reorder_wait", Latency: s.reorderWait.Snapshot().summary()},
		StageSpan{Stage: "e2e", Latency: s.e2e.Snapshot().summary()},
	)
	return out
}
