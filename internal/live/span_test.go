package live

import (
	"strings"
	"testing"
	"time"

	"mpdp/internal/nf"
)

// TestLiveSpansCoverPipeline runs real traffic through the live engine and
// checks every stage span — dispatch, queue wait, each NF element,
// service, reorder wait, e2e — recorded observations, in pipeline order,
// with counts consistent with the delivered packet count.
func TestLiveSpansCoverPipeline(t *testing.T) {
	e := startTest(t, Config{Paths: 2, ReorderTimeout: 50 * time.Millisecond}, nil)
	const n = 10000
	for i := 0; i < n; i++ {
		e.Ingress(livePkt(uint64(i%16), 200))
	}
	e.Close()
	st := e.Snapshot()

	spans := e.StageSnapshot()
	chainLen := nf.PresetChain(3).Len()
	want := []string{"dispatch", "queue_wait"}
	for i, el := range nf.PresetChain(3).Elements() {
		want = append(want, "nf"+string(rune('0'+i))+"_"+el.Name())
	}
	want = append(want, "service", "reorder_wait", "e2e")
	if len(spans) != len(want) {
		t.Fatalf("got %d spans, want %d (%v)", len(spans), len(want), spans)
	}
	for i, sp := range spans {
		if sp.Stage != want[i] {
			t.Fatalf("span %d = %q, want %q", i, sp.Stage, want[i])
		}
		if sp.Latency.Count == 0 {
			t.Fatalf("stage %q recorded nothing", sp.Stage)
		}
		if sp.Latency.P99 < sp.Latency.P50 || sp.Latency.Max < sp.Latency.P99 {
			t.Fatalf("stage %q quantiles not ordered: %+v", sp.Stage, sp.Latency)
		}
	}
	_ = chainLen

	// Enqueued packets traverse every stage: dispatch count == offered -
	// tail drops, e2e count == delivered.
	enq := st.Offered - st.TailDrops
	if got := spans[0].Latency.Count; uint64(got) != enq {
		t.Fatalf("dispatch count %d != enqueued %d", got, enq)
	}
	if got := spans[len(spans)-1].Latency.Count; uint64(got) != st.Delivered {
		t.Fatalf("e2e count %d != delivered %d", got, st.Delivered)
	}
	// The pass-all preset chain runs every element on every serviced
	// packet, so per-NF counts match the service count.
	var svc uint64
	for _, sp := range spans {
		if sp.Stage == "service" {
			svc = sp.Latency.Count
		}
	}
	for _, sp := range spans {
		if strings.HasPrefix(sp.Stage, "nf") && sp.Latency.Count != svc {
			t.Fatalf("stage %q count %d != service count %d", sp.Stage, sp.Latency.Count, svc)
		}
	}
}

// TestLiveSpansDisabled checks the opt-out: no span histograms, but the
// e2e latency summary still works.
func TestLiveSpansDisabled(t *testing.T) {
	e := startTest(t, Config{Paths: 2, DisableSpans: true}, nil)
	for i := 0; i < 2000; i++ {
		e.Ingress(livePkt(uint64(i%8), 100))
	}
	e.Close()
	if got := e.StageSnapshot(); got != nil {
		t.Fatalf("spans disabled but StageSnapshot returned %v", got)
	}
	if st := e.Snapshot(); st.Latency.Count == 0 {
		t.Fatal("e2e latency must keep working without spans")
	}
	var b strings.Builder
	if err := e.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "mpdp_stage_latency_ns") {
		t.Fatal("stage families exposed despite DisableSpans")
	}
}

// TestLiveSpansInMetrics checks the registry exposes each stage as a
// labeled histogram family with non-zero derived p99 gauges, the
// acceptance criterion for the live SLO plane.
func TestLiveSpansInMetrics(t *testing.T) {
	e := startTest(t, Config{Paths: 2}, nil)
	for i := 0; i < 5000; i++ {
		e.Ingress(livePkt(uint64(i%16), 200))
	}
	e.Close()

	snap := e.Metrics().Snapshot()
	for _, stage := range []string{"dispatch", "queue_wait", "service", "e2e"} {
		key := `mpdp_stage_latency_ns_count{stage="` + stage + `"}`
		if snap[key] == 0 {
			t.Fatalf("no observations for %s in snapshot", key)
		}
	}
	if snap[`mpdp_stage_latency_ns_p99{stage="e2e"}`] <= 0 {
		t.Fatal("e2e p99 gauge is zero under load")
	}

	var b strings.Builder
	if err := e.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE mpdp_stage_latency_ns histogram",
		`mpdp_stage_latency_ns_bucket{stage="e2e",le="+Inf"}`,
		`mpdp_stage_latency_ns_p99{stage="queue_wait"}`,
		`mpdp_stage_latency_ns_count{stage="dispatch"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus exposition missing %q:\n%s", want, out)
		}
	}
	// Per-NF stages appear with their index-qualified names.
	if !strings.Contains(out, `stage="nf0_`) {
		t.Fatalf("no per-NF stage families in exposition:\n%s", out)
	}
}
