package mesh

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"mpdp/internal/core"
	"mpdp/internal/invariant"
	"mpdp/internal/transport"
)

// ClientConfig parameterizes a mesh client: the steering end of the data
// plane, holding one multipath transport sender per gateway node and
// following membership as a gossip observer.
type ClientConfig struct {
	// ID is the client's mesh identity (observer role; it owns no flows).
	ID NodeID
	// ControlAddr is the gossip listen address (default 127.0.0.1:0).
	ControlAddr string
	// Scheduler, HedgeK, Deadline, DeadlineMargin, DupBudgetBytesPerSec
	// and DupBudgetBurst pass through to every per-node transport sender.
	Scheduler            transport.SchedulerName
	HedgeK               int
	Deadline             time.Duration
	DeadlineMargin       float64
	DupBudgetBytesPerSec float64
	DupBudgetBurst       float64
	// Health tunes the sender-side per-path health machines.
	Health core.HealthConfig
	// Impairer, when non-nil, is shared by every sender (fault injection).
	Impairer transport.Impairer
	// Checker, when non-nil, is the shared mesh-wide stream invariant
	// checker; every send is noted before its first wire copy.
	Checker *invariant.Stream
}

// flowState is the client's per-flow steering memory.
type flowState struct {
	next      uint64 // next mesh seq to assign
	owner     NodeID
	prevOwner NodeID // set on the first re-steer, then sticky
}

// Client steers application packets to their HRW owner, stamping every
// frame with the mesh envelope (epoch, mesh seq, previous owner). Send is
// not goroutine-safe with itself — callers serialize submission, matching
// the transport sender's single-goroutine discipline — but it is safe
// against the concurrent gossip loop.
type Client struct {
	cfg  ClientConfig
	ctrl *net.UDPConn

	mu       sync.Mutex
	view     *View
	steer    *Steering
	flows    map[uint64]*flowState
	senders  map[NodeID]*transport.Sender
	scratch  []byte
	resteers uint64

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewClient binds the client's control socket; Start connects the data
// plane once the seed membership (which includes this client's own
// observer row, built from Member()) is assembled.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.ControlAddr == "" {
		cfg.ControlAddr = "127.0.0.1:0"
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.ControlAddr)
	if err != nil {
		return nil, fmt.Errorf("mesh: client control addr: %w", err)
	}
	ctrl, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("mesh: client control socket: %w", err)
	}
	return &Client{
		cfg:     cfg,
		ctrl:    ctrl,
		view:    NewView(cfg.ID),
		flows:   make(map[uint64]*flowState),
		senders: make(map[NodeID]*transport.Sender),
		scratch: make([]byte, 0, EnvelopeLen+transport.MaxPayload),
		stop:    make(chan struct{}),
	}, nil
}

// Member returns the client's observer row for the seed membership.
func (c *Client) Member() Member {
	return Member{
		ID:          c.cfg.ID,
		State:       MemberAlive,
		Role:        RoleObserver,
		ControlAddr: c.ctrl.LocalAddr().String(),
	}
}

// Start seeds the view, dials one multipath sender per data member, and
// launches the gossip listener.
func (c *Client) Start(seed []Member) error {
	c.mu.Lock()
	c.view.Seed(seed, nowNanos())
	c.steer = c.view.Steering()
	c.mu.Unlock()
	for i := range seed {
		m := &seed[i]
		if m.Role != RoleData || len(m.DataAddrs) == 0 {
			continue
		}
		paths := make([]transport.PathConfig, len(m.DataAddrs))
		for j, addr := range m.DataAddrs {
			paths[j] = transport.PathConfig{RemoteAddr: addr}
		}
		s, err := transport.Dial(transport.SenderConfig{
			Paths:                paths,
			Scheduler:            c.cfg.Scheduler,
			HedgeK:               c.cfg.HedgeK,
			Deadline:             c.cfg.Deadline,
			DeadlineMargin:       c.cfg.DeadlineMargin,
			DupBudgetBytesPerSec: c.cfg.DupBudgetBytesPerSec,
			DupBudgetBurst:       c.cfg.DupBudgetBurst,
			Health:               c.cfg.Health,
			Impairer:             c.cfg.Impairer,
		})
		if err != nil {
			c.Close() //lint:allow erroreat teardown on the error path
			return fmt.Errorf("mesh: client dial node %d: %w", m.ID, err)
		}
		c.mu.Lock()
		c.senders[m.ID] = s
		c.mu.Unlock()
	}
	c.wg.Add(1)
	go c.ctrlLoop()
	return nil
}

// Send steers one application payload to the flow's current HRW owner,
// assigning the next mesh seq and stamping the envelope. It returns the
// mesh seq used and the owner it was steered to.
func (c *Client) Send(flow uint64, payload []byte) (uint64, NodeID, error) {
	c.mu.Lock()
	steer := c.steer
	owner := steer.Owner(flow)
	if owner == NodeNone {
		c.mu.Unlock()
		return 0, NodeNone, fmt.Errorf("mesh: no eligible owner for flow %x", flow)
	}
	fs, ok := c.flows[flow]
	if !ok {
		fs = &flowState{owner: owner, prevOwner: NodeNone}
		c.flows[flow] = fs
	} else if fs.owner != owner {
		fs.prevOwner = fs.owner
		fs.owner = owner
		c.resteers++
	}
	seq := fs.next
	fs.next++
	env := Envelope{Epoch: steer.Epoch(), Seq: seq, PrevOwner: fs.prevOwner}
	c.scratch = AppendEnvelope(c.scratch[:0], &env, payload)
	s := c.senders[owner]
	if c.cfg.Checker != nil {
		c.cfg.Checker.NoteSent(flow, seq)
	}
	c.mu.Unlock()
	if s == nil {
		// The owner is eligible but we hold no sender for it (it was not
		// in the seed): the frame is lost here, which the stream checker
		// treats like any wire loss.
		return seq, owner, fmt.Errorf("mesh: no sender for node %d", owner)
	}
	// The wire write happens outside c.mu; c.scratch is safe to read here
	// because only Send touches it and Send is caller-serialized.
	_, err := s.Send(flow, c.scratch)
	return seq, owner, err
}

// Epoch returns the client's current steering epoch.
func (c *Client) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.steer.Epoch()
}

// Owner returns the flow's owner under the client's current steering.
func (c *Client) Owner(flow uint64) NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.steer.Owner(flow)
}

// Resteers returns how many per-flow ownership changes the client has
// applied (each is one flow migrating after a membership change).
func (c *Client) Resteers() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resteers
}

// SenderStats snapshots every per-node transport sender.
func (c *Client) SenderStats() map[NodeID]transport.SenderStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[NodeID]transport.SenderStats, len(c.senders))
	for id, s := range c.senders {
		out[id] = s.Stats()
	}
	return out
}

// ctrlLoop merges inbound gossip until Close, rebuilding steering when
// the eligible set changes.
func (c *Client) ctrlLoop() {
	defer c.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		c.ctrl.SetReadDeadline(readDeadline(100 * time.Millisecond)) //lint:allow erroreat deadline set on a live socket cannot fail meaningfully
		sz, _, err := c.ctrl.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			select {
			case <-c.stop:
				return
			default:
				continue
			}
		}
		msg, err := DecodeGossip(buf[:sz])
		if err != nil {
			continue
		}
		c.mu.Lock()
		if c.view.Merge(msg, nowNanos()) {
			c.steer = c.view.Steering()
		}
		c.mu.Unlock()
	}
}

// Close stops the gossip loop and closes every sender and the control
// socket. Idempotent enough for the error path in Start.
func (c *Client) Close() error {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.ctrl.Close() //lint:allow erroreat teardown of a UDP socket
	c.wg.Wait()
	c.mu.Lock()
	ids := make([]NodeID, 0, len(c.senders))
	for id := range c.senders {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	senders := make([]*transport.Sender, 0, len(ids))
	for _, id := range ids {
		senders = append(senders, c.senders[id])
	}
	c.senders = make(map[NodeID]*transport.Sender)
	c.mu.Unlock()
	var firstErr error
	for _, s := range senders {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
