package mesh

import "time"

// Like internal/transport, the mesh runs on real sockets in real time but
// sits inside the determinism lint scope: every wall-clock read funnels
// through this file so the analyzer sees two deliberate, annotated
// exceptions instead of stray time.Now calls scattered through the
// control plane.
//
// The clock is unix-nanosecond valued but monotone-advanced: anchored
// once at package init, then advanced by Go's monotonic clock, so an NTP
// step can never reorder gossip freshness or handoff timeouts.

var meshClockAnchor = time.Now() //lint:allow determinism single wall-clock anchor for the mesh control plane

var meshClockBaseNanos = meshClockAnchor.UnixNano()

// nowNanos returns monotone unix nanoseconds.
func nowNanos() int64 {
	return meshClockBaseNanos + time.Since(meshClockAnchor).Nanoseconds() //lint:allow determinism monotonic advance of the mesh clock
}

// readDeadline converts a timeout into an absolute time for SetReadDeadline.
func readDeadline(d time.Duration) time.Time {
	return time.Now().Add(d) //lint:allow determinism socket deadlines are inherently wall-clock
}
