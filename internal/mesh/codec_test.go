package mesh

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden datagrams")

// goldenGossip is the canonical control-plane fixture: a full view with
// every member state, both roles, and a populated health summary. Its
// encoding is pinned byte-for-byte under testdata/ — any layout change
// fails TestGossipGolden until the format is versioned and the file is
// regenerated with `go test ./internal/mesh -run Golden -update`.
func goldenGossip() *GossipMessage {
	return &GossipMessage{
		Origin: 1,
		Epoch:  7,
		Members: []Member{
			{ID: 1, Incarnation: 2, State: MemberAlive, Role: RoleData,
				ControlAddr: "127.0.0.1:9001", DataAddrs: []string{"127.0.0.1:9101", "127.0.0.1:9201"},
				Summary: HealthSummary{Version: 12, PathsUp: 1, PathsDegraded: 1, SLOState: 2, BurnRate: 14.5, Delivered: 100000, Lost: 17}},
			{ID: 2, Incarnation: 0, State: MemberSuspect, Role: RoleData,
				ControlAddr: "127.0.0.1:9002", DataAddrs: []string{"127.0.0.1:9102"}},
			{ID: 3, Incarnation: 1, State: MemberLeft, Role: RoleData,
				ControlAddr: "127.0.0.1:9003", DataAddrs: []string{"127.0.0.1:9103"}},
			{ID: 1000, State: MemberAlive, Role: RoleObserver, ControlAddr: "127.0.0.1:9999"},
		},
	}
}

func goldenHandoff() *HandoffRecord {
	return &HandoffRecord{
		Origin: 2, Target: 3, Epoch: 8, Seq: 1,
		Flows: []FlowRecord{
			{FlowID: 0xdeadbeefcafe0001, Next: 1042, Delivered: 1000, DupSuppressed: 42, DeadlineHits: 990, DeadlineMisses: 10},
			{FlowID: 5, Next: 1, Delivered: 1},
		},
	}
}

func goldenForward() *Forward {
	return &Forward{Origin: 2, Epoch: 8, FlowID: 5, Seq: 1,
		SendNanos: 1700000000123456789, Payload: []byte("late arrival")}
}

func checkGolden(t *testing.T, name string, enc []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatalf("%s: write golden: %v", name, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: read golden (run with -update to create): %v", name, err)
	}
	if !bytes.Equal(enc, want) {
		t.Errorf("%s: encoding drifted from golden bytes:\n got %x\nwant %x", name, enc, want)
	}
}

func TestGossipGolden(t *testing.T) {
	enc, err := AppendGossip(nil, goldenGossip())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	checkGolden(t, "view.gsp", enc)
}

func TestHandoffGolden(t *testing.T) {
	enc, err := AppendHandoff(nil, goldenHandoff())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	checkGolden(t, "drain.hnd", enc)
	checkGolden(t, "drain.hak", AppendHandoffAck(nil, &HandoffAck{Origin: 3, Seq: 1}))
	fwd, err := AppendForward(nil, goldenForward())
	if err != nil {
		t.Fatalf("encode forward: %v", err)
	}
	checkGolden(t, "relay.fwd", fwd)
}

func TestGossipRoundTrip(t *testing.T) {
	msg := goldenGossip()
	enc, err := AppendGossip(nil, msg)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeGossip(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(msg, dec) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", dec, msg)
	}
	re, err := AppendGossip(nil, dec)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(re, enc) {
		t.Fatal("re-encode not byte-identical")
	}
}

func TestHandoffRoundTrip(t *testing.T) {
	rec := goldenHandoff()
	enc, err := AppendHandoff(nil, rec)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeHandoff(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(rec, dec) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", dec, rec)
	}

	ack := HandoffAck{Origin: 3, Seq: 9}
	dack, err := DecodeHandoffAck(AppendHandoffAck(nil, &ack))
	if err != nil || dack != ack {
		t.Fatalf("ack round trip: %+v, %v", dack, err)
	}

	fwd := goldenForward()
	fenc, err := AppendForward(nil, fwd)
	if err != nil {
		t.Fatalf("encode forward: %v", err)
	}
	dfwd, err := DecodeForward(fenc)
	if err != nil {
		t.Fatalf("decode forward: %v", err)
	}
	if dfwd.Origin != fwd.Origin || dfwd.Epoch != fwd.Epoch || dfwd.FlowID != fwd.FlowID ||
		dfwd.Seq != fwd.Seq || dfwd.SendNanos != fwd.SendNanos || !bytes.Equal(dfwd.Payload, fwd.Payload) {
		t.Fatalf("forward round trip mismatch: %+v", dfwd)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	e := Envelope{Epoch: 7, Seq: 123456, PrevOwner: 2}
	payload := []byte("application bytes")
	buf := AppendEnvelope(nil, &e, payload)
	if len(buf) != EnvelopeLen+len(payload) {
		t.Fatalf("encoded %d bytes, want %d", len(buf), EnvelopeLen+len(payload))
	}
	de, p, err := DecodeEnvelope(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if de != e || !bytes.Equal(p, payload) {
		t.Fatalf("round trip mismatch: %+v / %q", de, p)
	}
	// Pre-sized reuse must not allocate.
	scratch := make([]byte, 0, EnvelopeLen+len(payload))
	allocs := testing.AllocsPerRun(100, func() {
		scratch = AppendEnvelope(scratch[:0], &e, payload)
	})
	if allocs != 0 {
		t.Fatalf("AppendEnvelope with pre-sized buffer allocates %.1f/op, want 0", allocs)
	}
	if _, _, err := DecodeEnvelope(buf[:EnvelopeLen-1]); err == nil {
		t.Fatal("short envelope decoded")
	}
	buf[0] = 99
	if _, _, err := DecodeEnvelope(buf); err == nil {
		t.Fatal("mis-versioned envelope decoded")
	}
}

func TestDecodeRejections(t *testing.T) {
	gossip, err := AppendGossip(nil, goldenGossip())
	if err != nil {
		t.Fatal(err)
	}
	handoff, err := AppendHandoff(nil, goldenHandoff())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		b    []byte
		dec  func([]byte) error
	}{
		{"gossip/empty", nil, func(b []byte) error { _, err := DecodeGossip(b); return err }},
		{"gossip/truncated", gossip[:len(gossip)-1], func(b []byte) error { _, err := DecodeGossip(b); return err }},
		{"gossip/trailing", append(append([]byte(nil), gossip...), 0), func(b []byte) error { _, err := DecodeGossip(b); return err }},
		{"gossip/badmagic", append([]byte("XXXXXXXX"), gossip[8:]...), func(b []byte) error { _, err := DecodeGossip(b); return err }},
		{"handoff/truncated", handoff[:len(handoff)-1], func(b []byte) error { _, err := DecodeHandoff(b); return err }},
		{"handoff/trailing", append(append([]byte(nil), handoff...), 0), func(b []byte) error { _, err := DecodeHandoff(b); return err }},
		{"ack/short", []byte("MPDPHAK1"), func(b []byte) error { _, err := DecodeHandoffAck(b); return err }},
		{"forward/short", []byte("MPDPFWD1"), func(b []byte) error { _, err := DecodeForward(b); return err }},
	}
	for _, c := range cases {
		if err := c.dec(c.b); err == nil {
			t.Errorf("%s: corrupt datagram decoded without error", c.name)
		}
	}
}
