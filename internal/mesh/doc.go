// Package mesh runs N mpdp gateways as one data plane: a horizontal
// scale-out layer above internal/transport where flow-state ownership,
// path health, and SLO accounting become mesh-wide concerns.
//
// Four pieces compose it:
//
//   - Steering (steering.go): rendezvous (HRW) hashing of FlowID → owner
//     node, so each flow's dedup/reorder state lives on exactly one
//     gateway. A versioned membership epoch is stamped into every data
//     envelope; a node that receives a frame steered by a stale view
//     detects it (the epoch is behind its own and it is not the owner)
//     and forwards it to the true owner instead of double-delivering.
//
//   - Control plane (gossipcodec.go, membership.go, node.go): a small
//     anti-entropy gossip layer over UDP reusing the MPDP1 framing
//     discipline — a versioned little-endian codec (MPDPGSP1), a fuzzed
//     decoder that never panics, golden testdata pinning the byte
//     layout. Gossip carries membership (join/leave/suspect), per-path
//     health summaries derived from each node's core.HealthTracker
//     signals, and per-node SLO burn so burn-rate alerts aggregate
//     per-mesh rather than per-node.
//
//   - Drain/handoff (flowtable.go, handoffcodec.go): on graceful
//     shutdown an owner serializes its live flow state — the reorder
//     cursor that doubles as the mesh dedup window, plus the
//     deadline-budget residue (hit/miss counters) — into versioned
//     MPDPHND1 handoff records, transfers them to the new HRW owners,
//     and retries until acked. The endpoint-independent invariant
//     checker (invariant.Stream) verifies at-most-once and in-order
//     delivery across the ownership change.
//
//   - Harness (harness.go): RunMesh, the hermetic in-process N-node
//     loopback harness behind `mpdp-gateway -mesh` and experiment E25 —
//     drain one of N nodes mid-run under burst impairment and assert
//     zero invariant violations, completion of the drained node's flows
//     on their new owner, and bounded p99 inflation, with mesh metrics
//     exported through internal/live and tail episodes visible to
//     internal/sentinel.
//
// Ordering across a handoff relies on one structural fact: the mesh
// sequence number is assigned by the client, per flow, monotonically —
// and every seq is steered to exactly one node. The owner's per-flow
// state is therefore just a cursor (next expected seq): anything below
// it is a duplicate, anything at or above it delivers in arrival order
// (the transport below already releases in order per sender). Moving a
// flow means moving its cursor — which is what the handoff record does.
package mesh
