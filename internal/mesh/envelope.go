package mesh

import (
	"encoding/binary"
	"errors"
)

// The mesh envelope is the in-band prefix a client puts ahead of every
// application payload inside an MPDP1 frame. It carries the three fields
// the ownership layer needs that the transport header cannot:
//
//   - the membership epoch the client steered under, so a node can tell
//     a stale steering decision from its own stale view;
//   - the mesh sequence number, assigned per flow by the client and
//     continuous across owner changes (the transport's per-sender seq
//     restarts at every node, so it cannot order a flow across a
//     handoff);
//   - the previous owner, stamped after a re-steer so the new owner
//     knows flow state is inbound and buffers instead of guessing.
//
//	offset size field
//	0      1    version (0x01)
//	1      8    membership epoch
//	9      8    mesh seq (per-flow, client-assigned)
//	17     4    previous owner (NodeNone when not re-steered)
//	21     …    application payload

// EnvelopeVersion is the envelope format version byte.
const EnvelopeVersion = 1

// EnvelopeLen is the fixed envelope prefix size.
const EnvelopeLen = 21

// ErrEnvelopeCorrupt rejects a short or mis-versioned envelope.
var ErrEnvelopeCorrupt = errors.New("mesh: corrupt data envelope")

// Envelope is the decoded prefix.
type Envelope struct {
	Epoch     uint64
	Seq       uint64
	PrevOwner NodeID
}

// AppendEnvelope appends the envelope then the payload to buf. With a
// pre-sized buf it performs zero allocations (the client reuses one
// scratch buffer per send).
func AppendEnvelope(buf []byte, e *Envelope, payload []byte) []byte {
	off := len(buf)
	n := EnvelopeLen + len(payload)
	if cap(buf)-off < n {
		grown := make([]byte, off, off+n)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:off+n]
	b := buf[off:]
	b[0] = EnvelopeVersion
	binary.LittleEndian.PutUint64(b[1:9], e.Epoch)
	binary.LittleEndian.PutUint64(b[9:17], e.Seq)
	binary.LittleEndian.PutUint32(b[17:21], uint32(e.PrevOwner))
	copy(b[EnvelopeLen:], payload)
	return buf
}

// DecodeEnvelope splits a frame payload into envelope and application
// payload (aliasing b).
func DecodeEnvelope(b []byte) (Envelope, []byte, error) {
	var e Envelope
	if len(b) < EnvelopeLen || b[0] != EnvelopeVersion {
		return e, nil, ErrEnvelopeCorrupt
	}
	e.Epoch = binary.LittleEndian.Uint64(b[1:9])
	e.Seq = binary.LittleEndian.Uint64(b[9:17])
	e.PrevOwner = NodeID(binary.LittleEndian.Uint32(b[17:21]))
	return e, b[EnvelopeLen:], nil
}
