package mesh

import "sort"

// flowTable is the owner-side mesh delivery state: one cursor per flow.
//
// Because the client assigns mesh seqs per flow monotonically and steers
// each seq to exactly one node, and the transport below releases each
// sender's stream in order, the per-flow state a node needs is just
// "next expected seq": anything below it is a duplicate (the degenerate
// dedup window — its floor IS the cursor), anything at or above it
// delivers immediately and advances the cursor (skipped seqs are
// conclusively lost on the wire, counted as gaps).
//
// Flows whose state is in flight from a draining owner sit in pending:
// frames buffer (bounded; overflow drops, a legal wire loss) until the
// handoff record installs the cursor, at which point the buffer drains
// through it in seq order. If the record never arrives, promotion at
// HandoffTimeout is safe: buffered seqs were sent to this node only, a
// draining owner parks (never surfaces) everything behind its announce,
// and the late record's cursor can never exceed the first buffered seq
// (the old owner stopped seeing the flow when the client re-steered),
// so install-keeps-max cannot undo a delivery.
//
// The table is not goroutine-safe; the Node guards it.
type flowTable struct {
	entries map[uint64]*flowEntry
	pending map[uint64]*pendingFlow
}

// flowEntry is one owned flow's live state; the exported FlowRecord is
// its serialized form.
type flowEntry struct {
	next           uint64
	delivered      uint64
	dupSuppressed  uint64
	deadlineHits   uint64
	deadlineMisses uint64
	migrated       bool // installed via handoff (E25 asserts post-handoff delivery)

	// parked holds arrivals a draining owner received after announcing
	// leave: they must not surface here (the flow's successor may already
	// be delivering ahead) and instead ride the export as forwards.
	parked []pendingFrame
}

// pendingFrame is one buffered delivery awaiting a handoff record.
type pendingFrame struct {
	seq       uint64
	sendNanos int64
	payload   []byte // copied; the transport reuses its read buffers
}

// pendingFlow buffers frames for a flow whose handoff record is inbound.
type pendingFlow struct {
	from       NodeID
	firstNanos int64 // when buffering began (promotion timeout base)
	frames     []pendingFrame
}

// maxPendingFrames bounds one flow's pending (and parked) buffer;
// overflow drops the frame (counted) rather than growing without bound
// — a bounded, legal wire loss that can never reorder the stream.
const maxPendingFrames = 1024

func newFlowTable() *flowTable {
	return &flowTable{
		entries: make(map[uint64]*flowEntry),
		pending: make(map[uint64]*pendingFlow),
	}
}

// admit runs one delivery through a flow's cursor. It returns
// (deliver, gap): whether the frame should surface, and how many seqs
// the cursor skipped over (wire losses resolved by this delivery).
func (e *flowEntry) admit(seq uint64) (deliver bool, gap uint64) {
	if seq < e.next {
		e.dupSuppressed++
		return false, 0
	}
	gap = seq - e.next
	e.next = seq + 1
	e.delivered++
	return true, gap
}

// record serializes one entry.
func (e *flowEntry) record(flow uint64) FlowRecord {
	return FlowRecord{
		FlowID:         flow,
		Next:           e.next,
		Delivered:      e.delivered,
		DupSuppressed:  e.dupSuppressed,
		DeadlineHits:   e.deadlineHits,
		DeadlineMisses: e.deadlineMisses,
	}
}

// install merges a handoff record into the table: cursor keeps the
// maximum (a forwarded frame may have advanced it first), counters
// accumulate. Returns the entry.
func (t *flowTable) install(rec *FlowRecord) *flowEntry {
	e, ok := t.entries[rec.FlowID]
	if !ok {
		e = &flowEntry{next: rec.Next}
		t.entries[rec.FlowID] = e
	} else if rec.Next > e.next {
		e.next = rec.Next
	}
	e.delivered += rec.Delivered
	e.dupSuppressed += rec.DupSuppressed
	e.deadlineHits += rec.DeadlineHits
	e.deadlineMisses += rec.DeadlineMisses
	e.migrated = true
	return e
}

// export serializes and removes every entry, sorted by flow ID, assigned
// to its new owner by pick. Deterministic: same table, same records.
func (t *flowTable) export(pick func(flow uint64) NodeID) map[NodeID][]FlowRecord {
	flows := make([]uint64, 0, len(t.entries))
	for f := range t.entries {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	out := make(map[NodeID][]FlowRecord)
	for _, f := range flows {
		owner := pick(f)
		if owner == NodeNone {
			continue // last node standing: state has nowhere to go
		}
		out[owner] = append(out[owner], t.entries[f].record(f))
		delete(t.entries, f)
	}
	return out
}

// buffer holds one frame for a flow pending handoff, copying the
// payload. It returns false when the buffer overflowed (caller promotes).
func (t *flowTable) buffer(flow uint64, from NodeID, seq uint64, sendNanos int64, payload []byte, now int64) bool {
	p, ok := t.pending[flow]
	if !ok {
		p = &pendingFlow{from: from, firstNanos: now}
		t.pending[flow] = p
	}
	if len(p.frames) >= maxPendingFrames {
		return false
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	p.frames = append(p.frames, pendingFrame{seq: seq, sendNanos: sendNanos, payload: cp})
	return true
}

// takePending removes and returns a flow's buffer, frames sorted by seq.
func (t *flowTable) takePending(flow uint64) []pendingFrame {
	p, ok := t.pending[flow]
	if !ok {
		return nil
	}
	delete(t.pending, flow)
	sort.Slice(p.frames, func(i, j int) bool { return p.frames[i].seq < p.frames[j].seq })
	return p.frames
}

// expiredPending returns the flows whose buffers have waited past
// timeoutNanos, sorted for deterministic promotion order.
func (t *flowTable) expiredPending(now, timeoutNanos int64) []uint64 {
	var flows []uint64
	for f, p := range t.pending {
		if now-p.firstNanos > timeoutNanos {
			flows = append(flows, f)
		}
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	return flows
}
