package mesh

import (
	"reflect"
	"testing"
)

func TestFlowEntryAdmit(t *testing.T) {
	e := &flowEntry{next: 0}
	if ok, gap := e.admit(0); !ok || gap != 0 {
		t.Fatalf("admit(0) = %v,%d", ok, gap)
	}
	if ok, _ := e.admit(0); ok {
		t.Fatal("replayed seq delivered twice")
	}
	if ok, gap := e.admit(3); !ok || gap != 2 {
		t.Fatalf("admit(3) = %v,%d, want deliver with gap 2 (seqs 1,2 lost)", ok, gap)
	}
	if ok, _ := e.admit(2); ok {
		t.Fatal("seq below the cursor delivered (would be out of order)")
	}
	if e.delivered != 2 || e.dupSuppressed != 2 || e.next != 4 {
		t.Fatalf("entry %+v, want delivered=2 dup=2 next=4", e)
	}
}

func TestFlowTableInstallKeepsMax(t *testing.T) {
	tab := newFlowTable()
	// A forwarded frame opened the entry and advanced the cursor to 11.
	e := &flowEntry{next: 11, delivered: 1}
	tab.entries[7] = e
	// The handoff record serialized an older cursor: install keeps the max
	// and accumulates counters.
	got := tab.install(&FlowRecord{FlowID: 7, Next: 9, Delivered: 9, DupSuppressed: 2})
	if got != e {
		t.Fatal("install replaced the live entry")
	}
	if e.next != 11 || e.delivered != 10 || e.dupSuppressed != 2 || !e.migrated {
		t.Fatalf("entry %+v, want next=11 (max kept) delivered=10 migrated", e)
	}
	// A record ahead of the local cursor advances it.
	tab.install(&FlowRecord{FlowID: 7, Next: 20})
	if e.next != 20 {
		t.Fatalf("next %d, want advanced to 20", e.next)
	}
}

func TestFlowTableExport(t *testing.T) {
	tab := newFlowTable()
	tab.entries[3] = &flowEntry{next: 30, delivered: 30}
	tab.entries[1] = &flowEntry{next: 10, delivered: 10}
	tab.entries[2] = &flowEntry{next: 20, delivered: 20}
	pick := func(flow uint64) NodeID {
		if flow == 2 {
			return NodeNone // nowhere to go: stays out of the export
		}
		return NodeID(flow % 2) // 1→1, 3→1
	}
	out := tab.export(pick)
	want := map[NodeID][]FlowRecord{
		1: {
			{FlowID: 1, Next: 10, Delivered: 10},
			{FlowID: 3, Next: 30, Delivered: 30},
		},
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("export = %+v, want %+v (sorted by flow, NodeNone skipped)", out, want)
	}
	if _, ok := tab.entries[1]; ok {
		t.Fatal("exported entry still in the table")
	}
	if _, ok := tab.entries[2]; !ok {
		t.Fatal("unexportable entry was dropped")
	}
}

func TestFlowTablePendingBufferAndPromotion(t *testing.T) {
	tab := newFlowTable()
	payload := []byte("p")
	if !tab.buffer(9, 2, 102, 1000, payload, 500) {
		t.Fatal("first buffer refused")
	}
	tab.buffer(9, 2, 100, 900, payload, 600)
	tab.buffer(9, 2, 101, 950, payload, 700)
	// The buffered payload must be a copy: mutating the source is safe.
	payload[0] = 'x'
	frames := tab.takePending(9)
	if len(frames) != 3 {
		t.Fatalf("%d frames, want 3", len(frames))
	}
	for i, want := range []uint64{100, 101, 102} {
		if frames[i].seq != want {
			t.Fatalf("frame %d seq %d, want sorted %d", i, frames[i].seq, want)
		}
	}
	if frames[0].payload[0] != 'p' {
		t.Fatal("buffered payload aliases the caller's slice")
	}
	if tab.takePending(9) != nil {
		t.Fatal("takePending is not idempotent-empty")
	}
}

func TestFlowTablePendingOverflow(t *testing.T) {
	tab := newFlowTable()
	for i := 0; i < maxPendingFrames; i++ {
		if !tab.buffer(9, 2, uint64(i), 0, nil, 0) {
			t.Fatalf("buffer refused at %d, below the bound", i)
		}
	}
	if tab.buffer(9, 2, uint64(maxPendingFrames), 0, nil, 0) {
		t.Fatal("buffer accepted past the bound")
	}
}

func TestFlowTableExpiredPending(t *testing.T) {
	tab := newFlowTable()
	tab.buffer(5, 2, 0, 0, nil, 100)
	tab.buffer(3, 2, 0, 0, nil, 200)
	tab.buffer(8, 2, 0, 0, nil, 900)
	got := tab.expiredPending(1000, 500)
	if !reflect.DeepEqual(got, []uint64{3, 5}) {
		t.Fatalf("expired = %v, want sorted [3 5]", got)
	}
}
