package mesh

import (
	"bytes"
	"testing"
)

// FuzzGossipDecode drives arbitrary bytes through the gossip decoder: it
// must never panic, and anything it accepts must re-encode byte-identically
// (the decoder admits exactly the canonical encoding, nothing else).
func FuzzGossipDecode(f *testing.F) {
	seed, err := AppendGossip(nil, goldenGossip())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte("MPDPGSP1"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, b []byte) {
		msg, err := DecodeGossip(b)
		if err != nil {
			return
		}
		re, err := AppendGossip(nil, msg)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("accepted non-canonical encoding:\n  in %x\n out %x", b, re)
		}
	})
}

// FuzzHandoffDecode covers all three handoff-plane decoders: no panics,
// and accepted records/relays re-encode byte-identically.
func FuzzHandoffDecode(f *testing.F) {
	rec, err := AppendHandoff(nil, goldenHandoff())
	if err != nil {
		f.Fatal(err)
	}
	fwd, err := AppendForward(nil, goldenForward())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rec)
	f.Add(AppendHandoffAck(nil, &HandoffAck{Origin: 3, Seq: 1}))
	f.Add(fwd)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, b []byte) {
		if rec, err := DecodeHandoff(b); err == nil {
			re, err := AppendHandoff(nil, rec)
			if err != nil {
				t.Fatalf("decoded record failed to re-encode: %v", err)
			}
			if !bytes.Equal(re, b) {
				t.Fatalf("handoff: accepted non-canonical encoding")
			}
		}
		if ack, err := DecodeHandoffAck(b); err == nil {
			if !bytes.Equal(AppendHandoffAck(nil, &ack), b) {
				t.Fatalf("ack: accepted non-canonical encoding")
			}
		}
		if fw, err := DecodeForward(b); err == nil {
			re, err := AppendForward(nil, &fw)
			if err != nil {
				t.Fatalf("decoded forward failed to re-encode: %v", err)
			}
			if !bytes.Equal(re, b) {
				t.Fatalf("forward: accepted non-canonical encoding")
			}
		}
	})
}

// FuzzEnvelopeDecode: the data-path prefix decoder must never panic and
// must round-trip everything it accepts.
func FuzzEnvelopeDecode(f *testing.F) {
	f.Add(AppendEnvelope(nil, &Envelope{Epoch: 7, Seq: 9, PrevOwner: 2}, []byte("x")))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{1}, EnvelopeLen))
	f.Fuzz(func(t *testing.T, b []byte) {
		e, payload, err := DecodeEnvelope(b)
		if err != nil {
			return
		}
		if !bytes.Equal(AppendEnvelope(nil, &e, payload), b) {
			t.Fatalf("envelope: accepted non-canonical encoding")
		}
	})
}
