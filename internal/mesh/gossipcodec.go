package mesh

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// MPDPGSP1 is the gossip wire format: one anti-entropy datagram carrying
// the sender's full membership table. Little endian throughout, strict
// validation on decode, and the same contract as the MPDP1/MPDPWIR1
// codecs: the decoder never panics on arbitrary input (fuzz-enforced)
// and anything it accepts re-encodes byte-identically.
//
//	offset size field
//	0      8    magic "MPDPGSP1"
//	8      4    origin node ID
//	12     8    membership epoch (sender's view)
//	20     2    member count
//	22     …    members
//
// Each member:
//
//	4    node ID
//	8    incarnation
//	1    state (0 alive, 1 suspect, 2 left)
//	1    role (0 data, 1 observer)
//	1+n  control addr (length-prefixed, ≤ 255 bytes)
//	1    data addr count (≤ 16), then length-prefixed addrs
//	8    health summary version
//	1    paths up
//	1    paths degraded
//	1    paths quarantined
//	1    paths probing
//	1    SLO state
//	8    SLO burn rate (float64 bits)
//	8    delivered
//	8    lost

// MagicGossip identifies an MPDPGSP1 datagram.
var MagicGossip = [8]byte{'M', 'P', 'D', 'P', 'G', 'S', 'P', '1'}

// Gossip codec limits: a datagram must fit one UDP packet and a hostile
// count field must not ask for gigabytes.
const (
	MaxGossipMembers = 1024
	MaxAddrLen       = 255
	MaxDataAddrs     = 16
)

// Gossip codec errors.
var (
	ErrGossipBadMagic = errors.New("mesh: bad magic (not an MPDPGSP1 datagram)")
	ErrGossipCorrupt  = errors.New("mesh: corrupt gossip datagram")
	ErrGossipTooLarge = fmt.Errorf("mesh: gossip exceeds %d members", MaxGossipMembers)
)

// GossipMessage is one decoded anti-entropy datagram.
type GossipMessage struct {
	Origin  NodeID
	Epoch   uint64
	Members []Member
}

const gossipFixedHeader = 8 + 4 + 8 + 2

// AppendGossip appends the encoded datagram to buf and returns the
// extended slice. Members must already be in a deterministic order (the
// View returns them sorted); encoding preserves it.
func AppendGossip(buf []byte, msg *GossipMessage) ([]byte, error) {
	if len(msg.Members) > MaxGossipMembers {
		return buf, ErrGossipTooLarge
	}
	buf = append(buf, MagicGossip[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(msg.Origin))
	buf = binary.LittleEndian.AppendUint64(buf, msg.Epoch)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(msg.Members)))
	for i := range msg.Members {
		m := &msg.Members[i]
		if m.State > MemberLeft || m.Role > RoleObserver {
			return buf, fmt.Errorf("mesh: member %d has invalid state/role", m.ID)
		}
		if len(m.ControlAddr) > MaxAddrLen || len(m.DataAddrs) > MaxDataAddrs {
			return buf, fmt.Errorf("mesh: member %d addr fields exceed codec limits", m.ID)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m.ID))
		buf = binary.LittleEndian.AppendUint64(buf, m.Incarnation)
		buf = append(buf, byte(m.State), byte(m.Role))
		buf = append(buf, byte(len(m.ControlAddr)))
		buf = append(buf, m.ControlAddr...)
		buf = append(buf, byte(len(m.DataAddrs)))
		for _, a := range m.DataAddrs {
			if len(a) > MaxAddrLen {
				return buf, fmt.Errorf("mesh: member %d data addr exceeds %d bytes", m.ID, MaxAddrLen)
			}
			buf = append(buf, byte(len(a)))
			buf = append(buf, a...)
		}
		s := &m.Summary
		buf = binary.LittleEndian.AppendUint64(buf, s.Version)
		buf = append(buf, s.PathsUp, s.PathsDegraded, s.PathsQuarantined, s.PathsProbing, s.SLOState)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.BurnRate))
		buf = binary.LittleEndian.AppendUint64(buf, s.Delivered)
		buf = binary.LittleEndian.AppendUint64(buf, s.Lost)
	}
	return buf, nil
}

// DecodeGossip parses one MPDPGSP1 datagram. Strings are copied out of b.
// Every failure mode returns a typed error; the decoder never panics and
// rejects trailing bytes (a datagram carries exactly one message).
func DecodeGossip(b []byte) (*GossipMessage, error) {
	if len(b) < gossipFixedHeader {
		return nil, ErrGossipCorrupt
	}
	if [8]byte(b[0:8]) != MagicGossip {
		return nil, ErrGossipBadMagic
	}
	msg := &GossipMessage{
		Origin: NodeID(binary.LittleEndian.Uint32(b[8:12])),
		Epoch:  binary.LittleEndian.Uint64(b[12:20]),
	}
	n := int(binary.LittleEndian.Uint16(b[20:22]))
	if n > MaxGossipMembers {
		return nil, ErrGossipTooLarge
	}
	off := gossipFixedHeader
	msg.Members = make([]Member, 0, n)
	for i := 0; i < n; i++ {
		m, next, err := decodeMember(b, off)
		if err != nil {
			return nil, err
		}
		msg.Members = append(msg.Members, m)
		off = next
	}
	if off != len(b) {
		return nil, ErrGossipCorrupt
	}
	return msg, nil
}

func decodeMember(b []byte, off int) (Member, int, error) {
	var m Member
	if len(b)-off < 4+8+1+1+1 {
		return m, 0, ErrGossipCorrupt
	}
	m.ID = NodeID(binary.LittleEndian.Uint32(b[off : off+4]))
	m.Incarnation = binary.LittleEndian.Uint64(b[off+4 : off+12])
	m.State = MemberState(b[off+12])
	m.Role = Role(b[off+13])
	if m.State > MemberLeft || m.Role > RoleObserver {
		return m, 0, ErrGossipCorrupt
	}
	off += 14
	var err error
	if m.ControlAddr, off, err = decodeAddr(b, off); err != nil {
		return m, 0, err
	}
	if off >= len(b) {
		return m, 0, ErrGossipCorrupt
	}
	nAddrs := int(b[off])
	off++
	if nAddrs > MaxDataAddrs {
		return m, 0, ErrGossipCorrupt
	}
	if nAddrs > 0 {
		m.DataAddrs = make([]string, nAddrs)
		for i := 0; i < nAddrs; i++ {
			if m.DataAddrs[i], off, err = decodeAddr(b, off); err != nil {
				return m, 0, err
			}
		}
	}
	if len(b)-off < 8+5+8+8+8 {
		return m, 0, ErrGossipCorrupt
	}
	s := &m.Summary
	s.Version = binary.LittleEndian.Uint64(b[off : off+8])
	s.PathsUp = b[off+8]
	s.PathsDegraded = b[off+9]
	s.PathsQuarantined = b[off+10]
	s.PathsProbing = b[off+11]
	s.SLOState = b[off+12]
	s.BurnRate = math.Float64frombits(binary.LittleEndian.Uint64(b[off+13 : off+21]))
	// NaN burn rates cannot survive a round trip bit-exactly through an
	// equality check and no tracker emits them; reject rather than carry.
	if s.BurnRate != s.BurnRate {
		return m, 0, ErrGossipCorrupt
	}
	s.Delivered = binary.LittleEndian.Uint64(b[off+21 : off+29])
	s.Lost = binary.LittleEndian.Uint64(b[off+29 : off+37])
	return m, off + 37, nil
}

func decodeAddr(b []byte, off int) (string, int, error) {
	if off >= len(b) {
		return "", 0, ErrGossipCorrupt
	}
	n := int(b[off])
	off++
	if len(b)-off < n {
		return "", 0, ErrGossipCorrupt
	}
	return string(b[off : off+n]), off + n, nil
}
