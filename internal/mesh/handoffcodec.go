package mesh

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The drain/handoff control messages share the gossip socket and the
// MPDP1 codec discipline; each kind has its own 8-byte magic so a
// datagram is self-describing.
//
// MPDPHND1 — handoff record (owner → new owner on graceful drain):
//
//	offset size field
//	0      8    magic "MPDPHND1"
//	8      4    origin node ID (the draining owner)
//	12     4    target node ID (the inheriting owner)
//	16     8    membership epoch at serialization
//	24     8    record seq (per-origin, for ack matching)
//	32     2    flow count
//	34     …    flows, 48 bytes each:
//	            8 flow ID · 8 next (reorder cursor = dedup window floor) ·
//	            8 delivered · 8 dup-suppressed ·
//	            8 deadline hits · 8 deadline misses (budget residue)
//
// MPDPHAK1 — handoff ack (new owner → draining owner):
//
//	0      8    magic "MPDPHAK1"
//	8      4    origin node ID (the acker)
//	12     8    acked record seq
//
// MPDPFWD1 — forwarded data frame (stale-steered or post-handoff
// arrival relayed to the true owner, original send time preserved so
// e2e latency attribution survives the detour):
//
//	0      8    magic "MPDPFWD1"
//	8      4    origin node ID (the forwarder)
//	12     8    membership epoch at forwarding
//	20     8    flow ID
//	28     8    mesh seq
//	36     8    client send time (unix nanos)
//	44     4    payload length
//	48     …    payload

// Magics for the three handoff-plane datagram kinds.
var (
	MagicHandoff    = [8]byte{'M', 'P', 'D', 'P', 'H', 'N', 'D', '1'}
	MagicHandoffAck = [8]byte{'M', 'P', 'D', 'P', 'H', 'A', 'K', '1'}
	MagicForward    = [8]byte{'M', 'P', 'D', 'P', 'F', 'W', 'D', '1'}
)

// MaxHandoffFlows bounds one record so it fits a UDP datagram with
// comfortable headroom (34 + 256*48 ≈ 12.3 KB).
const MaxHandoffFlows = 256

// MaxForwardPayload matches the transport's frame payload bound.
const MaxForwardPayload = 16 << 10

// Handoff codec errors.
var (
	ErrHandoffBadMagic = errors.New("mesh: bad magic (not a handoff-plane datagram)")
	ErrHandoffCorrupt  = errors.New("mesh: corrupt handoff datagram")
	ErrHandoffTooLarge = fmt.Errorf("mesh: handoff exceeds %d flows", MaxHandoffFlows)
)

// FlowRecord is one flow's serialized state inside a handoff record: the
// reorder cursor (which doubles as the dedup window floor — every seq
// below Next is a duplicate by construction) plus the delivery and
// deadline-budget counters that keep per-flow accounting continuous
// across the ownership change.
type FlowRecord struct {
	FlowID         uint64
	Next           uint64
	Delivered      uint64
	DupSuppressed  uint64
	DeadlineHits   uint64
	DeadlineMisses uint64
}

// HandoffRecord is one decoded MPDPHND1 datagram.
type HandoffRecord struct {
	Origin NodeID
	Target NodeID
	Epoch  uint64
	Seq    uint64
	Flows  []FlowRecord
}

const (
	handoffFixedHeader = 8 + 4 + 4 + 8 + 8 + 2
	flowRecordLen      = 48
	handoffAckLen      = 8 + 4 + 8
	forwardFixedHeader = 8 + 4 + 8 + 8 + 8 + 8 + 4
)

// AppendHandoff appends the encoded record to buf.
func AppendHandoff(buf []byte, rec *HandoffRecord) ([]byte, error) {
	if len(rec.Flows) > MaxHandoffFlows {
		return buf, ErrHandoffTooLarge
	}
	buf = append(buf, MagicHandoff[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Origin))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Target))
	buf = binary.LittleEndian.AppendUint64(buf, rec.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, rec.Seq)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rec.Flows)))
	for i := range rec.Flows {
		f := &rec.Flows[i]
		buf = binary.LittleEndian.AppendUint64(buf, f.FlowID)
		buf = binary.LittleEndian.AppendUint64(buf, f.Next)
		buf = binary.LittleEndian.AppendUint64(buf, f.Delivered)
		buf = binary.LittleEndian.AppendUint64(buf, f.DupSuppressed)
		buf = binary.LittleEndian.AppendUint64(buf, f.DeadlineHits)
		buf = binary.LittleEndian.AppendUint64(buf, f.DeadlineMisses)
	}
	return buf, nil
}

// DecodeHandoff parses one MPDPHND1 datagram (strict: exact length, no
// trailing bytes, never panics).
func DecodeHandoff(b []byte) (*HandoffRecord, error) {
	if len(b) < handoffFixedHeader {
		return nil, ErrHandoffCorrupt
	}
	if [8]byte(b[0:8]) != MagicHandoff {
		return nil, ErrHandoffBadMagic
	}
	rec := &HandoffRecord{
		Origin: NodeID(binary.LittleEndian.Uint32(b[8:12])),
		Target: NodeID(binary.LittleEndian.Uint32(b[12:16])),
		Epoch:  binary.LittleEndian.Uint64(b[16:24]),
		Seq:    binary.LittleEndian.Uint64(b[24:32]),
	}
	n := int(binary.LittleEndian.Uint16(b[32:34]))
	if n > MaxHandoffFlows {
		return nil, ErrHandoffTooLarge
	}
	if len(b) != handoffFixedHeader+n*flowRecordLen {
		return nil, ErrHandoffCorrupt
	}
	rec.Flows = make([]FlowRecord, n)
	off := handoffFixedHeader
	for i := 0; i < n; i++ {
		f := &rec.Flows[i]
		f.FlowID = binary.LittleEndian.Uint64(b[off : off+8])
		f.Next = binary.LittleEndian.Uint64(b[off+8 : off+16])
		f.Delivered = binary.LittleEndian.Uint64(b[off+16 : off+24])
		f.DupSuppressed = binary.LittleEndian.Uint64(b[off+24 : off+32])
		f.DeadlineHits = binary.LittleEndian.Uint64(b[off+32 : off+40])
		f.DeadlineMisses = binary.LittleEndian.Uint64(b[off+40 : off+48])
		off += flowRecordLen
	}
	return rec, nil
}

// HandoffAck acknowledges receipt and installation of one record.
type HandoffAck struct {
	Origin NodeID
	Seq    uint64
}

// AppendHandoffAck appends the encoded ack to buf.
func AppendHandoffAck(buf []byte, ack *HandoffAck) []byte {
	buf = append(buf, MagicHandoffAck[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ack.Origin))
	buf = binary.LittleEndian.AppendUint64(buf, ack.Seq)
	return buf
}

// DecodeHandoffAck parses one MPDPHAK1 datagram.
func DecodeHandoffAck(b []byte) (HandoffAck, error) {
	var ack HandoffAck
	if len(b) != handoffAckLen {
		return ack, ErrHandoffCorrupt
	}
	if [8]byte(b[0:8]) != MagicHandoffAck {
		return ack, ErrHandoffBadMagic
	}
	ack.Origin = NodeID(binary.LittleEndian.Uint32(b[8:12]))
	ack.Seq = binary.LittleEndian.Uint64(b[12:20])
	return ack, nil
}

// Forward is one relayed data frame.
type Forward struct {
	Origin    NodeID
	Epoch     uint64
	FlowID    uint64
	Seq       uint64
	SendNanos int64
	Payload   []byte
}

// AppendForward appends the encoded relay to buf.
func AppendForward(buf []byte, f *Forward) ([]byte, error) {
	if len(f.Payload) > MaxForwardPayload {
		return buf, ErrHandoffCorrupt
	}
	buf = append(buf, MagicForward[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Origin))
	buf = binary.LittleEndian.AppendUint64(buf, f.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, f.FlowID)
	buf = binary.LittleEndian.AppendUint64(buf, f.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(f.SendNanos))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Payload)))
	buf = append(buf, f.Payload...)
	return buf, nil
}

// DecodeForward parses one MPDPFWD1 datagram. The payload aliases b.
func DecodeForward(b []byte) (Forward, error) {
	var f Forward
	if len(b) < forwardFixedHeader {
		return f, ErrHandoffCorrupt
	}
	if [8]byte(b[0:8]) != MagicForward {
		return f, ErrHandoffBadMagic
	}
	plen := binary.LittleEndian.Uint32(b[44:48])
	if plen > MaxForwardPayload {
		return f, ErrHandoffCorrupt
	}
	if len(b) != forwardFixedHeader+int(plen) {
		return f, ErrHandoffCorrupt
	}
	f.Origin = NodeID(binary.LittleEndian.Uint32(b[8:12]))
	f.Epoch = binary.LittleEndian.Uint64(b[12:20])
	f.FlowID = binary.LittleEndian.Uint64(b[20:28])
	f.Seq = binary.LittleEndian.Uint64(b[28:36])
	f.SendNanos = int64(binary.LittleEndian.Uint64(b[36:44]))
	f.Payload = b[forwardFixedHeader : forwardFixedHeader+int(plen)]
	return f, nil
}
