package mesh

import (
	"fmt"
	"sync"
	"time"

	"mpdp/internal/core"
	"mpdp/internal/invariant"
	"mpdp/internal/live"
	"mpdp/internal/sentinel"
	"mpdp/internal/transport"
)

// MeshConfig parameterizes a hermetic in-process mesh run: N gateway
// nodes plus one steering client, all over loopback UDP — the mesh
// sibling of transport.RunLoopback.
type MeshConfig struct {
	// Nodes is the gateway count (default 4).
	Nodes int
	// PathsPerNode is the data-path count per gateway (default 2).
	PathsPerNode int
	// Scheduler, HedgeK, Deadline, DeadlineMargin, DupBudgetBytesPerSec,
	// DupBudgetBurst tune the client's per-node transport senders
	// (defaults mirror RunLoopback).
	Scheduler            transport.SchedulerName
	HedgeK               int
	Deadline             time.Duration
	DeadlineMargin       float64
	DupBudgetBytesPerSec float64
	DupBudgetBurst       float64
	// Flows spreads traffic across this many flow IDs (default 32).
	Flows int
	// Payload is the application payload size in bytes (default 256).
	Payload int
	// Packets stops after this many sends (0 = until Duration elapses).
	Packets uint64
	// Duration bounds the send loop (default 3 s when Packets is 0).
	Duration time.Duration
	// Window bounds unresolved packets in flight (default 256), the same
	// self-supplied backpressure RunLoopback uses: resolved here means
	// delivered, duplicate-suppressed, or cursor-skipped at any node.
	Window uint64
	// Health tunes the client's sender-side path health machines;
	// NodeHealth the nodes' receive-driven ones.
	Health     core.HealthConfig
	NodeHealth core.HealthConfig
	// Impairer, when non-nil, injects faults into every sender's frames.
	Impairer transport.Impairer
	// ReorderTimeout is each node's receiver gap timeout (default 5 ms).
	ReorderTimeout time.Duration
	// GossipInterval paces the control plane (default 25 ms).
	GossipInterval time.Duration
	// HandoffTimeout / DrainSettle pass through to every node.
	HandoffTimeout time.Duration
	DrainSettle    time.Duration
	// DrainNode, when >= 0, gracefully drains the node at that index
	// (into the seeded order) mid-run; DrainAfter is the run fraction at
	// which the drain starts (default 0.5).
	DrainNode  int
	DrainAfter float64
	// SLO, when non-empty, attaches a burn tracker to every node.
	SLO string
	// Metrics, when non-nil, receives the mesh metric families.
	Metrics *live.Registry
	// Sentinel, when non-nil, attaches a tail-episode detector fed from
	// the mesh-aggregate latency window each SentinelEvery (default
	// 50 ms).
	Sentinel      *sentinel.Config
	SentinelEvery time.Duration
	// Stop, when non-nil, ends the send loop early when closed.
	Stop <-chan struct{}
}

func (c *MeshConfig) fillDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.PathsPerNode == 0 {
		c.PathsPerNode = 2
	}
	if c.Scheduler == "" {
		c.Scheduler = transport.SchedHedge
	}
	if c.Flows == 0 {
		c.Flows = 32
	}
	if c.Payload == 0 {
		c.Payload = 256
	}
	if c.Packets == 0 && c.Duration == 0 {
		c.Duration = 3 * time.Second
	}
	if c.Window == 0 {
		c.Window = 256
	}
	if c.ReorderTimeout == 0 {
		c.ReorderTimeout = 5 * time.Millisecond
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = 25 * time.Millisecond
	}
	if c.DrainAfter == 0 {
		c.DrainAfter = 0.5
	}
	if c.SentinelEvery == 0 {
		c.SentinelEvery = 50 * time.Millisecond
	}
	if c.Scheduler == transport.SchedDeadline && c.Deadline == 0 {
		c.Deadline = 2 * time.Millisecond
	}
}

// MeshReport is the run's outcome: mesh-wide counters, the drain's
// migration accounting, tail latency before and after the ownership
// change, and the stream-invariant verdict.
type MeshReport struct {
	Elapsed   time.Duration `json:"elapsed_ns"`
	Nodes     int           `json:"nodes"`
	Packets   uint64        `json:"packets"`    // application packets sent
	SendErrs  uint64        `json:"send_errs"`  // sends refused or failed at the socket
	Delivered uint64        `json:"delivered"`  // in-order mesh deliveries, all nodes
	Gaps      uint64        `json:"gaps"`       // cursor-resolved wire losses
	DupDrops  uint64        `json:"dup_drops"`  // duplicates absorbed by flow cursors
	EpochEnd  uint64        `json:"epoch_end"`  // highest epoch at run end
	Resteers  uint64        `json:"resteers"`   // client-side ownership moves (flows migrated)
	MovedSeqs uint64        `json:"moved_seqs"` // deliveries on migrated flows after handoff

	StaleSteers     uint64 `json:"stale_steers"`
	Forwarded       uint64 `json:"forwarded"`
	HandoffFlows    uint64 `json:"handoff_flows"`
	HandoffRecords  uint64 `json:"handoff_records"`
	HandoffTimeouts uint64 `json:"handoff_timeouts"`
	HandoffUnacked  uint64 `json:"handoff_unacked"`
	OverflowDrops   uint64 `json:"overflow_drops"` // frames dropped at a full pending/parked buffer

	DeadlineHits   uint64 `json:"deadline_hits,omitempty"`
	DeadlineMisses uint64 `json:"deadline_misses,omitempty"`

	P99PreDrainNanos int64 `json:"p99_pre_drain_nanos,omitempty"`
	P99OverallNanos  int64 `json:"p99_overall_nanos"`
	// DrainNanos is how long the victim's graceful Drain took, announce
	// to final gossip. Frames parked behind the announce (and buffered at
	// the new owner) surface when the export lands, so the worst-case
	// tail a drain adds is bounded by this, never by run length.
	DrainNanos int64 `json:"drain_nanos,omitempty"`

	Episodes []sentinel.Episode `json:"episodes,omitempty"`

	Violations  []string    `json:"violations,omitempty"`
	NViolations uint64      `json:"n_violations"`
	PerNode     []NodeStats `json:"per_node"`
}

// Verify returns the stream-invariant verdict: nil when every delivery
// surfaced exactly once, in order, with nothing invented — across the
// ownership change included.
func (r *MeshReport) Verify() error {
	if r.NViolations == 0 {
		return nil
	}
	return fmt.Errorf("mesh stream invariant: %d violation(s), first: %s",
		r.NViolations, r.Violations[0])
}

// RunMesh drives a complete hermetic mesh run: N nodes and one client in
// this process, optional mid-run graceful drain of one node, every send
// and delivery shadowed by one shared invariant.Stream.
func RunMesh(cfg MeshConfig) (*MeshReport, error) {
	cfg.fillDefaults()
	checker := invariant.NewStream()

	nodes := make([]*Node, 0, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		n, err := NewNode(NodeConfig{
			ID:             NodeID(i + 1),
			DataPaths:      cfg.PathsPerNode,
			GossipInterval: cfg.GossipInterval,
			ReorderTimeout: cfg.ReorderTimeout,
			HandoffTimeout: cfg.HandoffTimeout,
			DrainSettle:    cfg.DrainSettle,
			Deadline:       cfg.Deadline,
			Health:         cfg.NodeHealth,
			SLO:            cfg.SLO,
			Checker:        checker,
		})
		if err != nil {
			for _, m := range nodes {
				m.Close() //lint:allow erroreat teardown on the error path
			}
			return nil, err
		}
		nodes = append(nodes, n)
	}
	closeAll := func() {
		for _, n := range nodes {
			n.Close() //lint:allow erroreat best-effort harness teardown
		}
	}

	client, err := NewClient(ClientConfig{
		ID:                   NodeID(1000),
		Scheduler:            cfg.Scheduler,
		HedgeK:               cfg.HedgeK,
		Deadline:             cfg.Deadline,
		DeadlineMargin:       cfg.DeadlineMargin,
		DupBudgetBytesPerSec: cfg.DupBudgetBytesPerSec,
		DupBudgetBurst:       cfg.DupBudgetBurst,
		Health:               cfg.Health,
		Impairer:             cfg.Impairer,
		Checker:              checker,
	})
	if err != nil {
		closeAll()
		return nil, err
	}

	seed := make([]Member, 0, cfg.Nodes+1)
	for _, n := range nodes {
		seed = append(seed, n.Member())
	}
	seed = append(seed, client.Member())
	for _, n := range nodes {
		n.Start(seed)
	}
	if err := client.Start(seed); err != nil {
		closeAll()
		return nil, err
	}
	if cfg.Metrics != nil {
		RegisterMetrics(cfg.Metrics, nodes, client)
	}

	mergedSnap := func() *live.HistSnapshot {
		merged := nodes[0].E2ESnapshot()
		for _, n := range nodes[1:] {
			merged.Merge(n.E2ESnapshot())
		}
		return merged
	}
	resolved := func() uint64 {
		var t uint64
		for _, n := range nodes {
			t += n.delivered.Load() + n.gaps.Load() + n.dupSuppressed.Load()
		}
		return t
	}

	stopAux := make(chan struct{})
	var aux sync.WaitGroup

	// Optional tail sentinel: mesh-aggregate p99 per tick window, plus the
	// gossiped SLO-critical and unhealthy-path counts.
	var episodes []sentinel.Episode
	if cfg.Sentinel != nil {
		det := sentinel.NewDetector(*cfg.Sentinel)
		aux.Add(1)
		go func() {
			defer aux.Done()
			prev := mergedSnap()
			ticker := time.NewTicker(cfg.SentinelEvery) //lint:allow determinism wall-clock sentinel sampling over a real wire
			defer ticker.Stop()
			for {
				select {
				case <-stopAux:
					return
				case <-ticker.C:
				}
				cur := mergedSnap()
				delta := cur.Delta(prev)
				prev = cur
				p99 := int64(-1)
				if delta.NCount > 0 {
					p99 = delta.Quantile(0.99)
				}
				var critical bool
				var unhealthy int
				for _, n := range nodes {
					if n.sloCritical() {
						critical = true
					}
					pc := n.pathCounts()
					unhealthy += int(pc.PathsDegraded) + int(pc.PathsQuarantined) + int(pc.PathsProbing)
				}
				trans, ep := det.Observe(sentinel.Sample{
					Nanos: nowNanos(), P99: p99,
					SLOCritical: critical, UnhealthyPaths: unhealthy,
				})
				if trans == sentinel.TransEnd {
					episodes = append(episodes, ep)
				}
			}
		}()
	}

	// Optional mid-run drain: snapshot the pre-drain tail, then run the
	// graceful departure while the send loop keeps going — the whole point
	// is that traffic continues across the ownership change.
	var preSnap *live.HistSnapshot
	var drainWG sync.WaitGroup
	var drainErr error
	var drainNanos int64
	if cfg.DrainNode >= 0 && cfg.DrainNode < len(nodes) {
		drainAt := time.Duration(float64(cfg.Duration) * cfg.DrainAfter)
		if cfg.Duration == 0 {
			drainAt = 500 * time.Millisecond
		}
		victim := nodes[cfg.DrainNode]
		drainWG.Add(1)
		go func() {
			defer drainWG.Done()
			select {
			case <-time.After(drainAt): //lint:allow determinism wall-clock drain trigger for a real-wire run
			case <-stopAux:
				return
			}
			preSnap = mergedSnap()
			ds := nowNanos()
			drainErr = victim.Drain()
			drainNanos = nowNanos() - ds
		}()
	}

	// Send loop, windowed like RunLoopback's.
	start := nowNanos()
	deadlineNanos := int64(0)
	if cfg.Duration > 0 {
		deadlineNanos = start + cfg.Duration.Nanoseconds()
	}
	payload := make([]byte, cfg.Payload)
	for i := range payload {
		payload[i] = byte(i)
	}
	var sent, sendErrs uint64
	var lastProgress = nowNanos()
	var lastResolved uint64
send:
	for {
		if cfg.Packets > 0 && sent >= cfg.Packets {
			break
		}
		if deadlineNanos > 0 && nowNanos() >= deadlineNanos {
			break
		}
		if cfg.Stop != nil {
			select {
			case <-cfg.Stop:
				break send
			default:
			}
		}
		// Backpressure: stall while the unresolved window is full, with a
		// grace release so genuine losses (which never resolve) cannot
		// deadlock the loop.
		for sent-resolved() >= cfg.Window {
			if r := resolved(); r != lastResolved {
				lastResolved = r
				lastProgress = nowNanos()
			} else if nowNanos()-lastProgress > (100 * time.Millisecond).Nanoseconds() {
				break
			}
			if deadlineNanos > 0 && nowNanos() >= deadlineNanos {
				break send
			}
			time.Sleep(200 * time.Microsecond) //lint:allow determinism real-wire backpressure pacing
		}
		flow := uint64(sent % uint64(cfg.Flows))
		if _, _, err := client.Send(flow, payload); err != nil {
			sendErrs++
		}
		sent++
	}

	// Settle: wait for in-flight frames, reorder flushes, and the drain's
	// handoff to finish resolving, then for counters to hold still.
	drainWG.Wait()
	settleDeadline := nowNanos() + (2*time.Second + 8*cfg.ReorderTimeout).Nanoseconds()
	var stable int
	last := resolved()
	for stable < 5 && nowNanos() < settleDeadline {
		time.Sleep(20 * time.Millisecond) //lint:allow determinism real-wire settle polling
		if cur := resolved(); cur == last {
			stable++
		} else {
			stable = 0
			last = cur
		}
	}
	close(stopAux)
	aux.Wait()

	elapsed := time.Duration(nowNanos() - start)
	// Snapshot the latency plane before teardown: closing the nodes
	// flushes whatever a starved run still holds in its reorder buffers,
	// and those teardown deliveries — still invariant-checked below —
	// would smear the report's measured window.
	overall := mergedSnap()
	client.Close() //lint:allow erroreat harness teardown; the report already has every counter
	closeAll()

	rep := &MeshReport{
		Elapsed: elapsed,
		Nodes:   cfg.Nodes,
		Packets: sent, SendErrs: sendErrs,
		Resteers: client.Resteers(),
		Episodes: episodes,
	}
	rep.P99OverallNanos = overall.Quantile(0.99)
	if preSnap != nil {
		rep.P99PreDrainNanos = preSnap.Quantile(0.99)
	}
	rep.DrainNanos = drainNanos
	for _, n := range nodes {
		st := n.Stats()
		rep.PerNode = append(rep.PerNode, st)
		rep.Delivered += st.Delivered
		rep.Gaps += st.Gaps
		rep.DupDrops += st.DupSuppressed
		rep.StaleSteers += st.StaleSteers
		rep.Forwarded += st.ForwardedOut
		rep.HandoffFlows += st.HandoffFlowsOut
		rep.HandoffRecords += st.HandoffRecords
		rep.HandoffTimeouts += st.HandoffTimeouts
		rep.HandoffUnacked += st.HandoffUnacked
		rep.OverflowDrops += st.OverflowDropped
		rep.MovedSeqs += st.MigratedDelivered
		rep.DeadlineHits += st.DeadlineHits
		rep.DeadlineMisses += st.DeadlineMisses
		if st.Epoch > rep.EpochEnd {
			rep.EpochEnd = st.Epoch
		}
	}
	checker.Finish() //lint:allow erroreat the verdict is carried in Violations below
	rep.Violations, rep.NViolations = checker.Violations()
	if drainErr != nil {
		return rep, fmt.Errorf("mesh: drain: %w", drainErr)
	}
	return rep, nil
}
