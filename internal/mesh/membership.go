package mesh

import "sort"

// MemberState is a member's liveness as seen by a view.
type MemberState uint8

const (
	// MemberAlive members own flows and receive gossip.
	MemberAlive MemberState = iota
	// MemberSuspect members have gone quiet past SuspectAfter. They keep
	// their flow ownership — a false suspicion must not migrate state —
	// but the suspicion is gossiped so the whole mesh converges on it.
	MemberSuspect
	// MemberLeft members have drained (or been declared dead after
	// DeadAfter of silence) and own nothing.
	MemberLeft
)

func (s MemberState) String() string {
	switch s {
	case MemberAlive:
		return "alive"
	case MemberSuspect:
		return "suspect"
	case MemberLeft:
		return "left"
	default:
		return "invalid"
	}
}

// Role separates data-plane members (own flows, run receivers) from
// observers (mesh clients that follow membership but own nothing).
type Role uint8

const (
	RoleData Role = iota
	RoleObserver
)

// HealthSummary is one node's self-reported condition, carried in gossip:
// per-path health-state counts distilled from its core.HealthTracker
// machines, plus its SLO burn so alerts aggregate per-mesh. Version
// orders summaries from the same node; the freshest wins a merge.
type HealthSummary struct {
	Version          uint64
	PathsUp          uint8
	PathsDegraded    uint8
	PathsQuarantined uint8
	PathsProbing     uint8
	SLOState         uint8 // live.SLOState, 0 when no tracker is attached
	BurnRate         float64
	Delivered        uint64
	Lost             uint64
}

// Member is one row of the membership table.
type Member struct {
	ID          NodeID
	Incarnation uint64
	State       MemberState
	Role        Role
	ControlAddr string
	DataAddrs   []string
	Summary     HealthSummary
}

// View is one agent's membership table plus the versioned epoch the data
// plane stamps into envelopes. Not goroutine-safe — the owner guards it.
//
// Epoch discipline: only an agent whose own action changes the eligible
// set (joining, leaving, or locally declaring a silent peer dead) bumps
// the epoch; everyone else adopts the maximum seen in gossip. Concurrent
// bumps for the same event converge to the same value; the epoch's job
// is not to count events but to order views — a frame stamped with an
// older epoch than the receiver's view marks a stale steering decision.
type View struct {
	self      NodeID
	epoch     uint64
	members   map[NodeID]*Member
	lastHeard map[NodeID]int64 // unix nanos of last gossip naming the peer origin
}

// NewView returns an empty view owned by self.
func NewView(self NodeID) *View {
	return &View{
		self:      self,
		members:   make(map[NodeID]*Member),
		lastHeard: make(map[NodeID]int64),
	}
}

// Epoch returns the current membership epoch.
func (v *View) Epoch() uint64 { return v.epoch }

// Seed installs the static bootstrap membership and sets the initial
// epoch. The harness seeds every agent with the same member list, so all
// views start converged at epoch 1.
func (v *View) Seed(members []Member, nowNanos int64) {
	for i := range members {
		m := members[i]
		v.members[m.ID] = &m
		v.lastHeard[m.ID] = nowNanos
	}
	if v.epoch == 0 {
		v.epoch = 1
	}
}

// Get returns a copy of the member row.
func (v *View) Get(id NodeID) (Member, bool) {
	m, ok := v.members[id]
	if !ok {
		return Member{}, false
	}
	return *m, true
}

// Self returns this agent's own row (zero Member if never seeded).
func (v *View) Self() (Member, bool) { return v.Get(v.self) }

// SetSummary updates this agent's own health summary, bumping its
// version so the merge rule propagates it.
func (v *View) SetSummary(s HealthSummary) {
	m, ok := v.members[v.self]
	if !ok {
		return
	}
	s.Version = m.Summary.Version + 1
	m.Summary = s
}

// Leave marks self as left with a fresh incarnation and bumps the epoch:
// the one membership change a node makes about itself.
func (v *View) Leave() {
	m, ok := v.members[v.self]
	if !ok {
		return
	}
	m.Incarnation++
	m.State = MemberLeft
	v.epoch++
}

// Merge folds a gossip message into the view. It returns whether the
// eligible (flow-owning) set changed, which is the caller's cue to
// rebuild steering. The epoch adopts the maximum.
func (v *View) Merge(msg *GossipMessage, nowNanos int64) (eligibleChanged bool) {
	before := v.eligibleKey()
	if msg.Epoch > v.epoch {
		v.epoch = msg.Epoch
	}
	v.lastHeard[msg.Origin] = nowNanos
	for i := range msg.Members {
		in := msg.Members[i]
		cur, ok := v.members[in.ID]
		switch {
		case !ok:
			m := in
			v.members[in.ID] = &m
			if _, heard := v.lastHeard[in.ID]; !heard {
				v.lastHeard[in.ID] = nowNanos
			}
		case in.Incarnation > cur.Incarnation,
			in.Incarnation == cur.Incarnation && in.State > cur.State:
			// Higher incarnation is strictly newer; at equal incarnation
			// the graver state wins (left > suspect > alive) so a refuted
			// suspicion needs a fresh incarnation to clear.
			cur.Incarnation = in.Incarnation
			cur.State = in.State
			cur.ControlAddr = in.ControlAddr
			cur.DataAddrs = in.DataAddrs
		}
		if cur, ok := v.members[in.ID]; ok && in.Summary.Version > cur.Summary.Version {
			cur.Summary = in.Summary
		}
	}
	return v.eligibleKey() != before
}

// SweepLiveness applies the failure detector: a data member not heard
// from within suspectAfter turns suspect; past deadAfter it is locally
// declared left (epoch bump — an eligibility change this agent decided).
// Returns whether the eligible set changed.
func (v *View) SweepLiveness(nowNanos int64, suspectAfter, deadAfter int64) (eligibleChanged bool) {
	before := v.eligibleKey()
	ids := v.sortedIDs()
	for _, id := range ids {
		m := v.members[id]
		if id == v.self || m.Role != RoleData || m.State == MemberLeft {
			continue
		}
		quiet := nowNanos - v.lastHeard[id]
		switch {
		case deadAfter > 0 && quiet > deadAfter:
			m.State = MemberLeft
		case suspectAfter > 0 && quiet > suspectAfter:
			if m.State == MemberAlive {
				m.State = MemberSuspect
			}
		}
	}
	if v.eligibleKey() != before {
		v.epoch++
		return true
	}
	return false
}

// EligibleIDs returns the sorted flow-owning set: data-role members that
// have not left. Suspects stay eligible — migrating state on a mere
// suspicion would thrash ownership on every GC pause.
func (v *View) EligibleIDs() []NodeID {
	ids := make([]NodeID, 0, len(v.members))
	for _, id := range v.sortedIDs() {
		m := v.members[id]
		if m.Role == RoleData && m.State != MemberLeft {
			ids = append(ids, id)
		}
	}
	return ids
}

// Members returns a sorted copy of the table, the gossip payload.
func (v *View) Members() []Member {
	out := make([]Member, 0, len(v.members))
	for _, id := range v.sortedIDs() {
		out = append(out, *v.members[id])
	}
	return out
}

// Steering builds the ownership function for the current eligible set.
func (v *View) Steering() *Steering {
	return NewSteering(v.EligibleIDs(), v.epoch)
}

func (v *View) sortedIDs() []NodeID {
	ids := make([]NodeID, 0, len(v.members))
	for id := range v.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// eligibleKey is a cheap fingerprint of the eligible set for
// changed-detection across a merge.
func (v *View) eligibleKey() uint64 {
	var key uint64
	for id, m := range v.members {
		if m.Role == RoleData && m.State != MemberLeft {
			key ^= hrwScore(uint64(id)+0x5bd1e995, id)
		}
	}
	return key
}
