package mesh

import (
	"testing"
)

func testMembers() []Member {
	return []Member{
		{ID: 1, State: MemberAlive, Role: RoleData, ControlAddr: "127.0.0.1:9001", DataAddrs: []string{"127.0.0.1:9101", "127.0.0.1:9201"}},
		{ID: 2, State: MemberAlive, Role: RoleData, ControlAddr: "127.0.0.1:9002", DataAddrs: []string{"127.0.0.1:9102"}},
		{ID: 3, State: MemberAlive, Role: RoleData, ControlAddr: "127.0.0.1:9003", DataAddrs: []string{"127.0.0.1:9103"}},
		{ID: 1000, State: MemberAlive, Role: RoleObserver, ControlAddr: "127.0.0.1:9999"},
	}
}

func TestViewSeedAndEligible(t *testing.T) {
	v := NewView(1)
	v.Seed(testMembers(), 100)
	if v.Epoch() != 1 {
		t.Fatalf("seeded epoch %d, want 1", v.Epoch())
	}
	ids := v.EligibleIDs()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("eligible %v, want [1 2 3] (observer excluded, sorted)", ids)
	}
}

func TestViewLeaveBumpsEpochAndExcludes(t *testing.T) {
	v := NewView(2)
	v.Seed(testMembers(), 100)
	v.Leave()
	if v.Epoch() != 2 {
		t.Fatalf("post-leave epoch %d, want 2", v.Epoch())
	}
	for _, id := range v.EligibleIDs() {
		if id == 2 {
			t.Fatal("left node still eligible")
		}
	}
	self, _ := v.Get(2)
	if self.State != MemberLeft || self.Incarnation != 1 {
		t.Fatalf("self row %+v, want left at incarnation 1", self)
	}
}

func TestViewMergePropagatesLeave(t *testing.T) {
	a, b := NewView(1), NewView(3)
	a.Seed(testMembers(), 100)
	b.Seed(testMembers(), 100)
	// Node 2 leaves; its view gossips to node 1.
	leaver := NewView(2)
	leaver.Seed(testMembers(), 100)
	leaver.Leave()
	msg := &GossipMessage{Origin: 2, Epoch: leaver.Epoch(), Members: leaver.Members()}
	if !a.Merge(msg, 200) {
		t.Fatal("merge of a departure did not report an eligibility change")
	}
	if a.Epoch() != 2 {
		t.Fatalf("epoch after merge %d, want adopted 2", a.Epoch())
	}
	// Second-hand: node 1's view reaches node 3.
	if !b.Merge(&GossipMessage{Origin: 1, Epoch: a.Epoch(), Members: a.Members()}, 300) {
		t.Fatal("second-hand departure did not change eligibility")
	}
	m, _ := b.Get(2)
	if m.State != MemberLeft {
		t.Fatalf("node 2 state %v at node 3, want left", m.State)
	}
	// Replaying the same gossip is idempotent.
	if a.Merge(msg, 400) {
		t.Fatal("replayed gossip changed eligibility again")
	}
}

func TestViewMergeIncarnationWins(t *testing.T) {
	v := NewView(1)
	v.Seed(testMembers(), 100)
	// A stale suspicion at incarnation 0...
	stale := testMembers()
	stale[1].State = MemberSuspect
	v.Merge(&GossipMessage{Origin: 3, Epoch: 1, Members: stale}, 200)
	if m, _ := v.Get(2); m.State != MemberSuspect {
		t.Fatalf("state %v, want suspect (graver at equal incarnation)", m.State)
	}
	// ...is refuted by the member itself at incarnation 1.
	fresh := testMembers()
	fresh[1].Incarnation = 1
	fresh[1].State = MemberAlive
	v.Merge(&GossipMessage{Origin: 2, Epoch: 1, Members: fresh}, 300)
	if m, _ := v.Get(2); m.State != MemberAlive || m.Incarnation != 1 {
		t.Fatalf("row %+v, want alive at incarnation 1 (higher incarnation wins)", m)
	}
	// A lower incarnation can never regress the row.
	v.Merge(&GossipMessage{Origin: 3, Epoch: 1, Members: stale}, 400)
	if m, _ := v.Get(2); m.State != MemberAlive {
		t.Fatalf("stale lower-incarnation gossip regressed state to %v", m.State)
	}
}

func TestViewSummaryFreshnessByVersion(t *testing.T) {
	v := NewView(1)
	v.Seed(testMembers(), 100)
	newer := testMembers()
	newer[2].Summary = HealthSummary{Version: 5, PathsUp: 2, BurnRate: 1.5, Delivered: 100}
	v.Merge(&GossipMessage{Origin: 3, Epoch: 1, Members: newer}, 200)
	older := testMembers()
	older[2].Summary = HealthSummary{Version: 3, PathsUp: 1, BurnRate: 9.9}
	v.Merge(&GossipMessage{Origin: 2, Epoch: 1, Members: older}, 300)
	m, _ := v.Get(3)
	if m.Summary.Version != 5 || m.Summary.BurnRate != 1.5 {
		t.Fatalf("summary %+v, want the version-5 one kept", m.Summary)
	}
}

func TestViewSweepLiveness(t *testing.T) {
	v := NewView(1)
	v.Seed(testMembers(), 100)
	// Quiet past suspectAfter: suspect, still eligible, no epoch bump.
	if changed := v.SweepLiveness(100+60, 50, 200); changed {
		t.Fatal("suspicion alone changed the eligible set")
	}
	if m, _ := v.Get(2); m.State != MemberSuspect {
		t.Fatalf("node 2 state %v, want suspect", m.State)
	}
	if got := len(v.EligibleIDs()); got != 3 {
		t.Fatalf("eligible count %d after suspicion, want 3 (suspects keep ownership)", got)
	}
	if v.Epoch() != 1 {
		t.Fatalf("epoch %d after suspicion, want unchanged 1", v.Epoch())
	}
	// Quiet past deadAfter: locally declared left, epoch bumps.
	if changed := v.SweepLiveness(100+300, 50, 200); !changed {
		t.Fatal("dead declaration did not change the eligible set")
	}
	if v.Epoch() != 2 {
		t.Fatalf("epoch %d after local dead declaration, want 2", v.Epoch())
	}
	if got := len(v.EligibleIDs()); got != 1 {
		t.Fatalf("eligible count %d, want 1 (only self; 2 and 3 declared dead)", got)
	}
	// deadAfter=0 disables unilateral declarations entirely.
	v2 := NewView(1)
	v2.Seed(testMembers(), 100)
	v2.SweepLiveness(1<<60, 50, 0)
	if got := len(v2.EligibleIDs()); got != 3 {
		t.Fatalf("eligible count %d with deadAfter=0, want 3", got)
	}
}

func TestViewSetSummaryBumpsVersion(t *testing.T) {
	v := NewView(1)
	v.Seed(testMembers(), 100)
	v.SetSummary(HealthSummary{PathsUp: 2})
	v.SetSummary(HealthSummary{PathsUp: 1})
	m, _ := v.Self()
	if m.Summary.Version != 2 || m.Summary.PathsUp != 1 {
		t.Fatalf("summary %+v, want version 2 with the latest counts", m.Summary)
	}
}
