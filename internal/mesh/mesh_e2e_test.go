package mesh

import (
	"testing"
	"time"

	"mpdp/internal/sentinel"
	"mpdp/internal/transport"
)

// TestMeshSteadyState: a short clean 3-node run — every send resolves,
// the stream invariant holds, and no handoff machinery fires.
func TestMeshSteadyState(t *testing.T) {
	rep, err := RunMesh(MeshConfig{
		Nodes:          3,
		Flows:          16,
		Packets:        4000,
		GossipInterval: 10 * time.Millisecond,
		DrainNode:      -1,
	})
	if err != nil {
		t.Fatalf("RunMesh: %v", err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatal(err)
	}
	if rep.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if rep.Delivered+rep.Gaps < rep.Packets*99/100 {
		t.Fatalf("resolved %d of %d sends on a clean loopback", rep.Delivered+rep.Gaps, rep.Packets)
	}
	if rep.Resteers != 0 || rep.HandoffFlows != 0 {
		t.Fatalf("steady state migrated flows: resteers=%d handoffs=%d", rep.Resteers, rep.HandoffFlows)
	}
	if rep.EpochEnd != 1 {
		t.Fatalf("epoch %d after a membership-stable run, want 1", rep.EpochEnd)
	}
	t.Logf("steady: packets=%d delivered=%d gaps=%d p99=%v",
		rep.Packets, rep.Delivered, rep.Gaps, time.Duration(rep.P99OverallNanos))
}

// TestMeshDrainHandoffE25 is experiment E25 in-process: 4 nodes, one
// drained mid-run while a burst impairment batters one path — the
// draining node's flows must migrate to their new HRW owners with zero
// stream-invariant violations, no handoff-record timeouts, and a bounded
// tail penalty.
func TestMeshDrainHandoffE25(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wire run")
	}
	const duration = 2 * time.Second
	imp := transport.NewBurstImpairer(transport.BurstImpairConfig{
		Path: 1, Period: 512, Length: 96, Delay: 3 * time.Millisecond,
	})
	rep, err := RunMesh(MeshConfig{
		Nodes:          4,
		Flows:          32,
		Duration:       duration,
		GossipInterval: 10 * time.Millisecond,
		DrainNode:      1,
		DrainAfter:     0.4,
		// This is a graceful drain: promotion is the dead-owner escape
		// hatch and must not fire here. On a starved host the victim's
		// record transfer can lawfully take longer than the production
		// default (500ms), so give the records a timeout no graceful
		// drain can trip — TestPromotionThenLateRecord covers the
		// promotion machinery itself.
		HandoffTimeout: 10 * time.Second,
		Impairer:       imp,
		SLO:            "p99<20ms,avail>99",
		Sentinel: &sentinel.Config{
			P99ThresholdNanos: (8 * time.Millisecond).Nanoseconds(),
			SuspectTicks:      1,
		},
	})
	if err != nil {
		t.Fatalf("RunMesh: %v", err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatal(err) // THE acceptance bar: at-most-once + in-order across the handoff
	}
	if rep.Resteers == 0 {
		t.Fatal("no flows re-steered: the drain never reached the client")
	}
	if rep.HandoffFlows == 0 {
		t.Fatal("no flow records transferred: the drain handed nothing off")
	}
	// Timeouts before moved-seqs: a spurious promotion would deliver
	// through fresh (non-migrated) entries and zero MovedSeqs as a side
	// effect, and the timeout is the actual diagnosis.
	if rep.HandoffTimeouts != 0 {
		t.Fatalf("%d pending flows promoted without their handoff record", rep.HandoffTimeouts)
	}
	if rep.MovedSeqs == 0 {
		t.Fatal("no deliveries on migrated flows: handoff state never went live")
	}
	if rep.HandoffUnacked != 0 {
		t.Fatalf("%d handoff records never acked", rep.HandoffUnacked)
	}
	if rep.EpochEnd < 2 {
		t.Fatalf("epoch %d after a departure, want >= 2", rep.EpochEnd)
	}
	drained := rep.PerNode[1]
	if drained.HandoffFlowsOut == 0 {
		t.Fatalf("drained node exported no flows: %+v", drained)
	}
	// Bounded tail inflation: a drain stalls the victim's flows by design
	// (arrivals park behind the announce and surface when the export
	// lands), so the post-drain p99 may grow — but only by the drain's
	// own length, never to run-length time: a wedged handoff would show
	// up as a tail rivaling Elapsed. The envelope only means something
	// when the run executed at roughly its configured pace: under
	// whole-tree `go test ./...` on a loaded host this binary competes
	// with every other package for CPU and multi-second scheduler stalls
	// are host noise, not a handoff defect. The correctness assertions
	// above stay unconditional.
	if rep.Elapsed > 4*duration {
		t.Logf("host overloaded (%v elapsed for a %v run); skipping the tail-envelope check", rep.Elapsed, duration)
	} else if rep.P99PreDrainNanos > 0 {
		bound := 25 * rep.P99PreDrainNanos
		if floor := (150 * time.Millisecond).Nanoseconds(); bound < floor {
			bound = floor
		}
		bound += rep.DrainNanos
		if rep.P99OverallNanos > bound {
			t.Fatalf("p99 inflated %v → %v, past the %v bound (drain %v, run elapsed %v)",
				time.Duration(rep.P99PreDrainNanos), time.Duration(rep.P99OverallNanos), time.Duration(bound),
				time.Duration(rep.DrainNanos), rep.Elapsed)
		}
	}
	t.Logf("E25: packets=%d delivered=%d resteers=%d handoff_flows=%d moved_seqs=%d stale_steers=%d forwarded=%d episodes=%d p99 %v→%v",
		rep.Packets, rep.Delivered, rep.Resteers, rep.HandoffFlows, rep.MovedSeqs,
		rep.StaleSteers, rep.Forwarded, len(rep.Episodes),
		time.Duration(rep.P99PreDrainNanos), time.Duration(rep.P99OverallNanos))
}

// TestMeshDrainToSingleSurvivor: drain one of two nodes — every flow
// migrates to the lone survivor and the invariants still hold.
func TestMeshDrainToSingleSurvivor(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wire run")
	}
	rep, err := RunMesh(MeshConfig{
		Nodes:          2,
		Flows:          8,
		Duration:       1200 * time.Millisecond,
		GossipInterval: 10 * time.Millisecond,
		HandoffTimeout: 10 * time.Second, // graceful drain; see E25
		DrainNode:      0,
		DrainAfter:     0.5,
	})
	if err != nil {
		t.Fatalf("RunMesh: %v", err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatal(err)
	}
	if rep.Resteers == 0 || rep.MovedSeqs == 0 {
		t.Fatalf("no migration to the survivor: resteers=%d moved=%d", rep.Resteers, rep.MovedSeqs)
	}
	surv := rep.PerNode[1]
	if surv.HandoffFlowsIn == 0 {
		t.Fatalf("survivor installed no flow records: %+v", surv)
	}
}
