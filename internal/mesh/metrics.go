package mesh

import (
	"fmt"

	"mpdp/internal/live"
)

// RegisterMetrics exports the mesh's aggregate and per-node families into
// a live registry (rendered by /metrics and mpdp-inspect live):
//
//	mpdp_mesh_epoch                      highest membership epoch any node holds
//	mpdp_mesh_members                    eligible (flow-owning) member count
//	mpdp_mesh_delivered_total            in-order mesh deliveries, all nodes
//	mpdp_mesh_gaps_total                 cursor-resolved wire losses
//	mpdp_mesh_dup_suppressed_total       duplicates absorbed by flow cursors
//	mpdp_mesh_stale_steers_total         stale-epoch frames detected (then relayed)
//	mpdp_mesh_forwarded_total            frames relayed to their true owner
//	mpdp_mesh_handoff_flows_total        flow records transferred in drains
//	mpdp_mesh_handoff_timeouts_total     pending flows promoted without a record
//	mpdp_mesh_migrated_delivered_total   deliveries on flows that changed owner
//	mpdp_mesh_resteers_total             client-side ownership moves
//	mpdp_mesh_slo_burn_max               fastest SLO burn rate across nodes
//	mpdp_mesh_slo_critical_nodes         nodes whose burn tracker is critical
//	mpdp_mesh_node_paths_up{node=…}      per-node path-health state counts
//	  (…_degraded, _quarantined, _probing)
//	mpdp_mesh_node_burn{node=…}          per-node fastest burn rate
//	mpdp_mesh_e2e_nanos                  mesh-wide e2e latency histogram
func RegisterMetrics(reg *live.Registry, nodes []*Node, client *Client) {
	if reg == nil {
		return
	}
	ns := append([]*Node(nil), nodes...)
	reg.GaugeFunc("mpdp_mesh_epoch", func() float64 {
		var max uint64
		for _, n := range ns {
			if e := n.Epoch(); e > max {
				max = e
			}
		}
		return float64(max)
	})
	reg.GaugeFunc("mpdp_mesh_members", func() float64 {
		var max int
		for _, n := range ns {
			if c := n.EligibleCount(); c > max {
				max = c
			}
		}
		return float64(max)
	})
	sum := func(pick func(n *Node) uint64) func() uint64 {
		return func() uint64 {
			var t uint64
			for _, n := range ns {
				t += pick(n)
			}
			return t
		}
	}
	reg.CounterFunc("mpdp_mesh_delivered_total", sum(func(n *Node) uint64 { return n.delivered.Load() }))
	reg.CounterFunc("mpdp_mesh_gaps_total", sum(func(n *Node) uint64 { return n.gaps.Load() }))
	reg.CounterFunc("mpdp_mesh_dup_suppressed_total", sum(func(n *Node) uint64 { return n.dupSuppressed.Load() }))
	reg.CounterFunc("mpdp_mesh_stale_steers_total", sum(func(n *Node) uint64 { return n.staleSteers.Load() }))
	reg.CounterFunc("mpdp_mesh_forwarded_total", sum(func(n *Node) uint64 { return n.forwardedOut.Load() }))
	reg.CounterFunc("mpdp_mesh_handoff_flows_total", sum(func(n *Node) uint64 { return n.handoffFlowsOut.Load() }))
	reg.CounterFunc("mpdp_mesh_handoff_timeouts_total", sum(func(n *Node) uint64 { return n.handoffTimeouts.Load() }))
	reg.CounterFunc("mpdp_mesh_migrated_delivered_total", sum(func(n *Node) uint64 { return n.migratedDelivered.Load() }))
	if client != nil {
		reg.CounterFunc("mpdp_mesh_resteers_total", client.Resteers)
	}
	reg.GaugeFunc("mpdp_mesh_slo_burn_max", func() float64 {
		var max float64
		for _, n := range ns {
			if b := n.burnRate(); b > max {
				max = b
			}
		}
		return max
	})
	reg.GaugeFunc("mpdp_mesh_slo_critical_nodes", func() float64 {
		var c int
		for _, n := range ns {
			if n.sloCritical() {
				c++
			}
		}
		return float64(c)
	})
	for _, n := range ns {
		n := n
		label := fmt.Sprintf("{node=\"%d\"}", n.cfg.ID)
		reg.GaugeFunc("mpdp_mesh_node_paths_up"+label, func() float64 { return float64(n.pathCounts().PathsUp) })
		reg.GaugeFunc("mpdp_mesh_node_paths_degraded"+label, func() float64 { return float64(n.pathCounts().PathsDegraded) })
		reg.GaugeFunc("mpdp_mesh_node_paths_quarantined"+label, func() float64 { return float64(n.pathCounts().PathsQuarantined) })
		reg.GaugeFunc("mpdp_mesh_node_paths_probing"+label, func() float64 { return float64(n.pathCounts().PathsProbing) })
		reg.GaugeFunc("mpdp_mesh_node_burn"+label, n.burnRate)
		reg.RegisterHistogram("mpdp_mesh_e2e_nanos"+label, n.e2e)
	}
}
