package mesh

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mpdp/internal/core"
	"mpdp/internal/invariant"
	"mpdp/internal/live"
	"mpdp/internal/packet"
	"mpdp/internal/sim"
	"mpdp/internal/transport"
)

// NodeConfig parameterizes one mesh gateway node.
type NodeConfig struct {
	// ID is the node's mesh identity (must be unique; < NodeNone).
	ID NodeID
	// DataPaths is the number of UDP data paths to listen on (default 2).
	DataPaths int
	// ControlAddr is the gossip/handoff socket bind address
	// (default 127.0.0.1:0).
	ControlAddr string
	// GossipInterval paces anti-entropy pushes (default 25ms).
	GossipInterval time.Duration
	// SuspectAfter marks a quiet data peer suspect (default 40 gossip
	// intervals); DeadAfter declares it left (default 0 = never — the
	// hermetic harness drains gracefully, so unilateral declarations
	// stay opt-in).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// ReorderTimeout is the transport receiver's gap timeout (default 5ms).
	ReorderTimeout time.Duration
	// HandoffTimeout promotes a flow whose handoff record never arrived
	// (default 500ms). Promotion is safe — see flowtable.go — but counted,
	// because in a graceful drain it should never fire.
	HandoffTimeout time.Duration
	// DrainSettle is how long Drain waits between announcing departure
	// and serializing state, covering gossip propagation to the client
	// plus in-flight frames and reorder flushes
	// (default 4×ReorderTimeout + 3×GossipInterval, floor 150ms).
	DrainSettle time.Duration
	// Deadline, when > 0, scores every delivery hit/miss against this
	// per-packet budget; the residue counters ride the handoff record.
	Deadline time.Duration
	// Health tunes the per-data-path health machines (receive-driven:
	// each delivered frame feeds its path's tracker, and Maintain runs
	// on the gossip tick, so a path that goes quiet walks the
	// up→quarantined→probing machine and the state counts are gossiped).
	Health core.HealthConfig
	// SLO, when non-empty, attaches a burn-rate tracker (live.ParseSLO
	// syntax) whose state and fastest burn are gossiped for per-mesh
	// aggregation.
	SLO string
	// Checker, when non-nil, is the shared mesh-wide stream invariant
	// checker; every local delivery is noted.
	Checker *invariant.Stream
	// OnDeliver, when non-nil, observes every in-order mesh delivery.
	// Called with the node's internal lock held: keep it cheap and do
	// not call back into the node.
	OnDeliver func(flow, seq uint64, latencyNanos int64)
}

func (c *NodeConfig) fillDefaults() {
	if c.DataPaths == 0 {
		c.DataPaths = 2
	}
	if c.ControlAddr == "" {
		c.ControlAddr = "127.0.0.1:0"
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = 25 * time.Millisecond
	}
	if c.SuspectAfter == 0 {
		c.SuspectAfter = 40 * c.GossipInterval
	}
	if c.ReorderTimeout == 0 {
		c.ReorderTimeout = 5 * time.Millisecond
	}
	if c.HandoffTimeout == 0 {
		c.HandoffTimeout = 500 * time.Millisecond
	}
	if c.DrainSettle == 0 {
		c.DrainSettle = 4*c.ReorderTimeout + 3*c.GossipInterval
		if c.DrainSettle < 150*time.Millisecond {
			c.DrainSettle = 150 * time.Millisecond
		}
	}
}

// Node is one mesh gateway: a transport receiver for owned-flow data, a
// control socket for gossip and handoff, the flow table, and the view.
type Node struct {
	cfg  NodeConfig
	ctrl *net.UDPConn
	recv *transport.Receiver
	e2e  *live.Histogram
	slo  *live.SLOTracker

	mu         sync.Mutex
	view       *View
	steer      *Steering
	table      *flowTable
	fwdTo      map[uint64]NodeID // flows handed off: later arrivals relay here
	peerAddr   map[NodeID]*net.UDPAddr
	health     []*core.HealthTracker // one per data path, receive-driven
	acked      map[uint64]bool       // handoff record seqs acked by their target
	leaving    bool
	recvClosed bool
	ticks      uint64

	delivered         atomic.Uint64
	gaps              atomic.Uint64
	dupSuppressed     atomic.Uint64
	staleSteers       atomic.Uint64
	forwardedOut      atomic.Uint64
	forwardedIn       atomic.Uint64
	handoffFlowsOut   atomic.Uint64
	handoffFlowsIn    atomic.Uint64
	handoffRecords    atomic.Uint64
	handoffTimeouts   atomic.Uint64
	handoffUnacked    atomic.Uint64
	overflowDropped   atomic.Uint64
	migratedDelivered atomic.Uint64
	deadlineHits      atomic.Uint64
	deadlineMisses    atomic.Uint64

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// NewNode binds the node's sockets (ephemeral addresses are readable via
// DataAddrs/ControlAddr afterwards) but does not join a mesh yet — call
// Start with the seed membership.
func NewNode(cfg NodeConfig) (*Node, error) {
	cfg.fillDefaults()
	if cfg.ID == NodeNone {
		return nil, fmt.Errorf("mesh: node ID %d is the reserved sentinel", cfg.ID)
	}
	n := &Node{
		cfg:      cfg,
		e2e:      live.NewHistogram(),
		view:     NewView(cfg.ID),
		table:    newFlowTable(),
		fwdTo:    make(map[uint64]NodeID),
		peerAddr: make(map[NodeID]*net.UDPAddr),
		acked:    make(map[uint64]bool),
		stop:     make(chan struct{}),
	}
	if cfg.SLO != "" {
		obj, err := live.ParseSLO(cfg.SLO)
		if err != nil {
			return nil, fmt.Errorf("mesh: node %d: %w", cfg.ID, err)
		}
		n.slo = live.NewSLOTracker(obj, nil)
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.ControlAddr)
	if err != nil {
		return nil, fmt.Errorf("mesh: node %d control addr: %w", cfg.ID, err)
	}
	n.ctrl, err = net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("mesh: node %d control socket: %w", cfg.ID, err)
	}
	addrs := make([]string, cfg.DataPaths)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	n.health = make([]*core.HealthTracker, cfg.DataPaths)
	for i := range n.health {
		n.health[i] = core.NewHealthTracker(cfg.Health)
	}
	n.recv, err = transport.Listen(transport.ReceiverConfig{
		Addrs:          addrs,
		ReorderTimeout: cfg.ReorderTimeout,
		Deliver:        n.onTransportDeliver,
		OnLost:         n.onTransportLost,
	})
	if err != nil {
		n.ctrl.Close() //lint:allow erroreat teardown on the error path
		return nil, fmt.Errorf("mesh: node %d data receiver: %w", cfg.ID, err)
	}
	return n, nil
}

// DataAddrs returns the bound data-path addresses.
func (n *Node) DataAddrs() []string { return n.recv.Addrs() }

// ControlAddr returns the bound control socket address.
func (n *Node) ControlAddr() string { return n.ctrl.LocalAddr().String() }

// ID returns the node's mesh identity.
func (n *Node) ID() NodeID { return n.cfg.ID }

// Member returns this node's self-describing membership row.
func (n *Node) Member() Member {
	return Member{
		ID:          n.cfg.ID,
		State:       MemberAlive,
		Role:        RoleData,
		ControlAddr: n.ControlAddr(),
		DataAddrs:   n.DataAddrs(),
	}
}

// Start seeds the membership view and launches the control loops.
func (n *Node) Start(seed []Member) {
	n.mu.Lock()
	n.view.Seed(seed, nowNanos())
	n.steer = n.view.Steering()
	n.mu.Unlock()
	n.wg.Add(2)
	go n.ctrlLoop()
	go n.gossipLoop()
}

// Epoch returns the node's current membership epoch.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view.Epoch()
}

// onTransportDeliver is the transport receiver's in-order delivery
// callback (reorder driver goroutine).
func (n *Node) onTransportDeliver(p *packet.Packet) {
	env, payload, err := DecodeEnvelope(p.Data)
	if err != nil {
		return // not mesh traffic; drop
	}
	pathID := p.PathID
	sendNanos := int64(p.Ingress)
	target, datagram := n.arrive(env.Seq, p.FlowID, sendNanos, payload, env.Epoch, env.PrevOwner, pathID)
	n.relay(target, datagram)
}

// onTransportLost feeds wire-level conclusive losses to the SLO tracker.
func (n *Node) onTransportLost(p *packet.Packet) {
	if n.slo != nil {
		n.slo.ObserveLoss()
	}
}

// arrive runs one mesh frame through the ownership decision tree and
// returns a relay action (target + encoded datagram) to perform outside
// the lock, or (NodeNone, nil).
func (n *Node) arrive(seq, flow uint64, sendNanos int64, payload []byte, epoch uint64, prev NodeID, pathID int) (NodeID, []byte) {
	now := nowNanos()
	n.mu.Lock()
	defer n.mu.Unlock()

	if pathID >= 0 && pathID < len(n.health) {
		// Receive-driven health: a frame on path i is one unit of proven
		// liveness for it; Maintain (gossip tick) walks quiet paths down.
		t := n.health[pathID]
		t.ObserveSent(sim.Time(now), 1)
		t.ObserveAck(sim.Time(now), 1, 0)
	}

	// 1. Handed off: this node no longer owns the flow; relay to the
	// inheritor. A frame that also carries a stale epoch is a stale
	// steering decision (the client hadn't seen the new view yet).
	if target, ok := n.fwdTo[flow]; ok {
		if epoch < n.view.Epoch() {
			n.staleSteers.Add(1)
		}
		n.forwardedOut.Add(1)
		return target, n.encodeForward(flow, seq, sendNanos, payload)
	}

	// 2. Known flow: straight through the cursor — unless we have
	// announced leave. After the epoch bump the client re-steers and the
	// flow's new owner may lawfully start delivering (its buffer can
	// overflow-drop or its HandoffTimeout can promote) before our export
	// lands, so a draining owner surfacing backlog here would deliver
	// behind the successor — the exact cross-node reordering E25 forbids.
	// Park the frame instead; it rides the export as a forward.
	if e, ok := n.table.entries[flow]; ok {
		if n.leaving {
			n.parkLocked(e, seq, sendNanos, payload)
			return NodeNone, nil
		}
		n.deliverLocked(e, flow, seq, sendNanos, now)
		return NodeNone, nil
	}

	// 3. Already buffering for this flow's inbound handoff record.
	if _, ok := n.table.pending[flow]; ok {
		n.bufferLocked(flow, prev, seq, sendNanos, payload, now)
		return NodeNone, nil
	}

	// 4. Stale steer: the frame was steered under an older epoch and this
	// node is not the owner under the current one — detected, not
	// silently delivered; relay to the true owner.
	if owner := n.steer.Owner(flow); owner != n.cfg.ID && owner != NodeNone && epoch < n.steer.Epoch() {
		n.staleSteers.Add(1)
		n.forwardedOut.Add(1)
		return owner, n.encodeForward(flow, seq, sendNanos, payload)
	}

	// 5. Re-steered flow announcing a previous owner: state is in flight
	// from it; buffer until the handoff record installs the cursor.
	if prev != NodeNone && prev != n.cfg.ID {
		n.bufferLocked(flow, prev, seq, sendNanos, payload, now)
		return NodeNone, nil
	}

	// 6. New flow: the first-seen seq opens the cursor (parked, not
	// delivered, when we are already leaving — see step 2).
	e := &flowEntry{next: seq}
	n.table.entries[flow] = e
	if n.leaving {
		n.parkLocked(e, seq, sendNanos, payload)
		return NodeNone, nil
	}
	n.deliverLocked(e, flow, seq, sendNanos, now)
	return NodeNone, nil
}

// parkLocked holds a post-announce arrival on a draining owner's entry
// until the export forwards it to the flow's inheritor. Bounded like the
// pending buffer; overflow drops the frame (a legal wire loss).
func (n *Node) parkLocked(e *flowEntry, seq uint64, sendNanos int64, payload []byte) {
	if len(e.parked) >= maxPendingFrames {
		n.overflowDropped.Add(1)
		return
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	e.parked = append(e.parked, pendingFrame{seq: seq, sendNanos: sendNanos, payload: cp})
}

// bufferLocked holds a frame for a pending handoff. A full buffer drops
// the frame — a bounded, legal wire loss — rather than promoting: the
// record's origin may merely be slow, and a promotion racing an owner
// that still surfaces backlog would reorder the flow across nodes.
// Promotion is reserved for the HandoffTimeout sweep, by which point the
// origin has either parked everything behind its announce or died.
func (n *Node) bufferLocked(flow uint64, from NodeID, seq uint64, sendNanos int64, payload []byte, now int64) {
	if !n.table.buffer(flow, from, seq, sendNanos, payload, now) {
		n.overflowDropped.Add(1)
	}
}

// promoteLocked gives up waiting for a handoff record: the flow's cursor
// opens at the smallest buffered seq (safe — see flowtable.go) and the
// buffer drains through it.
func (n *Node) promoteLocked(flow uint64, now int64) {
	frames := n.table.takePending(flow)
	if len(frames) == 0 {
		return
	}
	e := &flowEntry{next: frames[0].seq}
	n.table.entries[flow] = e
	for i := range frames {
		n.deliverLocked(e, flow, frames[i].seq, frames[i].sendNanos, now)
	}
}

// deliverLocked surfaces one frame through the cursor: dedup below it,
// in-order delivery and gap accounting at or above it.
func (n *Node) deliverLocked(e *flowEntry, flow, seq uint64, sendNanos, now int64) {
	deliver, gap := e.admit(seq)
	if !deliver {
		n.dupSuppressed.Add(1)
		return
	}
	if gap > 0 {
		n.gaps.Add(gap)
	}
	n.delivered.Add(1)
	if e.migrated {
		n.migratedDelivered.Add(1)
	}
	lat := now - sendNanos
	n.e2e.Record(lat)
	if n.slo != nil {
		n.slo.ObserveDelivery(lat)
	}
	if d := n.cfg.Deadline; d > 0 {
		if lat <= d.Nanoseconds() {
			e.deadlineHits++
			n.deadlineHits.Add(1)
		} else {
			e.deadlineMisses++
			n.deadlineMisses.Add(1)
		}
	}
	if n.cfg.Checker != nil {
		n.cfg.Checker.NoteDelivered(flow, seq)
	}
	if n.cfg.OnDeliver != nil {
		n.cfg.OnDeliver(flow, seq, lat)
	}
}

// encodeForward builds the relay datagram. Caller holds n.mu.
func (n *Node) encodeForward(flow, seq uint64, sendNanos int64, payload []byte) []byte {
	buf, err := AppendForward(nil, &Forward{
		Origin:    n.cfg.ID,
		Epoch:     n.view.Epoch(),
		FlowID:    flow,
		Seq:       seq,
		SendNanos: sendNanos,
		Payload:   payload,
	})
	if err != nil {
		return nil
	}
	return buf
}

// relay sends one control datagram to a peer's control socket.
func (n *Node) relay(target NodeID, datagram []byte) {
	if target == NodeNone || datagram == nil {
		return
	}
	addr := n.resolvePeer(target)
	if addr == nil {
		return
	}
	n.ctrl.WriteToUDP(datagram, addr) //lint:allow erroreat best-effort relay; the cursor makes retries unnecessary
}

// resolvePeer returns a peer's control address, caching resolutions.
func (n *Node) resolvePeer(id NodeID) *net.UDPAddr {
	n.mu.Lock()
	if a, ok := n.peerAddr[id]; ok {
		n.mu.Unlock()
		return a
	}
	m, ok := n.view.Get(id)
	n.mu.Unlock()
	if !ok || m.ControlAddr == "" {
		return nil
	}
	a, err := net.ResolveUDPAddr("udp", m.ControlAddr)
	if err != nil {
		return nil
	}
	n.mu.Lock()
	n.peerAddr[id] = a
	n.mu.Unlock()
	return a
}

// ctrlLoop reads and dispatches control datagrams until Close.
func (n *Node) ctrlLoop() {
	defer n.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		n.ctrl.SetReadDeadline(readDeadline(100 * time.Millisecond)) //lint:allow erroreat deadline set on a live socket cannot fail meaningfully
		sz, _, err := n.ctrl.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			select {
			case <-n.stop:
				return
			default:
				continue
			}
		}
		n.handleControl(buf[:sz])
	}
}

// handleControl dispatches one datagram by magic.
func (n *Node) handleControl(b []byte) {
	if len(b) < 8 {
		return
	}
	switch [8]byte(b[0:8]) {
	case MagicGossip:
		if msg, err := DecodeGossip(b); err == nil {
			n.mergeGossip(msg)
		}
	case MagicHandoff:
		if rec, err := DecodeHandoff(b); err == nil {
			n.installHandoff(rec)
		}
	case MagicHandoffAck:
		if ack, err := DecodeHandoffAck(b); err == nil {
			n.mu.Lock()
			n.acked[ack.Seq] = true
			n.mu.Unlock()
		}
	case MagicForward:
		if f, err := DecodeForward(b); err == nil {
			n.forwardedIn.Add(1)
			target, datagram := n.arrive(f.Seq, f.FlowID, f.SendNanos, f.Payload, f.Epoch, NodeNone, -1)
			n.relay(target, datagram)
		}
	}
}

// mergeGossip folds a peer's view into ours, rebuilding steering when
// the eligible set moved.
func (n *Node) mergeGossip(msg *GossipMessage) {
	n.mu.Lock()
	if n.view.Merge(msg, nowNanos()) {
		n.steer = n.view.Steering()
	}
	n.mu.Unlock()
}

// installHandoff adopts the serialized flow state from a draining owner,
// drains any frames buffered while the record was in flight, and acks.
func (n *Node) installHandoff(rec *HandoffRecord) {
	now := nowNanos()
	n.mu.Lock()
	if rec.Epoch > n.view.Epoch() {
		// The record proves a newer membership; gossip will catch us up,
		// but adopt the epoch now so our stamps are not behind.
		n.view.epoch = rec.Epoch
		n.steer = n.view.Steering()
	}
	n.handoffRecords.Add(1)
	for i := range rec.Flows {
		fr := &rec.Flows[i]
		e := n.table.install(fr)
		n.handoffFlowsIn.Add(1)
		for _, pf := range n.table.takePending(fr.FlowID) {
			n.deliverLocked(e, fr.FlowID, pf.seq, pf.sendNanos, now)
		}
	}
	n.mu.Unlock()
	ack := AppendHandoffAck(nil, &HandoffAck{Origin: n.cfg.ID, Seq: rec.Seq})
	n.relay(rec.Origin, ack)
}

// gossipLoop pushes the full view to every peer each interval, sweeps
// the failure detector, refreshes the health summary, ticks the SLO
// tracker, and promotes expired pending flows.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.GossipInterval) //lint:allow determinism wall-clock pump for the gossip control plane
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			n.gossipTick()
		}
	}
}

// gossipTick is one control-plane heartbeat.
func (n *Node) gossipTick() {
	now := nowNanos()
	n.mu.Lock()
	n.ticks++
	// SLO windows advance about once a second regardless of gossip pace.
	if n.slo != nil && n.ticks%uint64(max64(1, int64(time.Second/n.cfg.GossipInterval))) == 0 {
		n.slo.Tick()
	}
	for _, t := range n.health {
		t.Maintain(sim.Time(now))
	}
	n.view.SetSummary(n.summaryLocked())
	if n.view.SweepLiveness(now, n.cfg.SuspectAfter.Nanoseconds(), n.cfg.DeadAfter.Nanoseconds()) {
		n.steer = n.view.Steering()
	}
	for _, flow := range n.table.expiredPending(now, n.cfg.HandoffTimeout.Nanoseconds()) {
		n.handoffTimeouts.Add(1)
		n.promoteLocked(flow, now)
	}
	msg := &GossipMessage{Origin: n.cfg.ID, Epoch: n.view.Epoch(), Members: n.view.Members()}
	n.mu.Unlock()
	n.broadcast(msg)
}

// summaryLocked distills the health trackers and SLO tracker into the
// gossiped self-summary. Caller holds n.mu.
func (n *Node) summaryLocked() HealthSummary {
	var s HealthSummary
	for _, t := range n.health {
		switch t.State() {
		case core.HealthUp:
			s.PathsUp++
		case core.HealthDegraded:
			s.PathsDegraded++
		case core.HealthQuarantined:
			s.PathsQuarantined++
		case core.HealthProbing:
			s.PathsProbing++
		}
	}
	s.Delivered = n.delivered.Load()
	s.Lost = n.gaps.Load()
	if n.slo != nil {
		st, _ := n.slo.State()
		s.SLOState = uint8(st)
		for _, b := range n.slo.Status().Burns {
			if b.Rate > s.BurnRate {
				s.BurnRate = b.Rate
			}
		}
	}
	return s
}

// broadcast pushes one gossip message to every known peer.
func (n *Node) broadcast(msg *GossipMessage) {
	buf, err := AppendGossip(nil, msg)
	if err != nil {
		return
	}
	for i := range msg.Members {
		id := msg.Members[i].ID
		if id == n.cfg.ID {
			continue
		}
		if addr := n.resolvePeer(id); addr != nil {
			n.ctrl.WriteToUDP(buf, addr) //lint:allow erroreat gossip is best-effort; the next tick repeats it
		}
	}
}

// Drain is the graceful shutdown path: announce departure (epoch bump),
// let the client re-steer and in-flight frames settle, flush the
// receiver, serialize the flow table into handoff records for the new
// HRW owners, transfer until acked, then close.
func (n *Node) Drain() error {
	n.mu.Lock()
	if n.leaving {
		n.mu.Unlock()
		return nil
	}
	n.leaving = true
	n.view.Leave()
	n.steer = n.view.Steering()
	msg := &GossipMessage{Origin: n.cfg.ID, Epoch: n.view.Epoch(), Members: n.view.Members()}
	n.mu.Unlock()

	// Announce immediately (and thrice — gossip is UDP) instead of
	// waiting for the next tick; the settle window starts now.
	for i := 0; i < 3; i++ {
		n.broadcast(msg)
	}
	select {
	case <-time.After(n.cfg.DrainSettle): //lint:allow determinism wall-clock settle window for a real-wire drain
	case <-n.stop:
	}

	// Flush: no new frames are coming (the client re-steered); closing
	// the receiver releases everything still in the reorder buffers
	// through the normal delivery path into the flow table.
	n.mu.Lock()
	n.recvClosed = true
	n.mu.Unlock()
	if err := n.recv.Close(); err != nil {
		return fmt.Errorf("mesh: node %d drain: receiver close: %w", n.cfg.ID, err)
	}

	// Serialize and transfer. Steering already excludes us (we left), so
	// Owner names each flow's inheritor directly.
	n.mu.Lock()
	steer := n.steer
	type outRecord struct {
		target NodeID
		buf    []byte
		seq    uint64
	}
	// Everything that arrived since the announce was parked, never
	// surfaced (see arrive step 2); relay it to each flow's inheritor
	// ahead of the flow's record. The new owner either buffers these for
	// the install or dedups them below an already-promoted cursor — in
	// both cases the flow stays in order across the handoff.
	var relays []outRecord
	parkedFlows := make([]uint64, 0, len(n.table.entries))
	for f, e := range n.table.entries {
		if len(e.parked) > 0 {
			parkedFlows = append(parkedFlows, f)
		}
	}
	sort.Slice(parkedFlows, func(i, j int) bool { return parkedFlows[i] < parkedFlows[j] })
	for _, flow := range parkedFlows {
		target := steer.Owner(flow)
		e := n.table.entries[flow]
		frames := e.parked
		e.parked = nil
		if target == NodeNone {
			continue // last node standing: nowhere to relay
		}
		sort.Slice(frames, func(i, j int) bool { return frames[i].seq < frames[j].seq })
		for _, pf := range frames {
			if buf := n.encodeForward(flow, pf.seq, pf.sendNanos, pf.payload); buf != nil {
				relays = append(relays, outRecord{target: target, buf: buf})
			}
		}
	}
	byOwner := n.table.export(steer.Owner)
	owners := make([]NodeID, 0, len(byOwner))
	for id := range byOwner {
		owners = append(owners, id)
	}
	for i := 1; i < len(owners); i++ { // insertion sort; tiny set
		for j := i; j > 0 && owners[j] < owners[j-1]; j-- {
			owners[j], owners[j-1] = owners[j-1], owners[j]
		}
	}
	var hseq uint64
	var out []outRecord
	for _, target := range owners {
		flows := byOwner[target]
		for off := 0; off < len(flows); off += MaxHandoffFlows {
			end := off + MaxHandoffFlows
			if end > len(flows) {
				end = len(flows)
			}
			hseq++
			rec := &HandoffRecord{
				Origin: n.cfg.ID, Target: target,
				Epoch: n.view.Epoch(), Seq: hseq,
				Flows: flows[off:end],
			}
			buf, err := AppendHandoff(nil, rec)
			if err != nil {
				continue
			}
			for i := range rec.Flows {
				n.fwdTo[rec.Flows[i].FlowID] = target
			}
			n.handoffFlowsOut.Add(uint64(len(rec.Flows)))
			out = append(out, outRecord{target: target, buf: buf, seq: hseq})
		}
	}
	// Anything buffered for a never-installed handoff record relays to
	// its current owner rather than dying with us.
	pendingFlows := n.table.expiredPending(1<<62, 0)
	for _, flow := range pendingFlows {
		target := steer.Owner(flow)
		if target == NodeNone {
			continue
		}
		for _, pf := range n.table.takePending(flow) {
			if buf := n.encodeForward(flow, pf.seq, pf.sendNanos, pf.payload); buf != nil {
				relays = append(relays, outRecord{target: target, buf: buf})
			}
		}
	}
	n.mu.Unlock()

	for _, r := range relays {
		n.relay(r.target, r.buf)
	}
	// Transfer with retry-until-acked: 5 attempts, 150ms ack wait each.
	for _, r := range out {
		acked := false
		for attempt := 0; attempt < 5 && !acked; attempt++ {
			n.relay(r.target, r.buf)
			deadline := nowNanos() + (150 * time.Millisecond).Nanoseconds()
			for nowNanos() < deadline {
				time.Sleep(5 * time.Millisecond) //lint:allow determinism ack polling during a real-wire drain
				n.mu.Lock()
				acked = n.acked[r.seq]
				n.mu.Unlock()
				if acked {
					break
				}
			}
		}
		if !acked {
			n.handoffUnacked.Add(1)
		}
		n.handoffRecords.Add(1)
	}

	// Final departure gossip, then full teardown.
	n.mu.Lock()
	msg = &GossipMessage{Origin: n.cfg.ID, Epoch: n.view.Epoch(), Members: n.view.Members()}
	n.mu.Unlock()
	n.broadcast(msg)
	return n.Close()
}

// Close stops the loops and closes both sockets. Idempotent; Drain calls
// it after the handoff completes.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		close(n.stop)
		n.mu.Lock()
		needRecvClose := !n.recvClosed
		n.recvClosed = true
		n.mu.Unlock()
		if needRecvClose {
			if err := n.recv.Close(); err != nil {
				n.closeErr = err
			}
		}
		if err := n.ctrl.Close(); err != nil && n.closeErr == nil {
			n.closeErr = err
		}
		n.wg.Wait()
	})
	return n.closeErr
}

// NodeStats is one node's counters, snapshot for reports and metrics.
type NodeStats struct {
	ID                NodeID  `json:"id"`
	Epoch             uint64  `json:"epoch"`
	Delivered         uint64  `json:"delivered"`
	Gaps              uint64  `json:"gaps"`
	DupSuppressed     uint64  `json:"dup_suppressed"`
	StaleSteers       uint64  `json:"stale_steers"`
	ForwardedOut      uint64  `json:"forwarded_out"`
	ForwardedIn       uint64  `json:"forwarded_in"`
	HandoffFlowsOut   uint64  `json:"handoff_flows_out"`
	HandoffFlowsIn    uint64  `json:"handoff_flows_in"`
	HandoffRecords    uint64  `json:"handoff_records"`
	HandoffTimeouts   uint64  `json:"handoff_timeouts"`
	HandoffUnacked    uint64  `json:"handoff_unacked"`
	OverflowDropped   uint64  `json:"overflow_dropped"`
	MigratedDelivered uint64  `json:"migrated_delivered"`
	DeadlineHits      uint64  `json:"deadline_hits,omitempty"`
	DeadlineMisses    uint64  `json:"deadline_misses,omitempty"`
	PathsUp           int     `json:"paths_up"`
	PathsDegraded     int     `json:"paths_degraded"`
	PathsQuarantined  int     `json:"paths_quarantined"`
	PathsProbing      int     `json:"paths_probing"`
	SLOState          string  `json:"slo_state,omitempty"`
	BurnRate          float64 `json:"burn_rate,omitempty"`
	P99Nanos          int64   `json:"p99_nanos"`
}

// Stats snapshots the node.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	epoch := n.view.Epoch()
	sum := n.summaryLocked()
	n.mu.Unlock()
	st := NodeStats{
		ID:                n.cfg.ID,
		Epoch:             epoch,
		Delivered:         n.delivered.Load(),
		Gaps:              n.gaps.Load(),
		DupSuppressed:     n.dupSuppressed.Load(),
		StaleSteers:       n.staleSteers.Load(),
		ForwardedOut:      n.forwardedOut.Load(),
		ForwardedIn:       n.forwardedIn.Load(),
		HandoffFlowsOut:   n.handoffFlowsOut.Load(),
		HandoffFlowsIn:    n.handoffFlowsIn.Load(),
		HandoffRecords:    n.handoffRecords.Load(),
		HandoffTimeouts:   n.handoffTimeouts.Load(),
		HandoffUnacked:    n.handoffUnacked.Load(),
		OverflowDropped:   n.overflowDropped.Load(),
		MigratedDelivered: n.migratedDelivered.Load(),
		DeadlineHits:      n.deadlineHits.Load(),
		DeadlineMisses:    n.deadlineMisses.Load(),
		PathsUp:           int(sum.PathsUp),
		PathsDegraded:     int(sum.PathsDegraded),
		PathsQuarantined:  int(sum.PathsQuarantined),
		PathsProbing:      int(sum.PathsProbing),
		BurnRate:          sum.BurnRate,
		P99Nanos:          n.e2e.Snapshot().Quantile(0.99),
	}
	if n.slo != nil {
		state, _ := n.slo.State()
		st.SLOState = state.String()
	}
	return st
}

// E2ESnapshot returns the node's end-to-end latency histogram snapshot.
func (n *Node) E2ESnapshot() *live.HistSnapshot { return n.e2e.Snapshot() }

// EligibleCount returns the node's view of the flow-owning member count.
func (n *Node) EligibleCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.view.EligibleIDs())
}

// pathCounts returns just the per-path health-state counts.
func (n *Node) pathCounts() HealthSummary {
	n.mu.Lock()
	defer n.mu.Unlock()
	var s HealthSummary
	for _, t := range n.health {
		switch t.State() {
		case core.HealthUp:
			s.PathsUp++
		case core.HealthDegraded:
			s.PathsDegraded++
		case core.HealthQuarantined:
			s.PathsQuarantined++
		case core.HealthProbing:
			s.PathsProbing++
		}
	}
	return s
}

// burnRate returns the node's fastest SLO burn rate (0 without a tracker).
func (n *Node) burnRate() float64 {
	if n.slo == nil {
		return 0
	}
	var max float64
	for _, b := range n.slo.Status().Burns {
		if b.Rate > max {
			max = b.Rate
		}
	}
	return max
}

// sloCritical reports whether the node's burn tracker is critical.
func (n *Node) sloCritical() bool {
	if n.slo == nil {
		return false
	}
	st, _ := n.slo.State()
	return st == live.SLOCritical
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
