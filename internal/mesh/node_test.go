package mesh

import (
	"testing"

	"mpdp/internal/live"
)

// bareNode builds a node with just enough state to drive the locked
// flow-table paths directly — no sockets, no loops.
func bareNode() *Node {
	return &Node{
		cfg:   NodeConfig{ID: 1},
		e2e:   live.NewHistogram(),
		table: newFlowTable(),
		fwdTo: make(map[uint64]NodeID),
	}
}

// TestPromotionThenLateRecord exercises the HandoffTimeout escape hatch
// end to end at the table level: frames buffered for a record that never
// comes promote in seq order, and the record landing late cannot undo a
// delivery — install keeps the max cursor, so the stale seqs it would
// re-open dedup instead.
func TestPromotionThenLateRecord(t *testing.T) {
	n := bareNode()
	const flow = uint64(7)
	payload := []byte{0xab}
	for _, seq := range []uint64{5, 3, 4} { // out of order on purpose
		n.bufferLocked(flow, 2, seq, 0, payload, 0)
	}
	expired := n.table.expiredPending(1<<62, 0)
	if len(expired) != 1 || expired[0] != flow {
		t.Fatalf("expiredPending = %v, want [%d]", expired, flow)
	}
	n.promoteLocked(flow, 0)
	e, ok := n.table.entries[flow]
	if !ok {
		t.Fatal("promotion opened no cursor")
	}
	if e.next != 6 || e.delivered != 3 {
		t.Fatalf("after promotion next=%d delivered=%d, want 6/3", e.next, e.delivered)
	}
	if e.migrated {
		t.Fatal("a promoted entry must not count as migrated")
	}
	// The cursor opens at the smallest buffered seq, so the promoted
	// frames are contiguous from it: no gaps.
	if n.delivered.Load() != 3 || n.gaps.Load() != 0 {
		t.Fatalf("delivered=%d gaps=%d, want 3/0", n.delivered.Load(), n.gaps.Load())
	}
	// The late record opens at Next=4 — behind the promoted cursor.
	// Install keeps the max, and re-offering seq 4 dedups.
	n.table.install(&FlowRecord{FlowID: flow, Next: 4, Delivered: 4})
	if e.next != 6 {
		t.Fatalf("late install regressed the cursor to %d", e.next)
	}
	if !e.migrated {
		t.Fatal("install did not mark the entry migrated")
	}
	n.deliverLocked(e, flow, 4, 0, 1)
	if n.dupSuppressed.Load() != 1 {
		t.Fatalf("replayed seq 4 was not dedup'd (dupSuppressed=%d)", n.dupSuppressed.Load())
	}
	if n.delivered.Load() != 3 {
		t.Fatalf("replayed seq 4 double-delivered (delivered=%d)", n.delivered.Load())
	}
}

// TestPendingBufferOverflowDrops: a full pending buffer drops the frame
// (counted) rather than promoting — a bounded, legal wire loss.
func TestPendingBufferOverflowDrops(t *testing.T) {
	n := bareNode()
	const flow = uint64(3)
	payload := []byte{1}
	for i := 0; i < maxPendingFrames+5; i++ {
		n.bufferLocked(flow, 2, uint64(i), 0, payload, 0)
	}
	if got := n.overflowDropped.Load(); got != 5 {
		t.Fatalf("overflowDropped = %d, want 5", got)
	}
	if got := len(n.table.pending[flow].frames); got != maxPendingFrames {
		t.Fatalf("pending holds %d frames, want the %d cap", got, maxPendingFrames)
	}
	if _, ok := n.table.entries[flow]; ok {
		t.Fatal("overflow must not open a cursor (that was the old promote-on-overflow bug)")
	}
}

// TestParkedOverflowDrops: a draining owner's parked buffer is bounded
// the same way.
func TestParkedOverflowDrops(t *testing.T) {
	n := bareNode()
	e := &flowEntry{}
	payload := []byte{1}
	for i := 0; i < maxPendingFrames+3; i++ {
		n.parkLocked(e, uint64(i), 0, payload)
	}
	if got := n.overflowDropped.Load(); got != 3 {
		t.Fatalf("overflowDropped = %d, want 3", got)
	}
	if got := len(e.parked); got != maxPendingFrames {
		t.Fatalf("parked holds %d frames, want the %d cap", got, maxPendingFrames)
	}
	if e.delivered != 0 {
		t.Fatal("parking must never deliver")
	}
}
