package mesh

// Rendezvous (highest-random-weight) steering: every node scores every
// flow with a stateless 64-bit mix of (flowID, nodeID); the owner is the
// highest score. HRW gives the two properties the mesh needs without any
// coordination state:
//
//   - Balance: scores are independent uniform draws, so ownership splits
//     evenly (test-pinned to ±15% across 64 nodes and 1M flows).
//   - Minimal disruption: removing a node only moves the flows it owned
//     (their argmax is gone; every other flow's argmax is untouched),
//     and adding a node only steals the flows it now wins.
//
// The score is a pure function of the two IDs — no seeds, no tables —
// so every node and client computes byte-identical ownership from the
// same membership view.

// NodeID identifies a mesh member.
type NodeID uint32

// NodeNone is the absent-node sentinel (no owner / no previous owner).
const NodeNone NodeID = 0xFFFFFFFF

// Steering is an immutable ownership function over one membership view:
// build a new one when the eligible set changes (epoch bump). The ID
// slice is sorted so iteration order — and therefore tie-breaks — are
// identical on every node.
type Steering struct {
	ids   []NodeID
	epoch uint64
}

// NewSteering builds the ownership function for the given eligible node
// set (copied, sorted) at the given membership epoch.
func NewSteering(ids []NodeID, epoch uint64) *Steering {
	own := make([]NodeID, len(ids))
	copy(own, ids)
	// Insertion sort: the eligible set is small and this avoids pulling
	// sort into the package for one call site.
	for i := 1; i < len(own); i++ {
		for j := i; j > 0 && own[j] < own[j-1]; j-- {
			own[j], own[j-1] = own[j-1], own[j]
		}
	}
	return &Steering{ids: own, epoch: epoch}
}

// Epoch returns the membership epoch this steering function was built at.
func (s *Steering) Epoch() uint64 { return s.epoch }

// Nodes returns the eligible node count.
func (s *Steering) Nodes() int { return len(s.ids) }

// Owner returns the HRW owner of flow, or NodeNone when the eligible set
// is empty. This is the mesh data-path hot function: every Send consults
// it, so it must stay allocation-free (CI-gated at 0 allocs/op).
//
//mpdp:hotpath bench=BenchmarkSteeringOwner
func (s *Steering) Owner(flow uint64) NodeID {
	if len(s.ids) == 0 {
		return NodeNone
	}
	best := s.ids[0]
	bestScore := hrwScore(flow, best)
	for _, id := range s.ids[1:] {
		if sc := hrwScore(flow, id); sc > bestScore {
			bestScore, best = sc, id
		}
	}
	return best
}

// OwnerExcluding returns the HRW owner of flow with one node removed from
// the eligible set — the "who inherits this flow" question a draining
// owner asks without rebuilding the view.
func (s *Steering) OwnerExcluding(flow uint64, excluded NodeID) NodeID {
	best := NodeNone
	var bestScore uint64
	for _, id := range s.ids {
		if id == excluded {
			continue
		}
		if sc := hrwScore(flow, id); best == NodeNone || sc > bestScore {
			bestScore, best = sc, id
		}
	}
	return best
}

// hrwScore mixes (flow, id) through a splitmix64-style finalizer. The
// node term is pre-spread by the golden-ratio constant so adjacent IDs
// land far apart before the avalanche rounds.
func hrwScore(flow uint64, id NodeID) uint64 {
	x := flow ^ (uint64(id)+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
