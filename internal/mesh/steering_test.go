package mesh

import (
	"testing"
)

// TestOwnerBalance drives 1M flows at a 64-node eligible set and checks
// rendezvous hashing spreads them within ±15% of the ideal share.
func TestOwnerBalance(t *testing.T) {
	const nodes = 64
	const flows = 1_000_000
	ids := make([]NodeID, nodes)
	for i := range ids {
		ids[i] = NodeID(i + 1)
	}
	s := NewSteering(ids, 1)
	counts := make(map[NodeID]int, nodes)
	// splitmix64 walk: flow IDs that look nothing like small integers.
	x := uint64(0x243F6A8885A308D3)
	for i := 0; i < flows; i++ {
		x += 0x9E3779B97F4A7C15
		counts[s.Owner(x)]++
	}
	ideal := float64(flows) / nodes
	lo, hi := ideal*0.85, ideal*1.15
	for _, id := range ids {
		c := counts[id]
		if float64(c) < lo || float64(c) > hi {
			t.Errorf("node %d owns %d flows, outside ±15%% of ideal %.0f", id, c, ideal)
		}
	}
	if len(counts) != nodes {
		t.Errorf("only %d of %d nodes own any flows", len(counts), nodes)
	}
}

// TestOwnerBalanceSequentialFlows repeats the balance check on dense
// small-integer flow IDs — the common real-world keyspace.
func TestOwnerBalanceSequentialFlows(t *testing.T) {
	const nodes = 64
	const flows = 1_000_000
	ids := make([]NodeID, nodes)
	for i := range ids {
		ids[i] = NodeID(i + 1)
	}
	s := NewSteering(ids, 1)
	counts := make(map[NodeID]int, nodes)
	for f := uint64(0); f < flows; f++ {
		counts[s.Owner(f)]++
	}
	ideal := float64(flows) / nodes
	for _, id := range ids {
		c := counts[id]
		if float64(c) < ideal*0.85 || float64(c) > ideal*1.15 {
			t.Errorf("node %d owns %d flows, outside ±15%% of ideal %.0f", id, c, ideal)
		}
	}
}

// TestOwnerMinimalDisruption checks HRW's defining property: removing one
// node moves only that node's flows, and every one of them lands on the
// node OwnerExcluding predicted.
func TestOwnerMinimalDisruption(t *testing.T) {
	const nodes = 16
	const flows = 100_000
	ids := make([]NodeID, nodes)
	for i := range ids {
		ids[i] = NodeID(i + 1)
	}
	const removed = NodeID(7)
	survivors := make([]NodeID, 0, nodes-1)
	for _, id := range ids {
		if id != removed {
			survivors = append(survivors, id)
		}
	}
	before := NewSteering(ids, 1)
	after := NewSteering(survivors, 2)
	moved := 0
	for f := uint64(0); f < flows; f++ {
		ob, oa := before.Owner(f), after.Owner(f)
		if ob != removed {
			if oa != ob {
				t.Fatalf("flow %d moved %d→%d though node %d's departure should not affect it", f, ob, oa, removed)
			}
			continue
		}
		moved++
		if want := before.OwnerExcluding(f, removed); oa != want {
			t.Fatalf("flow %d re-steered to %d, want the pre-departure runner-up %d", f, oa, want)
		}
	}
	if moved == 0 {
		t.Fatal("removed node owned no flows; the disruption check never ran")
	}
}

// TestOwnerDeterministic pins byte-determinism: ownership is a pure
// function of (flow, eligible set), independent of insertion order, and
// stable across runs (the exact scores are pinned by the golden gossip
// fixtures; here we pin cross-permutation agreement).
func TestOwnerDeterministic(t *testing.T) {
	ids := []NodeID{5, 1, 9, 3, 7}
	perms := [][]NodeID{
		{5, 1, 9, 3, 7},
		{1, 3, 5, 7, 9},
		{9, 7, 5, 3, 1},
		{3, 9, 1, 7, 5},
	}
	base := NewSteering(ids, 1)
	for f := uint64(0); f < 10_000; f++ {
		want := base.Owner(f)
		for _, p := range perms {
			if got := NewSteering(p, 1).Owner(f); got != want {
				t.Fatalf("flow %d: owner %d under permutation %v, want %d", f, got, p, want)
			}
		}
	}
	// A handful of pinned values so a hash-function change cannot slip
	// through as "consistent but different".
	pinned := map[uint64]NodeID{0: 3, 1: 9, 2: 5, 42: 1, 1 << 40: 3}
	for f, want := range pinned {
		if got := base.Owner(f); got != want {
			t.Fatalf("flow %d: owner %d, want pinned %d (hrwScore changed?)", f, got, want)
		}
	}
}

// TestOwnerEdgeCases covers the degenerate sets.
func TestOwnerEdgeCases(t *testing.T) {
	empty := NewSteering(nil, 3)
	if got := empty.Owner(123); got != NodeNone {
		t.Fatalf("empty steering returned owner %d, want NodeNone", got)
	}
	one := NewSteering([]NodeID{4}, 3)
	if got := one.Owner(123); got != 4 {
		t.Fatalf("single-node steering returned %d, want 4", got)
	}
	if got := one.OwnerExcluding(123, 4); got != NodeNone {
		t.Fatalf("excluding the only node returned %d, want NodeNone", got)
	}
	if e := one.Epoch(); e != 3 {
		t.Fatalf("epoch %d, want 3", e)
	}
}

// BenchmarkSteeringOwner is the hot-path gate for Owner: the client runs
// it on every send.
func BenchmarkSteeringOwner(b *testing.B) {
	ids := make([]NodeID, 16)
	for i := range ids {
		ids[i] = NodeID(i + 1)
	}
	s := NewSteering(ids, 1)
	b.ReportAllocs()
	b.ResetTimer()
	var sink NodeID
	for i := 0; i < b.N; i++ {
		sink = s.Owner(uint64(i))
	}
	_ = sink
}
