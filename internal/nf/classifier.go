package nf

import (
	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// TrafficClass is the label a Classifier assigns.
type TrafficClass uint8

// Canonical classes used by the example chains.
const (
	ClassDefault TrafficClass = iota
	ClassLatencySensitive
	ClassBulk
	ClassControl
)

func (c TrafficClass) String() string {
	switch c {
	case ClassDefault:
		return "default"
	case ClassLatencySensitive:
		return "latency-sensitive"
	case ClassBulk:
		return "bulk"
	case ClassControl:
		return "control"
	default:
		return "class?"
	}
}

// ClassRule maps a five-tuple pattern to a class (same matching semantics
// as firewall rules).
type ClassRule struct {
	Match FWRule // Action field ignored
	Class TrafficClass
}

// Classifier assigns a TrafficClass per packet, stamping it into the IPv4
// TOS field of the real header so downstream elements (and the multipath
// scheduler's class-aware mode) can read it without re-classifying.
type Classifier struct {
	name  string
	rules []ClassRule
	cost  CostModel

	counts [4]uint64
}

// NewClassifier builds a classifier; unmatched packets get ClassDefault.
func NewClassifier(name string, rules []ClassRule) *Classifier {
	return &Classifier{
		name:  name,
		rules: rules,
		cost:  CostModel{Base: 45 * sim.Nanosecond},
	}
}

// Name implements Element.
func (c *Classifier) Name() string { return c.name }

// Classify returns the class for a flow without touching any packet.
func (c *Classifier) Classify(k packet.FlowKey) TrafficClass {
	for _, r := range c.rules {
		if r.Match.Matches(k) {
			return r.Class
		}
	}
	return ClassDefault
}

// Process implements Element.
func (c *Classifier) Process(now sim.Time, p *packet.Packet) Result {
	cost := c.cost.Cost(0) + sim.Duration(len(c.rules))*6*sim.Nanosecond
	class := c.Classify(p.Flow)
	if int(class) < len(c.counts) {
		c.counts[class]++
	}
	// Stamp the class into the TOS byte (DSCP-style) of the real header.
	pr, err := packet.ParseFrame(p.Data)
	if err == nil && pr.IsIP {
		ipOff := pr.IPOffset
		oldTOS := p.Data[ipOff+1]
		newTOS := byte(class) << 2
		if oldTOS != newTOS {
			old16 := uint16(p.Data[ipOff])<<8 | uint16(oldTOS)
			new16 := uint16(p.Data[ipOff])<<8 | uint16(newTOS)
			p.Data[ipOff+1] = newTOS
			sum := uint16(p.Data[ipOff+10])<<8 | uint16(p.Data[ipOff+11])
			sum = packet.UpdateChecksum16(sum, old16, new16)
			p.Data[ipOff+10] = byte(sum >> 8)
			p.Data[ipOff+11] = byte(sum)
		}
	}
	return Result{Verdict: packet.Pass, Cost: cost}
}

// ClassOf reads the class previously stamped into a packet's TOS field,
// returning ClassDefault for unstamped or non-IP packets.
func ClassOf(p *packet.Packet) TrafficClass {
	pr, err := packet.ParseFrame(p.Data)
	if err != nil || !pr.IsIP {
		return ClassDefault
	}
	return TrafficClass(pr.IP.TOS >> 2)
}

// Counts returns per-class packet counts.
func (c *Classifier) Counts() [4]uint64 { return c.counts }
