package nf

import (
	"fmt"

	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// Composition structures beyond the linear chain, following the NF-
// composition line of work this paper builds on (subgraph-level
// composition with delay-balanced parallelism):
//
//   - Branch: classify once, then run one of several sub-chains
//     (fast-path / slow-path splits).
//   - ParallelGroup: run independent elements "vertically parallel" on
//     packet copies and merge — latency becomes max(branch costs) plus a
//     copy/merge overhead instead of the sum.

// Branch selects one sub-chain per packet. The selector must return an
// index in [0, len(branches)); the zero branch is the conventional
// default/fast path.
type Branch struct {
	name     string
	selector func(p *packet.Packet) int
	branches []*Chain
	selCost  sim.Duration

	taken []uint64
}

// NewBranch builds a branching stage. It panics on a nil selector or empty
// branch set.
func NewBranch(name string, selector func(p *packet.Packet) int, branches ...*Chain) *Branch {
	if selector == nil {
		panic("nf: NewBranch with nil selector")
	}
	if len(branches) == 0 {
		panic("nf: NewBranch with no branches")
	}
	return &Branch{
		name:     name,
		selector: selector,
		branches: branches,
		selCost:  25 * sim.Nanosecond,
		taken:    make([]uint64, len(branches)),
	}
}

// Name implements Element.
func (b *Branch) Name() string { return b.name }

// Process implements Element.
func (b *Branch) Process(now sim.Time, p *packet.Packet) Result {
	i := b.selector(p)
	if i < 0 || i >= len(b.branches) {
		panic(fmt.Sprintf("nf: branch %s selector returned %d of %d", b.name, i, len(b.branches)))
	}
	b.taken[i]++
	r := b.branches[i].Process(now, p)
	r.Cost += b.selCost
	return r
}

// Taken returns how many packets took each branch.
func (b *Branch) Taken() []uint64 {
	out := make([]uint64, len(b.taken))
	copy(out, b.taken)
	return out
}

// String lists the branch structure.
func (b *Branch) String() string {
	s := b.name + "{"
	for i, c := range b.branches {
		if i > 0 {
			s += " | "
		}
		s += c.String()
	}
	return s + "}"
}

// ParallelGroup runs its members conceptually in parallel on packet copies
// and merges the results: the group's latency cost is the *maximum* member
// cost (not the sum) plus a per-copy overhead and a merge step. Any member
// dropping the packet drops it (IPS semantics) — the merge waits for all
// members, so the slowest member still bounds the cost.
//
// Members must be mutation-disjoint: at most one member may rewrite packet
// bytes, and it is listed first so its mutations are the ones that survive
// the merge (mirroring how parallel NF frameworks restrict write-write
// conflicts). Read-only members (monitors, DPI, counters) compose freely.
type ParallelGroup struct {
	name    string
	members []Element
	// copyCost models the per-member packet-copy overhead and mergeCost
	// the result-reconciliation step, the two overheads that make full NF
	// parallelism non-free.
	copyCost  CostModel
	mergeCost sim.Duration

	processed uint64
	dropped   uint64
}

// NewParallelGroup builds the group. It panics on fewer than two members
// (a group of one is just the element).
func NewParallelGroup(name string, members ...Element) *ParallelGroup {
	if len(members) < 2 {
		panic("nf: NewParallelGroup needs at least two members")
	}
	for i, m := range members {
		if m == nil {
			panic(fmt.Sprintf("nf: NewParallelGroup member %d is nil", i))
		}
	}
	return &ParallelGroup{
		name:      name,
		members:   members,
		copyCost:  CostModel{Base: 40 * sim.Nanosecond, PerByte: 8 * sim.Nanosecond},
		mergeCost: 60 * sim.Nanosecond,
	}
}

// Name implements Element.
func (g *ParallelGroup) Name() string { return g.name }

// Process implements Element.
func (g *ParallelGroup) Process(now sim.Time, p *packet.Packet) Result {
	g.processed++
	var maxCost sim.Duration
	verdict := packet.Pass
	for i, m := range g.members {
		var r Result
		if i == 0 {
			// The (single permitted) mutating member works on the real
			// packet; its rewrites survive the merge.
			r = m.Process(now, p)
		} else {
			// Read-only members see a copy-on-write view; simulate the
			// copy's cost without materializing it (their reads cannot
			// change the frame).
			r = m.Process(now, p)
		}
		cost := r.Cost + g.copyCost.Cost(p.Size())
		if cost > maxCost {
			maxCost = cost
		}
		if r.Verdict == packet.Drop {
			verdict = packet.Drop
		} else if r.Verdict == packet.Consume && verdict == packet.Pass {
			verdict = packet.Consume
		}
	}
	if verdict == packet.Drop {
		g.dropped++
	}
	return Result{Verdict: verdict, Cost: maxCost + g.mergeCost}
}

// Dropped returns how many packets any member dropped.
func (g *ParallelGroup) Dropped() uint64 { return g.dropped }

// String lists the group members.
func (g *ParallelGroup) String() string {
	s := g.name + "("
	for i, m := range g.members {
		if i > 0 {
			s += " || "
		}
		s += m.Name()
	}
	return s + ")"
}

// SequentialCost probes the cost a chain of the same members would pay for
// a packet like p (sum of member costs, no copy/merge overhead) — used by
// composition experiments to quantify the parallelism win. The probe runs
// against throwaway state, so callers should pass replica elements.
func SequentialCost(now sim.Time, members []Element, p *packet.Packet) sim.Duration {
	var total sim.Duration
	for _, m := range members {
		r := m.Process(now, p)
		total += r.Cost
	}
	return total
}
