package nf

import (
	"testing"

	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

func fixedElem(name string, cost sim.Duration, verdict packet.Verdict) Element {
	return Func{ElemName: name, Fn: func(now sim.Time, p *packet.Packet) Result {
		return Result{Verdict: verdict, Cost: cost}
	}}
}

func TestBranchRoutesBySelector(t *testing.T) {
	fast := NewChain("fast", fixedElem("f", 100, packet.Pass))
	slow := NewChain("slow", fixedElem("s", 10_000, packet.Pass))
	b := NewBranch("split", func(p *packet.Packet) int {
		if p.Flow.DstPort == 80 {
			return 0
		}
		return 1
	}, fast, slow)

	web := mkUDP(t, tenantKey(1, 80), nil)
	rWeb := b.Process(0, web)
	if rWeb.Verdict != packet.Pass || rWeb.Cost >= 1000 {
		t.Fatalf("fast path result %+v", rWeb)
	}
	other := mkUDP(t, tenantKey(1, 9999), nil)
	rOther := b.Process(0, other)
	if rOther.Cost < 10_000 {
		t.Fatalf("slow path cost %v", rOther.Cost)
	}
	taken := b.Taken()
	if taken[0] != 1 || taken[1] != 1 {
		t.Fatalf("taken %v", taken)
	}
}

func TestBranchInvalidSelectorPanics(t *testing.T) {
	b := NewBranch("x", func(*packet.Packet) int { return 5 },
		NewChain("a", fixedElem("a", 1, packet.Pass)))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range selector did not panic")
		}
	}()
	b.Process(0, mkUDP(t, tenantKey(1, 80), nil))
}

func TestBranchConstructionValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil-selector": func() { NewBranch("x", nil, NewChain("a", fixedElem("a", 1, packet.Pass))) },
		"no-branches":  func() { NewBranch("x", func(*packet.Packet) int { return 0 }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBranchInChain(t *testing.T) {
	// A fast-path/slow-path edge: web traffic skips DPI entirely.
	dpi := NewDPI("dpi", DefaultSignatures, false)
	fast := NewChain("fast", fixedElem("noop", 10, packet.Pass))
	slow := NewChain("slow", dpi)
	b := NewBranch("fp", func(p *packet.Packet) int {
		if p.Flow.DstPort == 80 {
			return 0
		}
		return 1
	}, fast, slow)
	edge := NewChain("edge", PresetFirewall(5), b)
	p := mkUDP(t, tenantKey(1, 80), make([]byte, 1000))
	if r := edge.Process(0, p); r.Verdict != packet.Pass {
		t.Fatal("edge dropped")
	}
	if dpi.Scanned() != 0 {
		t.Fatal("fast path still hit DPI")
	}
}

func TestParallelGroupCostIsMax(t *testing.T) {
	g := NewParallelGroup("par",
		fixedElem("cheap", 100, packet.Pass),
		fixedElem("mid", 500, packet.Pass),
		fixedElem("dear", 2000, packet.Pass),
	)
	p := mkUDP(t, tenantKey(1, 80), make([]byte, 64))
	r := g.Process(0, p)
	if r.Verdict != packet.Pass {
		t.Fatalf("verdict %v", r.Verdict)
	}
	// Cost = max member (2000) + copy overhead + merge; must be far below
	// the sequential sum (2600+).
	if r.Cost < 2000 || r.Cost >= 2600 {
		t.Fatalf("parallel cost %v, want [2000, 2600)", r.Cost)
	}
}

func TestParallelGroupDropsIfAnyDrops(t *testing.T) {
	g := NewParallelGroup("par",
		fixedElem("pass", 100, packet.Pass),
		fixedElem("deny", 100, packet.Drop),
	)
	p := mkUDP(t, tenantKey(1, 80), nil)
	if r := g.Process(0, p); r.Verdict != packet.Drop {
		t.Fatal("member drop not propagated")
	}
	if g.Dropped() != 1 {
		t.Fatal("drop not counted")
	}
}

func TestParallelGroupMutatorFirstSurvives(t *testing.T) {
	// The mutating member (NAT) is first; read-only members (monitor,
	// DPI) observe. The NAT rewrite must be present after the group.
	nat := NewNAT("nat", packet.IP4(10, 0, 0, 0), 16, NATExternalIP)
	mon := NewMonitor("mon")
	dpi := NewDPI("dpi", DefaultSignatures, false)
	g := NewParallelGroup("par", nat, mon, dpi)
	p := mkUDP(t, tenantKey(3, 80), []byte("req"))
	if r := g.Process(0, p); r.Verdict != packet.Pass {
		t.Fatal("group dropped")
	}
	if p.Flow.SrcIP != NATExternalIP {
		t.Fatal("mutating member's rewrite lost")
	}
	if mon.Flows() != 1 || dpi.Scanned() != 1 {
		t.Fatal("read-only members did not run")
	}
}

func TestParallelGroupValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"one-member": func() { NewParallelGroup("x", fixedElem("a", 1, packet.Pass)) },
		"nil-member": func() { NewParallelGroup("x", fixedElem("a", 1, packet.Pass), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestParallelBeatsSequentialForHeavyMembers(t *testing.T) {
	// The composition claim: for members of comparable, substantial cost,
	// the parallel group's max+overhead beats the chain's sum.
	mk := func() []Element {
		return []Element{
			NewDPI("dpi1", DefaultSignatures, false),
			NewDPI("dpi2", []string{"other-sig-set-alpha", "other-sig-set-beta"}, false),
			NewMonitor("mon"),
		}
	}
	p := mkUDP(t, tenantKey(1, 80), make([]byte, 1200))
	seq := SequentialCost(0, mk(), mkUDP(t, tenantKey(1, 80), make([]byte, 1200)))
	g := NewParallelGroup("par", mk()...)
	par := g.Process(0, p).Cost
	if par >= seq {
		t.Fatalf("parallel %v not below sequential %v", par, seq)
	}
}

func TestComposeStrings(t *testing.T) {
	b := NewBranch("br", func(*packet.Packet) int { return 0 },
		NewChain("a", fixedElem("a", 1, packet.Pass)))
	if b.String() == "" {
		t.Fatal("empty branch string")
	}
	g := NewParallelGroup("pg", fixedElem("x", 1, packet.Pass), fixedElem("y", 1, packet.Pass))
	if g.String() != "pg(x || y)" {
		t.Fatalf("group string %q", g.String())
	}
}
