package nf

import (
	"fmt"

	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// ConnState is a tracked connection's lifecycle state.
type ConnState uint8

const (
	// StateSynSent: initiator's SYN seen, waiting for SYN-ACK.
	StateSynSent ConnState = iota
	// StateSynRecv: SYN-ACK seen, waiting for the final ACK.
	StateSynRecv
	// StateEstablished: three-way handshake complete.
	StateEstablished
	// StateFinWait: one side sent FIN; draining.
	StateFinWait
	// StateClosed: both FINs (or an RST) seen.
	StateClosed
)

func (s ConnState) String() string {
	switch s {
	case StateSynSent:
		return "syn-sent"
	case StateSynRecv:
		return "syn-recv"
	case StateEstablished:
		return "established"
	case StateFinWait:
		return "fin-wait"
	case StateClosed:
		return "closed"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// connEntry tracks one TCP connection (or UDP pseudo-connection).
type connEntry struct {
	orig     packet.FlowKey // initiator's direction
	state    ConnState
	lastSeen sim.Time
	packets  uint64
	finSeen  [2]bool // orig / reply FIN flags
}

// ConnTracker is a stateful connection-tracking element (a stateful
// firewall): it follows the TCP handshake/teardown state machine per
// connection and, in strict mode, drops packets that do not belong to a
// legitimate progression — mid-stream packets for unknown connections, data
// before the handshake completes, anything after close. UDP flows are
// tracked as pseudo-connections that any packet may create.
//
// Idle entries expire per-state (short for handshakes, long for
// established), reclaiming table space like a production conntrack.
type ConnTracker struct {
	name   string
	strict bool
	conns  map[uint64]*connEntry

	// Per-state idle timeouts.
	SynTimeout sim.Duration
	EstTimeout sim.Duration
	FinTimeout sim.Duration
	UDPTimeout sim.Duration

	hitCost  CostModel
	missCost CostModel

	created   uint64
	dropped   uint64
	expired   uint64
	completed uint64 // connections that reached StateEstablished
}

// NewConnTracker builds the element. strict drops out-of-state packets;
// non-strict only tracks and counts.
func NewConnTracker(name string, strict bool) *ConnTracker {
	return &ConnTracker{
		name:       name,
		strict:     strict,
		conns:      make(map[uint64]*connEntry),
		SynTimeout: 30 * sim.Second,
		EstTimeout: 300 * sim.Second,
		FinTimeout: 60 * sim.Second,
		UDPTimeout: 120 * sim.Second,
		hitCost:    CostModel{Base: 60 * sim.Nanosecond},
		missCost:   CostModel{Base: 200 * sim.Nanosecond},
	}
}

// Name implements Element.
func (ct *ConnTracker) Name() string { return ct.name }

// Process implements Element.
func (ct *ConnTracker) Process(now sim.Time, p *packet.Packet) Result {
	switch p.Flow.Proto {
	case packet.ProtoTCP:
		return ct.processTCP(now, p)
	case packet.ProtoUDP:
		return ct.processUDP(now, p)
	default:
		// Non-transport traffic is outside conntrack's remit.
		return Result{Verdict: packet.Pass, Cost: ct.hitCost.Cost(0)}
	}
}

func (ct *ConnTracker) processUDP(now sim.Time, p *packet.Packet) Result {
	key := p.Flow.SymmetricHash64()
	e, ok := ct.conns[key]
	if !ok {
		ct.created++
		e = &connEntry{orig: p.Flow, state: StateEstablished}
		ct.conns[key] = e
		e.lastSeen = now
		e.packets++
		return Result{Verdict: packet.Pass, Cost: ct.missCost.Cost(0)}
	}
	e.lastSeen = now
	e.packets++
	return Result{Verdict: packet.Pass, Cost: ct.hitCost.Cost(0)}
}

func (ct *ConnTracker) processTCP(now sim.Time, p *packet.Packet) Result {
	pr, err := packet.ParseFrame(p.Data)
	if err != nil || !pr.HasTCP {
		return ct.drop(p, ct.missCost.Cost(0))
	}
	flags := pr.TCP.Flags
	key := p.Flow.SymmetricHash64()
	e, ok := ct.conns[key]

	if !ok {
		// Only a bare SYN may create a connection.
		if flags&packet.TCPSyn != 0 && flags&packet.TCPAck == 0 {
			ct.created++
			ct.conns[key] = &connEntry{orig: p.Flow, state: StateSynSent, lastSeen: now, packets: 1}
			return Result{Verdict: packet.Pass, Cost: ct.missCost.Cost(0)}
		}
		if ct.strict {
			return ct.drop(p, ct.missCost.Cost(0))
		}
		// Loose mode adopts mid-stream traffic as established.
		ct.created++
		ct.conns[key] = &connEntry{orig: p.Flow, state: StateEstablished, lastSeen: now, packets: 1}
		return Result{Verdict: packet.Pass, Cost: ct.missCost.Cost(0)}
	}

	e.lastSeen = now
	e.packets++
	cost := ct.hitCost.Cost(0)
	fromOrig := p.Flow == e.orig

	// RST kills the connection from any state.
	if flags&packet.TCPRst != 0 {
		e.state = StateClosed
		delete(ct.conns, key)
		return Result{Verdict: packet.Pass, Cost: cost}
	}

	switch e.state {
	case StateSynSent:
		if !fromOrig && flags&packet.TCPSyn != 0 && flags&packet.TCPAck != 0 {
			e.state = StateSynRecv
			return Result{Verdict: packet.Pass, Cost: cost}
		}
		if fromOrig && flags&packet.TCPSyn != 0 {
			// SYN retransmission.
			return Result{Verdict: packet.Pass, Cost: cost}
		}
		return ct.maybeDrop(p, cost)
	case StateSynRecv:
		if fromOrig && flags&packet.TCPAck != 0 {
			e.state = StateEstablished
			ct.completed++
			if flags&packet.TCPFin != 0 {
				e.state = StateFinWait
				e.finSeen[dirIndex(fromOrig)] = true
			}
			return Result{Verdict: packet.Pass, Cost: cost}
		}
		if !fromOrig && flags&packet.TCPSyn != 0 {
			// SYN-ACK retransmission.
			return Result{Verdict: packet.Pass, Cost: cost}
		}
		return ct.maybeDrop(p, cost)
	case StateEstablished:
		if flags&packet.TCPFin != 0 {
			e.state = StateFinWait
			e.finSeen[dirIndex(fromOrig)] = true
		}
		return Result{Verdict: packet.Pass, Cost: cost}
	case StateFinWait:
		if flags&packet.TCPFin != 0 {
			e.finSeen[dirIndex(fromOrig)] = true
		}
		if e.finSeen[0] && e.finSeen[1] && flags&packet.TCPAck != 0 {
			e.state = StateClosed
			delete(ct.conns, key)
		}
		return Result{Verdict: packet.Pass, Cost: cost}
	default: // StateClosed
		return ct.maybeDrop(p, cost)
	}
}

func dirIndex(fromOrig bool) int {
	if fromOrig {
		return 0
	}
	return 1
}

func (ct *ConnTracker) maybeDrop(p *packet.Packet, cost sim.Duration) Result {
	if ct.strict {
		return ct.drop(p, cost)
	}
	return Result{Verdict: packet.Pass, Cost: cost}
}

func (ct *ConnTracker) drop(p *packet.Packet, cost sim.Duration) Result {
	ct.dropped++
	p.Dropped = packet.DropPolicy
	return Result{Verdict: packet.Drop, Cost: cost}
}

// Expire reclaims idle entries. Returns how many were removed.
func (ct *ConnTracker) Expire(now sim.Time) int {
	removed := 0
	for key, e := range ct.conns {
		var timeout sim.Duration
		switch {
		case e.orig.Proto == packet.ProtoUDP:
			timeout = ct.UDPTimeout
		case e.state == StateEstablished:
			timeout = ct.EstTimeout
		case e.state == StateFinWait:
			timeout = ct.FinTimeout
		default:
			timeout = ct.SynTimeout
		}
		if now-e.lastSeen > timeout {
			delete(ct.conns, key)
			ct.expired++
			removed++
		}
	}
	return removed
}

// StateOf returns the tracked state of a flow's connection.
func (ct *ConnTracker) StateOf(k packet.FlowKey) (ConnState, bool) {
	e, ok := ct.conns[k.SymmetricHash64()]
	if !ok {
		return 0, false
	}
	return e.state, true
}

// Connections returns the number of live tracked entries.
func (ct *ConnTracker) Connections() int { return len(ct.conns) }

// Created returns the number of entries ever created.
func (ct *ConnTracker) Created() uint64 { return ct.created }

// DroppedCount returns packets dropped for state violations.
func (ct *ConnTracker) DroppedCount() uint64 { return ct.dropped }

// Completed returns connections that finished the three-way handshake.
func (ct *ConnTracker) Completed() uint64 { return ct.completed }
