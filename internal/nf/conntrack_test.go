package nf

import (
	"testing"

	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// tcpPkt builds a TCP test packet with the given flags.
func tcpPkt(t testing.TB, key packet.FlowKey, flags uint8, payload []byte) *packet.Packet {
	t.Helper()
	key.Proto = packet.ProtoTCP
	frame := packet.BuildTCP(key, payload, packet.BuildOpts{TCPFlags: flags})
	return &packet.Packet{Data: frame, Flow: key, FlowID: key.Hash64()}
}

func tcpClientKey() packet.FlowKey {
	return packet.FlowKey{
		SrcIP: packet.IP4(10, 0, 0, 1), DstIP: packet.IP4(10, 1, 0, 5),
		SrcPort: 41000, DstPort: 443, Proto: packet.ProtoTCP,
	}
}

// handshake drives a full three-way handshake through the tracker.
func handshake(t *testing.T, ct *ConnTracker, key packet.FlowKey, now sim.Time) {
	t.Helper()
	steps := []struct {
		key   packet.FlowKey
		flags uint8
	}{
		{key, packet.TCPSyn},
		{key.Reverse(), packet.TCPSyn | packet.TCPAck},
		{key, packet.TCPAck},
	}
	for i, st := range steps {
		if r := ct.Process(now+sim.Time(i), tcpPkt(t, st.key, st.flags, nil)); r.Verdict != packet.Pass {
			t.Fatalf("handshake step %d dropped", i)
		}
	}
}

func TestConnTrackerHandshake(t *testing.T) {
	ct := NewConnTracker("ct", true)
	key := tcpClientKey()

	syn := tcpPkt(t, key, packet.TCPSyn, nil)
	if r := ct.Process(0, syn); r.Verdict != packet.Pass {
		t.Fatal("SYN dropped")
	}
	if st, ok := ct.StateOf(key); !ok || st != StateSynSent {
		t.Fatalf("state after SYN: %v %v", st, ok)
	}

	synack := tcpPkt(t, key.Reverse(), packet.TCPSyn|packet.TCPAck, nil)
	if r := ct.Process(1, synack); r.Verdict != packet.Pass {
		t.Fatal("SYN-ACK dropped")
	}
	if st, _ := ct.StateOf(key); st != StateSynRecv {
		t.Fatalf("state after SYN-ACK: %v", st)
	}

	ack := tcpPkt(t, key, packet.TCPAck, nil)
	if r := ct.Process(2, ack); r.Verdict != packet.Pass {
		t.Fatal("final ACK dropped")
	}
	if st, _ := ct.StateOf(key); st != StateEstablished {
		t.Fatalf("state after ACK: %v", st)
	}
	if ct.Completed() != 1 || ct.Created() != 1 {
		t.Fatalf("counters: completed=%d created=%d", ct.Completed(), ct.Created())
	}

	// Both directions of data flow now pass.
	if r := ct.Process(3, tcpPkt(t, key, packet.TCPAck|packet.TCPPsh, []byte("req"))); r.Verdict != packet.Pass {
		t.Fatal("established data dropped (orig)")
	}
	if r := ct.Process(4, tcpPkt(t, key.Reverse(), packet.TCPAck|packet.TCPPsh, []byte("resp"))); r.Verdict != packet.Pass {
		t.Fatal("established data dropped (reply)")
	}
}

func TestConnTrackerStrictDropsMidStream(t *testing.T) {
	ct := NewConnTracker("ct", true)
	p := tcpPkt(t, tcpClientKey(), packet.TCPAck|packet.TCPPsh, []byte("x"))
	if r := ct.Process(0, p); r.Verdict != packet.Drop {
		t.Fatal("mid-stream packet for unknown connection passed strict mode")
	}
	if p.Dropped != packet.DropPolicy {
		t.Fatal("drop reason not stamped")
	}
	if ct.DroppedCount() != 1 {
		t.Fatal("drop not counted")
	}
}

func TestConnTrackerLooseAdoptsMidStream(t *testing.T) {
	ct := NewConnTracker("ct", false)
	key := tcpClientKey()
	if r := ct.Process(0, tcpPkt(t, key, packet.TCPAck, nil)); r.Verdict != packet.Pass {
		t.Fatal("loose mode dropped mid-stream packet")
	}
	if st, ok := ct.StateOf(key); !ok || st != StateEstablished {
		t.Fatalf("loose adoption state: %v %v", st, ok)
	}
}

func TestConnTrackerStrictDropsDataBeforeHandshake(t *testing.T) {
	ct := NewConnTracker("ct", true)
	key := tcpClientKey()
	ct.Process(0, tcpPkt(t, key, packet.TCPSyn, nil))
	// Data from the responder without a SYN-ACK: bogus.
	p := tcpPkt(t, key.Reverse(), packet.TCPPsh, []byte("x"))
	if r := ct.Process(1, p); r.Verdict != packet.Drop {
		t.Fatal("pre-handshake data passed")
	}
}

func TestConnTrackerFinTeardown(t *testing.T) {
	ct := NewConnTracker("ct", true)
	key := tcpClientKey()
	handshake(t, ct, key, 0)

	// Orig FIN.
	ct.Process(10, tcpPkt(t, key, packet.TCPFin|packet.TCPAck, nil))
	if st, _ := ct.StateOf(key); st != StateFinWait {
		t.Fatalf("state after first FIN: %v", st)
	}
	// Reply FIN+ACK completes the close.
	ct.Process(11, tcpPkt(t, key.Reverse(), packet.TCPFin|packet.TCPAck, nil))
	if _, ok := ct.StateOf(key); ok {
		t.Fatal("connection not removed after both FINs")
	}
	if ct.Connections() != 0 {
		t.Fatal("table not empty")
	}
}

func TestConnTrackerRSTKills(t *testing.T) {
	ct := NewConnTracker("ct", true)
	key := tcpClientKey()
	handshake(t, ct, key, 0)
	ct.Process(5, tcpPkt(t, key.Reverse(), packet.TCPRst, nil))
	if _, ok := ct.StateOf(key); ok {
		t.Fatal("RST did not remove the connection")
	}
	// Further traffic is now out of state.
	if r := ct.Process(6, tcpPkt(t, key, packet.TCPAck, nil)); r.Verdict != packet.Drop {
		t.Fatal("post-RST traffic passed strict mode")
	}
}

func TestConnTrackerSynRetransmission(t *testing.T) {
	ct := NewConnTracker("ct", true)
	key := tcpClientKey()
	ct.Process(0, tcpPkt(t, key, packet.TCPSyn, nil))
	if r := ct.Process(1, tcpPkt(t, key, packet.TCPSyn, nil)); r.Verdict != packet.Pass {
		t.Fatal("SYN retransmission dropped")
	}
	if ct.Created() != 1 {
		t.Fatal("retransmission created a second entry")
	}
}

func TestConnTrackerUDPPseudoConnections(t *testing.T) {
	ct := NewConnTracker("ct", true)
	key := tenantKey(1, 53)
	p1 := mkUDP(t, key, []byte("query"))
	if r := ct.Process(0, p1); r.Verdict != packet.Pass {
		t.Fatal("UDP first packet dropped")
	}
	// Reply direction shares the entry (symmetric hash).
	rev := key.Reverse()
	p2 := mkUDP(t, rev, []byte("answer"))
	if r := ct.Process(1, p2); r.Verdict != packet.Pass {
		t.Fatal("UDP reply dropped")
	}
	if ct.Connections() != 1 {
		t.Fatalf("UDP bidirectional flow created %d entries", ct.Connections())
	}
}

func TestConnTrackerExpiry(t *testing.T) {
	ct := NewConnTracker("ct", true)
	ct.EstTimeout = 10 * sim.Second
	ct.SynTimeout = 2 * sim.Second
	keyA := tcpClientKey()
	handshake(t, ct, keyA, 0)
	keyB := keyA
	keyB.SrcPort = 41001
	ct.Process(0, tcpPkt(t, keyB, packet.TCPSyn, nil)) // half-open

	// Half-open expires first.
	if n := ct.Expire(5 * sim.Second); n != 1 {
		t.Fatalf("expired %d, want 1 (half-open)", n)
	}
	if _, ok := ct.StateOf(keyA); !ok {
		t.Fatal("established connection expired too early")
	}
	if n := ct.Expire(20 * sim.Second); n != 1 {
		t.Fatalf("expired %d, want 1 (established)", n)
	}
}

func TestConnTrackerNonTransportPasses(t *testing.T) {
	ct := NewConnTracker("ct", true)
	key := tenantKey(1, 0)
	key.Proto = packet.ProtoICMP
	p := &packet.Packet{Data: packet.BuildUDP(tenantKey(1, 1), nil, packet.BuildOpts{}), Flow: key}
	if r := ct.Process(0, p); r.Verdict != packet.Pass {
		t.Fatal("non-transport dropped")
	}
}

func TestConnTrackerInChain(t *testing.T) {
	// A realistic stateful edge: conntrack + firewall. A full handshake
	// then data passes; unsolicited data is dropped by state, not by ACL.
	ct := NewConnTracker("ct", true)
	chain := NewChain("edge", ct, PresetFirewall(10))
	key := tcpClientKey()
	if r := chain.Process(0, tcpPkt(t, key, packet.TCPSyn, nil)); r.Verdict != packet.Pass {
		t.Fatal("SYN dropped by chain")
	}
	stray := tcpClientKey()
	stray.SrcPort = 49999
	if r := chain.Process(1, tcpPkt(t, stray, packet.TCPAck, nil)); r.Verdict != packet.Drop {
		t.Fatal("stray mid-stream packet passed the chain")
	}
}

func TestConnStateStrings(t *testing.T) {
	for _, s := range []ConnState{StateSynSent, StateSynRecv, StateEstablished, StateFinWait, StateClosed} {
		if s.String() == "" {
			t.Fatal("empty state string")
		}
	}
}

func BenchmarkConnTrackerEstablished(b *testing.B) {
	ct := NewConnTracker("ct", true)
	key := tcpClientKey()
	// Handshake.
	frames := []*packet.Packet{
		tcpPkt(b, key, packet.TCPSyn, nil),
		tcpPkt(b, key.Reverse(), packet.TCPSyn|packet.TCPAck, nil),
		tcpPkt(b, key, packet.TCPAck, nil),
	}
	for i, f := range frames {
		ct.Process(sim.Time(i), f)
	}
	data := tcpPkt(b, key, packet.TCPAck|packet.TCPPsh, make([]byte, 256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct.Process(sim.Time(i+10), data)
	}
}
