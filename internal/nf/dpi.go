package nf

import (
	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// DPI is a deep-packet-inspection element: an Aho–Corasick multi-pattern
// automaton scanned over the transport payload of every packet. Matching
// packets are dropped (IPS mode) or passed with a counter bump (IDS mode).
//
// DPI is the "expensive element" of the chain: its cost scales with payload
// length, so large packets behind it cause the head-of-line blocking that
// multipath is designed to route around.
type DPI struct {
	name string
	ac   *ahoCorasick
	ips  bool // drop on match
	cost CostModel

	scanned uint64
	matches uint64
}

// NewDPI builds a DPI element for the given signature set. ips=true drops
// matching packets; ips=false only counts them.
func NewDPI(name string, signatures []string, ips bool) *DPI {
	return &DPI{
		name: name,
		ac:   newAhoCorasick(signatures),
		ips:  ips,
		// ~1.5 ns per scanned cache line of payload + fixed overhead,
		// matching software IDS throughput on commodity cores.
		cost: CostModel{Base: 120 * sim.Nanosecond, PerByte: 96 * sim.Nanosecond},
	}
}

// Name implements Element.
func (d *DPI) Name() string { return d.name }

// Process implements Element.
func (d *DPI) Process(now sim.Time, p *packet.Packet) Result {
	pr, err := packet.ParseFrame(p.Data)
	cost := d.cost.Base
	if err != nil || !pr.IsIP {
		p.Dropped = packet.DropPolicy
		return Result{Verdict: packet.Drop, Cost: cost}
	}
	payload := pr.Payload(p.Data)
	cost = d.cost.Cost(len(payload))
	d.scanned++
	if d.ac.match(payload) {
		d.matches++
		if d.ips {
			p.Dropped = packet.DropPolicy
			return Result{Verdict: packet.Drop, Cost: cost}
		}
	}
	return Result{Verdict: packet.Pass, Cost: cost}
}

// Matches returns the number of packets that hit a signature.
func (d *DPI) Matches() uint64 { return d.matches }

// Scanned returns the number of payloads scanned.
func (d *DPI) Scanned() uint64 { return d.scanned }

// ahoCorasick is a byte-level Aho–Corasick automaton with goto, failure and
// output functions, built once at construction.
type ahoCorasick struct {
	next [][256]int32 // goto function; -1 = undefined before failure resolution
	fail []int32
	out  []bool // state has at least one pattern ending here
}

func newAhoCorasick(patterns []string) *ahoCorasick {
	ac := &ahoCorasick{}
	ac.addState() // root

	// Build the trie.
	for _, pat := range patterns {
		if pat == "" {
			continue
		}
		state := int32(0)
		for i := 0; i < len(pat); i++ {
			c := pat[i]
			if ac.next[state][c] == -1 {
				ac.next[state][c] = ac.addState()
			}
			state = ac.next[state][c]
		}
		ac.out[state] = true
	}

	// BFS to fill failure links and complete the goto function.
	queue := make([]int32, 0, len(ac.next))
	for c := 0; c < 256; c++ {
		s := ac.next[0][c]
		if s == -1 {
			ac.next[0][c] = 0
			continue
		}
		ac.fail[s] = 0
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for c := 0; c < 256; c++ {
			v := ac.next[u][c]
			if v == -1 {
				ac.next[u][c] = ac.next[ac.fail[u]][c]
				continue
			}
			ac.fail[v] = ac.next[ac.fail[u]][c]
			if ac.out[ac.fail[v]] {
				ac.out[v] = true
			}
			queue = append(queue, v)
		}
	}
	return ac
}

func (ac *ahoCorasick) addState() int32 {
	var row [256]int32
	for i := range row {
		row[i] = -1
	}
	ac.next = append(ac.next, row)
	ac.fail = append(ac.fail, 0)
	ac.out = append(ac.out, false)
	return int32(len(ac.next) - 1)
}

// match reports whether any pattern occurs in data.
func (ac *ahoCorasick) match(data []byte) bool {
	state := int32(0)
	for _, c := range data {
		state = ac.next[state][c]
		if ac.out[state] {
			return true
		}
	}
	return false
}
