package nf

import (
	"strings"
	"testing"

	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// Edge cases and accessor coverage across the element library.

func TestElementNamesAndStrings(t *testing.T) {
	els := []Element{
		NewFirewall("fw", nil, true),
		NewNAT("nat", packet.IP4(10, 0, 0, 0), 16, NATExternalIP),
		NewRouter("rt"),
		NewDPI("dpi", DefaultSignatures, false),
		NewLoadBalancer("lb", LBVirtualIP, []uint32{1}),
		NewRateLimiter("rl", 1e9, 1e6, false),
		NewMonitor("mon"),
		NewVXLANEncap("vt", 1, 2, 3),
		NewVXLANDecap("vd", 1),
		NewClassifier("cls", nil),
		NewConnTracker("ct", true),
		NewBranch("br", func(*packet.Packet) int { return 0 }, NewChain("c", PresetRouter())),
		NewParallelGroup("pg", NewMonitor("m1"), NewMonitor("m2")),
	}
	for _, e := range els {
		if e.Name() == "" {
			t.Errorf("%T has empty name", e)
		}
	}
	// Stringers used in logs and chain listings.
	for _, s := range []string{
		NewFirewall("fw", nil, true).String(),
		NewNAT("nat", 0, 16, 1).String(),
		NewLoadBalancer("lb", LBVirtualIP, []uint32{1}).String(),
	} {
		if s == "" {
			t.Error("empty String()")
		}
	}
}

func TestChainElementsAccessor(t *testing.T) {
	c := PresetChain(3)
	if len(c.Elements()) != 3 {
		t.Fatalf("Elements() = %d", len(c.Elements()))
	}
}

func TestNATPortExhaustionAndReclaim(t *testing.T) {
	nat := NewNAT("nat", packet.IP4(10, 0, 0, 0), 16, NATExternalIP)
	// Shrink the pool to 3 ports for the test.
	nat.portMin, nat.portNext, nat.portMax = 20000, 20000, 20003
	nat.Timeout = 10 * sim.Second

	for i := byte(1); i <= 3; i++ {
		p := mkUDP(t, tenantKey(i, 80), nil)
		if r := nat.Process(0, p); r.Verdict != packet.Pass {
			t.Fatalf("flow %d rejected with free ports", i)
		}
	}
	// Pool exhausted and nothing expired: the 4th flow is dropped.
	p4 := mkUDP(t, tenantKey(4, 80), nil)
	if r := nat.Process(1, p4); r.Verdict != packet.Drop {
		t.Fatal("exhausted NAT accepted a new flow")
	}
	if nat.exhausted != 1 {
		t.Fatalf("exhausted counter %d", nat.exhausted)
	}
	// After idle expiry, the lazy sweep inside allocPort reclaims ports.
	p5 := mkUDP(t, tenantKey(5, 80), nil)
	if r := nat.Process(20*sim.Second, p5); r.Verdict != packet.Pass {
		t.Fatal("expired ports not reclaimed on demand")
	}
	if nat.Translated() == 0 {
		t.Fatal("Translated() not counting")
	}
}

func TestNATFreeListReuse(t *testing.T) {
	nat := NewNAT("nat", packet.IP4(10, 0, 0, 0), 16, NATExternalIP)
	nat.Timeout = sim.Second
	p := mkUDP(t, tenantKey(1, 80), nil)
	nat.Process(0, p)
	port := p.Flow.SrcPort
	nat.Expire(5 * sim.Second)
	// The reclaimed port goes back out for the next flow.
	q := mkUDP(t, tenantKey(2, 80), nil)
	nat.Process(6*sim.Second, q)
	if q.Flow.SrcPort != port {
		t.Fatalf("free list not reused: got %d want %d", q.Flow.SrcPort, port)
	}
}

func TestMonitorSketchEstimate(t *testing.T) {
	m := NewMonitor("mon")
	k := tenantKey(9, 80)
	var sent uint64
	for i := 0; i < 10; i++ {
		p := mkUDP(t, k, make([]byte, 100))
		sent += uint64(p.Size())
		m.Process(0, p)
	}
	est := m.EstimateBytes(k)
	if est < sent {
		t.Fatalf("count-min underestimated: %d < %d", est, sent)
	}
	exact := m.FlowStats(k)
	if exact.Bytes != sent {
		t.Fatalf("exact bytes %d != %d", exact.Bytes, sent)
	}
}

func TestLoadBalancerBackendLoadAccounting(t *testing.T) {
	lb := NewLoadBalancer("lb", LBVirtualIP, []uint32{100, 200})
	for i := byte(1); i <= 20; i++ {
		k := packet.FlowKey{SrcIP: packet.IP4(10, 0, 0, i), DstIP: LBVirtualIP,
			SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoUDP}
		lb.Process(0, mkUDP(t, k, nil))
	}
	if lb.Balanced() != 20 {
		t.Fatalf("Balanced() = %d", lb.Balanced())
	}
	total := uint64(0)
	for _, n := range lb.BackendLoad() {
		total += n
	}
	if total != 20 {
		t.Fatalf("backend load sums to %d", total)
	}
}

func TestDPIDropsMalformedFrame(t *testing.T) {
	d := NewDPI("dpi", DefaultSignatures, false)
	p := &packet.Packet{Data: []byte{1, 2, 3}, Flow: tenantKey(1, 80)}
	if r := d.Process(0, p); r.Verdict != packet.Drop {
		t.Fatal("malformed frame passed DPI")
	}
}

func TestClassOfNonIP(t *testing.T) {
	if ClassOf(&packet.Packet{Data: []byte{0}}) != ClassDefault {
		t.Fatal("non-IP class not default")
	}
	if ClassDefault.String() == "" || TrafficClass(99).String() == "" {
		t.Fatal("class strings")
	}
}

func TestRouterAddRoutePanicsOnBadPrefix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("prefix length 33 accepted")
		}
	}()
	NewRouter("rt").AddRoute(0, 33, 1)
}

func TestConnTrackerLooseModePassesOutOfState(t *testing.T) {
	ct := NewConnTracker("ct", false)
	key := tcpClientKey()
	ct.Process(0, tcpPkt(t, key, packet.TCPSyn, nil))
	// Out-of-state packet in loose mode: passes (maybeDrop's loose arm).
	if r := ct.Process(1, tcpPkt(t, key, packet.TCPPsh, nil)); r.Verdict != packet.Pass {
		t.Fatal("loose mode dropped out-of-state packet")
	}
}

func TestChainStringWithCompose(t *testing.T) {
	br := NewBranch("br", func(*packet.Packet) int { return 0 },
		NewChain("inner", PresetRouter()))
	c := NewChain("outer", PresetFirewall(1), br)
	if !strings.Contains(c.String(), "br") {
		t.Fatalf("chain string %q", c.String())
	}
	if !strings.Contains(br.String(), "inner") {
		t.Fatalf("branch string %q", br.String())
	}
}
