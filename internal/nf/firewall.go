package nf

import (
	"fmt"

	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// Firewall is a stateless ACL: an ordered rule list with first-match
// semantics over the five-tuple (CIDR prefixes + port ranges), like a
// Click IPFilter or an iptables chain.
type Firewall struct {
	name      string
	rules     []FWRule
	defaultOK bool
	cost      CostModel
	perRule   sim.Duration

	matched uint64
	denied  uint64
}

// FWAction is what a matching rule does.
type FWAction uint8

const (
	FWAllow FWAction = iota
	FWDeny
)

// FWRule matches a five-tuple against prefixes and port ranges.
// A zero PrefixLen matches any address; a zero-zero port range matches any
// port; Proto 0 matches any protocol.
type FWRule struct {
	SrcIP, SrcPrefixLen  uint32
	DstIP, DstPrefixLen  uint32
	SrcPortLo, SrcPortHi uint16
	DstPortLo, DstPortHi uint16
	Proto                uint8
	Action               FWAction
}

// Matches reports whether k satisfies the rule.
func (r FWRule) Matches(k packet.FlowKey) bool {
	if r.Proto != 0 && r.Proto != k.Proto {
		return false
	}
	if !prefixMatch(k.SrcIP, r.SrcIP, r.SrcPrefixLen) {
		return false
	}
	if !prefixMatch(k.DstIP, r.DstIP, r.DstPrefixLen) {
		return false
	}
	if !portMatch(k.SrcPort, r.SrcPortLo, r.SrcPortHi) {
		return false
	}
	if !portMatch(k.DstPort, r.DstPortLo, r.DstPortHi) {
		return false
	}
	return true
}

func prefixMatch(addr, prefix, plen uint32) bool {
	if plen == 0 {
		return true
	}
	if plen > 32 {
		plen = 32
	}
	mask := ^uint32(0) << (32 - plen)
	return addr&mask == prefix&mask
}

func portMatch(p, lo, hi uint16) bool {
	if lo == 0 && hi == 0 {
		return true
	}
	return p >= lo && p <= hi
}

// NewFirewall builds an ACL. defaultAllow decides the verdict when no rule
// matches. Per-packet cost is a fixed base plus a per-rule-scanned term,
// modelling a linear classifier (the common software ACL implementation).
func NewFirewall(name string, rules []FWRule, defaultAllow bool) *Firewall {
	return &Firewall{
		name:      name,
		rules:     rules,
		defaultOK: defaultAllow,
		cost:      CostModel{Base: 40 * sim.Nanosecond},
		perRule:   8 * sim.Nanosecond,
	}
}

// Name implements Element.
func (f *Firewall) Name() string { return f.name }

// Process implements Element.
func (f *Firewall) Process(now sim.Time, p *packet.Packet) Result {
	cost := f.cost.Cost(0)
	for _, r := range f.rules {
		cost += f.perRule
		if r.Matches(p.Flow) {
			f.matched++
			if r.Action == FWDeny {
				f.denied++
				p.Dropped = packet.DropPolicy
				return Result{Verdict: packet.Drop, Cost: cost}
			}
			return Result{Verdict: packet.Pass, Cost: cost}
		}
	}
	if f.defaultOK {
		return Result{Verdict: packet.Pass, Cost: cost}
	}
	f.denied++
	p.Dropped = packet.DropPolicy
	return Result{Verdict: packet.Drop, Cost: cost}
}

// Matched returns how many packets matched an explicit rule.
func (f *Firewall) Matched() uint64 { return f.matched }

// Denied returns how many packets were dropped by policy.
func (f *Firewall) Denied() uint64 { return f.denied }

// String describes the ACL.
func (f *Firewall) String() string {
	return fmt.Sprintf("firewall(%s, %d rules, defaultAllow=%v)", f.name, len(f.rules), f.defaultOK)
}
