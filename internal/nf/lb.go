package nf

import (
	"encoding/binary"
	"fmt"
	"sort"

	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// LoadBalancer is an L4 load balancer: packets addressed to the virtual IP
// are steered to a backend chosen on a consistent-hash ring keyed by the
// five-tuple, and the destination address is rewritten in the real header
// (checksum patched incrementally). Flow affinity is inherent: the same
// five-tuple always maps to the same ring position.
type LoadBalancer struct {
	name     string
	vip      uint32
	ring     []ringEntry // sorted by hash
	backends []uint32
	cost     CostModel

	balanced uint64
	perBE    map[uint32]uint64
}

type ringEntry struct {
	hash    uint64
	backend uint32
}

// vnodesPerBackend controls ring smoothness; 64 keeps the max/mean backend
// imbalance under ~10% for realistic backend counts.
const vnodesPerBackend = 64

// NewLoadBalancer builds an LB for virtual IP vip over the given backends.
// It panics on an empty backend set.
func NewLoadBalancer(name string, vip uint32, backends []uint32) *LoadBalancer {
	if len(backends) == 0 {
		panic("nf: NewLoadBalancer with no backends")
	}
	lb := &LoadBalancer{
		name:     name,
		vip:      vip,
		backends: append([]uint32(nil), backends...),
		cost:     CostModel{Base: 70 * sim.Nanosecond},
		perBE:    make(map[uint32]uint64, len(backends)),
	}
	for _, be := range backends {
		for v := 0; v < vnodesPerBackend; v++ {
			lb.ring = append(lb.ring, ringEntry{hash: ringHash(be, v), backend: be})
		}
	}
	sort.Slice(lb.ring, func(i, j int) bool { return lb.ring[i].hash < lb.ring[j].hash })
	return lb
}

func ringHash(backend uint32, vnode int) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range []byte{
		byte(backend >> 24), byte(backend >> 16), byte(backend >> 8), byte(backend),
		byte(vnode >> 8), byte(vnode),
	} {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return mix64(h)
}

// mix64 is the SplitMix64 finalizer. FNV-1a alone clusters on short inputs;
// the finalizer makes both ring positions and lookup keys uniform over the
// full 64-bit space, which consistent hashing requires.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PickBackend returns the consistent-hash backend for a flow.
func (lb *LoadBalancer) PickBackend(k packet.FlowKey) uint32 {
	h := mix64(k.Hash64())
	i := sort.Search(len(lb.ring), func(i int) bool { return lb.ring[i].hash >= h })
	if i == len(lb.ring) {
		i = 0
	}
	return lb.ring[i].backend
}

// Name implements Element.
func (lb *LoadBalancer) Name() string { return lb.name }

// Process implements Element.
func (lb *LoadBalancer) Process(now sim.Time, p *packet.Packet) Result {
	cost := lb.cost.Cost(0)
	if p.Flow.DstIP != lb.vip {
		return Result{Verdict: packet.Pass, Cost: cost}
	}
	be := lb.PickBackend(p.Flow)

	pr, err := packet.ParseFrame(p.Data)
	if err != nil || !pr.IsIP {
		p.Dropped = packet.DropPolicy
		return Result{Verdict: packet.Drop, Cost: cost}
	}
	ipOff := pr.IPOffset
	old := pr.IP.Dst
	binary.BigEndian.PutUint32(p.Data[ipOff+16:], be)
	sum := binary.BigEndian.Uint16(p.Data[ipOff+10:])
	sum = packet.UpdateChecksum32(sum, old, be)
	binary.BigEndian.PutUint16(p.Data[ipOff+10:], sum)
	p.Flow.DstIP = be

	lb.balanced++
	lb.perBE[be]++
	return Result{Verdict: packet.Pass, Cost: cost}
}

// Balanced returns the number of packets steered to a backend.
func (lb *LoadBalancer) Balanced() uint64 { return lb.balanced }

// BackendLoad returns packets per backend (copy).
func (lb *LoadBalancer) BackendLoad() map[uint32]uint64 {
	out := make(map[uint32]uint64, len(lb.perBE))
	for k, v := range lb.perBE {
		out[k] = v
	}
	return out
}

// String describes the load balancer.
func (lb *LoadBalancer) String() string {
	return fmt.Sprintf("lb(%s, vip=%d, %d backends)", lb.name, lb.vip, len(lb.backends))
}
