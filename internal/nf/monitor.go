package nf

import (
	"sort"

	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// Monitor is a passive measurement element: exact per-flow packet/byte
// counters plus a count-min sketch for heavy-hitter detection at bounded
// memory, like a Click counter + NetFlow probe.
type Monitor struct {
	name   string
	cost   CostModel
	flows  map[packet.FlowKey]*FlowStats
	sketch *CountMin

	packets uint64
	bytes   uint64
}

// FlowStats are the exact counters for one flow.
type FlowStats struct {
	Packets   uint64
	Bytes     uint64
	FirstSeen sim.Time
	LastSeen  sim.Time
}

// NewMonitor builds a monitor with a 4x2048 count-min sketch.
func NewMonitor(name string) *Monitor {
	return &Monitor{
		name:   name,
		cost:   CostModel{Base: 50 * sim.Nanosecond},
		flows:  make(map[packet.FlowKey]*FlowStats),
		sketch: NewCountMin(4, 2048),
	}
}

// Name implements Element.
func (m *Monitor) Name() string { return m.name }

// Process implements Element.
func (m *Monitor) Process(now sim.Time, p *packet.Packet) Result {
	fs, ok := m.flows[p.Flow]
	if !ok {
		fs = &FlowStats{FirstSeen: now}
		m.flows[p.Flow] = fs
	}
	fs.Packets++
	fs.Bytes += uint64(p.Size())
	fs.LastSeen = now
	m.sketch.Add(p.Flow.Hash64(), uint64(p.Size()))
	m.packets++
	m.bytes += uint64(p.Size())
	return Result{Verdict: packet.Pass, Cost: m.cost.Cost(0)}
}

// Flows returns the number of distinct flows observed.
func (m *Monitor) Flows() int { return len(m.flows) }

// Totals returns total packets and bytes observed.
func (m *Monitor) Totals() (pkts, bytes uint64) { return m.packets, m.bytes }

// FlowStats returns the exact stats for a flow, or nil.
func (m *Monitor) FlowStats(k packet.FlowKey) *FlowStats { return m.flows[k] }

// EstimateBytes returns the sketch's byte estimate for a flow (an
// overestimate with bounded error, never an underestimate).
func (m *Monitor) EstimateBytes(k packet.FlowKey) uint64 {
	return m.sketch.Estimate(k.Hash64())
}

// HeavyHitter pairs a flow with its exact byte count.
type HeavyHitter struct {
	Flow  packet.FlowKey
	Bytes uint64
}

// TopK returns the k largest flows by bytes, descending.
func (m *Monitor) TopK(k int) []HeavyHitter {
	out := make([]HeavyHitter, 0, len(m.flows))
	for f, s := range m.flows {
		out = append(out, HeavyHitter{Flow: f, Bytes: s.Bytes})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Flow.Hash64() < out[j].Flow.Hash64() // stable order for tests
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// CountMin is a count-min sketch: d rows of w counters; Add updates one
// counter per row (chosen by independent hashes of the key) and Estimate
// takes the row minimum.
type CountMin struct {
	rows [][]uint64
	w    uint64
}

// NewCountMin builds a d×w sketch. It panics on non-positive dimensions.
func NewCountMin(d, w int) *CountMin {
	if d <= 0 || w <= 0 {
		panic("nf: NewCountMin requires positive dimensions")
	}
	rows := make([][]uint64, d)
	for i := range rows {
		rows[i] = make([]uint64, w)
	}
	return &CountMin{rows: rows, w: uint64(w)}
}

// rowHash derives the i-th independent hash from key.
func (c *CountMin) rowHash(key uint64, i int) uint64 {
	// SplitMix-style finalizer with a per-row tweak.
	z := key + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return (z ^ (z >> 31)) % c.w
}

// Add increments the key's counters by n.
func (c *CountMin) Add(key, n uint64) {
	for i := range c.rows {
		c.rows[i][c.rowHash(key, i)] += n
	}
}

// Estimate returns the count-min estimate for the key.
func (c *CountMin) Estimate(key uint64) uint64 {
	min := ^uint64(0)
	for i := range c.rows {
		if v := c.rows[i][c.rowHash(key, i)]; v < min {
			min = v
		}
	}
	return min
}
