package nf

import (
	"encoding/binary"
	"fmt"
	"sort"

	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// NAT is a stateful source NAT (NAPT). Outbound packets whose source lies in
// the inside prefix are rewritten to (externalIP, allocated port); the
// mapping is remembered so return traffic is translated back. Header
// rewrites are real: the IPv4 source address and L4 source port are patched
// in place and the IPv4 checksum is updated incrementally (RFC 1624).
//
// Idle mappings expire after Timeout of virtual time, reclaiming ports.
type NAT struct {
	name       string
	insideIP   uint32
	insideLen  uint32
	externalIP uint32
	Timeout    sim.Duration

	portNext uint16
	portMin  uint16
	portMax  uint16
	free     []uint16 // reclaimed ports

	// forward: inside five-tuple -> mapping; reverse: external port -> mapping.
	forward map[packet.FlowKey]*natEntry
	reverse map[uint16]*natEntry

	hitCost  CostModel
	missCost CostModel

	translated uint64
	misses     uint64
	expired    uint64
	exhausted  uint64
}

type natEntry struct {
	inside   packet.FlowKey
	extPort  uint16
	lastSeen sim.Time
}

// NewNAT builds a source NAT translating the inside prefix (insideIP/plen)
// to externalIP, allocating external ports from [20000, 65000).
func NewNAT(name string, insideIP, plen uint32, externalIP uint32) *NAT {
	return &NAT{
		name:       name,
		insideIP:   insideIP,
		insideLen:  plen,
		externalIP: externalIP,
		Timeout:    120 * sim.Second,
		portMin:    20000,
		portMax:    65000,
		portNext:   20000,
		forward:    make(map[packet.FlowKey]*natEntry),
		reverse:    make(map[uint16]*natEntry),
		hitCost:    CostModel{Base: 85 * sim.Nanosecond},
		missCost:   CostModel{Base: 300 * sim.Nanosecond},
	}
}

// Name implements Element.
func (n *NAT) Name() string { return n.name }

// Process implements Element.
func (n *NAT) Process(now sim.Time, p *packet.Packet) Result {
	k := p.Flow
	if prefixMatch(k.SrcIP, n.insideIP, n.insideLen) {
		return n.outbound(now, p)
	}
	if k.DstIP == n.externalIP {
		return n.inbound(now, p)
	}
	// Not our traffic; transparent pass at hit cost.
	return Result{Verdict: packet.Pass, Cost: n.hitCost.Cost(0)}
}

func (n *NAT) outbound(now sim.Time, p *packet.Packet) Result {
	e, ok := n.forward[p.Flow]
	cost := n.hitCost.Cost(0)
	if !ok {
		cost = n.missCost.Cost(0)
		n.misses++
		port, allocated := n.allocPort(now)
		if !allocated {
			n.exhausted++
			p.Dropped = packet.DropPolicy
			return Result{Verdict: packet.Drop, Cost: cost}
		}
		e = &natEntry{inside: p.Flow, extPort: port}
		n.forward[p.Flow] = e
		n.reverse[port] = e
	}
	e.lastSeen = now

	if !n.rewrite(p, n.externalIP, e.extPort, true) {
		p.Dropped = packet.DropPolicy
		return Result{Verdict: packet.Drop, Cost: cost}
	}
	n.translated++
	return Result{Verdict: packet.Pass, Cost: cost}
}

func (n *NAT) inbound(now sim.Time, p *packet.Packet) Result {
	e, ok := n.reverse[p.Flow.DstPort]
	cost := n.hitCost.Cost(0)
	if !ok || e.inside.Proto != p.Flow.Proto {
		// No mapping: the NAT drops unsolicited inbound traffic.
		p.Dropped = packet.DropPolicy
		return Result{Verdict: packet.Drop, Cost: cost}
	}
	e.lastSeen = now
	if !n.rewrite(p, e.inside.SrcIP, e.inside.SrcPort, false) {
		p.Dropped = packet.DropPolicy
		return Result{Verdict: packet.Drop, Cost: cost}
	}
	n.translated++
	return Result{Verdict: packet.Pass, Cost: cost}
}

// rewrite patches the frame in place. For outbound it rewrites src ip/port;
// for inbound, dst ip/port. It returns false on malformed frames.
func (n *NAT) rewrite(p *packet.Packet, newIP uint32, newPort uint16, outbound bool) bool {
	pr, err := packet.ParseFrame(p.Data)
	if err != nil || !pr.IsIP || (!pr.HasUDP && !pr.HasTCP) {
		return false
	}
	ipOff := pr.IPOffset
	l4Off := pr.L4Offset

	var oldIP uint32
	var ipFieldOff int
	if outbound {
		oldIP = pr.IP.Src
		ipFieldOff = ipOff + 12
	} else {
		oldIP = pr.IP.Dst
		ipFieldOff = ipOff + 16
	}
	binary.BigEndian.PutUint32(p.Data[ipFieldOff:], newIP)

	// Patch the IPv4 header checksum incrementally.
	sum := binary.BigEndian.Uint16(p.Data[ipOff+10:])
	sum = packet.UpdateChecksum32(sum, oldIP, newIP)
	binary.BigEndian.PutUint16(p.Data[ipOff+10:], sum)

	// Patch the L4 port.
	var portOff int
	if outbound {
		portOff = l4Off // src port first
	} else {
		portOff = l4Off + 2
	}
	binary.BigEndian.PutUint16(p.Data[portOff:], newPort)

	// Keep the cached flow key consistent.
	if outbound {
		p.Flow.SrcIP, p.Flow.SrcPort = newIP, newPort
	} else {
		p.Flow.DstIP, p.Flow.DstPort = newIP, newPort
	}
	return true
}

// allocPort hands out an external port, reusing expired mappings lazily.
func (n *NAT) allocPort(now sim.Time) (uint16, bool) {
	if len(n.free) > 0 {
		p := n.free[len(n.free)-1]
		n.free = n.free[:len(n.free)-1]
		return p, true
	}
	if n.portNext < n.portMax {
		p := n.portNext
		n.portNext++
		return p, true
	}
	// Exhausted: sweep for expired mappings.
	n.Expire(now)
	if len(n.free) > 0 {
		p := n.free[len(n.free)-1]
		n.free = n.free[:len(n.free)-1]
		return p, true
	}
	return 0, false
}

// Expire reclaims mappings idle past Timeout. Returns how many were freed.
// Reclaimed ports are returned to the free list in ascending order: the
// free list feeds allocPort, so appending in map-iteration order would
// make subsequent port assignments differ from run to run.
func (n *NAT) Expire(now sim.Time) int {
	var freedPorts []uint16
	for k, e := range n.forward {
		if now-e.lastSeen > n.Timeout {
			delete(n.forward, k)
			delete(n.reverse, e.extPort)
			freedPorts = append(freedPorts, e.extPort)
			n.expired++
		}
	}
	sort.Slice(freedPorts, func(i, j int) bool { return freedPorts[i] < freedPorts[j] })
	n.free = append(n.free, freedPorts...)
	return len(freedPorts)
}

// Mappings returns the number of live translations.
func (n *NAT) Mappings() int { return len(n.forward) }

// Translated returns the count of successfully rewritten packets.
func (n *NAT) Translated() uint64 { return n.translated }

// Misses returns how many packets required a new mapping.
func (n *NAT) Misses() uint64 { return n.misses }

// String describes the NAT.
func (n *NAT) String() string {
	return fmt.Sprintf("nat(%s, %d mappings)", n.name, len(n.forward))
}
