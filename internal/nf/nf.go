// Package nf implements the Click-style network-function framework of MPDP:
// composable packet-processing elements with per-packet CPU cost models, and
// the service-function-chain (SFC) composition on top of them.
//
// This substitutes for the paper group's Click/DPDK element substrate (their
// ParaGraph line of work). Every element does real work on real wire-format
// bytes — the NAT rewrites IPv4 headers and patches checksums incrementally,
// the DPI runs an Aho–Corasick automaton over payloads, the router does
// longest-prefix match on a binary trie — and reports the virtual CPU time
// the operation costs. The vnet cores charge that cost (inflated by any
// interference) to the simulation clock.
//
// Costs are deterministic per (element, packet); all stochastic jitter comes
// from the vnet layer, which cleanly separates "what the NF does" from "what
// the noisy host does to it".
package nf

import (
	"fmt"

	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// Result is what an element reports for one packet: the forwarding verdict
// and the CPU time consumed deciding it.
type Result struct {
	Verdict packet.Verdict
	Cost    sim.Duration
}

// Element is one packet-processing stage. Implementations may mutate the
// packet's Data in place (NAT, tunnel endpoints) but must keep p.Flow
// consistent if they change the five-tuple.
//
// Elements are driven from a single simulated core at a time and need no
// internal locking.
type Element interface {
	// Name identifies the element in chain listings and stats.
	Name() string
	// Process handles one packet at virtual time now.
	Process(now sim.Time, p *packet.Packet) Result
}

// CostModel expresses a per-packet CPU cost as base + perByte·len. The
// defaults in this package follow published per-NF software-switch numbers
// (tens of ns fixed cost, and ns/byte for payload-touching work).
type CostModel struct {
	Base    sim.Duration // fixed per-packet cost
	PerByte sim.Duration // cost per payload byte (in ns per 64 bytes, see Cost)
}

// Cost evaluates the model for a packet of n bytes. PerByte is charged per
// 64-byte cache line rather than per byte, matching how memory-bound NF
// costs actually scale.
func (m CostModel) Cost(n int) sim.Duration {
	lines := sim.Duration((n + 63) / 64)
	return m.Base + m.PerByte*lines
}

// Func adapts a plain function into an Element, for tests and ad-hoc stages.
type Func struct {
	ElemName string
	Fn       func(now sim.Time, p *packet.Packet) Result
}

// Name implements Element.
func (f Func) Name() string { return f.ElemName }

// Process implements Element.
func (f Func) Process(now sim.Time, p *packet.Packet) Result { return f.Fn(now, p) }

// Chain is an ordered service-function chain of elements. Processing stops
// at the first non-Pass verdict.
type Chain struct {
	name     string
	elements []Element

	// Per-element pass/drop counters, index-aligned with elements.
	processed []uint64
	dropped   []uint64
}

// NewChain builds a chain from elements. It panics on an empty chain or a
// nil element: a data plane with a hole in it is a programming error.
func NewChain(name string, elements ...Element) *Chain {
	if len(elements) == 0 {
		panic("nf: NewChain with no elements")
	}
	for i, e := range elements {
		if e == nil {
			panic(fmt.Sprintf("nf: NewChain element %d is nil", i))
		}
	}
	return &Chain{
		name:      name,
		elements:  elements,
		processed: make([]uint64, len(elements)),
		dropped:   make([]uint64, len(elements)),
	}
}

// Name returns the chain's name.
func (c *Chain) Name() string { return c.name }

// Len returns the number of elements.
func (c *Chain) Len() int { return len(c.elements) }

// Elements returns the chain's stages (shared slice; do not modify).
func (c *Chain) Elements() []Element { return c.elements }

// Process runs the packet through the chain, summing element costs. The
// first Drop/Consume verdict short-circuits; its cost is still charged.
func (c *Chain) Process(now sim.Time, p *packet.Packet) Result {
	return c.ProcessHooked(now, p, nil)
}

// StageHook observes one element's result as a chain runs: i is the
// element's index, e the element, r its individual result (not the running
// total). Hooks fire after each element that executed, including the one
// whose verdict short-circuited the chain.
//
// The hook is a timing/observability point: it must not mutate the packet.
// It receives no clock — callers that want wall-clock stage timing read
// their own clock inside the hook (the live engine), while virtual-time
// callers use r.Cost directly (the simulator), which keeps this package
// inside the determinism contract.
type StageHook func(i int, e Element, r Result)

// ProcessHooked is Process with a per-element observation hook. A nil hook
// is exactly Process.
func (c *Chain) ProcessHooked(now sim.Time, p *packet.Packet, hook StageHook) Result {
	var total sim.Duration
	for i, e := range c.elements {
		r := e.Process(now, p)
		total += r.Cost
		c.processed[i]++
		if hook != nil {
			hook(i, e, r)
		}
		if r.Verdict != packet.Pass {
			if r.Verdict == packet.Drop {
				c.dropped[i]++
			}
			return Result{Verdict: r.Verdict, Cost: total}
		}
	}
	return Result{Verdict: packet.Pass, Cost: total}
}

// StageStats reports per-element processed/dropped counters.
type StageStats struct {
	Name      string
	Processed uint64
	Dropped   uint64
}

// Stats returns the per-stage counters in chain order.
func (c *Chain) Stats() []StageStats {
	out := make([]StageStats, len(c.elements))
	for i, e := range c.elements {
		out[i] = StageStats{Name: e.Name(), Processed: c.processed[i], Dropped: c.dropped[i]}
	}
	return out
}

// String lists the chain like "fw->nat->router".
func (c *Chain) String() string {
	s := c.name + "["
	for i, e := range c.elements {
		if i > 0 {
			s += "->"
		}
		s += e.Name()
	}
	return s + "]"
}
