package nf

import (
	"testing"

	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// mkUDP builds a test packet with a parsed flow key and payload.
func mkUDP(t testing.TB, key packet.FlowKey, payload []byte) *packet.Packet {
	t.Helper()
	key.Proto = packet.ProtoUDP
	frame := packet.BuildUDP(key, payload, packet.BuildOpts{})
	return &packet.Packet{ID: 1, OrigID: 1, Data: frame, Flow: key, FlowID: key.Hash64()}
}

func tenantKey(host byte, dstPort uint16) packet.FlowKey {
	return packet.FlowKey{
		SrcIP: packet.IP4(10, 0, 0, host), DstIP: packet.IP4(10, 1, 0, 5),
		SrcPort: 40000 + uint16(host), DstPort: dstPort, Proto: packet.ProtoUDP,
	}
}

func TestChainPassesAndSumsCost(t *testing.T) {
	fixed := func(name string, cost sim.Duration) Element {
		return Func{ElemName: name, Fn: func(now sim.Time, p *packet.Packet) Result {
			return Result{Verdict: packet.Pass, Cost: cost}
		}}
	}
	c := NewChain("test", fixed("a", 10), fixed("b", 20), fixed("c", 30))
	p := mkUDP(t, tenantKey(1, 80), nil)
	r := c.Process(0, p)
	if r.Verdict != packet.Pass || r.Cost != 60 {
		t.Fatalf("chain result: %+v", r)
	}
	if c.Len() != 3 || c.Name() != "test" {
		t.Fatal("chain metadata")
	}
}

func TestChainShortCircuitsOnDrop(t *testing.T) {
	calls := 0
	pass := Func{ElemName: "pass", Fn: func(sim.Time, *packet.Packet) Result {
		calls++
		return Result{Verdict: packet.Pass, Cost: 5}
	}}
	drop := Func{ElemName: "drop", Fn: func(now sim.Time, p *packet.Packet) Result {
		return Result{Verdict: packet.Drop, Cost: 7}
	}}
	c := NewChain("t", pass, drop, pass)
	r := c.Process(0, mkUDP(t, tenantKey(1, 80), nil))
	if r.Verdict != packet.Drop || r.Cost != 12 {
		t.Fatalf("result %+v", r)
	}
	if calls != 1 {
		t.Fatalf("element after drop ran (%d calls)", calls)
	}
	st := c.Stats()
	if st[1].Dropped != 1 || st[0].Processed != 1 || st[2].Processed != 0 {
		t.Fatalf("stage stats %+v", st)
	}
}

func TestChainProcessHooked(t *testing.T) {
	fixed := func(name string, cost sim.Duration, v packet.Verdict) Element {
		return Func{ElemName: name, Fn: func(now sim.Time, p *packet.Packet) Result {
			return Result{Verdict: v, Cost: cost}
		}}
	}
	c := NewChain("t",
		fixed("a", 10, packet.Pass),
		fixed("b", 20, packet.Drop),
		fixed("c", 30, packet.Pass))
	type call struct {
		i    int
		name string
		cost sim.Duration
	}
	var calls []call
	r := c.ProcessHooked(0, mkUDP(t, tenantKey(1, 80), nil), func(i int, e Element, r Result) {
		calls = append(calls, call{i, e.Name(), r.Cost})
	})
	if r.Verdict != packet.Drop || r.Cost != 30 {
		t.Fatalf("result %+v", r)
	}
	// The hook fires per executed element — including the short-circuiting
	// one — with individual (not cumulative) costs.
	want := []call{{0, "a", 10}, {1, "b", 20}}
	if len(calls) != len(want) {
		t.Fatalf("hook calls %+v", calls)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("hook call %d = %+v, want %+v", i, calls[i], want[i])
		}
	}
	// Nil hook is plain Process: same counters semantics, no panic.
	if r := c.ProcessHooked(0, mkUDP(t, tenantKey(2, 80), nil), nil); r.Verdict != packet.Drop {
		t.Fatalf("nil-hook result %+v", r)
	}
}

func TestChainPanicsOnEmptyOrNil(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty": func() { NewChain("x") },
		"nil":   func() { NewChain("x", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s chain did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestChainString(t *testing.T) {
	c := NewChain("sfc", PresetFirewall(1), PresetRouter())
	if got := c.String(); got != "sfc[fw->rt]" {
		t.Fatalf("String = %q", got)
	}
}

func TestCostModelCacheLines(t *testing.T) {
	m := CostModel{Base: 100, PerByte: 10}
	if m.Cost(0) != 100 {
		t.Fatalf("cost(0) = %d", m.Cost(0))
	}
	if m.Cost(1) != 110 || m.Cost(64) != 110 {
		t.Fatal("first cache line mispriced")
	}
	if m.Cost(65) != 120 {
		t.Fatal("second cache line mispriced")
	}
}

func TestFirewallFirstMatchWins(t *testing.T) {
	rules := []FWRule{
		{DstPortLo: 80, DstPortHi: 80, Action: FWDeny},
		{DstPortLo: 1, DstPortHi: 65535, Action: FWAllow},
	}
	fw := NewFirewall("fw", rules, false)
	deny := fw.Process(0, mkUDP(t, tenantKey(1, 80), nil))
	if deny.Verdict != packet.Drop {
		t.Fatal("port-80 deny rule did not fire first")
	}
	allow := fw.Process(0, mkUDP(t, tenantKey(1, 81), nil))
	if allow.Verdict != packet.Pass {
		t.Fatal("allow rule did not fire")
	}
	if fw.Matched() != 2 || fw.Denied() != 1 {
		t.Fatalf("counters matched=%d denied=%d", fw.Matched(), fw.Denied())
	}
}

func TestFirewallDefaultVerdicts(t *testing.T) {
	allowFW := NewFirewall("a", nil, true)
	if r := allowFW.Process(0, mkUDP(t, tenantKey(1, 9), nil)); r.Verdict != packet.Pass {
		t.Fatal("default-allow dropped")
	}
	denyFW := NewFirewall("d", nil, false)
	p := mkUDP(t, tenantKey(1, 9), nil)
	if r := denyFW.Process(0, p); r.Verdict != packet.Drop {
		t.Fatal("default-deny passed")
	}
	if p.Dropped != packet.DropPolicy {
		t.Fatal("drop reason not stamped")
	}
}

func TestFirewallPrefixMatching(t *testing.T) {
	rule := FWRule{
		SrcIP: packet.IP4(10, 0, 0, 0), SrcPrefixLen: 24,
		Action: FWDeny,
	}
	fw := NewFirewall("fw", []FWRule{rule}, true)
	in24 := packet.FlowKey{SrcIP: packet.IP4(10, 0, 0, 77), DstIP: 1, SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	out24 := packet.FlowKey{SrcIP: packet.IP4(10, 0, 1, 77), DstIP: 1, SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	if r := fw.Process(0, mkUDP(t, in24, nil)); r.Verdict != packet.Drop {
		t.Fatal("in-prefix source not denied")
	}
	if r := fw.Process(0, mkUDP(t, out24, nil)); r.Verdict != packet.Pass {
		t.Fatal("out-of-prefix source denied")
	}
}

func TestFirewallProtoAndPortRange(t *testing.T) {
	rule := FWRule{Proto: packet.ProtoTCP, DstPortLo: 8000, DstPortHi: 9000, Action: FWDeny}
	if rule.Matches(packet.FlowKey{Proto: packet.ProtoUDP, DstPort: 8500}) {
		t.Fatal("UDP matched TCP-only rule")
	}
	if !rule.Matches(packet.FlowKey{Proto: packet.ProtoTCP, DstPort: 8500}) {
		t.Fatal("TCP in range did not match")
	}
	if rule.Matches(packet.FlowKey{Proto: packet.ProtoTCP, DstPort: 9001}) {
		t.Fatal("port above range matched")
	}
}

func TestFirewallCostScalesWithRules(t *testing.T) {
	small := NewFirewall("s", make([]FWRule, 1), false)
	big := NewFirewall("b", make([]FWRule, 100), false)
	// Zero-value rules match everything (allow), so both stop at rule 1…
	// use non-matching rules to force full scans.
	nonMatch := FWRule{Proto: 99}
	smallRules := []FWRule{nonMatch}
	bigRules := make([]FWRule, 100)
	for i := range bigRules {
		bigRules[i] = nonMatch
	}
	small = NewFirewall("s", smallRules, true)
	big = NewFirewall("b", bigRules, true)
	cs := small.Process(0, mkUDP(t, tenantKey(1, 80), nil)).Cost
	cb := big.Process(0, mkUDP(t, tenantKey(1, 80), nil)).Cost
	if cb <= cs {
		t.Fatalf("100-rule scan (%v) not costlier than 1-rule (%v)", cb, cs)
	}
}

func TestNATOutboundRewritesAndReturns(t *testing.T) {
	nat := NewNAT("nat", packet.IP4(10, 0, 0, 0), 16, NATExternalIP)
	inKey := tenantKey(7, 80)
	p := mkUDP(t, inKey, []byte("req"))
	r := nat.Process(1000, p)
	if r.Verdict != packet.Pass {
		t.Fatalf("outbound verdict %v", r.Verdict)
	}
	// The frame itself must now carry the external source.
	pr, err := packet.ParseFrame(p.Data)
	if err != nil {
		t.Fatalf("rewritten frame does not parse: %v", err)
	}
	if pr.IP.Src != NATExternalIP {
		t.Fatalf("frame src = %x, want external", pr.IP.Src)
	}
	if p.Flow.SrcIP != NATExternalIP {
		t.Fatal("cached flow key not updated")
	}
	extPort := p.Flow.SrcPort
	if nat.Mappings() != 1 || nat.Misses() != 1 {
		t.Fatalf("mappings=%d misses=%d", nat.Mappings(), nat.Misses())
	}

	// Return traffic to (external, extPort) must be translated back.
	retKey := packet.FlowKey{
		SrcIP: inKey.DstIP, DstIP: NATExternalIP,
		SrcPort: inKey.DstPort, DstPort: extPort, Proto: packet.ProtoUDP,
	}
	ret := mkUDP(t, retKey, []byte("resp"))
	rr := nat.Process(2000, ret)
	if rr.Verdict != packet.Pass {
		t.Fatalf("inbound verdict %v", rr.Verdict)
	}
	if ret.Flow.DstIP != inKey.SrcIP || ret.Flow.DstPort != inKey.SrcPort {
		t.Fatalf("return not translated to inside host: %v", ret.Flow)
	}
	// Frame checksum must still validate after incremental patches.
	if _, err := packet.ParseFrame(ret.Data); err != nil {
		t.Fatalf("translated return frame invalid: %v", err)
	}
}

func TestNATSecondPacketIsHit(t *testing.T) {
	nat := NewNAT("nat", packet.IP4(10, 0, 0, 0), 16, NATExternalIP)
	p1 := mkUDP(t, tenantKey(3, 80), nil)
	c1 := nat.Process(0, p1).Cost
	p2 := mkUDP(t, tenantKey(3, 80), nil)
	c2 := nat.Process(10, p2).Cost
	if c2 >= c1 {
		t.Fatalf("mapping hit (%v) not cheaper than miss (%v)", c2, c1)
	}
	if nat.Misses() != 1 {
		t.Fatalf("misses = %d, want 1", nat.Misses())
	}
	// Same external port for both packets of the flow.
	if p1.Flow.SrcPort != p2.Flow.SrcPort {
		t.Fatal("flow affinity broken")
	}
}

func TestNATDropsUnsolicitedInbound(t *testing.T) {
	nat := NewNAT("nat", packet.IP4(10, 0, 0, 0), 16, NATExternalIP)
	k := packet.FlowKey{
		SrcIP: packet.IP4(8, 8, 8, 8), DstIP: NATExternalIP,
		SrcPort: 53, DstPort: 30000, Proto: packet.ProtoUDP,
	}
	if r := nat.Process(0, mkUDP(t, k, nil)); r.Verdict != packet.Drop {
		t.Fatal("unsolicited inbound passed the NAT")
	}
}

func TestNATPassesUnrelatedTraffic(t *testing.T) {
	nat := NewNAT("nat", packet.IP4(10, 0, 0, 0), 16, NATExternalIP)
	k := packet.FlowKey{SrcIP: packet.IP4(172, 16, 0, 1), DstIP: packet.IP4(172, 16, 0, 2),
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	p := mkUDP(t, k, nil)
	if r := nat.Process(0, p); r.Verdict != packet.Pass {
		t.Fatal("unrelated traffic dropped")
	}
	if p.Flow != k {
		t.Fatal("unrelated traffic rewritten")
	}
}

func TestNATExpiry(t *testing.T) {
	nat := NewNAT("nat", packet.IP4(10, 0, 0, 0), 16, NATExternalIP)
	nat.Timeout = 10 * sim.Second
	nat.Process(0, mkUDP(t, tenantKey(1, 80), nil))
	nat.Process(0, mkUDP(t, tenantKey(2, 80), nil))
	if n := nat.Expire(5 * sim.Second); n != 0 {
		t.Fatalf("premature expiry of %d mappings", n)
	}
	if n := nat.Expire(20 * sim.Second); n != 2 {
		t.Fatalf("expired %d mappings, want 2", n)
	}
	if nat.Mappings() != 0 {
		t.Fatal("mappings not cleared")
	}
}

func TestNATDistinctFlowsDistinctPorts(t *testing.T) {
	nat := NewNAT("nat", packet.IP4(10, 0, 0, 0), 16, NATExternalIP)
	seen := make(map[uint16]bool)
	for i := byte(1); i <= 50; i++ {
		p := mkUDP(t, tenantKey(i, 80), nil)
		if r := nat.Process(0, p); r.Verdict != packet.Pass {
			t.Fatal("NAT dropped outbound")
		}
		if seen[p.Flow.SrcPort] {
			t.Fatalf("port %d reused across live flows", p.Flow.SrcPort)
		}
		seen[p.Flow.SrcPort] = true
	}
}

func TestRouterLPM(t *testing.T) {
	r := NewRouter("rt")
	r.AddRoute(packet.IP4(10, 0, 0, 0), 8, 1)
	r.AddRoute(packet.IP4(10, 1, 0, 0), 16, 2)
	r.AddRoute(packet.IP4(10, 1, 2, 0), 24, 3)

	cases := []struct {
		addr uint32
		want uint32
		ok   bool
	}{
		{packet.IP4(10, 9, 9, 9), 1, true},
		{packet.IP4(10, 1, 9, 9), 2, true},
		{packet.IP4(10, 1, 2, 9), 3, true},
		{packet.IP4(11, 0, 0, 1), 0, false},
	}
	for _, c := range cases {
		hop, ok := r.Lookup(c.addr)
		if ok != c.ok || (ok && hop != c.want) {
			t.Errorf("Lookup(%x) = %v,%v want %v,%v", c.addr, hop, ok, c.want, c.ok)
		}
	}
	if r.Routes() != 3 {
		t.Fatalf("Routes() = %d", r.Routes())
	}
}

func TestRouterDefaultRoute(t *testing.T) {
	r := NewRouter("rt")
	r.AddRoute(0, 0, 42)
	hop, ok := r.Lookup(packet.IP4(203, 0, 113, 1))
	if !ok || hop != 42 {
		t.Fatalf("default route lookup = %v,%v", hop, ok)
	}
}

func TestRouterDecrementsTTLWithValidChecksum(t *testing.T) {
	r := PresetRouter()
	p := mkUDP(t, tenantKey(1, 80), nil)
	before, _ := packet.ParseFrame(p.Data)
	if res := r.Process(0, p); res.Verdict != packet.Pass {
		t.Fatalf("route verdict %v", res.Verdict)
	}
	after, err := packet.ParseFrame(p.Data)
	if err != nil {
		t.Fatalf("checksum broken after TTL patch: %v", err)
	}
	if after.IP.TTL != before.IP.TTL-1 {
		t.Fatalf("TTL %d -> %d", before.IP.TTL, after.IP.TTL)
	}
}

func TestRouterDropsTTLExpired(t *testing.T) {
	r := PresetRouter()
	key := tenantKey(1, 80)
	frame := packet.BuildUDP(key, nil, packet.BuildOpts{TTL: 1})
	p := &packet.Packet{Data: frame, Flow: key}
	if res := r.Process(0, p); res.Verdict != packet.Drop {
		t.Fatal("TTL=1 packet not dropped")
	}
	if r.TTLDrops() != 1 {
		t.Fatal("TTL drop not counted")
	}
}

func TestRouterDropsNoRoute(t *testing.T) {
	r := NewRouter("rt")
	r.AddRoute(packet.IP4(10, 0, 0, 0), 8, 1)
	k := packet.FlowKey{SrcIP: 1, DstIP: packet.IP4(99, 0, 0, 1), SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	if res := r.Process(0, mkUDP(t, k, nil)); res.Verdict != packet.Drop {
		t.Fatal("unroutable packet passed")
	}
	if r.NoRouteDrops() != 1 {
		t.Fatal("no-route drop not counted")
	}
}

func TestDPIMatchesSignature(t *testing.T) {
	d := NewDPI("dpi", []string{"attack-pattern"}, true)
	bad := mkUDP(t, tenantKey(1, 80), []byte("prefix attack-pattern suffix"))
	if r := d.Process(0, bad); r.Verdict != packet.Drop {
		t.Fatal("IPS did not drop matching payload")
	}
	good := mkUDP(t, tenantKey(1, 80), []byte("innocent payload"))
	if r := d.Process(0, good); r.Verdict != packet.Pass {
		t.Fatal("IPS dropped clean payload")
	}
	if d.Matches() != 1 || d.Scanned() != 2 {
		t.Fatalf("matches=%d scanned=%d", d.Matches(), d.Scanned())
	}
}

func TestDPIIDSModeCountsButPasses(t *testing.T) {
	d := NewDPI("dpi", []string{"sig"}, false)
	p := mkUDP(t, tenantKey(1, 80), []byte("sig"))
	if r := d.Process(0, p); r.Verdict != packet.Pass {
		t.Fatal("IDS mode dropped")
	}
	if d.Matches() != 1 {
		t.Fatal("IDS match not counted")
	}
}

func TestDPICostScalesWithPayload(t *testing.T) {
	d := NewDPI("dpi", DefaultSignatures, false)
	small := d.Process(0, mkUDP(t, tenantKey(1, 80), make([]byte, 64))).Cost
	large := d.Process(0, mkUDP(t, tenantKey(1, 80), make([]byte, 1400))).Cost
	if large <= small {
		t.Fatalf("DPI cost: %v for 1400B <= %v for 64B", large, small)
	}
}

func TestAhoCorasickOverlappingPatterns(t *testing.T) {
	ac := newAhoCorasick([]string{"he", "she", "his", "hers"})
	cases := []struct {
		text string
		want bool
	}{
		{"ushers", true}, // contains "she", "he", "hers"
		{"hi", false},
		{"ahishers", true},
		{"xyz", false},
		{"", false},
		{"h", false},
		{"he", true},
	}
	for _, c := range cases {
		if got := ac.match([]byte(c.text)); got != c.want {
			t.Errorf("match(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestAhoCorasickBinaryPatterns(t *testing.T) {
	ac := newAhoCorasick([]string{"\x00\x01\x02", "\xff\xfe"})
	if !ac.match([]byte{9, 0, 1, 2, 9}) {
		t.Fatal("binary pattern missed")
	}
	if ac.match([]byte{0, 1, 9, 2}) {
		t.Fatal("false binary match")
	}
}

func TestAhoCorasickEmptyPatternsIgnored(t *testing.T) {
	ac := newAhoCorasick([]string{"", "x"})
	if ac.match([]byte("abc")) {
		t.Fatal("empty pattern matched everything")
	}
	if !ac.match([]byte("axc")) {
		t.Fatal("real pattern missed")
	}
}

func TestLoadBalancerFlowAffinity(t *testing.T) {
	backends := []uint32{packet.IP4(10, 1, 0, 1), packet.IP4(10, 1, 0, 2), packet.IP4(10, 1, 0, 3)}
	lb := NewLoadBalancer("lb", LBVirtualIP, backends)
	k := packet.FlowKey{SrcIP: packet.IP4(10, 0, 0, 9), DstIP: LBVirtualIP,
		SrcPort: 1234, DstPort: 80, Proto: packet.ProtoUDP}
	var first uint32
	for i := 0; i < 10; i++ {
		p := mkUDP(t, k, nil)
		if r := lb.Process(0, p); r.Verdict != packet.Pass {
			t.Fatal("LB dropped")
		}
		if i == 0 {
			first = p.Flow.DstIP
		} else if p.Flow.DstIP != first {
			t.Fatal("flow affinity violated")
		}
	}
	if _, err := packet.ParseFrame(mustProcess(t, lb, k).Data); err != nil {
		t.Fatalf("rewritten frame invalid: %v", err)
	}
}

func mustProcess(t *testing.T, e Element, k packet.FlowKey) *packet.Packet {
	t.Helper()
	p := mkUDP(t, k, nil)
	if r := e.Process(0, p); r.Verdict != packet.Pass {
		t.Fatalf("%s dropped test packet", e.Name())
	}
	return p
}

func TestLoadBalancerSpreadsFlows(t *testing.T) {
	backends := []uint32{1000, 2000, 3000, 4000}
	lb := NewLoadBalancer("lb", LBVirtualIP, backends)
	counts := make(map[uint32]int)
	for i := 0; i < 4000; i++ {
		k := packet.FlowKey{SrcIP: uint32(i), DstIP: LBVirtualIP,
			SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoUDP}
		counts[lb.PickBackend(k)]++
	}
	for _, be := range backends {
		if counts[be] < 500 {
			t.Fatalf("backend %d starved: %v", be, counts)
		}
	}
}

func TestLoadBalancerConsistentUnderBackendChange(t *testing.T) {
	b3 := []uint32{1, 2, 3}
	b4 := []uint32{1, 2, 3, 4}
	lb3 := NewLoadBalancer("a", LBVirtualIP, b3)
	lb4 := NewLoadBalancer("b", LBVirtualIP, b4)
	moved := 0
	const flows = 2000
	for i := 0; i < flows; i++ {
		k := packet.FlowKey{SrcIP: uint32(i * 31), DstIP: LBVirtualIP,
			SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoUDP}
		if lb3.PickBackend(k) != lb4.PickBackend(k) {
			moved++
		}
	}
	// Consistent hashing: adding 1 of 4 backends should move ~1/4 of
	// flows, far from rehash-everything.
	if moved > flows/2 {
		t.Fatalf("%d/%d flows moved on backend addition", moved, flows)
	}
	if moved < flows/20 {
		t.Fatalf("implausibly few flows moved (%d)", moved)
	}
}

func TestLoadBalancerPassesNonVIP(t *testing.T) {
	lb := NewLoadBalancer("lb", LBVirtualIP, []uint32{1})
	k := tenantKey(1, 80)
	p := mkUDP(t, k, nil)
	lb.Process(0, p)
	if p.Flow != k {
		t.Fatal("non-VIP traffic rewritten")
	}
}

func TestLoadBalancerPanicsOnNoBackends(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty backend set did not panic")
		}
	}()
	NewLoadBalancer("lb", LBVirtualIP, nil)
}

func TestRateLimiterPolices(t *testing.T) {
	// 1000 B/s, burst 1500 B: the first full-size packet fits, the second
	// immediately after does not.
	rl := NewRateLimiter("rl", 1000, 1500, false)
	k := tenantKey(1, 80)
	p1 := mkUDP(t, k, make([]byte, 1000))
	if r := rl.Process(0, p1); r.Verdict != packet.Pass {
		t.Fatal("first packet policed")
	}
	p2 := mkUDP(t, k, make([]byte, 1000))
	if r := rl.Process(0, p2); r.Verdict != packet.Drop {
		t.Fatal("burst-exceeding packet passed")
	}
	if rl.Passed() != 1 || rl.Policed() != 1 {
		t.Fatalf("passed=%d policed=%d", rl.Passed(), rl.Policed())
	}
}

func TestRateLimiterRefills(t *testing.T) {
	rl := NewRateLimiter("rl", 1e6, 2000, false) // 1 MB/s
	k := tenantKey(1, 80)
	rl.Process(0, mkUDP(t, k, make([]byte, 1900)))
	// After 2 ms, 2000 bytes have refilled.
	p := mkUDP(t, k, make([]byte, 1900))
	if r := rl.Process(2*sim.Millisecond, p); r.Verdict != packet.Pass {
		t.Fatal("refilled bucket still policing")
	}
}

func TestRateLimiterPerFlowIsolation(t *testing.T) {
	rl := NewRateLimiter("rl", 1000, 1100, true)
	a, b := tenantKey(1, 80), tenantKey(2, 80)
	rl.Process(0, mkUDP(t, a, make([]byte, 1000)))
	// Flow a exhausted its bucket; flow b must be unaffected.
	if r := rl.Process(0, mkUDP(t, a, make([]byte, 1000))); r.Verdict != packet.Drop {
		t.Fatal("flow a not policed")
	}
	if r := rl.Process(0, mkUDP(t, b, make([]byte, 1000))); r.Verdict != packet.Pass {
		t.Fatal("flow b policed by flow a's bucket")
	}
}

func TestRateLimiterInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero rate")
		}
	}()
	NewRateLimiter("rl", 0, 1, false)
}

func TestMonitorCountsFlows(t *testing.T) {
	m := NewMonitor("mon")
	a, b := tenantKey(1, 80), tenantKey(2, 80)
	m.Process(100, mkUDP(t, a, make([]byte, 100)))
	m.Process(200, mkUDP(t, a, make([]byte, 200)))
	m.Process(300, mkUDP(t, b, make([]byte, 50)))
	if m.Flows() != 2 {
		t.Fatalf("Flows() = %d", m.Flows())
	}
	fs := m.FlowStats(a)
	if fs == nil || fs.Packets != 2 {
		t.Fatalf("flow a stats %+v", fs)
	}
	if fs.FirstSeen != 100 || fs.LastSeen != 200 {
		t.Fatalf("flow a times %+v", fs)
	}
	pkts, _ := m.Totals()
	if pkts != 3 {
		t.Fatalf("total packets %d", pkts)
	}
}

func TestMonitorTopK(t *testing.T) {
	m := NewMonitor("mon")
	for i := byte(1); i <= 5; i++ {
		for j := 0; j < int(i); j++ {
			m.Process(0, mkUDP(t, tenantKey(i, 80), make([]byte, 1000)))
		}
	}
	top := m.TopK(2)
	if len(top) != 2 {
		t.Fatalf("TopK returned %d", len(top))
	}
	if top[0].Bytes < top[1].Bytes {
		t.Fatal("TopK not sorted")
	}
	if top[0].Flow.SrcIP != packet.IP4(10, 0, 0, 5) {
		t.Fatalf("heaviest flow wrong: %v", top[0].Flow)
	}
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm := NewCountMin(4, 512)
	truth := make(map[uint64]uint64)
	for i := uint64(0); i < 300; i++ {
		n := i%7 + 1
		cm.Add(i*2654435761, n)
		truth[i*2654435761] += n
	}
	for k, v := range truth {
		if est := cm.Estimate(k); est < v {
			t.Fatalf("count-min underestimated: %d < %d", est, v)
		}
	}
}

func TestCountMinAccurateWhenSparse(t *testing.T) {
	cm := NewCountMin(4, 4096)
	cm.Add(12345, 100)
	if est := cm.Estimate(12345); est != 100 {
		t.Fatalf("sparse estimate = %d, want 100", est)
	}
	if est := cm.Estimate(99999); est != 0 {
		t.Fatalf("absent key estimate = %d", est)
	}
}

func TestVXLANEncapDecapRoundTrip(t *testing.T) {
	enc := NewVXLANEncap("vtep-tx", 42, packet.IP4(172, 16, 0, 1), packet.IP4(172, 16, 0, 2))
	dec := NewVXLANDecap("vtep-rx", 42)
	innerKey := tenantKey(5, 443)
	payload := []byte("inner payload bytes")
	p := mkUDP(t, innerKey, payload)
	origFrame := append([]byte(nil), p.Data...)

	if r := enc.Process(0, p); r.Verdict != packet.Pass {
		t.Fatal("encap failed")
	}
	// Outer flow must be UDP to the VXLAN port.
	if p.Flow.DstPort != packet.VXLANPort || p.Flow.Proto != packet.ProtoUDP {
		t.Fatalf("outer flow %v", p.Flow)
	}
	pr, err := packet.ParseFrame(p.Data)
	if err != nil || !pr.HasUDP {
		t.Fatalf("outer frame invalid: %v", err)
	}

	if r := dec.Process(0, p); r.Verdict != packet.Pass {
		t.Fatal("decap failed")
	}
	if p.Flow != innerKey {
		t.Fatalf("inner flow not restored: %v", p.Flow)
	}
	if string(p.Data) != string(origFrame) {
		t.Fatal("inner frame bytes not preserved")
	}
	if enc.Encapped() != 1 || dec.Decapped() != 1 {
		t.Fatal("tunnel counters")
	}
}

func TestVXLANDecapRejectsWrongVNI(t *testing.T) {
	enc := NewVXLANEncap("tx", 42, 1, 2)
	dec := NewVXLANDecap("rx", 43)
	p := mkUDP(t, tenantKey(1, 80), nil)
	enc.Process(0, p)
	if r := dec.Process(0, p); r.Verdict != packet.Drop {
		t.Fatal("wrong VNI accepted")
	}
	if dec.BadVNI() != 1 {
		t.Fatal("bad VNI not counted")
	}
}

func TestVXLANEntropyVariesAcrossFlows(t *testing.T) {
	enc := NewVXLANEncap("tx", 1, 1, 2)
	ports := make(map[uint16]bool)
	for i := byte(1); i <= 30; i++ {
		p := mkUDP(t, tenantKey(i, 80), nil)
		enc.Process(0, p)
		ports[p.Flow.SrcPort] = true
	}
	if len(ports) < 10 {
		t.Fatalf("entropy ports too clustered: %d distinct of 30", len(ports))
	}
}

func TestClassifierStampsTOS(t *testing.T) {
	c := PresetClassifier()
	p := mkUDP(t, tenantKey(1, 80), nil) // port 80 -> latency sensitive
	if r := c.Process(0, p); r.Verdict != packet.Pass {
		t.Fatal("classifier dropped")
	}
	if got := ClassOf(p); got != ClassLatencySensitive {
		t.Fatalf("ClassOf = %v", got)
	}
	// Frame must still checksum-validate after the TOS patch.
	if _, err := packet.ParseFrame(p.Data); err != nil {
		t.Fatalf("frame invalid after TOS stamp: %v", err)
	}

	bulk := mkUDP(t, tenantKey(1, 55000), nil)
	c.Process(0, bulk)
	if got := ClassOf(bulk); got != ClassBulk {
		t.Fatalf("bulk ClassOf = %v", got)
	}
	counts := c.Counts()
	if counts[ClassLatencySensitive] != 1 || counts[ClassBulk] != 1 {
		t.Fatalf("class counts %v", counts)
	}
}

func TestPresetChainAllLengthsPass(t *testing.T) {
	for length := 1; length <= 6; length++ {
		c := PresetChain(length)
		if c.Len() != length {
			t.Fatalf("PresetChain(%d).Len() = %d", length, c.Len())
		}
		p := mkUDP(t, tenantKey(1, 80), []byte("normal request payload"))
		r := c.Process(0, p)
		if r.Verdict != packet.Pass {
			t.Fatalf("PresetChain(%d) dropped clean traffic at some stage: %v", length, c.Stats())
		}
		if r.Cost <= 0 {
			t.Fatalf("PresetChain(%d) has zero cost", length)
		}
	}
}

func TestPresetChainCostMonotone(t *testing.T) {
	var prev sim.Duration
	for length := 1; length <= 6; length++ {
		c := PresetChain(length)
		p := mkUDP(t, tenantKey(1, 80), make([]byte, 256))
		cost := c.Process(0, p).Cost
		if cost < prev {
			t.Fatalf("chain %d cheaper (%v) than chain %d (%v)", length, cost, length-1, prev)
		}
		prev = cost
	}
}

func TestPresetChainInvalidLengthPanics(t *testing.T) {
	for _, l := range []int{0, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PresetChain(%d) did not panic", l)
				}
			}()
			PresetChain(l)
		}()
	}
}

func BenchmarkPresetChain6(b *testing.B) {
	c := PresetChain(6)
	key := tenantKey(1, 80)
	payload := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame := packet.BuildUDP(key, payload, packet.BuildOpts{})
		p := &packet.Packet{Data: frame, Flow: key}
		c.Process(sim.Time(i), p)
	}
}

func BenchmarkDPIScan1500(b *testing.B) {
	d := NewDPI("dpi", DefaultSignatures, false)
	p := mkUDP(b, tenantKey(1, 80), make([]byte, 1400))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Process(0, p)
	}
}

func BenchmarkNATHit(b *testing.B) {
	nat := NewNAT("nat", packet.IP4(10, 0, 0, 0), 16, NATExternalIP)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := mkUDP(b, tenantKey(1, 80), nil)
		nat.Process(sim.Time(i), p)
	}
}
