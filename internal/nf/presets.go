package nf

import (
	"fmt"

	"mpdp/internal/packet"
)

// Canonical address plan shared by the experiment suite and examples.
// Tenant VMs live in 10.0.0.0/16 and talk to services in 10.1.0.0/16;
// the LB virtual IP and NAT external IP sit in 192.0.2.0/24 (TEST-NET-1).
var (
	TenantNet      = packet.IP4(10, 0, 0, 0)
	TenantPrefix   = uint32(16)
	ServiceNet     = packet.IP4(10, 1, 0, 0)
	ServicePrefix  = uint32(16)
	LBVirtualIP    = packet.IP4(192, 0, 2, 100)
	NATExternalIP  = packet.IP4(192, 0, 2, 1)
	DefaultGateway = packet.IP4(10, 0, 0, 1)
)

// DefaultSignatures is the DPI signature set used by presets: strings that
// essentially never occur in the synthetic payloads, so DPI pays its scan
// cost without perturbing delivery counts.
var DefaultSignatures = []string{
	"X-Exploit-Marker: cve-2021-44228",
	"\x90\x90\x90\x90\x90\x90\x90\x90\x90\x90\x90\x90\x90\x90\x90\x90",
	"cmd.exe /c powershell -enc",
	"/etc/passwd\x00root",
	"SELECT * FROM users WHERE '1'='1'",
}

// PresetFirewall returns an ACL typical of a tenant edge: a handful of deny
// rules (which preset traffic does not hit) and default allow. ruleCount
// scales the linear-scan cost.
func PresetFirewall(ruleCount int) *Firewall {
	if ruleCount < 1 {
		ruleCount = 1
	}
	rules := make([]FWRule, 0, ruleCount)
	for i := 0; i < ruleCount; i++ {
		// Deny a spread of unused /32 sources on port 23 (telnet).
		rules = append(rules, FWRule{
			SrcIP: packet.IP4(203, 0, 113, byte(i+1)), SrcPrefixLen: 32,
			DstPortLo: 23, DstPortHi: 23,
			Action: FWDeny,
		})
	}
	return NewFirewall("fw", rules, true)
}

// PresetRouter returns a router with service and tenant routes plus a
// default route, so preset traffic always forwards.
func PresetRouter() *Router {
	r := NewRouter("rt")
	r.AddRoute(TenantNet, TenantPrefix, DefaultGateway)
	r.AddRoute(ServiceNet, ServicePrefix, packet.IP4(10, 1, 0, 1))
	r.AddRoute(LBVirtualIP, 32, packet.IP4(10, 1, 0, 1))
	r.AddRoute(0, 0, DefaultGateway) // default
	return r
}

// PresetClassifier returns a classifier marking small-port control traffic
// and service traffic as latency sensitive, high ports as bulk.
func PresetClassifier() *Classifier {
	return NewClassifier("cls", []ClassRule{
		{Match: FWRule{DstPortLo: 1, DstPortHi: 1023}, Class: ClassLatencySensitive},
		{Match: FWRule{DstPortLo: 50000, DstPortHi: 65535}, Class: ClassBulk},
	})
}

// PresetChain builds the standard SFC of the experiment suite at the given
// length (1..6). Order mirrors a production tenant edge:
//
//	1: firewall
//	2: firewall, router
//	3: firewall, router, monitor
//	4: classifier, firewall, router, monitor
//	5: classifier, firewall, router, monitor, DPI
//	6: classifier, firewall, router, monitor, DPI, rate-limiter
//
// Every preset element passes the synthetic workloads (no policy drops), so
// delivery accounting isolates congestion effects.
func PresetChain(length int) *Chain {
	if length < 1 || length > 6 {
		panic(fmt.Sprintf("nf: PresetChain length %d out of [1,6]", length))
	}
	fw := PresetFirewall(20)
	rt := PresetRouter()
	mon := NewMonitor("mon")
	cls := PresetClassifier()
	dpi := NewDPI("dpi", DefaultSignatures, false)
	// 10 GbE-class policer: effectively never polices preset loads.
	rl := NewRateLimiter("rl", 1.25e9, 2.5e8, false)

	var elems []Element
	switch length {
	case 1:
		elems = []Element{fw}
	case 2:
		elems = []Element{fw, rt}
	case 3:
		elems = []Element{fw, rt, mon}
	case 4:
		elems = []Element{cls, fw, rt, mon}
	case 5:
		elems = []Element{cls, fw, rt, mon, dpi}
	case 6:
		elems = []Element{cls, fw, rt, mon, dpi, rl}
	}
	return NewChain(fmt.Sprintf("sfc%d", length), elems...)
}
