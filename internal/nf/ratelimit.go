package nf

import (
	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// RateLimiter is a token-bucket policer in virtual time. Tokens are bytes;
// the bucket refills at Rate bytes/second up to Burst bytes. Packets that
// do not fit are dropped (policing, not shaping — a policer never queues).
//
// PerFlow mode keeps one bucket per five-tuple, the common tenant-isolation
// configuration.
type RateLimiter struct {
	name    string
	rate    float64 // bytes per virtual second
	burst   float64
	perFlow bool
	cost    CostModel

	global  bucket
	buckets map[packet.FlowKey]*bucket

	passed  uint64
	policed uint64
}

type bucket struct {
	tokens float64
	last   sim.Time
}

// NewRateLimiter builds a policer at rateBytesPerSec with the given burst.
// It panics on non-positive rate or burst.
func NewRateLimiter(name string, rateBytesPerSec, burstBytes float64, perFlow bool) *RateLimiter {
	if rateBytesPerSec <= 0 || burstBytes <= 0 {
		panic("nf: NewRateLimiter requires positive rate and burst")
	}
	rl := &RateLimiter{
		name:    name,
		rate:    rateBytesPerSec,
		burst:   burstBytes,
		perFlow: perFlow,
		cost:    CostModel{Base: 30 * sim.Nanosecond},
		global:  bucket{tokens: burstBytes},
	}
	if perFlow {
		rl.buckets = make(map[packet.FlowKey]*bucket)
	}
	return rl
}

// Name implements Element.
func (rl *RateLimiter) Name() string { return rl.name }

// Process implements Element.
func (rl *RateLimiter) Process(now sim.Time, p *packet.Packet) Result {
	cost := rl.cost.Cost(0)
	b := &rl.global
	if rl.perFlow {
		var ok bool
		if b, ok = rl.buckets[p.Flow]; !ok {
			b = &bucket{tokens: rl.burst, last: now}
			rl.buckets[p.Flow] = b
		}
	}
	// Refill.
	elapsed := float64(now-b.last) / float64(sim.Second)
	b.tokens += elapsed * rl.rate
	if b.tokens > rl.burst {
		b.tokens = rl.burst
	}
	b.last = now

	need := float64(p.Size())
	if b.tokens < need {
		rl.policed++
		p.Dropped = packet.DropPolicy
		return Result{Verdict: packet.Drop, Cost: cost}
	}
	b.tokens -= need
	rl.passed++
	return Result{Verdict: packet.Pass, Cost: cost}
}

// Passed returns the number of conforming packets.
func (rl *RateLimiter) Passed() uint64 { return rl.passed }

// Policed returns the number of dropped, non-conforming packets.
func (rl *RateLimiter) Policed() uint64 { return rl.policed }
