package nf

import (
	"fmt"

	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// Router performs IPv4 longest-prefix-match forwarding over a binary trie
// and decrements TTL with an incremental checksum patch, like a software
// router element. Packets whose TTL expires, or that match no route when no
// default exists, are dropped.
type Router struct {
	name string
	root *trieNode
	n    int
	cost CostModel

	routed   uint64
	noRoute  uint64
	ttlDrops uint64
}

type trieNode struct {
	child   [2]*trieNode
	nextHop uint32
	set     bool
}

// NewRouter builds an empty router.
func NewRouter(name string) *Router {
	return &Router{
		name: name,
		root: &trieNode{},
		cost: CostModel{Base: 55 * sim.Nanosecond},
	}
}

// AddRoute installs prefix/plen -> nextHop. plen 0 sets the default route.
func (r *Router) AddRoute(prefix uint32, plen uint32, nextHop uint32) {
	if plen > 32 {
		panic(fmt.Sprintf("nf: AddRoute prefix length %d > 32", plen))
	}
	node := r.root
	for i := uint32(0); i < plen; i++ {
		bit := (prefix >> (31 - i)) & 1
		if node.child[bit] == nil {
			node.child[bit] = &trieNode{}
		}
		node = node.child[bit]
	}
	if !node.set {
		r.n++
	}
	node.nextHop = nextHop
	node.set = true
}

// Lookup returns the longest-prefix-match next hop for addr.
func (r *Router) Lookup(addr uint32) (uint32, bool) {
	node := r.root
	var best uint32
	found := false
	for i := 0; i < 32 && node != nil; i++ {
		if node.set {
			best, found = node.nextHop, true
		}
		bit := (addr >> (31 - i)) & 1
		node = node.child[bit]
	}
	if node != nil && node.set {
		best, found = node.nextHop, true
	}
	return best, found
}

// Routes returns the number of installed prefixes.
func (r *Router) Routes() int { return r.n }

// Name implements Element.
func (r *Router) Name() string { return r.name }

// Process implements Element.
func (r *Router) Process(now sim.Time, p *packet.Packet) Result {
	cost := r.cost.Cost(0)
	if _, ok := r.Lookup(p.Flow.DstIP); !ok {
		r.noRoute++
		p.Dropped = packet.DropPolicy
		return Result{Verdict: packet.Drop, Cost: cost}
	}
	// Decrement TTL in the real header with an incremental checksum patch.
	pr, err := packet.ParseFrame(p.Data)
	if err != nil || !pr.IsIP {
		p.Dropped = packet.DropPolicy
		return Result{Verdict: packet.Drop, Cost: cost}
	}
	ipOff := pr.IPOffset
	ttl := p.Data[ipOff+8]
	if ttl <= 1 {
		r.ttlDrops++
		p.Dropped = packet.DropPolicy
		return Result{Verdict: packet.Drop, Cost: cost}
	}
	old16 := uint16(ttl)<<8 | uint16(p.Data[ipOff+9])
	p.Data[ipOff+8] = ttl - 1
	new16 := uint16(ttl-1)<<8 | uint16(p.Data[ipOff+9])
	sum := uint16(p.Data[ipOff+10])<<8 | uint16(p.Data[ipOff+11])
	sum = packet.UpdateChecksum16(sum, old16, new16)
	p.Data[ipOff+10] = byte(sum >> 8)
	p.Data[ipOff+11] = byte(sum)

	r.routed++
	return Result{Verdict: packet.Pass, Cost: cost}
}

// Routed returns the number of successfully forwarded packets.
func (r *Router) Routed() uint64 { return r.routed }

// NoRouteDrops returns drops due to missing routes.
func (r *Router) NoRouteDrops() uint64 { return r.noRoute }

// TTLDrops returns drops due to TTL expiry.
func (r *Router) TTLDrops() uint64 { return r.ttlDrops }
