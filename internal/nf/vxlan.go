package nf

import (
	"mpdp/internal/packet"
	"mpdp/internal/sim"
)

// VXLANEncap wraps each packet in a real outer Ethernet+IPv4+UDP+VXLAN
// header, as the transmit side of an overlay tunnel endpoint (VTEP) does.
// The inner frame is preserved byte for byte. Flow metadata switches to the
// outer five-tuple; the outer UDP source port carries the inner flow's
// entropy (RFC 7348 §5) so multi-queue hashing still spreads tunneled flows.
type VXLANEncap struct {
	name               string
	vni                uint32
	outerSrc, outerDst uint32
	srcMAC, dstMAC     packet.MAC
	cost               CostModel

	encapped uint64
}

// NewVXLANEncap builds a VTEP transmit element for the given VNI and outer
// endpoint addresses.
func NewVXLANEncap(name string, vni, outerSrc, outerDst uint32) *VXLANEncap {
	return &VXLANEncap{
		name:     name,
		vni:      vni,
		outerSrc: outerSrc,
		outerDst: outerDst,
		srcMAC:   packet.MAC{0x02, 0, 0, 0, 0, 1},
		dstMAC:   packet.MAC{0x02, 0, 0, 0, 0, 2},
		// Fixed header prep plus one payload copy.
		cost: CostModel{Base: 90 * sim.Nanosecond, PerByte: 12 * sim.Nanosecond},
	}
}

// Name implements Element.
func (v *VXLANEncap) Name() string { return v.name }

// Process implements Element.
func (v *VXLANEncap) Process(now sim.Time, p *packet.Packet) Result {
	inner := p.Data
	cost := v.cost.Cost(len(inner))

	outerLen := packet.EthHeaderLen + packet.IPv4HeaderLen + packet.UDPHeaderLen + packet.VXLANHdrLen
	buf := make([]byte, outerLen+len(inner))

	eth := packet.Ethernet{Dst: v.dstMAC, Src: v.srcMAC, EtherType: packet.EtherTypeIPv4}
	eth.Encode(buf)

	ip := packet.IPv4{
		IHL: 5, TTL: 64, Proto: packet.ProtoUDP,
		TotalLen: uint16(packet.IPv4HeaderLen + packet.UDPHeaderLen + packet.VXLANHdrLen + len(inner)),
		Src:      v.outerSrc, Dst: v.outerDst,
	}
	ip.Encode(buf[packet.EthHeaderLen:])

	// Entropy source port derived from the inner flow (range 49152-65535).
	srcPort := uint16(49152 + p.Flow.Hash64()%16384)
	udp := packet.UDP{
		SrcPort: srcPort, DstPort: packet.VXLANPort,
		Length: uint16(packet.UDPHeaderLen + packet.VXLANHdrLen + len(inner)),
	}
	udp.Encode(buf[packet.EthHeaderLen+packet.IPv4HeaderLen:])

	vx := packet.VXLAN{VNI: v.vni}
	vx.Encode(buf[packet.EthHeaderLen+packet.IPv4HeaderLen+packet.UDPHeaderLen:])

	copy(buf[outerLen:], inner)
	p.Data = buf
	p.Flow = packet.FlowKey{
		SrcIP: v.outerSrc, DstIP: v.outerDst,
		SrcPort: srcPort, DstPort: packet.VXLANPort,
		Proto: packet.ProtoUDP,
	}
	v.encapped++
	return Result{Verdict: packet.Pass, Cost: cost}
}

// Encapped returns the number of tunneled packets.
func (v *VXLANEncap) Encapped() uint64 { return v.encapped }

// VXLANDecap terminates the tunnel: it strips the outer headers of VXLAN
// packets destined to this VTEP and restores the inner frame and flow key.
// Non-VXLAN packets pass through untouched.
type VXLANDecap struct {
	name string
	vni  uint32
	cost CostModel

	decapped uint64
	badVNI   uint64
}

// NewVXLANDecap builds a VTEP receive element accepting the given VNI.
func NewVXLANDecap(name string, vni uint32) *VXLANDecap {
	return &VXLANDecap{
		name: name,
		vni:  vni,
		cost: CostModel{Base: 80 * sim.Nanosecond, PerByte: 6 * sim.Nanosecond},
	}
}

// Name implements Element.
func (v *VXLANDecap) Name() string { return v.name }

// Process implements Element.
func (v *VXLANDecap) Process(now sim.Time, p *packet.Packet) Result {
	pr, err := packet.ParseFrame(p.Data)
	cost := v.cost.Base
	if err != nil || !pr.HasUDP || pr.UDP.DstPort != packet.VXLANPort {
		return Result{Verdict: packet.Pass, Cost: cost}
	}
	payload := pr.Payload(p.Data)
	cost = v.cost.Cost(len(payload))
	vx, err := packet.DecodeVXLAN(payload)
	if err != nil {
		p.Dropped = packet.DropPolicy
		return Result{Verdict: packet.Drop, Cost: cost}
	}
	if vx.VNI != v.vni {
		v.badVNI++
		p.Dropped = packet.DropPolicy
		return Result{Verdict: packet.Drop, Cost: cost}
	}
	inner := payload[packet.VXLANHdrLen:]
	buf := make([]byte, len(inner))
	copy(buf, inner)
	p.Data = buf
	key, err := packet.ExtractFlowKey(buf)
	if err != nil {
		p.Dropped = packet.DropPolicy
		return Result{Verdict: packet.Drop, Cost: cost}
	}
	p.Flow = key
	v.decapped++
	return Result{Verdict: packet.Pass, Cost: cost}
}

// Decapped returns the number of terminated tunnel packets.
func (v *VXLANDecap) Decapped() uint64 { return v.decapped }

// BadVNI returns drops due to a VNI mismatch.
func (v *VXLANDecap) BadVNI() uint64 { return v.badVNI }
