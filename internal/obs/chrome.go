package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Chrome trace-event export: exemplar timelines rendered as the Trace
// Event Format consumed by Perfetto / chrome://tracing. Each exemplar
// becomes one "thread"; its latency components are complete ("X") slices
// and its discrete events (steer, dup sent/cancelled, reorder enter) are
// instant ("i") markers. Timestamps are microseconds of virtual time.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	Metadata        map[string]string `json:"metadata,omitempty"`
}

const nsPerUs = 1000.0

// WriteChromeTrace renders the exemplars as a Chrome trace-event JSON
// document. Slices per exemplar: pre-queue, queue-wait, service,
// reorder-wait; markers for steering, duplication and reorder entry.
func WriteChromeTrace(w io.Writer, exemplars []Exemplar) error {
	tr := chromeTrace{
		DisplayTimeUnit: "ns",
		Metadata:        map[string]string{"source": "mpdp tail exemplars"},
	}
	for i, ex := range exemplars {
		tid := i + 1
		base := float64(ex.Ingress) / nsPerUs
		name := fmt.Sprintf("exemplar %d (flow %x seq %d)", tid, ex.FlowID, ex.Seq)
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": name},
		})
		cursor := base
		for _, c := range []struct {
			name string
			dur  float64
		}{
			{"pre-queue", float64(ex.Attr.PreQueue) / nsPerUs},
			{"queue-wait", float64(ex.Attr.QueueWait) / nsPerUs},
			{"service", float64(ex.Attr.Service) / nsPerUs},
			{"reorder-wait", float64(ex.Attr.ReorderWait) / nsPerUs},
		} {
			if c.dur <= 0 {
				continue
			}
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: c.name, Ph: "X", Ts: cursor, Dur: c.dur, Pid: 0, Tid: tid,
				Args: map[string]any{"lane": ex.WinnerPath},
			})
			cursor += c.dur
		}
		for _, ev := range ex.Events {
			switch ev.Kind {
			case KindSteer, KindDupSent, KindDupCancel, KindReorderEnter, KindDrop:
				tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
					Name: ev.Kind.String(), Ph: "i", Ts: float64(ev.Time) / nsPerUs,
					Pid: 0, Tid: tid, S: "t",
					Args: map[string]any{"lane": ev.Path, "copy": ev.PktID, "a": ev.A, "b": ev.B},
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// WriteExemplarCSV renders one row per exemplar with the exact latency
// decomposition, machine-readable for plotting.
func WriteExemplarCSV(w io.Writer, exemplars []Exemplar) error {
	var b strings.Builder
	b.WriteString("rank,orig_id,flow_id,seq,lane,duplicated,ingress_ns,delivered_ns,latency_ns,pre_queue_ns,queue_wait_ns,service_ns,reorder_wait_ns\n")
	for i, ex := range exemplars {
		dup := 0
		if ex.Duplicated {
			dup = 1
		}
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			i+1, ex.OrigID, ex.FlowID, ex.Seq, ex.WinnerPath, dup,
			ex.Ingress, ex.Delivered, ex.Latency,
			ex.Attr.PreQueue, ex.Attr.QueueWait, ex.Attr.Service, ex.Attr.ReorderWait)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
