package obs

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"

	"mpdp/internal/sim"
)

// Binary event-stream format (little endian):
//
//	header:  8-byte magic "MPDPOBS1"
//	record:  int64 time_ns | uint8 kind | uint64 pkt_id | uint64 orig_id |
//	         uint64 flow_id | uint64 seq | int32 path | int64 a | int64 b
//
// Records are fixed-size (61 bytes) and emission-ordered; times are
// non-decreasing because hooks emit at the simulator's current time.
// Writer and Reader both enforce the invariants, so a truncated or
// corrupted stream is detected rather than silently misparsed.

// MagicOBS identifies an event stream.
var MagicOBS = [8]byte{'M', 'P', 'D', 'P', 'O', 'B', 'S', '1'}

// recordSize is the encoded size of one event.
const recordSize = 8 + 1 + 8 + 8 + 8 + 8 + 4 + 8 + 8

// Errors returned by the codec.
var (
	ErrBadMagic     = errors.New("obs: bad magic (not an MPDP event stream)")
	ErrCorrupt      = errors.New("obs: corrupt record")
	ErrNonMonotonic = errors.New("obs: event times must be non-decreasing")
)

// Writer streams events to w.
type Writer struct {
	w    *bufio.Writer
	last sim.Time
	n    uint64
	b    uint64
}

// NewWriter writes the header and returns a Writer. Call Flush when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(MagicOBS[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, b: uint64(len(MagicOBS))}, nil
}

// Write appends one event. Times must be non-decreasing and the kind
// must be defined.
func (ew *Writer) Write(ev Event) error {
	if ev.Time < ew.last {
		return ErrNonMonotonic
	}
	if int(ev.Kind) >= NumKinds {
		return ErrCorrupt
	}
	ew.last = ev.Time
	var rec [recordSize]byte
	binary.LittleEndian.PutUint64(rec[0:8], uint64(ev.Time))
	rec[8] = byte(ev.Kind)
	binary.LittleEndian.PutUint64(rec[9:17], ev.PktID)
	binary.LittleEndian.PutUint64(rec[17:25], ev.OrigID)
	binary.LittleEndian.PutUint64(rec[25:33], ev.FlowID)
	binary.LittleEndian.PutUint64(rec[33:41], ev.Seq)
	binary.LittleEndian.PutUint32(rec[41:45], uint32(ev.Path))
	binary.LittleEndian.PutUint64(rec[45:53], uint64(ev.A))
	binary.LittleEndian.PutUint64(rec[53:61], uint64(ev.B))
	if _, err := ew.w.Write(rec[:]); err != nil {
		return err
	}
	ew.n++
	ew.b += recordSize
	return nil
}

// Count returns the number of events written.
func (ew *Writer) Count() uint64 { return ew.n }

// BytesWritten returns the encoded size so far (header included).
func (ew *Writer) BytesWritten() int64 { return int64(ew.b) }

// Flush flushes buffered records to the underlying writer.
func (ew *Writer) Flush() error { return ew.w.Flush() }

// Reader streams events from r.
type Reader struct {
	r    *bufio.Reader
	last sim.Time
	n    uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, ErrBadMagic
	}
	if magic != MagicOBS {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Next returns the next event, or io.EOF at a clean end of stream. A
// partial trailing record is reported as ErrCorrupt, never as success.
func (er *Reader) Next() (Event, error) {
	var rec [recordSize]byte
	if _, err := io.ReadFull(er.r, rec[:]); err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, ErrCorrupt
	}
	ev := Event{
		Time:   sim.Time(binary.LittleEndian.Uint64(rec[0:8])),
		Kind:   Kind(rec[8]),
		PktID:  binary.LittleEndian.Uint64(rec[9:17]),
		OrigID: binary.LittleEndian.Uint64(rec[17:25]),
		FlowID: binary.LittleEndian.Uint64(rec[25:33]),
		Seq:    binary.LittleEndian.Uint64(rec[33:41]),
		Path:   int32(binary.LittleEndian.Uint32(rec[41:45])),
		A:      int64(binary.LittleEndian.Uint64(rec[45:53])),
		B:      int64(binary.LittleEndian.Uint64(rec[53:61])),
	}
	if int(ev.Kind) >= NumKinds {
		return Event{}, ErrCorrupt
	}
	if ev.Time < 0 {
		return Event{}, ErrCorrupt
	}
	if ev.Time < er.last {
		return Event{}, ErrNonMonotonic
	}
	if ev.Path < -1 {
		return Event{}, ErrCorrupt
	}
	er.last = ev.Time
	er.n++
	return ev, nil
}

// Count returns the number of events read so far.
func (er *Reader) Count() uint64 { return er.n }

// ReadAll drains the stream into memory.
func ReadAll(r io.Reader) ([]Event, error) {
	er, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Event
	for {
		ev, err := er.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
}

// WriteAll encodes events to w in one call (header + records + flush).
func WriteAll(w io.Writer, events []Event) error {
	ew, err := NewWriter(w)
	if err != nil {
		return err
	}
	for _, ev := range events {
		if err := ew.Write(ev); err != nil {
			return err
		}
	}
	return ew.Flush()
}
