package obs

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"mpdp/internal/sim"
)

func sampleEvents() []Event {
	return []Event{
		{Time: 0, Kind: KindIngress, PktID: 1, OrigID: 1, FlowID: 7, Seq: 0, Path: -1, A: 1500},
		{Time: 0, Kind: KindSteer, PktID: 1, OrigID: 1, FlowID: 7, Seq: 0, Path: 2, A: 2, B: 0},
		{Time: 10, Kind: KindEnqueue, PktID: 1, OrigID: 1, FlowID: 7, Seq: 0, Path: 2},
		{Time: 500, Kind: KindService, PktID: 1, OrigID: 1, FlowID: 7, Seq: 0, Path: 2, A: 100, B: 0},
		{Time: 500, Kind: KindDeliver, PktID: 1, OrigID: 1, FlowID: 7, Seq: 0, Path: 2},
		{Time: 900, Kind: KindHealth, Path: 1, A: 0, B: 1},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	in := sampleEvents()
	var buf bytes.Buffer
	if err := WriteAll(&buf, in); err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
	wantLen := len(MagicOBS) + len(in)*recordSize
	if buf.Len() != wantLen {
		t.Fatalf("encoded %d bytes, want %d", buf.Len(), wantLen)
	}
	out, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("event %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestCodecBadMagic(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader([]byte("NOTMAGIC???"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
	if _, err := ReadAll(bytes.NewReader(nil)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("empty stream: got %v, want ErrBadMagic", err)
	}
}

func TestCodecTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadAll(bytes.NewReader(cut)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated stream: got %v, want ErrCorrupt", err)
	}
	// A clean header with zero records is a valid, empty stream.
	evs, err := ReadAll(bytes.NewReader(MagicOBS[:]))
	if err != nil || len(evs) != 0 {
		t.Fatalf("header-only stream: got %d events, err %v", len(evs), err)
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Event{Time: 100, Kind: KindIngress}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Event{Time: 99, Kind: KindDeliver}); !errors.Is(err, ErrNonMonotonic) {
		t.Fatalf("time regression: got %v, want ErrNonMonotonic", err)
	}
	if err := w.Write(Event{Time: 100, Kind: Kind(NumKinds)}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("undefined kind: got %v, want ErrCorrupt", err)
	}
}

func TestReaderRejectsNonMonotonic(t *testing.T) {
	// Hand-build a stream whose second record goes back in time.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Event{Time: 100, Kind: KindIngress})
	w.Flush()
	var buf2 bytes.Buffer
	w2, _ := NewWriter(&buf2)
	w2.Write(Event{Time: 50, Kind: KindIngress})
	w2.Flush()
	stream := append(buf.Bytes(), buf2.Bytes()[len(MagicOBS):]...)

	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrNonMonotonic) {
		t.Fatalf("got %v, want ErrNonMonotonic", err)
	}
}

func TestReaderCount(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Count(); got != uint64(len(sampleEvents())) {
		t.Fatalf("Count = %d, want %d", got, len(sampleEvents()))
	}
}

func TestEventTimesAreVirtual(t *testing.T) {
	// The codec stores sim.Time directly; spot-check a value survives.
	ev := Event{Time: sim.Time(3 * sim.Millisecond), Kind: KindDeliver}
	var buf bytes.Buffer
	if err := WriteAll(&buf, []Event{ev}); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAll(&buf)
	if err != nil || len(out) != 1 || out[0].Time != ev.Time {
		t.Fatalf("got %+v err %v", out, err)
	}
}
