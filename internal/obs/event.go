// Package obs is MPDP's deterministic observability layer: a flight
// recorder of per-packet lifecycle events, tail-exemplar collection with
// latency attribution, and per-lane time-series sampling.
//
// The whole package lives in virtual time. Events are emitted by cheap,
// nil-guarded hooks inside internal/core (engine, reorder stage, health
// machinery); every field of every event is derived from the simulator
// clock and the packet's own metadata, so two runs of the same seed
// record byte-identical streams. An unattached sink costs one nil check
// per would-be event and changes nothing about a run.
package obs

import "mpdp/internal/sim"

// Kind identifies a lifecycle event.
type Kind uint8

const (
	// KindIngress: a packet entered the data plane. Arg A is the frame
	// length in bytes, B the packet's absolute deadline in virtual time
	// (0 when it carries none).
	KindIngress Kind = iota
	// KindSteer: the policy's verdict for an ingress packet. Path is the
	// primary pick, A the number of copies (>1 means duplication), B is 1
	// when the extra copy is a health-probe canary.
	KindSteer
	// KindEnqueue: one copy was accepted by its lane's queue.
	KindEnqueue
	// KindService: one copy finished NF-chain service. A is the virtual
	// time service began, B encodes the chain verdict (packet.Verdict).
	// Emitted at completion so the stream stays time-ordered.
	KindService
	// KindDupSent: a duplicate copy was minted. PktID is the clone's ID.
	KindDupSent
	// KindDupCancel: a still-queued duplicate was revoked after its twin
	// won the race.
	KindDupCancel
	// KindReorderEnter: a copy arrived out of order and was parked in the
	// reorder buffer to wait for a predecessor.
	KindReorderEnter
	// KindReorderRelease: a parked copy left the reorder buffer. A is the
	// virtual time it entered, B is 1 when a gap timeout forced it out.
	KindReorderRelease
	// KindHealth: a path's health state changed. A is the old state, B the
	// new state (core.HealthState values).
	KindHealth
	// KindDrop: a copy left the plane without delivery. A is the
	// packet.DropReason.
	KindDrop
	// KindDeliver: the packet was released, in order, to the guest.
	KindDeliver
	// KindConsume: the chain terminated the packet locally (e.g. a tunnel
	// endpoint); completed work that exits the pipeline early.
	KindConsume

	numKinds // sentinel: keep last
)

// NumKinds is the number of defined event kinds (decoder bound).
const NumKinds = int(numKinds)

func (k Kind) String() string {
	switch k {
	case KindIngress:
		return "ingress"
	case KindSteer:
		return "steer"
	case KindEnqueue:
		return "enqueue"
	case KindService:
		return "service"
	case KindDupSent:
		return "dup-sent"
	case KindDupCancel:
		return "dup-cancel"
	case KindReorderEnter:
		return "reorder-enter"
	case KindReorderRelease:
		return "reorder-release"
	case KindHealth:
		return "health"
	case KindDrop:
		return "drop"
	case KindDeliver:
		return "deliver"
	case KindConsume:
		return "consume"
	default:
		return "kind(?)"
	}
}

// Event is one flight-recorder entry. The fixed shape (no pointers, no
// strings) keeps recording allocation-free and the binary codec trivial.
type Event struct {
	Time sim.Time // virtual time of the event
	Kind Kind

	// Packet identity. PktID is the copy's own ID (duplicates differ),
	// OrigID the ingress packet's. Zero for path-scoped events (health).
	PktID  uint64
	OrigID uint64
	FlowID uint64
	Seq    uint64

	// Path is the lane involved, -1 when not applicable.
	Path int32

	// A and B are kind-specific arguments (see the Kind doc comments).
	A, B int64
}

// Sink receives events. Implementations must not mutate engine or packet
// state — a sink observes the run, it never participates in it.
type Sink interface {
	Emit(ev Event)
}

// Tee fans one event stream out to several sinks, in order.
type Tee []Sink

// Emit implements Sink.
func (t Tee) Emit(ev Event) {
	for _, s := range t {
		s.Emit(ev)
	}
}

// MultiSink returns a single Sink over the non-nil entries of sinks: nil
// when none remain, the sink itself when one does, a Tee otherwise.
func MultiSink(sinks ...Sink) Sink {
	var live Tee
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
