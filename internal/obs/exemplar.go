package obs

import (
	"container/heap"
	"sort"

	"mpdp/internal/sim"
)

// Attribution decomposes one delivered packet's end-to-end latency into
// the pipeline stages of its winning copy. The components sum exactly to
// the recorded latency: every nanosecond between ingress and in-order
// delivery is assigned to precisely one stage.
type Attribution struct {
	// PreQueue is ingress → lane enqueue (steer decision + admission;
	// zero in the current engine, which enqueues synchronously).
	PreQueue sim.Duration
	// QueueWait is enqueue → service start on the winning copy's lane.
	QueueWait sim.Duration
	// Service is the NF-chain service time of the winning copy.
	Service sim.Duration
	// ReorderWait is service end → in-order release to the guest.
	ReorderWait sim.Duration
}

// Total returns the components' sum (the packet's end-to-end latency).
func (a Attribution) Total() sim.Duration {
	return a.PreQueue + a.QueueWait + a.Service + a.ReorderWait
}

// Exemplar is one delivered packet kept for tail attribution: its full
// event timeline plus the derived latency breakdown.
type Exemplar struct {
	OrigID uint64
	FlowID uint64
	Seq    uint64

	Ingress   sim.Time
	Delivered sim.Time
	Latency   sim.Duration

	// Deadline is the packet's absolute deadline (0 = none);
	// DeadlineMissed reports delivery after it. A tail exemplar that made
	// its deadline anyway is a benign straggler; one that missed is the
	// event the deadline-aware policy exists to prevent.
	Deadline       sim.Time
	DeadlineMissed bool

	// WinnerPath is the lane whose copy delivered (-1 if unknown).
	WinnerPath int32
	// Duplicated reports whether the packet was sent as multiple copies.
	Duplicated bool

	Attr Attribution

	// Events is the packet's full lifecycle, in emission order.
	Events []Event
}

// Collector keeps the K slowest delivered packets' full event timelines.
// It implements Sink: feed it the live hook stream, or replay a recorded
// stream through it to rebuild exemplars offline (mpdp-inspect does).
//
// Memory is bounded: per-packet event lists exist only while the packet
// is in flight, and at most K finished timelines are retained.
type Collector struct {
	k       int
	pending map[uint64][]Event // OrigID -> events so far
	worst   exemplarHeap       // min-heap on Latency: worst K delivered
}

// NewCollector keeps the k slowest delivered packets (default 8 if k<=0).
func NewCollector(k int) *Collector {
	if k <= 0 {
		k = 8
	}
	return &Collector{k: k, pending: make(map[uint64][]Event)}
}

// K returns the collector's capacity.
func (c *Collector) K() int { return c.k }

// Emit implements Sink.
func (c *Collector) Emit(ev Event) {
	if ev.Kind == KindHealth {
		return // path-scoped; not part of any packet's timeline
	}
	if ev.Kind == KindIngress {
		c.pending[ev.OrigID] = append(c.pending[ev.OrigID], ev)
		return
	}
	evs, ok := c.pending[ev.OrigID]
	if !ok {
		// A straggler event for a packet finalized earlier (e.g. a losing
		// duplicate finishing service after its twin delivered), or a
		// stream cut that lost the ingress. Either way, not a timeline.
		return
	}
	evs = append(evs, ev)
	switch {
	case ev.Kind == KindDeliver:
		delete(c.pending, ev.OrigID)
		c.offer(evs)
	case ev.Kind == KindConsume, ev.Kind == KindDrop && ev.B == 1:
		// Conclusive non-delivery: no latency to attribute.
		delete(c.pending, ev.OrigID)
	default:
		c.pending[ev.OrigID] = evs
	}
}

// offer finalizes a delivered timeline and keeps it if it is among the K
// slowest seen so far.
func (c *Collector) offer(evs []Event) {
	ex := buildExemplar(evs)
	if len(c.worst) < c.k {
		heap.Push(&c.worst, ex)
		return
	}
	if ex.Latency > c.worst[0].Latency {
		c.worst[0] = ex
		heap.Fix(&c.worst, 0)
	}
}

// Pending returns the number of packets currently mid-flight.
func (c *Collector) Pending() int { return len(c.pending) }

// Exemplars returns the kept exemplars, slowest first.
func (c *Collector) Exemplars() []Exemplar {
	out := make([]Exemplar, len(c.worst))
	copy(out, c.worst)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Latency != out[j].Latency {
			return out[i].Latency > out[j].Latency
		}
		return out[i].OrigID < out[j].OrigID // deterministic tiebreak
	})
	return out
}

// buildExemplar derives the latency breakdown from a delivered packet's
// event list. The deliver event names the winning copy; its enqueue and
// service events carve the end-to-end span into stages.
func buildExemplar(evs []Event) Exemplar {
	ex := Exemplar{WinnerPath: -1, Events: evs}
	var ingress, enq, svcStart, svcEnd, delivered sim.Time
	var winner uint64
	for _, ev := range evs {
		switch ev.Kind {
		case KindIngress:
			ex.OrigID, ex.FlowID, ex.Seq = ev.OrigID, ev.FlowID, ev.Seq
			ingress = ev.Time
			ex.Deadline = sim.Time(ev.B)
		case KindSteer:
			if ev.A > 1 {
				ex.Duplicated = true
			}
		case KindDeliver:
			delivered = ev.Time
			winner = ev.PktID
			ex.WinnerPath = ev.Path
		}
	}
	for _, ev := range evs {
		if ev.PktID != winner {
			continue
		}
		switch ev.Kind {
		case KindEnqueue:
			enq = ev.Time
		case KindService:
			svcStart, svcEnd = sim.Time(ev.A), ev.Time
		}
	}
	ex.Ingress, ex.Delivered = ingress, delivered
	ex.Latency = delivered - ingress
	ex.DeadlineMissed = ex.Deadline > 0 && delivered > ex.Deadline
	// Degrade gracefully on incomplete timelines (ring-buffer truncation):
	// any missing stage boundary collapses its component into a neighbor
	// so the attribution always sums to the end-to-end latency.
	if enq == 0 && ingress != 0 {
		enq = ingress
	}
	if svcStart == 0 {
		svcStart = enq
	}
	if svcEnd == 0 {
		svcEnd = svcStart
	}
	ex.Attr = Attribution{
		PreQueue:    enq - ingress,
		QueueWait:   svcStart - enq,
		Service:     svcEnd - svcStart,
		ReorderWait: delivered - svcEnd,
	}
	return ex
}

// exemplarHeap is a min-heap on Latency (root = fastest kept exemplar).
type exemplarHeap []Exemplar

func (h exemplarHeap) Len() int           { return len(h) }
func (h exemplarHeap) Less(i, j int) bool { return h[i].Latency < h[j].Latency }
func (h exemplarHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *exemplarHeap) Push(x any)        { *h = append(*h, x.(Exemplar)) }
func (h *exemplarHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h exemplarHeap) MinLatency() sim.Duration {
	if len(h) == 0 {
		return 0
	}
	return h[0].Latency
}
