package obs

import (
	"bytes"
	"strings"
	"testing"

	"mpdp/internal/sim"
)

// timeline feeds the collector one packet's lifecycle and returns the
// events (helper for hand-built streams).
func timeline(orig uint64, ingress, enq, svcStart, svcEnd, deliver sim.Time, path int32) []Event {
	return []Event{
		{Time: ingress, Kind: KindIngress, PktID: orig, OrigID: orig, FlowID: 1, Seq: orig, Path: -1, A: 1500},
		{Time: ingress, Kind: KindSteer, PktID: orig, OrigID: orig, FlowID: 1, Seq: orig, Path: path, A: 1},
		{Time: enq, Kind: KindEnqueue, PktID: orig, OrigID: orig, FlowID: 1, Seq: orig, Path: path},
		{Time: svcEnd, Kind: KindService, PktID: orig, OrigID: orig, FlowID: 1, Seq: orig, Path: path, A: int64(svcStart)},
		{Time: deliver, Kind: KindDeliver, PktID: orig, OrigID: orig, FlowID: 1, Seq: orig, Path: path},
	}
}

func TestCollectorAttributionSumsExactly(t *testing.T) {
	c := NewCollector(4)
	for _, ev := range timeline(1, 100, 100, 700, 1300, 1950, 2) {
		c.Emit(ev)
	}
	exs := c.Exemplars()
	if len(exs) != 1 {
		t.Fatalf("got %d exemplars, want 1", len(exs))
	}
	ex := exs[0]
	if ex.Latency != 1850 {
		t.Fatalf("latency = %d, want 1850", ex.Latency)
	}
	want := Attribution{PreQueue: 0, QueueWait: 600, Service: 600, ReorderWait: 650}
	if ex.Attr != want {
		t.Fatalf("attribution = %+v, want %+v", ex.Attr, want)
	}
	if ex.Attr.Total() != ex.Latency {
		t.Fatalf("components sum to %d, latency %d", ex.Attr.Total(), ex.Latency)
	}
	if ex.WinnerPath != 2 || ex.Duplicated {
		t.Fatalf("winner=%d dup=%v", ex.WinnerPath, ex.Duplicated)
	}
}

func TestCollectorKeepsKSlowest(t *testing.T) {
	c := NewCollector(3)
	// Ten packets with latencies 100, 200, ..., 1000.
	for i := uint64(1); i <= 10; i++ {
		base := sim.Time(i * 10000)
		lat := sim.Time(i * 100)
		for _, ev := range timeline(i, base, base, base, base+lat/2, base+lat, 0) {
			c.Emit(ev)
		}
	}
	exs := c.Exemplars()
	if len(exs) != 3 {
		t.Fatalf("got %d exemplars, want 3", len(exs))
	}
	for i, want := range []sim.Duration{1000, 900, 800} {
		if exs[i].Latency != want {
			t.Fatalf("exemplar %d latency = %d, want %d", i, exs[i].Latency, want)
		}
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d after all delivered", c.Pending())
	}
}

func TestCollectorWinnerAttribution(t *testing.T) {
	// Duplicated packet: copy 11 (lane 0) is slow, clone 12 (lane 1) wins.
	// Attribution must follow the winning copy's timeline.
	evs := []Event{
		{Time: 0, Kind: KindIngress, PktID: 11, OrigID: 11, FlowID: 5, Seq: 3, Path: -1, A: 200},
		{Time: 0, Kind: KindSteer, PktID: 11, OrigID: 11, FlowID: 5, Seq: 3, Path: 0, A: 2},
		{Time: 0, Kind: KindDupSent, PktID: 12, OrigID: 11, FlowID: 5, Seq: 3, Path: 1},
		{Time: 0, Kind: KindEnqueue, PktID: 11, OrigID: 11, FlowID: 5, Seq: 3, Path: 0},
		{Time: 5, Kind: KindEnqueue, PktID: 12, OrigID: 11, FlowID: 5, Seq: 3, Path: 1},
		{Time: 300, Kind: KindService, PktID: 12, OrigID: 11, FlowID: 5, Seq: 3, Path: 1, A: 50},
		{Time: 400, Kind: KindDeliver, PktID: 12, OrigID: 11, FlowID: 5, Seq: 3, Path: 1},
	}
	c := NewCollector(1)
	for _, ev := range evs {
		c.Emit(ev)
	}
	exs := c.Exemplars()
	if len(exs) != 1 {
		t.Fatalf("got %d exemplars", len(exs))
	}
	ex := exs[0]
	if !ex.Duplicated || ex.WinnerPath != 1 {
		t.Fatalf("dup=%v winner=%d, want true/1", ex.Duplicated, ex.WinnerPath)
	}
	want := Attribution{PreQueue: 5, QueueWait: 45, Service: 250, ReorderWait: 100}
	if ex.Attr != want {
		t.Fatalf("attribution = %+v, want %+v", ex.Attr, want)
	}
	if ex.Attr.Total() != ex.Latency {
		t.Fatalf("components sum to %d, latency %d", ex.Attr.Total(), ex.Latency)
	}

	// The losing copy's straggler service event must not corrupt state or
	// leak a pending timeline.
	c.Emit(Event{Time: 900, Kind: KindService, PktID: 11, OrigID: 11, FlowID: 5, Seq: 3, Path: 0, A: 600})
	if c.Pending() != 0 {
		t.Fatalf("straggler leaked a pending timeline (pending=%d)", c.Pending())
	}
}

func TestCollectorDropsAndConsumesFinalize(t *testing.T) {
	c := NewCollector(4)
	// Conclusive drop (B=1): timeline discarded, nothing kept.
	c.Emit(Event{Time: 0, Kind: KindIngress, PktID: 1, OrigID: 1, FlowID: 1, Seq: 0, Path: -1})
	c.Emit(Event{Time: 10, Kind: KindDrop, PktID: 1, OrigID: 1, FlowID: 1, Seq: 0, Path: 0, A: 1, B: 1})
	// Copy-level drop (B=0): timeline stays open, then delivers.
	c.Emit(Event{Time: 20, Kind: KindIngress, PktID: 2, OrigID: 2, FlowID: 1, Seq: 1, Path: -1})
	c.Emit(Event{Time: 30, Kind: KindDrop, PktID: 3, OrigID: 2, FlowID: 1, Seq: 1, Path: 1, A: 2, B: 0})
	c.Emit(Event{Time: 40, Kind: KindDeliver, PktID: 2, OrigID: 2, FlowID: 1, Seq: 1, Path: 0})
	// Consumed by the chain: completed but never delivered, not an exemplar.
	c.Emit(Event{Time: 50, Kind: KindIngress, PktID: 4, OrigID: 4, FlowID: 2, Seq: 0, Path: -1})
	c.Emit(Event{Time: 60, Kind: KindConsume, PktID: 4, OrigID: 4, FlowID: 2, Seq: 0, Path: 0})

	if c.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", c.Pending())
	}
	exs := c.Exemplars()
	if len(exs) != 1 || exs[0].OrigID != 2 {
		t.Fatalf("exemplars = %+v, want exactly packet 2", exs)
	}
}

func TestCollectorReplayFromStream(t *testing.T) {
	// Offline rebuild (what mpdp-inspect does): encode a stream, decode it,
	// replay through a fresh collector, and get identical exemplars.
	live := NewCollector(2)
	evs := timeline(1, 0, 0, 100, 400, 600, 1)
	evs = append(evs, timeline(2, 1000, 1000, 1010, 1300, 2400, 0)...)
	for _, ev := range evs {
		live.Emit(ev)
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, evs); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := NewCollector(2)
	for _, ev := range decoded {
		replayed.Emit(ev)
	}
	a, b := live.Exemplars(), replayed.Exemplars()
	if len(a) != len(b) {
		t.Fatalf("live %d vs replayed %d exemplars", len(a), len(b))
	}
	for i := range a {
		if a[i].OrigID != b[i].OrigID || a[i].Latency != b[i].Latency || a[i].Attr != b[i].Attr {
			t.Fatalf("exemplar %d differs: live %+v replayed %+v", i, a[i], b[i])
		}
	}
}

func TestReportHeadlineAndRender(t *testing.T) {
	c := NewCollector(4)
	// Two queue-wait-dominated exemplars on lane 3.
	for _, ev := range timeline(1, 0, 0, 900, 1000, 1000, 3) {
		c.Emit(ev)
	}
	for _, ev := range timeline(2, 5000, 5000, 5800, 5900, 5900, 3) {
		c.Emit(ev)
	}
	r := BuildReport(c.Exemplars())
	dom, frac := r.DominantComponent()
	if dom != "queue-wait" || frac < 0.8 {
		t.Fatalf("dominant = %s %.2f, want queue-wait > 0.8", dom, frac)
	}
	head := r.Headline()
	if !strings.Contains(head, "queue-wait") || !strings.Contains(head, "lane 3") {
		t.Fatalf("headline %q missing attribution", head)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"tail exemplars: 2", "hot lane: 3", "queue-wait"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}

	// Empty report renders without panicking.
	var empty bytes.Buffer
	if err := BuildReport(nil).Render(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(BuildReport(nil).Headline(), "no exemplars") {
		t.Fatal("empty headline should say so")
	}
}

func TestChromeTraceAndCSV(t *testing.T) {
	c := NewCollector(2)
	for _, ev := range timeline(1, 0, 0, 100, 400, 600, 1) {
		c.Emit(ev)
	}
	exs := c.Exemplars()

	var js bytes.Buffer
	if err := WriteChromeTrace(&js, exs); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"traceEvents"`, `"queue-wait"`, `"thread_name"`} {
		if !strings.Contains(js.String(), want) {
			t.Fatalf("chrome trace missing %s:\n%s", want, js.String())
		}
	}

	var csv bytes.Buffer
	if err := WriteExemplarCSV(&csv, exs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv has %d lines, want header + 1 row:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "rank,orig_id") {
		t.Fatalf("csv header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,1,1,1,1,0,0,600,600,0,100,300,200") {
		t.Fatalf("csv row %q", lines[1])
	}
}
