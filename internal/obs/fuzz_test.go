package obs

import (
	"bytes"
	"testing"

	"mpdp/internal/sim"
)

// FuzzReader: arbitrary bytes must never panic the decoder (mpdp-inspect
// reads user-supplied files); whatever decodes must satisfy the format
// invariants.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleEvents()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(MagicOBS[:])
	f.Add([]byte("garbage"))
	f.Add(append(append([]byte{}, MagicOBS[:]...), make([]byte, recordSize/2)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		var last sim.Time
		for _, ev := range evs {
			if int(ev.Kind) >= NumKinds {
				t.Fatalf("undefined kind %d accepted", ev.Kind)
			}
			if ev.Time < 0 {
				t.Fatal("negative timestamp accepted")
			}
			if ev.Time < last {
				t.Fatal("non-monotonic timestamps accepted")
			}
			if ev.Path < -1 {
				t.Fatalf("invalid path %d accepted", ev.Path)
			}
			last = ev.Time
		}
	})
}
