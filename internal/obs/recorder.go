package obs

import "io"

// Recorder is the flight recorder: a fixed-capacity ring buffer of the
// most recent events. When full it overwrites the oldest entry, like a
// crash recorder — the tail of a run is always available at bounded
// memory, no matter how long the run was.
//
// Recording is allocation-free after construction and purely
// deterministic: the ring's contents are a function of the emitted event
// sequence alone.
type Recorder struct {
	buf     []Event
	next    int    // ring write cursor
	n       int    // live entries (≤ cap)
	emitted uint64 // total events ever emitted
}

// DefaultRecorderCap is the default ring capacity (events).
const DefaultRecorderCap = 1 << 16

// NewRecorder builds a recorder holding the last capacity events
// (DefaultRecorderCap when ≤ 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCap
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Emit implements Sink. The ring write is allocation-free: one struct
// copy into the preallocated buffer.
//
//mpdp:hotpath bench=BenchmarkRecorderEmit
func (r *Recorder) Emit(ev Event) {
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.emitted++
}

// Len returns the number of events currently held.
func (r *Recorder) Len() int { return r.n }

// Emitted returns the total number of events ever emitted at the ring.
func (r *Recorder) Emitted() uint64 { return r.emitted }

// Overwritten returns how many events the ring has already discarded.
func (r *Recorder) Overwritten() uint64 { return r.emitted - uint64(r.n) }

// Events returns the held events, oldest first (a copy; the ring keeps
// recording).
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// WriteTo encodes the held events, oldest first, in the MPDPOBS1 binary
// format. It returns the number of bytes written.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	ew, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		if err := ew.Write(r.buf[(start+i)%len(r.buf)]); err != nil {
			return ew.BytesWritten(), err
		}
	}
	if err := ew.Flush(); err != nil {
		return ew.BytesWritten(), err
	}
	return ew.BytesWritten(), nil
}
