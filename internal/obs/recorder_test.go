package obs

import (
	"bytes"
	"testing"

	"mpdp/internal/sim"
)

func TestRecorderBasic(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Time: sim.Time(i * 10), Kind: KindIngress, OrigID: uint64(i)})
	}
	if r.Len() != 5 || r.Emitted() != 5 || r.Overwritten() != 0 {
		t.Fatalf("Len=%d Emitted=%d Overwritten=%d", r.Len(), r.Emitted(), r.Overwritten())
	}
	evs := r.Events()
	for i, ev := range evs {
		if ev.OrigID != uint64(i) {
			t.Fatalf("event %d has OrigID %d", i, ev.OrigID)
		}
	}
}

func TestRecorderWraps(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Time: sim.Time(i * 10), Kind: KindIngress, OrigID: uint64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Emitted() != 10 || r.Overwritten() != 6 {
		t.Fatalf("Emitted=%d Overwritten=%d, want 10/6", r.Emitted(), r.Overwritten())
	}
	evs := r.Events()
	want := []uint64{6, 7, 8, 9} // the most recent four, oldest first
	for i, ev := range evs {
		if ev.OrigID != want[i] {
			t.Fatalf("events = %v at %d, want OrigID %d", ev, i, want[i])
		}
	}
}

func TestRecorderWriteTo(t *testing.T) {
	r := NewRecorder(16)
	for _, ev := range sampleEvents() {
		r.Emit(ev)
	}
	var buf bytes.Buffer
	n, err := r.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	out, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	in := sampleEvents()
	if len(out) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("event %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestRecorderDefaultCap(t *testing.T) {
	r := NewRecorder(0)
	if got := len(r.buf); got != DefaultRecorderCap {
		t.Fatalf("default capacity = %d, want %d", got, DefaultRecorderCap)
	}
}

func BenchmarkRecorderEmit(b *testing.B) {
	r := NewRecorder(1 << 12)
	ev := Event{Kind: KindIngress, PktID: 1, OrigID: 1, FlowID: 7, Path: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Time = sim.Time(i)
		ev.Seq = uint64(i)
		r.Emit(ev)
	}
}
