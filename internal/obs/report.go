package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Report is the aggregate attribution over a set of tail exemplars: where
// the slowest packets' time actually went, and which lanes served them.
type Report struct {
	Exemplars []Exemplar

	// Aggregate components over all exemplars.
	Total Attribution
	// LaneCounts maps winner lane -> number of exemplars it served.
	LaneCounts map[int32]int
	// Duplicated is how many exemplars were sent as multiple copies.
	Duplicated int
}

// BuildReport aggregates exemplars (as returned by Collector.Exemplars)
// into an attribution report.
func BuildReport(exemplars []Exemplar) *Report {
	r := &Report{Exemplars: exemplars, LaneCounts: make(map[int32]int)}
	for _, ex := range exemplars {
		r.Total.PreQueue += ex.Attr.PreQueue
		r.Total.QueueWait += ex.Attr.QueueWait
		r.Total.Service += ex.Attr.Service
		r.Total.ReorderWait += ex.Attr.ReorderWait
		r.LaneCounts[ex.WinnerPath]++
		if ex.Duplicated {
			r.Duplicated++
		}
	}
	return r
}

// Fractions returns each component's share of the exemplars' total
// latency, in [0,1].
func (r *Report) Fractions() (preQueue, queueWait, service, reorder float64) {
	t := float64(r.Total.Total())
	if t <= 0 {
		return 0, 0, 0, 0
	}
	return float64(r.Total.PreQueue) / t, float64(r.Total.QueueWait) / t,
		float64(r.Total.Service) / t, float64(r.Total.ReorderWait) / t
}

// DominantComponent names the stage that contributed the most latency
// across the exemplars, with its share.
func (r *Report) DominantComponent() (string, float64) {
	pq, qw, sv, ro := r.Fractions()
	name, frac := "queue-wait", qw
	if pq > frac {
		name, frac = "pre-queue", pq
	}
	if sv > frac {
		name, frac = "service", sv
	}
	if ro > frac {
		name, frac = "reorder-wait", ro
	}
	return name, frac
}

// hotLane returns the lane serving the most exemplars (ties to the lowest
// lane id, keeping output deterministic).
func (r *Report) hotLane() (int32, int) {
	lanes := make([]int32, 0, len(r.LaneCounts))
	for l := range r.LaneCounts {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(i, j int) bool { return lanes[i] < lanes[j] })
	best, bestN := int32(-1), 0
	for _, l := range lanes {
		if n := r.LaneCounts[l]; n > bestN {
			best, bestN = l, n
		}
	}
	return best, bestN
}

// Render writes the human-readable attribution report: a headline
// ("the tail is X% queue-wait, concentrated on lane Y"), then one line
// per exemplar with its exact breakdown.
func (r *Report) Render(w io.Writer) error {
	var b strings.Builder
	n := len(r.Exemplars)
	fmt.Fprintf(&b, "-- tail exemplars: %d slowest delivered packets --\n", n)
	if n == 0 {
		b.WriteString("(no delivered packets recorded)\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	pq, qw, sv, ro := r.Fractions()
	dom, domFrac := r.DominantComponent()
	lane, laneN := r.hotLane()
	fmt.Fprintf(&b, "worst latency: %v   attribution: %.0f%% %s\n",
		r.Exemplars[0].Latency, domFrac*100, dom)
	fmt.Fprintf(&b, "breakdown: pre-queue %.1f%%  queue-wait %.1f%%  service %.1f%%  reorder-wait %.1f%%\n",
		pq*100, qw*100, sv*100, ro*100)
	fmt.Fprintf(&b, "hot lane: %d served %d/%d exemplars; %d/%d were duplicated\n",
		lane, laneN, n, r.Duplicated, n)
	b.WriteString("\n  #  latency     flow:seq              lane  queue       service     reorder     dup\n")
	for i, ex := range r.Exemplars {
		dup := "-"
		if ex.Duplicated {
			dup = "yes"
		}
		fmt.Fprintf(&b, "%3d  %-10v  %016x:%-4d  %4d  %-10v  %-10v  %-10v  %s\n",
			i+1, ex.Latency, ex.FlowID, ex.Seq, ex.WinnerPath,
			ex.Attr.QueueWait, ex.Attr.Service, ex.Attr.ReorderWait, dup)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Headline returns the one-line summary used in experiment notes, e.g.
// "tail = 84% queue-wait (lane 2 served 6/8 exemplars)".
func (r *Report) Headline() string {
	if len(r.Exemplars) == 0 {
		return "tail = (no exemplars)"
	}
	dom, frac := r.DominantComponent()
	lane, laneN := r.hotLane()
	return fmt.Sprintf("tail = %.0f%% %s (lane %d served %d/%d exemplars)",
		frac*100, dom, lane, laneN, len(r.Exemplars))
}
