package obs

import (
	"mpdp/internal/sim"
	"mpdp/internal/stats"
)

// LaneSample is one instantaneous reading of a lane's gauges.
type LaneSample struct {
	// Depth is the lane's queue depth including the packet in service.
	Depth int
	// InFlight is copies sent to the lane and not yet resolved.
	InFlight int
	// Health is the path's health state (core.HealthState as an int).
	Health int
	// Served is the lane's cumulative completion count; the sampler
	// differentiates it into a per-window service rate.
	Served uint64
}

// LaneProbe reads lane i's gauges at the current virtual time. Probes
// must be read-only: sampling may never perturb the run.
type LaneProbe func(lane int) LaneSample

// LaneSeries is the sampled time series of one lane's gauges. Each gauge
// is a stats.WindowSeries (a histogram per time window), so downstream
// consumers can read means, maxima, or percentiles per window.
type LaneSeries struct {
	Lane     int
	Depth    *stats.WindowSeries // queue depth samples
	InFlight *stats.WindowSeries // in-flight copy samples
	Health   *stats.WindowSeries // health state samples (0=up..3=probing)
	Rate     *stats.WindowSeries // completions observed per sample tick
}

// Sampler polls per-lane gauges on the virtual-time ticker. It is
// read-only and seed-deterministic: ticks land at fixed virtual times and
// probes only read engine state, so an attached sampler changes no
// experiment numbers.
type Sampler struct {
	series     []LaneSeries
	probe      LaneProbe
	ticker     *sim.Ticker
	lastServed []uint64
}

// NewSampler starts sampling lanes [0,lanes) every period, binning the
// series into windows of the given length (window <= 0 takes the period,
// i.e. one sample per bin). Call Stop at end of measurement.
func NewSampler(s *sim.Simulator, period, window sim.Duration, lanes int, probe LaneProbe) *Sampler {
	if period <= 0 {
		panic("obs: NewSampler with non-positive period")
	}
	if window <= 0 {
		window = period
	}
	sp := &Sampler{probe: probe, lastServed: make([]uint64, lanes)}
	for i := 0; i < lanes; i++ {
		sp.series = append(sp.series, LaneSeries{
			Lane:     i,
			Depth:    stats.NewWindowSeries(int64(window)),
			InFlight: stats.NewWindowSeries(int64(window)),
			Health:   stats.NewWindowSeries(int64(window)),
			Rate:     stats.NewWindowSeries(int64(window)),
		})
	}
	sp.ticker = sim.NewTicker(s, period, sp.tick)
	return sp
}

func (sp *Sampler) tick(now sim.Time) {
	for i := range sp.series {
		ls := sp.probe(i)
		se := &sp.series[i]
		se.Depth.Add(int64(now), int64(ls.Depth))
		se.InFlight.Add(int64(now), int64(ls.InFlight))
		se.Health.Add(int64(now), int64(ls.Health))
		se.Rate.Add(int64(now), int64(ls.Served-sp.lastServed[i]))
		sp.lastServed[i] = ls.Served
	}
}

// Stop halts the ticker. The collected series remain readable.
func (sp *Sampler) Stop() { sp.ticker.Stop() }

// Series returns the per-lane series (shared, not copied).
func (sp *Sampler) Series() []LaneSeries { return sp.series }
