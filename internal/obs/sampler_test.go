package obs

import (
	"testing"

	"mpdp/internal/sim"
)

func TestSamplerSamplesAndDifferentiates(t *testing.T) {
	s := sim.New()
	// Fake gauges: depth rises 1 per µs tick on lane 0; served counts 10
	// completions per tick on lane 1.
	var tick int
	probe := func(lane int) LaneSample {
		switch lane {
		case 0:
			return LaneSample{Depth: tick, Health: 1}
		default:
			return LaneSample{Served: uint64(10 * tick)}
		}
	}
	sp := NewSampler(s, sim.Microsecond, 10*sim.Microsecond, 2, probe)
	// Advance the fake gauges just before each sampler tick fires.
	for i := 1; i <= 20; i++ {
		at := sim.Time(i) * sim.Time(sim.Microsecond)
		s.At(at-1, func() { tick++ })
	}
	s.RunUntil(sim.Time(21 * sim.Microsecond))
	sp.Stop()

	series := sp.Series()
	if len(series) != 2 {
		t.Fatalf("got %d lane series, want 2", len(series))
	}
	depth := series[0].Depth.Points()
	// Ticks at 1..20 µs with 10 µs windows: bins [0,10), [10,20), [20,30).
	if len(depth) != 3 {
		t.Fatalf("depth bins = %d, want 3", len(depth))
	}
	if got := depth[0].Hist.Max(); got != 9 {
		t.Fatalf("window 0 max depth = %d, want 9", got)
	}
	if got := depth[1].Hist.Max(); got != 19 {
		t.Fatalf("window 1 max depth = %d, want 19", got)
	}
	// Health gauge is recorded as-is.
	if got := series[0].Health.Points()[0].Hist.Max(); got != 1 {
		t.Fatalf("health sample = %d, want 1", got)
	}
	// Rate is the served delta per tick: first tick sees 10-0, then 10 each.
	rate := series[1].Rate.Points()
	if len(rate) == 0 || rate[0].Hist.Max() != 10 || rate[0].Hist.Min() != 10 {
		t.Fatalf("rate window 0 = min %d max %d, want 10/10",
			rate[0].Hist.Min(), rate[0].Hist.Max())
	}

	// Stopped sampler records nothing further.
	before := series[0].Depth.Points()
	s.RunUntil(sim.Time(40 * sim.Microsecond))
	after := series[0].Depth.Points()
	if len(after) != len(before) {
		t.Fatal("sampler kept recording after Stop")
	}
}

func TestSamplerRejectsBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for period <= 0")
		}
	}()
	NewSampler(sim.New(), 0, 0, 1, func(int) LaneSample { return LaneSample{} })
}
